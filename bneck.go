// Package bneck is a Go implementation of B-Neck, the distributed and
// quiescent max-min fair rate allocation algorithm of Mozo, López-Presa and
// Fernández Anta (2011).
//
// B-Neck assigns every session its max-min fair rate using a bounded number
// of control packets and then goes silent: in the absence of session
// arrivals, departures or demand changes, no control traffic flows at all.
// Session dynamics reactivate exactly the affected parts of the network.
//
// The package offers two ways to build a network:
//
//   - NewNetwork for hand-built topologies (routers, hosts, links), and
//   - NewTransitStub for the paper's generated Internet-like topologies.
//
// Both return a Simulation that runs the full distributed protocol over a
// deterministic discrete event simulator with FIFO links, transmission
// serialization, and propagation delays. Every converged state can be
// cross-checked against a centralized water-filling oracle with Validate.
//
// A minimal example:
//
//	b := bneck.NewNetwork()
//	r1, r2 := b.Router("r1"), b.Router("r2")
//	src, dst := b.Host("src"), b.Host("dst")
//	b.Link(src, r1, bneck.Mbps(100), time.Microsecond)
//	b.Link(r1, r2, bneck.Mbps(40), time.Microsecond)
//	b.Link(r2, dst, bneck.Mbps(100), time.Microsecond)
//	sim, _ := b.Build()
//	s, _ := sim.Session(src, dst)
//	s.JoinAt(0, bneck.Unlimited)
//	report := sim.RunToQuiescence()
//	fmt.Println(report.Rates[s.ID()]) // 40000000 (the 40 Mbps bottleneck)
//
// See examples/ for runnable programs and internal/exp for the harness that
// regenerates every figure of the paper's evaluation.
package bneck

import (
	"time"

	"bneck/internal/rate"
)

// Rate is an exact rational rate in bits per second. Exact arithmetic is
// what lets the protocol detect convergence (and hence quiesce) reliably;
// see the rate package documentation.
type Rate = rate.Rate

// Unlimited is the demand of a session with no maximum rate.
var Unlimited = rate.Inf

// Mbps returns a Rate of v megabits per second.
func Mbps(v int64) Rate { return rate.Mbps(v) }

// Bps returns a Rate of v bits per second.
func Bps(v int64) Rate { return rate.FromInt64(v) }

// RateOf returns the exact rational rate num/den bits per second.
func RateOf(num, den int64) Rate { return rate.FromFrac(num, den) }

// SessionID identifies a session within a Simulation.
type SessionID int64

// Report summarizes a RunToQuiescence call.
type Report struct {
	// Quiescence is the virtual time at which the network went silent.
	Quiescence time.Duration
	// Packets is the total number of control packets sent across links so
	// far (cumulative over the simulation).
	Packets uint64
	// Rates maps every active session to its granted max-min fair rate.
	Rates map[SessionID]Rate
}
