// Package bneck is a Go implementation of B-Neck, the distributed and
// quiescent max-min fair rate allocation algorithm of Mozo, López-Presa and
// Fernández Anta (2011).
//
// B-Neck assigns every session its max-min fair rate using a bounded number
// of control packets and then goes silent: in the absence of session
// arrivals, departures or demand changes, no control traffic flows at all.
// Session dynamics reactivate exactly the affected parts of the network.
//
// # Building a network
//
// The package offers two ways to build a network:
//
//   - NewNetwork for hand-built topologies (routers, hosts, links), and
//   - NewTransitStub for the paper's generated Internet-like topologies.
//
// Both return a Simulation that runs the full distributed protocol over a
// deterministic discrete event simulator with FIFO links, transmission
// serialization, and propagation delays. Every converged state can be
// cross-checked against a centralized water-filling oracle with
// Simulation.Validate and Simulation.Oracle.
//
// A minimal example:
//
//	b := bneck.NewNetwork()
//	r1, r2 := b.Router("r1"), b.Router("r2")
//	src, dst := b.Host("src"), b.Host("dst")
//	b.Link(src, r1, bneck.Mbps(100), time.Microsecond)
//	b.Link(r1, r2, bneck.Mbps(40), time.Microsecond)
//	b.Link(r2, dst, bneck.Mbps(100), time.Microsecond)
//	sim, _ := b.Build()
//	s, _ := sim.Session(src, dst)
//	s.JoinAt(0, bneck.Unlimited)
//	report := sim.RunToQuiescence()
//	fmt.Println(report.Rates[s.ID()]) // 40000000 (the 40 Mbps bottleneck)
//
// # Topology dynamics and path policy
//
// Links can fail, be restored and change capacity at runtime: Link handles
// (from NetworkBuilder.Link, Simulation.RouterLinks or
// Simulation.LinkBetween) schedule the events, and affected sessions
// migrate through the protocol's own Leave → reroute → Join under fresh
// session IDs. Sessions whose hosts become disconnected are stranded and
// rejoin automatically on restore; Simulation.Migrations,
// Simulation.StrandedSessions and Simulation.ReconfigPackets expose the
// bookkeeping.
//
// Paths are pinned at join time by default, matching the paper. The
// WithPathPolicy(ReoptimizeOnRestore) option migrates sessions back onto
// shorter paths once restores (or large capacity increases) re-enable them
// — see PathPolicy and the ExamplePathPolicy example;
// Simulation.Reoptimizations counts the moves.
//
// # Scaling a run
//
// WithShards partitions a single run across CPU cores under conservative
// lookahead windows, and WithWindowBatch amortizes their synchronization;
// both are pure performance levers — results are byte-identical at every
// setting, including against the classic serial engine.
//
// See examples/ for runnable programs, docs/SCENARIOS.md for the
// declarative scenario-script DSL that drives whole failure timelines, and
// internal/exp for the harness that regenerates every figure of the paper's
// evaluation.
package bneck

import (
	"time"

	"bneck/internal/rate"
)

// Rate is an exact rational rate in bits per second. Exact arithmetic is
// what lets the protocol detect convergence (and hence quiesce) reliably;
// see the rate package documentation.
type Rate = rate.Rate

// Unlimited is the demand of a session with no maximum rate.
var Unlimited = rate.Inf

// Mbps returns a Rate of v megabits per second.
func Mbps(v int64) Rate { return rate.Mbps(v) }

// Bps returns a Rate of v bits per second.
func Bps(v int64) Rate { return rate.FromInt64(v) }

// RateOf returns the exact rational rate num/den bits per second.
func RateOf(num, den int64) Rate { return rate.FromFrac(num, den) }

// SessionID identifies a session within a Simulation.
type SessionID int64

// Report summarizes a RunToQuiescence call.
type Report struct {
	// Quiescence is the virtual time at which the network went silent.
	Quiescence time.Duration
	// Packets is the total number of control packets sent across links so
	// far (cumulative over the simulation).
	Packets uint64
	// Rates maps every active session to its granted max-min fair rate.
	Rates map[SessionID]Rate
}
