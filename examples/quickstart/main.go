// Quickstart: the textbook three-session max-min instance on a hand-built
// topology, solved by the distributed B-Neck protocol and cross-checked
// against the centralized oracle.
//
// Topology (capacities on the router links):
//
//	hA ── r1 ══10Mbps══ r2 ══4Mbps══ r3 ── hB
//	       │                          │
//	s1: hA→h1 (crosses r1–r2)         │
//	s2: hA'→hB (crosses both)         │
//	s3: h3→hB (crosses r2–r3)
//
// Max-min fairness gives s2 and s3 the 4 Mbps bottleneck's fair share
// (2 Mbps each) and s1 the residue of the 10 Mbps link (8 Mbps).
package main

import (
	"fmt"
	"log"
	"time"

	"bneck"
)

func main() {
	b := bneck.NewNetwork()
	r1, r2, r3 := b.Router("r1"), b.Router("r2"), b.Router("r3")

	srcA, dstA := b.Host("srcA"), b.Host("dstA") // s1 endpoints
	srcB, dstB := b.Host("srcB"), b.Host("dstB") // s2 endpoints
	srcC, dstC := b.Host("srcC"), b.Host("dstC") // s3 endpoints

	host := bneck.Mbps(100)
	us := time.Microsecond
	b.Link(srcA, r1, host, us)
	b.Link(srcB, r1, host, us)
	b.Link(srcC, r2, host, us)
	b.Link(dstA, r2, host, us)
	b.Link(dstB, r3, host, us)
	b.Link(dstC, r3, host, us)
	b.Link(r1, r2, bneck.Mbps(10), us)
	b.Link(r2, r3, bneck.Mbps(4), us)

	sim, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	s1, err := sim.Session(srcA, dstA) // r1→r2 only
	if err != nil {
		log.Fatal(err)
	}
	s2, err := sim.Session(srcB, dstB) // r1→r2→r3
	if err != nil {
		log.Fatal(err)
	}
	s3, err := sim.Session(srcC, dstC) // r2→r3 only
	if err != nil {
		log.Fatal(err)
	}

	s1.JoinAt(0, bneck.Unlimited)
	s2.JoinAt(0, bneck.Unlimited)
	s3.JoinAt(0, bneck.Unlimited)

	report := sim.RunToQuiescence()

	fmt.Printf("quiescent after %v (virtual), %d control packets total\n\n",
		report.Quiescence, report.Packets)
	for name, s := range map[string]*bneck.Session{"s1": s1, "s2": s2, "s3": s3} {
		r, _ := s.Rate()
		fmt.Printf("%s: %8.2f Mbps (converged=%t, path %d links)\n",
			name, r.Float64()/1e6, s.Converged(), s.PathLen())
	}

	// The paper validates every distributed run against Centralized B-Neck;
	// so do we.
	if err := sim.Validate(); err != nil {
		log.Fatalf("validation failed: %v", err)
	}
	fmt.Println("\ndistributed rates match the centralized water-filling oracle ✓")
}
