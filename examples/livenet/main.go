// Livenet: B-Neck without a simulator. Every protocol task — each session's
// source and destination, and each directed link's router task — runs as its
// own goroutine with a FIFO mailbox, exchanging packets concurrently. The
// paper's quiescence property becomes observable termination: WaitQuiescent
// returns exactly when no control message exists anywhere in the network.
//
// The example builds a two-tier tree, joins sessions from concurrent
// goroutines, perturbs the system, and validates every converged allocation
// against the centralized oracle.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"bneck/internal/graph"
	"bneck/internal/live"
	"bneck/internal/rate"
)

func main() {
	// A small fat-tree-ish topology: one core router, three edge routers,
	// hosts on the edges. Core links 300 Mbps, edge links 100 Mbps.
	g := graph.New()
	coreR := g.AddRouter("core")
	edges := make([]graph.NodeID, 3)
	for i := range edges {
		edges[i] = g.AddRouter(fmt.Sprintf("edge%d", i))
		g.Connect(edges[i], coreR, rate.Mbps(300), 10*time.Microsecond)
	}
	var hosts []graph.NodeID
	for i := 0; i < 12; i++ {
		h := g.AddHost(fmt.Sprintf("h%d", i))
		g.Connect(h, edges[i%3], rate.Mbps(100), time.Microsecond)
		hosts = append(hosts, h)
	}

	rt := live.New(g)
	defer rt.Close()
	res := graph.NewResolver(g, 32)

	// Sessions: each host i talks to host (i+5)%12, crossing the core.
	var sessions []*live.Session
	for i, src := range hosts {
		dst := hosts[(i+5)%len(hosts)]
		p, err := res.HostPath(src, dst)
		if err != nil {
			log.Fatal(err)
		}
		s, err := rt.NewSession(p)
		if err != nil {
			log.Fatal(err)
		}
		sessions = append(sessions, s)
	}

	// Join all twelve concurrently — true parallelism, no simulator.
	start := time.Now()
	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		go func(s *live.Session) {
			defer wg.Done()
			s.Join(rate.Inf)
		}(s)
	}
	wg.Wait()
	rt.WaitQuiescent()
	fmt.Printf("12 concurrent joins: quiescent after %v (wall clock)\n", time.Since(start).Round(time.Microsecond))

	validate(rt)
	printRates(sessions)

	// Perturb: half the sessions cap themselves at 10 Mbps.
	start = time.Now()
	for i, s := range sessions {
		if i%2 == 0 {
			s.Change(rate.Mbps(10))
		}
	}
	rt.WaitQuiescent()
	fmt.Printf("\n6 concurrent demand changes: quiescent after %v\n", time.Since(start).Round(time.Microsecond))
	validate(rt)
	printRates(sessions)

	fmt.Println("\nall live allocations match the centralized oracle ✓")
}

func printRates(sessions []*live.Session) {
	for i, s := range sessions {
		r, _ := s.Rate()
		fmt.Printf("  s%-2d %8.2f Mbps", i, r.Float64()/1e6)
		if (i+1)%4 == 0 {
			fmt.Println()
		}
	}
}

// validate checks the live rates against Centralized B-Neck (Figure 1).
func validate(rt *live.Runtime) {
	if err := rt.Validate(); err != nil {
		log.Fatal(err)
	}
}
