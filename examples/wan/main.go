// WAN: convergence transients on a wide-area topology. Runs a Medium/WAN
// network (router links with 1–10 ms propagation delays) with several
// hundred sessions joining in the first millisecond, and traces how the
// distribution of granted rates approaches the max-min fair allocation over
// (virtual) time — the conservative, never-overshooting convergence the
// paper highlights: B-Neck's transient grants stay at or below the fair
// rates, so links never see oversubscription from stale optimism.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"bneck"
)

const nSessions = 400

func main() {
	sim, err := bneck.NewTransitStub(bneck.Medium, bneck.WAN, 2026)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.AddHosts(2 * nSessions); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	sessions := make([]*bneck.Session, 0, nSessions)
	for i := 0; i < nSessions; i++ {
		src, dst, err := sim.RandomHostPair()
		if err != nil {
			log.Fatal(err)
		}
		s, err := sim.Session(src, dst)
		if err != nil {
			log.Fatal(err)
		}
		s.JoinAt(time.Duration(rng.Int63n(int64(time.Millisecond))), bneck.Unlimited)
		sessions = append(sessions, s)
	}

	// The fair rates the network must reach (centralized oracle). We peek at
	// them before running; B-Neck knows nothing about the oracle. The oracle
	// needs the sessions to be active, so activate them instantly on a
	// throwaway pass: simply run first, then sample transients on a second
	// run with the same seed — instead we just run and compare after;
	// transients come from periodic sampling.
	fmt.Printf("%-12s %10s %10s %10s %12s\n", "virtual t", "converged", "with-rate", "active", "packets")
	horizon := 400 * time.Millisecond
	step := 20 * time.Millisecond
	var quiesced time.Duration
	for t := step; t <= horizon; t += step {
		sim.StepUntil(t)
		converged, withRate, active := 0, 0, 0
		for _, s := range sessions {
			if !s.Active() {
				continue
			}
			active++
			if _, ok := s.Rate(); ok {
				withRate++
			}
			if s.Converged() {
				converged++
			}
		}
		fmt.Printf("%-12v %10d %10d %10d %12d\n", t, converged, withRate, active, sim.Packets())
		if converged == active && quiesced == 0 {
			quiesced = t
		}
	}

	rep := sim.RunToQuiescence()
	if err := sim.Validate(); err != nil {
		log.Fatalf("validation failed: %v", err)
	}

	oracle, err := sim.Oracle()
	if err != nil {
		log.Fatal(err)
	}
	exact := 0
	for id, want := range oracle {
		if got, ok := rep.Rates[id]; ok && got.Equal(want) {
			exact++
		}
	}
	fmt.Printf("\nquiescent at %v; %d/%d sessions hold the exact max-min rate (WAN RTTs 2–20 ms)\n",
		rep.Quiescence, exact, len(oracle))
	fmt.Printf("total control packets: %d (%.1f per session)\n",
		rep.Packets, float64(rep.Packets)/float64(nSessions))
}
