// Dynamic: quiescence under churn — of sessions AND of the topology itself.
// Sessions join, leave and change their demands on a generated Small/LAN
// transit-stub topology; then links fail, change capacity and come back.
// After every burst the protocol re-converges (failures migrate the crossing
// sessions through B-Neck's own Leave → reroute → Join) and goes silent
// again. The program prints, for each burst, the time B-Neck needed to
// re-reach quiescence and the control packets it spent — and demonstrates
// that between bursts the network is completely silent (the property that
// distinguishes B-Neck from every prior distributed max-min algorithm).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"bneck"
)

func main() {
	sim, err := bneck.NewTransitStub(bneck.Small, bneck.LAN, 42)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.AddHosts(200); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	var sessions []*bneck.Session

	newSession := func() *bneck.Session {
		src, dst, err := sim.RandomHostPair()
		if err != nil {
			log.Fatal(err)
		}
		s, err := sim.Session(src, dst)
		if err != nil {
			log.Fatal(err)
		}
		sessions = append(sessions, s)
		return s
	}

	burst := func(name string, fn func(start time.Duration)) {
		start := sim.Now() + time.Millisecond
		before := sim.Packets()
		fn(start)
		rep := sim.RunToQuiescence()
		if err := sim.Validate(); err != nil {
			log.Fatalf("%s: validation failed: %v", name, err)
		}
		active := 0
		for _, s := range sessions {
			if s.Active() {
				active++
			}
		}
		fmt.Printf("%-28s re-converged in %8v using %6d packets (%3d active sessions)\n",
			name, (rep.Quiescence - start).Round(time.Microsecond), rep.Packets-before, active)

		// Silence check: advance a full virtual second; B-Neck must not send
		// a single packet.
		pkts := sim.Packets()
		sim.StepUntil(sim.Now() + time.Second)
		if sim.Packets() != pkts {
			log.Fatalf("%s: traffic after quiescence!", name)
		}
	}

	burst("100 sessions join", func(start time.Duration) {
		for i := 0; i < 100; i++ {
			newSession().JoinAt(start+time.Duration(rng.Int63n(int64(time.Millisecond))), bneck.Unlimited)
		}
	})

	burst("30 sessions leave", func(start time.Duration) {
		left := 0
		for _, s := range sessions {
			if s.Active() && left < 30 {
				s.LeaveAt(start + time.Duration(rng.Int63n(int64(time.Millisecond))))
				left++
			}
		}
	})

	burst("25 sessions cap their rate", func(start time.Duration) {
		changed := 0
		for _, s := range sessions {
			if s.Active() && changed < 25 {
				s.ChangeAt(start+time.Duration(rng.Int63n(int64(time.Millisecond))),
					bneck.Mbps(1+rng.Int63n(20)))
				changed++
			}
		}
	})

	burst("mixed join+leave+change", func(start time.Duration) {
		for i := 0; i < 20; i++ {
			newSession().JoinAt(start+time.Duration(rng.Int63n(int64(time.Millisecond))), bneck.Unlimited)
		}
		done := 0
		for _, s := range sessions {
			if !s.Active() || done >= 20 {
				continue
			}
			at := start + time.Duration(rng.Int63n(int64(time.Millisecond)))
			if done%2 == 0 {
				s.LeaveAt(at)
			} else {
				s.ChangeAt(at, bneck.Mbps(1+rng.Int63n(50)))
			}
			done++
		}
	})

	// Topology dynamics: the same quiescence story with the network itself
	// changing underneath the sessions.
	links := sim.RouterLinks()
	victims := []*bneck.Link{links[3], links[17], links[41]}

	burst("3 links fail (reroute)", func(start time.Duration) {
		for i, l := range victims {
			l.FailAt(start + time.Duration(i)*100*time.Microsecond)
		}
	})
	fmt.Printf("%-28s %d sessions migrated onto surviving paths, %d stranded\n",
		"", sim.Migrations(), sim.StrandedSessions())

	burst("2 links change capacity", func(start time.Duration) {
		links[5].SetCapacityAt(start, bneck.Mbps(80))
		links[23].SetCapacityAt(start+100*time.Microsecond, bneck.Mbps(350))
	})

	burst("3 links restored", func(start time.Duration) {
		for i, l := range victims {
			l.RestoreAt(start + time.Duration(i)*100*time.Microsecond)
		}
	})

	fmt.Println("\nbetween every burst the network was fully silent for 1 virtual second ✓")
}
