package bneck

import (
	"fmt"
	"time"

	"bneck/internal/core"
	"bneck/internal/graph"
	"bneck/internal/metrics"
	"bneck/internal/network"
	"bneck/internal/sim"
	"bneck/internal/topology"
)

// Simulation is a B-Neck deployment over a virtual network: protocol tasks
// on every link, a deterministic event-driven transport, and a centralized
// oracle for validation. It is not safe for concurrent use.
type Simulation struct {
	g        *graph.Graph
	topo     topology.Hosted    // nil for hand-built networks
	eng      *sim.Engine        // classic serial engine (nil when sharded)
	she      *sim.ShardedEngine // sharded engine (nil when serial)
	net      *network.Network
	resolver *graph.Resolver
	sessions map[SessionID]*Session
}

func newSimulation(g *graph.Graph, topo topology.Hosted, opts ...Option) (*Simulation, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	cfg := network.Config{
		ControlPacketBits: o.controlPacketBits,
		BinSize:           o.binSize,
		PathPolicy:        o.pathPolicy,
		Speculate:         o.speculate,
	}
	// Topologies that know their own hierarchy (internet-scale generation)
	// switch sharded repartitioning to the label-driven hierarchical cut.
	if h, ok := topo.(topology.Hierarchical); ok {
		cfg.Hierarchy = h.Hierarchy
	}
	if o.onRate != nil {
		cb := o.onRate
		cfg.OnRate = func(s core.SessionID, r Rate, at sim.Time) {
			cb(SessionID(s), r, at)
		}
	}
	out := &Simulation{
		g:        g,
		topo:     topo,
		resolver: graph.NewResolver(g, 256),
		sessions: make(map[SessionID]*Session),
	}
	shards, windowBatch := o.shards, o.windowBatch
	if o.shardsSet && shards == 0 {
		// Auto-tune from the process's usable parallelism (WithShards(0)).
		shards = sim.AutoShards()
		if windowBatch <= 0 {
			windowBatch = sim.AutoWindowBatch()
		}
	}
	if o.shardsSet && shards >= 1 {
		out.she = sim.NewSharded(shards)
		if windowBatch > 0 {
			out.she.SetWindowBatch(windowBatch)
		}
		out.net = network.NewSharded(g, out.she, cfg)
	} else {
		out.eng = sim.New()
		out.net = network.New(g, out.eng, cfg)
	}
	return out, nil
}

// Shards returns how many shards the simulation's engine runs: 1 for the
// classic serial engine, the WithShards value otherwise. Sharded runs are
// byte-identical at every shard count; counts above one advance a single
// run across that many cores.
func (s *Simulation) Shards() int {
	if s.she == nil {
		return 1
	}
	return s.she.Shards()
}

// AddHosts attaches n hosts to random access routers of a generated topology
// (stub routers on transit-stub networks, edge routers on internet-scale
// ones). It errors on hand-built networks (add hosts through the builder
// there).
func (s *Simulation) AddHosts(n int) ([]Node, error) {
	if s.topo == nil {
		return nil, fmt.Errorf("bneck: AddHosts requires a generated topology")
	}
	ids := s.topo.AddHosts(n)
	out := make([]Node, len(ids))
	for i, id := range ids {
		out[i] = Node{id: id}
	}
	return out, nil
}

// RandomHostPair draws a distinct source/destination pair on a generated
// topology.
func (s *Simulation) RandomHostPair() (Node, Node, error) {
	if s.topo == nil {
		return Node{}, Node{}, fmt.Errorf("bneck: RandomHostPair requires a generated topology")
	}
	a, b := s.topo.RandomHostPair()
	return Node{id: a}, Node{id: b}, nil
}

// Session creates a session from src to dst along a shortest path. The
// session is inert until JoinAt.
func (s *Simulation) Session(src, dst Node) (*Session, error) {
	path, err := s.resolver.HostPath(src.id, dst.id)
	if err != nil {
		return nil, err
	}
	ns, err := s.net.NewSession(src.id, dst.id, path)
	if err != nil {
		return nil, err
	}
	sess := &Session{sim: s, inner: ns}
	s.sessions[SessionID(ns.ID)] = sess
	return sess, nil
}

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration {
	if s.she != nil {
		return s.she.Now()
	}
	return s.eng.Now()
}

// RunToQuiescence advances virtual time until the protocol goes silent and
// returns the state of the world. It may be called repeatedly as dynamics
// are scheduled.
func (s *Simulation) RunToQuiescence() Report {
	q := s.net.Run()
	rates := make(map[SessionID]Rate)
	for _, ns := range s.net.Sessions() {
		if !ns.Active() {
			continue
		}
		if r, ok := ns.Rate(); ok {
			rates[SessionID(ns.ID)] = r
		}
	}
	return Report{
		Quiescence: q,
		Packets:    s.net.Stats().Total(),
		Rates:      rates,
	}
}

// StepUntil advances virtual time to t, processing due events (for
// observing transients). It goes through the network so a sharded
// simulation installs its partition even when StepUntil is the first
// advance.
func (s *Simulation) StepUntil(t time.Duration) { s.net.RunUntil(t) }

// Validate cross-checks every active session's granted rate against the
// centralized water-filling oracle and every link task's stability
// (Definition 2 of the paper). Call it after RunToQuiescence.
func (s *Simulation) Validate() error { return s.net.Validate() }

// Oracle returns the max-min fair rates of the currently active sessions as
// computed centrally (Figure 1 of the paper), without touching the
// distributed state.
func (s *Simulation) Oracle() (map[SessionID]Rate, error) {
	m, err := s.net.Oracle()
	if err != nil {
		return nil, err
	}
	out := make(map[SessionID]Rate, len(m))
	for id, r := range m {
		out[SessionID(id)] = r
	}
	return out, nil
}

// Packets returns the cumulative number of control packets sent across
// links.
func (s *Simulation) Packets() uint64 { return s.net.Stats().Total() }

// TrafficBins returns per-interval packet counts by type (Figure 6's view
// of the control traffic).
func (s *Simulation) TrafficBins() []metrics.Bin { return s.net.Stats().Bins() }

// Link is a handle to one duplex link, used to schedule topology events.
// Events apply to both directions, matching the paper's symmetric link
// model. Handles come from NetworkBuilder.Link (bound at Build) or from
// Simulation.RouterLinks / Simulation.LinkBetween.
type Link struct {
	sim    *Simulation
	ab, ba graph.LinkID
}

func (l *Link) check() {
	if l.sim == nil {
		panic("bneck: Link not bound to a Simulation (Build the network first)")
	}
}

// SetCapacityAt schedules a capacity change of both directions to c at
// virtual time at. Sessions crossing the link re-probe through the
// protocol's own dynamics and the network re-quiesces; run
// RunToQuiescence and Validate afterwards.
func (l *Link) SetCapacityAt(at time.Duration, c Rate) {
	l.check()
	l.sim.net.ScheduleSetCapacity(at, c, l.ab, l.ba)
}

// FailAt schedules both directions to go down at virtual time at. Sessions
// whose path crosses the link migrate onto surviving paths via the
// protocol's own Leave → reroute → Join; sessions with no surviving path are
// stranded until a restore reconnects them.
func (l *Link) FailAt(at time.Duration) {
	l.check()
	l.sim.net.ScheduleLinkFail(at, l.ab, l.ba)
}

// RestoreAt schedules both directions to come back up at virtual time at.
// Stranded sessions rejoin automatically with their last demand; routed
// sessions keep their pinned paths.
func (l *Link) RestoreAt(at time.Duration) {
	l.check()
	l.sim.net.ScheduleLinkRestore(at, l.ab, l.ba)
}

// Capacity returns the link's current capacity (both directions are
// symmetric under this API).
func (l *Link) Capacity() Rate {
	l.check()
	return l.sim.g.Link(l.ab).Capacity
}

// Up reports whether the link is currently up.
func (l *Link) Up() bool {
	l.check()
	return l.sim.g.LinkUp(l.ab)
}

// Ends returns the two nodes the link connects.
func (l *Link) Ends() (Node, Node) {
	l.check()
	gl := l.sim.g.Link(l.ab)
	return Node{id: gl.From}, Node{id: gl.To}
}

// RouterLinks returns duplex handles for every router–router link of the
// network, in insertion order — the natural targets for failure injection on
// generated transit-stub topologies (host access links can fail too, via
// LinkBetween).
func (s *Simulation) RouterLinks() []*Link {
	var out []*Link
	for id := 0; id < s.g.NumLinks(); id++ {
		l := s.g.Link(graph.LinkID(id))
		if l.Reverse == graph.NoLink || l.Reverse < l.ID {
			continue // visit each duplex pair once, from its first direction
		}
		if s.g.Node(l.From).Kind != graph.Router || s.g.Node(l.To).Kind != graph.Router {
			continue
		}
		out = append(out, &Link{sim: s, ab: l.ID, ba: l.Reverse})
	}
	return out
}

// LinkBetween returns the duplex link connecting two adjacent nodes, if one
// exists.
func (s *Simulation) LinkBetween(x, y Node) (*Link, bool) {
	for _, lid := range s.g.Out(x.id) {
		l := s.g.Link(lid)
		if l.To == y.id && l.Reverse != graph.NoLink {
			return &Link{sim: s, ab: l.ID, ba: l.Reverse}, true
		}
	}
	return nil, false
}

// StrandedSessions returns how many sessions are parked without a path after
// link failures (they rejoin automatically on restore).
func (s *Simulation) StrandedSessions() int { return s.net.StrandedSessions() }

// Migrations returns how many session reroutes link failures have forced.
// Policy-driven reroutes are counted separately by Reoptimizations.
func (s *Simulation) Migrations() uint64 { return s.net.Migrations() }

// Reoptimizations returns how many sessions the path policy
// (WithPathPolicy) migrated back onto shorter paths. Always zero under the
// default Pinned policy.
func (s *Simulation) Reoptimizations() uint64 { return s.net.Reoptimizations() }

// SpeculationStats counts optimistic window execution outcomes on a sharded
// simulation (WithSpeculation): forked attempts, committed attempts,
// replayed attempts (some shard parked and its suffix re-ran under the
// conservative bound), and the events executed inside speculative windows.
type SpeculationStats struct {
	Attempts uint64
	Commits  uint64
	Replays  uint64
	Events   uint64
}

// SpeculationStats returns the cumulative optimistic-execution counters.
// All zero on the classic engine or with speculation off. The outcome
// counts depend on goroutine timing when windows run in parallel —
// simulation results never do.
func (s *Simulation) SpeculationStats() SpeculationStats {
	st := s.net.SpeculationStats()
	return SpeculationStats{Attempts: st.Attempts, Commits: st.Commits, Replays: st.Replays, Events: st.Events}
}

// ReconfigPackets returns the cumulative control-packet cost of topology
// reconfigurations: the Leave-cascade packets of every force-departed
// session plus the Join-cascade packets of every topology-driven rejoin —
// failure migrations, policy re-optimizations and strand rejoins — each
// measured until the quiescence that follows it. The counter is updated by
// RunToQuiescence; packets from scheduled user churn are never counted.
// Together with Packets it quantifies what a reconfiguration costs.
func (s *Simulation) ReconfigPackets() uint64 { return s.net.ReconfigPackets() }

// Session is a handle to one session.
type Session struct {
	sim   *Simulation
	inner *network.Session
}

// ID returns the session's current identifier. A topology-event migration
// mints a fresh identifier (Report.Rates is keyed by current IDs).
func (s *Session) ID() SessionID { return SessionID(s.inner.Current().ID) }

// JoinAt schedules API.Join(s, demand) at virtual time at (which must not be
// in the past).
func (s *Session) JoinAt(at time.Duration, demand Rate) {
	s.sim.net.ScheduleJoin(s.inner, at, demand)
}

// LeaveAt schedules API.Leave(s) at virtual time at.
func (s *Session) LeaveAt(at time.Duration) {
	s.sim.net.ScheduleLeave(s.inner, at)
}

// ChangeAt schedules API.Change(s, demand) at virtual time at.
func (s *Session) ChangeAt(at time.Duration, demand Rate) {
	s.sim.net.ScheduleChange(s.inner, at, demand)
}

// Rate returns the last granted rate (ok reports whether one exists yet).
func (s *Session) Rate() (Rate, bool) { return s.inner.Rate() }

// Converged reports whether the network has confirmed the session's current
// rate as max-min fair.
func (s *Session) Converged() bool { return s.inner.Converged() }

// Active reports whether the session has joined and not left.
func (s *Session) Active() bool { return s.inner.Active() }

// Stranded reports whether link failures left the session without a path
// between its hosts (it rejoins automatically on restore).
func (s *Session) Stranded() bool { return s.inner.Stranded() }

// PathLen returns the number of links on the session's current path (it can
// change when topology events migrate the session).
func (s *Session) PathLen() int { return len(s.inner.Current().Path) }
