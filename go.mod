module bneck

go 1.24
