# Development and CI entry points. `make check` is the PR gate; `make bench`
# captures the perf trajectory of the simulator hot path per PR, and
# `make bench-json` snapshots it as BENCH_<date>.json for the perf-trajectory
# archive (CI uploads it as an artifact).

GO ?= go
DATE := $(shell date +%Y%m%d)

.PHONY: check vet build test test-full bench bench-full bench-json fmt

check: vet build test bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -short ./...

test-full:
	$(GO) test ./...

# The perf gate: engine scheduling microbenchmarks, allocation counts on.
bench:
	$(GO) test -bench=SimEngine -benchmem -run='^$$' .

# Full benchmark sweep, including the figure-shaped end-to-end runs.
bench-full:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Machine-readable perf snapshot: engine scheduling, protocol throughput,
# the dynamic-topology reconfiguration benchmark and the sharded-engine
# scaling sweep, as BENCH_<date>.json.
bench-json:
	$(GO) test -bench='SimEngine|ProtocolThroughput|Reconfiguration|ShardedEngine' -benchmem -run='^$$' . \
		| $(GO) run ./cmd/benchjson -out BENCH_$(DATE).json

fmt:
	gofmt -w .
