# Development and CI entry points. `make check` is the PR gate; `make bench`
# captures the perf trajectory of the simulator hot path per PR, and
# `make bench-json` snapshots it as BENCH_PR<n>.json — a committed artifact
# per PR, so the perf trajectory (engine scheduling, protocol throughput,
# sharded-engine scaling on LAN and WAN, live-Emit contention) accumulates
# in the repository. Override the output with BENCH_OUT=... (CI also
# uploads it).

GO ?= go
# Bump per PR (BENCH_PR5.json, …) — or pass BENCH_OUT=… — so snapshots
# accumulate instead of overwriting the previous PR's committed artifact.
BENCH_OUT ?= BENCH_PR10.json

.PHONY: check vet lint build test test-full bench bench-full bench-json fmt docs-check mc-smoke

check: vet lint build test bench

vet:
	$(GO) vet ./...

# The invariant gate: bnecklint (the repo's own analyzer suite — see
# DESIGN.md §12) always runs; staticcheck and govulncheck join in when
# installed (CI installs them; local runs without them just skip).
lint:
	$(GO) run ./cmd/bnecklint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "lint: govulncheck not installed; skipping"; fi

build:
	$(GO) build ./...

test:
	$(GO) test -short ./...

test-full:
	$(GO) test ./...

# The perf gate: engine scheduling microbenchmarks, allocation counts on.
bench:
	$(GO) test -bench=SimEngine -benchmem -run='^$$' .

# Full benchmark sweep, including the figure-shaped end-to-end runs.
bench-full:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Machine-readable perf snapshot: engine scheduling, protocol throughput,
# the dynamic-topology reconfiguration benchmark, the sharded-engine scaling
# sweep (classic vs 1/2/4 shards, LAN and WAN), the live-Emit contention
# benchmark, the internet-topology ladder (paper/metro/internet rungs at
# 1 vs 8 shards) and the oracle churn-validation sweep (full re-solve vs
# the incremental mirror at every ladder rung), as $(BENCH_OUT). The
# micro-benchmarks run at the default benchtime; the end-to-end sweeps pin
# a fixed iteration count so the snapshot costs minutes, not hours — the
# ladder's 10k-router rungs run exactly once each.
bench-json:
	@tmp=$$(mktemp); \
	{ $(GO) test -bench=SimEngine -benchmem -run='^$$' . > $$tmp && \
	  $(GO) test -bench='ProtocolThroughput|Reconfiguration|ShardedEngine|LiveEmit' -benchtime=3x -benchmem -run='^$$' . >> $$tmp && \
	  $(GO) test -bench='InternetLadder|OracleChurn' -benchtime=1x -benchmem -timeout=30m -run='^$$' . >> $$tmp && \
	  $(GO) run ./cmd/benchjson -out $(BENCH_OUT) < $$tmp; }; \
	status=$$?; rm -f $$tmp; exit $$status

# The model-checking gate (DESIGN.md §16): bounded exhaustive DFS over the
# paper-sized topology (the ≥10k-schedule acceptance test lives in
# internal/mc), a 200-seed fuzzing swarm on the metro rung under the race
# detector, and the regression corpus replayed against the build-tag bug
# doubles — each tagged build reopens one historical hole, and the committed
# choice trace must catch it. A violation writes mc-violation.trace (CI
# uploads it as an artifact).
mc-smoke:
	$(GO) test -run 'TestPaperExhaustive|TestRegressionCorpus' -count=1 -v ./internal/mc/
	$(GO) run -race ./cmd/mc -synth metro -sessions 6 -churn 4 -strategy swarm \
		-seeds 200 -fuzz -live-every 100 -out mc-violation.trace
	$(GO) test -race -tags mc_stalebug -run StaleBug -count=1 ./internal/mc/
	$(GO) test -race -tags mc_strandbug -run StrandBug -count=1 ./internal/mc/

fmt:
	gofmt -w .

# The documentation gate: formatting, vet, a godoc smoke pass over the
# public API and the scenario/policy packages, and a dead-link check over
# README.md, DESIGN.md and docs/ (cmd/doccheck). CI runs it on every push.
docs-check:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	@$(GO) doc . > /dev/null
	@$(GO) doc ./internal/scenario > /dev/null
	@$(GO) doc ./internal/policy > /dev/null
	@$(GO) doc bneck.Simulation > /dev/null
	$(GO) run ./cmd/doccheck
