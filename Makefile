# Development and CI entry points. `make check` is the PR gate; `make bench`
# captures the perf trajectory of the simulator hot path per PR.

GO ?= go

.PHONY: check vet build test test-full bench bench-full fmt

check: vet build test bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -short ./...

test-full:
	$(GO) test ./...

# The perf gate: engine scheduling microbenchmarks, allocation counts on.
bench:
	$(GO) test -bench=SimEngine -benchmem -run='^$$' .

# Full benchmark sweep, including the figure-shaped end-to-end runs.
bench-full:
	$(GO) test -bench=. -benchmem -run='^$$' .

fmt:
	gofmt -w .
