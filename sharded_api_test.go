package bneck_test

import (
	"testing"
	"time"

	"bneck"
)

// TestWithShardsByteIdentical drives the public API on the sharded engine:
// a WAN transit-stub with churn and a link failure, run at 1 and 3 shards,
// must agree on every rate, the quiescence instant, and the packet total.
func TestWithShardsByteIdentical(t *testing.T) {
	type outcome struct {
		quiescence time.Duration
		packets    uint64
		rates      map[bneck.SessionID]string
		shards     int
	}
	run := func(shards int) outcome {
		s, err := bneck.NewTransitStub(bneck.Small, bneck.WAN, 5, bneck.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		hosts, err := s.AddHosts(8)
		if err != nil {
			t.Fatal(err)
		}
		var sessions []*bneck.Session
		for i := 0; i < 4; i++ {
			sess, err := s.Session(hosts[i], hosts[4+i])
			if err != nil {
				t.Fatal(err)
			}
			sess.JoinAt(time.Duration(i)*200*time.Microsecond, bneck.Mbps(50))
			sessions = append(sessions, sess)
		}
		sessions[1].ChangeAt(5*time.Millisecond, bneck.Mbps(10))
		sessions[2].LeaveAt(8 * time.Millisecond)
		links := s.RouterLinks()
		if len(links) > 0 {
			links[len(links)/2].FailAt(12 * time.Millisecond)
			links[len(links)/2].RestoreAt(40 * time.Millisecond)
		}
		rep := s.RunToQuiescence()
		if err := s.Validate(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		out := outcome{quiescence: rep.Quiescence, packets: rep.Packets, rates: map[bneck.SessionID]string{}, shards: s.Shards()}
		for id, r := range rep.Rates {
			out.rates[id] = r.String()
		}
		return out
	}
	serial, sharded := run(1), run(3)
	if serial.shards != 1 || sharded.shards != 3 {
		t.Fatalf("Shards() = %d/%d, want 1/3", serial.shards, sharded.shards)
	}
	if serial.quiescence != sharded.quiescence || serial.packets != sharded.packets {
		t.Fatalf("serial %v/%d packets, sharded %v/%d packets",
			serial.quiescence, serial.packets, sharded.quiescence, sharded.packets)
	}
	if len(serial.rates) != len(sharded.rates) {
		t.Fatalf("rate table sizes differ: %d vs %d", len(serial.rates), len(sharded.rates))
	}
	for id, r := range serial.rates {
		if sharded.rates[id] != r {
			t.Fatalf("session %d: serial %s, sharded %s", id, r, sharded.rates[id])
		}
	}
}

// TestWithShardsStepUntilFirst: StepUntil as the very first advance on a
// sharded simulation must install the partition, not panic (regression:
// it used to bypass the network and index a nil partition).
func TestWithShardsStepUntilFirst(t *testing.T) {
	s, err := bneck.NewTransitStub(bneck.Small, bneck.WAN, 9, bneck.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	hosts, err := s.AddHosts(2)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := s.Session(hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	sess.JoinAt(0, bneck.Unlimited)
	s.StepUntil(5 * time.Millisecond) // must not panic
	rep := s.RunToQuiescence()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rates) != 1 {
		t.Fatalf("rates = %v", rep.Rates)
	}
}
