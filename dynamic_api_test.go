package bneck_test

import (
	"testing"
	"time"

	"bneck"
)

// buildDiamondAPI returns a network with two disjoint router routes between
// the hosts, plus handles to the route links.
func buildDiamondAPI(t *testing.T) (*bneck.Simulation, *bneck.Session, *bneck.Link, *bneck.Link) {
	t.Helper()
	b := bneck.NewNetwork()
	r1, r2, r3, r4 := b.Router("r1"), b.Router("r2"), b.Router("r3"), b.Router("r4")
	src, dst := b.Host("src"), b.Host("dst")
	b.Link(src, r1, bneck.Mbps(100), time.Microsecond)
	topA := b.Link(r1, r2, bneck.Mbps(40), time.Microsecond)
	b.Link(r2, r4, bneck.Mbps(40), time.Microsecond)
	botA := b.Link(r1, r3, bneck.Mbps(25), time.Microsecond)
	b.Link(r3, r4, bneck.Mbps(25), time.Microsecond)
	b.Link(r4, dst, bneck.Mbps(100), time.Microsecond)
	sim, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.Session(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return sim, s, topA, botA
}

func TestLinkSetCapacityAt(t *testing.T) {
	sim, s, top, _ := buildDiamondAPI(t)
	s.JoinAt(0, bneck.Unlimited)
	rep := sim.RunToQuiescence()
	if !rep.Rates[s.ID()].Equal(bneck.Mbps(40)) {
		t.Fatalf("initial rate = %v", rep.Rates[s.ID()])
	}
	top.SetCapacityAt(sim.Now()+time.Millisecond, bneck.Mbps(12))
	rep = sim.RunToQuiescence()
	if err := sim.Validate(); err != nil {
		t.Fatal(err)
	}
	if !rep.Rates[s.ID()].Equal(bneck.Mbps(12)) {
		t.Fatalf("post-change rate = %v, want 12 Mbps", rep.Rates[s.ID()])
	}
	if !top.Capacity().Equal(bneck.Mbps(12)) {
		t.Fatalf("handle capacity = %v", top.Capacity())
	}
}

func TestLinkFailAtAndRestoreAt(t *testing.T) {
	sim, s, top, bot := buildDiamondAPI(t)
	s.JoinAt(0, bneck.Unlimited)
	sim.RunToQuiescence()

	top.FailAt(sim.Now() + time.Millisecond)
	rep := sim.RunToQuiescence()
	if err := sim.Validate(); err != nil {
		t.Fatal(err)
	}
	if !rep.Rates[s.ID()].Equal(bneck.Mbps(25)) {
		t.Fatalf("post-failure rate = %v, want the 25 Mbps detour", rep.Rates[s.ID()])
	}
	if top.Up() {
		t.Fatal("failed link reports up")
	}
	if sim.Migrations() != 1 {
		t.Fatalf("migrations = %d", sim.Migrations())
	}

	// Fail the detour too: stranded. Restore one route: rejoined.
	bot.FailAt(sim.Now() + time.Millisecond)
	sim.RunToQuiescence()
	if err := sim.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.Stranded() || sim.StrandedSessions() != 1 {
		t.Fatal("session not stranded with both routes down")
	}
	top.RestoreAt(sim.Now() + time.Millisecond)
	rep = sim.RunToQuiescence()
	if err := sim.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Stranded() || !s.Active() {
		t.Fatal("session did not rejoin on restore")
	}
	if !rep.Rates[s.ID()].Equal(bneck.Mbps(40)) {
		t.Fatalf("post-restore rate = %v, want 40 Mbps", rep.Rates[s.ID()])
	}
}

// TestPathPolicyAPI pins the public policy surface: WithPathPolicy +
// hysteresis knobs, Reoptimizations, and the ReconfigPackets migration-cost
// metric.
func TestPathPolicyAPI(t *testing.T) {
	build := func(opts ...bneck.Option) (*bneck.Simulation, *bneck.Session, *bneck.Link) {
		b := bneck.NewNetwork()
		r1, r2, r3 := b.Router("r1"), b.Router("r2"), b.Router("r3")
		src, dst := b.Host("src"), b.Host("dst")
		b.Link(src, r1, bneck.Mbps(100), time.Microsecond)
		b.Link(dst, r2, bneck.Mbps(100), time.Microsecond)
		direct := b.Link(r1, r2, bneck.Mbps(80), time.Microsecond)
		b.Link(r1, r3, bneck.Mbps(40), time.Microsecond)
		b.Link(r3, r2, bneck.Mbps(40), time.Microsecond)
		sim, err := b.Build(opts...)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.Session(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		return sim, s, direct
	}
	cycle := func(sim *bneck.Simulation, s *bneck.Session, direct *bneck.Link) {
		s.JoinAt(0, bneck.Unlimited)
		sim.RunToQuiescence()
		direct.FailAt(sim.Now() + time.Millisecond)
		sim.RunToQuiescence()
		direct.RestoreAt(sim.Now() + time.Millisecond)
		sim.RunToQuiescence()
		if err := sim.Validate(); err != nil {
			t.Fatal(err)
		}
	}

	// Default: pinned — but the forced migration still has a packet cost.
	sim, s, direct := build()
	cycle(sim, s, direct)
	if s.PathLen() != 4 || sim.Reoptimizations() != 0 {
		t.Fatalf("pinned: %d hops, %d reoptimizations", s.PathLen(), sim.Reoptimizations())
	}
	if sim.ReconfigPackets() == 0 || sim.ReconfigPackets() >= sim.Packets() {
		t.Fatalf("pinned: reconfig packets %d out of bounds (total %d)",
			sim.ReconfigPackets(), sim.Packets())
	}

	// ReoptimizeOnRestore: the restore folds the detour back.
	sim, s, direct = build(bneck.WithPathPolicy(bneck.ReoptimizeOnRestore))
	cycle(sim, s, direct)
	if s.PathLen() != 3 || sim.Reoptimizations() != 1 {
		t.Fatalf("reoptimize: %d hops, %d reoptimizations", s.PathLen(), sim.Reoptimizations())
	}

	// Hysteresis knobs pass through: a 1.5× stretch tolerates the 4-hop
	// detour.
	sim, s, direct = build(
		bneck.WithPathPolicy(bneck.ReoptimizeOnRestore),
		bneck.WithReoptimizeStretch(1.5),
		bneck.WithReoptimizeMinGain(2),
	)
	cycle(sim, s, direct)
	if s.PathLen() != 4 || sim.Reoptimizations() != 0 {
		t.Fatalf("hysteresis: %d hops, %d reoptimizations", s.PathLen(), sim.Reoptimizations())
	}
}

func TestRouterLinksOnTransitStub(t *testing.T) {
	sim, err := bneck.NewTransitStub(bneck.Small, bneck.LAN, 3)
	if err != nil {
		t.Fatal(err)
	}
	links := sim.RouterLinks()
	if len(links) == 0 {
		t.Fatal("no router links on a transit-stub topology")
	}
	if _, err := sim.AddHosts(8); err != nil {
		t.Fatal(err)
	}
	src, dst, err := sim.RandomHostPair()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.Session(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	s.JoinAt(0, bneck.Unlimited)
	sim.RunToQuiescence()
	if err := sim.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fail and restore a handful of router links; the network must stay
	// valid throughout.
	for i := 0; i < 3; i++ {
		links[i].FailAt(sim.Now() + time.Millisecond)
		sim.RunToQuiescence()
		if err := sim.Validate(); err != nil {
			t.Fatalf("after failing link %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		links[i].RestoreAt(sim.Now() + time.Millisecond)
		sim.RunToQuiescence()
		if err := sim.Validate(); err != nil {
			t.Fatalf("after restoring link %d: %v", i, err)
		}
	}
	if !s.Active() && !s.Stranded() {
		t.Fatal("session lost entirely")
	}
}

func TestLinkHandleBeforeBuildPanics(t *testing.T) {
	b := bneck.NewNetwork()
	r1, r2 := b.Router("r1"), b.Router("r2")
	l := b.Link(r1, r2, bneck.Mbps(10), time.Microsecond)
	defer func() {
		if recover() == nil {
			t.Fatal("using a Link handle before Build did not panic")
		}
	}()
	l.FailAt(0)
}
