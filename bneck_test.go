package bneck_test

import (
	"testing"
	"time"

	"bneck"
)

func buildDumbbell(t *testing.T) (*bneck.Simulation, *bneck.Session, *bneck.Session) {
	t.Helper()
	b := bneck.NewNetwork()
	r1, r2 := b.Router("r1"), b.Router("r2")
	h1, h2 := b.Host("h1"), b.Host("h2")
	h3, h4 := b.Host("h3"), b.Host("h4")
	b.Link(h1, r1, bneck.Mbps(100), time.Microsecond)
	b.Link(h3, r1, bneck.Mbps(100), time.Microsecond)
	b.Link(r1, r2, bneck.Mbps(60), time.Microsecond)
	b.Link(r2, h2, bneck.Mbps(100), time.Microsecond)
	b.Link(r2, h4, bneck.Mbps(100), time.Microsecond)
	sim, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := sim.Session(h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sim.Session(h3, h4)
	if err != nil {
		t.Fatal(err)
	}
	return sim, s1, s2
}

func TestPublicAPIQuickstart(t *testing.T) {
	sim, s1, s2 := buildDumbbell(t)
	s1.JoinAt(0, bneck.Unlimited)
	s2.JoinAt(0, bneck.Unlimited)
	rep := sim.RunToQuiescence()
	if err := sim.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rates) != 2 {
		t.Fatalf("rates = %v", rep.Rates)
	}
	want := bneck.Mbps(30)
	for id, r := range rep.Rates {
		if !r.Equal(want) {
			t.Fatalf("session %d rate = %v, want %v", id, r, want)
		}
	}
	if !s1.Converged() || !s2.Converged() {
		t.Fatalf("sessions not converged")
	}
	if rep.Packets == 0 || rep.Quiescence <= 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestPublicAPIDynamics(t *testing.T) {
	sim, s1, s2 := buildDumbbell(t)
	s1.JoinAt(0, bneck.Unlimited)
	sim.RunToQuiescence()
	if r, _ := s1.Rate(); !r.Equal(bneck.Mbps(60)) {
		t.Fatalf("solo rate = %v", r)
	}
	s2.JoinAt(sim.Now()+time.Millisecond, bneck.Mbps(10))
	sim.RunToQuiescence()
	if err := sim.Validate(); err != nil {
		t.Fatal(err)
	}
	if r, _ := s1.Rate(); !r.Equal(bneck.Mbps(50)) {
		t.Fatalf("s1 rate with capped peer = %v", r)
	}
	s2.ChangeAt(sim.Now()+time.Millisecond, bneck.Unlimited)
	sim.RunToQuiescence()
	if r, _ := s2.Rate(); !r.Equal(bneck.Mbps(30)) {
		t.Fatalf("s2 rate after change = %v", r)
	}
	s1.LeaveAt(sim.Now() + time.Millisecond)
	sim.RunToQuiescence()
	if err := sim.Validate(); err != nil {
		t.Fatal(err)
	}
	if r, _ := s2.Rate(); !r.Equal(bneck.Mbps(60)) {
		t.Fatalf("s2 rate after leave = %v", r)
	}
	if s1.Active() {
		t.Fatalf("s1 still active")
	}
}

func TestPublicAPIOracleAgrees(t *testing.T) {
	sim, s1, s2 := buildDumbbell(t)
	s1.JoinAt(0, bneck.Unlimited)
	s2.JoinAt(0, bneck.Mbps(5))
	sim.RunToQuiescence()
	oracle, err := sim.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := s1.Rate()
	r2, _ := s2.Rate()
	if !oracle[s1.ID()].Equal(r1) || !oracle[s2.ID()].Equal(r2) {
		t.Fatalf("oracle %v disagrees with granted %v/%v", oracle, r1, r2)
	}
}

func TestPublicAPITransitStub(t *testing.T) {
	sim, err := bneck.NewTransitStub(bneck.Small, bneck.LAN, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddHosts(20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		src, dst, err := sim.RandomHostPair()
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.Session(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		s.JoinAt(time.Duration(i)*50*time.Microsecond, bneck.Unlimited)
	}
	sim.RunToQuiescence()
	if err := sim.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIInternet(t *testing.T) {
	// Sharded: the internet topology's hierarchy labels drive the partition.
	sim, err := bneck.NewInternet(bneck.Small, 1, bneck.WithShards(2), bneck.WithSpeculation(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddHosts(20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		src, dst, err := sim.RandomHostPair()
		if err != nil {
			t.Fatal(err)
		}
		s, err := sim.Session(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		s.JoinAt(time.Duration(i)*50*time.Microsecond, bneck.Unlimited)
	}
	sim.RunToQuiescence()
	if err := sim.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := bneck.NewInternet(bneck.Size(99), 1); err == nil {
		t.Fatal("bad size accepted")
	}
}

func TestPublicAPIRateCallback(t *testing.T) {
	var events int
	b := bneck.NewNetwork()
	r1 := b.Router("r1")
	h1, h2 := b.Host("h1"), b.Host("h2")
	b.Link(h1, r1, bneck.Mbps(100), time.Microsecond)
	b.Link(r1, h2, bneck.Mbps(100), time.Microsecond)
	sim, err := b.Build(bneck.WithRateCallback(func(s bneck.SessionID, r bneck.Rate, at time.Duration) {
		events++
	}))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.Session(h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	s.JoinAt(0, bneck.Mbps(10))
	sim.RunToQuiescence()
	if events == 0 {
		t.Fatalf("rate callback never fired")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := bneck.NewNetwork()
	h := b.Host("h")
	// Unattached host must fail validation.
	if _, err := b.Build(); err == nil {
		t.Fatalf("expected error for unattached host")
	}
	_ = h

	b2 := bneck.NewNetwork()
	r := b2.Router("r")
	b2.Link(r, r, bneck.Mbps(1), 0) // self loop recorded as builder error
	if _, err := b2.Build(); err == nil {
		t.Fatalf("expected error for self loop")
	}

	if _, err := bneck.NewTransitStub(bneck.Size(99), bneck.LAN, 1); err == nil {
		t.Fatalf("expected error for unknown size")
	}
}

func TestHandBuiltAddHostsFails(t *testing.T) {
	b := bneck.NewNetwork()
	r := b.Router("r")
	h1, h2 := b.Host("h1"), b.Host("h2")
	b.Link(h1, r, bneck.Mbps(10), 0)
	b.Link(h2, r, bneck.Mbps(10), 0)
	sim, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.AddHosts(1); err == nil {
		t.Fatalf("expected error on hand-built network")
	}
}
