package bneck

import (
	"fmt"
	"time"

	"bneck/internal/graph"
	"bneck/internal/policy"
	"bneck/internal/topology"
)

// Node is a router or host handle returned by NetworkBuilder.
type Node struct {
	id graph.NodeID
}

// NetworkBuilder assembles a hand-built topology. All links are duplex with
// symmetric capacity and propagation delay, per the paper's model.
type NetworkBuilder struct {
	g     *graph.Graph
	links []*Link
	err   error
}

// NewNetwork returns an empty builder.
func NewNetwork() *NetworkBuilder {
	return &NetworkBuilder{g: graph.New()}
}

// Router adds a router.
func (b *NetworkBuilder) Router(name string) Node {
	return Node{id: b.g.AddRouter(name)}
}

// Host adds a host. Hosts terminate sessions and must be connected to
// exactly one router.
func (b *NetworkBuilder) Host(name string) Node {
	return Node{id: b.g.AddHost(name)}
}

// Link connects two nodes with a duplex link and returns a handle that can
// schedule topology events (capacity changes, failures, restorations) once
// the network is built.
func (b *NetworkBuilder) Link(x, y Node, capacity Rate, propagation time.Duration) *Link {
	l := &Link{}
	if b.err != nil {
		return l
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				b.err = fmt.Errorf("bneck: %v", r)
			}
		}()
		l.ab, l.ba = b.g.Connect(x.id, y.id, capacity, propagation)
		b.links = append(b.links, l)
	}()
	return l
}

// Build validates the topology and returns a Simulation with default
// options. Link handles created by this builder are bound to the returned
// Simulation (the latest Build wins if called repeatedly).
func (b *NetworkBuilder) Build(opts ...Option) (*Simulation, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.g.Validate(); err != nil {
		return nil, fmt.Errorf("bneck: invalid topology: %w", err)
	}
	sim, err := newSimulation(b.g, nil, opts...)
	if err != nil {
		return nil, err
	}
	for _, l := range b.links {
		l.sim = sim
	}
	return sim, nil
}

// Size selects one of the paper's topology scales for NewTransitStub.
type Size int

const (
	// Small is the paper's 110-router topology.
	Small Size = iota + 1
	// Medium is the paper's 1,100-router topology.
	Medium
	// Big is the paper's 11,000-router topology.
	Big
)

// Scenario selects the propagation model for NewTransitStub.
type Scenario int

const (
	// LAN fixes all propagation delays at 1 µs.
	LAN Scenario = iota + 1
	// WAN draws router-link delays uniformly from 1–10 ms.
	WAN
)

// NewTransitStub generates one of the paper's transit-stub topologies. Add
// hosts with Simulation.AddHosts before creating sessions.
func NewTransitStub(size Size, scen Scenario, seed int64, opts ...Option) (*Simulation, error) {
	var params topology.Params
	switch size {
	case Small:
		params = topology.Small
	case Medium:
		params = topology.Medium
	case Big:
		params = topology.Big
	default:
		return nil, fmt.Errorf("bneck: unknown size %d", size)
	}
	var tScen topology.Scenario
	switch scen {
	case LAN:
		tScen = topology.LAN
	case WAN:
		tScen = topology.WAN
	default:
		return nil, fmt.Errorf("bneck: unknown scenario %d", scen)
	}
	topo, err := topology.Generate(params, tScen, seed)
	if err != nil {
		return nil, err
	}
	return newSimulation(topo.Graph, topo, opts...)
}

// NewInternet generates a hierarchical internet-scale topology: regional
// core meshes joined by geography-derived long-haul links, metro
// aggregation rings under each core, and a power-law fringe of edge routers
// hosts attach to. The three sizes are the benchmark ladder's rungs — Small
// ≈ 40 routers (paper scale), Medium ≈ 1k (metro scale), Big ≈ 10k (the
// internet rung). Sharded simulations (WithShards) of an internet topology
// partition along the generator's own region/metro hierarchy instead of the
// flat latency sweep, which keeps 8–16 shards profitable on these sparse
// graphs. Add hosts with Simulation.AddHosts before creating sessions.
func NewInternet(size Size, seed int64, opts ...Option) (*Simulation, error) {
	var params topology.InternetParams
	switch size {
	case Small:
		params = topology.InternetPaper
	case Medium:
		params = topology.InternetMetro
	case Big:
		params = topology.InternetGlobal
	default:
		return nil, fmt.Errorf("bneck: unknown size %d", size)
	}
	topo, err := topology.GenerateInternet(params, seed)
	if err != nil {
		return nil, err
	}
	return newSimulation(topo.Graph, topo, opts...)
}

// Option customizes a Simulation.
type Option func(*options)

type options struct {
	controlPacketBits int64
	binSize           time.Duration
	onRate            func(SessionID, Rate, time.Duration)
	shards            int
	shardsSet         bool
	windowBatch       int
	speculate         bool
	pathPolicy        policy.Config
}

func defaultOptions() options {
	return options{controlPacketBits: 512, binSize: 5 * time.Millisecond}
}

// PathPolicy selects how a Simulation treats session paths after topology
// events. See WithPathPolicy.
type PathPolicy int

const (
	// Pinned is the default and the paper's model: a session's path is
	// fixed at join time and moves only when a link failure forces a
	// migration. After a failure → restore cycle, sessions stay on their
	// detour paths.
	Pinned PathPolicy = iota
	// ReoptimizeOnRestore re-runs shortest-path over the active sessions
	// whenever a link restore (or a capacity increase beyond the
	// WithReoptimizeCapacityGain threshold) signals that shorter paths may
	// exist, and migrates any session whose current path exceeds the
	// configured stretch/hysteresis margin — through the protocol's own
	// Leave → reroute → Join, a fresh session ID per move, exactly like a
	// failure-driven migration.
	ReoptimizeOnRestore
)

// WithPathPolicy selects the path re-optimization policy. The default,
// Pinned, reproduces the paper's pin-at-join behavior exactly. With
// ReoptimizeOnRestore the simulation migrates sessions back onto shorter
// paths after restores; tune the hysteresis with WithReoptimizeStretch,
// WithReoptimizeMinGain and WithReoptimizeCapacityGain. Policy sweeps run
// as barrier events in session-creation order, so results stay
// byte-identical at every WithShards and WithWindowBatch setting.
func WithPathPolicy(p PathPolicy) Option {
	return func(o *options) {
		if p == ReoptimizeOnRestore {
			o.pathPolicy.Kind = policy.ReoptimizeOnRestore
		} else {
			o.pathPolicy.Kind = policy.Pinned
		}
	}
}

// WithReoptimizeStretch sets the multiplicative hysteresis of
// ReoptimizeOnRestore: a session migrates only when its current path is
// longer than stretch × its best path. Values ≤ 1 (the default) migrate on
// any strictly shorter path.
func WithReoptimizeStretch(stretch float64) Option {
	return func(o *options) { o.pathPolicy.Stretch = stretch }
}

// WithReoptimizeMinGain sets the additive hysteresis of
// ReoptimizeOnRestore: a session migrates only when the move saves at least
// hops links. Values ≤ 1 (the default) migrate on any strict improvement.
func WithReoptimizeMinGain(hops int) Option {
	return func(o *options) { o.pathPolicy.MinGain = hops }
}

// WithReoptimizeCapacityGain sets the capacity-increase trigger of
// ReoptimizeOnRestore: raising a link's capacity to at least gain × its old
// value runs a re-optimization sweep in which sessions whose best path
// crosses the upgraded link migrate on any strict improvement, hysteresis
// bypassed (the upgrade is an operator signal that traffic belongs back).
// Values ≤ 0 keep the default of 2 (a doubling).
func WithReoptimizeCapacityGain(gain float64) Option {
	return func(o *options) { o.pathPolicy.CapacityGain = gain }
}

// WithControlPacketBits sets the control packet size used for per-link
// transmission (serialization) delay; 0 models ideal links.
func WithControlPacketBits(bits int64) Option {
	return func(o *options) { o.controlPacketBits = bits }
}

// WithTrafficBinSize sets the packet-count aggregation interval of
// Simulation.TrafficBins.
func WithTrafficBinSize(d time.Duration) Option {
	return func(o *options) { o.binSize = d }
}

// WithRateCallback observes every API.Rate upcall: the session, the granted
// rate, and the virtual time. On a sharded simulation (WithShards) the
// callback runs on shard goroutines and may be invoked concurrently for
// different sessions.
func WithRateCallback(fn func(s SessionID, r Rate, at time.Duration)) Option {
	return func(o *options) { o.onRate = fn }
}

// WithShards runs the simulation on the sharded engine: the topology's nodes
// are partitioned into n shards (graph-driven, cutting only the
// highest-latency links) and a single run advances across n cores under
// conservative lookahead windows. Results are byte-identical for every n,
// including 1 — the sharded-serial reference — and identical to the classic
// serial engine's. n == 0 auto-tunes the shard count and window batch from
// the process's GOMAXPROCS (one shard per usable CPU, clamped to eight);
// n < 0 — like omitting the option — selects the classic serial engine.
func WithShards(n int) Option {
	return func(o *options) { o.shards, o.shardsSet = n, true }
}

// WithSpeculation enables optimistic window execution on the sharded engine
// (it has no effect without WithShards): at synchronization barriers where
// every cut-link wire is idle, shards speculatively run windows several
// lookaheads long, journaling cross-shard sends and externalizing them only
// at commit; a window that would overtake a journaled arrival parks and its
// suffix replays under the conservative bound — no work is ever rolled
// back. Results are byte-identical with speculation on or off at every
// shard count and batch setting; only wall-clock changes. See
// Simulation.SpeculationStats for outcome counters.
func WithSpeculation(on bool) Option {
	return func(o *options) { o.speculate = on }
}

// WithWindowBatch bounds how many consecutive conservative windows the
// sharded engine runs per synchronization round (its fork/join). Higher
// values amortize synchronization on low-delay topologies, where a single
// window is short; 1 disables batching, 0 (the default) keeps the engine's
// default. Purely a performance knob: results are byte-identical at every
// setting. It has no effect without WithShards.
func WithWindowBatch(k int) Option {
	return func(o *options) { o.windowBatch = k }
}
