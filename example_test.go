package bneck_test

import (
	"fmt"
	"time"

	"bneck"
)

// Example reproduces the textbook two-link instance: the 4 Mbps link is the
// system bottleneck for the long session and its neighbor; the 10 Mbps link
// gives its residue to the short session.
func Example() {
	b := bneck.NewNetwork()
	r1, r2, r3 := b.Router("r1"), b.Router("r2"), b.Router("r3")
	srcA, dstA := b.Host("srcA"), b.Host("dstA")
	srcB, dstB := b.Host("srcB"), b.Host("dstB")
	srcC, dstC := b.Host("srcC"), b.Host("dstC")

	host := bneck.Mbps(100)
	b.Link(srcA, r1, host, time.Microsecond)
	b.Link(srcB, r1, host, time.Microsecond)
	b.Link(srcC, r2, host, time.Microsecond)
	b.Link(dstA, r2, host, time.Microsecond)
	b.Link(dstB, r3, host, time.Microsecond)
	b.Link(dstC, r3, host, time.Microsecond)
	b.Link(r1, r2, bneck.Mbps(10), time.Microsecond)
	b.Link(r2, r3, bneck.Mbps(4), time.Microsecond)

	sim, err := b.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	s1, _ := sim.Session(srcA, dstA) // crosses r1–r2
	s2, _ := sim.Session(srcB, dstB) // crosses both
	s3, _ := sim.Session(srcC, dstC) // crosses r2–r3
	s1.JoinAt(0, bneck.Unlimited)
	s2.JoinAt(0, bneck.Unlimited)
	s3.JoinAt(0, bneck.Unlimited)

	sim.RunToQuiescence()
	r1v, _ := s1.Rate()
	r2v, _ := s2.Rate()
	r3v, _ := s3.Rate()
	fmt.Printf("s1=%.0f Mbps s2=%.0f Mbps s3=%.0f Mbps validate=%v\n",
		r1v.Float64()/1e6, r2v.Float64()/1e6, r3v.Float64()/1e6, sim.Validate())
	// Output: s1=8 Mbps s2=2 Mbps s3=2 Mbps validate=<nil>
}

// ExampleSession_ChangeAt shows demand changes reactivating a quiescent
// network.
func ExampleSession_ChangeAt() {
	b := bneck.NewNetwork()
	r1, r2 := b.Router("r1"), b.Router("r2")
	h1, h2 := b.Host("h1"), b.Host("h2")
	h3, h4 := b.Host("h3"), b.Host("h4")
	c := bneck.Mbps(100)
	b.Link(h1, r1, c, time.Microsecond)
	b.Link(h3, r1, c, time.Microsecond)
	b.Link(r1, r2, bneck.Mbps(60), time.Microsecond)
	b.Link(r2, h2, c, time.Microsecond)
	b.Link(r2, h4, c, time.Microsecond)
	sim, _ := b.Build()
	s1, _ := sim.Session(h1, h2)
	s2, _ := sim.Session(h3, h4)
	s1.JoinAt(0, bneck.Unlimited)
	s2.JoinAt(0, bneck.Unlimited)
	sim.RunToQuiescence()
	a, _ := s1.Rate()
	fmt.Printf("equal shares: %.0f Mbps\n", a.Float64()/1e6)

	// s1 caps itself; s2 absorbs the slack, then the network goes silent
	// again.
	s1.ChangeAt(sim.Now()+time.Millisecond, bneck.Mbps(10))
	sim.RunToQuiescence()
	a, _ = s1.Rate()
	bv, _ := s2.Rate()
	fmt.Printf("after change: s1=%.0f Mbps s2=%.0f Mbps\n", a.Float64()/1e6, bv.Float64()/1e6)
	// Output:
	// equal shares: 30 Mbps
	// after change: s1=10 Mbps s2=50 Mbps
}

// ExamplePathPolicy shows path re-optimization after a failure → restore
// cycle: a session is forced onto a slow detour when the direct link fails,
// and — because the simulation runs with ReoptimizeOnRestore — migrates back
// onto the direct path the moment the link returns. Under the default
// Pinned policy it would stay on the 40 Mbps detour forever.
func ExamplePathPolicy() {
	b := bneck.NewNetwork()
	r1, r2, r3 := b.Router("r1"), b.Router("r2"), b.Router("r3")
	src, dst := b.Host("src"), b.Host("dst")
	b.Link(src, r1, bneck.Mbps(100), time.Microsecond)
	b.Link(dst, r2, bneck.Mbps(100), time.Microsecond)
	direct := b.Link(r1, r2, bneck.Mbps(80), time.Microsecond) // shortest path
	b.Link(r1, r3, bneck.Mbps(40), time.Microsecond)           // the detour
	b.Link(r3, r2, bneck.Mbps(40), time.Microsecond)

	sim, _ := b.Build(bneck.WithPathPolicy(bneck.ReoptimizeOnRestore))
	s, _ := sim.Session(src, dst)
	s.JoinAt(0, bneck.Unlimited)
	sim.RunToQuiescence()
	r, _ := s.Rate()
	fmt.Printf("joined:   %d hops at %.0f Mbps\n", s.PathLen(), r.Float64()/1e6)

	direct.FailAt(sim.Now() + time.Millisecond)
	sim.RunToQuiescence()
	r, _ = s.Rate()
	fmt.Printf("failed:   %d hops at %.0f Mbps (migrations=%d)\n",
		s.PathLen(), r.Float64()/1e6, sim.Migrations())

	direct.RestoreAt(sim.Now() + time.Millisecond)
	sim.RunToQuiescence()
	r, _ = s.Rate()
	fmt.Printf("restored: %d hops at %.0f Mbps (reoptimizations=%d)\n",
		s.PathLen(), r.Float64()/1e6, sim.Reoptimizations())
	// Output:
	// joined:   3 hops at 80 Mbps
	// failed:   4 hops at 40 Mbps (migrations=1)
	// restored: 3 hops at 80 Mbps (reoptimizations=1)
}

// ExampleSimulation_Oracle compares the distributed result with the
// centralized water-filling computation.
func ExampleSimulation_Oracle() {
	b := bneck.NewNetwork()
	r := b.Router("r")
	h1, h2 := b.Host("h1"), b.Host("h2")
	b.Link(h1, r, bneck.Mbps(30), time.Microsecond)
	b.Link(r, h2, bneck.Mbps(100), time.Microsecond)
	sim, _ := b.Build()
	s, _ := sim.Session(h1, h2)
	s.JoinAt(0, bneck.Unlimited)
	sim.RunToQuiescence()
	oracle, _ := sim.Oracle()
	got, _ := s.Rate()
	fmt.Println(got.Equal(oracle[s.ID()]))
	// Output: true
}
