// Command topogen generates a transit-stub topology and describes it:
// router/link counts per tier, degree distribution, path-length statistics
// over random host pairs, and the propagation-delay profile. Useful for
// sanity-checking the gt-itm substitute against the paper's setup.
//
// Usage:
//
//	topogen [-size small|medium|big] [-scenario lan|wan] [-hosts N] [-seed S]
//	topogen -internet [-size small|medium|big] [-hosts N] [-seed S]
//
// With -internet the command generates the hierarchical internet-scale
// topology instead (core/metro/edge tiers, power-law fringe, geography-
// derived latency bands; -scenario is ignored) and additionally reports the
// per-tier router counts and the router degree distribution — the evidence
// that the preferential-attachment fringe is heavy-tailed.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"bneck/internal/graph"
	"bneck/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topogen: ")

	var (
		sizeName = flag.String("size", "small", "topology size: small, medium, big")
		scenName = flag.String("scenario", "lan", "propagation scenario: lan, wan (ignored with -internet)")
		internet = flag.Bool("internet", false, "generate the hierarchical internet-scale topology (core/metro/edge tiers, power-law fringe) instead of transit-stub")
		hosts    = flag.Int("hosts", 100, "hosts to attach")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		pairs    = flag.Int("pairs", 200, "random host pairs for path statistics")
	)
	flag.Parse()

	var (
		topo   topology.Hosted
		header string
	)
	if *internet {
		var params topology.InternetParams
		switch *sizeName {
		case "small":
			params = topology.InternetPaper
		case "medium":
			params = topology.InternetMetro
		case "big":
			params = topology.InternetGlobal
		default:
			log.Fatalf("unknown size %q", *sizeName)
		}
		it, err := topology.GenerateInternet(params, *seed)
		if err != nil {
			log.Fatal(err)
		}
		topo = it
		header = fmt.Sprintf("topology %s / internet (seed %d)\n", params.Name, *seed)
	} else {
		var size topology.Params
		switch *sizeName {
		case "small":
			size = topology.Small
		case "medium":
			size = topology.Medium
		case "big":
			size = topology.Big
		default:
			log.Fatalf("unknown size %q", *sizeName)
		}
		var scen topology.Scenario
		switch *scenName {
		case "lan":
			scen = topology.LAN
		case "wan":
			scen = topology.WAN
		default:
			log.Fatalf("unknown scenario %q", *scenName)
		}
		ts, err := topology.Generate(size, scen, *seed)
		if err != nil {
			log.Fatal(err)
		}
		topo = ts
		header = fmt.Sprintf("topology %s / %s (seed %d)\n", size.Name, scen, *seed)
	}
	topo.AddHosts(*hosts)
	g := topo.Topology()

	fmt.Print(header)
	switch t := topo.(type) {
	case *topology.Network:
		fmt.Printf("  transit routers : %d\n", len(t.TransitRouters))
		fmt.Printf("  stub routers    : %d\n", len(t.StubRouters))
		fmt.Printf("  hosts           : %d\n", len(t.Hosts))
	case *topology.Internet:
		fmt.Printf("  core routers    : %d (%d regions)\n", len(t.Core), t.Params.Regions)
		fmt.Printf("  metro routers   : %d (%d metros)\n", len(t.Metro), t.Params.Regions*t.Params.MetrosPerRegion)
		fmt.Printf("  edge routers    : %d\n", len(t.Edge))
		fmt.Printf("  hosts           : %d\n", len(t.Hosts))
	}
	fmt.Printf("  directed links  : %d\n", g.NumLinks())

	// Capacity tiers.
	tierCount := map[string]int{}
	var minProp, maxProp time.Duration
	first := true
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(graph.LinkID(i))
		tierCount[l.Capacity.String()]++
		if first || l.Propagation < minProp {
			minProp = l.Propagation
		}
		if first || l.Propagation > maxProp {
			maxProp = l.Propagation
		}
		first = false
	}
	var tiers []string
	for t := range tierCount {
		tiers = append(tiers, t)
	}
	sort.Strings(tiers)
	fmt.Println("  capacity tiers  :")
	for _, t := range tiers {
		fmt.Printf("    %14s bps × %d links\n", t, tierCount[t])
	}
	fmt.Printf("  propagation     : %v … %v\n", minProp, maxProp)

	if *internet {
		printDegrees(g)
	}

	// Path statistics over random pairs.
	res := graph.NewResolver(g, 256)
	var lengths []int
	for i := 0; i < *pairs; i++ {
		src, dst := topo.RandomHostPair()
		p, err := res.HostPath(src, dst)
		if err != nil {
			log.Fatalf("path %d: %v", i, err)
		}
		lengths = append(lengths, len(p))
	}
	sort.Ints(lengths)
	sum := 0
	for _, l := range lengths {
		sum += l
	}
	fmt.Printf("  path lengths    : min %d, median %d, mean %.1f, max %d (over %d pairs)\n",
		lengths[0], lengths[len(lengths)/2], float64(sum)/float64(len(lengths)),
		lengths[len(lengths)-1], len(lengths))
}

// printDegrees summarizes the router degree distribution (host links
// excluded): a histogram plus the max/mean ratio that evidences the
// preferential-attachment heavy tail.
func printDegrees(g *graph.Graph) {
	deg := map[graph.NodeID]int{}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(graph.LinkID(i))
		if g.Node(l.From).Kind != graph.Router || g.Node(l.To).Kind != graph.Router {
			continue
		}
		deg[l.From]++
	}
	hist := map[int]int{}
	max, sum := 0, 0
	for _, d := range deg {
		hist[d]++
		sum += d
		if d > max {
			max = d
		}
	}
	if len(deg) == 0 {
		return
	}
	var degrees []int
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	mean := float64(sum) / float64(len(deg))
	fmt.Printf("  router degrees  : mean %.1f, max %d (%.1f× mean)\n", mean, max, float64(max)/mean)
	for _, d := range degrees {
		fmt.Printf("    degree %3d × %d routers\n", d, hist[d])
	}
}
