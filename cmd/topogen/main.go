// Command topogen generates a transit-stub topology and describes it:
// router/link counts per tier, degree distribution, path-length statistics
// over random host pairs, and the propagation-delay profile. Useful for
// sanity-checking the gt-itm substitute against the paper's setup.
//
// Usage:
//
//	topogen [-size small|medium|big] [-scenario lan|wan] [-hosts N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"bneck/internal/graph"
	"bneck/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topogen: ")

	var (
		sizeName = flag.String("size", "small", "topology size: small, medium, big")
		scenName = flag.String("scenario", "lan", "propagation scenario: lan, wan")
		hosts    = flag.Int("hosts", 100, "hosts to attach")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		pairs    = flag.Int("pairs", 200, "random host pairs for path statistics")
	)
	flag.Parse()

	var size topology.Params
	switch *sizeName {
	case "small":
		size = topology.Small
	case "medium":
		size = topology.Medium
	case "big":
		size = topology.Big
	default:
		log.Fatalf("unknown size %q", *sizeName)
	}
	var scen topology.Scenario
	switch *scenName {
	case "lan":
		scen = topology.LAN
	case "wan":
		scen = topology.WAN
	default:
		log.Fatalf("unknown scenario %q", *scenName)
	}

	topo, err := topology.Generate(size, scen, *seed)
	if err != nil {
		log.Fatal(err)
	}
	topo.AddHosts(*hosts)
	g := topo.Graph

	fmt.Printf("topology %s / %s (seed %d)\n", size.Name, scen, *seed)
	fmt.Printf("  transit routers : %d\n", len(topo.TransitRouters))
	fmt.Printf("  stub routers    : %d\n", len(topo.StubRouters))
	fmt.Printf("  hosts           : %d\n", len(topo.Hosts))
	fmt.Printf("  directed links  : %d\n", g.NumLinks())

	// Capacity tiers.
	tierCount := map[string]int{}
	var minProp, maxProp time.Duration
	first := true
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(graph.LinkID(i))
		tierCount[l.Capacity.String()]++
		if first || l.Propagation < minProp {
			minProp = l.Propagation
		}
		if first || l.Propagation > maxProp {
			maxProp = l.Propagation
		}
		first = false
	}
	var tiers []string
	for t := range tierCount {
		tiers = append(tiers, t)
	}
	sort.Strings(tiers)
	fmt.Println("  capacity tiers  :")
	for _, t := range tiers {
		fmt.Printf("    %14s bps × %d links\n", t, tierCount[t])
	}
	fmt.Printf("  propagation     : %v … %v\n", minProp, maxProp)

	// Path statistics over random pairs.
	res := graph.NewResolver(g, 256)
	var lengths []int
	for i := 0; i < *pairs; i++ {
		src, dst := topo.RandomHostPair()
		p, err := res.HostPath(src, dst)
		if err != nil {
			log.Fatalf("path %d: %v", i, err)
		}
		lengths = append(lengths, len(p))
	}
	sort.Ints(lengths)
	sum := 0
	for _, l := range lengths {
		sum += l
	}
	fmt.Printf("  path lengths    : min %d, median %d, mean %.1f, max %d (over %d pairs)\n",
		lengths[0], lengths[len(lengths)/2], float64(sum)/float64(len(lengths)),
		lengths[len(lengths)-1], len(lengths))
}
