// Command doccheck is the repository's documentation gate: it scans the
// markdown files (README.md, DESIGN.md, docs/) for dead relative links —
// [text](path) targets that do not exist on disk — and fails with a listing
// if any are found. External links (http/https/mailto) and pure #anchors
// are skipped; a relative target's trailing #anchor is stripped before the
// existence check.
//
// It is wired into `make docs-check` (alongside gofmt, go vet and a go doc
// smoke pass) and the CI workflow, so documentation drift fails the build
// like any other regression.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links. Images ([!...](...)) resolve the
// same way, so one pattern covers both.
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doccheck [file-or-dir ...]\n\nDefaults to README.md, DESIGN.md and docs/.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"README.md", "DESIGN.md", "docs"}
	}

	var files []string
	for _, root := range roots {
		info, err := os.Stat(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(1)
		}
		if !info.IsDir() {
			files = append(files, root)
			continue
		}
		err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(1)
		}
	}

	dead := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(1)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if !checkTarget(filepath.Dir(file), target) {
					fmt.Fprintf(os.Stderr, "doccheck: %s:%d: dead link %q\n", file, i+1, target)
					dead++
				}
			}
		}
	}
	if dead > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d dead link(s)\n", dead)
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d markdown file(s) clean\n", len(files))
}

// checkTarget reports whether a link target resolves: external schemes and
// in-page anchors pass untested, relative paths (anchor stripped) must
// exist on disk relative to the linking file.
func checkTarget(dir, target string) bool {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"),
		strings.HasPrefix(target, "#"):
		return true
	}
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
	}
	if target == "" {
		return true
	}
	_, err := os.Stat(filepath.Join(dir, target))
	return err == nil
}
