// Command bneck runs one B-Neck scenario on a generated transit-stub
// topology and prints the resulting max-min fair rate table, the time to
// quiescence, and the control-traffic totals — a quick way to poke at the
// algorithm.
//
// Usage:
//
//	bneck [-size small|medium|big] [-scenario lan|wan] [-internet] [-sessions N]
//	      [-demand-cap P] [-seed S] [-shards N] [-window-batch K] [-speculate]
//	      [-path-policy pinned|reoptimize] [-validate] [-v] [-live]
//	bneck -run-scenario <script> [-live] [-shards N] [-speculate]
//	      [-path-policy pinned|reoptimize]
//
// With -live the protocol runs on the concurrent actor runtime (one
// goroutine per task, no simulator): quiescence becomes wall-clock
// termination and the scenario exercises real parallelism.
//
// With -run-scenario the command executes a declarative event script — one
// timeline mixing session churn with link failures, restorations and
// capacity changes — validating the allocation against the water-filling
// oracle after every epoch. See docs/SCENARIOS.md for the complete script
// reference and examples/scenarios/ for ready-made scripts.
//
// -shards selects the engine (0 classic serial, N sharded, -1 auto-tuned
// from GOMAXPROCS) and -speculate enables optimistic window execution on
// the sharded engine; both apply to plain runs and -run-scenario alike, and
// every combination prints byte-identical results.
//
// -internet swaps the transit-stub generator for the hierarchical
// internet-scale one (core/metro/edge tiers, power-law fringe,
// geography-derived latency bands): -size maps to ~40/~1k/~10k routers,
// -scenario is ignored, and sharded runs partition along the generator's
// region/metro hierarchy.
//
// -path-policy selects the path re-optimization policy (pinned, the
// default, or reoptimize — migrate sessions back onto shorter paths after
// restores). With -run-scenario, each of -path-policy, -reopt-stretch and
// -reopt-min-gain overrides just its own field of the script's `policy`
// directive; unset flags keep the script's settings.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"bneck/internal/exp"
	"bneck/internal/graph"
	"bneck/internal/live"
	"bneck/internal/network"
	"bneck/internal/policy"
	"bneck/internal/rate"
	"bneck/internal/scenario"
	"bneck/internal/sim"
	"bneck/internal/topology"
	"bneck/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bneck: ")

	var (
		sizeName     = flag.String("size", "small", "topology size: small, medium, big")
		scenName     = flag.String("scenario", "lan", "propagation scenario: lan, wan (ignored with -internet)")
		internet     = flag.Bool("internet", false, "generate a hierarchical internet-scale topology (core/metro/edge tiers, power-law fringe) instead of transit-stub; sharded runs partition along its region/metro hierarchy")
		sessions     = flag.Int("sessions", 100, "number of sessions to join")
		demandCap    = flag.Float64("demand-cap", 0.25, "fraction of sessions with a finite demand")
		seed         = flag.Int64("seed", 1, "deterministic seed")
		validate     = flag.Bool("validate", true, "cross-check against the centralized oracle")
		incOracle    = flag.Bool("incremental-oracle", true, "validate with the delta-driven incremental oracle (simulator runs): churn feeds the solver as deltas; rates are byte-identical to the full solver either way")
		verbose      = flag.Bool("v", false, "print every session's rate")
		liveMode     = flag.Bool("live", false, "run on the concurrent actor runtime instead of the simulator")
		shards       = flag.Int("shards", 0, "shards for the simulator run: 0 = classic serial engine, >0 = sharded engine, -1 = auto-tune from GOMAXPROCS (byte-identical at any count)")
		windowBatch  = flag.Int("window-batch", 0, "conservative windows per sharded fork/join: 0 = engine default, 1 = no batching (byte-identical at any setting)")
		speculate    = flag.Bool("speculate", false, "optimistic window execution on the sharded engine: journaled lookahead past the conservative bound, committed rollback-free (byte-identical on or off; needs -shards)")
		scenFile     = flag.String("run-scenario", "", "execute a declarative scenario script (full DSL reference: docs/SCENARIOS.md)")
		pathPolicy   = flag.String("path-policy", "", "path re-optimization policy: pinned or reoptimize (migrate sessions back onto shorter paths after restores); overrides a scenario script's `policy` directive, keeping the script's hysteresis knobs")
		reoptStretch = flag.Float64("reopt-stretch", 0, "reoptimize hysteresis: migrate only when the current path exceeds stretch × the best path (0 keeps the script/default setting)")
		reoptMinGain = flag.Int("reopt-min-gain", 0, "reoptimize hysteresis: migrate only when at least this many hops are saved (0 keeps the script/default setting)")
	)
	flag.Parse()

	if *pathPolicy != "" {
		if _, ok := policy.Parse(*pathPolicy); !ok {
			log.Fatalf("unknown -path-policy %q (pinned, reoptimize)", *pathPolicy)
		}
	}
	// overlayPolicy applies each policy flag that was actually set on top of
	// base (a scenario script's `policy` directive, or the default pinned
	// policy) — so `-reopt-stretch 5` alone tightens a script's hysteresis
	// without touching its kind, and `-path-policy reoptimize` alone keeps
	// the script's knobs.
	overlayPolicy := func(base policy.Config) policy.Config {
		if *pathPolicy != "" {
			base.Kind, _ = policy.Parse(*pathPolicy)
		}
		if *reoptStretch > 0 {
			base.Stretch = *reoptStretch
		}
		if *reoptMinGain > 0 {
			base.MinGain = *reoptMinGain
		}
		return base
	}

	simOpts := scenario.SimOptions{
		Shards:      *shards,
		WindowBatch: *windowBatch,
		Speculate:   *speculate,
	}
	if *scenFile != "" {
		runScenario(*scenFile, *liveMode, simOpts, overlayPolicy)
		return
	}

	var (
		topo     topology.Hosted
		topoDesc string
	)
	cfg := network.DefaultConfig()
	if *internet {
		params, err := internetBySize(*sizeName)
		if err != nil {
			log.Fatal(err)
		}
		it, err := topology.GenerateInternet(params, *seed)
		if err != nil {
			log.Fatal(err)
		}
		topo = it
		cfg.Hierarchy = it.Hierarchy
		topoDesc = fmt.Sprintf("%s (%d routers), internet hierarchy", params.Name, params.Routers())
	} else {
		size, err := sizeByName(*sizeName)
		if err != nil {
			log.Fatal(err)
		}
		scen, err := scenarioByName(*scenName)
		if err != nil {
			log.Fatal(err)
		}
		ts, err := topology.Generate(size, scen, *seed)
		if err != nil {
			log.Fatal(err)
		}
		topo = ts
		topoDesc = fmt.Sprintf("%s (%d routers), %s scenario", size.Name, size.Routers(), scen)
	}

	if *liveMode {
		runLive(topo, topoDesc, *sessions, *demandCap, *seed, *validate, overlayPolicy(policy.Config{}))
		return
	}
	cfg.PathPolicy = overlayPolicy(cfg.PathPolicy)
	cfg.Speculate = *speculate
	cfg.IncrementalOracle = *incOracle
	nShards, nBatch := *shards, *windowBatch
	if nShards < 0 {
		nShards = sim.AutoShards()
		if nBatch <= 0 {
			nBatch = sim.AutoWindowBatch()
		}
	}
	var net *network.Network
	if nShards >= 1 {
		she := sim.NewSharded(nShards)
		if nBatch > 0 {
			she.SetWindowBatch(nBatch)
		}
		net = network.NewSharded(topo.Topology(), she, cfg)
	} else {
		net = network.New(topo.Topology(), sim.New(), cfg)
	}
	ss, err := exp.PlaceSessions(topo, net, *sessions)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed + 7))
	demand := trace.MixedDemands(*demandCap, 1, 100)
	for _, ev := range trace.Joins(0, *sessions, 0, time.Millisecond, demand, rng) {
		net.ScheduleJoin(ss[ev.Session], ev.At, ev.Demand)
	}

	wall := time.Now()
	q := net.Run()
	wallDur := time.Since(wall)

	if *validate {
		if err := net.Validate(); err != nil {
			log.Fatalf("validation FAILED: %v", err)
		}
	}

	fmt.Printf("topology   : %s\n", topoDesc)
	if nShards >= 1 {
		look := "unbounded (single shard)"
		if l := net.Sharded().Lookahead(); l > 0 {
			look = l.String()
		}
		fmt.Printf("engine     : sharded, %d shard(s), lookahead %s\n", net.Sharded().Shards(), look)
		if st := net.SpeculationStats(); st.Attempts > 0 {
			fmt.Printf("speculation: %d attempts, %d commits, %d replays, %d speculative events\n",
				st.Attempts, st.Commits, st.Replays, st.Events)
		}
	}
	fmt.Printf("sessions   : %d joined within 1ms (demand-capped fraction %.2f)\n", *sessions, *demandCap)
	fmt.Printf("quiescence : %v (virtual), %v (wall)\n", q, wallDur.Round(time.Millisecond))
	fmt.Printf("packets    : %d total, %.1f per session\n",
		net.Stats().Total(), float64(net.Stats().Total())/float64(*sessions))
	if *validate {
		fmt.Println("validation : all rates equal the centralized max-min fair rates ✓")
	}

	if *verbose {
		fmt.Printf("\n%-8s %-12s %-10s %s\n", "session", "rate (Mbps)", "path len", "demand")
		all := net.Sessions()
		sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
		for _, s := range all {
			r, _ := s.Rate()
			d := "∞"
			if !s.Demand().IsInf() {
				d = fmt.Sprintf("%.0f Mbps", s.Demand().Float64()/1e6)
			}
			fmt.Printf("%-8d %-12.2f %-10d %s\n", s.ID, r.Float64()/1e6, len(s.Path), d)
		}
	}
	os.Exit(0)
}

// runScenario parses and executes a scenario script, printing the per-epoch
// re-quiescence table. Every epoch is validated against the oracle.
// overlay applies the command-line policy flags on top of the script's
// `policy` directive; opts carries the -shards/-window-batch/-speculate
// engine selection (simulator transport only — -live ignores it).
func runScenario(path string, liveMode bool, opts scenario.SimOptions, overlay func(policy.Config) policy.Config) {
	src, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := scenario.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	sc.Policy = overlay(sc.Policy)
	var res *scenario.Result
	wall := time.Now()
	if liveMode {
		res, err = scenario.RunLive(sc)
	} else {
		res, err = scenario.RunSimOpts(sc, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario   : %s (%d sessions, %d events, %s transport)\n",
		path, len(sc.Sessions), len(sc.Events), res.Transport)
	fmt.Printf("wall time  : %v\n\n", time.Since(wall).Round(time.Millisecond))
	scenario.Format(os.Stdout, res)
}

// runLive executes the scenario on the goroutine/actor runtime: joins fire
// from concurrent goroutines and quiescence is detected by termination.
func runLive(topo topology.Hosted, desc string, sessions int, demandCap float64, seed int64, validate bool, pol policy.Config) {
	hosts := topo.AddHosts(2 * sessions)
	g := topo.Topology()
	res := graph.NewResolver(g, 256)
	rt := live.New(g)
	defer rt.Close()
	rt.SetPathPolicy(pol)

	rng := rand.New(rand.NewSource(seed + 7))
	demandFn := trace.MixedDemands(demandCap, 1, 100)
	type sess struct {
		s      *live.Session
		demand rate.Rate
	}
	all := make([]sess, sessions)
	for i := 0; i < sessions; i++ {
		src := hosts[i]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		p, err := res.HostPath(src, dst)
		if err != nil {
			log.Fatal(err)
		}
		s, err := rt.NewSession(p)
		if err != nil {
			log.Fatal(err)
		}
		all[i] = sess{s: s, demand: demandFn(rng)}
	}

	wall := time.Now()
	var wg sync.WaitGroup
	for _, x := range all {
		wg.Add(1)
		go func(x sess) {
			defer wg.Done()
			x.s.Join(x.demand)
		}(x)
	}
	// All joins must be enqueued before termination detection is meaningful;
	// Join returns once the request is in the source actor's mailbox.
	wg.Wait()
	rt.WaitQuiescent()
	wallDur := time.Since(wall)

	fmt.Printf("topology   : %s, live actor runtime\n", desc)
	fmt.Printf("sessions   : %d joined from concurrent goroutines\n", sessions)
	fmt.Printf("quiescence : %v (wall clock, detected by termination)\n", wallDur.Round(time.Microsecond))

	if validate {
		if err := rt.Validate(); err != nil {
			log.Fatalf("validation FAILED: %v", err)
		}
		fmt.Println("validation : all rates equal the centralized max-min fair rates ✓")
	}
}

func sizeByName(name string) (topology.Params, error) {
	switch name {
	case "small":
		return topology.Small, nil
	case "medium":
		return topology.Medium, nil
	case "big":
		return topology.Big, nil
	default:
		return topology.Params{}, fmt.Errorf("unknown size %q (small, medium, big)", name)
	}
}

func internetBySize(name string) (topology.InternetParams, error) {
	switch name {
	case "small":
		return topology.InternetPaper, nil
	case "medium":
		return topology.InternetMetro, nil
	case "big":
		return topology.InternetGlobal, nil
	default:
		return topology.InternetParams{}, fmt.Errorf("unknown size %q (small, medium, big)", name)
	}
}

func scenarioByName(name string) (topology.Scenario, error) {
	switch name {
	case "lan":
		return topology.LAN, nil
	case "wan":
		return topology.WAN, nil
	default:
		return 0, fmt.Errorf("unknown scenario %q (lan, wan)", name)
	}
}
