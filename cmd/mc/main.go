// Command mc model-checks the quiescence theorem over event interleavings:
// it loads (or synthesizes) a scenario, explores the simulator's cross-node
// tie-breaks with the internal/mc harness, and checks every explored
// schedule against the quiescence-bound, oracle-exactness,
// stale-incarnation and (sampled) live-Validate invariants.
//
// Usage:
//
//	mc -scenario examples/scenarios/failover.bneck           # bounded DFS
//	mc -scenario s.bneck -strategy dfs -prune -max-depth 12
//	mc -synth metro -sessions 6 -churn 5 -strategy swarm -seeds 200 -fuzz
//	mc -scenario s.bneck -replay violation.trace             # re-run a trace
//
// Flags:
//
//	-scenario path       scenario script to check (exclusive with -synth)
//	-synth rung          synthesize a churn workload on an internet rung
//	                     (paper, metro, global; see -sessions/-churn/-synth-seed)
//	-sessions n          synthesized session count (default 4)
//	-churn n             synthesized churn rounds (default 4)
//	-synth-seed n        synthesis seed (default 1)
//	-strategy s          dfs (exhaustive, default) or swarm (randomized)
//	-max-runs n          schedule budget (default 1000)
//	-max-depth n         tie-breaks per run before default order (default 12)
//	-prune               sleep-set pruning: skip schedules that only commute
//	                     independent events (dfs)
//	-delays n            delay bound: total default-order deferrals per run
//	                     (dfs; 0 = unbounded)
//	-seeds n             swarm seed count (default 100)
//	-seed0 n             first swarm seed (default 1)
//	-fuzz                perturb churn timings per swarm seed (swarm)
//	-live-every n        run the live runtime every n-th schedule (0 = off)
//	-bound-factor f      slack multiplier on the structural quiescence bound
//	                     (default 8)
//	-replay path         replay a recorded choice trace instead of exploring
//	-no-minimize         keep a violating trace as found (skip ddmin)
//	-out path            violating trace file (default mc-violation.trace)
//	-v                   progress output
//
// On a violation, mc writes the (minimized) choice trace to -out and exits 1;
// replaying it with -replay reproduces the failure deterministically.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bneck/internal/mc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mc: ")

	var (
		scenarioPath = flag.String("scenario", "", "scenario script to check")
		synth        = flag.String("synth", "", "synthesize a workload on an internet rung (paper, metro, global)")
		sessions     = flag.Int("sessions", 4, "synthesized session count")
		churn        = flag.Int("churn", 4, "synthesized churn rounds")
		synthSeed    = flag.Int64("synth-seed", 1, "synthesis seed")
		strategy     = flag.String("strategy", "dfs", "exploration strategy: dfs or swarm")
		maxRuns      = flag.Int("max-runs", 1000, "schedule budget")
		maxDepth     = flag.Int("max-depth", 12, "tie-breaks per run before default order")
		prune        = flag.Bool("prune", false, "sleep-set pruning (dfs)")
		delays       = flag.Int("delays", 0, "delay bound per run (dfs, 0 = unbounded)")
		seeds        = flag.Int("seeds", 100, "swarm seed count")
		seed0        = flag.Int64("seed0", 1, "first swarm seed")
		fuzz         = flag.Bool("fuzz", false, "perturb churn timings per swarm seed (swarm)")
		liveEvery    = flag.Int("live-every", 0, "run the live runtime every n-th schedule (0 = off)")
		boundFactor  = flag.Float64("bound-factor", mc.DefaultBoundFactor, "slack multiplier on the quiescence bound")
		replayPath   = flag.String("replay", "", "replay a recorded choice trace")
		noMinimize   = flag.Bool("no-minimize", false, "keep a violating trace as found")
		outPath      = flag.String("out", "mc-violation.trace", "violating trace file")
		verbose      = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	m, err := loadModel(*scenarioPath, *synth, *sessions, *churn, *synthSeed, *boundFactor)
	if err != nil {
		log.Fatal(err)
	}

	if *replayPath != "" {
		tr, err := mc.LoadTrace(*replayPath)
		if err != nil {
			log.Fatal(err)
		}
		if tr.FuzzSeed != 0 {
			if m, err = mc.Fuzz(m, tr.FuzzSeed); err != nil {
				log.Fatal(err)
			}
		}
		v, err := mc.Replay(m, tr)
		if err != nil {
			log.Fatal(err)
		}
		if v != nil {
			log.Printf("trace reproduces: %v", v)
			os.Exit(1)
		}
		fmt.Println("trace replays clean: every invariant holds on this schedule")
		return
	}

	cfg := mc.Config{
		Strategy:   *strategy,
		MaxRuns:    *maxRuns,
		MaxDepth:   *maxDepth,
		Prune:      *prune,
		DelayBound: *delays,
		Seeds:      *seeds,
		Seed0:      *seed0,
		Fuzz:       *fuzz,
		LiveEvery:  *liveEvery,
	}
	if *verbose {
		cfg.Log = log.Printf
	}
	res, err := mc.Explore(m, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("explored %d schedules (%d choice points, %d pruned, %d live runs)\n",
		res.Runs, res.ChoicePoints, res.Pruned, res.LiveRuns)
	if res.Exhausted {
		fmt.Println("schedule tree exhausted: every interleaving within bounds checked")
	}
	if res.Violation == nil {
		fmt.Println("no invariant violations")
		return
	}

	v := res.Violation
	log.Printf("%v", v)
	tr := v.Trace
	if !*noMinimize {
		min, replays, err := mc.Minimize(m, tr, v.Kind)
		if err != nil {
			log.Printf("minimization failed (keeping original trace): %v", err)
		} else {
			log.Printf("minimized %d -> %d deviations in %d replays",
				tr.Deviations(), min.Deviations(), replays)
			tr = min
		}
	}
	if err := tr.WriteFile(*outPath); err != nil {
		log.Fatal(err)
	}
	log.Printf("choice trace written to %s (replay with -replay)", *outPath)
	os.Exit(1)
}

func loadModel(path, synth string, sessions, churn int, seed int64, factor float64) (*mc.Model, error) {
	switch {
	case path != "" && synth != "":
		return nil, fmt.Errorf("-scenario and -synth are mutually exclusive")
	case path != "":
		return mc.FromFile(path, factor)
	case synth != "":
		return mc.Synthesize(synth, sessions, churn, seed, factor)
	default:
		return nil, fmt.Errorf("one of -scenario or -synth is required")
	}
}
