// Command experiments regenerates the paper's evaluation figures as text
// tables:
//
//	-exp 1  → Figure 5   (time to quiescence and packets vs session count)
//	-exp 2  → Figure 6   (traffic by packet type across five dynamic phases)
//	-exp 3  → Figures 7+8 (error distributions and packets vs BFYZ/CG/RCP)
//	-exp 4  → topology churn (quiescence across link failures, restores and
//	          capacity changes — the dynamics dimension the paper left out)
//	-exp 5  → path re-optimization (pinned vs reoptimize after a
//	          fail → restore cycle: hops and rate regained vs the extra
//	          reconfiguration packets)
//	-exp internet → internet-scale join burst on a generated hierarchical
//	          topology (core/metro/edge tiers, power-law fringe); size it
//	          with -internet-size paper|metro|global and -sessions, and
//	          ablate the hierarchical partitioner with -flat-partition
//	-exp all → everything (except internet, which is opt-in)
//
// Defaults are laptop-scale; use -scale to multiply session counts toward
// the paper's numbers (e.g. -scale 10 runs Experiment 2 with 100,000 base
// sessions, the paper's exact setting).
//
// -shards N runs every simulation on the sharded engine, splitting a single
// run across N cores under conservative lookahead windows; output is
// byte-identical at any shard count (and -exp4-paper makes the paper-sized
// Medium/Big churn sweep affordable with it). -shards -1 auto-tunes the
// shard count and window batch from GOMAXPROCS, and -speculate adds
// optimistic window execution — journaled lookahead past the conservative
// bound, committed rollback-free — again with byte-identical output.
//
// -workers N fans the sweeps across goroutines at each level: the selected
// experiments run concurrently, and within them experiment 1's
// (topology, scenario, session count) cells and experiment 3's protocols
// fan out again, so nested levels can briefly run more than N simulations
// at once. Every replication runs on its own engine with its own seeded
// RNG, so tables and CSVs are byte-identical to -workers 1.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"runtime"
	"runtime/pprof"

	"bneck/internal/exp"
	"bneck/internal/policy"
	"bneck/internal/sim"
	"bneck/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		which        = flag.String("exp", "all", "experiment to run: 1, 2, 3, 4, 5, internet, all")
		internetSize = flag.String("internet-size", "metro", "-exp internet topology: paper (~40 routers), metro (~1k), global (~10k)")
		sessions     = flag.Int("sessions", 0, "-exp internet session count (0 = two per router)")
		flatPart     = flag.Bool("flat-partition", false, "-exp internet: force the flat edge-cut partitioner instead of the hierarchical cut (ablation)")
		scale        = flag.Float64("scale", 1.0, "session-count multiplier toward paper scale")
		seed         = flag.Int64("seed", 1, "deterministic seed")
		big          = flag.Bool("big", false, "include the Big (11,000 router) topology in experiment 1")
		counts       = flag.String("counts", "", "comma-separated session counts for experiment 1 (overrides defaults)")
		protocols    = flag.String("protocols", "bneck,bfyz", "comma-separated protocols for experiment 3 (bneck,bfyz,cg,rcp)")
		validate     = flag.Bool("validate", true, "cross-check B-Neck runs against the centralized oracle")
		quiet        = flag.Bool("q", false, "suppress progress lines")
		csvDir       = flag.String("csv", "", "also write figure data as CSV files into this directory")
		workers      = flag.Int("workers", 1, "parallel sweep workers per fan-out level (1 = serial, negative = GOMAXPROCS); output is identical at any setting")
		shards       = flag.Int("shards", 0, "shards per simulation run: 0 = classic serial engine, 1 = sharded engine serial reference, >1 parallelizes each run across cores, -1 = auto-tune from GOMAXPROCS; sharded output is identical at any shard count")
		windowBatch  = flag.Int("window-batch", 0, "conservative windows per sharded-engine fork/join: 0 = engine default, 1 = no batching, higher amortizes synchronization on low-delay (LAN) topologies; output is identical at any setting")
		speculate    = flag.Bool("speculate", false, "optimistic window execution on the sharded engine (no effect with -shards 0): journaled lookahead past the conservative bound, committed rollback-free; output is identical on or off")
		exp4Paper    = flag.Bool("exp4-paper", false, "run experiment 4 at paper size (Medium+Big topologies, WAN failure sweep); combine with -shards and -workers")
		pathPolicy   = flag.String("path-policy", "pinned", "path re-optimization policy for experiment 4: pinned (historical behavior) or reoptimize (restores migrate sessions back onto shorter paths); experiment 5 always sweeps both")
		reoptStretch = flag.Float64("reopt-stretch", 0, "re-optimization stretch hysteresis for experiments 4 and 5 (≤ 1 = any strict improvement)")
		reoptMinGain = flag.Int("reopt-min-gain", 0, "re-optimization minimum hop gain for experiments 4 and 5 (≤ 1 = any strict improvement)")
		incOracle    = flag.Bool("incremental-oracle", true, "validate with the delta-driven incremental oracle (experiments 4, 5 and internet): churn feeds the solver as deltas and each epoch re-levels only what changed; rates are byte-identical to the full solver either way")
		oracleCheck  = flag.Bool("oracle-crosscheck", false, "debug: full-solve alongside every incremental oracle flush and fail on any divergence (implies -incremental-oracle)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	var cpuOut *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		cpuOut = f
	}
	if *workers == 0 {
		*workers = 1 // align with the config semantics: 0 and 1 are serial
	}
	if *shards < 0 {
		*shards = sim.AutoShards()
		if *windowBatch <= 0 {
			*windowBatch = sim.AutoWindowBatch()
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatalf("csv dir: %v", err)
		}
	}
	openCSV := func(name string) (io.WriteCloser, error) {
		return os.Create(filepath.Join(*csvDir, name))
	}

	progress := io.Writer(os.Stderr)
	if *quiet {
		progress = nil
	}

	polKind, ok := policy.Parse(*pathPolicy)
	if !ok {
		log.Fatalf("unknown -path-policy %q (pinned, reoptimize)", *pathPolicy)
	}
	polCfg := policy.Config{Kind: polKind, Stretch: *reoptStretch, MinGain: *reoptMinGain}

	runs := map[string]bool{}
	switch *which {
	case "all":
		runs["1"], runs["2"], runs["3"], runs["4"], runs["5"] = true, true, true, true, true
	case "1", "2", "3", "4", "5", "internet":
		runs[*which] = true
	default:
		log.Fatalf("unknown -exp %q", *which)
	}

	// Each experiment is one job writing its tables to its own buffer; jobs
	// run under the shared worker budget and the buffers print in experiment
	// order, so stdout is the same bytes regardless of -workers.
	var jobs []func(out io.Writer) error

	if runs["1"] {
		jobs = append(jobs, func(out io.Writer) error {
			cfg := exp.DefaultExp1()
			cfg.Seed = *seed
			cfg.Validate = *validate
			cfg.Progress = progress
			cfg.Workers = *workers
			cfg.Shards = *shards
			cfg.WindowBatch = *windowBatch
			cfg.Speculate = *speculate
			if *big {
				cfg.Sizes = append(cfg.Sizes, topology.Big)
			}
			if *counts != "" {
				cfg.SessionCounts = nil
				for _, c := range strings.Split(*counts, ",") {
					n, err := strconv.Atoi(strings.TrimSpace(c))
					if err != nil {
						return fmt.Errorf("bad -counts: %v", err)
					}
					cfg.SessionCounts = append(cfg.SessionCounts, n)
				}
			} else if *scale != 1.0 {
				for i := range cfg.SessionCounts {
					cfg.SessionCounts[i] = int(float64(cfg.SessionCounts[i]) * *scale)
				}
			}
			start := time.Now()
			rows, err := exp.RunExperiment1(cfg)
			if err != nil {
				return fmt.Errorf("experiment 1: %v", err)
			}
			fmt.Fprintln(out, exp.FormatExp1(rows))
			fmt.Fprintf(out, "(experiment 1 wall time: %v)\n\n", time.Since(start).Round(time.Second))
			if *csvDir == "" {
				return nil
			}
			f, err := openCSV("fig5.csv")
			if err != nil {
				return err
			}
			if err := exp.WriteExp1CSV(f, rows); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
	}

	if runs["2"] {
		jobs = append(jobs, func(out io.Writer) error {
			cfg := exp.DefaultExp2()
			cfg.Seed = *seed
			cfg.Validate = *validate
			cfg.Shards = *shards
			cfg.WindowBatch = *windowBatch
			cfg.Speculate = *speculate
			cfg.Base = int(float64(cfg.Base) * *scale)
			cfg.Dyn = int(float64(cfg.Dyn) * *scale)
			cfg.Progress = progress
			start := time.Now()
			res, err := exp.RunExperiment2(cfg)
			if err != nil {
				return fmt.Errorf("experiment 2: %v", err)
			}
			fmt.Fprintln(out, exp.FormatExp2(res))
			fmt.Fprintf(out, "(experiment 2 wall time: %v)\n\n", time.Since(start).Round(time.Second))
			if *csvDir == "" {
				return nil
			}
			f, err := openCSV("fig6.csv")
			if err != nil {
				return err
			}
			if err := exp.WriteExp2CSV(f, res); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
	}

	if runs["3"] {
		jobs = append(jobs, func(out io.Writer) error {
			cfg := exp.DefaultExp3()
			cfg.Seed = *seed
			cfg.Shards = *shards
			cfg.WindowBatch = *windowBatch
			cfg.Speculate = *speculate
			cfg.Sessions = int(float64(cfg.Sessions) * *scale)
			cfg.Leavers = int(float64(cfg.Leavers) * *scale)
			cfg.Protocols = strings.Split(*protocols, ",")
			cfg.Progress = progress
			cfg.Workers = *workers
			start := time.Now()
			res, err := exp.RunExperiment3(cfg)
			if err != nil {
				return fmt.Errorf("experiment 3: %v", err)
			}
			fmt.Fprintln(out, exp.FormatExp3(res))
			fmt.Fprintf(out, "(experiment 3 wall time: %v)\n", time.Since(start).Round(time.Second))
			if *csvDir == "" {
				return nil
			}
			return exp.WriteAllCSV(res, openCSV)
		})
	}

	if runs["4"] {
		jobs = append(jobs, func(out io.Writer) error {
			cfg := exp.DefaultExp4()
			if *exp4Paper {
				cfg = exp.PaperExp4()
			} else if *big {
				cfg.Sizes = append(cfg.Sizes, topology.Big)
			}
			cfg.Seeds = []int64{*seed, *seed + 1, *seed + 2}
			cfg.Validate = *validate
			cfg.Sessions = int(float64(cfg.Sessions) * *scale)
			cfg.Churn = int(float64(cfg.Churn) * *scale)
			cfg.Progress = progress
			cfg.Workers = *workers
			cfg.Shards = *shards
			cfg.WindowBatch = *windowBatch
			cfg.Speculate = *speculate
			cfg.Policy = polCfg
			cfg.IncrementalOracle = *incOracle || *oracleCheck
			start := time.Now()
			rows, err := exp.RunExperiment4(cfg)
			if err != nil {
				return fmt.Errorf("experiment 4: %v", err)
			}
			fmt.Fprintln(out, exp.FormatExp4(rows))
			fmt.Fprintf(out, "(experiment 4 wall time: %v)\n\n", time.Since(start).Round(time.Second))
			if *csvDir == "" {
				return nil
			}
			f, err := openCSV("exp4_reconfig.csv")
			if err != nil {
				return err
			}
			if err := exp.WriteExp4CSV(f, rows); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
	}

	if runs["5"] {
		jobs = append(jobs, func(out io.Writer) error {
			cfg := exp.DefaultExp5()
			if *big {
				cfg.Sizes = append(cfg.Sizes, topology.Big)
			}
			cfg.Seeds = []int64{*seed, *seed + 1}
			cfg.Validate = *validate
			cfg.Sessions = int(float64(cfg.Sessions) * *scale)
			cfg.Stretch = *reoptStretch
			cfg.MinGain = *reoptMinGain
			cfg.Progress = progress
			cfg.Workers = *workers
			cfg.Shards = *shards
			cfg.WindowBatch = *windowBatch
			cfg.Speculate = *speculate
			cfg.IncrementalOracle = *incOracle || *oracleCheck
			start := time.Now()
			rows, err := exp.RunExperiment5(cfg)
			if err != nil {
				return fmt.Errorf("experiment 5: %v", err)
			}
			fmt.Fprintln(out, exp.FormatExp5(rows))
			fmt.Fprintf(out, "(experiment 5 wall time: %v)\n\n", time.Since(start).Round(time.Second))
			if *csvDir == "" {
				return nil
			}
			f, err := openCSV("exp5_reopt.csv")
			if err != nil {
				return err
			}
			if err := exp.WriteExp5CSV(f, rows); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
	}

	if runs["internet"] {
		jobs = append(jobs, func(out io.Writer) error {
			var params topology.InternetParams
			switch *internetSize {
			case "paper":
				params = topology.InternetPaper
			case "metro":
				params = topology.InternetMetro
			case "global":
				params = topology.InternetGlobal
			default:
				return fmt.Errorf("unknown -internet-size %q (paper, metro, global)", *internetSize)
			}
			count := *sessions
			if count <= 0 {
				count = 2 * params.Routers()
			}
			cfg := exp.InternetConfig{
				Params:            params,
				Sessions:          count,
				Seed:              *seed,
				Shards:            *shards,
				WindowBatch:       *windowBatch,
				Speculate:         *speculate,
				Flat:              *flatPart,
				Validate:          *validate,
				IncrementalOracle: *incOracle || *oracleCheck,
				OracleCrossCheck:  *oracleCheck,
			}
			start := time.Now()
			res, err := exp.RunInternet(cfg)
			if err != nil {
				return fmt.Errorf("experiment internet: %v", err)
			}
			part := "hierarchical"
			if *flatPart {
				part = "flat"
			}
			fmt.Fprintf(out, "Internet-scale join burst — %s (%d routers, %d directed links), %s partition\n",
				params.Name, res.Routers, res.Links, part)
			fmt.Fprintf(out, "  sessions   : %d joined within 1ms\n", res.Sessions)
			engineDesc := "classic serial"
			if res.Shards > 0 {
				engineDesc = fmt.Sprintf("sharded ×%d, lookahead %v", res.Shards, res.Lookahead)
			}
			fmt.Fprintf(out, "  engine     : %s\n", engineDesc)
			fmt.Fprintf(out, "  quiescence : %v after %d packets, %d events\n",
				time.Duration(res.Quiescence), res.Packets, res.Events)
			if res.Spec.Attempts > 0 {
				fmt.Fprintf(out, "  speculation: %d attempts, %d commits, %d replays, %d events\n",
					res.Spec.Attempts, res.Spec.Commits, res.Spec.Replays, res.Spec.Events)
			}
			if *validate {
				fmt.Fprintln(out, "  validation : rates equal the centralized max-min fair rates ✓")
			}
			fmt.Fprintf(out, "(experiment internet wall time: %v)\n\n", time.Since(start).Round(time.Millisecond))
			return nil
		})
	}

	outs := make([]bytes.Buffer, len(jobs))
	err := exp.RunParallel(len(jobs), *workers, func(i int) error {
		return jobs[i](&outs[i])
	})
	for i := range outs {
		os.Stdout.Write(outs[i].Bytes())
	}
	// Flush profiles before any fatal exit so failed runs still profile.
	if cpuOut != nil {
		pprof.StopCPUProfile()
		cpuOut.Close()
	}
	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr != nil {
			log.Fatalf("memprofile: %v", ferr)
		}
		runtime.GC() // materialize the final live set
		if perr := pprof.WriteHeapProfile(f); perr != nil {
			log.Fatalf("memprofile: %v", perr)
		}
		f.Close()
	}
	if err != nil {
		log.Fatal(err)
	}
}
