// Command bnecklint is the repository's own static-analysis gate: a
// multichecker of six repo-specific analyzers that machine-enforce the
// determinism and lock-discipline invariants the simulator's correctness
// claims rest on (see DESIGN.md §12 for the analyzer → invariant table):
//
//	detrange    unsorted map iteration in deterministic packages
//	walltime    time.Now / os.Getenv / unseeded math/rand in the same
//	lockorder   the live runtime's mu → stripe → mailbox lock order
//	eventkey    creator-keyed event scheduling (no ExtCreator/heap bypasses)
//	shardowner  per-shard domain state touched only by its owning shard
//	floatrate   no float arithmetic in the exact 128-bit rate pipeline
//
// Usage:
//
//	bnecklint [flags] [packages]
//
// Packages default to ./... (module-relative patterns: ./..., ./dir/...,
// ./dir). Each analyzer can be disabled with -<name>=false. Diagnostics
// print as file:line:col: [analyzer] message; the exit status is 1 when any
// diagnostic is reported. Violations are silenced only by fixing them or by
// the //bneck: escape directives documented in internal/analysis, each of
// which carries the burden of a one-line justification.
//
// It runs as part of `make lint` (with staticcheck and govulncheck when
// installed) and in the CI lint job.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"bneck/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	suite := analysis.All()
	enabled := make(map[string]*bool, len(suite))
	for _, az := range suite {
		enabled[az.Name] = flag.Bool(az.Name, true, az.Doc)
	}
	list := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "print packages as they are analyzed")
	flag.Parse()

	if *list {
		for _, az := range suite {
			fmt.Printf("%-12s %s\n", az.Name, az.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modRoot, err := analysis.FindModRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	loader, err := analysis.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	type finding struct {
		pos      string
		analyzer string
		msg      string
	}
	var findings []finding
	for _, path := range paths {
		var active []*analysis.Analyzer
		for _, az := range suite {
			if *enabled[az.Name] && az.Match(path) {
				active = append(active, az)
			}
		}
		if len(active) == 0 {
			continue // nothing to check here; skip the load entirely
		}
		pkg, err := loader.LoadPath(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "bnecklint: %s (%d analyzers)\n", path, len(active))
		}
		for _, az := range active {
			pass := pkg.NewPass(az)
			az.Run(pass)
			for _, d := range pass.Diagnostics() {
				findings = append(findings, finding{
					pos:      pkg.Fset.Position(d.Pos).String(),
					analyzer: az.Name,
					msg:      d.Message,
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].analyzer < findings[j].analyzer
	})
	for _, f := range findings {
		fmt.Printf("%s: [%s] %s\n", f.pos, f.analyzer, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bnecklint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
