// Command benchjson converts `go test -bench` text output (read from stdin)
// into a machine-readable JSON document, so per-PR benchmark runs can
// accumulate as comparable artifacts (see `make bench-json` and the CI
// workflow).
//
// Each benchmark line
//
//	BenchmarkSimEngine/ScheduleExecute-8  123456  9.50 ns/op  0 B/op  0 allocs/op
//
// becomes an entry {"name": ..., "iterations": ..., "metrics": {"ns/op":
// 9.5, "B/op": 0, "allocs/op": 0}}; custom b.ReportMetric units come along
// for free. Non-benchmark lines are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bneck/internal/sim"
)

type entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// AutoShards/AutoWindowBatch record the sharded engine's auto-tune
	// decisions on the machine that produced the run, so shard-count cells
	// in the benchmarks can be read against what `-shards 0` would have
	// picked there.
	AutoShards      int     `json:"auto_shards"`
	AutoWindowBatch int     `json:"auto_window_batch"`
	Benchmarks      []entry `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	doc := document{
		Date:            time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		AutoShards:      sim.AutoShards(),
		AutoWindowBatch: sim.AutoWindowBatch(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// name iterations (value unit)+
		if len(f) < 4 || (len(f)-2)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		e := entry{Name: f[0], Iterations: iters, Metrics: make(map[string]float64)}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			e.Metrics[f[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(doc.Benchmarks))
}
