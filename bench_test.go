// Benchmarks regenerating every figure of the paper's evaluation (Section
// IV) at laptop scale, plus micro-benchmarks of the substrates. Each figure
// benchmark runs the corresponding experiment and reports the quantities the
// paper plots as custom metrics (virtual milliseconds to quiescence, packets
// per session, error percentiles), so `go test -bench=.` reproduces the
// shapes of Figures 5–8 end to end. cmd/experiments prints the full tables.
package bneck_test

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"bneck/internal/exp"
	"bneck/internal/graph"
	"bneck/internal/live"
	"bneck/internal/network"
	"bneck/internal/rate"
	"bneck/internal/sim"
	"bneck/internal/topology"
	"bneck/internal/trace"
)

// ---------------------------------------------------------------------------
// Figure 5 (Experiment 1): time to quiescence and packet counts as session
// counts grow, on {Small, Medium} × {LAN, WAN}.
// ---------------------------------------------------------------------------

func benchFigure5(b *testing.B, size topology.Params, scen topology.Scenario, sessions int) {
	b.Helper()
	cfg := exp.DefaultExp1()
	cfg.Sizes = []topology.Params{size}
	cfg.Scenarios = []topology.Scenario{scen}
	cfg.SessionCounts = []int{sessions}
	cfg.Validate = false // validation cost is not part of the protocol
	var lastQ time.Duration
	var lastP float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		rows, err := exp.RunExperiment1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		lastQ = rows[0].Quiescence
		lastP = rows[0].PacketsPerSession
	}
	b.ReportMetric(float64(lastQ.Microseconds())/1e3, "virt_ms_to_quiescence")
	b.ReportMetric(lastP, "pkts/session")
}

func BenchmarkFigure5TimeToQuiescence(b *testing.B) {
	for _, c := range []struct {
		size     topology.Params
		scen     topology.Scenario
		sessions int
	}{
		{topology.Small, topology.LAN, 100},
		{topology.Small, topology.LAN, 1000},
		{topology.Small, topology.WAN, 100},
		{topology.Small, topology.WAN, 1000},
		{topology.Medium, topology.LAN, 1000},
		{topology.Medium, topology.WAN, 1000},
	} {
		b.Run(c.size.Name+"/"+c.scen.String()+"/"+itoa(c.sessions), func(b *testing.B) {
			benchFigure5(b, c.size, c.scen, c.sessions)
		})
	}
}

// BenchmarkFigure5Packets isolates the right-hand plot: packet growth with
// session count on one topology.
func BenchmarkFigure5Packets(b *testing.B) {
	for _, n := range []int{10, 100, 1000, 4000} {
		b.Run("Small/LAN/"+itoa(n), func(b *testing.B) {
			benchFigure5(b, topology.Small, topology.LAN, n)
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 6 (Experiment 2): five phases of dynamics; the metric is the
// re-convergence (quiescence) time of each phase.
// ---------------------------------------------------------------------------

func BenchmarkFigure6Dynamics(b *testing.B) {
	cfg := exp.DefaultExp2()
	cfg.Topology = topology.Small
	cfg.Base = 1000
	cfg.Dyn = 200
	cfg.Validate = false
	var phases []exp.Exp2Phase
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := exp.RunExperiment2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		phases = res.Phases
	}
	for i, p := range phases {
		b.ReportMetric(float64(p.Took.Microseconds())/1e3, "virt_ms_phase"+itoa(i+1))
	}
}

// ---------------------------------------------------------------------------
// Figures 7 and 8 (Experiment 3): B-Neck vs BFYZ error distributions and
// packet counts over time.
// ---------------------------------------------------------------------------

func benchFigure7And8(b *testing.B, protocols []string) *exp.Exp3Result {
	b.Helper()
	cfg := exp.DefaultExp3()
	cfg.Topology = topology.Small
	cfg.Sessions = 1000
	cfg.Leavers = 100
	cfg.Horizon = 100 * time.Millisecond
	cfg.Protocols = protocols
	var res *exp.Exp3Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		var err error
		res, err = exp.RunExperiment3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func BenchmarkFigure7ErrorAtSources(b *testing.B) {
	res := benchFigure7And8(b, []string{"bneck", "bfyz"})
	for _, s := range res.Series {
		// The paper's headline from Figure 7 left: B-Neck's transient errors
		// are ≤ 0 (conservative), BFYZ's p90 goes positive (overshoot). We
		// report the worst p90 and the convergence time.
		worstP90 := 0.0
		for _, p := range s.SourceErr.Points {
			if p.Summary.P90 > worstP90 {
				worstP90 = p.Summary.P90
			}
		}
		b.ReportMetric(worstP90, s.Protocol+"_worst_p90_pct")
		b.ReportMetric(float64(s.ConvergedAt.Microseconds())/1e3, s.Protocol+"_virt_ms_converge")
	}
}

func BenchmarkFigure7ErrorAtLinks(b *testing.B) {
	res := benchFigure7And8(b, []string{"bneck", "bfyz"})
	for _, s := range res.Series {
		worstP90 := 0.0
		for _, p := range s.LinkErr.Points {
			if p.Summary.P90 > worstP90 {
				worstP90 = p.Summary.P90
			}
		}
		b.ReportMetric(worstP90, s.Protocol+"_worst_link_p90_pct")
	}
}

func BenchmarkFigure8PacketsOverTime(b *testing.B) {
	const horizon = 100 * time.Millisecond // keep in sync with benchFigure7And8
	res := benchFigure7And8(b, []string{"bneck", "bfyz"})
	for _, s := range res.Series {
		// Figure 8's contrast: traffic in the last quarter of the horizon is
		// zero for B-Neck (it quiesced long before) and steady for BFYZ.
		// B-Neck's bin list simply ends at quiescence, so absent bins count
		// as silence.
		tail := uint64(0)
		for _, bin := range s.Bins {
			if bin.Start >= horizon*3/4 {
				tail += bin.Total
			}
		}
		b.ReportMetric(float64(s.Packets), s.Protocol+"_pkts_total")
		b.ReportMetric(float64(tail), s.Protocol+"_pkts_tail")
	}
}

// BenchmarkExp3SmallBaselines covers the paper's observation that CG and RCP
// do not converge exactly in bounded time even at small scale.
func BenchmarkExp3SmallBaselines(b *testing.B) {
	cfg := exp.DefaultExp3()
	cfg.Topology = topology.Small
	cfg.Sessions = 300
	cfg.Leavers = 0
	cfg.Horizon = 100 * time.Millisecond
	cfg.Protocols = []string{"cg", "rcp"}
	var res *exp.Exp3Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		var err error
		res, err = exp.RunExperiment3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range res.Series {
		last := s.SourceErr.Points[len(s.SourceErr.Points)-1]
		b.ReportMetric(last.Summary.Mean, s.Protocol+"_final_mean_err_pct")
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the substrates.
// ---------------------------------------------------------------------------

func BenchmarkRateArithmetic(b *testing.B) {
	b.Run("AddSmall", func(b *testing.B) {
		x, y := rate.FromFrac(100_000_000, 3), rate.FromFrac(55_000_000, 7)
		for i := 0; i < b.N; i++ {
			_ = x.Add(y)
		}
	})
	b.Run("CmpSmall", func(b *testing.B) {
		x, y := rate.FromFrac(100_000_000, 3), rate.FromFrac(55_000_000, 7)
		for i := 0; i < b.N; i++ {
			_ = x.Cmp(y)
		}
	})
	b.Run("BottleneckFormula", func(b *testing.B) {
		c := rate.Mbps(500)
		sum := rate.FromFrac(123_456_789, 7)
		for i := 0; i < b.N; i++ {
			_ = c.Sub(sum).DivInt(97)
		}
	})
}

func BenchmarkSimEngine(b *testing.B) {
	b.Run("ScheduleExecute", func(b *testing.B) {
		eng := sim.New()
		fn := func() {}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.After(time.Microsecond, fn)
			eng.Step()
		}
	})
	b.Run("WireSend", func(b *testing.B) {
		eng := sim.New()
		w := sim.NewWire(eng, time.Microsecond, 100*time.Nanosecond)
		fn := func() {}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Send(fn)
			eng.Step()
		}
	})
}

// BenchmarkReconfiguration measures the cost of one topology-event epoch —
// fail an in-use link, migrate the crossing sessions, re-converge, restore —
// on a loaded Small/LAN network (the Experiment 4 shape). The custom metrics
// report the virtual re-quiescence latency and control-packet cost per
// reconfiguration, the perf counters of the dynamic-topology subsystem.
func BenchmarkReconfiguration(b *testing.B) {
	cfg := exp.DefaultExp4()
	cfg.Sizes = []topology.Params{topology.Small}
	cfg.Scenarios = []topology.Scenario{topology.LAN}
	cfg.Sessions = 300
	cfg.Epochs = 6
	cfg.Churn = 0 // isolate the topology-event cost from session churn
	cfg.Validate = false
	var virtUS, pkts, epochs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seeds = []int64{int64(i + 1)}
		rows, err := exp.RunExperiment4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Epoch == 0 {
				continue
			}
			virtUS += float64(r.Requiescence.Microseconds())
			pkts += float64(r.Packets)
			epochs++
		}
	}
	if epochs > 0 {
		b.ReportMetric(virtUS/epochs/1e3, "virt_ms/reconfig")
		b.ReportMetric(pkts/epochs, "pkts/reconfig")
	}
}

// BenchmarkShardedEngine measures single-run scaling of the sharded
// simulator on a paper-sized Experiment 4 shape over the Medium transit-stub
// topology, under both propagation models: the WAN cells' millisecond link
// delays give the engine large conservative windows, while the LAN cells'
// uniform 1 µs delays are the hard case — their windows come almost entirely
// from the transmission-aware lookahead, and window batching amortizes the
// per-window synchronization. The classic serial engine (shards=0) is the
// baseline; outputs are byte-identical at every setting, so the pkts/sec
// ratios are pure engine overhead/speedup (on a single-core machine the
// engine executes windows inline, so shards=4 measures sharding overhead
// with zero goroutine parallelism). Multi-shard cells run twice, spec=off
// and spec=on, measuring optimistic window execution (DESIGN.md §13) on
// the churn workload; the Quiesce cells isolate its target regime — a join
// storm followed by one long convergence tail, no churn at all — and also
// report the attempt/commit/replay counters.
func BenchmarkShardedEngine(b *testing.B) {
	for _, scen := range []topology.Scenario{topology.WAN, topology.LAN} {
		for _, shards := range []int{0, 1, 2, 4} {
			specs := []bool{false}
			if shards >= 2 {
				specs = append(specs, true)
			}
			for _, spec := range specs {
				name := "Exp4/Medium/" + scen.String() + "/shards=" + itoa(shards)
				if shards >= 2 {
					name += "/spec=" + onOff(spec)
				}
				b.Run(name, func(b *testing.B) {
					cfg := exp.DefaultExp4()
					cfg.Sizes = []topology.Params{topology.Medium}
					cfg.Scenarios = []topology.Scenario{scen}
					cfg.Sessions = 2000
					cfg.Epochs = 6
					cfg.Churn = 100
					cfg.Validate = false
					cfg.Shards = shards
					cfg.Speculate = spec
					var packets uint64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						cfg.Seeds = []int64{int64(i + 1)}
						rows, err := exp.RunExperiment4(cfg)
						if err != nil {
							b.Fatal(err)
						}
						for _, r := range rows {
							packets += r.Packets
						}
					}
					b.ReportMetric(float64(packets)/b.Elapsed().Seconds(), "pkts/sec")
				})
			}
		}
	}
	for _, shards := range []int{0, 4} {
		specs := []bool{false}
		if shards >= 2 {
			specs = append(specs, true)
		}
		for _, spec := range specs {
			name := "Quiesce/Medium/WAN/shards=" + itoa(shards)
			if shards >= 2 {
				name += "/spec=" + onOff(spec)
			}
			b.Run(name, func(b *testing.B) {
				benchQuiesce(b, shards, spec)
			})
		}
	}
}

// benchQuiesce drives the speculation target workload directly through the
// transport: 2000 sessions join a Medium/WAN network within a millisecond
// and the run is a single convergence to quiescence — sparse cascades whose
// every conservative lookahead window costs a coordinator round the
// optimistic engine can cover many of at once.
func benchQuiesce(b *testing.B, shards int, spec bool) {
	var packets uint64
	var stats sim.SpeculationStats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		topo, err := topology.Generate(topology.Medium, topology.WAN, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		cfg := network.DefaultConfig()
		cfg.Speculate = spec
		var net *network.Network
		if shards >= 1 {
			net = network.NewSharded(topo.Graph, sim.NewSharded(shards), cfg)
		} else {
			net = network.New(topo.Graph, sim.New(), cfg)
		}
		const sessions = 2000
		ss, err := exp.PlaceSessions(topo, net, sessions)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i + 8)))
		demand := trace.MixedDemands(0.25, 1, 100)
		for _, ev := range trace.Joins(0, sessions, 0, time.Millisecond, demand, rng) {
			net.ScheduleJoin(ss[ev.Session], ev.At, ev.Demand)
		}
		b.StartTimer()
		net.Run()
		b.StopTimer()
		packets += net.Stats().Total()
		st := net.SpeculationStats()
		stats.Attempts += st.Attempts
		stats.Commits += st.Commits
		stats.Replays += st.Replays
		stats.Events += st.Events
		b.StartTimer()
	}
	b.ReportMetric(float64(packets)/b.Elapsed().Seconds(), "pkts/sec")
	if spec {
		n := float64(b.N)
		b.ReportMetric(float64(stats.Attempts)/n, "spec_attempts/run")
		b.ReportMetric(float64(stats.Commits)/n, "spec_commits/run")
		b.ReportMetric(float64(stats.Replays)/n, "spec_replays/run")
		b.ReportMetric(float64(stats.Events)/n, "spec_events/run")
	}
}

// BenchmarkInternetLadder climbs the three-rung topology ladder — Paper
// (~40 routers), Metro (~1k), Internet (~10k) — on the hierarchical
// internet-scale generator, measuring a join burst to quiescence at each
// rung (the exp.RunInternet shape; only net.Run is timed). Each rung runs
// the sharded engine at 1 and 8 shards so the pkts/sec column directly
// compares the hierarchical partition's profitability as the graph grows;
// the Internet rung adds a speculation cell and a quarter-size session
// count, whose bytes/event metric against the full-size cell shows
// per-event memory growing sublinearly with session count (the dense
// session tables at work — no O(sessions) scan on the steady-state path).
// Cells pin -benchtime=1x in `make bench-json`: one 10k-router run is the
// statistic, not an iteration.
func BenchmarkInternetLadder(b *testing.B) {
	type cell struct {
		rung     string
		params   topology.InternetParams
		sessions int
		shards   int
		spec     bool
	}
	cells := []cell{
		{"Paper", topology.InternetPaper, 400, 1, false},
		{"Paper", topology.InternetPaper, 400, 8, false},
		{"Metro", topology.InternetMetro, 2000, 1, false},
		{"Metro", topology.InternetMetro, 2000, 8, false},
		{"Metro", topology.InternetMetro, 2000, 8, true},
		{"Internet", topology.InternetGlobal, 2500, 8, false},
		{"Internet", topology.InternetGlobal, 10000, 1, false},
		{"Internet", topology.InternetGlobal, 10000, 8, false},
		{"Internet", topology.InternetGlobal, 10000, 8, true},
	}
	for _, c := range cells {
		name := c.rung + "/" + itoa(c.params.Routers()) + "r/sessions=" + itoa(c.sessions) +
			"/shards=" + itoa(c.shards)
		if c.spec {
			name += "/spec=on"
		}
		c := c
		b.Run(name, func(b *testing.B) {
			benchInternet(b, c.params, c.sessions, c.shards, c.spec)
		})
	}
}

func benchInternet(b *testing.B, params topology.InternetParams, sessions, shards int, spec bool) {
	var packets, events, allocBytes uint64
	var ms runtime.MemStats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		topo, err := topology.GenerateInternet(params, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		cfg := network.DefaultConfig()
		cfg.Speculate = spec
		cfg.Hierarchy = topo.Hierarchy
		she := sim.NewSharded(shards)
		net := network.NewSharded(topo.Graph, she, cfg)
		ss, err := exp.PlaceSessions(topo, net, sessions)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i + 8)))
		demand := trace.MixedDemands(0.25, 1, 100)
		for _, ev := range trace.Joins(0, sessions, 0, time.Millisecond, demand, rng) {
			net.ScheduleJoin(ss[ev.Session], ev.At, ev.Demand)
		}
		runtime.ReadMemStats(&ms)
		before := ms.TotalAlloc
		b.StartTimer()
		net.Run()
		b.StopTimer()
		runtime.ReadMemStats(&ms)
		allocBytes += ms.TotalAlloc - before
		packets += net.Stats().Total()
		events += she.Events()
		b.StartTimer()
	}
	b.ReportMetric(float64(packets)/b.Elapsed().Seconds(), "pkts/sec")
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
	if events > 0 {
		b.ReportMetric(float64(allocBytes)/float64(events), "bytes/event")
	}
}

func onOff(on bool) string {
	if on {
		return "on"
	}
	return "off"
}

// BenchmarkOracleChurn times only the max-min oracle re-solve that validates
// each churn epoch — full water-filling from scratch vs the delta-driven
// incremental mirror (DESIGN.md §15) — on the internet ladder's three rungs.
// Setup (topology, join burst, convergence, and the first, necessarily full,
// solve) is untimed; each timed sample is one Oracle() call after a batch of
// leaves, demand changes and rejoins has churned the session set. ns/solve is
// the per-epoch validation cost, so the full/inc ratio per rung is the
// speedup the incremental solver buys exp4/exp5-style epoch validation.
// Rates are byte-identical between the two modes (max-min rates are unique);
// the equivalence tests in internal/waterfill and internal/network enforce
// that, so this benchmark measures cost only.
func BenchmarkOracleChurn(b *testing.B) {
	cells := []struct {
		rung     string
		params   topology.InternetParams
		sessions int
	}{
		{"Paper", topology.InternetPaper, 400},
		{"Metro", topology.InternetMetro, 2000},
		{"Internet", topology.InternetGlobal, 2500},
	}
	for _, c := range cells {
		for _, inc := range []bool{false, true} {
			mode := "full"
			if inc {
				mode = "inc"
			}
			c, inc := c, inc
			name := c.rung + "/" + itoa(c.params.Routers()) + "r/sessions=" +
				itoa(c.sessions) + "/oracle=" + mode
			b.Run(name, func(b *testing.B) {
				benchOracleChurn(b, c.params, c.sessions, inc)
			})
		}
	}
}

func benchOracleChurn(b *testing.B, params topology.InternetParams, sessions int, inc bool) {
	const epochs = 8
	var solves, deltaSolves uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		topo, err := topology.GenerateInternet(params, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		cfg := network.DefaultConfig()
		cfg.IncrementalOracle = inc
		eng := sim.New()
		net := network.New(topo.Graph, eng, cfg)
		ss, err := exp.PlaceSessions(topo, net, sessions)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i + 8)))
		demand := trace.MixedDemands(0.25, 1, 100)
		active := make([]bool, sessions)
		for _, ev := range trace.Joins(0, sessions, 0, time.Millisecond, demand, rng) {
			net.ScheduleJoin(ss[ev.Session], ev.At, ev.Demand)
			active[ev.Session] = true
		}
		net.Run()
		if _, err := net.Oracle(); err != nil {
			b.Fatal(err)
		}
		churn := sessions / 50
		if churn < 4 {
			churn = 4
		}
		for e := 0; e < epochs; e++ {
			start := eng.Now() + time.Millisecond
			seen := make(map[int]bool, churn)
			for k := 0; k < churn; k++ {
				j := rng.Intn(sessions)
				for seen[j] {
					j = rng.Intn(sessions)
				}
				seen[j] = true
				at := start + time.Duration(rng.Int63n(int64(time.Millisecond)))
				switch {
				case !active[j]:
					net.ScheduleJoin(ss[j], at, demand(rng))
					active[j] = true
				case k%4 == 0:
					net.ScheduleLeave(ss[j], at)
					active[j] = false
				default:
					net.ScheduleChange(ss[j], at, demand(rng))
				}
			}
			net.Run()
			b.StartTimer()
			if _, err := net.Oracle(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			solves++
		}
		if st, ok := net.OracleStats(); ok {
			deltaSolves += st.DeltaSolves
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(solves), "ns/solve")
	if inc {
		b.ReportMetric(float64(deltaSolves)/float64(b.N), "delta_solves/run")
	}
}

// BenchmarkLiveEmitContention measures the live actor runtime's packet
// throughput under maximal Emit concurrency: a join storm from many
// goroutines over one shared runtime, every packet of every hop crossing
// the striped incarnation/link domains that replaced the old global mutex.
// pkts/sec is packets counted by the per-link counters per wall second.
func BenchmarkLiveEmitContention(b *testing.B) {
	topo, err := topology.Generate(topology.Small, topology.LAN, 17)
	if err != nil {
		b.Fatal(err)
	}
	const sessions = 256
	hosts := topo.AddHosts(2 * sessions)
	res := graph.NewResolver(topo.Graph, 128)
	rng := rand.New(rand.NewSource(5))
	paths := make([]graph.Path, sessions)
	for i := range paths {
		src := hosts[i]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		p, err := res.HostPath(src, dst)
		if err != nil {
			b.Fatal(err)
		}
		paths[i] = p
	}
	var packets uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := live.New(topo.Graph)
		ss := make([]*live.Session, sessions)
		for j, p := range paths {
			s, err := rt.NewSession(p)
			if err != nil {
				b.Fatal(err)
			}
			ss[j] = s
		}
		var wg sync.WaitGroup
		for _, s := range ss {
			wg.Add(1)
			go func(s *live.Session) {
				defer wg.Done()
				s.Join(rate.Inf)
			}(s)
		}
		wg.Wait()
		rt.WaitQuiescent()
		for _, lc := range rt.LinkPackets() {
			packets += lc.Packets
		}
		rt.Close()
	}
	b.ReportMetric(float64(packets)/b.Elapsed().Seconds(), "pkts/sec")
}

// BenchmarkProtocolThroughput measures end-to-end packets processed per
// second of wall time for a standard Experiment 1 cell.
func BenchmarkProtocolThroughput(b *testing.B) {
	cfg := exp.DefaultExp1()
	cfg.Sizes = []topology.Params{topology.Small}
	cfg.Scenarios = []topology.Scenario{topology.LAN}
	cfg.SessionCounts = []int{2000}
	cfg.Validate = false
	b.ResetTimer()
	var packets uint64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		rows, err := exp.RunExperiment1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		packets += rows[0].Packets
	}
	b.ReportMetric(float64(packets)/b.Elapsed().Seconds(), "pkts/sec")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
