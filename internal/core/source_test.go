package core

import (
	"testing"

	"bneck/internal/rate"
)

// recorder captures emissions from a single task.
type recorder struct {
	emitted []recorded
}

type recorded struct {
	s    SessionID
	from int
	dir  Direction
	pkt  Packet
}

func (r *recorder) Emit(s SessionID, from int, dir Direction, pkt Packet) {
	r.emitted = append(r.emitted, recorded{s, from, dir, pkt})
}

func (r *recorder) take() []recorded {
	out := r.emitted
	r.emitted = nil
	return out
}

func (r *recorder) last(t *testing.T) recorded {
	t.Helper()
	if len(r.emitted) == 0 {
		t.Fatalf("no emission")
	}
	return r.emitted[len(r.emitted)-1]
}

func TestSourceJoinEmitsJoin(t *testing.T) {
	rec := &recorder{}
	var rates []rate.Rate
	src := NewSourceNode(7, rec, func(_ SessionID, l rate.Rate) { rates = append(rates, l) })
	src.Join(rate.Mbps(20))
	e := rec.last(t)
	if e.pkt.Type != PktJoin || e.dir != Down || e.from != 0 {
		t.Fatalf("emitted %+v", e)
	}
	if !e.pkt.Rate.Equal(rate.Mbps(20)) || e.pkt.Bneck != SourceRef {
		t.Fatalf("join fields %+v", e.pkt)
	}
	if !src.Active() {
		t.Fatalf("not active after join")
	}
}

func TestSourceSelfLimitedResponse(t *testing.T) {
	rec := &recorder{}
	var rates []rate.Rate
	src := NewSourceNode(7, rec, func(_ SessionID, l rate.Rate) { rates = append(rates, l) })
	src.Join(rate.Mbps(20))
	rec.take()
	// Response grants the full demand: self-bottleneck, β=TRUE.
	src.Receive(Packet{Type: PktResponse, Session: 7, Resp: RespResponse,
		Rate: rate.Mbps(20), Bneck: SourceRef})
	e := rec.last(t)
	if e.pkt.Type != PktSetBottleneck || !e.pkt.Beta {
		t.Fatalf("emitted %+v", e)
	}
	if len(rates) != 1 || !rates[0].Equal(rate.Mbps(20)) {
		t.Fatalf("rates = %v", rates)
	}
	if !src.Converged() {
		t.Fatalf("not converged")
	}
}

func TestSourceNetworkLimitedWaitsForBottleneck(t *testing.T) {
	rec := &recorder{}
	var rates []rate.Rate
	src := NewSourceNode(7, rec, func(_ SessionID, l rate.Rate) { rates = append(rates, l) })
	src.Join(rate.Inf)
	rec.take()
	// Response grants less than the demand: no SetBottleneck yet, the
	// source waits for a Bottleneck packet.
	src.Receive(Packet{Type: PktResponse, Session: 7, Resp: RespResponse,
		Rate: rate.Mbps(5), Bneck: LinkRef(3)})
	if len(rec.take()) != 0 {
		t.Fatalf("source emitted before bottleneck confirmation")
	}
	if len(rates) != 0 {
		t.Fatalf("rate notified early: %v", rates)
	}
	if src.Converged() {
		t.Fatalf("converged without confirmation")
	}
	// The Bottleneck packet confirms: rate notified, SetBottleneck(β=false)
	// since demand (∞) > λ.
	src.Receive(Packet{Type: PktBottleneck, Session: 7})
	e := rec.last(t)
	if e.pkt.Type != PktSetBottleneck || e.pkt.Beta {
		t.Fatalf("emitted %+v", e)
	}
	if len(rates) != 1 || !rates[0].Equal(rate.Mbps(5)) {
		t.Fatalf("rates = %v", rates)
	}
	if !src.Converged() {
		t.Fatalf("not converged after bottleneck")
	}
}

func TestSourceResponseBottleneckKind(t *testing.T) {
	rec := &recorder{}
	src := NewSourceNode(7, rec, nil)
	src.Join(rate.Inf)
	rec.take()
	src.Receive(Packet{Type: PktResponse, Session: 7, Resp: RespBottleneck,
		Rate: rate.Mbps(8), Bneck: LinkRef(2)})
	e := rec.last(t)
	if e.pkt.Type != PktSetBottleneck || e.pkt.Beta {
		t.Fatalf("emitted %+v", e)
	}
	if r, ok := src.Rate(); !ok || !r.Equal(rate.Mbps(8)) {
		t.Fatalf("rate = %v", r)
	}
}

func TestSourceUpdateTriggersReprobe(t *testing.T) {
	rec := &recorder{}
	src := NewSourceNode(7, rec, nil)
	src.Join(rate.Inf)
	src.Receive(Packet{Type: PktResponse, Session: 7, Resp: RespBottleneck,
		Rate: rate.Mbps(8), Bneck: LinkRef(2)})
	rec.take()
	src.Receive(Packet{Type: PktUpdate, Session: 7})
	e := rec.last(t)
	if e.pkt.Type != PktProbe || !e.pkt.Rate.IsInf() || e.pkt.Bneck != SourceRef {
		t.Fatalf("emitted %+v", e)
	}
	if src.Converged() {
		t.Fatalf("still converged after update")
	}
}

func TestSourceUpdateMidCycleDefersReprobe(t *testing.T) {
	rec := &recorder{}
	src := NewSourceNode(7, rec, nil)
	src.Join(rate.Inf)
	rec.take()
	// Update arrives while WAITING_RESPONSE: absorbed into upd_rcv.
	src.Receive(Packet{Type: PktUpdate, Session: 7})
	if len(rec.take()) != 0 {
		t.Fatalf("emitted during probe cycle")
	}
	// When the Response closes the cycle, a fresh Probe must start even
	// though τ = BOTTLENECK.
	src.Receive(Packet{Type: PktResponse, Session: 7, Resp: RespBottleneck,
		Rate: rate.Mbps(8), Bneck: LinkRef(2)})
	e := rec.last(t)
	if e.pkt.Type != PktProbe {
		t.Fatalf("emitted %+v, want deferred probe", e)
	}
}

func TestSourceResponseUpdateKind(t *testing.T) {
	rec := &recorder{}
	src := NewSourceNode(7, rec, nil)
	src.Join(rate.Inf)
	rec.take()
	src.Receive(Packet{Type: PktResponse, Session: 7, Resp: RespUpdate,
		Rate: rate.Mbps(8), Bneck: LinkRef(2)})
	e := rec.last(t)
	if e.pkt.Type != PktProbe {
		t.Fatalf("emitted %+v", e)
	}
}

func TestSourceChangeIdleStartsProbe(t *testing.T) {
	rec := &recorder{}
	src := NewSourceNode(7, rec, nil)
	src.Join(rate.Mbps(10))
	src.Receive(Packet{Type: PktResponse, Session: 7, Resp: RespResponse,
		Rate: rate.Mbps(10), Bneck: SourceRef})
	rec.take()
	src.Change(rate.Mbps(3))
	e := rec.last(t)
	if e.pkt.Type != PktProbe || !e.pkt.Rate.Equal(rate.Mbps(3)) {
		t.Fatalf("emitted %+v", e)
	}
}

func TestSourceChangeMidCycleDefers(t *testing.T) {
	rec := &recorder{}
	src := NewSourceNode(7, rec, nil)
	src.Join(rate.Mbps(10))
	rec.take()
	src.Change(rate.Mbps(3))
	if len(rec.take()) != 0 {
		t.Fatalf("change emitted mid-cycle")
	}
	// Cycle closes → deferred probe with the new demand.
	src.Receive(Packet{Type: PktResponse, Session: 7, Resp: RespResponse,
		Rate: rate.Mbps(10), Bneck: SourceRef})
	e := rec.last(t)
	if e.pkt.Type != PktProbe || !e.pkt.Rate.Equal(rate.Mbps(3)) {
		t.Fatalf("emitted %+v", e)
	}
}

func TestSourceLeaveEmitsLeave(t *testing.T) {
	rec := &recorder{}
	src := NewSourceNode(7, rec, nil)
	src.Join(rate.Inf)
	rec.take()
	src.Leave()
	e := rec.last(t)
	if e.pkt.Type != PktLeave {
		t.Fatalf("emitted %+v", e)
	}
	if src.Active() {
		t.Fatalf("still active")
	}
	// Stragglers after Leave are dropped silently.
	src.Receive(Packet{Type: PktResponse, Session: 7, Resp: RespResponse,
		Rate: rate.Mbps(1), Bneck: SourceRef})
	if len(rec.take()) > 1 {
		t.Fatalf("straggler triggered emission")
	}
}

func TestSourceDuplicateBottleneckIgnored(t *testing.T) {
	rec := &recorder{}
	var rates int
	src := NewSourceNode(7, rec, func(SessionID, rate.Rate) { rates++ })
	src.Join(rate.Inf)
	src.Receive(Packet{Type: PktResponse, Session: 7, Resp: RespBottleneck,
		Rate: rate.Mbps(8), Bneck: LinkRef(2)})
	rec.take()
	n := rates
	// A Bottleneck packet arriving after the Response already confirmed
	// (bneck_rcv set) must not re-notify or re-emit.
	src.Receive(Packet{Type: PktBottleneck, Session: 7})
	if rates != n || len(rec.take()) != 0 {
		t.Fatalf("duplicate bottleneck caused action")
	}
}

func TestSourceAPIMisusePanics(t *testing.T) {
	t.Run("double join", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatalf("expected panic")
			}
		}()
		src := NewSourceNode(1, &recorder{}, nil)
		src.Join(rate.Inf)
		src.Join(rate.Inf)
	})
	t.Run("leave inactive", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatalf("expected panic")
			}
		}()
		NewSourceNode(1, &recorder{}, nil).Leave()
	})
	t.Run("change inactive", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatalf("expected panic")
			}
		}()
		NewSourceNode(1, &recorder{}, nil).Change(rate.Inf)
	})
}

func TestDestinationEchoesProbes(t *testing.T) {
	rec := &recorder{}
	dst := NewDestinationNode(9, rec)
	dst.Receive(Packet{Type: PktJoin, Session: 9, Rate: rate.Mbps(4), Bneck: LinkRef(1)}, 5)
	e := rec.last(t)
	if e.pkt.Type != PktResponse || e.pkt.Resp != RespResponse || e.dir != Up || e.from != 5 {
		t.Fatalf("emitted %+v", e)
	}
	if !e.pkt.Rate.Equal(rate.Mbps(4)) || e.pkt.Bneck != LinkRef(1) {
		t.Fatalf("response fields %+v", e.pkt)
	}
	rec.take()
	dst.Receive(Packet{Type: PktProbe, Session: 9, Rate: rate.Mbps(2), Bneck: LinkRef(2)}, 5)
	if rec.last(t).pkt.Type != PktResponse {
		t.Fatalf("probe not echoed")
	}
}

func TestDestinationSetBottleneckBeta(t *testing.T) {
	rec := &recorder{}
	dst := NewDestinationNode(9, rec)
	// β=true: path had a bottleneck; silence.
	dst.Receive(Packet{Type: PktSetBottleneck, Session: 9, Beta: true}, 5)
	if len(rec.take()) != 0 {
		t.Fatalf("β=true triggered emission")
	}
	// β=false: no bottleneck found; the destination must demand a re-probe.
	dst.Receive(Packet{Type: PktSetBottleneck, Session: 9, Beta: false}, 5)
	e := rec.last(t)
	if e.pkt.Type != PktUpdate || e.dir != Up {
		t.Fatalf("emitted %+v", e)
	}
}

func TestDestinationLeaveSilent(t *testing.T) {
	rec := &recorder{}
	dst := NewDestinationNode(9, rec)
	dst.Receive(Packet{Type: PktLeave, Session: 9}, 5)
	if len(rec.take()) != 0 {
		t.Fatalf("leave triggered emission")
	}
}
