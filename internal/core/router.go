package core

import (
	"bneck/internal/rate"
)

// RouterLink is the task controlling one directed network link (Figure 2 of
// the paper). One instance exists per link that carries at least one
// session; all packets of sessions whose path crosses the link are processed
// here, atomically (the transport guarantees handlers never run
// concurrently).
type RouterLink struct {
	ref LinkRef
	tbl *table
	em  Emitter
	// scratch is a reusable buffer for session-set snapshots taken while
	// mutating the table underneath (handlers never run reentrantly, and no
	// snapshot outlives its loop, so one buffer suffices).
	scratch []SessionID
}

// NewRouterLink returns the task for link ref with the given data capacity.
func NewRouterLink(ref LinkRef, capacity rate.Rate, em Emitter) *RouterLink {
	return &RouterLink{ref: ref, tbl: newTable(capacity), em: em}
}

// Ref returns the link reference this task controls.
func (rl *RouterLink) Ref() LinkRef { return rl.ref }

// Sessions returns how many sessions the link currently knows.
func (rl *RouterLink) Sessions() int { return rl.tbl.sessions() }

// Bottleneck returns the link's current bottleneck rate estimate B_e
// (+∞ when R_e is empty).
func (rl *RouterLink) Bottleneck() rate.Rate { return rl.tbl.be() }

// SetCapacity changes the link's data capacity C_e — the reconfiguration
// primitive behind dynamic topologies. The paper's protocol has no such
// event, but it composes from the machinery it does have: every F_e member
// moves back into R_e (the restricted-elsewhere classification was judged
// against the old capacity and must be re-derived), and every IDLE session is
// told to re-probe, exactly as Figure 2 reacts to a Leave. Probe cycles
// already in flight are caught by the Response consistency check against the
// new B_e. Traffic is bounded by the sessions crossing the link, and the
// network re-quiesces through the protocol's own dynamics — no global reset.
func (rl *RouterLink) SetCapacity(c rate.Rate) {
	t := rl.tbl
	if c.Equal(t.capacity) {
		return
	}
	t.setCapacity(c)
	for {
		maxR, ok := t.feMax()
		if !ok {
			break
		}
		rl.scratch = t.appendFeSessionsAt(rl.scratch[:0], maxR)
		for _, r := range rl.scratch {
			t.moveFeToRe(r, t.get(r))
		}
	}
	rl.scratch = t.appendIdleAll(rl.scratch[:0])
	for _, r := range rl.scratch {
		ent := t.get(r)
		t.setState(r, ent, WaitingProbe)
		rl.em.Emit(r, ent.hop, Up, Packet{Type: PktUpdate, Session: r})
	}
}

// Capacity returns the link's current data capacity C_e.
func (rl *RouterLink) Capacity() rate.Rate { return rl.tbl.capacity }

// Receive processes one packet arriving for session pkt.Session at this
// link, which sits at hop index hop on that session's path.
func (rl *RouterLink) Receive(pkt Packet, hop int) {
	switch pkt.Type {
	case PktJoin:
		rl.onJoin(pkt, hop)
	case PktProbe:
		rl.onProbe(pkt, hop)
	case PktResponse:
		rl.onResponse(pkt, hop)
	case PktUpdate:
		rl.onUpdate(pkt, hop)
	case PktBottleneck:
		rl.onBottleneck(pkt, hop)
	case PktSetBottleneck:
		rl.onSetBottleneck(pkt, hop)
	case PktLeave:
		rl.onLeave(pkt, hop)
	default:
		panic("core: unknown packet type " + pkt.Type.String())
	}
}

// processNewRestricted is Figure 2's ProcessNewRestricted: F_e members whose
// recorded rate reaches the current bottleneck estimate cannot actually be
// restricted elsewhere at a lower rate, so they move back into R_e; then any
// idle R_e member whose rate exceeds the (possibly lowered) estimate is told
// to re-probe.
func (rl *RouterLink) processNewRestricted() {
	t := rl.tbl
	for {
		maxR, ok := t.feMax()
		if !ok || maxR.Less(t.be()) {
			break
		}
		rl.scratch = t.appendFeSessionsAt(rl.scratch[:0], maxR)
		for _, r := range rl.scratch {
			t.moveFeToRe(r, t.get(r))
		}
	}
	be := t.be()
	rl.scratch = t.appendIdleAbove(rl.scratch[:0], be)
	for _, r := range rl.scratch {
		ent := t.get(r)
		t.setState(r, ent, WaitingProbe)
		rl.em.Emit(r, ent.hop, Up, Packet{Type: PktUpdate, Session: r})
	}
}

func (rl *RouterLink) onJoin(pkt Packet, hop int) {
	t := rl.tbl
	s := pkt.Session
	if t.get(s) != nil {
		// A stale entry can only exist if a rejoin raced ahead of a Leave's
		// cleanup, which the transport's FIFO order precludes; be safe and
		// start from scratch.
		t.remove(s)
	}
	t.addNew(s, hop)
	rl.processNewRestricted()
	lambda, eta := pkt.Rate, pkt.Bneck
	if be := t.be(); lambda.Greater(be) {
		lambda, eta = be, rl.ref
	}
	rl.em.Emit(s, hop, Down, Packet{Type: PktJoin, Session: s, Rate: lambda, Bneck: eta})
}

func (rl *RouterLink) onProbe(pkt Packet, hop int) {
	t := rl.tbl
	s := pkt.Session
	ent := t.get(s)
	if ent == nil {
		return // session left; drop
	}
	t.setState(s, ent, WaitingResponse)
	if !ent.inRe {
		t.moveFeToRe(s, ent)
		rl.processNewRestricted()
	}
	lambda, eta := pkt.Rate, pkt.Bneck
	if be := t.be(); lambda.Greater(be) {
		lambda, eta = be, rl.ref
	}
	rl.em.Emit(s, hop, Down, Packet{Type: PktProbe, Session: s, Rate: lambda, Bneck: eta})
}

func (rl *RouterLink) onResponse(pkt Packet, hop int) {
	t := rl.tbl
	s := pkt.Session
	ent := t.get(s)
	if ent == nil {
		return // session left; drop
	}
	tau, lambda, eta := pkt.Resp, pkt.Rate, pkt.Bneck
	if tau == RespUpdate {
		t.setState(s, ent, WaitingProbe)
	} else {
		be := t.be()
		if (eta == rl.ref && lambda.Equal(be)) || (eta != rl.ref && lambda.LessEq(be)) {
			// The probe's answer is consistent with this link's current
			// estimate: accept it.
			t.setIdle(s, ent, lambda)
		} else {
			// Either this link capped the probe but its estimate has moved
			// (η = e ∧ λ < B_e), or the granted rate now exceeds this link's
			// share (λ > B_e): a new probe cycle is needed.
			tau = RespUpdate
			t.setState(s, ent, WaitingProbe)
		}
		if t.allReIdleAtBe() {
			// Every session not restricted elsewhere is idle at B_e: this
			// link is a bottleneck. Tell s through τ and everyone else with
			// Bottleneck packets.
			tau = RespBottleneck
			eta = rl.ref
			rl.scratch = t.appendIdleAt(rl.scratch[:0], be)
			for _, r := range rl.scratch {
				if r == s {
					continue
				}
				rl.em.Emit(r, t.get(r).hop, Up, Packet{Type: PktBottleneck, Session: r})
			}
		}
	}
	rl.em.Emit(s, hop, Up, Packet{Type: PktResponse, Session: s, Resp: tau, Rate: lambda, Bneck: eta})
}

func (rl *RouterLink) onUpdate(pkt Packet, hop int) {
	t := rl.tbl
	s := pkt.Session
	ent := t.get(s)
	if ent == nil {
		return
	}
	if ent.mu == Idle {
		t.setState(s, ent, WaitingProbe)
		rl.em.Emit(s, hop, Up, Packet{Type: PktUpdate, Session: s})
	}
	// Non-idle: a probe cycle is already pending or in flight; the Update is
	// absorbed here (the Response check or the pending Probe covers it).
}

func (rl *RouterLink) onBottleneck(pkt Packet, hop int) {
	s := pkt.Session
	ent := rl.tbl.get(s)
	if ent == nil {
		return
	}
	if ent.mu == Idle && ent.inRe {
		rl.em.Emit(s, hop, Up, Packet{Type: PktBottleneck, Session: s})
	}
}

func (rl *RouterLink) onSetBottleneck(pkt Packet, hop int) {
	t := rl.tbl
	s := pkt.Session
	ent := t.get(s)
	if ent == nil {
		return
	}
	be := t.be()
	switch {
	case t.allReIdleAtBe():
		// This link is a bottleneck (for s among others): confirm it.
		rl.em.Emit(s, hop, Down, Packet{Type: PktSetBottleneck, Session: s, Beta: true})
	case ent.mu == Idle && ent.hasLambda && ent.lambda.Less(be):
		// s is restricted elsewhere: move it to F_e. Idle sessions pinned at
		// the old estimate can now get more, so they must re-probe.
		rl.scratch = t.appendIdleAt(rl.scratch[:0], be)
		for _, r := range rl.scratch {
			rEnt := t.get(r)
			t.setState(r, rEnt, WaitingProbe)
			rl.em.Emit(r, rEnt.hop, Up, Packet{Type: PktUpdate, Session: r})
		}
		if ent.inRe {
			t.moveReToFe(s, ent)
		}
		rl.em.Emit(s, hop, Down, Packet{Type: PktSetBottleneck, Session: s, Beta: pkt.Beta})
	case ent.mu == Idle && ent.hasLambda && ent.lambda.Equal(be):
		// This link restricts s but is not (yet) a confirmed bottleneck:
		// pass β through unchanged.
		rl.em.Emit(s, hop, Down, Packet{Type: PktSetBottleneck, Session: s, Beta: pkt.Beta})
	default:
		// μ ≠ IDLE: an Update overtook the SetBottleneck; the pending probe
		// cycle supersedes it. Drop.
	}
}

func (rl *RouterLink) onLeave(pkt Packet, hop int) {
	t := rl.tbl
	s := pkt.Session
	if ent := t.get(s); ent != nil {
		// R′ with the *old* B_e: sessions pinned at the current estimate can
		// grow once s's share is freed.
		rl.scratch = rl.scratch[:0]
		if t.reCount > 0 {
			rl.scratch = t.appendIdleAt(rl.scratch, t.be())
		}
		t.remove(s)
		for _, r := range rl.scratch {
			if r == s {
				continue
			}
			rEnt := t.get(r)
			t.setState(r, rEnt, WaitingProbe)
			rl.em.Emit(r, rEnt.hop, Up, Packet{Type: PktUpdate, Session: r})
		}
	}
	rl.em.Emit(s, hop, Down, Packet{Type: PktLeave, Session: s})
}

// Stable reports whether the link satisfies Definition 2 of the paper: all
// known sessions IDLE, all R_e members at B_e, and (when R_e is nonempty)
// every F_e member strictly below B_e.
func (rl *RouterLink) Stable() bool {
	t := rl.tbl
	for _, ent := range t.entries {
		if ent.mu != Idle {
			return false
		}
	}
	if t.reCount > 0 {
		be := t.be()
		if t.idleRates.countAt(be) != t.reCount {
			return false
		}
		if max, ok := t.feMax(); ok && !max.Less(be) {
			return false
		}
	}
	return true
}

// snapshotEntry is a read-only view of per-session link state for tests and
// validation.
type snapshotEntry struct {
	InRe   bool
	Mu     State
	Lambda rate.Rate
	HasLam bool
}

// snapshot exposes the table state (tests only).
func (rl *RouterLink) snapshot() map[SessionID]snapshotEntry {
	out := make(map[SessionID]snapshotEntry, len(rl.tbl.entries))
	for s, e := range rl.tbl.entries {
		out[s] = snapshotEntry{InRe: e.inRe, Mu: e.mu, Lambda: e.lambda, HasLam: e.hasLambda}
	}
	return out
}

// CheckInvariants exposes table consistency checking for tests.
func (rl *RouterLink) CheckInvariants() error { return rl.tbl.checkInvariants() }
