package core

import (
	"strings"
	"testing"

	"bneck/internal/rate"
)

func TestPacketTypeStrings(t *testing.T) {
	want := map[PacketType]string{
		PktJoin: "Join", PktProbe: "Probe", PktResponse: "Response",
		PktUpdate: "Update", PktBottleneck: "Bottleneck",
		PktSetBottleneck: "SetBottleneck", PktLeave: "Leave",
	}
	if len(want) != NumPacketTypes {
		t.Fatalf("NumPacketTypes = %d, want %d", NumPacketTypes, len(want))
	}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), s)
		}
	}
	if !strings.Contains(PacketType(99).String(), "99") {
		t.Errorf("unknown type renders %q", PacketType(99).String())
	}
}

func TestRespKindStrings(t *testing.T) {
	if RespResponse.String() != "RESPONSE" || RespUpdate.String() != "UPDATE" ||
		RespBottleneck.String() != "BOTTLENECK" {
		t.Fatalf("resp kind strings wrong")
	}
	if !strings.Contains(RespKind(9).String(), "9") {
		t.Fatalf("unknown kind renders %q", RespKind(9).String())
	}
}

func TestStateStrings(t *testing.T) {
	if Idle.String() != "IDLE" || WaitingProbe.String() != "WAITING_PROBE" ||
		WaitingResponse.String() != "WAITING_RESPONSE" {
		t.Fatalf("state strings wrong")
	}
	if !strings.Contains(State(9).String(), "9") {
		t.Fatalf("unknown state renders %q", State(9).String())
	}
}

func TestDirectionStrings(t *testing.T) {
	if Down.String() != "down" || Up.String() != "up" {
		t.Fatalf("direction strings wrong")
	}
}

func TestPacketStrings(t *testing.T) {
	cases := []struct {
		pkt  Packet
		want string
	}{
		{Packet{Type: PktJoin, Session: 3, Rate: rate.Mbps(5), Bneck: 2}, "Join(s3, λ=5000000, η=2)"},
		{Packet{Type: PktResponse, Session: 3, Resp: RespBottleneck, Rate: rate.Mbps(1), Bneck: 7},
			"Response(s3, τ=BOTTLENECK, λ=1000000, η=7)"},
		{Packet{Type: PktSetBottleneck, Session: 3, Beta: true}, "SetBottleneck(s3, β=true)"},
		{Packet{Type: PktLeave, Session: 3}, "Leave(s3)"},
	}
	for _, c := range cases {
		if got := c.pkt.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestRouterPanicsOnUnknownPacketType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	rl, _ := newTestLink(rate.Mbps(10))
	rl.Receive(Packet{Type: PacketType(99), Session: 1}, 1)
}

func TestSourcePanicsOnUnknownPacketType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	src := NewSourceNode(1, &recorder{}, nil)
	src.Join(rate.Inf)
	src.Receive(Packet{Type: PktProbe, Session: 1}) // sources never get probes
}

func TestDestinationPanicsOnUnknownPacketType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	dst := NewDestinationNode(1, &recorder{})
	dst.Receive(Packet{Type: PktUpdate, Session: 1}, 3) // destinations never get updates
}
