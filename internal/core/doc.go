// Package core implements the distributed B-Neck protocol: the router-link
// task (Figure 2 of the paper), the source-node task (Figure 3), and the
// destination-node task (Figure 4), together with the packet vocabulary and
// the per-link session table.
//
// The tasks are pure event-driven state machines: they hold protocol state
// and translate one received packet (or API call) into state updates and
// emitted packets, via an Emitter. They know nothing about time, topology or
// transport, so the same code runs under the discrete event simulator
// (internal/network) and the goroutine runtime (internal/live), and can be
// unit-tested with a synchronous in-memory pump.
//
// # Generalization of the source access link
//
// The paper folds the capacity of the session's first link into the source's
// demand (Ds = min(r, Ce)) and assumes each host sources at most one
// session, so the access link never needs its own router-link task. This
// implementation instead runs a RouterLink on every link of the path,
// including access links, and the source carries only its demand r. The two
// are equivalent for the paper's scenarios: with a single session s on
// access link e, R_e = {s} always (no SetBottleneck can move the only
// session out while it is the unique member: if it is restricted elsewhere
// it moves to F_e with B_e = ∞ afterwards, which restricts nothing), so B_e
// = C_e whenever it caps, and a Join/Probe carrying λ = r is capped to
// min(r, C_e) at e — exactly Ds. The generalized form additionally supports
// several sessions sharing a source host, which the paper excludes "just for
// the sake of simplicity".
//
// # Differences from the figures (engineering only, behavior identical)
//
//   - The table (table.go) maintains incremental sums and rate-indexed
//     buckets so that each packet costs O(log k) instead of O(|S_e|); a
//     naive transcription of the figures lives in the tests and is checked
//     to be observationally equivalent.
//   - Packets for sessions unknown at a link (removed by an earlier Leave
//     racing with in-flight traffic) are dropped, which the figures leave
//     implicit.
//   - All rates are exact rationals (internal/rate); see DESIGN.md §4.
package core
