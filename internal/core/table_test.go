package core

import (
	"math/rand"
	"testing"

	"bneck/internal/rate"
)

// naiveTable is a direct transcription of Figure 2's per-link state: plain
// sets scanned in O(n) for every predicate. The optimized table must be
// observationally equivalent under arbitrary operation sequences.
type naiveTable struct {
	capacity rate.Rate
	re       map[SessionID]*naiveEntry
	fe       map[SessionID]*naiveEntry
}

type naiveEntry struct {
	mu        State
	lambda    rate.Rate
	hasLambda bool
}

func newNaiveTable(c rate.Rate) *naiveTable {
	return &naiveTable{
		capacity: c,
		re:       make(map[SessionID]*naiveEntry),
		fe:       make(map[SessionID]*naiveEntry),
	}
}

func (n *naiveTable) be() rate.Rate {
	if len(n.re) == 0 {
		return rate.Inf
	}
	sum := rate.Zero
	for _, e := range n.fe {
		sum = sum.Add(e.lambda)
	}
	return n.capacity.Sub(sum).DivInt(len(n.re))
}

func (n *naiveTable) allReIdleAtBe() bool {
	if len(n.re) == 0 {
		return false
	}
	be := n.be()
	for _, e := range n.re {
		if e.mu != Idle || !e.hasLambda || !e.lambda.Equal(be) {
			return false
		}
	}
	return true
}

func (n *naiveTable) feMax() (rate.Rate, bool) {
	var max rate.Rate
	found := false
	for _, e := range n.fe {
		if !found || e.lambda.Greater(max) {
			max = e.lambda
			found = true
		}
	}
	return max, found
}

func (n *naiveTable) idleAt(r rate.Rate) map[SessionID]bool {
	out := make(map[SessionID]bool)
	for s, e := range n.re {
		if e.mu == Idle && e.hasLambda && e.lambda.Equal(r) {
			out[s] = true
		}
	}
	return out
}

func (n *naiveTable) idleAbove(r rate.Rate) map[SessionID]bool {
	out := make(map[SessionID]bool)
	for s, e := range n.re {
		if e.mu == Idle && e.hasLambda && e.lambda.Greater(r) {
			out[s] = true
		}
	}
	return out
}

// TestTableMatchesNaive drives both implementations through long random
// operation sequences and compares every observable after every step.
func TestTableMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for iter := 0; iter < 100; iter++ {
		cap := rate.FromInt64(int64(10+r.Intn(1000)) * 1_000_000)
		opt := newTable(cap)
		ref := newNaiveTable(cap)
		var known []SessionID
		nextID := SessionID(1)

		randRate := func() rate.Rate {
			return rate.FromFrac(int64(1+r.Intn(100))*1_000_000, int64(1+r.Intn(7)))
		}
		pick := func() (SessionID, *tableEntry) {
			if len(known) == 0 {
				return 0, nil
			}
			s := known[r.Intn(len(known))]
			return s, opt.get(s)
		}

		for step := 0; step < 400; step++ {
			switch r.Intn(10) {
			case 0, 1: // addNew
				s := nextID
				nextID++
				opt.addNew(s, 1)
				ref.re[s] = &naiveEntry{mu: WaitingResponse}
				known = append(known, s)
			case 2: // remove
				if s, ent := pick(); ent != nil {
					opt.remove(s)
					delete(ref.re, s)
					delete(ref.fe, s)
					for i, k := range known {
						if k == s {
							known = append(known[:i], known[i+1:]...)
							break
						}
					}
				}
			case 3, 4: // setIdle with a rate (must be in Re)
				if s, ent := pick(); ent != nil && ent.inRe {
					lam := randRate()
					opt.setIdle(s, ent, lam)
					ref.re[s].mu = Idle
					ref.re[s].lambda = lam
					ref.re[s].hasLambda = true
				}
			case 5: // setState to WaitingProbe
				if s, ent := pick(); ent != nil && ent.mu != WaitingProbe {
					opt.setState(s, ent, WaitingProbe)
					if e, ok := ref.re[s]; ok {
						e.mu = WaitingProbe
					} else {
						ref.fe[s].mu = WaitingProbe
					}
				}
			case 6: // setState to WaitingResponse
				if s, ent := pick(); ent != nil && ent.mu != WaitingResponse {
					opt.setState(s, ent, WaitingResponse)
					if e, ok := ref.re[s]; ok {
						e.mu = WaitingResponse
					} else {
						ref.fe[s].mu = WaitingResponse
					}
				}
			case 7: // moveReToFe (requires Re + Idle + λ < Be, as the protocol does)
				if s, ent := pick(); ent != nil && ent.inRe && ent.mu == Idle && ent.lambda.Less(opt.be()) {
					opt.moveReToFe(s, ent)
					ref.fe[s] = ref.re[s]
					delete(ref.re, s)
				}
			case 8, 9: // moveFeToRe
				if s, ent := pick(); ent != nil && !ent.inRe {
					opt.moveFeToRe(s, ent)
					ref.re[s] = ref.fe[s]
					delete(ref.fe, s)
				}
			}

			// Compare all observables.
			if err := opt.checkInvariants(); err != nil {
				t.Fatalf("iter %d step %d: invariants: %v", iter, step, err)
			}
			if !opt.be().Equal(ref.be()) {
				t.Fatalf("iter %d step %d: be %v vs naive %v", iter, step, opt.be(), ref.be())
			}
			if opt.allReIdleAtBe() != ref.allReIdleAtBe() {
				t.Fatalf("iter %d step %d: allReIdleAtBe %t vs naive %t",
					iter, step, opt.allReIdleAtBe(), ref.allReIdleAtBe())
			}
			om, ook := opt.feMax()
			nm, nok := ref.feMax()
			if ook != nok || (ook && !om.Equal(nm)) {
				t.Fatalf("iter %d step %d: feMax (%v,%t) vs naive (%v,%t)",
					iter, step, om, ook, nm, nok)
			}
			be := opt.be()
			if !be.IsInf() {
				wantAt := ref.idleAt(be)
				gotAt := opt.idleAt(be)
				if len(gotAt) != len(wantAt) {
					t.Fatalf("iter %d step %d: idleAt size %d vs %d", iter, step, len(gotAt), len(wantAt))
				}
				for _, s := range gotAt {
					if !wantAt[s] {
						t.Fatalf("iter %d step %d: idleAt extra session %d", iter, step, s)
					}
				}
				wantAbove := ref.idleAbove(be)
				gotAbove := opt.idleAbove(be)
				if len(gotAbove) != len(wantAbove) {
					t.Fatalf("iter %d step %d: idleAbove size %d vs %d", iter, step, len(gotAbove), len(wantAbove))
				}
				for _, s := range gotAbove {
					if !wantAbove[s] {
						t.Fatalf("iter %d step %d: idleAbove extra session %d", iter, step, s)
					}
				}
			}
			if opt.sessions() != len(ref.re)+len(ref.fe) {
				t.Fatalf("iter %d step %d: sessions %d vs %d",
					iter, step, opt.sessions(), len(ref.re)+len(ref.fe))
			}
		}
	}
}

func TestTablePanicsOnMisuse(t *testing.T) {
	for name, fn := range map[string]func(tb *table){
		"addNew duplicate": func(tb *table) {
			tb.addNew(1, 1)
			tb.addNew(1, 1)
		},
		"setIdle on Fe": func(tb *table) {
			ent := tb.addNew(1, 1)
			tb.setIdle(1, ent, rate.Mbps(1))
			tb.moveReToFe(1, ent)
			tb.setIdle(1, ent, rate.Mbps(2))
		},
		"setState to Idle": func(tb *table) {
			ent := tb.addNew(1, 1)
			tb.setState(1, ent, Idle)
		},
		"moveReToFe non-idle": func(tb *table) {
			ent := tb.addNew(1, 1)
			tb.moveReToFe(1, ent)
		},
		"moveFeToRe on Re": func(tb *table) {
			ent := tb.addNew(1, 1)
			tb.moveFeToRe(1, ent)
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn(newTable(rate.Mbps(10)))
		})
	}
}

func TestTableBeCaching(t *testing.T) {
	tb := newTable(rate.Mbps(12))
	e1 := tb.addNew(1, 1)
	e2 := tb.addNew(2, 1)
	if !tb.be().Equal(rate.Mbps(6)) {
		t.Fatalf("be = %v", tb.be())
	}
	// Cached value must be invalidated by structural changes.
	tb.setIdle(1, e1, rate.Mbps(2))
	tb.moveReToFe(1, e1)
	if !tb.be().Equal(rate.Mbps(10)) {
		t.Fatalf("be after moveReToFe = %v", tb.be())
	}
	tb.remove(2)
	_ = e2
	if !tb.be().IsInf() {
		t.Fatalf("be with empty Re = %v", tb.be())
	}
}

func TestRemoveUnknownIsNoop(t *testing.T) {
	tb := newTable(rate.Mbps(10))
	tb.remove(42) // must not panic
	if tb.sessions() != 0 {
		t.Fatalf("sessions = %d", tb.sessions())
	}
}
