package core

import (
	"fmt"

	"bneck/internal/rate"
)

// SourceNode is the task running at a session's source host (Figure 3 of the
// paper). It drives probe cycles, receives the session's rate, and
// propagates the API primitives (Join, Leave, Change) into the network.
//
// Unlike the figure, the source carries only the session's demand r rather
// than Ds = min(r, C_e): the access link runs its own RouterLink here, which
// is equivalent (see the package documentation).
type SourceNode struct {
	id     SessionID
	em     Emitter
	rateCb RateCallback

	demand   rate.Rate // the session's requested maximum rate (may be +∞)
	mu       State
	lambda   rate.Rate // last granted rate (valid once hasLambda)
	hasLam   bool
	updRcv   bool // an Update arrived mid-cycle; re-probe when it closes
	bneckRcv bool // the current rate has been confirmed as max-min fair
	inFe     bool // source-local F_e bookkeeping for the access link
	active   bool
}

// NewSourceNode returns a source task for session id. rateCb receives
// API.Rate upcalls and may be nil.
func NewSourceNode(id SessionID, em Emitter, rateCb RateCallback) *SourceNode {
	return &SourceNode{id: id, em: em, rateCb: rateCb, mu: Idle}
}

// ID returns the session this source drives.
func (sn *SourceNode) ID() SessionID { return sn.id }

// Active reports whether the session has joined and not left.
func (sn *SourceNode) Active() bool { return sn.active }

// Demand returns the session's current requested maximum rate.
func (sn *SourceNode) Demand() rate.Rate { return sn.demand }

// Rate returns the last granted rate and whether one has been received.
func (sn *SourceNode) Rate() (rate.Rate, bool) { return sn.lambda, sn.hasLam }

// Converged reports whether the session currently holds a rate that the
// network confirmed as its max-min fair rate (the bneck_rcv flag).
func (sn *SourceNode) Converged() bool { return sn.bneckRcv && sn.mu == Idle }

// Join implements API.Join(s, r): the session enters the system requesting a
// maximum rate of demand.
func (sn *SourceNode) Join(demand rate.Rate) {
	if sn.active {
		panic(fmt.Sprintf("core: Join on active session %d", sn.id))
	}
	sn.active = true
	sn.inFe = false
	sn.demand = demand
	sn.mu = WaitingResponse
	sn.updRcv = false
	sn.bneckRcv = false
	sn.hasLam = false
	sn.em.Emit(sn.id, 0, Down, Packet{Type: PktJoin, Session: sn.id, Rate: demand, Bneck: SourceRef})
}

// Leave implements API.Leave(s).
func (sn *SourceNode) Leave() {
	if !sn.active {
		panic(fmt.Sprintf("core: Leave on inactive session %d", sn.id))
	}
	sn.active = false
	sn.inFe = false
	sn.mu = Idle
	sn.hasLam = false
	sn.bneckRcv = false
	sn.updRcv = false
	sn.em.Emit(sn.id, 0, Down, Packet{Type: PktLeave, Session: sn.id})
}

// Change implements API.Change(s, r): the session requests a new maximum
// rate.
func (sn *SourceNode) Change(demand rate.Rate) {
	if !sn.active {
		panic(fmt.Sprintf("core: Change on inactive session %d", sn.id))
	}
	sn.demand = demand
	if sn.mu == Idle {
		sn.inFe = false
		sn.updRcv = false
		sn.bneckRcv = false
		sn.startProbe()
	} else {
		sn.updRcv = true
	}
}

// Receive processes a packet arriving at the source (hop 0).
func (sn *SourceNode) Receive(pkt Packet) {
	if !sn.active {
		return // stragglers after Leave
	}
	switch pkt.Type {
	case PktUpdate:
		sn.onUpdate()
	case PktBottleneck:
		sn.onBottleneck()
	case PktResponse:
		sn.onResponse(pkt)
	default:
		panic(fmt.Sprintf("core: source received %v", pkt))
	}
}

func (sn *SourceNode) startProbe() {
	sn.mu = WaitingResponse
	sn.em.Emit(sn.id, 0, Down, Packet{Type: PktProbe, Session: sn.id, Rate: sn.demand, Bneck: SourceRef})
}

func (sn *SourceNode) onUpdate() {
	if sn.mu == Idle {
		sn.inFe = false
		sn.bneckRcv = false
		sn.startProbe()
	} else {
		sn.updRcv = true
	}
}

func (sn *SourceNode) onBottleneck() {
	if sn.mu == Idle && !sn.bneckRcv {
		sn.bneckRcv = true
		sn.notifyRate()
		beta := sn.demand.Equal(sn.lambda)
		if sn.demand.Greater(sn.lambda) {
			sn.inFe = true
		}
		sn.em.Emit(sn.id, 0, Down, Packet{Type: PktSetBottleneck, Session: sn.id, Beta: beta})
	}
}

func (sn *SourceNode) onResponse(pkt Packet) {
	switch {
	case pkt.Resp == RespUpdate || sn.updRcv:
		sn.updRcv = false
		sn.bneckRcv = false
		sn.startProbe()
	case pkt.Resp == RespBottleneck:
		sn.lambda = pkt.Rate
		sn.hasLam = true
		sn.mu = Idle
		sn.bneckRcv = true
		sn.notifyRate()
		beta := sn.demand.Equal(sn.lambda)
		if sn.demand.Greater(sn.lambda) {
			sn.inFe = true
		}
		sn.em.Emit(sn.id, 0, Down, Packet{Type: PktSetBottleneck, Session: sn.id, Beta: beta})
	default: // τ = RESPONSE
		sn.lambda = pkt.Rate
		sn.hasLam = true
		sn.mu = Idle
		if sn.demand.Equal(sn.lambda) {
			// The session got its full demand: it is restricted by itself,
			// no network bottleneck is needed.
			sn.bneckRcv = true
			sn.notifyRate()
			sn.em.Emit(sn.id, 0, Down, Packet{Type: PktSetBottleneck, Session: sn.id, Beta: true})
		}
		// Otherwise stay idle and wait for a Bottleneck packet.
	}
}

func (sn *SourceNode) notifyRate() {
	if sn.rateCb != nil {
		sn.rateCb(sn.id, sn.lambda)
	}
}
