package core

import (
	"slices"
	"sort"

	"bneck/internal/rate"
)

// rateSet is a multiset of sessions keyed by their rate, ordered by rate.
// The number of distinct rates at one link is small in practice (bounded by
// the number of bottleneck levels that ever touched the link), so a sorted
// slice of buckets with binary search is both simple and fast.
//
// Buckets whose last session leaves are parked on a free list instead of
// being dropped: rates churn heavily while a link converges (every B_e
// revision empties one bucket and fills another), and reusing the bucket and
// its session map keeps that churn allocation-free.
type rateSet struct {
	buckets []*rateBucket // ascending by rate
	size    int
	free    []*rateBucket // emptied buckets kept for reuse
}

type rateBucket struct {
	rate     rate.Rate
	sessions map[SessionID]struct{}
}

// add inserts session s with rate r.
func (rs *rateSet) add(r rate.Rate, s SessionID) {
	i := rs.search(r)
	if i < len(rs.buckets) && rs.buckets[i].rate.Equal(r) {
		rs.buckets[i].sessions[s] = struct{}{}
	} else {
		var b *rateBucket
		if k := len(rs.free); k > 0 {
			b = rs.free[k-1]
			rs.free = rs.free[:k-1]
			b.rate = r
		} else {
			b = &rateBucket{rate: r, sessions: make(map[SessionID]struct{})}
		}
		b.sessions[s] = struct{}{}
		rs.buckets = append(rs.buckets, nil)
		copy(rs.buckets[i+1:], rs.buckets[i:])
		rs.buckets[i] = b
	}
	rs.size++
}

// remove deletes session s with rate r. It panics if absent: the table keeps
// index membership in lockstep with entries, and a mismatch is a bug.
func (rs *rateSet) remove(r rate.Rate, s SessionID) {
	i := rs.search(r)
	if i >= len(rs.buckets) || !rs.buckets[i].rate.Equal(r) {
		panic("core: rateSet.remove of absent rate")
	}
	b := rs.buckets[i]
	if _, ok := b.sessions[s]; !ok {
		panic("core: rateSet.remove of absent session")
	}
	delete(b.sessions, s)
	rs.size--
	if len(b.sessions) == 0 {
		rs.buckets = append(rs.buckets[:i], rs.buckets[i+1:]...)
		b.rate = rate.Zero
		rs.free = append(rs.free, b)
	}
}

// search returns the first index whose bucket rate is >= r.
func (rs *rateSet) search(r rate.Rate) int {
	return sort.Search(len(rs.buckets), func(i int) bool {
		return rs.buckets[i].rate.GreaterEq(r)
	})
}

// max returns the largest rate present, if any.
func (rs *rateSet) max() (rate.Rate, bool) {
	if len(rs.buckets) == 0 {
		return rate.Zero, false
	}
	return rs.buckets[len(rs.buckets)-1].rate, true
}

// countAt returns how many sessions have exactly rate r.
func (rs *rateSet) countAt(r rate.Rate) int {
	i := rs.search(r)
	if i < len(rs.buckets) && rs.buckets[i].rate.Equal(r) {
		return len(rs.buckets[i].sessions)
	}
	return 0
}

// sessionsAt returns the sessions with exactly rate r, sorted by ID so that
// emission order (and hence the whole simulation) is deterministic. The
// caller owns the returned slice.
func (rs *rateSet) sessionsAt(r rate.Rate) []SessionID {
	return rs.appendSessionsAt(nil, r)
}

// appendSessionsAt appends the sessions with exactly rate r to dst, sorted
// by ID, and returns the extended slice. Passing a reused scratch slice
// (dst[:0]) makes the snapshot allocation-free once warm.
func (rs *rateSet) appendSessionsAt(dst []SessionID, r rate.Rate) []SessionID {
	i := rs.search(r)
	if i >= len(rs.buckets) || !rs.buckets[i].rate.Equal(r) {
		return dst
	}
	base := len(dst)
	for s := range rs.buckets[i].sessions {
		dst = append(dst, s)
	}
	slices.Sort(dst[base:])
	return dst
}

// sessionsAbove returns all sessions with rate strictly greater than r,
// sorted by ID.
func (rs *rateSet) sessionsAbove(r rate.Rate) []SessionID {
	return rs.appendSessionsAbove(nil, r)
}

// appendSessionsAbove appends all sessions with rate strictly greater than r
// to dst, sorted by ID, and returns the extended slice.
func (rs *rateSet) appendSessionsAbove(dst []SessionID, r rate.Rate) []SessionID {
	i := sort.Search(len(rs.buckets), func(i int) bool {
		return rs.buckets[i].rate.Greater(r)
	})
	base := len(dst)
	for ; i < len(rs.buckets); i++ {
		for s := range rs.buckets[i].sessions {
			dst = append(dst, s)
		}
	}
	slices.Sort(dst[base:])
	return dst
}

// appendAll appends every session in the set to dst, sorted by ID, and
// returns the extended slice.
func (rs *rateSet) appendAll(dst []SessionID) []SessionID {
	base := len(dst)
	for _, b := range rs.buckets {
		for s := range b.sessions {
			dst = append(dst, s)
		}
	}
	slices.Sort(dst[base:])
	return dst
}

// len returns the number of sessions in the set.
func (rs *rateSet) len() int { return rs.size }

// distinct returns the number of distinct rates (for stats and tests).
func (rs *rateSet) distinct() int { return len(rs.buckets) }
