package core

import (
	"sort"

	"bneck/internal/rate"
)

// rateSet is a multiset of sessions keyed by their rate, ordered by rate.
// The number of distinct rates at one link is small in practice (bounded by
// the number of bottleneck levels that ever touched the link), so a sorted
// slice of buckets with binary search is both simple and fast.
type rateSet struct {
	buckets []*rateBucket // ascending by rate
	size    int
}

type rateBucket struct {
	rate     rate.Rate
	sessions map[SessionID]struct{}
}

// add inserts session s with rate r.
func (rs *rateSet) add(r rate.Rate, s SessionID) {
	i := rs.search(r)
	if i < len(rs.buckets) && rs.buckets[i].rate.Equal(r) {
		rs.buckets[i].sessions[s] = struct{}{}
	} else {
		b := &rateBucket{rate: r, sessions: map[SessionID]struct{}{s: {}}}
		rs.buckets = append(rs.buckets, nil)
		copy(rs.buckets[i+1:], rs.buckets[i:])
		rs.buckets[i] = b
	}
	rs.size++
}

// remove deletes session s with rate r. It panics if absent: the table keeps
// index membership in lockstep with entries, and a mismatch is a bug.
func (rs *rateSet) remove(r rate.Rate, s SessionID) {
	i := rs.search(r)
	if i >= len(rs.buckets) || !rs.buckets[i].rate.Equal(r) {
		panic("core: rateSet.remove of absent rate")
	}
	b := rs.buckets[i]
	if _, ok := b.sessions[s]; !ok {
		panic("core: rateSet.remove of absent session")
	}
	delete(b.sessions, s)
	rs.size--
	if len(b.sessions) == 0 {
		rs.buckets = append(rs.buckets[:i], rs.buckets[i+1:]...)
	}
}

// search returns the first index whose bucket rate is >= r.
func (rs *rateSet) search(r rate.Rate) int {
	return sort.Search(len(rs.buckets), func(i int) bool {
		return rs.buckets[i].rate.GreaterEq(r)
	})
}

// max returns the largest rate present, if any.
func (rs *rateSet) max() (rate.Rate, bool) {
	if len(rs.buckets) == 0 {
		return rate.Zero, false
	}
	return rs.buckets[len(rs.buckets)-1].rate, true
}

// countAt returns how many sessions have exactly rate r.
func (rs *rateSet) countAt(r rate.Rate) int {
	i := rs.search(r)
	if i < len(rs.buckets) && rs.buckets[i].rate.Equal(r) {
		return len(rs.buckets[i].sessions)
	}
	return 0
}

// sessionsAt returns the sessions with exactly rate r, sorted by ID so that
// emission order (and hence the whole simulation) is deterministic. The
// caller owns the returned slice.
func (rs *rateSet) sessionsAt(r rate.Rate) []SessionID {
	i := rs.search(r)
	if i >= len(rs.buckets) || !rs.buckets[i].rate.Equal(r) {
		return nil
	}
	out := make([]SessionID, 0, len(rs.buckets[i].sessions))
	for s := range rs.buckets[i].sessions {
		out = append(out, s)
	}
	sortSessions(out)
	return out
}

// sessionsAbove returns all sessions with rate strictly greater than r,
// sorted by ID.
func (rs *rateSet) sessionsAbove(r rate.Rate) []SessionID {
	i := sort.Search(len(rs.buckets), func(i int) bool {
		return rs.buckets[i].rate.Greater(r)
	})
	var out []SessionID
	for ; i < len(rs.buckets); i++ {
		for s := range rs.buckets[i].sessions {
			out = append(out, s)
		}
	}
	sortSessions(out)
	return out
}

func sortSessions(s []SessionID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// len returns the number of sessions in the set.
func (rs *rateSet) len() int { return rs.size }

// distinct returns the number of distinct rates (for stats and tests).
func (rs *rateSet) distinct() int { return len(rs.buckets) }
