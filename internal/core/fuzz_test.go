package core

import (
	"math/rand"
	"testing"

	"bneck/internal/rate"
)

// chanKey identifies a FIFO channel: the real transport (one wire per
// directed link) guarantees order per session per wire; delivering in any
// order that respects per-(session,hop,direction) FIFO is a valid
// asynchronous schedule.
type chanKey struct {
	s   SessionID
	hop int
}

// runRandom delivers queued packets in a random channel-FIFO-respecting
// order until quiescence.
func (p *pump) runRandom(r *rand.Rand, limit int) {
	p.t.Helper()
	n := 0
	for len(p.queue) > 0 {
		if n++; n > limit {
			p.t.Fatalf("pump: no quiescence after %d random deliveries (%d queued)", limit, len(p.queue))
		}
		// Collect the head of each channel.
		seen := make(map[chanKey]bool)
		var heads []int
		for i, m := range p.queue {
			k := chanKey{m.s, m.hop}
			if !seen[k] {
				seen[k] = true
				heads = append(heads, i)
			}
		}
		pick := heads[r.Intn(len(heads))]
		m := p.queue[pick]
		p.queue = append(p.queue[:pick], p.queue[pick+1:]...)
		p.deliver(m)
	}
}

// deliverSome delivers up to k packets in FIFO order (to interleave session
// dynamics with in-flight traffic).
func (p *pump) deliverSome(k int) {
	for i := 0; i < k && len(p.queue) > 0; i++ {
		m := p.queue[0]
		p.queue = p.queue[1:]
		p.deliver(m)
	}
}

func (p *pump) deliver(m pumpMsg) {
	ps := p.sessions[m.s]
	switch {
	case m.hop == 0:
		ps.src.Receive(m.pkt)
	case m.hop == len(ps.path)+1:
		ps.dst.Receive(m.pkt, m.hop)
	default:
		p.link(ps.path[m.hop-1]).Receive(m.pkt, m.hop)
	}
}

// TestPropRandomStaticWorkloads: random static instances must converge to
// the oracle rates under the FIFO schedule.
func TestPropRandomStaticWorkloads(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for iter := 0; iter < 300; iter++ {
		p := newPump(t)
		nLinks := 1 + r.Intn(10)
		for l := 1; l <= nLinks; l++ {
			p.addLink(LinkRef(l), rate.FromInt64(int64(1+r.Intn(100))*1_000_000))
		}
		nSessions := 1 + r.Intn(12)
		for s := 1; s <= nSessions; s++ {
			pathLen := 1 + r.Intn(4)
			if pathLen > nLinks {
				pathLen = nLinks
			}
			perm := r.Perm(nLinks)
			path := make([]LinkRef, pathLen)
			for i := 0; i < pathLen; i++ {
				path[i] = LinkRef(perm[i] + 1)
			}
			demand := rate.Inf
			if r.Intn(3) == 0 {
				demand = rate.FromInt64(int64(1+r.Intn(50)) * 1_000_000)
			}
			p.addSession(SessionID(s), path...).Join(demand)
			if r.Intn(2) == 0 {
				p.deliverSome(r.Intn(20))
			}
		}
		p.run(500_000)
		p.checkAll()
	}
}

// TestPropRandomSchedules: the same instance must converge under arbitrary
// channel-FIFO delivery orders (asynchrony adversary).
func TestPropRandomSchedules(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for iter := 0; iter < 200; iter++ {
		p := newPump(t)
		nLinks := 1 + r.Intn(6)
		for l := 1; l <= nLinks; l++ {
			p.addLink(LinkRef(l), rate.FromInt64(int64(1+r.Intn(40))*1_000_000))
		}
		nSessions := 1 + r.Intn(8)
		for s := 1; s <= nSessions; s++ {
			pathLen := 1 + r.Intn(3)
			if pathLen > nLinks {
				pathLen = nLinks
			}
			perm := r.Perm(nLinks)
			path := make([]LinkRef, pathLen)
			for i := range path {
				path[i] = LinkRef(perm[i] + 1)
			}
			p.addSession(SessionID(s), path...).Join(rate.Inf)
		}
		p.runRandom(r, 500_000)
		p.checkAll()
	}
}

// TestPropRandomDynamics: joins, leaves and demand changes interleaved with
// partial packet delivery — the paper's Experiment 2 in miniature, checked
// against the oracle after every quiescence.
func TestPropRandomDynamics(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for iter := 0; iter < 150; iter++ {
		p := newPump(t)
		nLinks := 2 + r.Intn(8)
		for l := 1; l <= nLinks; l++ {
			p.addLink(LinkRef(l), rate.FromInt64(int64(1+r.Intn(100))*1_000_000))
		}
		nextID := SessionID(1)
		active := make(map[SessionID]*SourceNode)

		newSession := func() {
			pathLen := 1 + r.Intn(4)
			if pathLen > nLinks {
				pathLen = nLinks
			}
			perm := r.Perm(nLinks)
			path := make([]LinkRef, pathLen)
			for i := range path {
				path[i] = LinkRef(perm[i] + 1)
			}
			src := p.addSession(nextID, path...)
			demand := rate.Inf
			if r.Intn(4) == 0 {
				demand = rate.FromInt64(int64(1+r.Intn(50)) * 1_000_000)
			}
			src.Join(demand)
			active[nextID] = src
			nextID++
		}

		randActive := func() (SessionID, *SourceNode) {
			for id, src := range active { // map order random enough here
				return id, src
			}
			return 0, nil
		}

		nOps := 5 + r.Intn(30)
		for op := 0; op < nOps; op++ {
			switch r.Intn(4) {
			case 0, 1:
				newSession()
			case 2:
				if id, src := randActive(); src != nil {
					src.Leave()
					delete(active, id)
				} else {
					newSession()
				}
			case 3:
				if _, src := randActive(); src != nil {
					d := rate.Inf
					if r.Intn(2) == 0 {
						d = rate.FromInt64(int64(1+r.Intn(80)) * 1_000_000)
					}
					src.Change(d)
				} else {
					newSession()
				}
			}
			p.deliverSome(r.Intn(30))
		}
		p.run(1_000_000)
		p.checkAll()
	}
}

// TestPropTransientGrantInvariants: every rate a source ever holds respects
// its demand and the capacity of every link on its path. (The paper's
// stronger §I-B claim — transient rates below the max-min rates — is an
// empirical property of near-simultaneous joins, reproduced in Experiment 3 /
// Figure 7, not an invariant of arbitrary schedules: a session that probes
// before its contenders' Joins arrive legitimately holds a higher rate until
// it is updated.)
func TestPropTransientGrantInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for iter := 0; iter < 150; iter++ {
		p := newPump(t)
		nLinks := 1 + r.Intn(8)
		for l := 1; l <= nLinks; l++ {
			p.addLink(LinkRef(l), rate.FromInt64(int64(1+r.Intn(100))*1_000_000))
		}
		nSessions := 1 + r.Intn(10)
		type sessInfo struct {
			src  *SourceNode
			path []LinkRef
		}
		sess := make(map[SessionID]sessInfo)
		for s := 1; s <= nSessions; s++ {
			pathLen := 1 + r.Intn(4)
			if pathLen > nLinks {
				pathLen = nLinks
			}
			perm := r.Perm(nLinks)
			path := make([]LinkRef, pathLen)
			for i := range path {
				path[i] = LinkRef(perm[i] + 1)
			}
			src := p.addSession(SessionID(s), path...)
			src.Join(rate.Inf)
			sess[SessionID(s)] = sessInfo{src: src, path: path}
		}

		// Deliver one packet at a time, checking per-session grant
		// invariants after each step.
		guard := 0
		for len(p.queue) > 0 {
			if guard++; guard > 500_000 {
				t.Fatalf("no quiescence")
			}
			p.deliverSome(1)
			for id, si := range sess {
				lam, ok := si.src.Rate()
				if !ok {
					continue
				}
				if lam.Greater(si.src.Demand()) {
					t.Fatalf("iter %d: session %d granted %v above demand %v",
						iter, id, lam, si.src.Demand())
				}
				for _, l := range si.path {
					if lam.Greater(p.caps[l]) {
						t.Fatalf("iter %d: session %d granted %v above capacity %v of link %d",
							iter, id, lam, p.caps[l], l)
					}
				}
			}
		}
		p.checkAll()
	}
}
