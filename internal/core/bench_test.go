package core

import (
	"testing"

	"bneck/internal/rate"
)

// Ablation: the indexed session table vs the naive Figure 2 transcription.
// The protocol evaluates the bottleneck predicate (∀r ∈ Re: λ = Be ∧ IDLE)
// on every Response; with n sessions per link the naive form is O(n) per
// packet, the indexed form O(1). DESIGN.md §5 calls this out as the one
// engineering deviation from the paper's pseudocode.

func fillTable(n int) *table {
	t := newTable(rate.Mbps(int64(n)))
	for s := SessionID(1); int(s) <= n; s++ {
		ent := t.addNew(s, 1)
		t.setIdle(s, ent, rate.Mbps(1))
	}
	return t
}

func fillNaive(n int) *naiveTable {
	t := newNaiveTable(rate.Mbps(int64(n)))
	for s := SessionID(1); int(s) <= n; s++ {
		t.re[s] = &naiveEntry{mu: Idle, lambda: rate.Mbps(1), hasLambda: true}
	}
	return t
}

func BenchmarkBottleneckPredicate(b *testing.B) {
	for _, n := range []int{10, 100, 1000, 10000} {
		b.Run("indexed/"+itoa(n), func(b *testing.B) {
			t := fillTable(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !t.allReIdleAtBe() {
					b.Fatal("predicate false")
				}
			}
		})
		b.Run("naive/"+itoa(n), func(b *testing.B) {
			t := fillNaive(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !t.allReIdleAtBe() {
					b.Fatal("predicate false")
				}
			}
		})
	}
}

func BenchmarkBeComputation(b *testing.B) {
	for _, n := range []int{100, 10000} {
		b.Run("indexed/"+itoa(n), func(b *testing.B) {
			t := fillTable(n)
			// Half the sessions into Fe to exercise the incremental sum.
			for s := SessionID(1); int(s) <= n/2; s++ {
				t.moveReToFe(s, t.get(s))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.invalidateBe()
				_ = t.be()
			}
		})
		b.Run("naive/"+itoa(n), func(b *testing.B) {
			t := fillNaive(n)
			for s := SessionID(1); int(s) <= n/2; s++ {
				t.fe[s] = t.re[s]
				delete(t.re, s)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = t.be()
			}
		})
	}
}

// BenchmarkProbeCycle measures one full protocol probe cycle (join +
// response round trip through one link) including table maintenance.
func BenchmarkProbeCycle(b *testing.B) {
	for _, n := range []int{1, 100, 10000} {
		b.Run("resident="+itoa(n), func(b *testing.B) {
			rec := &recorder{}
			rl := NewRouterLink(1, rate.Mbps(int64(n+1)), rec)
			for s := SessionID(2); int(s) <= n+1; s++ {
				rl.Receive(Packet{Type: PktJoin, Session: s, Rate: rate.Mbps(1), Bneck: SourceRef}, 1)
				rl.Receive(Packet{Type: PktResponse, Session: s, Resp: RespResponse,
					Rate: rate.Mbps(1), Bneck: LinkRef(99)}, 1)
			}
			rl.Receive(Packet{Type: PktJoin, Session: 1, Rate: rate.Mbps(1), Bneck: SourceRef}, 1)
			rl.Receive(Packet{Type: PktResponse, Session: 1, Resp: RespResponse,
				Rate: rate.Mbps(1), Bneck: LinkRef(99)}, 1)
			rec.emitted = nil
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rl.Receive(Packet{Type: PktProbe, Session: 1, Rate: rate.Mbps(1), Bneck: SourceRef}, 1)
				rl.Receive(Packet{Type: PktResponse, Session: 1, Resp: RespResponse,
					Rate: rate.Mbps(1), Bneck: LinkRef(99)}, 1)
				rec.emitted = rec.emitted[:0]
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
