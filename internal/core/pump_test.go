package core

import (
	"fmt"
	"testing"

	"bneck/internal/rate"
	"bneck/internal/waterfill"
)

// pump is a synchronous in-memory transport for protocol unit tests: a
// single global FIFO queue of packets, delivered one at a time. This is one
// valid asynchronous schedule (handlers stay atomic, per-link order is
// FIFO), with no simulator involved.
type pump struct {
	t        *testing.T
	links    map[LinkRef]*RouterLink
	caps     map[LinkRef]rate.Rate
	sessions map[SessionID]*pumpSession
	queue    []pumpMsg
	sent     int
	rates    map[SessionID]rate.Rate // last API.Rate per session
	rateLog  []string
}

type pumpSession struct {
	path []LinkRef
	src  *SourceNode
	dst  *DestinationNode
}

type pumpMsg struct {
	s   SessionID
	hop int
	pkt Packet
}

func newPump(t *testing.T) *pump {
	return &pump{
		t:        t,
		links:    make(map[LinkRef]*RouterLink),
		caps:     make(map[LinkRef]rate.Rate),
		sessions: make(map[SessionID]*pumpSession),
		rates:    make(map[SessionID]rate.Rate),
	}
}

func (p *pump) addLink(ref LinkRef, capacity rate.Rate) {
	p.caps[ref] = capacity
}

func (p *pump) link(ref LinkRef) *RouterLink {
	if rl, ok := p.links[ref]; ok {
		return rl
	}
	c, ok := p.caps[ref]
	if !ok {
		p.t.Fatalf("pump: unknown link %d", ref)
	}
	rl := NewRouterLink(ref, c, p)
	p.links[ref] = rl
	return rl
}

func (p *pump) addSession(id SessionID, path ...LinkRef) *SourceNode {
	ps := &pumpSession{path: path}
	ps.src = NewSourceNode(id, p, func(s SessionID, l rate.Rate) {
		p.rates[s] = l
		p.rateLog = append(p.rateLog, fmt.Sprintf("s%d=%v", s, l))
	})
	ps.dst = NewDestinationNode(id, p)
	p.sessions[id] = ps
	return ps.src
}

// Emit implements Emitter.
func (p *pump) Emit(s SessionID, from int, dir Direction, pkt Packet) {
	to := from + 1
	if dir == Up {
		to = from - 1
	}
	ps := p.sessions[s]
	if to < 0 || to > len(ps.path)+1 {
		p.t.Fatalf("pump: emit out of path range: s%d from %d dir %v", s, from, dir)
	}
	p.sent++
	p.queue = append(p.queue, pumpMsg{s: s, hop: to, pkt: pkt})
}

// run delivers queued packets until quiescence, failing the test if more
// than limit deliveries happen (livelock guard).
func (p *pump) run(limit int) {
	p.t.Helper()
	n := 0
	for len(p.queue) > 0 {
		if n++; n > limit {
			p.t.Fatalf("pump: no quiescence after %d deliveries", limit)
		}
		m := p.queue[0]
		p.queue = p.queue[1:]
		ps := p.sessions[m.s]
		switch {
		case m.hop == 0:
			ps.src.Receive(m.pkt)
		case m.hop == len(ps.path)+1:
			ps.dst.Receive(m.pkt, m.hop)
		default:
			p.link(ps.path[m.hop-1]).Receive(m.pkt, m.hop)
		}
	}
}

// checkAll verifies every link's table invariants and stability, and that
// the granted rates match the oracle for the currently active sessions.
func (p *pump) checkAll() {
	p.t.Helper()
	for ref, rl := range p.links {
		if err := rl.CheckInvariants(); err != nil {
			p.t.Fatalf("link %d invariants: %v", ref, err)
		}
		if !rl.Stable() {
			p.t.Fatalf("link %d not stable after quiescence", ref)
		}
	}
	// Build the oracle instance over active sessions.
	refIdx := make(map[LinkRef]int)
	var in waterfill.Instance
	var ids []SessionID
	for id, ps := range p.sessions {
		if !ps.src.Active() {
			continue
		}
		sess := waterfill.Session{Demand: ps.src.Demand()}
		for _, ref := range ps.path {
			i, ok := refIdx[ref]
			if !ok {
				i = len(in.Capacity)
				refIdx[ref] = i
				in.Capacity = append(in.Capacity, p.caps[ref])
			}
			sess.Path = append(sess.Path, i)
		}
		in.Sessions = append(in.Sessions, sess)
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return
	}
	want, err := waterfill.Solve(in)
	if err != nil {
		p.t.Fatalf("oracle: %v", err)
	}
	for i, id := range ids {
		got, ok := p.sessions[id].src.Rate()
		if !ok {
			p.t.Fatalf("session %d has no rate after quiescence", id)
		}
		if !got.Equal(want[i]) {
			p.t.Fatalf("session %d rate = %v, oracle says %v", id, got, want[i])
		}
		if last, ok := p.rates[id]; !ok || !last.Equal(want[i]) {
			p.t.Fatalf("session %d last API.Rate = %v (%t), oracle says %v", id, last, ok, want[i])
		}
	}
}

func TestSingleSessionSelfLimited(t *testing.T) {
	p := newPump(t)
	p.addLink(1, rate.Mbps(10))
	s := p.addSession(1, 1)
	s.Join(rate.Mbps(4))
	p.run(100)
	p.checkAll()
	if got, _ := s.Rate(); !got.Equal(rate.Mbps(4)) {
		t.Fatalf("rate = %v", got)
	}
	if !s.Converged() {
		t.Fatalf("source did not converge")
	}
}

func TestSingleSessionLinkLimited(t *testing.T) {
	p := newPump(t)
	p.addLink(1, rate.Mbps(10))
	s := p.addSession(1, 1)
	s.Join(rate.Inf)
	p.run(100)
	p.checkAll()
	if got, _ := s.Rate(); !got.Equal(rate.Mbps(10)) {
		t.Fatalf("rate = %v", got)
	}
}

func TestTwoSessionsShareOneLink(t *testing.T) {
	p := newPump(t)
	p.addLink(1, rate.Mbps(10))
	s1 := p.addSession(1, 1)
	s2 := p.addSession(2, 1)
	s1.Join(rate.Inf)
	s2.Join(rate.Inf)
	p.run(1000)
	p.checkAll()
	if got, _ := s1.Rate(); !got.Equal(rate.Mbps(5)) {
		t.Fatalf("s1 rate = %v", got)
	}
}

func TestClassicChainThreeSessions(t *testing.T) {
	// s1 on A (10), s2 on A,B, s3 on B (4): max-min 8/2/2.
	p := newPump(t)
	p.addLink(1, rate.Mbps(10))
	p.addLink(2, rate.Mbps(4))
	s1 := p.addSession(1, 1)
	s2 := p.addSession(2, 1, 2)
	s3 := p.addSession(3, 2)
	s1.Join(rate.Inf)
	s2.Join(rate.Inf)
	s3.Join(rate.Inf)
	p.run(2000)
	p.checkAll()
	for id, want := range map[SessionID]rate.Rate{1: rate.Mbps(8), 2: rate.Mbps(2), 3: rate.Mbps(2)} {
		if got, _ := p.sessions[id].src.Rate(); !got.Equal(want) {
			t.Fatalf("s%d rate = %v, want %v", id, got, want)
		}
	}
}

func TestLeaveRedistributes(t *testing.T) {
	p := newPump(t)
	p.addLink(1, rate.Mbps(10))
	s1 := p.addSession(1, 1)
	s2 := p.addSession(2, 1)
	s1.Join(rate.Inf)
	s2.Join(rate.Inf)
	p.run(1000)
	if got, _ := s2.Rate(); !got.Equal(rate.Mbps(5)) {
		t.Fatalf("pre-leave s2 rate = %v", got)
	}
	s1.Leave()
	p.run(1000)
	p.checkAll()
	if got, _ := s2.Rate(); !got.Equal(rate.Mbps(10)) {
		t.Fatalf("post-leave s2 rate = %v", got)
	}
}

func TestJoinReducesExisting(t *testing.T) {
	p := newPump(t)
	p.addLink(1, rate.Mbps(12))
	s1 := p.addSession(1, 1)
	s1.Join(rate.Inf)
	p.run(1000)
	if got, _ := s1.Rate(); !got.Equal(rate.Mbps(12)) {
		t.Fatalf("solo rate = %v", got)
	}
	s2 := p.addSession(2, 1)
	s2.Join(rate.Inf)
	p.run(1000)
	p.checkAll()
	if got, _ := s1.Rate(); !got.Equal(rate.Mbps(6)) {
		t.Fatalf("s1 rate after join = %v", got)
	}
	if got, _ := s2.Rate(); !got.Equal(rate.Mbps(6)) {
		t.Fatalf("s2 rate = %v", got)
	}
}

func TestChangeDemand(t *testing.T) {
	p := newPump(t)
	p.addLink(1, rate.Mbps(12))
	s1 := p.addSession(1, 1)
	s2 := p.addSession(2, 1)
	s1.Join(rate.Inf)
	s2.Join(rate.Inf)
	p.run(1000)
	// s1 drops its demand to 2: s2 should now get 10.
	s1.Change(rate.Mbps(2))
	p.run(1000)
	p.checkAll()
	if got, _ := s1.Rate(); !got.Equal(rate.Mbps(2)) {
		t.Fatalf("s1 rate = %v", got)
	}
	if got, _ := s2.Rate(); !got.Equal(rate.Mbps(10)) {
		t.Fatalf("s2 rate = %v", got)
	}
	// And back up: equal shares again.
	s1.Change(rate.Inf)
	p.run(1000)
	p.checkAll()
	if got, _ := s1.Rate(); !got.Equal(rate.Mbps(6)) {
		t.Fatalf("s1 rate after raise = %v", got)
	}
}

func TestCascadedBottlenecks(t *testing.T) {
	// Two sessions through links 1 (6) and 2 (20), a third on link 2 only.
	p := newPump(t)
	p.addLink(1, rate.Mbps(6))
	p.addLink(2, rate.Mbps(20))
	s1 := p.addSession(1, 1, 2)
	s2 := p.addSession(2, 1, 2)
	s3 := p.addSession(3, 2)
	s1.Join(rate.Inf)
	s2.Join(rate.Inf)
	s3.Join(rate.Inf)
	p.run(2000)
	p.checkAll()
	for id, want := range map[SessionID]rate.Rate{1: rate.Mbps(3), 2: rate.Mbps(3), 3: rate.Mbps(14)} {
		if got, _ := p.sessions[id].src.Rate(); !got.Equal(want) {
			t.Fatalf("s%d rate = %v, want %v", id, got, want)
		}
	}
}

func TestLongPathManyLinks(t *testing.T) {
	p := newPump(t)
	var path []LinkRef
	for i := LinkRef(1); i <= 10; i++ {
		c := rate.Mbps(int64(10 + i))
		if i == 5 {
			c = rate.Mbps(3)
		}
		p.addLink(i, c)
		path = append(path, i)
	}
	s := p.addSession(1, path...)
	s.Join(rate.Inf)
	p.run(1000)
	p.checkAll()
	if got, _ := s.Rate(); !got.Equal(rate.Mbps(3)) {
		t.Fatalf("rate = %v", got)
	}
}

func TestQuiescencePacketCount(t *testing.T) {
	// One self-limited session on a 2-link path: Join cycle (down 3 hops, up
	// 3 hops) + SetBottleneck (down 3 hops) and nothing else.
	p := newPump(t)
	p.addLink(1, rate.Mbps(10))
	p.addLink(2, rate.Mbps(10))
	s := p.addSession(1, 1, 2)
	s.Join(rate.Mbps(1))
	p.run(100)
	p.checkAll()
	if p.sent != 9 {
		t.Fatalf("packets = %d, want 9 (join 3 + response 3 + setbottleneck 3)", p.sent)
	}
}

func TestManySessionsOneLink(t *testing.T) {
	p := newPump(t)
	p.addLink(1, rate.Mbps(100))
	const n = 50
	for i := 1; i <= n; i++ {
		p.addSession(SessionID(i), 1).Join(rate.Inf)
	}
	p.run(200000)
	p.checkAll()
	want := rate.Mbps(100).DivInt(n)
	for i := 1; i <= n; i++ {
		if got, _ := p.sessions[SessionID(i)].src.Rate(); !got.Equal(want) {
			t.Fatalf("s%d rate = %v, want %v", i, got, want)
		}
	}
}

func TestLeaveWhileProbeInFlight(t *testing.T) {
	// A session leaves immediately after joining; its packets race with the
	// Leave. No state must remain anywhere.
	p := newPump(t)
	p.addLink(1, rate.Mbps(10))
	s1 := p.addSession(1, 1)
	s2 := p.addSession(2, 1)
	s1.Join(rate.Inf)
	s2.Join(rate.Inf)
	s1.Leave() // before any packet is delivered
	p.run(1000)
	p.checkAll()
	if got, _ := s2.Rate(); !got.Equal(rate.Mbps(10)) {
		t.Fatalf("s2 rate = %v", got)
	}
	if p.link(1).Sessions() != 1 {
		t.Fatalf("link still knows %d sessions", p.link(1).Sessions())
	}
}
