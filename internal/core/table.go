package core

import (
	"fmt"

	"bneck/internal/rate"
)

// tableEntry is the per-session state a link keeps: which set the session is
// in (R_e or F_e), its state μ, its recorded rate λ (meaningful only after
// the first accepted Response), and the hop index of this link on the
// session's path (needed to emit packets for sessions other than the one
// currently being processed).
type tableEntry struct {
	inRe      bool
	mu        State
	lambda    rate.Rate
	hasLambda bool
	hop       int
}

// table is a link's session table: the paper's R_e and F_e with the
// bookkeeping needed to evaluate every Figure 2 predicate in O(log k)
// (k = number of distinct rates at the link) instead of O(|S_e|):
//
//   - sumFe: exact incremental Σ_{s∈F_e} λ_s, so B_e is O(1)
//   - idleRates: rates of R_e members with μ = IDLE (these are exactly the
//     sessions whose λ is meaningful and whose equality with B_e the
//     protocol tests)
//   - feRates: rates of F_e members (for ProcessNewRestricted's max test)
type table struct {
	capacity  rate.Rate
	entries   map[SessionID]*tableEntry
	sumFe     rate.Rate
	reCount   int
	reIdle    int
	idleRates rateSet
	feRates   rateSet

	beCache rate.Rate
	beValid bool
}

func newTable(capacity rate.Rate) *table {
	return &table{
		capacity: capacity,
		entries:  make(map[SessionID]*tableEntry),
	}
}

// be returns B_e = (C_e − Σ_{s∈F_e} λ_s)/|R_e|, or +∞ when R_e is empty
// (an empty R_e restricts nothing).
func (t *table) be() rate.Rate {
	if t.reCount == 0 {
		return rate.Inf
	}
	if !t.beValid {
		t.beCache = t.capacity.Sub(t.sumFe).DivInt(t.reCount)
		t.beValid = true
	}
	return t.beCache
}

func (t *table) invalidateBe() { t.beValid = false }

// get returns the entry for s, or nil if the link does not know s.
func (t *table) get(s SessionID) *tableEntry { return t.entries[s] }

// addNew registers a session in R_e with μ = WAITING_RESPONSE (a Join just
// passed). The caller must have ensured s is absent.
func (t *table) addNew(s SessionID, hop int) *tableEntry {
	if _, ok := t.entries[s]; ok {
		panic(fmt.Sprintf("core: addNew of existing session %d", s))
	}
	ent := &tableEntry{inRe: true, mu: WaitingResponse, hop: hop}
	t.entries[s] = ent
	t.reCount++
	t.invalidateBe()
	return ent
}

// remove deletes all state for s.
func (t *table) remove(s SessionID) {
	ent, ok := t.entries[s]
	if !ok {
		return
	}
	if ent.inRe {
		if ent.mu == Idle {
			t.idleRates.remove(ent.lambda, s)
			t.reIdle--
		}
		t.reCount--
	} else {
		t.feRates.remove(ent.lambda, s)
		t.sumFe = t.sumFe.Sub(ent.lambda)
	}
	delete(t.entries, s)
	t.invalidateBe()
}

// setState transitions μ for s, maintaining the idle index.
func (t *table) setState(s SessionID, ent *tableEntry, mu State) {
	if ent.mu == mu {
		return
	}
	if mu == Idle {
		panic("core: use setIdle to enter IDLE")
	}
	if ent.inRe && ent.mu == Idle {
		t.idleRates.remove(ent.lambda, s)
		t.reIdle--
	}
	ent.mu = mu
}

// setIdle records an accepted Response: λ is stored and μ becomes IDLE.
// Only R_e members complete probe cycles.
func (t *table) setIdle(s SessionID, ent *tableEntry, lambda rate.Rate) {
	if !ent.inRe {
		panic(fmt.Sprintf("core: setIdle on F_e member %d", s))
	}
	if ent.mu == Idle {
		t.idleRates.remove(ent.lambda, s)
		t.reIdle--
	}
	ent.lambda = lambda
	ent.hasLambda = true
	ent.mu = Idle
	t.idleRates.add(lambda, s)
	t.reIdle++
}

// moveFeToRe moves s from F_e to R_e (Probe arrival or ProcessNewRestricted),
// keeping λ and μ.
func (t *table) moveFeToRe(s SessionID, ent *tableEntry) {
	if ent.inRe {
		panic(fmt.Sprintf("core: moveFeToRe on R_e member %d", s))
	}
	t.feRates.remove(ent.lambda, s)
	t.sumFe = t.sumFe.Sub(ent.lambda)
	ent.inRe = true
	t.reCount++
	if ent.mu == Idle {
		t.idleRates.add(ent.lambda, s)
		t.reIdle++
	}
	t.invalidateBe()
}

// moveReToFe moves s from R_e to F_e (SetBottleneck at a non-restricting
// link). The entry must be IDLE (its λ is meaningful).
func (t *table) moveReToFe(s SessionID, ent *tableEntry) {
	if !ent.inRe {
		panic(fmt.Sprintf("core: moveReToFe on F_e member %d", s))
	}
	if ent.mu != Idle || !ent.hasLambda {
		panic(fmt.Sprintf("core: moveReToFe on non-idle session %d", s))
	}
	t.idleRates.remove(ent.lambda, s)
	t.reIdle--
	ent.inRe = false
	t.reCount--
	t.sumFe = t.sumFe.Add(ent.lambda)
	t.feRates.add(ent.lambda, s)
	t.invalidateBe()
}

// allReIdleAtBe evaluates the paper's bottleneck predicate
// ∀r ∈ R_e: λ_r = B_e ∧ μ_r = IDLE (false when R_e is empty: an empty link
// is not a bottleneck for anyone).
func (t *table) allReIdleAtBe() bool {
	if t.reCount == 0 || t.reIdle != t.reCount {
		return false
	}
	return t.idleRates.countAt(t.be()) == t.reCount
}

// feMax returns the largest λ among F_e members.
func (t *table) feMax() (rate.Rate, bool) { return t.feRates.max() }

// feSessionsAt returns the F_e members with λ = r, sorted.
func (t *table) feSessionsAt(r rate.Rate) []SessionID { return t.feRates.sessionsAt(r) }

// idleAt returns the R_e members that are IDLE with λ = r, sorted.
func (t *table) idleAt(r rate.Rate) []SessionID { return t.idleRates.sessionsAt(r) }

// idleAbove returns the R_e members that are IDLE with λ > r, sorted.
func (t *table) idleAbove(r rate.Rate) []SessionID { return t.idleRates.sessionsAbove(r) }

// appendFeSessionsAt, appendIdleAt and appendIdleAbove are the scratch-slice
// forms of the snapshots above: they append to dst and return it, so a
// caller reusing one buffer takes a stable snapshot without allocating.
func (t *table) appendFeSessionsAt(dst []SessionID, r rate.Rate) []SessionID {
	return t.feRates.appendSessionsAt(dst, r)
}

func (t *table) appendIdleAt(dst []SessionID, r rate.Rate) []SessionID {
	return t.idleRates.appendSessionsAt(dst, r)
}

func (t *table) appendIdleAbove(dst []SessionID, r rate.Rate) []SessionID {
	return t.idleRates.appendSessionsAbove(dst, r)
}

// appendIdleAll appends every IDLE R_e member to dst, sorted by ID.
func (t *table) appendIdleAll(dst []SessionID) []SessionID {
	return t.idleRates.appendAll(dst)
}

// setCapacity changes C_e. The caller (RouterLink.SetCapacity) is responsible
// for re-probing sessions so the table re-converges at the new capacity.
func (t *table) setCapacity(c rate.Rate) {
	t.capacity = c
	t.invalidateBe()
}

// sessions returns the number of sessions known at the link.
func (t *table) sessions() int { return len(t.entries) }

// checkInvariants verifies internal consistency; tests call it after every
// operation sequence. It returns the first violation found.
func (t *table) checkInvariants() error {
	reCount, reIdle := 0, 0
	sum := rate.Zero
	for s, ent := range t.entries {
		if ent.inRe {
			reCount++
			if ent.mu == Idle {
				reIdle++
				if !ent.hasLambda {
					return fmt.Errorf("idle session %d without lambda", s)
				}
				if t.idleRates.countAt(ent.lambda) == 0 {
					return fmt.Errorf("idle session %d missing from idle index", s)
				}
			}
		} else {
			if !ent.hasLambda {
				return fmt.Errorf("F_e session %d without lambda", s)
			}
			sum = sum.Add(ent.lambda)
			if t.feRates.countAt(ent.lambda) == 0 {
				return fmt.Errorf("F_e session %d missing from fe index", s)
			}
		}
	}
	if reCount != t.reCount {
		return fmt.Errorf("reCount = %d, counted %d", t.reCount, reCount)
	}
	if reIdle != t.reIdle {
		return fmt.Errorf("reIdle = %d, counted %d", t.reIdle, reIdle)
	}
	if !sum.Equal(t.sumFe) {
		return fmt.Errorf("sumFe = %v, counted %v", t.sumFe, sum)
	}
	if t.idleRates.len() != reIdle {
		return fmt.Errorf("idle index size %d, want %d", t.idleRates.len(), reIdle)
	}
	if t.feRates.len() != len(t.entries)-reCount {
		return fmt.Errorf("fe index size %d, want %d", t.feRates.len(), len(t.entries)-reCount)
	}
	if t.reCount > 0 && t.capacity.Sub(t.sumFe).Sign() < 0 {
		return fmt.Errorf("F_e oversubscribed: sum %v > capacity %v", t.sumFe, t.capacity)
	}
	return nil
}
