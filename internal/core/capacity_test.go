package core

import (
	"testing"

	"bneck/internal/rate"
)

// setCapacity applies a capacity change to a link through the protocol task,
// keeping the pump's oracle capacities in sync.
func (p *pump) setCapacity(ref LinkRef, c rate.Rate) {
	p.caps[ref] = c
	p.link(ref).SetCapacity(c)
}

func TestSetCapacityIncrease(t *testing.T) {
	p := newPump(t)
	p.addLink(1, rate.Mbps(10))
	s1 := p.addSession(1, 1)
	s2 := p.addSession(2, 1)
	s1.Join(rate.Inf)
	s2.Join(rate.Inf)
	p.run(1000)
	if got, _ := s1.Rate(); !got.Equal(rate.Mbps(5)) {
		t.Fatalf("pre-change s1 rate = %v", got)
	}
	p.setCapacity(1, rate.Mbps(30))
	p.run(1000)
	p.checkAll()
	for id, s := range map[SessionID]*SourceNode{1: s1, 2: s2} {
		if got, _ := s.Rate(); !got.Equal(rate.Mbps(15)) {
			t.Fatalf("s%d rate = %v, want 15 Mbps", id, got)
		}
	}
}

func TestSetCapacityDecrease(t *testing.T) {
	p := newPump(t)
	p.addLink(1, rate.Mbps(30))
	s1 := p.addSession(1, 1)
	s2 := p.addSession(2, 1)
	s1.Join(rate.Inf)
	s2.Join(rate.Inf)
	p.run(1000)
	p.setCapacity(1, rate.Mbps(8))
	p.run(1000)
	p.checkAll()
	if got, _ := s1.Rate(); !got.Equal(rate.Mbps(4)) {
		t.Fatalf("s1 rate = %v, want 4 Mbps", got)
	}
}

// TestSetCapacityReclassifiesRestricted covers the F_e path: a session
// restricted elsewhere must be pulled back into R_e and re-judged when this
// link's capacity drops below its recorded rate.
func TestSetCapacityReclassifiesRestricted(t *testing.T) {
	// s1 crosses links 1 (wide) and 2 (narrow, 4): restricted at 2, so it
	// sits in F_e of link 1. s2 crosses link 1 only.
	p := newPump(t)
	p.addLink(1, rate.Mbps(20))
	p.addLink(2, rate.Mbps(4))
	s1 := p.addSession(1, 1, 2)
	s2 := p.addSession(2, 1)
	s1.Join(rate.Inf)
	s2.Join(rate.Inf)
	p.run(2000)
	if got, _ := s1.Rate(); !got.Equal(rate.Mbps(4)) {
		t.Fatalf("s1 rate = %v, want 4 Mbps", got)
	}
	if got, _ := s2.Rate(); !got.Equal(rate.Mbps(16)) {
		t.Fatalf("s2 rate = %v, want 16 Mbps", got)
	}
	// Shrink link 1 below 2·4: it becomes the bottleneck for both.
	p.setCapacity(1, rate.Mbps(6))
	p.run(2000)
	p.checkAll()
	if got, _ := s1.Rate(); !got.Equal(rate.Mbps(3)) {
		t.Fatalf("s1 rate after shrink = %v, want 3 Mbps", got)
	}
	if got, _ := s2.Rate(); !got.Equal(rate.Mbps(3)) {
		t.Fatalf("s2 rate after shrink = %v, want 3 Mbps", got)
	}
	// And widen it again: s1 returns to its link-2 bottleneck.
	p.setCapacity(1, rate.Mbps(20))
	p.run(2000)
	p.checkAll()
	if got, _ := s1.Rate(); !got.Equal(rate.Mbps(4)) {
		t.Fatalf("s1 rate after widen = %v, want 4 Mbps", got)
	}
	if got, _ := s2.Rate(); !got.Equal(rate.Mbps(16)) {
		t.Fatalf("s2 rate after widen = %v, want 16 Mbps", got)
	}
}

func TestSetCapacityNoOp(t *testing.T) {
	p := newPump(t)
	p.addLink(1, rate.Mbps(10))
	s := p.addSession(1, 1)
	s.Join(rate.Inf)
	p.run(1000)
	sent := p.sent
	p.setCapacity(1, rate.Mbps(10)) // unchanged capacity: must stay silent
	p.run(1000)
	if p.sent != sent {
		t.Fatalf("no-op capacity change generated %d packets", p.sent-sent)
	}
	p.checkAll()
}

// TestSetCapacityMidConvergence changes capacity while probe cycles are in
// flight: the Response consistency check must still drive the link to the
// correct final state.
func TestSetCapacityMidConvergence(t *testing.T) {
	p := newPump(t)
	p.addLink(1, rate.Mbps(10))
	const n = 8
	srcs := make([]*SourceNode, n)
	for i := range srcs {
		srcs[i] = p.addSession(SessionID(i+1), 1)
		srcs[i].Join(rate.Inf)
	}
	// Deliver only a few packets, then reconfigure mid-flight.
	for i := 0; i < 5 && len(p.queue) > 0; i++ {
		m := p.queue[0]
		p.queue = p.queue[1:]
		ps := p.sessions[m.s]
		switch {
		case m.hop == 0:
			ps.src.Receive(m.pkt)
		case m.hop == len(ps.path)+1:
			ps.dst.Receive(m.pkt, m.hop)
		default:
			p.link(ps.path[m.hop-1]).Receive(m.pkt, m.hop)
		}
	}
	p.setCapacity(1, rate.Mbps(24))
	p.run(100000)
	p.checkAll()
	want := rate.Mbps(3)
	for i, s := range srcs {
		if got, _ := s.Rate(); !got.Equal(want) {
			t.Fatalf("s%d rate = %v, want %v", i+1, got, want)
		}
	}
}
