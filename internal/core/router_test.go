package core

import (
	"testing"

	"bneck/internal/rate"
)

// newTestLink returns a RouterLink on link ref 1 with the given capacity and
// a recorder for its emissions.
func newTestLink(capacity rate.Rate) (*RouterLink, *recorder) {
	rec := &recorder{}
	return NewRouterLink(1, capacity, rec), rec
}

// drive puts session s into the link in IDLE state at rate lam by playing a
// Join and its Response through the handler.
func driveIdle(t *testing.T, rl *RouterLink, rec *recorder, s SessionID, lam rate.Rate) {
	t.Helper()
	rl.Receive(Packet{Type: PktJoin, Session: s, Rate: lam, Bneck: SourceRef}, 1)
	rec.take()
	// Response as if lam was granted by a downstream link (η ≠ e) — accepted
	// iff lam ≤ Be.
	rl.Receive(Packet{Type: PktResponse, Session: s, Resp: RespResponse,
		Rate: lam, Bneck: LinkRef(99)}, 1)
	rec.take()
	ent := rl.tbl.get(s)
	if ent == nil || ent.mu != Idle {
		t.Fatalf("session %d not idle after drive", s)
	}
}

func TestRouterJoinCapsRate(t *testing.T) {
	rl, rec := newTestLink(rate.Mbps(10))
	rl.Receive(Packet{Type: PktJoin, Session: 1, Rate: rate.Inf, Bneck: SourceRef}, 1)
	e := rec.last(t)
	if e.pkt.Type != PktJoin || e.dir != Down {
		t.Fatalf("emitted %+v", e)
	}
	if !e.pkt.Rate.Equal(rate.Mbps(10)) || e.pkt.Bneck != rl.Ref() {
		t.Fatalf("join not capped: %+v", e.pkt)
	}
	// A second join halves the estimate and the first session is unknown to
	// be affected yet (no rate recorded) — no Update.
	rec.take()
	rl.Receive(Packet{Type: PktJoin, Session: 2, Rate: rate.Inf, Bneck: SourceRef}, 1)
	for _, e := range rec.take() {
		if e.pkt.Type == PktUpdate {
			t.Fatalf("update for rate-less session")
		}
	}
	if !rl.Bottleneck().Equal(rate.Mbps(5)) {
		t.Fatalf("Be = %v", rl.Bottleneck())
	}
}

func TestRouterJoinPassthroughWhenBelowBe(t *testing.T) {
	rl, rec := newTestLink(rate.Mbps(10))
	rl.Receive(Packet{Type: PktJoin, Session: 1, Rate: rate.Mbps(2), Bneck: SourceRef}, 1)
	e := rec.last(t)
	if !e.pkt.Rate.Equal(rate.Mbps(2)) || e.pkt.Bneck != SourceRef {
		t.Fatalf("join altered: %+v", e.pkt)
	}
}

func TestRouterJoinTriggersUpdateForIdlePeers(t *testing.T) {
	rl, rec := newTestLink(rate.Mbps(10))
	driveIdle(t, rl, rec, 1, rate.Mbps(10)) // s1 idle holding the full link
	// s2 joins: Be drops to 5; s1 (idle at 10 > 5) must get an Update.
	rl.Receive(Packet{Type: PktJoin, Session: 2, Rate: rate.Inf, Bneck: SourceRef}, 1)
	var sawUpdate bool
	for _, e := range rec.take() {
		if e.pkt.Type == PktUpdate && e.pkt.Session == 1 && e.dir == Up {
			sawUpdate = true
		}
	}
	if !sawUpdate {
		t.Fatalf("no update for the squeezed session")
	}
	if rl.tbl.get(1).mu != WaitingProbe {
		t.Fatalf("s1 not WAITING_PROBE")
	}
}

func TestRouterResponseAcceptBranches(t *testing.T) {
	// η = e ∧ λ = Be → accept.
	rl, rec := newTestLink(rate.Mbps(10))
	rl.Receive(Packet{Type: PktJoin, Session: 1, Rate: rate.Inf, Bneck: SourceRef}, 1)
	rec.take()
	rl.Receive(Packet{Type: PktResponse, Session: 1, Resp: RespResponse,
		Rate: rate.Mbps(10), Bneck: rl.Ref()}, 1)
	e := rec.last(t)
	// Single session at Be → the link is a bottleneck: τ upgraded.
	if e.pkt.Resp != RespBottleneck || e.pkt.Bneck != rl.Ref() {
		t.Fatalf("emitted %+v", e.pkt)
	}
	if rl.tbl.get(1).mu != Idle {
		t.Fatalf("not idle after accept")
	}
}

func TestRouterResponseStaleCapRequestsUpdate(t *testing.T) {
	// η = e but λ < Be (the link's estimate moved while the probe was in
	// flight) → τ = UPDATE.
	rl, rec := newTestLink(rate.Mbps(10))
	rl.Receive(Packet{Type: PktJoin, Session: 1, Rate: rate.Inf, Bneck: SourceRef}, 1)
	rec.take()
	rl.Receive(Packet{Type: PktResponse, Session: 1, Resp: RespResponse,
		Rate: rate.Mbps(4), Bneck: rl.Ref()}, 1)
	e := rec.last(t)
	if e.pkt.Resp != RespUpdate {
		t.Fatalf("emitted %+v", e.pkt)
	}
	if rl.tbl.get(1).mu != WaitingProbe {
		t.Fatalf("state = %v", rl.tbl.get(1).mu)
	}
}

func TestRouterResponseOverBeRequestsUpdate(t *testing.T) {
	// λ > Be (another session joined since the probe passed) → τ = UPDATE.
	rl, rec := newTestLink(rate.Mbps(10))
	rl.Receive(Packet{Type: PktJoin, Session: 1, Rate: rate.Inf, Bneck: SourceRef}, 1)
	rl.Receive(Packet{Type: PktJoin, Session: 2, Rate: rate.Inf, Bneck: SourceRef}, 1)
	rec.take()
	rl.Receive(Packet{Type: PktResponse, Session: 1, Resp: RespResponse,
		Rate: rate.Mbps(8), Bneck: LinkRef(99)}, 1)
	e := rec.last(t)
	if e.pkt.Resp != RespUpdate {
		t.Fatalf("emitted %+v", e.pkt)
	}
}

func TestRouterResponseUpdateKindPassesThrough(t *testing.T) {
	rl, rec := newTestLink(rate.Mbps(10))
	rl.Receive(Packet{Type: PktJoin, Session: 1, Rate: rate.Inf, Bneck: SourceRef}, 1)
	rec.take()
	rl.Receive(Packet{Type: PktResponse, Session: 1, Resp: RespUpdate,
		Rate: rate.Mbps(10), Bneck: rl.Ref()}, 1)
	e := rec.last(t)
	if e.pkt.Resp != RespUpdate {
		t.Fatalf("τ changed: %+v", e.pkt)
	}
	if rl.tbl.get(1).mu != WaitingProbe {
		t.Fatalf("state = %v", rl.tbl.get(1).mu)
	}
}

func TestRouterBottleneckDetectionNotifiesPeers(t *testing.T) {
	rl, rec := newTestLink(rate.Mbps(10))
	rl.Receive(Packet{Type: PktJoin, Session: 1, Rate: rate.Inf, Bneck: SourceRef}, 1)
	rl.Receive(Packet{Type: PktJoin, Session: 2, Rate: rate.Inf, Bneck: SourceRef}, 2)
	rec.take()
	// s1 accepts at 5 = Be: not all idle yet (s2 pending) → plain response.
	rl.Receive(Packet{Type: PktResponse, Session: 1, Resp: RespResponse,
		Rate: rate.Mbps(5), Bneck: rl.Ref()}, 1)
	if e := rec.last(t); e.pkt.Resp != RespResponse {
		t.Fatalf("premature bottleneck: %+v", e.pkt)
	}
	rec.take()
	// s2 accepts at 5: now all of Re idle at Be → bottleneck; s1 gets a
	// Bottleneck packet at ITS hop (1), s2's response carries τ=BOTTLENECK.
	rl.Receive(Packet{Type: PktResponse, Session: 2, Resp: RespResponse,
		Rate: rate.Mbps(5), Bneck: rl.Ref()}, 2)
	var sawPeer, sawTau bool
	for _, e := range rec.take() {
		if e.pkt.Type == PktBottleneck && e.pkt.Session == 1 && e.from == 1 && e.dir == Up {
			sawPeer = true
		}
		if e.pkt.Type == PktResponse && e.pkt.Resp == RespBottleneck && e.pkt.Session == 2 {
			sawTau = true
		}
	}
	if !sawPeer || !sawTau {
		t.Fatalf("bottleneck notifications missing (peer=%t τ=%t)", sawPeer, sawTau)
	}
}

func TestRouterUpdateForwardOnlyWhenIdle(t *testing.T) {
	rl, rec := newTestLink(rate.Mbps(10))
	driveIdle(t, rl, rec, 1, rate.Mbps(10))
	rl.Receive(Packet{Type: PktUpdate, Session: 1}, 1)
	if e := rec.last(t); e.pkt.Type != PktUpdate || e.dir != Up {
		t.Fatalf("update not forwarded: %+v", e)
	}
	rec.take()
	// Second update: session is now WAITING_PROBE → absorbed.
	rl.Receive(Packet{Type: PktUpdate, Session: 1}, 1)
	if got := rec.take(); len(got) != 0 {
		t.Fatalf("duplicate update forwarded: %+v", got)
	}
}

func TestRouterBottleneckForwarding(t *testing.T) {
	rl, rec := newTestLink(rate.Mbps(10))
	driveIdle(t, rl, rec, 1, rate.Mbps(10))
	rl.Receive(Packet{Type: PktBottleneck, Session: 1}, 1)
	if e := rec.last(t); e.pkt.Type != PktBottleneck || e.dir != Up {
		t.Fatalf("bottleneck not forwarded: %+v", e)
	}
	rec.take()
	// Not idle → dropped.
	rl.Receive(Packet{Type: PktUpdate, Session: 1}, 1)
	rec.take()
	rl.Receive(Packet{Type: PktBottleneck, Session: 1}, 1)
	if got := rec.take(); len(got) != 0 {
		t.Fatalf("bottleneck forwarded while busy: %+v", got)
	}
}

func TestRouterSetBottleneckFullLink(t *testing.T) {
	// Both sessions idle at Be → the link confirms β=TRUE regardless of the
	// incoming β.
	rl, rec := newTestLink(rate.Mbps(10))
	rl.Receive(Packet{Type: PktJoin, Session: 1, Rate: rate.Inf, Bneck: SourceRef}, 1)
	rl.Receive(Packet{Type: PktJoin, Session: 2, Rate: rate.Inf, Bneck: SourceRef}, 1)
	rec.take()
	rl.Receive(Packet{Type: PktResponse, Session: 1, Resp: RespResponse,
		Rate: rate.Mbps(5), Bneck: rl.Ref()}, 1)
	rl.Receive(Packet{Type: PktResponse, Session: 2, Resp: RespResponse,
		Rate: rate.Mbps(5), Bneck: rl.Ref()}, 1)
	rec.take()
	rl.Receive(Packet{Type: PktSetBottleneck, Session: 1, Beta: false}, 1)
	e := rec.last(t)
	if e.pkt.Type != PktSetBottleneck || !e.pkt.Beta || e.dir != Down {
		t.Fatalf("emitted %+v", e)
	}
}

func TestRouterSetBottleneckMovesToFe(t *testing.T) {
	// s1 idle at 2 (restricted elsewhere), s2 idle at Be: SetBottleneck(s1)
	// moves s1 to Fe and updates s2 (it can now grow).
	rl, rec := newTestLink(rate.Mbps(10))
	rl.Receive(Packet{Type: PktJoin, Session: 1, Rate: rate.Inf, Bneck: SourceRef}, 1)
	rl.Receive(Packet{Type: PktJoin, Session: 2, Rate: rate.Inf, Bneck: SourceRef}, 1)
	rec.take()
	rl.Receive(Packet{Type: PktResponse, Session: 1, Resp: RespResponse,
		Rate: rate.Mbps(2), Bneck: LinkRef(99)}, 1)
	rl.Receive(Packet{Type: PktResponse, Session: 2, Resp: RespResponse,
		Rate: rate.Mbps(5), Bneck: rl.Ref()}, 1)
	rec.take()
	rl.Receive(Packet{Type: PktSetBottleneck, Session: 1, Beta: true}, 1)
	var sawUpdate2, sawForward bool
	for _, e := range rec.take() {
		if e.pkt.Type == PktUpdate && e.pkt.Session == 2 {
			sawUpdate2 = true
		}
		if e.pkt.Type == PktSetBottleneck && e.pkt.Session == 1 && e.pkt.Beta {
			sawForward = true
		}
	}
	if !sawUpdate2 || !sawForward {
		t.Fatalf("missing actions (update2=%t forward=%t)", sawUpdate2, sawForward)
	}
	ent := rl.tbl.get(1)
	if ent.inRe {
		t.Fatalf("s1 still in Re")
	}
	// Be grew from 5 to (10-2)/1 = 8.
	if !rl.Bottleneck().Equal(rate.Mbps(8)) {
		t.Fatalf("Be = %v", rl.Bottleneck())
	}
}

func TestRouterSetBottleneckAtBePassesThrough(t *testing.T) {
	// s1 idle at Be but s2 still probing: β forwarded unchanged.
	rl, rec := newTestLink(rate.Mbps(10))
	rl.Receive(Packet{Type: PktJoin, Session: 1, Rate: rate.Inf, Bneck: SourceRef}, 1)
	rl.Receive(Packet{Type: PktJoin, Session: 2, Rate: rate.Inf, Bneck: SourceRef}, 1)
	rec.take()
	rl.Receive(Packet{Type: PktResponse, Session: 1, Resp: RespResponse,
		Rate: rate.Mbps(5), Bneck: rl.Ref()}, 1)
	rec.take()
	rl.Receive(Packet{Type: PktSetBottleneck, Session: 1, Beta: false}, 1)
	e := rec.last(t)
	if e.pkt.Type != PktSetBottleneck || e.pkt.Beta {
		t.Fatalf("emitted %+v", e)
	}
}

func TestRouterSetBottleneckDroppedWhenBusy(t *testing.T) {
	rl, rec := newTestLink(rate.Mbps(10))
	driveIdle(t, rl, rec, 1, rate.Mbps(10))
	// An Update makes the session WAITING_PROBE; the SetBottleneck racing
	// behind must be dropped.
	rl.Receive(Packet{Type: PktUpdate, Session: 1}, 1)
	rec.take()
	rl.Receive(Packet{Type: PktSetBottleneck, Session: 1, Beta: true}, 1)
	if got := rec.take(); len(got) != 0 {
		t.Fatalf("stale SetBottleneck forwarded: %+v", got)
	}
}

func TestRouterLeaveUpdatesPinnedPeers(t *testing.T) {
	rl, rec := newTestLink(rate.Mbps(10))
	rl.Receive(Packet{Type: PktJoin, Session: 1, Rate: rate.Inf, Bneck: SourceRef}, 1)
	rl.Receive(Packet{Type: PktJoin, Session: 2, Rate: rate.Inf, Bneck: SourceRef}, 1)
	rec.take()
	rl.Receive(Packet{Type: PktResponse, Session: 1, Resp: RespResponse,
		Rate: rate.Mbps(5), Bneck: rl.Ref()}, 1)
	rl.Receive(Packet{Type: PktResponse, Session: 2, Resp: RespResponse,
		Rate: rate.Mbps(5), Bneck: rl.Ref()}, 1)
	rec.take()
	rl.Receive(Packet{Type: PktLeave, Session: 1}, 1)
	var sawUpdate2, sawLeave bool
	for _, e := range rec.take() {
		if e.pkt.Type == PktUpdate && e.pkt.Session == 2 {
			sawUpdate2 = true
		}
		if e.pkt.Type == PktLeave && e.dir == Down {
			sawLeave = true
		}
	}
	if !sawUpdate2 || !sawLeave {
		t.Fatalf("missing actions (update2=%t leave=%t)", sawUpdate2, sawLeave)
	}
	if rl.Sessions() != 1 {
		t.Fatalf("sessions = %d", rl.Sessions())
	}
}

func TestRouterLeaveUnknownStillForwards(t *testing.T) {
	rl, rec := newTestLink(rate.Mbps(10))
	rl.Receive(Packet{Type: PktLeave, Session: 42}, 1)
	if e := rec.last(t); e.pkt.Type != PktLeave {
		t.Fatalf("leave not forwarded for unknown session")
	}
}

func TestRouterDropsPacketsForUnknownSessions(t *testing.T) {
	rl, rec := newTestLink(rate.Mbps(10))
	for _, pkt := range []Packet{
		{Type: PktProbe, Session: 42, Rate: rate.Inf, Bneck: SourceRef},
		{Type: PktResponse, Session: 42, Resp: RespResponse, Rate: rate.Mbps(1), Bneck: SourceRef},
		{Type: PktUpdate, Session: 42},
		{Type: PktBottleneck, Session: 42},
		{Type: PktSetBottleneck, Session: 42, Beta: true},
	} {
		rl.Receive(pkt, 1)
		if got := rec.take(); len(got) != 0 {
			t.Fatalf("%v for unknown session emitted %+v", pkt.Type, got)
		}
	}
}

func TestRouterProbeMovesFeBackToRe(t *testing.T) {
	rl, rec := newTestLink(rate.Mbps(10))
	// s1 into Fe at 2 (via SetBottleneck), s2 idle at 8.
	rl.Receive(Packet{Type: PktJoin, Session: 1, Rate: rate.Inf, Bneck: SourceRef}, 1)
	rl.Receive(Packet{Type: PktJoin, Session: 2, Rate: rate.Inf, Bneck: SourceRef}, 1)
	rec.take()
	rl.Receive(Packet{Type: PktResponse, Session: 1, Resp: RespResponse,
		Rate: rate.Mbps(2), Bneck: LinkRef(99)}, 1)
	rl.Receive(Packet{Type: PktSetBottleneck, Session: 1, Beta: true}, 1)
	rec.take()
	if rl.tbl.get(1).inRe {
		t.Fatalf("s1 not in Fe")
	}
	// A Probe for s1 must move it back to Re and cap at the new Be.
	rl.Receive(Packet{Type: PktProbe, Session: 1, Rate: rate.Inf, Bneck: SourceRef}, 1)
	var probe *Packet
	for _, e := range rec.take() {
		if e.pkt.Type == PktProbe {
			p := e.pkt
			probe = &p
		}
	}
	if probe == nil {
		t.Fatalf("probe not forwarded")
	}
	if !rl.tbl.get(1).inRe {
		t.Fatalf("s1 not back in Re")
	}
	// Be with both in Re: 10/2 = 5.
	if !probe.Rate.Equal(rate.Mbps(5)) || probe.Bneck != rl.Ref() {
		t.Fatalf("probe fields %+v", probe)
	}
}

func TestRouterStableDefinition(t *testing.T) {
	rl, rec := newTestLink(rate.Mbps(10))
	if !rl.Stable() {
		t.Fatalf("empty link not stable")
	}
	rl.Receive(Packet{Type: PktJoin, Session: 1, Rate: rate.Inf, Bneck: SourceRef}, 1)
	if rl.Stable() {
		t.Fatalf("stable with WAITING_RESPONSE session")
	}
	rl.Receive(Packet{Type: PktResponse, Session: 1, Resp: RespResponse,
		Rate: rate.Mbps(10), Bneck: rl.Ref()}, 1)
	rec.take()
	if !rl.Stable() {
		t.Fatalf("not stable with idle session at Be")
	}
	if err := rl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
