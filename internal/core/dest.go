package core

import "fmt"

// DestinationNode is the task at a session's destination host (Figure 4 of
// the paper): it turns probes into responses and flags the absence of a
// bottleneck on the path.
type DestinationNode struct {
	id SessionID
	em Emitter
}

// NewDestinationNode returns the destination task for session id.
func NewDestinationNode(id SessionID, em Emitter) *DestinationNode {
	return &DestinationNode{id: id, em: em}
}

// Receive processes a packet arriving at the destination, which sits at hop
// index hop (= path length + 1) on the session's path.
func (dn *DestinationNode) Receive(pkt Packet, hop int) {
	switch pkt.Type {
	case PktJoin, PktProbe:
		dn.em.Emit(dn.id, hop, Up, Packet{
			Type: PktResponse, Session: dn.id,
			Resp: RespResponse, Rate: pkt.Rate, Bneck: pkt.Bneck,
		})
	case PktSetBottleneck:
		if !pkt.Beta {
			// The SetBottleneck crossed the whole path without any link
			// confirming a bottleneck: the network changed under the
			// session; trigger a fresh probe cycle.
			dn.em.Emit(dn.id, hop, Up, Packet{Type: PktUpdate, Session: dn.id})
		}
	case PktLeave:
		// Path cleanup ends here.
	default:
		panic(fmt.Sprintf("core: destination received %v", pkt))
	}
}
