package core

import (
	"math/rand"
	"sort"
	"testing"

	"bneck/internal/rate"
)

func TestRateSetBasics(t *testing.T) {
	var rs rateSet
	if _, ok := rs.max(); ok {
		t.Fatalf("empty set has a max")
	}
	rs.add(rate.Mbps(5), 1)
	rs.add(rate.Mbps(3), 2)
	rs.add(rate.Mbps(5), 3)
	if rs.len() != 3 || rs.distinct() != 2 {
		t.Fatalf("len=%d distinct=%d", rs.len(), rs.distinct())
	}
	if m, ok := rs.max(); !ok || !m.Equal(rate.Mbps(5)) {
		t.Fatalf("max = %v", m)
	}
	if rs.countAt(rate.Mbps(5)) != 2 || rs.countAt(rate.Mbps(3)) != 1 || rs.countAt(rate.Mbps(9)) != 0 {
		t.Fatalf("counts wrong")
	}
	got := rs.sessionsAt(rate.Mbps(5))
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("sessionsAt = %v (must be sorted)", got)
	}
	above := rs.sessionsAbove(rate.Mbps(3))
	if len(above) != 2 {
		t.Fatalf("sessionsAbove = %v", above)
	}
	rs.remove(rate.Mbps(5), 1)
	rs.remove(rate.Mbps(5), 3)
	if rs.countAt(rate.Mbps(5)) != 0 || rs.distinct() != 1 {
		t.Fatalf("bucket not collapsed")
	}
}

func TestRateSetRemovePanics(t *testing.T) {
	t.Run("absent rate", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatalf("expected panic")
			}
		}()
		var rs rateSet
		rs.remove(rate.Mbps(1), 1)
	})
	t.Run("absent session", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatalf("expected panic")
			}
		}()
		var rs rateSet
		rs.add(rate.Mbps(1), 1)
		rs.remove(rate.Mbps(1), 2)
	})
}

// TestRateSetMatchesReference fuzzes against a trivial slice-of-pairs
// reference.
func TestRateSetMatchesReference(t *testing.T) {
	type pair struct {
		r rate.Rate
		s SessionID
	}
	r := rand.New(rand.NewSource(41))
	for iter := 0; iter < 50; iter++ {
		var rs rateSet
		var ref []pair
		for step := 0; step < 500; step++ {
			if len(ref) == 0 || r.Intn(3) > 0 {
				rt := rate.FromFrac(int64(1+r.Intn(20)), int64(1+r.Intn(4)))
				s := SessionID(step)
				rs.add(rt, s)
				ref = append(ref, pair{rt, s})
			} else {
				i := r.Intn(len(ref))
				rs.remove(ref[i].r, ref[i].s)
				ref = append(ref[:i], ref[i+1:]...)
			}
			if rs.len() != len(ref) {
				t.Fatalf("len %d vs %d", rs.len(), len(ref))
			}
			// max
			if len(ref) > 0 {
				want := ref[0].r
				for _, p := range ref[1:] {
					want = rate.Max(want, p.r)
				}
				got, ok := rs.max()
				if !ok || !got.Equal(want) {
					t.Fatalf("max %v vs %v", got, want)
				}
				// countAt / sessionsAt for a random existing rate
				probe := ref[r.Intn(len(ref))].r
				var wantAt []SessionID
				for _, p := range ref {
					if p.r.Equal(probe) {
						wantAt = append(wantAt, p.s)
					}
				}
				sort.Slice(wantAt, func(i, j int) bool { return wantAt[i] < wantAt[j] })
				gotAt := rs.sessionsAt(probe)
				if len(gotAt) != len(wantAt) {
					t.Fatalf("sessionsAt len %d vs %d", len(gotAt), len(wantAt))
				}
				for i := range gotAt {
					if gotAt[i] != wantAt[i] {
						t.Fatalf("sessionsAt %v vs %v", gotAt, wantAt)
					}
				}
				if rs.countAt(probe) != len(wantAt) {
					t.Fatalf("countAt %d vs %d", rs.countAt(probe), len(wantAt))
				}
				// sessionsAbove for a random threshold
				var wantAbove []SessionID
				for _, p := range ref {
					if p.r.Greater(probe) {
						wantAbove = append(wantAbove, p.s)
					}
				}
				sort.Slice(wantAbove, func(i, j int) bool { return wantAbove[i] < wantAbove[j] })
				gotAbove := rs.sessionsAbove(probe)
				if len(gotAbove) != len(wantAbove) {
					t.Fatalf("sessionsAbove len %d vs %d", len(gotAbove), len(wantAbove))
				}
				for i := range gotAbove {
					if gotAbove[i] != wantAbove[i] {
						t.Fatalf("sessionsAbove %v vs %v", gotAbove, wantAbove)
					}
				}
			}
			// Buckets stay sorted and non-empty.
			for i := 1; i < len(rs.buckets); i++ {
				if !rs.buckets[i-1].rate.Less(rs.buckets[i].rate) {
					t.Fatalf("buckets unsorted")
				}
			}
			for _, b := range rs.buckets {
				if len(b.sessions) == 0 {
					t.Fatalf("empty bucket kept")
				}
			}
		}
	}
}
