package core

import (
	"fmt"

	"bneck/internal/rate"
)

// SessionID identifies a session.
type SessionID int64

// LinkRef identifies a link in packet fields (the paper's η, the link that
// imposed the strongest rate restriction seen so far). SourceRef is the
// sentinel used by sources when no link has restricted the session yet; it
// never equals a real link reference.
type LinkRef int32

// SourceRef marks "restricted only by the session's own demand".
const SourceRef LinkRef = -1

// PacketType enumerates the seven B-Neck packets (Section III-B).
type PacketType uint8

const (
	// PktJoin travels downstream when a session arrives; it registers the
	// session at each link and doubles as the first probe.
	PktJoin PacketType = iota + 1
	// PktProbe travels downstream to recompute the session's rate.
	PktProbe
	// PktResponse travels upstream from the destination closing a probe
	// cycle, carrying the granted rate λ, the restricting link η, and the
	// next action τ.
	PktResponse
	// PktUpdate travels upstream telling the source to run a new probe
	// cycle.
	PktUpdate
	// PktBottleneck travels upstream telling the source its current rate is
	// its max-min fair rate.
	PktBottleneck
	// PktSetBottleneck travels downstream confirming the session's rate;
	// links that do not restrict the session move it from R_e to F_e. β
	// tracks whether some link on the path is a bottleneck for the session.
	PktSetBottleneck
	// PktLeave travels downstream deleting all session state.
	PktLeave
)

// String implements fmt.Stringer with the paper's packet names.
func (t PacketType) String() string {
	switch t {
	case PktJoin:
		return "Join"
	case PktProbe:
		return "Probe"
	case PktResponse:
		return "Response"
	case PktUpdate:
		return "Update"
	case PktBottleneck:
		return "Bottleneck"
	case PktSetBottleneck:
		return "SetBottleneck"
	case PktLeave:
		return "Leave"
	default:
		return fmt.Sprintf("PacketType(%d)", uint8(t))
	}
}

// NumPacketTypes is the number of distinct packet types (for metrics
// arrays indexed by PacketType-1).
const NumPacketTypes = 7

// RespKind is the paper's τ field of Response packets.
type RespKind uint8

const (
	// RespResponse: a plain probe-cycle answer.
	RespResponse RespKind = iota + 1
	// RespUpdate: some link requires a new probe cycle.
	RespUpdate
	// RespBottleneck: the rate λ is the session's max-min fair rate.
	RespBottleneck
)

func (k RespKind) String() string {
	switch k {
	case RespResponse:
		return "RESPONSE"
	case RespUpdate:
		return "UPDATE"
	case RespBottleneck:
		return "BOTTLENECK"
	default:
		return fmt.Sprintf("RespKind(%d)", uint8(k))
	}
}

// Packet is one B-Neck control packet. Fields beyond Type and Session are
// meaningful per type:
//
//	Join/Probe:     Rate (λ), Bneck (η)
//	Response:       Resp (τ), Rate (λ), Bneck (η)
//	SetBottleneck:  Beta (β)
//	Update/Bottleneck/Leave: no extra fields
type Packet struct {
	Type    PacketType
	Session SessionID
	Rate    rate.Rate
	Bneck   LinkRef
	Resp    RespKind
	Beta    bool
}

func (p Packet) String() string {
	switch p.Type {
	case PktJoin, PktProbe:
		return fmt.Sprintf("%s(s%d, λ=%v, η=%d)", p.Type, p.Session, p.Rate, p.Bneck)
	case PktResponse:
		return fmt.Sprintf("Response(s%d, τ=%v, λ=%v, η=%d)", p.Session, p.Resp, p.Rate, p.Bneck)
	case PktSetBottleneck:
		return fmt.Sprintf("SetBottleneck(s%d, β=%t)", p.Session, p.Beta)
	default:
		return fmt.Sprintf("%s(s%d)", p.Type, p.Session)
	}
}

// Direction says which way a packet travels relative to the session's path.
type Direction uint8

const (
	// Down means toward the destination (the paper's "downstream").
	Down Direction = iota + 1
	// Up means toward the source (the paper's "upstream").
	Up
)

func (d Direction) String() string {
	if d == Down {
		return "down"
	}
	return "up"
}

// Emitter is how protocol tasks send packets. Emit sends pkt for session s
// from the hop at index `from` on s's path, one hop in direction dir.
//
// Hop indexing: hop 0 is the source task, hops 1..k are the RouterLink tasks
// of the k links of π(s) in order, hop k+1 is the destination task.
type Emitter interface {
	Emit(s SessionID, from int, dir Direction, pkt Packet)
}

// RateCallback receives API.Rate(s, λ) notifications from a source task.
type RateCallback func(s SessionID, lambda rate.Rate)

// State is the paper's per-link per-session state μ.
type State uint8

const (
	// Idle: no probe cycle in progress for this session at this link.
	Idle State = iota + 1
	// WaitingProbe: an Update was forwarded; a Probe is expected.
	WaitingProbe
	// WaitingResponse: a Join/Probe passed; a Response is expected.
	WaitingResponse
)

func (s State) String() string {
	switch s {
	case Idle:
		return "IDLE"
	case WaitingProbe:
		return "WAITING_PROBE"
	case WaitingResponse:
		return "WAITING_RESPONSE"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}
