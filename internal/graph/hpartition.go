package graph

import (
	"math"
	"sort"
	"time"
)

// PartitionHierarchy computes a K-way partition of g along caller-supplied
// hierarchy labels instead of PartitionNodes' latency sweep. levels gives
// per-node labels, coarse to fine, densely indexed by NodeID (level 0 a
// region, level 1 a metro, say); a topology generator that knows its own
// structure (topology.StreamInternet) produces them for free. The flat
// contract-and-grow partitioner must rediscover that structure from link
// latencies alone, and on sparse hierarchical graphs its balance-capped
// threshold sweep degrades past a handful of shards — it contracts whole
// regions into single components and then has nothing left to balance with.
//
// The algorithm is deterministic:
//
//  1. Cluster nodes by their level-0 label (a negative label makes the node
//     its own singleton cluster).
//  2. While a cluster is heavier than the 2·total/K balance cap, split it by
//     the next-finer level's labels; clusters still over the cap at the
//     finest level stay whole (the same imbalance fallback the flat
//     partitioner accepts).
//  3. Pack clusters onto K shards heaviest-first, each onto the currently
//     lightest shard — cut links are then exactly the inter-cluster links,
//     which the generator made the highest-latency ones by construction.
//
// The cut lookahead keeps the transmission-aware floor per link: a cut
// link's latency is Propagation + floors[link], exactly as in
// PartitionNodes, so every sub-cut contributes its serialization floor to
// the window bound. When the labels would cut a zero-latency link, or no
// usable labels cover the graph, the function falls back to PartitionNodes
// rather than return a partition with no parallelism.
func PartitionHierarchy(g *Graph, k int, weights []int64, floors []time.Duration, levels [][]int32) Partition {
	n := g.NumNodes()
	if k <= 1 || n <= 1 {
		return Partition{Parts: make([]int32, n), K: 1, Generation: g.Generation()}
	}
	if len(levels) == 0 || len(levels[0]) < n {
		return PartitionNodes(g, k, weights, floors)
	}

	w := make([]int64, n)
	var total int64
	for i := 0; i < n; i++ {
		w[i] = 1
		if weights != nil && i < len(weights) && weights[i] > 0 {
			w[i] = weights[i]
		}
		total += w[i]
	}
	maxComp := 2 * total / int64(k)
	if maxComp < 1 {
		maxComp = 1
	}

	// Level-0 clustering, labels remapped to dense IDs in first-seen order.
	cl := make([]int32, n)
	idx := make(map[int32]int32)
	var clW []int64
	for i := 0; i < n; i++ {
		lbl := levels[0][i]
		if lbl < 0 {
			cl[i] = int32(len(clW))
			clW = append(clW, w[i])
			continue
		}
		c, ok := idx[lbl]
		if !ok {
			c = int32(len(clW))
			idx[lbl] = c
			clW = append(clW, 0)
		}
		cl[i] = c
		clW[c] += w[i]
	}

	// Refine over-heavy clusters with each finer level. A (cluster, label)
	// pair becomes a fresh cluster; nodes without a finer label keep theirs.
	type split struct{ c, lbl int32 }
	for lvl := 1; lvl < len(levels); lvl++ {
		lab := levels[lvl]
		heavy := false
		for _, x := range clW {
			if x > maxComp {
				heavy = true
				break
			}
		}
		if !heavy {
			break
		}
		sub := make(map[split]int32)
		for i := 0; i < n; i++ {
			c := cl[i]
			if clW[c] <= maxComp || i >= len(lab) || lab[i] < 0 {
				continue
			}
			key := split{c, lab[i]}
			nc, ok := sub[key]
			if !ok {
				nc = int32(len(clW))
				sub[key] = nc
				clW = append(clW, 0)
			}
			cl[i] = nc
			clW[nc] += w[i]
		}
		// Weights of split parents now live in their children; zero the
		// parents that lost every node so packing skips them. (A parent
		// retains nodes only when some of its nodes had no finer label.)
		parentW := make([]int64, len(clW))
		for i := 0; i < n; i++ {
			parentW[cl[i]] += w[i]
		}
		clW = parentW
	}

	// Pack heaviest-first onto the lightest shard (ties by index: cluster
	// then shard), the deterministic LPT rule.
	order := make([]int32, 0, len(clW))
	for c := range clW {
		if clW[c] > 0 {
			order = append(order, int32(c))
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if clW[order[a]] != clW[order[b]] {
			return clW[order[a]] > clW[order[b]]
		}
		return order[a] < order[b]
	})
	shardOf := make([]int32, len(clW))
	for i := range shardOf {
		shardOf[i] = -1
	}
	shardW := make([]int64, k)
	for _, c := range order {
		best := 0
		for r := 1; r < k; r++ {
			if shardW[r] < shardW[best] {
				best = r
			}
		}
		shardOf[c] = int32(best)
		shardW[best] += clW[c]
	}

	p := Partition{Parts: make([]int32, n), Generation: g.Generation()}
	for i := 0; i < n; i++ {
		p.Parts[i] = shardOf[cl[i]]
	}

	// Renumber used shards densely and compute the cut lookahead.
	remap := make(map[int32]int32)
	for i, s := range p.Parts {
		ns, ok := remap[s]
		if !ok {
			ns = int32(len(remap))
			remap[s] = ns
		}
		p.Parts[i] = ns
	}
	p.K = len(remap)
	if p.K <= 1 {
		p.K = 1
		for i := range p.Parts {
			p.Parts[i] = 0
		}
		return p
	}
	latency := func(l *Link) time.Duration {
		d := l.Propagation
		if floors != nil && int(l.ID) < len(floors) {
			d += floors[l.ID]
		}
		return d
	}
	min := time.Duration(math.MaxInt64)
	for i := 0; i < g.NumLinks(); i++ {
		l := &g.links[i]
		if d := latency(l); p.Parts[l.From] != p.Parts[l.To] && d < min {
			min = d
		}
	}
	if min == time.Duration(math.MaxInt64) {
		min = 0
	}
	if min <= 0 {
		// The labels cut a zero-latency link — no window, no parallelism.
		// The flat sweep never does that; use it instead.
		return PartitionNodes(g, k, weights, floors)
	}
	p.Lookahead = min
	return p
}
