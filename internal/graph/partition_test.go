package graph

import (
	"reflect"
	"testing"
	"time"

	"bneck/internal/rate"
)

// buildStar builds hub-and-spoke router cores connected by slow links, each
// with a few fast-attached hosts: the natural shape for edge-cut
// partitioning (cut the slow core links, keep hosts with their router).
func buildStar(t *testing.T, cores int, hostsPer int, coreDelay, hostDelay time.Duration) *Graph {
	t.Helper()
	g := New()
	var routers []NodeID
	for i := 0; i < cores; i++ {
		routers = append(routers, g.AddRouter("r"))
		for h := 0; h < hostsPer; h++ {
			hn := g.AddHost("h")
			g.Connect(hn, routers[i], rate.Mbps(100), hostDelay)
		}
	}
	for i := 1; i < cores; i++ {
		g.Connect(routers[i-1], routers[i], rate.Mbps(500), coreDelay)
	}
	return g
}

func TestPartitionCutsSlowLinksOnly(t *testing.T) {
	g := buildStar(t, 8, 3, 5*time.Millisecond, time.Microsecond)
	p := PartitionNodes(g, 4, nil, nil)
	if p.K < 2 {
		t.Fatalf("K = %d, want ≥ 2", p.K)
	}
	if p.Lookahead < 5*time.Millisecond {
		t.Fatalf("lookahead %v, want ≥ 5ms (only core links may be cut)", p.Lookahead)
	}
	// Hosts must share their router's shard: their access links are fast.
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(LinkID(i))
		if p.Parts[l.From] != p.Parts[l.To] && l.Propagation < p.Lookahead {
			t.Fatalf("cut link %d has propagation %v < lookahead %v", i, l.Propagation, p.Lookahead)
		}
	}
}

func TestPartitionUniformDelays(t *testing.T) {
	g := buildStar(t, 6, 2, time.Microsecond, time.Microsecond)
	p := PartitionNodes(g, 3, nil, nil)
	if p.K < 2 {
		t.Fatalf("K = %d, want ≥ 2 (uniform positive delays are cuttable)", p.K)
	}
	if p.Lookahead != time.Microsecond {
		t.Fatalf("lookahead %v, want 1µs", p.Lookahead)
	}
}

func TestPartitionZeroDelaysDegradeToSerial(t *testing.T) {
	g := buildStar(t, 4, 1, 0, 0)
	p := PartitionNodes(g, 4, nil, nil)
	if p.K != 1 {
		t.Fatalf("K = %d, want 1: zero-delay links must never be cut", p.K)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	w := []int64{5, 1, 1, 1, 9, 2, 2}
	g := buildStar(t, 7, 2, 2*time.Millisecond, time.Microsecond)
	a := PartitionNodes(g, 4, w, nil)
	b := PartitionNodes(g, 4, w, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("partition not deterministic:\n%v\n%v", a, b)
	}
}

func TestPartitionBalancesWeights(t *testing.T) {
	g := buildStar(t, 8, 0, time.Millisecond, time.Microsecond)
	// One very heavy router: it should not share a shard with everything.
	w := make([]int64, g.NumNodes())
	for i := range w {
		w[i] = 1
	}
	w[0] = 100
	p := PartitionNodes(g, 2, w, nil)
	if p.K != 2 {
		t.Fatalf("K = %d, want 2", p.K)
	}
	var heavyShard = p.Parts[0]
	light := 0
	for i, s := range p.Parts {
		if i != 0 && s != heavyShard {
			light++
		}
	}
	if light == 0 {
		t.Fatal("balance: every node landed with the heavy one")
	}
}

// TestPartitionTransmissionFloorsWidenLookahead: on a uniform low-delay
// (LAN-shaped) graph, per-link transmission floors widen the conservative
// window from raw propagation to propagation + serialization — the change
// that makes LAN topologies worth sharding.
func TestPartitionTransmissionFloorsWidenLookahead(t *testing.T) {
	g := buildStar(t, 6, 2, time.Microsecond, time.Microsecond)
	floors := make([]time.Duration, g.NumLinks())
	for i := range floors {
		floors[i] = 5 * time.Microsecond
	}
	p := PartitionNodes(g, 3, nil, floors)
	if p.K < 2 {
		t.Fatalf("K = %d, want ≥ 2", p.K)
	}
	if want := 6 * time.Microsecond; p.Lookahead != want {
		t.Fatalf("lookahead %v, want %v (1µs propagation + 5µs floor)", p.Lookahead, want)
	}
}

// TestPartitionFloorsSteerTheCut: when propagation is uniform, the
// partitioner should cut the links with the largest serialization floors
// (the slowest-capacity links), never the fast ones.
func TestPartitionFloorsSteerTheCut(t *testing.T) {
	g := buildStar(t, 8, 2, time.Microsecond, time.Microsecond)
	// Core (router-router) links get a large floor, host access links a tiny
	// one: the feasible cut must stick to core links, exactly as a large
	// propagation difference would force.
	floors := make([]time.Duration, g.NumLinks())
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(LinkID(i))
		if g.Node(l.From).Kind == Router && g.Node(l.To).Kind == Router {
			floors[i] = 50 * time.Microsecond
		} else {
			floors[i] = 500 * time.Nanosecond
		}
	}
	p := PartitionNodes(g, 4, nil, floors)
	if p.K < 2 {
		t.Fatalf("K = %d, want ≥ 2", p.K)
	}
	if want := 51 * time.Microsecond; p.Lookahead != want {
		t.Fatalf("lookahead %v, want %v (only core links cut)", p.Lookahead, want)
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(LinkID(i))
		if p.Parts[l.From] != p.Parts[l.To] {
			if g.Node(l.From).Kind != Router || g.Node(l.To).Kind != Router {
				t.Fatalf("cut link %d is a host access link", i)
			}
		}
	}
}

// TestPartitionZeroPropagationPositiveFloor: a floor alone makes an
// otherwise zero-delay link cuttable — serialization is a real latency
// lower bound even on an ideal wire.
func TestPartitionZeroPropagationPositiveFloor(t *testing.T) {
	g := buildStar(t, 4, 1, 0, 0)
	floors := make([]time.Duration, g.NumLinks())
	for i := range floors {
		floors[i] = 2 * time.Microsecond
	}
	p := PartitionNodes(g, 4, nil, floors)
	if p.K < 2 {
		t.Fatalf("K = %d, want ≥ 2 (floors make zero-delay links cuttable)", p.K)
	}
	if want := 2 * time.Microsecond; p.Lookahead != want {
		t.Fatalf("lookahead %v, want %v", p.Lookahead, want)
	}
}

// TestPartitionBinarySearchMatchesSweep pins the binary-searched threshold
// against a reference exhaustive sweep on graphs with many distinct
// latencies (the WAN shape that motivated the search).
func TestPartitionBinarySearchMatchesSweep(t *testing.T) {
	g := New()
	var routers []NodeID
	for i := 0; i < 40; i++ {
		routers = append(routers, g.AddRouter("r"))
		h := g.AddHost("h")
		g.Connect(h, routers[i], rate.Mbps(100), time.Microsecond)
	}
	// A ring with strictly increasing, all-distinct delays.
	for i := 0; i < 40; i++ {
		g.Connect(routers[i], routers[(i+1)%40], rate.Mbps(500), time.Duration(i+1)*137*time.Microsecond)
	}
	for _, k := range []int{2, 3, 4, 8} {
		p := PartitionNodes(g, k, nil, nil)
		if p.K < 2 {
			t.Fatalf("k=%d: K = %d", k, p.K)
		}
		// Reference: the largest threshold that is feasible and balanced,
		// found exhaustively.
		total := int64(g.NumNodes())
		maxComp := 2 * total / int64(k)
		best := time.Duration(-1)
		for i := 0; i < 40; i++ {
			P := time.Duration(i+1) * 137 * time.Microsecond
			c, cw := contractRef(g, P)
			_ = c
			if len(cw) < k {
				continue
			}
			heavy := false
			for _, x := range cw {
				if x > maxComp {
					heavy = true
				}
			}
			if !heavy && P > best {
				best = P
			}
		}
		if best < 0 {
			t.Fatalf("k=%d: reference sweep found no balanced threshold", k)
		}
		// The partition's lookahead is the min latency over actually-cut
		// links, which is at least the chosen threshold.
		if p.Lookahead < best {
			t.Fatalf("k=%d: lookahead %v below the best balanced threshold %v", k, p.Lookahead, best)
		}
	}
}

// contractRef is an independent re-implementation of the contraction for
// the reference sweep (unit weights).
func contractRef(g *Graph, P time.Duration) ([]int32, []int64) {
	w := make([]int64, g.NumNodes())
	for i := range w {
		w[i] = 1
	}
	return contract(g, w, P, func(l *Link) time.Duration { return l.Propagation })
}
