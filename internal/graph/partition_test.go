package graph

import (
	"reflect"
	"testing"
	"time"

	"bneck/internal/rate"
)

// buildStar builds hub-and-spoke router cores connected by slow links, each
// with a few fast-attached hosts: the natural shape for edge-cut
// partitioning (cut the slow core links, keep hosts with their router).
func buildStar(t *testing.T, cores int, hostsPer int, coreDelay, hostDelay time.Duration) *Graph {
	t.Helper()
	g := New()
	var routers []NodeID
	for i := 0; i < cores; i++ {
		routers = append(routers, g.AddRouter("r"))
		for h := 0; h < hostsPer; h++ {
			hn := g.AddHost("h")
			g.Connect(hn, routers[i], rate.Mbps(100), hostDelay)
		}
	}
	for i := 1; i < cores; i++ {
		g.Connect(routers[i-1], routers[i], rate.Mbps(500), coreDelay)
	}
	return g
}

func TestPartitionCutsSlowLinksOnly(t *testing.T) {
	g := buildStar(t, 8, 3, 5*time.Millisecond, time.Microsecond)
	p := PartitionNodes(g, 4, nil)
	if p.K < 2 {
		t.Fatalf("K = %d, want ≥ 2", p.K)
	}
	if p.Lookahead < 5*time.Millisecond {
		t.Fatalf("lookahead %v, want ≥ 5ms (only core links may be cut)", p.Lookahead)
	}
	// Hosts must share their router's shard: their access links are fast.
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(LinkID(i))
		if p.Parts[l.From] != p.Parts[l.To] && l.Propagation < p.Lookahead {
			t.Fatalf("cut link %d has propagation %v < lookahead %v", i, l.Propagation, p.Lookahead)
		}
	}
}

func TestPartitionUniformDelays(t *testing.T) {
	g := buildStar(t, 6, 2, time.Microsecond, time.Microsecond)
	p := PartitionNodes(g, 3, nil)
	if p.K < 2 {
		t.Fatalf("K = %d, want ≥ 2 (uniform positive delays are cuttable)", p.K)
	}
	if p.Lookahead != time.Microsecond {
		t.Fatalf("lookahead %v, want 1µs", p.Lookahead)
	}
}

func TestPartitionZeroDelaysDegradeToSerial(t *testing.T) {
	g := buildStar(t, 4, 1, 0, 0)
	p := PartitionNodes(g, 4, nil)
	if p.K != 1 {
		t.Fatalf("K = %d, want 1: zero-delay links must never be cut", p.K)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	w := []int64{5, 1, 1, 1, 9, 2, 2}
	g := buildStar(t, 7, 2, 2*time.Millisecond, time.Microsecond)
	a := PartitionNodes(g, 4, w)
	b := PartitionNodes(g, 4, w)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("partition not deterministic:\n%v\n%v", a, b)
	}
}

func TestPartitionBalancesWeights(t *testing.T) {
	g := buildStar(t, 8, 0, time.Millisecond, time.Microsecond)
	// One very heavy router: it should not share a shard with everything.
	w := make([]int64, g.NumNodes())
	for i := range w {
		w[i] = 1
	}
	w[0] = 100
	p := PartitionNodes(g, 2, w)
	if p.K != 2 {
		t.Fatalf("K = %d, want 2", p.K)
	}
	var heavyShard = p.Parts[0]
	light := 0
	for i, s := range p.Parts {
		if i != 0 && s != heavyShard {
			light++
		}
	}
	if light == 0 {
		t.Fatal("balance: every node landed with the heavy one")
	}
}
