package graph

import (
	"testing"
	"time"

	"bneck/internal/rate"
)

// buildRegions makes nRegions clusters of size nodes each: a ring of fast
// links (10 µs) inside every cluster and one slow link (5 ms) between
// consecutive clusters. Labels: level 0 = region; level 1 splits each
// region into halves.
func buildRegions(t *testing.T, nRegions, size int) (*Graph, [][]int32) {
	t.Helper()
	g := New()
	region := make([]int32, 0, nRegions*size)
	half := make([]int32, 0, nRegions*size)
	var first []NodeID
	for r := 0; r < nRegions; r++ {
		ids := make([]NodeID, size)
		for i := range ids {
			ids[i] = g.AddRouter("")
			region = append(region, int32(r))
			h := int32(2 * r)
			if i >= size/2 {
				h++
			}
			half = append(half, h)
		}
		for i := 0; i < size; i++ {
			g.Connect(ids[i], ids[(i+1)%size], rate.Mbps(100), 10*time.Microsecond)
		}
		first = append(first, ids[0])
	}
	if nRegions > 1 {
		for r := 0; r < nRegions; r++ {
			next := (r + 1) % nRegions
			if nRegions == 2 && r == 1 {
				break // avoid the duplicate pair on a two-region ring
			}
			g.Connect(first[r], first[next], rate.Mbps(100), 5*time.Millisecond)
		}
	}
	return g, [][]int32{region, half}
}

func TestPartitionHierarchyCutsAlongRegions(t *testing.T) {
	g, levels := buildRegions(t, 4, 8)
	p := PartitionHierarchy(g, 4, nil, nil, levels)
	if p.K != 4 {
		t.Fatalf("K = %d, want 4", p.K)
	}
	// Every node of a region lands on one shard (no region was over-heavy).
	region := levels[0]
	shardOf := map[int32]int32{}
	for i, s := range p.Parts {
		r := region[i]
		if prev, ok := shardOf[r]; ok && prev != s {
			t.Fatalf("region %d split across shards %d and %d", r, prev, s)
		}
		shardOf[r] = s
	}
	// Only the slow inter-region links are cut, so the lookahead is 5 ms.
	if p.Lookahead != 5*time.Millisecond {
		t.Fatalf("lookahead = %v, want 5ms", p.Lookahead)
	}
}

func TestPartitionHierarchyKeepsFloorsPerSubCut(t *testing.T) {
	g, levels := buildRegions(t, 2, 4)
	floors := make([]time.Duration, g.NumLinks())
	for i := range floors {
		floors[i] = 7 * time.Microsecond
	}
	p := PartitionHierarchy(g, 2, nil, floors, levels)
	if p.K != 2 {
		t.Fatalf("K = %d, want 2", p.K)
	}
	if want := 5*time.Millisecond + 7*time.Microsecond; p.Lookahead != want {
		t.Fatalf("lookahead = %v, want %v (propagation + transmission floor)", p.Lookahead, want)
	}
}

func TestPartitionHierarchySplitsHeavyRegions(t *testing.T) {
	// One region, 8 nodes, 4 shards requested: the whole-region cluster
	// exceeds the 2·total/K cap and must split along level 1.
	g, levels := buildRegions(t, 1, 8)
	p := PartitionHierarchy(g, 4, nil, nil, levels)
	if p.K < 2 {
		t.Fatalf("heavy region not split: K = %d", p.K)
	}
	// Splitting follows the finer labels: nodes sharing a level-1 label stay
	// together.
	half := levels[1]
	shardOf := map[int32]int32{}
	for i, s := range p.Parts {
		if prev, ok := shardOf[half[i]]; ok && prev != s {
			t.Fatalf("level-1 cluster %d split across shards", half[i])
		}
		shardOf[half[i]] = s
	}
}

func TestPartitionHierarchyBalancesLoad(t *testing.T) {
	g, levels := buildRegions(t, 8, 4)
	w := make([]int64, g.NumNodes())
	for i := range w {
		w[i] = 1
	}
	p := PartitionHierarchy(g, 4, w, nil, levels)
	if p.K != 4 {
		t.Fatalf("K = %d, want 4", p.K)
	}
	loads := make([]int64, p.K)
	for i, s := range p.Parts {
		loads[s] += w[i]
	}
	for s, l := range loads {
		if l > 2*int64(g.NumNodes())/int64(p.K) {
			t.Fatalf("shard %d overloaded: %d of %d", s, l, g.NumNodes())
		}
	}
}

func TestPartitionHierarchyFallsBackWithoutLabels(t *testing.T) {
	g, levels := buildRegions(t, 4, 4)
	flat := PartitionNodes(g, 4, nil, nil)
	for _, bad := range [][][]int32{nil, {}, {levels[0][:2]}} {
		p := PartitionHierarchy(g, 4, nil, nil, bad)
		if p.K != flat.K || p.Lookahead != flat.Lookahead {
			t.Fatalf("fallback for %v diverged from PartitionNodes: K %d vs %d", bad, p.K, flat.K)
		}
	}
}

func TestPartitionHierarchyRefusesZeroLatencyCut(t *testing.T) {
	// Two "regions" joined by a zero-propagation link: honoring the labels
	// would zero the lookahead, so the flat sweep must take over.
	g := New()
	a := g.AddRouter("")
	b := g.AddRouter("")
	c := g.AddRouter("")
	d := g.AddRouter("")
	g.Connect(a, b, rate.Mbps(100), time.Millisecond)
	g.Connect(c, d, rate.Mbps(100), time.Millisecond)
	g.Connect(b, c, rate.Mbps(100), 0)
	levels := [][]int32{{0, 0, 1, 1}}
	p := PartitionHierarchy(g, 2, nil, nil, levels)
	if p.K > 1 && p.Lookahead <= 0 {
		t.Fatalf("zero-latency cut survived: K=%d lookahead=%v", p.K, p.Lookahead)
	}
	flat := PartitionNodes(g, 2, nil, nil)
	if p.K != flat.K || p.Lookahead != flat.Lookahead {
		t.Fatalf("fallback diverged: K %d/%v vs flat %d/%v", p.K, p.Lookahead, flat.K, flat.Lookahead)
	}
}

func TestPartitionHierarchyDeterministic(t *testing.T) {
	g, levels := buildRegions(t, 6, 6)
	a := PartitionHierarchy(g, 4, nil, nil, levels)
	b := PartitionHierarchy(g, 4, nil, nil, levels)
	if a.K != b.K || a.Lookahead != b.Lookahead {
		t.Fatal("nondeterministic partition summary")
	}
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] {
			t.Fatalf("nondeterministic assignment at node %d", i)
		}
	}
}
