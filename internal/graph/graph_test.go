package graph

import (
	"testing"
	"time"

	"bneck/internal/rate"
)

// lineTopo builds hostA - r1 - r2 - r3 - hostB with uniform capacities.
func lineTopo(t *testing.T) (*Graph, NodeID, NodeID) {
	t.Helper()
	g := New()
	r1 := g.AddRouter("r1")
	r2 := g.AddRouter("r2")
	r3 := g.AddRouter("r3")
	ha := g.AddHost("ha")
	hb := g.AddHost("hb")
	c := rate.Mbps(100)
	g.Connect(ha, r1, c, time.Microsecond)
	g.Connect(r1, r2, c, time.Microsecond)
	g.Connect(r2, r3, c, time.Microsecond)
	g.Connect(r3, hb, c, time.Microsecond)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g, ha, hb
}

func TestBuildAndAccessors(t *testing.T) {
	g, ha, _ := lineTopo(t)
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumLinks() != 8 {
		t.Fatalf("NumLinks = %d", g.NumLinks())
	}
	if got := len(g.Routers()); got != 3 {
		t.Fatalf("Routers = %d", got)
	}
	if got := len(g.Hosts()); got != 2 {
		t.Fatalf("Hosts = %d", got)
	}
	if g.Node(ha).Kind != Host {
		t.Fatalf("ha is not a host")
	}
	if g.HostRouter(ha) != 0 {
		t.Fatalf("HostRouter(ha) = %d", g.HostRouter(ha))
	}
	up := g.AccessLink(ha)
	if g.Link(up).From != ha {
		t.Fatalf("access link does not start at host")
	}
	// Duplex symmetry.
	rev := g.Link(up).Reverse
	if g.Link(rev).From != g.Link(up).To || g.Link(rev).To != ha {
		t.Fatalf("reverse link wrong")
	}
}

func TestConnectPanics(t *testing.T) {
	g := New()
	a := g.AddRouter("a")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on self loop")
		}
	}()
	g.Connect(a, a, rate.Mbps(1), 0)
}

func TestHostPathLine(t *testing.T) {
	g, ha, hb := lineTopo(t)
	res := NewResolver(g, 4)
	p, err := res.HostPath(ha, hb)
	if err != nil {
		t.Fatalf("HostPath: %v", err)
	}
	if len(p) != 4 {
		t.Fatalf("path length = %d, want 4 (%v)", len(p), p)
	}
	if err := ValidatePath(g, p); err != nil {
		t.Fatalf("ValidatePath: %v", err)
	}
	nodes := PathNodes(g, p)
	if nodes[0] != ha || nodes[len(nodes)-1] != hb {
		t.Fatalf("path endpoints wrong: %v", nodes)
	}
}

func TestHostPathSameRouter(t *testing.T) {
	g := New()
	r := g.AddRouter("r")
	h1 := g.AddHost("h1")
	h2 := g.AddHost("h2")
	g.Connect(h1, r, rate.Mbps(100), 0)
	g.Connect(h2, r, rate.Mbps(100), 0)
	res := NewResolver(g, 4)
	p, err := res.HostPath(h1, h2)
	if err != nil {
		t.Fatalf("HostPath: %v", err)
	}
	if len(p) != 2 {
		t.Fatalf("path length = %d, want 2", len(p))
	}
	if err := ValidatePath(g, p); err != nil {
		t.Fatalf("ValidatePath: %v", err)
	}
}

func TestHostPathErrors(t *testing.T) {
	g, ha, hb := lineTopo(t)
	res := NewResolver(g, 4)
	if _, err := res.HostPath(ha, ha); err == nil {
		t.Errorf("expected error for identical endpoints")
	}
	if _, err := res.HostPath(NodeID(0), hb); err == nil {
		t.Errorf("expected error for router endpoint")
	}
	// Disconnected component.
	island := g.AddRouter("island")
	hIsland := g.AddHost("hIsland")
	g.Connect(hIsland, island, rate.Mbps(10), 0)
	res2 := NewResolver(g, 4)
	if _, err := res2.HostPath(ha, hIsland); err == nil {
		t.Errorf("expected error for disconnected hosts")
	}
}

func TestShortestPathAvoidsHosts(t *testing.T) {
	// Diamond where the "short" route would pass through a host; BFS must
	// take the router route.
	g := New()
	r1 := g.AddRouter("r1")
	r2 := g.AddRouter("r2")
	r3 := g.AddRouter("r3")
	hMid := g.AddHost("hmid")
	ha := g.AddHost("ha")
	hb := g.AddHost("hb")
	c := rate.Mbps(100)
	g.Connect(ha, r1, c, 0)
	g.Connect(hb, r3, c, 0)
	// Host in the middle attached to r1; not a route.
	g.Connect(hMid, r1, c, 0)
	g.Connect(r1, r2, c, 0)
	g.Connect(r2, r3, c, 0)
	res := NewResolver(g, 4)
	p, err := res.HostPath(ha, hb)
	if err != nil {
		t.Fatalf("HostPath: %v", err)
	}
	for _, n := range PathNodes(g, p)[1:len(p)] {
		if g.Node(n).Kind != Router && n != hb {
			t.Fatalf("path crosses host %d", n)
		}
	}
}

func TestShortestPathIsShortest(t *testing.T) {
	// Two routes: 2 hops vs 3 hops.
	g := New()
	r1 := g.AddRouter("r1")
	r2 := g.AddRouter("r2")
	r3 := g.AddRouter("r3")
	r4 := g.AddRouter("r4")
	ha := g.AddHost("ha")
	hb := g.AddHost("hb")
	c := rate.Mbps(100)
	g.Connect(ha, r1, c, 0)
	g.Connect(hb, r4, c, 0)
	g.Connect(r1, r2, c, 0)
	g.Connect(r2, r3, c, 0)
	g.Connect(r3, r4, c, 0)
	g.Connect(r1, r4, c, 0) // direct shortcut
	res := NewResolver(g, 4)
	p, err := res.HostPath(ha, hb)
	if err != nil {
		t.Fatalf("HostPath: %v", err)
	}
	if len(p) != 3 { // access + r1→r4 + access
		t.Fatalf("path length = %d, want 3: %v", len(p), PathNodes(g, p))
	}
}

func TestResolverCacheEviction(t *testing.T) {
	g := New()
	const n = 6
	routers := make([]NodeID, n)
	for i := range routers {
		routers[i] = g.AddRouter("r")
	}
	for i := 1; i < n; i++ {
		g.Connect(routers[i-1], routers[i], rate.Mbps(10), 0)
	}
	res := NewResolver(g, 2)
	// Query from several sources; results must stay correct across
	// evictions and re-computations.
	for rep := 0; rep < 3; rep++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				p, err := res.RouterPath(routers[i], routers[j])
				if err != nil {
					t.Fatalf("RouterPath(%d,%d): %v", i, j, err)
				}
				want := j - i
				if want < 0 {
					want = -want
				}
				if len(p) != want {
					t.Fatalf("RouterPath(%d,%d) length = %d, want %d", i, j, len(p), want)
				}
			}
		}
	}
	if len(res.cache) > 2 {
		t.Fatalf("cache grew past capacity: %d", len(res.cache))
	}
}

func TestDeterministicPaths(t *testing.T) {
	build := func() (*Graph, NodeID, NodeID) {
		g := New()
		r1 := g.AddRouter("r1")
		r2a := g.AddRouter("r2a")
		r2b := g.AddRouter("r2b")
		r3 := g.AddRouter("r3")
		ha := g.AddHost("ha")
		hb := g.AddHost("hb")
		c := rate.Mbps(100)
		g.Connect(ha, r1, c, 0)
		g.Connect(hb, r3, c, 0)
		g.Connect(r1, r2a, c, 0)
		g.Connect(r1, r2b, c, 0)
		g.Connect(r2a, r3, c, 0)
		g.Connect(r2b, r3, c, 0)
		return g, ha, hb
	}
	g1, a1, b1 := build()
	g2, a2, b2 := build()
	p1, err1 := NewResolver(g1, 4).HostPath(a1, b1)
	p2, err2 := NewResolver(g2, 4).HostPath(a2, b2)
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v %v", err1, err2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("nondeterministic path: %v vs %v", p1, p2)
		}
	}
}

func TestValidateCatchesBadGraphs(t *testing.T) {
	g := New()
	r := g.AddRouter("r")
	h := g.AddHost("h")
	g.Connect(h, r, rate.Mbps(10), 0)
	h2 := g.AddHost("h2") // unattached
	_ = h2
	if err := g.Validate(); err == nil {
		t.Fatalf("expected validation error for unattached host")
	}
}
