package graph

import (
	"math"
	"sort"
	"time"
)

// Partition assigns every node of a graph to one of K shards for the sharded
// simulator. The cut — the set of links whose endpoints land in different
// shards — determines the engine's conservative lookahead window: the
// minimum cross-shard latency over cut links, where a link's latency is its
// propagation delay plus its per-packet transmission floor (a packet cannot
// arrive sooner than serialization plus propagation). Partitioning therefore
// optimizes for three things, in order: never cut a zero-latency link (the
// lookahead would vanish and with it all parallelism), cut only the
// highest-latency links feasible (the larger the window, the fewer
// synchronization barriers), and balance the per-shard load (the critical
// path of every window is its heaviest shard).
//
// The transmission floor is what makes low-delay (LAN) topologies
// shardable: with uniform 1 µs propagation and a 5 µs serialization floor,
// the window is 6 µs instead of 1 µs — six times fewer barriers for the
// same run.
type Partition struct {
	// Parts maps NodeID → shard, densely indexed.
	Parts []int32
	// K is the number of shards actually used (≤ the requested count).
	K int
	// Lookahead is the minimum latency (propagation + transmission floor)
	// over cut links, the conservative window bound. Zero when K == 1
	// (nothing is cut).
	Lookahead time.Duration
	// Generation is the graph generation the partition was computed at;
	// consumers repartition when it goes stale (topology churn shifts load,
	// and capacity changes move the transmission floors).
	Generation uint64
}

// PartitionNodes computes a K-way partition of g. weights, if non-nil, gives
// the expected event load per node (sessions crossing it, say); nil weighs
// every node equally. floors, if non-nil, gives each link's per-packet
// transmission floor (serialization time), densely indexed by LinkID; a
// link's cut latency is Propagation + floors[link]. The algorithm is
// deterministic:
//
//  1. Pick the largest latency threshold P such that contracting every link
//     with latency < P leaves at least K components and no component
//     heavier than 2·total/K — a feasibility sweep over the distinct
//     latencies, highest first. Links inside a component are never cut, so
//     every cut link has latency ≥ P.
//  2. Grow K contiguous regions over the component graph: seed with the
//     heaviest unassigned component, then repeatedly absorb the heaviest
//     unassigned neighbor until the region reaches the target weight.
//     Leftover components join the lightest region.
//
// Link failure state is ignored: failed links still carry teardown traffic
// in the simulator, so their latency still bounds cross-shard latency.
func PartitionNodes(g *Graph, k int, weights []int64, floors []time.Duration) Partition {
	n := g.NumNodes()
	p := Partition{Parts: make([]int32, n), K: 1, Generation: g.Generation()}
	if k <= 1 || n <= 1 {
		return p
	}
	latency := func(l *Link) time.Duration {
		d := l.Propagation
		if floors != nil && int(l.ID) < len(floors) {
			d += floors[l.ID]
		}
		return d
	}

	w := make([]int64, n)
	var total int64
	for i := 0; i < n; i++ {
		w[i] = 1
		if weights != nil && i < len(weights) && weights[i] > 0 {
			w[i] = weights[i]
		}
		total += w[i]
	}

	// Distinct cut latencies (propagation + transmission floor), descending.
	seen := make(map[time.Duration]bool)
	var delays []time.Duration
	for i := 0; i < g.NumLinks(); i++ {
		d := latency(&g.links[i])
		if !seen[d] {
			seen[d] = true
			delays = append(delays, d)
		}
	}
	sort.Slice(delays, func(a, b int) bool { return delays[a] > delays[b] })

	// Cutting zero-latency links would zero the lookahead: drop the
	// non-positive thresholds (the list is descending, so they trail).
	for len(delays) > 0 && delays[len(delays)-1] <= 0 {
		delays = delays[:len(delays)-1]
	}
	if len(delays) == 0 {
		return p // all latencies zero: one shard
	}

	// Find the largest threshold P whose contraction is feasible (≥ K
	// components) and balanced (no component above 2·total/K). Lowering P
	// only refines the components, so both predicates are monotone in −P
	// and a binary search over the descending thresholds suffices — on WAN
	// topologies, where almost every link latency is distinct, this replaces
	// thousands of union-find contractions per repartition with about a
	// dozen.
	maxComp := 2 * total / int64(k)
	if maxComp < 1 {
		maxComp = 1
	}
	eval := func(P time.Duration) (c []int32, cw []int64, feasible, heavy bool) {
		c, cw = contract(g, w, P, latency)
		if len(cw) < k {
			return c, cw, false, false
		}
		for _, x := range cw {
			if x > maxComp {
				return c, cw, true, true
			}
		}
		return c, cw, true, false
	}
	var comp []int32
	var compW []int64
	feasibleAt := time.Duration(-1)
	lo, hi := 0, len(delays)
	for lo < hi {
		mid := (lo + hi) / 2
		c, cw, feasible, heavy := eval(delays[mid])
		if feasible && !heavy {
			comp, compW, feasibleAt = c, cw, delays[mid]
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if feasibleAt < 0 {
		// No balanced threshold exists (some single node outweighs the
		// balance cap): fall back to the finest feasible cut, like the
		// exhaustive sweep would.
		c, cw, feasible, _ := eval(delays[len(delays)-1])
		if !feasible {
			return p // graph too entangled: one shard
		}
		comp, compW, feasibleAt = c, cw, delays[len(delays)-1]
	}

	parts := growRegions(g, comp, compW, k, total, feasibleAt)
	copy(p.Parts, parts)

	// Finalize: count used shards and compute the exact cut lookahead.
	used := make(map[int32]bool)
	for _, s := range parts {
		used[s] = true
	}
	p.K = len(used)
	if p.K <= 1 {
		p.K = 1
		for i := range p.Parts {
			p.Parts[i] = 0
		}
		return p
	}
	min := time.Duration(math.MaxInt64)
	for i := 0; i < g.NumLinks(); i++ {
		l := &g.links[i]
		if d := latency(l); parts[l.From] != parts[l.To] && d < min {
			min = d
		}
	}
	if min == time.Duration(math.MaxInt64) {
		min = 0
	}
	p.Lookahead = min
	return p
}

// contract unions nodes across every link with latency < P and returns
// the node→component map plus per-component weights (components numbered in
// first-seen node order, so the result is deterministic).
func contract(g *Graph, w []int64, P time.Duration, latency func(*Link) time.Duration) ([]int32, []int64) {
	n := g.NumNodes()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := &g.links[i]
		if latency(l) < P {
			a, b := find(int32(l.From)), find(int32(l.To))
			if a != b {
				if a > b {
					a, b = b, a
				}
				parent[b] = a
			}
		}
	}
	comp := make([]int32, n)
	idx := make(map[int32]int32)
	var weights []int64
	for i := 0; i < n; i++ {
		r := find(int32(i))
		c, ok := idx[r]
		if !ok {
			c = int32(len(weights))
			idx[r] = c
			weights = append(weights, 0)
		}
		comp[i] = c
		weights[c] += w[i]
	}
	return comp, weights
}

// growRegions assigns components to k regions: repeatedly seed with the
// heaviest unassigned component and absorb the heaviest unassigned neighbor
// until the region reaches total/k, then bin-pack the leftovers onto the
// lightest regions. Returns the node→region map.
func growRegions(g *Graph, comp []int32, compW []int64, k int, total int64, P time.Duration) []int32 {
	nc := len(compW)
	// Component adjacency over cut-candidate links (propagation ≥ P).
	adjSet := make([]map[int32]bool, nc)
	for i := 0; i < g.NumLinks(); i++ {
		l := &g.links[i]
		a, b := comp[l.From], comp[l.To]
		if a == b {
			continue
		}
		if adjSet[a] == nil {
			adjSet[a] = make(map[int32]bool)
		}
		adjSet[a][b] = true
	}

	assign := make([]int32, nc)
	for i := range assign {
		assign[i] = -1
	}
	target := total / int64(k)
	if target < 1 {
		target = 1
	}
	regionW := make([]int64, k)

	// Heaviest-first seed order (ties by component index, for determinism).
	order := make([]int32, nc)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if compW[order[a]] != compW[order[b]] {
			return compW[order[a]] > compW[order[b]]
		}
		return order[a] < order[b]
	})

	next := 0 // next seed candidate in order
	for r := 0; r < k; r++ {
		for next < nc && assign[order[next]] != -1 {
			next++
		}
		if next >= nc {
			break
		}
		seed := order[next]
		assign[seed] = int32(r)
		regionW[r] = compW[seed]
		// Grow: absorb the heaviest unassigned neighbor of the region.
		frontier := []int32{seed}
		for regionW[r] < target {
			best := int32(-1)
			for _, c := range frontier {
				for nb := range adjSet[c] {
					if assign[nb] != -1 {
						continue
					}
					if best == -1 || compW[nb] > compW[best] || (compW[nb] == compW[best] && nb < best) {
						best = nb
					}
				}
			}
			if best == -1 {
				break
			}
			assign[best] = int32(r)
			regionW[r] += compW[best]
			frontier = append(frontier, best)
		}
	}

	// Leftovers: lightest region first (ties by region index).
	for _, c := range order {
		if assign[c] != -1 {
			continue
		}
		best := 0
		for r := 1; r < k; r++ {
			if regionW[r] < regionW[best] {
				best = r
			}
		}
		assign[c] = int32(best)
		regionW[best] += compW[c]
	}

	parts := make([]int32, len(comp))
	for i, c := range comp {
		parts[i] = assign[c]
	}
	return parts
}

// CutLinks returns the ID of every link whose endpoints lie in different
// shards under parts, in link-ID order. This is the speculation gate's
// idle-horizon query: the cut wires are the only conduits of cross-shard
// influence, so when each one's transmitter is idle at a barrier, no
// cross-shard arrival can precede the cut latency floor — exactly the
// regime where an optimistic window is likely to commit. Links whose
// endpoints fall outside parts (a stale partition mid-growth) are treated
// as uncut.
func CutLinks(g *Graph, parts []int32) []LinkID {
	var cut []LinkID
	for i := 0; i < g.NumLinks(); i++ {
		l := &g.links[i]
		if int(l.From) >= len(parts) || int(l.To) >= len(parts) {
			continue
		}
		if parts[l.From] != parts[l.To] {
			cut = append(cut, l.ID)
		}
	}
	return cut
}

// SessionWeights builds the node-weight vector PartitionNodes consumes from
// a set of session paths: every node starts at weight 1 and gains one per
// session whose path executes on it (the From side of each link, plus the
// destination host). It predicts per-node event load, so partitions balance
// work rather than node counts.
func SessionWeights(g *Graph, paths []Path) []int64 {
	w := make([]int64, g.NumNodes())
	for i := range w {
		w[i] = 1
	}
	for _, p := range paths {
		for _, l := range p {
			w[g.Link(l).From]++
		}
		if len(p) > 0 {
			w[g.Link(p[len(p)-1]).To]++
		}
	}
	return w
}
