// Package graph models the network of the B-Neck paper: a simple directed
// graph of routers and hosts connected by links with individual capacities
// and propagation delays (Section II of the paper). Connected nodes always
// have links in both directions. Hosts attach to exactly one router and never
// forward traffic.
package graph

import (
	"fmt"
	"time"

	"bneck/internal/rate"
)

// NodeID identifies a node. IDs are dense indexes assigned in insertion
// order.
type NodeID int32

// LinkID identifies a directed link. IDs are dense indexes assigned in
// insertion order.
type LinkID int32

// None is the sentinel for "no node"/"no link".
const (
	NoNode NodeID = -1
	NoLink LinkID = -1
)

// Kind distinguishes routers from hosts.
type Kind int

const (
	// Router nodes forward traffic and run the router-link task.
	Router Kind = iota + 1
	// Host nodes terminate sessions; they are never interior path nodes.
	Host
)

func (k Kind) String() string {
	switch k {
	case Router:
		return "router"
	case Host:
		return "host"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is a router or host.
type Node struct {
	ID   NodeID
	Kind Kind
	Name string
}

// Link is a directed link with a dedicated capacity for data traffic and a
// propagation delay. Per the paper's model, control traffic does not consume
// the data capacity; capacity only drives the max-min computation.
type Link struct {
	ID          LinkID
	From, To    NodeID
	Capacity    rate.Rate
	Propagation time.Duration
	// Reverse is the link in the opposite direction (the paper's model
	// guarantees it exists for every link).
	Reverse LinkID
	// Failed marks an administratively-down link: it carries no new sessions
	// and path resolution routes around it. Capacity and propagation are
	// retained for restoration.
	Failed bool
}

// Graph is a network. Build it with AddRouter/AddHost/Connect. Node and link
// structure is append-only, but links support controlled mutation —
// SetCapacity, FailLink, RestoreLink — each of which bumps the graph's
// generation so cached path state (see Resolver) can invalidate itself.
type Graph struct {
	nodes []Node
	links []Link
	out   [][]LinkID // outgoing link IDs per node, in insertion order
	gen   uint64     // bumped by every topology-affecting mutation
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{}
}

// AddRouter adds a router node and returns its ID.
func (g *Graph) AddRouter(name string) NodeID { return g.addNode(Router, name) }

// AddHost adds a host node and returns its ID.
func (g *Graph) AddHost(name string) NodeID { return g.addNode(Host, name) }

func (g *Graph) addNode(kind Kind, name string) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Kind: kind, Name: name})
	g.out = append(g.out, nil)
	return id
}

// Connect adds a pair of directed links between a and b, with the given
// capacity and propagation delay in each direction, and returns the two link
// IDs (a→b, b→a). It panics on unknown nodes or self loops; topology
// construction errors are programming errors.
func (g *Graph) Connect(a, b NodeID, capacity rate.Rate, propagation time.Duration) (LinkID, LinkID) {
	if a == b {
		panic(fmt.Sprintf("graph: self loop on node %d", a))
	}
	g.checkNode(a)
	g.checkNode(b)
	ab := g.addLink(a, b, capacity, propagation)
	ba := g.addLink(b, a, capacity, propagation)
	g.links[ab].Reverse = ba
	g.links[ba].Reverse = ab
	return ab, ba
}

// ConnectAsym adds a single directed link (for tests building hand-crafted
// scenarios). The paper's model is duplex; prefer Connect. The reverse link
// is set to NoLink.
func (g *Graph) ConnectAsym(a, b NodeID, capacity rate.Rate, propagation time.Duration) LinkID {
	if a == b {
		panic(fmt.Sprintf("graph: self loop on node %d", a))
	}
	g.checkNode(a)
	g.checkNode(b)
	id := g.addLink(a, b, capacity, propagation)
	g.links[id].Reverse = NoLink
	return id
}

func (g *Graph) addLink(from, to NodeID, capacity rate.Rate, propagation time.Duration) LinkID {
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{
		ID: id, From: from, To: to,
		Capacity: capacity, Propagation: propagation,
	})
	g.out[from] = append(g.out[from], id)
	return id
}

func (g *Graph) checkNode(n NodeID) {
	if n < 0 || int(n) >= len(g.nodes) {
		panic(fmt.Sprintf("graph: unknown node %d", n))
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the number of directed links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { g.checkNode(id); return g.nodes[id] }

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link {
	if id < 0 || int(id) >= len(g.links) {
		panic(fmt.Sprintf("graph: unknown link %d", id))
	}
	return g.links[id]
}

// LinkReverse returns the ID of the link in the opposite direction (NoLink
// for asymmetric links). Unlike Link it reads only the immutable Reverse
// field — no struct copy on the per-packet path — and is safe to call
// concurrently with capacity or failure mutations; the live runtime's
// sharded Emit path depends on that.
func (g *Graph) LinkReverse(id LinkID) LinkID {
	g.checkLink(id)
	return g.links[id].Reverse
}

// LinkTo returns a directed link's destination node. Like LinkReverse it
// reads one immutable field, for the per-packet paths that would otherwise
// copy the whole Link struct.
func (g *Graph) LinkTo(id LinkID) NodeID {
	g.checkLink(id)
	return g.links[id].To
}

// LinkFrom returns a directed link's source node (immutable field read).
func (g *Graph) LinkFrom(id LinkID) NodeID {
	g.checkLink(id)
	return g.links[id].From
}

// Out returns the outgoing links of a node. The returned slice must not be
// modified.
func (g *Graph) Out(id NodeID) []LinkID { g.checkNode(id); return g.out[id] }

// Generation returns a counter bumped by every topology-affecting mutation
// (capacity change, link failure, link restoration). Consumers caching
// derived path state compare generations to detect staleness.
func (g *Graph) Generation() uint64 { return g.gen }

func (g *Graph) checkLink(id LinkID) {
	if id < 0 || int(id) >= len(g.links) {
		panic(fmt.Sprintf("graph: unknown link %d", id))
	}
}

// SetCapacity changes the capacity of one directed link. It panics on an
// unknown link or a non-positive finite capacity (topology mutation errors
// are programming errors, like construction errors).
func (g *Graph) SetCapacity(id LinkID, capacity rate.Rate) {
	g.checkLink(id)
	if capacity.Sign() <= 0 && !capacity.IsInf() {
		panic(fmt.Sprintf("graph: non-positive capacity %v for link %d", capacity, id))
	}
	g.links[id].Capacity = capacity
	g.gen++
}

// FailLink marks one directed link as down. Failing an already-failed link is
// a no-op. Path resolution routes around failed links; restoring brings the
// link back with its retained capacity and delay.
func (g *Graph) FailLink(id LinkID) {
	g.checkLink(id)
	if g.links[id].Failed {
		return
	}
	g.links[id].Failed = true
	g.gen++
}

// RestoreLink brings a failed directed link back up. Restoring an up link is
// a no-op.
func (g *Graph) RestoreLink(id LinkID) {
	g.checkLink(id)
	if !g.links[id].Failed {
		return
	}
	g.links[id].Failed = false
	g.gen++
}

// LinkUp reports whether a directed link is currently up.
func (g *Graph) LinkUp(id LinkID) bool { g.checkLink(id); return !g.links[id].Failed }

// Routers returns the IDs of all router nodes, in insertion order.
func (g *Graph) Routers() []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == Router {
			out = append(out, n.ID)
		}
	}
	return out
}

// Hosts returns the IDs of all host nodes, in insertion order.
func (g *Graph) Hosts() []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == Host {
			out = append(out, n.ID)
		}
	}
	return out
}

// HostRouter returns the router a host is attached to. It panics if id is
// not a host or the host is unattached.
func (g *Graph) HostRouter(id NodeID) NodeID {
	n := g.Node(id)
	if n.Kind != Host {
		panic(fmt.Sprintf("graph: node %d is not a host", id))
	}
	for _, l := range g.out[id] {
		return g.links[l].To
	}
	panic(fmt.Sprintf("graph: host %d is unattached", id))
}

// AccessLink returns the host→router link of a host.
func (g *Graph) AccessLink(id NodeID) LinkID {
	n := g.Node(id)
	if n.Kind != Host {
		panic(fmt.Sprintf("graph: node %d is not a host", id))
	}
	for _, l := range g.out[id] {
		return l
	}
	panic(fmt.Sprintf("graph: host %d is unattached", id))
}

// Validate checks structural invariants: hosts have exactly one neighbor
// (their router), every link has positive capacity, and duplex symmetry
// holds. It returns a descriptive error for the first violation found.
func (g *Graph) Validate() error {
	for _, n := range g.nodes {
		if n.Kind == Host && len(g.out[n.ID]) != 1 {
			return fmt.Errorf("host %d (%s) has %d links, want 1", n.ID, n.Name, len(g.out[n.ID]))
		}
	}
	for _, l := range g.links {
		if l.Capacity.Sign() <= 0 && !l.Capacity.IsInf() {
			return fmt.Errorf("link %d has non-positive capacity %v", l.ID, l.Capacity)
		}
		if l.Reverse != NoLink {
			r := g.links[l.Reverse]
			if r.From != l.To || r.To != l.From {
				return fmt.Errorf("link %d reverse mismatch", l.ID)
			}
		}
	}
	return nil
}
