package graph

import (
	"testing"
	"time"

	"bneck/internal/rate"
)

// diamondTopo builds ha - r1 - {r2 | r3} - r4 - hb: two disjoint router
// routes between r1 and r4, so failing one leaves an alternative.
func diamondTopo(t *testing.T) (g *Graph, ha, hb NodeID, topLinks, botLinks [2]LinkID) {
	t.Helper()
	g = New()
	r1 := g.AddRouter("r1")
	r2 := g.AddRouter("r2")
	r3 := g.AddRouter("r3")
	r4 := g.AddRouter("r4")
	ha = g.AddHost("ha")
	hb = g.AddHost("hb")
	c := rate.Mbps(100)
	g.Connect(ha, r1, c, time.Microsecond)
	topLinks[0], _ = g.Connect(r1, r2, c, time.Microsecond)
	topLinks[1], _ = g.Connect(r2, r4, c, time.Microsecond)
	botLinks[0], _ = g.Connect(r1, r3, c, time.Microsecond)
	botLinks[1], _ = g.Connect(r3, r4, c, time.Microsecond)
	g.Connect(r4, hb, c, time.Microsecond)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g, ha, hb, topLinks, botLinks
}

func TestSetCapacity(t *testing.T) {
	g, _, _, top, _ := diamondTopo(t)
	gen := g.Generation()
	g.SetCapacity(top[0], rate.Mbps(7))
	if got := g.Link(top[0]).Capacity; !got.Equal(rate.Mbps(7)) {
		t.Fatalf("capacity = %v, want 7 Mbps", got)
	}
	if g.Generation() == gen {
		t.Fatal("SetCapacity did not bump the generation")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after SetCapacity: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetCapacity accepted a non-positive capacity")
		}
	}()
	g.SetCapacity(top[0], rate.Zero)
}

func TestFailRestoreReroutes(t *testing.T) {
	g, ha, hb, top, bot := diamondTopo(t)
	r := NewResolver(g, 8)

	p1, err := r.HostPath(ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	// BFS tie-breaking by insertion order picks the top route (r1→r2→r4).
	if p1[1] != top[0] || p1[2] != top[1] {
		t.Fatalf("initial path = %v, want top route", p1)
	}

	gen := g.Generation()
	g.FailLink(top[0])
	g.FailLink(g.Link(top[0]).Reverse)
	if g.Generation() == gen {
		t.Fatal("FailLink did not bump the generation")
	}
	if g.LinkUp(top[0]) {
		t.Fatal("failed link reported up")
	}
	if err := ValidatePath(g, p1); err == nil {
		t.Fatal("ValidatePath accepted a path over a failed link")
	}

	p2, err := r.HostPath(ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	if p2[1] != bot[0] || p2[2] != bot[1] {
		t.Fatalf("rerouted path = %v, want bottom route", p2)
	}
	if err := ValidatePath(g, p2); err != nil {
		t.Fatalf("rerouted path invalid: %v", err)
	}

	// Fail the alternative too: no route remains.
	g.FailLink(bot[0])
	if _, err := r.HostPath(ha, hb); err == nil {
		t.Fatal("HostPath found a path through failed links")
	}

	// Restore both; resolution returns to the original shortest path.
	g.RestoreLink(top[0])
	g.RestoreLink(g.Link(top[0]).Reverse)
	g.RestoreLink(bot[0])
	p3, err := r.HostPath(ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	if p3[1] != top[0] {
		t.Fatalf("restored path = %v, want top route again", p3)
	}
}

func TestFailAccessLink(t *testing.T) {
	g, ha, hb, _, _ := diamondTopo(t)
	r := NewResolver(g, 8)
	g.FailLink(g.AccessLink(ha))
	if _, err := r.HostPath(ha, hb); err == nil {
		t.Fatal("HostPath succeeded over a failed source access link")
	}
	g.RestoreLink(g.AccessLink(ha))
	g.FailLink(g.Link(g.AccessLink(hb)).Reverse)
	if _, err := r.HostPath(ha, hb); err == nil {
		t.Fatal("HostPath succeeded over a failed destination access link")
	}
}

func TestFailRestoreIdempotent(t *testing.T) {
	g, _, _, top, _ := diamondTopo(t)
	g.FailLink(top[0])
	gen := g.Generation()
	g.FailLink(top[0]) // already down: no-op
	if g.Generation() != gen {
		t.Fatal("re-failing a failed link bumped the generation")
	}
	g.RestoreLink(top[0])
	gen = g.Generation()
	g.RestoreLink(top[0]) // already up: no-op
	if g.Generation() != gen {
		t.Fatal("re-restoring an up link bumped the generation")
	}
}

// TestResolverStaleTreeRecomputed pins the lazy invalidation: a cached tree
// from before a mutation must not be served afterwards.
func TestResolverStaleTreeRecomputed(t *testing.T) {
	g, ha, hb, top, bot := diamondTopo(t)
	r := NewResolver(g, 1) // capacity 1: every tree fights for the one slot
	if _, err := r.HostPath(ha, hb); err != nil {
		t.Fatal(err)
	}
	g.FailLink(top[0])
	p, err := r.HostPath(ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	if p[1] != bot[0] {
		t.Fatalf("stale cached tree served after mutation: path %v", p)
	}
}
