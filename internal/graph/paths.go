package graph

import (
	"fmt"
)

// Path is an ordered list of directed link IDs from a source host to a
// destination host (the paper's π(s)).
type Path []LinkID

// Resolver computes shortest (minimum hop) host-to-host paths, the paper's
// session path policy. Interior nodes are always routers: BFS never expands
// through a host.
//
// BFS trees are computed per source router and cached with an LRU policy, so
// resolving many sessions is cheap when they are grouped by source router
// (the experiment harness sorts its workloads accordingly). A Resolver is not
// safe for concurrent use.
type Resolver struct {
	g        *Graph
	capacity int
	cache    map[NodeID]*bfsTree
	order    []NodeID // LRU order, least recent first
}

type bfsTree struct {
	src NodeID
	// gen is the graph generation the tree was computed at; a later mutation
	// (capacity change, link fail/restore) makes the tree stale.
	gen uint64
	// parentLink[n] is the link used to reach router n from its BFS parent,
	// or NoLink if unreached / the source itself.
	parentLink []LinkID
}

// NewResolver returns a Resolver over g caching up to cacheSize BFS trees
// (minimum 1; 128 is a good default for the paper's workloads).
func NewResolver(g *Graph, cacheSize int) *Resolver {
	if cacheSize < 1 {
		cacheSize = 1
	}
	return &Resolver{
		g:        g,
		capacity: cacheSize,
		cache:    make(map[NodeID]*bfsTree, cacheSize),
	}
}

// HostPath returns a shortest path from host src to host dst:
// [src→router, router hops..., router→dst]. It returns an error if the hosts
// coincide or no path exists.
func (r *Resolver) HostPath(src, dst NodeID) (Path, error) {
	if src == dst {
		return nil, fmt.Errorf("graph: source and destination host coincide (%d)", src)
	}
	if r.g.Node(src).Kind != Host || r.g.Node(dst).Kind != Host {
		return nil, fmt.Errorf("graph: HostPath endpoints must be hosts (%d, %d)", src, dst)
	}
	srcRouter := r.g.HostRouter(src)
	dstRouter := r.g.HostRouter(dst)

	up := r.g.AccessLink(src)
	if r.g.Link(up).Failed {
		return nil, fmt.Errorf("graph: access link of host %d is down", src)
	}
	down, err := r.hostDownLink(dst)
	if err != nil {
		return nil, err
	}
	if r.g.Link(down).Failed {
		return nil, fmt.Errorf("graph: access link of host %d is down", dst)
	}

	if srcRouter == dstRouter {
		return Path{up, down}, nil
	}
	mid, err := r.RouterPath(srcRouter, dstRouter)
	if err != nil {
		return nil, err
	}
	path := make(Path, 0, len(mid)+2)
	path = append(path, up)
	path = append(path, mid...)
	path = append(path, down)
	return path, nil
}

// RouterPath returns a shortest router-level path between two routers.
func (r *Resolver) RouterPath(src, dst NodeID) (Path, error) {
	if r.g.Node(src).Kind != Router || r.g.Node(dst).Kind != Router {
		return nil, fmt.Errorf("graph: RouterPath endpoints must be routers (%d, %d)", src, dst)
	}
	if src == dst {
		return Path{}, nil
	}
	t := r.tree(src)
	if t.parentLink[dst] == NoLink {
		return nil, fmt.Errorf("graph: no path from router %d to router %d", src, dst)
	}
	// Walk back from dst to src.
	var rev Path
	for n := dst; n != src; {
		l := t.parentLink[n]
		rev = append(rev, l)
		n = r.g.Link(l).From
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

func (r *Resolver) hostDownLink(host NodeID) (LinkID, error) {
	up := r.g.AccessLink(host)
	down := r.g.Link(up).Reverse
	if down == NoLink {
		return NoLink, fmt.Errorf("graph: host %d has no router→host link", host)
	}
	return down, nil
}

// tree returns the BFS tree rooted at the given router, computing and
// caching it if needed. Trees computed before a topology mutation are
// recomputed lazily on their next use: only sources actually re-resolved
// after a reconfiguration pay for it.
func (r *Resolver) tree(src NodeID) *bfsTree {
	if t, ok := r.cache[src]; ok {
		if t.gen != r.g.Generation() {
			// Stale tree: replace in place, keeping the LRU slot.
			t = r.bfs(src)
			r.cache[src] = t
		}
		r.touch(src)
		return t
	}
	t := r.bfs(src)
	if len(r.order) >= r.capacity {
		evict := r.order[0]
		r.order = r.order[1:]
		delete(r.cache, evict)
	}
	r.cache[src] = t
	r.order = append(r.order, src)
	return t
}

func (r *Resolver) touch(src NodeID) {
	for i, n := range r.order {
		if n == src {
			copy(r.order[i:], r.order[i+1:])
			r.order[len(r.order)-1] = src
			return
		}
	}
}

// bfs runs a breadth-first search over routers only, skipping failed links.
// Ties are broken by link insertion order, so results are deterministic.
func (r *Resolver) bfs(src NodeID) *bfsTree {
	g := r.g
	t := &bfsTree{src: src, gen: g.Generation(), parentLink: make([]LinkID, g.NumNodes())}
	for i := range t.parentLink {
		t.parentLink[i] = NoLink
	}
	visited := make([]bool, g.NumNodes())
	visited[src] = true
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, lid := range g.Out(n) {
			l := g.Link(lid)
			to := l.To
			if l.Failed || visited[to] || g.Node(to).Kind != Router {
				continue
			}
			visited[to] = true
			t.parentLink[to] = lid
			queue = append(queue, to)
		}
	}
	return t
}

// PathNodes expands a path into its node sequence (source of the first link
// followed by the destination of every link). Useful for debugging and
// tests.
func PathNodes(g *Graph, p Path) []NodeID {
	if len(p) == 0 {
		return nil
	}
	out := make([]NodeID, 0, len(p)+1)
	out = append(out, g.Link(p[0]).From)
	for _, l := range p {
		out = append(out, g.Link(l).To)
	}
	return out
}

// ValidatePath checks that p is a connected host-to-host path in g whose
// links are all up.
func ValidatePath(g *Graph, p Path) error {
	if len(p) < 2 {
		return fmt.Errorf("graph: path too short (%d links)", len(p))
	}
	for _, l := range p {
		if g.Link(l).Failed {
			return fmt.Errorf("graph: path crosses failed link %d", l)
		}
	}
	for i := 1; i < len(p); i++ {
		prev, cur := g.Link(p[i-1]), g.Link(p[i])
		if prev.To != cur.From {
			return fmt.Errorf("graph: path disconnected at hop %d (link %d→ link %d)", i, prev.ID, cur.ID)
		}
		if g.Node(cur.From).Kind != Router {
			return fmt.Errorf("graph: interior path node %d is not a router", cur.From)
		}
	}
	if g.Node(g.Link(p[0]).From).Kind != Host {
		return fmt.Errorf("graph: path does not start at a host")
	}
	if g.Node(g.Link(p[len(p)-1]).To).Kind != Host {
		return fmt.Errorf("graph: path does not end at a host")
	}
	return nil
}
