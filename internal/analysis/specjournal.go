package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Specjournal guards the optimistic engine's rollback-free commit protocol
// (DESIGN.md §13): during a speculative attempt every cross-shard send is
// withheld in a journal field annotated //bneck:journal, and the journal may
// be externalized — read, drained, truncated, handed to anything — only
// inside a function annotated //bneck:commit, the attempt's single join
// point. A journal entry that escapes before the join is a speculative
// delivery leaking into a window that may yet park: the receiving shard
// would execute an event the replay is obliged to re-derive, and the
// byte-identical-results guarantee (and the no-rollback design itself)
// silently breaks — only on misspeculating schedules, which is exactly when
// nobody is looking.
//
// The one operation allowed outside the commit path is the withhold itself:
//
//	x.journal = append(x.journal, ev)
//
// Every other touch of a journal field outside a //bneck:commit function is
// flagged.
var Specjournal = &Analyzer{
	Name:  "specjournal",
	Doc:   "confine speculative journal externalization to //bneck:commit functions",
	Match: inPackages("bneck/internal/sim"),
	Run:   runSpecjournal,
}

// journalFields collects the struct fields annotated //bneck:journal.
func journalFields(pass *Pass) map[types.Object]bool {
	fields := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				_, ok := commentGroupDirective(field.Doc, "journal")
				if !ok {
					_, ok = commentGroupDirective(field.Comment, "journal")
				}
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						fields[obj] = true
					}
				}
			}
			return true
		})
	}
	return fields
}

func runSpecjournal(pass *Pass) {
	journals := journalFields(pass)
	if len(journals) == 0 {
		return
	}
	// isJournalSel reports whether e selects a //bneck:journal field.
	isJournalSel := func(e ast.Expr) (*ast.SelectorExpr, bool) {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil, false
		}
		s, ok := pass.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return nil, false
		}
		return sel, journals[s.Obj()]
	}

	// One finding per source line: shapes like x.j = x.j[:0] touch the
	// journal twice but are a single leak.
	reported := map[string]bool{}
	pass.forEachFunc(func(fn *ast.FuncDecl) {
		if _, commit := funcAnnotated(fn, "commit"); commit {
			return
		}
		// allowed marks the selector nodes of the one sanctioned shape,
		// x.journal = append(x.journal, ...): the withhold itself.
		allowed := map[*ast.SelectorExpr]bool{}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lhs, ok := isJournalSel(as.Lhs[0])
			if !ok {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" ||
				pass.Info.Uses[id] != types.Universe.Lookup("append") {
				return true
			}
			arg, ok := isJournalSel(call.Args[0])
			if !ok {
				return true
			}
			// Both selectors must name the same journal through the same base
			// object (x.j = append(x.j, …), not x.j = append(y.j, …)).
			lb, okL := ast.Unparen(lhs.X).(*ast.Ident)
			ab, okA := ast.Unparen(arg.X).(*ast.Ident)
			if okL && okA && pass.Info.Uses[lb] == pass.Info.Uses[ab] &&
				lhs.Sel.Name == arg.Sel.Name {
				allowed[lhs] = true
				allowed[arg] = true
			}
			return true
		})
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if _, journal := isJournalSel(sel); !journal || allowed[sel] {
				return true
			}
			p := pass.Fset.Position(sel.Sel.Pos())
			key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
			if reported[key] {
				return true
			}
			reported[key] = true
			pass.Reportf(sel.Sel.Pos(), "journal field %s externalized outside the //bneck:commit join: speculative cross-shard sends may only be appended until the attempt commits, or a misspeculating schedule leaks an uncommitted delivery and results diverge", sel.Sel.Name)
			return true
		})
	})
}
