package analysis

import (
	"go/ast"
	"go/types"
)

// Shardowner guards the transport's merge-on-demand sharded state
// (DESIGN.md §9): structs annotated //bneck:sharded (the per-shard domain —
// packet stats, delivery free list, per-session counters) are owned by one
// shard goroutine and must never be touched cross-shard during window
// execution — that is a data race the race detector only catches when a
// stress test happens to schedule it.
//
// A field access on a sharded struct is legal when the value provably
// belongs to the executing shard or the access is in serial context:
//
//   - inside a method of the sharded struct itself (owning-shard methods);
//   - when the value is a function parameter (the caller was checked where
//     it produced the value);
//   - when the value came, in the same function, from a call to a function
//     annotated //bneck:owner (e.g. domainFor, which returns the executing
//     node's own domain);
//   - anywhere in a function annotated //bneck:merge, declaring it runs in
//     serial context — setup, a global (barrier) event, or between runs —
//     where sweeping all domains to merge on demand is the designed pattern.
//
// Everything else is flagged.
var Shardowner = &Analyzer{
	Name:  "shardowner",
	Doc:   "restrict per-shard domain state to owner shards and //bneck:merge readers",
	Match: inPackages("bneck/internal/network"),
	Run:   runShardowner,
}

// shardedTypes collects the type names annotated //bneck:sharded and the
// functions annotated //bneck:owner.
func shardedTypes(pass *Pass) (types_ map[*types.TypeName]bool, owners map[*types.Func]bool) {
	types_ = make(map[*types.TypeName]bool)
	owners = make(map[*types.Func]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					_, ok = commentGroupDirective(ts.Doc, "sharded")
					if !ok {
						_, ok = commentGroupDirective(d.Doc, "sharded")
					}
					if !ok {
						continue
					}
					if tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName); ok {
						types_[tn] = true
					}
				}
			case *ast.FuncDecl:
				if _, ok := funcAnnotated(d, "owner"); ok {
					if fn, ok := pass.Info.Defs[d.Name].(*types.Func); ok {
						owners[fn] = true
					}
				}
			}
		}
	}
	return types_, owners
}

func runShardowner(pass *Pass) {
	sharded, owners := shardedTypes(pass)
	if len(sharded) == 0 {
		return
	}
	isSharded := func(t types.Type) bool {
		n, ok := namedType(t)
		return ok && sharded[n.Obj()]
	}

	pass.forEachFunc(func(fn *ast.FuncDecl) {
		if _, merge := funcAnnotated(fn, "merge"); merge {
			return
		}
		// Methods of a sharded struct are the owning shard's own code.
		if fn.Recv != nil && len(fn.Recv.List) == 1 {
			if tv, ok := pass.Info.Types[fn.Recv.List[0].Type]; ok && isSharded(tv.Type) {
				return
			}
		}

		// owned tracks objects that provably hold the executing shard's own
		// domain within one function scope: parameters of a sharded type
		// (checked at the caller) and locals assigned from //bneck:owner
		// calls. Scopes are per function literal, innermost wins.
		type scope struct {
			node  ast.Node
			owned map[types.Object]bool
		}
		var scopes []scope
		push := func(n ast.Node) { scopes = append(scopes, scope{node: n, owned: map[types.Object]bool{}}) }
		push(fn)
		if fn.Type.Params != nil {
			for _, p := range fn.Type.Params.List {
				if tv, ok := pass.Info.Types[p.Type]; ok && isSharded(tv.Type) {
					for _, name := range p.Names {
						scopes[0].owned[pass.Info.Defs[name]] = true
					}
				}
			}
		}
		ownedObj := func(obj types.Object) bool {
			for i := len(scopes) - 1; i >= 0; i-- {
				if scopes[i].owned[obj] {
					return true
				}
			}
			return false
		}
		isOwnerCall := func(e ast.Expr) bool {
			call, ok := ast.Unparen(e).(*ast.CallExpr)
			if !ok {
				return false
			}
			f := calleeFunc(pass.Info, call)
			return f != nil && owners[f]
		}

		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncLit:
				push(e)
				// Closure parameters of a sharded type count as owned.
				if e.Type.Params != nil {
					for _, p := range e.Type.Params.List {
						if tv, ok := pass.Info.Types[p.Type]; ok && isSharded(tv.Type) {
							for _, name := range p.Names {
								scopes[len(scopes)-1].owned[pass.Info.Defs[name]] = true
							}
						}
					}
				}
				ast.Inspect(e.Body, visit)
				scopes = scopes[:len(scopes)-1]
				return false
			case *ast.AssignStmt:
				for i, lhs := range e.Lhs {
					if i >= len(e.Rhs) {
						break
					}
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.Info.Defs[id]
					if obj == nil {
						obj = pass.Info.Uses[id]
					}
					if obj == nil {
						continue
					}
					if tv, ok := pass.Info.Types[e.Rhs[i]]; !ok || !isSharded(tv.Type) {
						continue
					}
					if isOwnerCall(e.Rhs[i]) {
						scopes[len(scopes)-1].owned[obj] = true
					} else {
						delete(scopes[len(scopes)-1].owned, obj)
					}
				}
				return true
			case *ast.SelectorExpr:
				s, ok := pass.Info.Selections[e]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				tv, ok := pass.Info.Types[e.X]
				if !ok || !isSharded(tv.Type) {
					return true
				}
				base := ast.Unparen(e.X)
				if id, ok := base.(*ast.Ident); ok && ownedObj(pass.Info.Uses[id]) {
					return true
				}
				if isOwnerCall(base) {
					return true
				}
				pass.Reportf(e.Sel.Pos(), "touches per-shard field %s of %s outside its owning shard: fetch the executing shard's domain via a //bneck:owner accessor, or annotate the function //bneck:merge if it runs in serial context", s.Obj().Name(), tv.Type.String())
				return true
			}
			return true
		}
		ast.Inspect(fn.Body, visit)
	})
}
