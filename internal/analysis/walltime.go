package analysis

import (
	"go/ast"
	"go/types"
)

// Walltime forbids ambient-environment reads in deterministic packages:
// wall-clock time (time.Now and friends — the simulator owns its virtual
// clock), process environment (os.Getenv), and the globally-seeded
// top-level math/rand functions (Go seeds the global source randomly, so
// rand.Intn differs run to run; every random stream must come from an
// explicitly seeded rand.New(rand.NewSource(seed))).
//
// The examples that promise reproducible output (examples/wan,
// examples/dynamic, examples/quickstart) opt in alongside the deterministic
// packages. A sanctioned read — e.g. wall-clock duration reporting that
// never feeds results — takes a //bneck:wallclock directive on the call or
// the enclosing function with a one-line justification.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now, os.Getenv and unseeded math/rand in deterministic packages",
	Match: inPackages(append([]string{
		"bneck/examples/wan",
		"bneck/examples/dynamic",
		"bneck/examples/quickstart",
	}, DeterministicPackages...)...),
	Run: runWalltime,
}

// walltimeBanned lists the banned package-level functions per package. For
// math/rand and math/rand/v2 every package-level draw from the global source
// is banned (constructors taking explicit seeds remain fine); they are
// handled separately in bannedCall.
var walltimeBanned = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
		"Until": "wall-clock read",
	},
	"os": {
		"Getenv":    "environment read",
		"LookupEnv": "environment read",
		"Environ":   "environment read",
	},
}

// randConstructors are the math/rand functions that do not draw from the
// global source: they build explicitly-seeded generators, which is exactly
// what deterministic code should use.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func bannedCall(fun *types.Func) (kind string, ok bool) {
	if fun.Pkg() == nil {
		return "", false
	}
	if sig, ok := fun.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false // methods (e.g. on a seeded *rand.Rand) are fine
	}
	path := fun.Pkg().Path()
	if path == "math/rand" || path == "math/rand/v2" {
		if randConstructors[fun.Name()] {
			return "", false
		}
		return "globally-seeded randomness", true
	}
	if kind, ok := walltimeBanned[path][fun.Name()]; ok {
		return kind, true
	}
	return "", false
}

func runWalltime(pass *Pass) {
	pass.forEachFunc(func(fn *ast.FuncDecl) {
		_, fnSanctioned := funcAnnotated(fn, "wallclock")
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun := calleeFunc(pass.Info, call)
			if fun == nil {
				return true
			}
			kind, banned := bannedCall(fun)
			if !banned || fnSanctioned || pass.lineAnnotated(call.Pos(), "wallclock") {
				return true
			}
			pass.Reportf(call.Pos(), "%s.%s (%s) in a deterministic package: results must be a pure function of inputs — use the virtual clock or an explicitly seeded source, or annotate //bneck:wallclock with why output cannot depend on it", fun.Pkg().Name(), fun.Name(), kind)
			return true
		})
	})
}
