// Package specjournal models the optimistic engine's journaling discipline.
// The flagged shapes are leaks-before-commit: a speculative cross-shard
// send escaping its journal while the attempt can still park, which hands
// the destination an event the rollback-free replay is obliged to
// re-derive — results then diverge only on misspeculating schedules.
package specjournal

type event struct {
	at    int64
	owner int32
}

type shard struct {
	id int
	//bneck:journal withheld cross-shard sends; externalized only at commit.
	out []event
	q   []event
}

type engine struct {
	shards []*shard
}

// withhold is the hot-path shape SendAt uses: append-only, legal anywhere.
func (s *shard) withhold(ev event) {
	s.out = append(s.out, ev)
}

// withholdVia appends through a local alias of the shard; still append-only.
func (e *engine) withholdVia(i int, ev event) {
	sf := e.shards[i]
	sf.out = append(sf.out, ev)
}

// join is the sanctioned externalization point.
//
//bneck:commit drains every journal after the attempt ends.
func (e *engine) join() {
	for _, s := range e.shards {
		for i := range s.out {
			ev := s.out[i]
			d := e.shards[int(ev.owner)%len(e.shards)]
			d.q = append(d.q, ev)
			s.out[i] = event{}
		}
		s.out = s.out[:0]
	}
}

// leakEarly is the bug shape: draining a journal mid-attempt, before the
// commit point, delivering a speculative send the attempt might yet revoke.
func (e *engine) leakEarly(s *shard) {
	for _, ev := range s.out { // want "outside the //bneck:commit join"
		d := e.shards[int(ev.owner)%len(e.shards)]
		d.q = append(d.q, ev)
	}
	s.out = s.out[:0] // want "outside the //bneck:commit join"
}

// peek reads a journal entry outside the commit path.
func (s *shard) peek() event {
	return s.out[0] // want "outside the //bneck:commit join"
}

// steal reads another shard's journal mid-attempt: the append escape hatch
// only covers x.out = append(x.out, …) on the shard's own journal.
func (s *shard) steal(o *shard) {
	tmp := o.out // want "outside the //bneck:commit join"
	s.out = append(s.out, tmp...)
}

// truncateEarly resets a journal before the join, dropping withheld sends.
func (s *shard) truncateEarly() {
	s.out = nil // want "outside the //bneck:commit join"
}
