// Package lockorder models the live runtime's two-tier locking: a runtime
// mutex, peer stripe locks, and actor mailboxes, with the documented order
// mu → stripe → mailbox.
package lockorder

import "sync"

type message struct{ v int }

type actor struct {
	mu    sync.Mutex //bneck:lock mailbox
	queue []message
}

// enqueue is the non-blocking mailbox append: legal under mu or a stripe.
//
//bneck:locks mailbox
func (a *actor) enqueue(m message) {
	a.mu.Lock()
	a.queue = append(a.queue, m)
	a.mu.Unlock()
}

type stripe struct {
	mu sync.Mutex //bneck:lock stripe
	m  map[int]*actor
}

type runtime struct {
	mu      sync.Mutex //bneck:lock mu
	stripes [4]stripe
	ch      chan message
}

// inOrder follows the documented order exactly: mu, then one stripe, then a
// mailbox via the non-blocking enqueue.
func (rt *runtime) inOrder(k int, m message) {
	rt.mu.Lock()
	s := &rt.stripes[k%4]
	s.mu.Lock()
	s.m[k].enqueue(m)
	s.mu.Unlock()
	rt.mu.Unlock()
}

// muUnderStripe is the deadlock shape the order exists to exclude.
func (rt *runtime) muUnderStripe(k int) {
	s := &rt.stripes[k%4]
	s.mu.Lock()
	rt.mu.Lock() // want "acquires mu while holding a domain stripe"
	rt.mu.Unlock()
	s.mu.Unlock()
}

// twoStripes nests peer stripes, which never happens in the Emit path.
func (rt *runtime) twoStripes(i, j int) {
	rt.stripes[i%4].mu.Lock()
	rt.stripes[j%4].mu.Lock() // want "another stripe is held"
	rt.stripes[j%4].mu.Unlock()
	rt.stripes[i%4].mu.Unlock()
}

// rawSend blocks on a channel while holding mu: mailbox traffic under a
// lock must use the non-blocking enqueue.
func (rt *runtime) rawSend(m message) {
	rt.mu.Lock()
	rt.ch <- m // want "channel send while holding mu"
	rt.mu.Unlock()
}

// reacquire self-deadlocks.
func (rt *runtime) reacquire() {
	rt.mu.Lock()
	rt.mu.Lock() // want "re-acquires mu"
	rt.mu.Unlock()
	rt.mu.Unlock()
}

// stripeThenRelease re-locks in order after releasing: the
// stripe → release → mu → stripe pattern linkActorFor uses.
func (rt *runtime) stripeThenRelease(k int) *actor {
	s := &rt.stripes[k%4]
	s.mu.Lock()
	a := s.m[k]
	s.mu.Unlock()
	if a != nil {
		return a
	}
	rt.mu.Lock()
	s.mu.Lock()
	a = s.m[k]
	s.mu.Unlock()
	rt.mu.Unlock()
	return a
}

// deferred unlocks pin locks to function end; inner tiers stay legal.
func (rt *runtime) deferred(k int, m message) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	s := &rt.stripes[k%4]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[k].enqueue(m)
}
