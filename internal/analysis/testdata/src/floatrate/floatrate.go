// Package floatrate exercises the exact-arithmetic analyzer: float
// arithmetic and comparisons are flagged, integer/rational arithmetic and
// the display-only escapes are not.
package floatrate

type num struct{ n, d int64 }

// exactLess compares rationals with integer cross-multiplication — the
// shape rate.Rate uses.
func exactLess(a, b num) bool {
	return a.n*b.d < b.n*a.d
}

// floatCompare decides an ordering with floats: one ulp can flip a
// bottleneck decision.
func floatCompare(a, b float64) bool {
	return a < b // want "float <"
}

// floatAccumulate sums floats.
func floatAccumulate(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x // want "float \\+="
	}
	return s
}

func floatDivide(a, b float64) float64 {
	return a / b // want "float /"
}

// display is a reporting helper: the whole function is display-only.
//
//bneck:float display-only percentage; never feeds a rate decision.
func display(part, whole float64) float64 {
	return 100 * part / whole
}

// lineEscape escapes a single expression.
func lineEscape(a, b float64) float64 {
	return a * b //bneck:float display only.
}
