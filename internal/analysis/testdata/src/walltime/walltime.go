// Package walltime exercises the ambient-environment analyzer: wall-clock
// reads, environment reads, globally-seeded randomness, and the sanctioned
// escapes.
package walltime

import (
	"math/rand"
	"os"
	"time"
)

// ambient reads everything a deterministic package must not.
func ambient() time.Duration {
	start := time.Now()      // want "wall-clock read"
	_ = os.Getenv("HOME")    // want "environment read"
	_ = rand.Intn(10)        // want "globally-seeded randomness"
	return time.Since(start) // want "wall-clock read"
}

// seeded uses an explicitly seeded source: constructors and methods on the
// seeded generator are exactly what deterministic code should do.
func seeded() int {
	rng := rand.New(rand.NewSource(42))
	return rng.Intn(10)
}

// sanctioned wall-clock reporting: the duration is shown to the operator and
// never feeds results.
//
//bneck:wallclock progress display only; output cannot depend on it.
func sanctioned() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// lineSanctioned escapes a single call instead of the whole function.
func lineSanctioned() int64 {
	t := time.Now().UnixNano() //bneck:wallclock trace-id seed for logging only.
	return t
}

// generator mimics the streaming topology generators: every random draw
// must funnel through one explicitly seeded source so the emitted graph is
// a pure function of the seed. A clean generator produces no findings.
func generator(seed int64, emit func(int)) {
	rng := rand.New(rand.NewSource(seed))
	repeats := []int{0}
	for i := 1; i < 32; i++ {
		// Preferential attachment: endpoint-repeat list + seeded draw.
		peer := repeats[rng.Intn(len(repeats))]
		repeats = append(repeats, peer, i)
		emit(peer)
	}
}

// leakyGenerator drifts off the seed funnel: a global-source draw or a
// wall-clock reseed makes generation differ run to run, which the sharded
// determinism tests would misattribute to the engine.
func leakyGenerator(emit func(int)) {
	rng := rand.New(rand.NewSource(time.Now().UnixNano())) // want "wall-clock read"
	for i := 1; i < 32; i++ {
		if rand.Intn(4) == 0 { // want "globally-seeded randomness"
			emit(rng.Intn(i))
		}
	}
}
