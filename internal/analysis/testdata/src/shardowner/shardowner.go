// Package shardowner models the transport's merge-on-demand sharded
// domains. The flagged shapes reproduce the hazard behind the PR 4
// incarnation accounting: per-shard counters swept mid-window from a
// goroutine that does not own them — a data race the race detector only
// catches when a stress run happens to schedule it.
package shardowner

// domain is the per-shard execution state.
//
//bneck:sharded
type domain struct {
	pkts uint64
	free []int
}

type network struct {
	domains []*domain
}

// domainFor returns the executing shard's own domain.
//
//bneck:owner
func (n *network) domainFor(node int32) *domain {
	return n.domains[int(node)%len(n.domains)]
}

// emit is the hot path: fetch through the owner accessor, then touch fields.
func (n *network) emit(node int32) {
	dom := n.domainFor(node)
	dom.pkts++
	dom.free = append(dom.free, int(node))
}

// record is a method of the sharded struct: owning-shard code by definition.
func (d *domain) record() { d.pkts++ }

// take receives the domain as a parameter: the caller was checked where it
// produced the value.
func take(dom *domain, v int) {
	dom.free = append(dom.free, v)
}

// crossShard reaches into an arbitrary shard's domain.
func (n *network) crossShard(i int) uint64 {
	return n.domains[i].pkts // want "outside its owning shard"
}

// sweepStale is the historical bug shape: merging every shard's counters
// without declaring serial context.
func (n *network) sweepStale() uint64 {
	var total uint64
	for _, d := range n.domains {
		total += d.pkts // want "outside its owning shard"
	}
	return total
}

// sweep is the sanctioned merge-on-demand reader.
//
//bneck:merge runs at a barrier or between runs; sweeping all domains is the design.
func (n *network) sweep() uint64 {
	var total uint64
	for _, d := range n.domains {
		total += d.pkts
	}
	return total
}
