// Package eventkey models the engine's creator-keyed event heap and the
// transport's scheduling surface. The flagged shapes reproduce the PR 4
// stale-incarnation rejoin bug: a rejoin scheduled through the engine's
// un-keyed At side door instead of the transport's global funnel, which made
// the rejoin's position in the event order depend on the partition.
package eventkey

type event struct {
	at  int64
	src int32
	seq uint64
	fn  func()
}

type eventQueue struct{ ev []event }

func (q *eventQueue) push(e event) { q.ev = append(q.ev, e) }

// Engine models the classic serial engine: every event enters its heap
// through a keyed constructor.
type Engine struct {
	events eventQueue
	seq    uint64
	ctr    []uint64
}

// At schedules an external event with the shared ExtCreator sequence.
//
//bneck:keyed assigns the ExtCreator key.
func (e *Engine) At(t int64, fn func()) {
	e.seq++
	e.events.push(event{at: t, src: -1, seq: e.seq, fn: fn})
}

// SendFrom assigns the (time, creator, creator-seq) key.
//
//bneck:keyed
func (e *Engine) SendFrom(creator int32, t int64, fn func()) {
	e.ctr[creator]++
	e.events.push(event{at: t, src: creator, seq: e.ctr[creator], fn: fn})
}

// forgePush fabricates an event outside the keyed constructors, so it
// carries no total-order key at all.
func (e *Engine) forgePush(t int64, fn func()) {
	e.events.push(event{at: t, fn: fn}) // want "direct event-heap push"
}

// transport models the network layer driving the engine.
type transport struct {
	eng *Engine
}

// globalAt is the transport's one blessed funnel for un-keyed scheduling.
//
//bneck:global the single ExtCreator funnel; all serial events flow through here.
func (n *transport) globalAt(t int64, fn func()) {
	n.eng.At(t, fn) //bneck:global see funnel above.
}

// rejoinStale is the PR 4 bug shape: the stale incarnation's rejoin
// scheduled directly on the engine, bypassing the funnel.
func (n *transport) rejoinStale(t int64, fn func()) {
	n.eng.At(t, fn) // want "un-keyed \\(ExtCreator\\) event"
}

// rejoinFixed routes the rejoin through the funnel, sharing the global
// partition-independent order.
func (n *transport) rejoinFixed(t int64, fn func()) {
	n.globalAt(t, fn)
}

// sendKeyed uses the keyed constructor for cross-node traffic: always legal.
func (n *transport) sendKeyed(creator int32, t int64, fn func()) {
	n.eng.SendFrom(creator, t, fn)
}

// popChosen models the schedule explorer's chooser pop (PR 10): it scans the
// heap for the chosen same-time event and removes it in place. Removal never
// pushes — events leave the heap with the key they entered with — so the pop
// path needs no annotation and stays clean.
func (e *Engine) popChosen(k int) event {
	ev := e.events.ev[k]
	e.events.ev[k] = e.events.ev[len(e.events.ev)-1]
	e.events.ev = e.events.ev[:len(e.events.ev)-1]
	return ev
}

// removeViaRepush is the tempting-but-wrong removal: popping the slot and
// re-inserting the displaced tail through push. The analyzer cannot tell a
// re-homed event from a forged one, and the blessed removal (popChosen)
// never needs a push — so an unannotated re-push is flagged like any bypass.
func (e *Engine) removeViaRepush(k int) event {
	ev := e.events.ev[k]
	last := e.events.ev[len(e.events.ev)-1]
	e.events.ev = e.events.ev[:len(e.events.ev)-2]
	e.events.push(last) // want "direct event-heap push"
	return ev
}
