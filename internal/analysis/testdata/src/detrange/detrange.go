// Package detrange exercises the unsorted-map-iteration analyzer: flagged
// loops, the key-collection idiom, the orderfree escape, and empty bodies.
package detrange

import "sort"

// orderLeaks appends in map order — the exact shape of the exp3 oracle bug
// (bottleneck links collected in map order, ordering the error columns).
func orderLeaks(m map[string]int) []string {
	var out []string
	for k, v := range m { // want "map iteration order is randomized"
		if v > 0 {
			out = append(out, k)
		}
	}
	return out
}

// collectUnsorted collects keys but never sorts them, so the idiom does not
// apply.
func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order is randomized"
		out = append(out, k)
	}
	return out
}

// sortedKeys is the blessed fix: collect, sort, then range the slice.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedLater also qualifies with sort.Slice on the collected keys.
func sortedLater(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// annotated sums values: addition over uint64 commutes, so order cannot
// leak.
func annotated(m map[int]uint64) uint64 {
	var sum uint64
	//bneck:orderfree integer summation commutes.
	for _, v := range m {
		sum += v
	}
	return sum
}

// emptyBody cannot observe order.
func emptyBody(m map[int]int) int {
	n := 0
	for range m {
	}
	return n + len(m)
}
