package analysis

import (
	"go/ast"
	"go/types"
)

// Lockorder machine-checks the live runtime's documented two-tier locking
// (live.go, Runtime): the only legal acquisition order is
//
//	mu (runtime lifecycle) → domain stripe → actor mailbox
//
// Lock fields declare their tier with //bneck:lock mu|stripe|mailbox;
// functions that acquire tiers internally declare them with
// //bneck:locks <tier...> so call sites are checked too. The analyzer walks
// each function linearly (branch bodies are explored with a copy of the
// held set) and reports:
//
//   - acquiring an outer-or-equal tier while an inner one is held — in
//     particular taking rt.mu while holding a domain stripe, the deadlock
//     shape the documented order exists to exclude;
//   - holding two domain stripes at once (stripes are peers; Emit-path
//     stripe locks never nest);
//   - a raw channel operation while any runtime lock is held — mailbox
//     traffic under a lock must go through the non-blocking actor.enqueue,
//     never a blocking send.
//
// The analysis is intra-procedural and defer-aware (a deferred Unlock pins
// the lock for the rest of the function, which is conservative and exact
// for the runtime's lock/defer style).
var Lockorder = &Analyzer{
	Name:  "lockorder",
	Doc:   "enforce the live runtime's mu → stripe → mailbox lock order",
	Match: inPackages("bneck/internal/live"),
	Run:   runLockorder,
}

// lock tiers, outermost first.
const (
	tierMu = iota
	tierStripe
	tierMailbox
)

var tierNames = map[string]int{"mu": tierMu, "stripe": tierStripe, "mailbox": tierMailbox}
var tierLabel = [...]string{"mu", "a domain stripe", "an actor mailbox"}

type heldLock struct {
	tier  int
	field *types.Var // nil for tiers acquired via an annotated call
}

type lockIndex struct {
	fields map[*types.Var]int    // lock field → tier
	funcs  map[*types.Func][]int // function → tiers it acquires internally
}

// buildLockIndex collects the //bneck:lock field and //bneck:locks function
// annotations of the package under analysis.
func buildLockIndex(pass *Pass) *lockIndex {
	idx := &lockIndex{
		fields: make(map[*types.Var]int),
		funcs:  make(map[*types.Func][]int),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, fld := range st.Fields.List {
						args, ok := commentGroupDirective(fld.Doc, "lock")
						if !ok {
							args, ok = commentGroupDirective(fld.Comment, "lock")
						}
						if !ok || len(args) == 0 {
							continue
						}
						tier, known := tierNames[args[0]]
						if !known {
							pass.Reportf(fld.Pos(), "unknown //bneck:lock tier %q (want mu, stripe or mailbox)", args[0])
							continue
						}
						for _, name := range fld.Names {
							if v, ok := pass.Info.Defs[name].(*types.Var); ok {
								idx.fields[v] = tier
							}
						}
					}
				}
			case *ast.FuncDecl:
				args, ok := funcAnnotated(d, "locks")
				if !ok {
					continue
				}
				fn, _ := pass.Info.Defs[d.Name].(*types.Func)
				if fn == nil {
					continue
				}
				for _, a := range args {
					tier, known := tierNames[a]
					if !known {
						pass.Reportf(d.Pos(), "unknown //bneck:locks tier %q (want mu, stripe or mailbox)", a)
						continue
					}
					idx.funcs[fn] = append(idx.funcs[fn], tier)
				}
			}
		}
	}
	return idx
}

// lockField resolves the receiver of an x.Lock()/x.Unlock() call to an
// annotated lock field, unwrapping selector chains like rt.incs[i].mu.
func (idx *lockIndex) lockField(info *types.Info, recv ast.Expr) (*types.Var, int, bool) {
	sel, ok := ast.Unparen(recv).(*ast.SelectorExpr)
	if !ok {
		return nil, 0, false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, 0, false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, 0, false
	}
	tier, ok := idx.fields[v]
	return v, tier, ok
}

func runLockorder(pass *Pass) {
	idx := buildLockIndex(pass)
	if len(idx.fields) == 0 && len(idx.funcs) == 0 {
		return
	}
	pass.forEachFunc(func(fn *ast.FuncDecl) {
		walkLocks(pass, idx, fn.Body.List, nil)
		// Function literals run in their own invocation context (goroutine
		// bodies, pooled closures): analyze each exactly once, fresh.
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				walkLocks(pass, idx, lit.Body.List, nil)
			}
			return true
		})
	})
}

// acquire checks that taking tier is legal given the held set.
func acquire(pass *Pass, held []heldLock, tier int, pos ast.Node) bool {
	for _, h := range held {
		if h.tier < tier {
			continue // strictly outer: in order
		}
		switch {
		case h.tier == tierStripe && tier == tierStripe:
			pass.Reportf(pos.Pos(), "acquires a domain stripe while another stripe is held: stripes are peers and never nest (lock order mu → stripe → mailbox, live.Runtime)")
		case h.tier == tier:
			pass.Reportf(pos.Pos(), "re-acquires %s while it is already held (self-deadlock)", tierLabel[tier])
		default:
			pass.Reportf(pos.Pos(), "acquires %s while holding %s: the documented order is mu → stripe → mailbox (live.Runtime)", tierLabel[tier], tierLabel[h.tier])
		}
		return false
	}
	return true
}

// walkLocks linearly interprets stmts, threading the held-lock set; nested
// control-flow bodies are explored with a copy (locks must balance within
// their block). Function literals start fresh: they run on their own
// goroutine or are invoked elsewhere.
func walkLocks(pass *Pass, idx *lockIndex, stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, stmt := range stmts {
		held = walkLockStmt(pass, idx, stmt, held)
	}
	return held
}

func walkLockStmt(pass *Pass, idx *lockIndex, stmt ast.Stmt, held []heldLock) []heldLock {
	branch := func(body ...ast.Stmt) {
		walkLocks(pass, idx, body, append([]heldLock(nil), held...))
	}
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return walkLockExpr(pass, idx, s.X, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			held = walkLockExpr(pass, idx, rhs, held)
		}
		return held
	case *ast.DeferStmt:
		// A deferred Unlock releases at return; for linear analysis the lock
		// simply stays held to the end. Deferred Locks (pathological) still
		// get their acquisition check.
		if call := s.Call; call != nil {
			if name, v, tier, ok := lockCall(pass, idx, call); ok && name == "Lock" {
				if acquire(pass, held, tier, s) {
					held = append(held, heldLock{tier: tier, field: v})
				}
			}
		}
		return held
	case *ast.SendStmt:
		if len(held) > 0 {
			pass.Reportf(s.Pos(), "channel send while holding %s: mailbox sends under runtime locks must use the non-blocking actor enqueue, never a raw channel", tierLabel[maxTier(held)])
		}
		return held
	case *ast.BlockStmt:
		branch(s.List...)
		return held
	case *ast.IfStmt:
		branch(s.Body.List...)
		if s.Else != nil {
			branch(s.Else)
		}
		return held
	case *ast.ForStmt:
		branch(s.Body.List...)
		return held
	case *ast.RangeStmt:
		branch(s.Body.List...)
		return held
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				branch(cc.Body...)
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				branch(cc.Body...)
			}
		}
		return held
	case *ast.SelectStmt:
		if len(held) > 0 {
			pass.Reportf(s.Pos(), "select (blocking channel wait) while holding %s", tierLabel[maxTier(held)])
		}
		return held
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			held = walkLockExpr(pass, idx, r, held)
		}
		return held
	case *ast.GoStmt:
		return held // new goroutine: fresh lock context (FuncLit walked via Inspect below)
	default:
		return held
	}
}

// lockCall classifies call as a Lock/RLock/Unlock/RUnlock on an annotated
// lock field.
func lockCall(pass *Pass, idx *lockIndex, call *ast.CallExpr) (name string, v *types.Var, tier int, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		name = "Lock"
	case "Unlock", "RUnlock":
		name = "Unlock"
	default:
		return "", nil, 0, false
	}
	v, tier, ok = idx.lockField(pass.Info, sel.X)
	return name, v, tier, ok
}

func maxTier(held []heldLock) int {
	m := held[0].tier
	for _, h := range held {
		if h.tier > m {
			m = h.tier
		}
	}
	return m
}

// walkLockExpr handles the expression forms that matter: lock method calls,
// calls to //bneck:locks-annotated functions, receives, and function
// literals (analyzed fresh).
func walkLockExpr(pass *Pass, idx *lockIndex, expr ast.Expr, held []heldLock) []heldLock {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		if name, v, tier, ok := lockCall(pass, idx, e); ok {
			if name == "Lock" {
				if acquire(pass, held, tier, e) {
					held = append(held, heldLock{tier: tier, field: v})
				}
			} else {
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].field == v {
						held = append(held[:i:i], held[i+1:]...)
						break
					}
				}
			}
			return held
		}
		if fn := calleeFunc(pass.Info, e); fn != nil {
			for _, tier := range idx.funcs[fn] {
				acquire(pass, held, tier, e)
			}
		}
		for _, arg := range e.Args {
			held = walkLockExpr(pass, idx, arg, held)
		}
		return held
	case *ast.UnaryExpr:
		if e.Op.String() == "<-" && len(held) > 0 {
			pass.Reportf(e.Pos(), "channel receive while holding %s", tierLabel[maxTier(held)])
		}
		return held
	case *ast.FuncLit:
		return held // analyzed separately, in its own invocation context
	default:
		return held
	}
}
