// Package analysis is bnecklint's analyzer suite: seven repo-specific static
// checks that machine-enforce the determinism and lock-discipline invariants
// the simulator's correctness claims rest on (DESIGN.md §12). The paper's
// quiescence/validation methodology only means something if every run is
// reproducible: byte-identical creator-keyed event order at every shard
// count, no wall-clock or unseeded randomness in deterministic packages,
// the live runtime's documented lock order, per-shard domains touched only
// by their owners, speculative journals externalized only at their commit
// point, and exact 128-bit rate arithmetic. Each analyzer makes one of
// those invariant classes unwritable instead of merely documented.
//
// The framework mirrors golang.org/x/tools/go/analysis — Analyzer, Pass,
// Diagnostic, an analysistest-style fixture harness — but is built on the
// standard library alone (go/ast, go/parser, go/types with a source
// importer), so the module keeps its zero-dependency property.
//
// Analyzers are steered in source by //bneck: directives (written exactly
// like //go: directives — no space, attached as a doc or trailing comment):
//
//	//bneck:orderfree        this map loop is commutative; order cannot leak
//	//bneck:wallclock        this wall-clock/env read is sanctioned
//	//bneck:float            float arithmetic for reporting only
//	//bneck:global           blessed funnel for engine global (barrier) events
//	//bneck:keyed            pushes pre-keyed events into an event heap
//	//bneck:sharded          struct whose fields are per-shard owned state
//	//bneck:owner            returns the executing shard's own domain
//	//bneck:merge            serial-context merge-on-demand reader/writer
//	//bneck:journal          field withholding speculative cross-shard sends
//	//bneck:commit           sanctioned externalization point of journals
//	//bneck:lock <tier>      lock field; tier is mu, stripe or mailbox
//	//bneck:locks <tier...>  calling this function acquires these tiers
//
// Every directive is an escape hatch with a documented burden: the line it
// sits on should say why the invariant holds anyway.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Run inspects a type-checked package
// through its Pass and reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is a one-line description (shown by bnecklint -list).
	Doc string
	// Match reports whether the analyzer applies to a package import path.
	// The driver consults it; the test harness bypasses it so fixture
	// packages are always analyzed.
	Match func(pkgPath string) bool
	// Run performs the analysis.
	Run func(*Pass)
}

// A Pass is one (analyzer, package) execution: the syntax, the type
// information, and the diagnostic sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags      []Diagnostic
	directives map[*ast.File][]directive
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings reported so far, in position order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool { return p.diags[i].Pos < p.diags[j].Pos })
	return p.diags
}

// directive is one //bneck:NAME [args...] comment, recorded by file line.
type directive struct {
	name string
	args []string
	line int
}

const directivePrefix = "//bneck:"

// parseDirective splits a //bneck:NAME arg arg comment into its parts.
func parseDirective(text string) (name string, args []string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", nil, false
	}
	fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
	if len(fields) == 0 {
		return "", nil, false
	}
	return fields[0], fields[1:], true
}

// fileDirectives lazily indexes a file's //bneck: comments.
func (p *Pass) fileDirectives(f *ast.File) []directive {
	if p.directives == nil {
		p.directives = make(map[*ast.File][]directive)
	}
	if ds, ok := p.directives[f]; ok {
		return ds
	}
	var ds []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if name, args, ok := parseDirective(c.Text); ok {
				ds = append(ds, directive{name: name, args: args, line: p.Fset.Position(c.Pos()).Line})
			}
		}
	}
	p.directives[f] = ds
	return ds
}

// fileOf returns the *ast.File containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// lineAnnotated reports whether a //bneck:name directive sits on the same
// line as pos or on the line immediately above it — the escape-hatch
// placement for statements (trailing comment or its own line just before).
func (p *Pass) lineAnnotated(pos token.Pos, name string) bool {
	f := p.fileOf(pos)
	if f == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	for _, d := range p.fileDirectives(f) {
		if d.name == name && (d.line == line || d.line == line-1) {
			return true
		}
	}
	return false
}

// commentGroupDirective scans a doc/trailing comment group for a directive.
func commentGroupDirective(cg *ast.CommentGroup, name string) ([]string, bool) {
	if cg == nil {
		return nil, false
	}
	for _, c := range cg.List {
		if n, args, ok := parseDirective(c.Text); ok && n == name {
			return args, true
		}
	}
	return nil, false
}

// funcAnnotated reports whether fn's doc comment carries //bneck:name,
// returning the directive's arguments.
func funcAnnotated(fn *ast.FuncDecl, name string) ([]string, bool) {
	return commentGroupDirective(fn.Doc, name)
}

// forEachFunc invokes visit for every function declaration with a body.
func (p *Pass) forEachFunc(visit func(fn *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				visit(fn)
			}
		}
	}
}

// inPackages returns a Match function accepting exactly the given import
// paths (fixture packages are matched by the test harness, not here).
func inPackages(paths ...string) func(string) bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return func(pkg string) bool { return set[pkg] }
}

// DeterministicPackages are the packages whose execution must be a pure
// function of their inputs: the simulator engines, the simulated transport,
// the experiment harness, the scenario runner, the waterfill oracle, the
// path policy and the topology generators (byte-identical graphs per seed
// is what makes the sharded determinism tests meaningful). detrange and
// walltime enforce it; the examples that promise reproducible output opt
// into walltime too.
var DeterministicPackages = []string{
	"bneck/internal/sim",
	"bneck/internal/network",
	"bneck/internal/exp",
	"bneck/internal/scenario",
	"bneck/internal/waterfill",
	"bneck/internal/policy",
	"bneck/internal/topology",
}

// namedType returns the named type (and its package) behind t, unwrapping
// pointers and aliases.
func namedType(t types.Type) (*types.Named, bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u, true
		default:
			return nil, false
		}
	}
}

// typeIs reports whether t is (a pointer to) the named type pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	n, ok := namedType(t)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name {
		return false
	}
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (method or package-level function), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
