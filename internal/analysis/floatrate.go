package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floatrate forbids floating-point arithmetic and comparison in the exact
// rate pipeline (internal/rate and the waterfill oracle). Max-min fairness
// is decided by exact comparisons of b/g rationals held as 128-bit
// numerator/denominator pairs; one float64 round-trip in a comparison path
// can flip a bottleneck decision by an ulp and desynchronize the
// distributed protocol from the centralized oracle. Conversions to float64
// for reporting are fine — arithmetic and ordering on floats are not,
// unless the function carries //bneck:float declaring the result
// display-only.
var Floatrate = &Analyzer{
	Name:  "floatrate",
	Doc:   "forbid float arithmetic/comparison in exact-rate packages",
	Match: inPackages("bneck/internal/rate", "bneck/internal/waterfill"),
	Run:   runFloatrate,
}

var floatOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true, token.QUO_ASSIGN: true,
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func runFloatrate(pass *Pass) {
	pass.forEachFunc(func(fn *ast.FuncDecl) {
		if _, ok := funcAnnotated(fn, "float"); ok {
			return
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			var op token.Token
			var pos token.Pos
			var operands []ast.Expr
			switch e := n.(type) {
			case *ast.BinaryExpr:
				op, pos, operands = e.Op, e.OpPos, []ast.Expr{e.X, e.Y}
			case *ast.AssignStmt:
				op, pos, operands = e.Tok, e.TokPos, e.Lhs
			default:
				return true
			}
			if !floatOps[op] {
				return true
			}
			for _, x := range operands {
				if isFloat(pass.Info, x) {
					if pass.lineAnnotated(pos, "float") {
						return true
					}
					pass.Reportf(pos, "float %s in an exact-rate package: rate decisions must use 128-bit rational arithmetic (rate.Rate); annotate //bneck:float only for display-only paths", op)
					return true
				}
			}
			return true
		})
	})
}
