package analysis

// All returns the bnecklint analyzer suite in stable order. Each analyzer
// machine-enforces one invariant class the paper's correctness claims rest
// on; DESIGN.md §12 maps analyzer → invariant → prevented failure.
func All() []*Analyzer {
	return []*Analyzer{
		Detrange,
		Walltime,
		Lockorder,
		Eventkey,
		Shardowner,
		Specjournal,
		Floatrate,
	}
}
