package analysis

import (
	"go/ast"
	"go/types"
)

// Detrange flags iteration over a map in a deterministic package. Go
// randomizes map order per run, so any map loop whose effects depend on
// visit order — appending to a slice, emitting output, accumulating
// floating-point sums, scheduling events — silently breaks the repo's
// byte-identical-runs contract (CSVs, golden scenario assertions, the
// shard-count determinism suite).
//
// Two shapes are permitted without annotation:
//
//   - the key-collection idiom: a loop whose body only appends the keys to
//     a slice that the same function later sorts (collect → sort → range the
//     slice is exactly the fix this analyzer asks for);
//   - an empty body (counting via len is better still, but an empty body
//     cannot observe order).
//
// Anything else needs a //bneck:orderfree directive on or above the loop,
// asserting the body is commutative (a pure merge into an order-insensitive
// aggregate) with a one-line justification.
var Detrange = &Analyzer{
	Name:  "detrange",
	Doc:   "flag unsorted map iteration in deterministic packages",
	Match: inPackages(DeterministicPackages...),
	Run:   runDetrange,
}

func runDetrange(pass *Pass) {
	pass.forEachFunc(func(fn *ast.FuncDecl) {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.lineAnnotated(rng.Pos(), "orderfree") {
				return true
			}
			if len(rng.Body.List) == 0 {
				return true
			}
			if collectsSortedKeys(pass, fn, rng) {
				return true
			}
			pass.Reportf(rng.Pos(), "map iteration order is randomized: sort the keys first, or annotate //bneck:orderfree with why the body commutes")
			return true
		})
	})
}

// collectsSortedKeys recognizes the key-collection idiom: every statement of
// the loop body is `s = append(s, ...)` for slice variables that the
// enclosing function later passes to a sort.
func collectsSortedKeys(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) bool {
	var targets []types.Object
	for _, stmt := range rng.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
			return false
		}
		obj := pass.Info.Uses[lhs]
		if obj == nil {
			obj = pass.Info.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		targets = append(targets, obj)
	}
	if len(targets) == 0 {
		return false
	}
	for _, obj := range targets {
		if !sortedAfter(pass, fn, rng, obj) {
			return false
		}
	}
	return true
}

// sortFuncs are the sorters the key-collection idiom accepts.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether obj is passed to a recognized sort function
// somewhere in fn after the range loop.
func sortedAfter(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return true
		}
		fun := calleeFunc(pass.Info, call)
		if fun == nil || fun.Pkg() == nil {
			return true
		}
		names, ok := sortFuncs[fun.Pkg().Path()]
		if !ok || !names[fun.Name()] || len(call.Args) == 0 {
			return true
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pass.Info.Uses[arg] == obj {
			found = true
		}
		return true
	})
	return found
}
