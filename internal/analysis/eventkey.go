package analysis

import (
	"go/ast"
	"go/types"
)

// Eventkey enforces the creator-keyed scheduling discipline that makes runs
// byte-identical at every shard count (DESIGN.md §9–§10): every event both
// engines execute is ordered by (time, creator node, creator sequence), and
// that key is only assigned by the blessed constructors — sim.Engine.SendFrom
// and sim.ShardedEngine.SendAt (reached in the transport through
// taskEmitter/serialLinkSched/linkSched). Two bypass shapes are flagged:
//
//   - in the transport (internal/network): a direct call to the engines'
//     ExtCreator entry points At/After/DaemonAt. Those schedule un-keyed
//     global events; the PR 4 stale-incarnation rejoin slipped through
//     exactly this kind of side door. All global (barrier) scheduling must
//     flow through the one funnel annotated //bneck:global, so churn,
//     dynamics and sampling share a single, partition-independent order;
//
//   - in the engine package itself: a push into an eventQueue heap from any
//     function not annotated //bneck:keyed. Only the keyed constructors
//     (and the re-homing/ingest paths that move already-keyed events)
//     may touch the heaps, so no event can exist without a total-order key.
var Eventkey = &Analyzer{
	Name:  "eventkey",
	Doc:   "require creator-keyed scheduling; flag un-keyed engine bypasses",
	Match: inPackages("bneck/internal/network", "bneck/internal/sim"),
	Run:   runEventkey,
}

// extCreatorEntryPoints are the engine methods that schedule with the
// shared ExtCreator bucket instead of a node key.
var extCreatorEntryPoints = map[string]bool{"At": true, "After": true, "DaemonAt": true}

func runEventkey(pass *Pass) {
	pass.forEachFunc(func(fn *ast.FuncDecl) {
		_, global := funcAnnotated(fn, "global")
		_, keyed := funcAnnotated(fn, "keyed")
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.MethodVal {
				return true
			}
			name := sel.Sel.Name

			// Rule 1 (transport side): ExtCreator scheduling outside the
			// annotated global-event funnel.
			if extCreatorEntryPoints[name] && isEngineType(pass, s.Recv()) {
				if !global && !pass.lineAnnotated(call.Pos(), "global") {
					pass.Reportf(call.Pos(), "direct %s call schedules an un-keyed (ExtCreator) event: cross-node traffic must use the creator-keyed SendFrom/SendAt constructors, and global barrier events must flow through the //bneck:global funnel", name)
				}
				return true
			}

			// Rule 2 (engine side): heap pushes outside keyed constructors.
			if name == "push" && isEventQueue(pass, s.Recv()) {
				if !keyed && !pass.lineAnnotated(call.Pos(), "keyed") {
					pass.Reportf(call.Pos(), "direct event-heap push bypasses the (time, creator, creator-seq) keying: only //bneck:keyed constructors may push, so every event carries a partition-independent total-order key")
				}
				return true
			}
			return true
		})
	})
}

// isEngineType reports whether t is (a pointer to) one of the simulator
// engines. The check is by type identity against the engine package when it
// is imported, and by name when the engine package itself (or a fixture
// modeling it) is under analysis.
func isEngineType(pass *Pass, t types.Type) bool {
	n, ok := namedType(t)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != "Engine" && obj.Name() != "ShardedEngine" {
		return false
	}
	return obj.Pkg() != nil
}

// isEventQueue reports whether t is an event-queue heap of the package under
// analysis (the engine package, or an analyzer fixture modeling it).
func isEventQueue(pass *Pass, t types.Type) bool {
	n, ok := namedType(t)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "eventQueue" && obj.Pkg() == pass.Pkg
}
