// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want "regexp" comments — the same contract as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the repo's
// dependency-free analysis framework.
//
// Fixture packages live under testdata/src/<name>. Every line that should
// produce a diagnostic carries a trailing comment
//
//	// want "regexp"
//
// and the harness fails the test on any unmatched diagnostic or unmet
// expectation. Fixtures may import real module packages (fixtures model the
// simulator's own shapes, e.g. bneck/internal/sim for eventkey).
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"bneck/internal/analysis"
)

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(".*")\s*$`)

// Run analyzes each fixture package under testdata/src and compares
// diagnostics with the fixtures' want comments. The analyzer's Match
// function is intentionally bypassed: fixtures stand in for the real
// packages.
func Run(t *testing.T, testdata string, az *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fixture := range fixtures {
		t.Run(az.Name+"/"+fixture, func(t *testing.T) {
			runOne(t, testdata, az, fixture)
		})
	}
}

func runOne(t *testing.T, testdata string, az *analysis.Analyzer, fixture string) {
	t.Helper()
	modRoot, err := analysis.FindModRoot(testdata)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	dir := testdata + "/src/" + fixture
	pkg, err := loader.LoadDir(dir, fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}

	wants := collectWants(t, pkg)
	pass := pkg.NewPass(az)
	az.Run(pass)

	for _, d := range pass.Diagnostics() {
		pos := pkg.Fset.Position(d.Pos)
		if w := matchWant(wants, pos, d.Message); w == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// collectWants extracts the want expectations of every fixture file.
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pattern, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("%s: bad want comment %s: %v", pkg.Fset.Position(c.Pos()), c.Text, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s: bad want regexp: %v", pkg.Fset.Position(c.Pos()), err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

func matchWant(wants []*want, pos token.Position, msg string) *want {
	for _, w := range wants {
		if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.hit = true
			return w
		}
	}
	return nil
}

// Format renders a diagnostic list for debugging fixture failures.
func Format(pkg *analysis.Package, diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s: %s\n", pkg.Fset.Position(d.Pos), d.Message)
	}
	return b.String()
}
