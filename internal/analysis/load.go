package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewPass prepares a Pass running az over the package.
func (pkg *Package) NewPass(az *Analyzer) *Pass {
	return &Pass{
		Analyzer: az,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
}

// Loader parses and type-checks packages of this module without any
// go/packages dependency: module-local import paths resolve to directories
// under the module root, everything else (the standard library) goes through
// the go/importer source importer, which works offline from GOROOT.
type Loader struct {
	ModRoot string
	ModPath string
	Fset    *token.FileSet

	std     types.Importer
	loaded  map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at modRoot (its go.mod
// names the module path).
func NewLoader(modRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", modRoot)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		loaded:  make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Import implements types.Importer: module-local paths load recursively,
// anything else defers to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.LoadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadPath loads a module-local package by import path.
func (l *Loader) LoadPath(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	return l.LoadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path)
}

// LoadDir parses and type-checks the package in dir under the given import
// path. Test files are skipped: the invariants guard the shipped simulator,
// and in-package test files would change the package's type universe.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if !buildTagOK(src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.loaded[path] = pkg
	return pkg, nil
}

// buildTagOK reports whether the file's //go:build constraint (if any) is
// satisfied by the default build: no custom tags, the host OS/arch, gc, and
// any go1.N version tag. The analysis must see exactly the files a plain
// `go build` compiles — internal/network's bug-double files, for example,
// gate mutually exclusive const declarations behind mc_* tags, and loading
// them all at once is a redeclaration error, not a finding.
func buildTagOK(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if expr, err := constraint.Parse(line); err == nil {
				return expr.Eval(defaultBuildTag)
			}
			continue
		}
		// Anything else (the package clause, a /* block) ends the region
		// where a //go:build line may appear.
		break
	}
	return true
}

func defaultBuildTag(tag string) bool {
	return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" ||
		strings.HasPrefix(tag, "go1.")
}

// Expand resolves CLI package patterns relative to the module root: "./..."
// (every package in the module), "./dir/..." (every package under dir), or a
// single "./dir". Results are import paths in sorted order.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "." || pat == "./" {
			pat = ""
		}
		pat = strings.TrimPrefix(pat, "./")
		root := filepath.Join(l.ModRoot, filepath.FromSlash(pat))
		if !recursive {
			path := l.ModPath
			if pat != "" {
				path += "/" + pat
			}
			add(path)
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
				return nil
			}
			rel, err := filepath.Rel(l.ModRoot, filepath.Dir(p))
			if err != nil {
				return err
			}
			path := l.ModPath
			if rel != "." {
				path += "/" + filepath.ToSlash(rel)
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
	}
	sort.Strings(out)
	return out, nil
}

// FindModRoot walks up from dir to the nearest go.mod.
func FindModRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}
