package analysis_test

import (
	"testing"

	"bneck/internal/analysis"
	"bneck/internal/analysis/analysistest"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Detrange, "detrange")
}

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Walltime, "walltime")
}

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Lockorder, "lockorder")
}

func TestEventkey(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Eventkey, "eventkey")
}

func TestShardowner(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Shardowner, "shardowner")
}

func TestSpecjournal(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Specjournal, "specjournal")
}

func TestFloatrate(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Floatrate, "floatrate")
}

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, az := range analysis.All() {
		if az.Name == "" || az.Doc == "" || az.Match == nil || az.Run == nil {
			t.Errorf("analyzer %q is incompletely defined", az.Name)
		}
		if seen[az.Name] {
			t.Errorf("duplicate analyzer name %q", az.Name)
		}
		seen[az.Name] = true
	}
	if len(seen) != 7 {
		t.Errorf("suite has %d analyzers, want 7", len(seen))
	}
}

// TestDeterminismScope pins the boundary the schedule explorer depends on:
// the engine package must stay under the determinism lints (the explorer's
// replay guarantee is built on the engine being a pure function of its
// inputs and the recorded picks), while internal/mc itself must stay out —
// its swarm strategy and churn fuzzer draw from seeded math/rand by design,
// and adding it to DeterministicPackages would flag every chooser.
func TestDeterminismScope(t *testing.T) {
	in := map[string]bool{}
	for _, p := range analysis.DeterministicPackages {
		in[p] = true
	}
	if !in["bneck/internal/sim"] {
		t.Error("bneck/internal/sim left DeterministicPackages: the chooser hook must not cost the engine its determinism lint")
	}
	if in["bneck/internal/mc"] {
		t.Error("bneck/internal/mc joined DeterministicPackages: the explorer's seeded randomness is intentional")
	}
}

// TestSelfLint runs the whole suite over the module itself: the tree must
// stay finding-free, so the gate `make lint` enforces cannot rot between CI
// runs. Skipped in -short mode (it typechecks most of the module).
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint typechecks the whole module")
	}
	modRoot, err := analysis.FindModRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		var active []*analysis.Analyzer
		for _, az := range analysis.All() {
			if az.Match(path) {
				active = append(active, az)
			}
		}
		if len(active) == 0 {
			continue
		}
		pkg, err := loader.LoadPath(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		for _, az := range active {
			pass := pkg.NewPass(az)
			az.Run(pass)
			for _, d := range pass.Diagnostics() {
				t.Errorf("%s: [%s] %s", pkg.Fset.Position(d.Pos), az.Name, d.Message)
			}
		}
	}
}
