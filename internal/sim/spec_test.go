package sim

import (
	"fmt"
	"testing"
	"time"
)

// specTrace runs a two-shard workload — a local self-chain on node 0 plus a
// cross-shard ping-pong with node 1 — and returns each node's observation
// sequence: the virtual times at which its events executed, in execution
// order. Windows on different shards are causally independent, so their
// global interleaving is schedule-dependent; what every valid schedule must
// reproduce exactly is each node's own sequence.
func specTrace(t *testing.T, speculate bool) ([2][]string, SpeculationStats) {
	t.Helper()
	const L = time.Microsecond
	se := NewSharded(2)
	se.SetParallel(false)
	se.SetSpeculation(speculate)
	ringTopology(se, 2, 2, L)
	var trace [2][]string
	record := func(node int32) {
		trace[node] = append(trace[node], fmt.Sprintf("%v", se.NowAt(node)))
	}
	// Local chain on shard 0: 40 events spaced 300 ns — dense enough that a
	// speculative window covers many of them.
	var chain func(step int)
	chain = func(step int) {
		record(0)
		if step == 0 {
			return
		}
		se.SendAt(0, 0, se.NowAt(0)+300*time.Nanosecond, func() { chain(step - 1) })
	}
	// Cross-shard ping-pong: node 0 → node 1 at the lookahead bound, node 1
	// answers, twice. During a speculative attempt the first send is
	// journaled, and shard 0's own chain events beyond its arrival force a
	// park — the misspeculation shape the replay path exists for.
	var pong func(hops int, from, to int32)
	pong = func(hops int, from, to int32) {
		record(from)
		if hops == 0 {
			return
		}
		se.SendAt(from, to, se.NowAt(from)+L, func() { pong(hops-1, to, from) })
	}
	se.At(0, func() { chain(39) })
	se.At(100*time.Nanosecond, func() { pong(4, 0, 1) })
	se.Run()
	return trace, se.SpecStats()
}

// TestSpeculationReplayForced pins the misspeculation path deterministically:
// inline (sequential) execution, a journaled cross-shard arrival overtaken
// by the journaling shard's own later events, a park, and a conservative
// replay of the suffix — with a byte-identical execution trace to the
// speculation-off run.
func TestSpeculationReplayForced(t *testing.T) {
	base, off := specTrace(t, false)
	spec, on := specTrace(t, true)
	if off.Attempts != 0 {
		t.Fatalf("speculation off recorded %d attempts", off.Attempts)
	}
	if on.Attempts == 0 {
		t.Fatal("speculation on never attempted an optimistic window")
	}
	if on.Replays == 0 {
		t.Fatal("cross-shard traffic inside the attempt must force a replay")
	}
	if on.Events == 0 {
		t.Fatal("no events executed speculatively")
	}
	for node := range base {
		if len(base[node]) != len(spec[node]) {
			t.Fatalf("node %d trace lengths differ: %d vs %d",
				node, len(base[node]), len(spec[node]))
		}
		for i := range base[node] {
			if base[node][i] != spec[node][i] {
				t.Fatalf("node %d traces diverge at %d: %q vs %q",
					node, i, base[node][i], spec[node][i])
			}
		}
	}
}

// TestSpeculationCommitsQuiescentTail: a workload with no cross-shard
// traffic at all — one shard draining a local chain, the cut idle — is the
// quiescence-tail regime speculation targets: attempts commit, none replay,
// and the chain's events execute inside optimistic windows.
func TestSpeculationCommitsQuiescentTail(t *testing.T) {
	const L = time.Microsecond
	se := NewSharded(2)
	se.SetParallel(false)
	se.SetSpeculation(true)
	ringTopology(se, 2, 2, L)
	n := 0
	var chain func(step int)
	chain = func(step int) {
		n++
		if step == 0 {
			return
		}
		se.SendAt(0, 0, se.NowAt(0)+L/2, func() { chain(step - 1) })
	}
	se.At(0, func() { chain(200) })
	se.Run()
	st := se.SpecStats()
	if n != 201 {
		t.Fatalf("chain ran %d events, want 201", n)
	}
	if st.Commits == 0 {
		t.Fatalf("idle-cut chain committed no attempts: %+v", st)
	}
	if st.Replays != 0 {
		t.Fatalf("idle-cut chain replayed: %+v", st)
	}
	if st.Events == 0 {
		t.Fatalf("no events executed speculatively: %+v", st)
	}
}

// TestSpeculationGateVeto: a transport gate returning false suppresses every
// attempt; results are untouched.
func TestSpeculationGateVeto(t *testing.T) {
	const L = time.Microsecond
	se := NewSharded(2)
	se.SetParallel(false)
	se.SetSpeculation(true)
	se.SetSpecGate(func() bool { return false })
	ringTopology(se, 2, 2, L)
	n := 0
	var chain func(step int)
	chain = func(step int) {
		n++
		if step == 0 {
			return
		}
		se.SendAt(0, 0, se.NowAt(0)+L, func() { chain(step - 1) })
	}
	se.At(0, func() { chain(50) })
	se.Run()
	if n != 51 {
		t.Fatalf("chain ran %d events, want 51", n)
	}
	if st := se.SpecStats(); st.Attempts != 0 {
		t.Fatalf("gate did not veto: %+v", st)
	}
}

// TestShardedSpeculationStress hammers the speculative fork/join under
// forced parallel execution: cross-shard ring chains that park attempts
// almost immediately (journal + replay under contention) interleaved with
// long local chains that commit. Run with -race in CI, this is the
// speculation data-race test; counts and quiescence must come out exact.
func TestShardedSpeculationStress(t *testing.T) {
	const (
		nodes   = 32
		shards  = 8
		chains  = 48
		hops    = 200
		locals  = 8
		steps   = 400
		latency = time.Microsecond
	)
	se := NewSharded(shards)
	se.SetParallel(true)
	se.SetSpeculation(true)
	se.SetWindowBatch(4)
	ringTopology(se, nodes, shards, latency)
	var delivered [chains]int
	var hop func(chain, node, remaining int)
	hop = func(chain, node, remaining int) {
		delivered[chain]++
		if remaining == 0 {
			return
		}
		next := (node + 1) % nodes
		se.SendAt(int32(node), int32(next), se.NowAt(int32(node))+latency, func() {
			hop(chain, next, remaining-1)
		})
	}
	var localRan [locals]int
	var local func(idx, node, remaining int)
	local = func(idx, node, remaining int) {
		localRan[idx]++
		if remaining == 0 {
			return
		}
		se.SendAt(int32(node), int32(node), se.NowAt(int32(node))+latency/2, func() {
			local(idx, node, remaining-1)
		})
	}
	for c := 0; c < chains; c++ {
		c := c
		start := c % nodes
		se.At(time.Duration(c)*10*time.Nanosecond, func() { hop(c, start, hops) })
	}
	for i := 0; i < locals; i++ {
		i := i
		node := (i * shards) % nodes // one per shard
		se.At(time.Duration(i)*7*time.Nanosecond, func() { local(i, node, steps) })
	}
	se.Run()
	for c, got := range delivered {
		if got != hops+1 {
			t.Fatalf("chain %d delivered %d hops, want %d", c, got, hops+1)
		}
	}
	for i, got := range localRan {
		if got != steps+1 {
			t.Fatalf("local chain %d ran %d steps, want %d", i, got, steps+1)
		}
	}
	if se.Pending() != 0 {
		t.Fatalf("pending %d after Run", se.Pending())
	}
}

// TestShardedSpeculationMatchesConservative: the same stress workload,
// speculation on vs. off, inline for exact trace capture — quiescence and
// event totals must match exactly.
func TestShardedSpeculationMatchesConservative(t *testing.T) {
	run := func(speculate bool) (Time, uint64) {
		const (
			nodes   = 16
			shards  = 4
			chains  = 12
			hops    = 120
			latency = time.Microsecond
		)
		se := NewSharded(shards)
		se.SetParallel(false)
		se.SetSpeculation(speculate)
		ringTopology(se, nodes, shards, latency)
		var hop func(node, remaining int)
		hop = func(node, remaining int) {
			if remaining == 0 {
				return
			}
			next := (node + 1) % nodes
			se.SendAt(int32(node), int32(next), se.NowAt(int32(node))+latency, func() {
				hop(next, remaining-1)
			})
		}
		for c := 0; c < chains; c++ {
			start := c % nodes
			se.At(time.Duration(c)*10*time.Nanosecond, func() { hop(start, hops) })
		}
		q := se.Run()
		return q, se.Events()
	}
	qOff, evOff := run(false)
	qOn, evOn := run(true)
	if qOff != qOn {
		t.Fatalf("quiescence differs: off %v, on %v", qOff, qOn)
	}
	if evOff != evOn {
		t.Fatalf("event totals differ: off %d, on %d", evOff, evOn)
	}
}
