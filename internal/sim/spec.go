package sim

import "runtime"

// Optimistic window execution.
//
// The conservative engine (sharded.go) never lets a shard run past the
// lookahead bound L — the minimum latency of any cut link — because a
// neighbor *could* send it something arriving that soon. At and near
// quiescence that pessimism is maximal: cut wires are idle, nothing is in
// flight, and yet every L of virtual time still costs a barrier.
//
// Speculation replaces a fork/join of conservative windows with one long
// window of specMult×L, executed under a journaling discipline that makes
// misspeculation detectable *before* any wrongly-ordered event runs, so
// no work is ever rolled back:
//
//   - During an attempt no cross-shard send is delivered. SendAt appends it
//     to the sending shard's journal (seShard.specOut) instead; the journal
//     is externalized into destination heaps only at the join (specJoin,
//     the single //bneck:commit point).
//
//   - Before executing an event at time t, a shard publishes its horizon —
//     a lower bound on the arrival time of any cross-shard influence it can
//     still produce: min(earliest journaled arrival, t+L). Horizons are
//     monotone non-decreasing (every new journaled arrival a satisfies
//     a ≥ t+L ≥ every previously published value), so a stale atomic read
//     by another shard is merely conservative, never unsafe.
//
//   - A shard executes t only while t is strictly below every other
//     shard's horizon and below its own earliest journaled arrival (the
//     GVT rule: no event may execute at or beyond any undelivered
//     arrival — even one's own withheld delivery can, once externalized
//     and executed, emit a next hop landing back before t). When the
//     check fails — a withheld delivery would be overtaken — the shard
//     parks: it simply stops, its suffix intact in its heap. That is the whole "replay": the unexecuted suffix re-runs
//     under ordinary conservative windows after the join. Events that did
//     execute executed in a globally key-consistent order, so results are
//     byte-identical to the conservative schedule at every setting.
//
//   - An attempt commits when every participating shard reaches the
//     speculative horizon without parking. The adaptive controller then
//     doubles specMult (halving it after a park, with one forced
//     conservative round as cooldown).
//
// Attempts never cross a global event (churn, topology dynamics, sampling):
// the speculative horizon is capped by the next global timestamp exactly
// like a conservative batch, so barrier events still see every shard
// quiescent. The transport may install an admission gate (SetSpecGate) that
// vetoes attempts while any cut wire is busy — in-flight cross-shard
// traffic at the fork is a near-certain park.
const (
	specMultStart = 8   // initial speculative window length, in lookaheads
	specMultMin   = 2   // below this a conservative batch is strictly better
	specMultMax   = 256 // quiescence tails commit repeatedly; cap the growth
	// specSpinLimit bounds how long a blocked shard busy-waits for other
	// shards' horizons to advance before parking. Spinning only helps in
	// parallel mode (another goroutine must run to move a horizon); inline
	// attempts use the exact sequential merge below and never spin.
	specSpinLimit = 256
)

// SpeculationStats counts optimistic execution outcomes. In parallel mode
// Attempts/Commits/Replays depend on goroutine timing (a park is a race
// against other shards' progress) — only the *results* of a run are
// deterministic; with SetParallel(false) the counters are deterministic too.
type SpeculationStats struct {
	Attempts uint64 // speculative windows forked
	Commits  uint64 // attempts every participant finished without parking
	Replays  uint64 // attempts some shard parked (its suffix re-ran conservatively)
	Events   uint64 // events executed inside speculative windows
}

// SetSpeculation enables or disables optimistic window execution. Results
// are byte-identical either way; only scheduling changes. Call it outside
// Run, or from a global event.
func (se *ShardedEngine) SetSpeculation(on bool) {
	if se.inWindow {
		panic("sim: SetSpeculation during a shard window")
	}
	se.spec = on
	if se.specMult == 0 {
		se.specMult = specMultStart
	}
}

// Speculation reports whether optimistic window execution is enabled.
func (se *ShardedEngine) Speculation() bool { return se.spec }

// SetSpecGate installs the transport's admission check, called at a barrier
// immediately before a speculative fork. Returning false vetoes the attempt
// (the engine falls back to a conservative batch). The transport uses it to
// decline speculation while any cut-link wire is busy. A nil gate admits
// every attempt.
func (se *ShardedEngine) SetSpecGate(gate func() bool) { se.specGate = gate }

// SpecStats returns the cumulative speculation counters.
func (se *ShardedEngine) SpecStats() SpeculationStats { return se.specStats }

// trySpeculate runs one speculative attempt covering [W, end) with
// end ≤ min(tG, hard), end − W > L. It reports false — without side
// effects — when speculation is off, inapplicable (single shard, unbounded
// lookahead), cooling down after a park, not worth a fork (the range a
// conservative window already covers), or vetoed by the transport gate.
func (se *ShardedEngine) trySpeculate(W, tG, hard Time) bool {
	if !se.spec || len(se.shards) < 2 || se.lookahead == infTime {
		return false
	}
	if se.specCooldown > 0 {
		se.specCooldown--
		return false
	}
	maxEnd := tG
	if hard < maxEnd {
		maxEnd = hard
	}
	L := se.lookahead
	end := W + Time(se.specMult)*L
	if end < W || end > maxEnd {
		end = maxEnd
	}
	if end == infTime || end <= W+L {
		return false
	}
	if se.specGate != nil && !se.specGate() {
		return false
	}

	// Fork: arm every shard's journal and publish fork-time horizons — the
	// first cross-shard influence shard i can produce arrives no earlier
	// than its next event plus the lookahead. Horizons must be primed by
	// the coordinator before any worker wakes: a shard may read a peer's
	// horizon before that peer's goroutine has published its own first value.
	se.specStats.Attempts++
	se.busy = se.busy[:0]
	for _, s := range se.shards {
		s.specJMin = infTime
		s.specParked = false
		s.specMode = true
		h := infTime
		if s.q.len() > 0 {
			if t := s.q.minTime(); t < end {
				if nh := t + L; nh > t {
					h = nh
				}
				se.busy = append(se.busy, s)
			}
		}
		s.horizon.Store(int64(h))
	}

	plan := seBatch{W: W, L: L, end: end, K: 1, spec: true}
	se.inWindow = true
	switch {
	case !se.parallel:
		se.runSpecInline(end)
	case len(se.busy) == 1:
		// One busy shard: every other horizon is at least its journal floor
		// of +∞, so the shard free-runs to the horizon on the coordinator.
		se.busy[0].begin(plan, end)
		se.busy[0].runSpec(se, end)
	default:
		se.ensureWorkers()
		for _, s := range se.busy {
			se.wake[s.id] <- plan
		}
		for range se.busy {
			<-se.done
		}
	}
	se.inWindow = false
	se.specJoin()
	return true
}

// runSpec is one shard's side of a parallel speculative attempt: execute
// own events in key order up to end, publishing the horizon before each and
// parking — suffix intact — the moment an event is not provably safe.
func (s *seShard) runSpec(se *ShardedEngine, end Time) {
	spin := 0
	for s.q.len() > 0 && s.q.minTime() < end {
		if se.stopped.Load() {
			s.specParked = true
			return
		}
		t := s.q.minTime()
		h := s.specJMin
		if nh := t + se.lookahead; nh > t && nh < h {
			h = nh
		}
		s.horizon.Store(int64(h))
		if t >= s.specJMin {
			// The shard's own withheld delivery would be overtaken: once
			// externalized and executed on its destination, that delivery can
			// emit a next hop arriving back before t. Own journals never
			// recede, so there is nothing to spin for — park immediately.
			s.specParked = true
			return
		}
		if !se.specSafe(s, t) {
			if spin >= specSpinLimit {
				s.specParked = true
				return
			}
			spin++
			runtime.Gosched()
			continue
		}
		spin = 0
		ev := s.q.pop()
		s.now = ev.at
		s.regular--
		s.lastBusy = ev.at
		s.nEvents++
		s.specEvents++
		ev.fn()
	}
	// Reached the horizon: the shard's only remaining influence this attempt
	// is its journal (monotone: specJMin never drops below a published value).
	s.horizon.Store(int64(s.specJMin))
}

// specSafe reports whether an event at t may execute: t must lie strictly
// below every other shard's horizon, so no withheld delivery — present or
// future — can be overtaken. Horizon monotonicity makes a stale read safe.
func (se *ShardedEngine) specSafe(s *seShard, t Time) bool {
	for _, o := range se.shards {
		if o != s && Time(o.horizon.Load()) <= t {
			return false
		}
	}
	return true
}

// runSpecInline executes a speculative attempt sequentially on the
// coordinator: always the globally minimal pending event (full key order,
// ties broken by creator then sequence), parking the instant a journaled
// arrival would be overtaken. No horizons, no spinning, and — unlike the
// parallel path, whose parks race against peer progress — a deterministic
// attempt/commit/replay trace: the forced-misspeculation tests pin this.
func (se *ShardedEngine) runSpecInline(end Time) {
	for !se.stopped.Load() {
		var s *seShard
		for _, sh := range se.shards {
			if sh.q.len() == 0 || sh.q.minTime() >= end {
				continue
			}
			if s == nil || sh.q.ev[0].before(s.q.ev[0]) {
				s = sh
			}
		}
		if s == nil {
			return
		}
		t := s.q.minTime()
		for _, o := range se.shards {
			// t is the global minimum, so only journal floors can bind
			// (every shard's next+L exceeds t for L > 0). The shard's own
			// journal binds too: a withheld delivery, once externalized,
			// can emit a next hop arriving back before a later own event.
			if o.specJMin <= t {
				s.specParked = true
				return
			}
		}
		ev := s.q.pop()
		s.now = ev.at
		s.regular--
		s.lastBusy = ev.at
		s.nEvents++
		s.specEvents++
		ev.fn()
	}
}

// specJoin ends an attempt: every journal — the cross-shard sends the
// attempt withheld — is externalized into its destination heap, outcome
// counters roll up, and the adaptive controller resizes the next attempt.
// Safe for every executed event t and journaled arrival a, t < a held
// (specSafe), so externalization never schedules into a shard's past and
// the suffix a parked shard left behind replays in exact key order.
//
//bneck:keyed moves already-keyed events between heaps.
//bneck:commit the only externalization point of speculative journals.
func (se *ShardedEngine) specJoin() {
	parked := false
	for _, s := range se.shards {
		s.specMode = false
		if s.specParked {
			parked = true
			s.specParked = false
		}
		se.specStats.Events += s.specEvents
		s.specEvents = 0
		for i := range s.specOut {
			ev := s.specOut[i]
			d := se.shards[se.part[ev.owner]]
			d.q.push(ev)
			d.regular++
			s.specOut[i] = event{} // release the closure reference
		}
		s.specOut = s.specOut[:0]
	}
	if parked {
		se.specStats.Replays++
		se.specMult /= 2
		if se.specMult < specMultMin {
			se.specMult = specMultMin
		}
		se.specCooldown = 1
	} else {
		se.specStats.Commits++
		se.specMult *= 2
		if se.specMult > specMultMax {
			se.specMult = specMultMax
		}
	}
}

// AutoShards returns the shard count "auto" engine selection resolves to on
// this process: GOMAXPROCS clamped to [1, 8]. Beyond eight shards the cut
// grows faster than the win on the paper-sized topologies (BENCH_PR7.json),
// and a single-CPU process gets the one-shard serial reference, which has
// no cut at all.
func AutoShards() int {
	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		p = 1
	}
	if p > 8 {
		p = 8
	}
	return p
}

// AutoWindowBatch returns the window-batch bound "auto" selection pairs
// with AutoShards: the default batch when windows run on worker goroutines,
// and a larger one on a single CPU, where inline windows cost no
// synchronization and a bigger batch only amortizes the coordinator loop
// further.
func AutoWindowBatch() int {
	if runtime.GOMAXPROCS(0) > 1 {
		return defaultWindowBatch
	}
	return 4 * defaultWindowBatch
}
