package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// infTime is the "no event" sentinel.
const infTime = Time(math.MaxInt64)

// ExtCreator is the creator ID of events scheduled from outside any node
// context: setup code, and global (barrier) events. It sorts before every
// node, so a global event at time t always precedes node events at t.
const ExtCreator int32 = -1

// defaultWindowBatch is the number of consecutive conservative windows one
// fork/join may span when no global event interrupts them. Batching exists
// for low-delay (LAN) topologies, where a single window is so short that
// per-window coordination would dominate; the value only bounds how much
// coordination is amortized, it never changes results.
const defaultWindowBatch = 16

// ShardedEngine is a conservatively-synchronized parallel discrete event
// scheduler: nodes of a network are partitioned into shards, each shard owns
// a value-typed 4-ary heap and a local virtual clock, and shards execute
// windows of at most the lookahead bound in parallel. The lookahead is the
// minimum latency of any cross-shard edge, so an event executing inside a
// window can only schedule into another shard at or beyond the window's end;
// those messages travel through per-shard outboxes and are delivered at the
// next window boundary.
//
// Windows are executed in batches: one fork/join runs up to WindowBatch
// consecutive windows when no global event falls inside them. Within a
// batch, cross-shard sends are binned by the window their arrival time falls
// in; shards synchronize on a lightweight barrier between windows and each
// shard ingests its next window's bin itself, so the coordinator — and its
// channel round-trips — are off the per-window path. When the process has a
// single CPU (or SetParallel(false) was called), windows execute inline on
// the coordinating goroutine in shard order, with no synchronization at all:
// on one core, goroutine parallelism can only add overhead.
//
// Determinism: every event is keyed by (time, creator, creator sequence),
// where the creator is the node whose execution scheduled it (ExtCreator for
// setup and global events) and the sequence counts that creator's
// schedulings. Because a node's execution order is independent of the
// partition (cross-shard influence always arrives strictly later than the
// lookahead bound), the keys — and therefore the complete run — are
// byte-identical for any shard count, any WindowBatch, and either execution
// mode, including one shard — which in turn matches the serial Engine
// driving the same creator-keyed workload.
//
// Events come in three flavors:
//   - shard events (SendAt): always regular, execute on the owning shard;
//   - global regular events (At/After): execute at a barrier, with every
//     shard quiescent up to their timestamp — the place for session churn,
//     topology dynamics, and anything that reads or writes cross-shard state;
//   - global daemon events (DaemonAt): like global regular events, but they
//     do not keep Run alive (measurement ticks).
type ShardedEngine struct {
	shards []*seShard
	part   []int32 // node -> shard
	nNodes int
	// lookahead is the conservative window bound: the minimum latency of any
	// event scheduled from one shard into another. infTime when nothing is
	// cut (single shard).
	lookahead Time

	// windowBatch is the maximum windows per fork/join; stride is the number
	// of outbox slots per destination shard (windowBatch in-batch bins plus
	// one tail slot for arrivals beyond the batch).
	windowBatch int
	stride      int
	// parallel selects worker goroutines for multi-shard windows; false runs
	// every window inline on the coordinator (the single-CPU fast path).
	parallel bool

	global        eventQueue // global events, creator ExtCreator
	extSeq        uint64
	globalRegular int

	now      Time
	lastBusy Time
	nEvents  uint64

	// Optimistic execution (spec.go): spec enables speculative attempts,
	// specGate is the transport's barrier-time admission check, specMult the
	// adaptive attempt length in lookaheads, specCooldown the conservative
	// rounds forced after a park.
	spec         bool
	specGate     func() bool
	specMult     int
	specCooldown int
	specStats    SpeculationStats

	stopped  atomic.Bool
	inWindow bool
	// inlineWindow marks a window (or batch) executing inline on the
	// coordinating goroutine: with no concurrent shard execution, a
	// cross-shard send may push straight into the destination heap — the
	// lookahead bound proves its arrival lies beyond every window currently
	// forming — skipping the outbox machinery entirely.
	inlineWindow bool

	busy []*seShard // scratch: shards with events due in the current window

	workers bool
	bar     seBarrier
	wake    []chan seBatch
	done    chan struct{}
}

// seBatch describes one fork/join: K consecutive windows starting at W,
// each lookahead wide, the last one ending at end. spec marks a speculative
// attempt (K is 1; shards run runSpec instead of the window loop).
type seBatch struct {
	W, L, end Time
	K         int
	spec      bool
}

// seShard is one shard: a heap of owned events, a local clock, and the
// per-creator-node scheduling counters of the nodes it owns.
type seShard struct {
	id       int32
	now      Time
	q        eventQueue
	regular  int
	nEvents  uint64
	lastBusy Time
	ctr      []uint64 // per-node creator counters (live entry at the owner)
	// out holds cross-shard sends: stride slots per destination shard, one
	// per in-batch window plus a tail slot. dirty lists the slot indices
	// with pending events, so the coordinator's drain scans only what was
	// written instead of shards × stride slots (inline windows bypass the
	// outboxes entirely and keep drain at zero work).
	out   [][]event
	dirty []int
	// windowEnd and the batch fields mirror the shard's current window so
	// SendAt can check the lookahead guarantee and bin cross-shard sends
	// without touching shared engine state.
	windowEnd Time
	batchW    Time
	batchL    Time
	batchEnd  Time
	batchK    int

	// Speculation (spec.go). specMode marks an attempt in progress: SendAt
	// withholds cross-shard sends in the journal instead of delivering them.
	// horizon is the shard's published lower bound on any future cross-shard
	// influence (read by peers' safety checks; monotone within an attempt).
	// specJMin tracks the earliest journaled arrival; specParked records
	// that the shard stopped at an unsafe event, its suffix intact.
	specMode   bool
	specParked bool
	specEvents uint64
	specJMin   Time
	horizon    atomic.Int64
	//bneck:journal withheld cross-shard sends; externalized only at commit.
	specOut []event
}

// NewSharded returns an engine with the given number of shards (clamped to
// at least 1). Call SetTopology before scheduling node events.
func NewSharded(shards int) *ShardedEngine {
	if shards < 1 {
		shards = 1
	}
	se := &ShardedEngine{
		windowBatch: defaultWindowBatch,
		parallel:    runtime.GOMAXPROCS(0) > 1,
		specMult:    specMultStart,
	}
	se.stride = se.windowBatch + 1
	for i := 0; i < shards; i++ {
		se.shards = append(se.shards, &seShard{
			id:  int32(i),
			out: make([][]event, shards*se.stride),
		})
	}
	se.bar.n = shards
	se.lookahead = infTime
	return se
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Lookahead returns the current conservative window bound, or 0 when
// windows are unbounded (a single shard: nothing is cut).
func (se *ShardedEngine) Lookahead() Time {
	if se.lookahead == infTime {
		return 0
	}
	return se.lookahead
}

// WindowBatch returns the maximum number of consecutive windows one
// fork/join may run.
func (se *ShardedEngine) WindowBatch() int { return se.windowBatch }

// SetWindowBatch bounds how many consecutive conservative windows run per
// fork/join (clamped to at least 1, which disables batching). Results are
// identical at every setting; only synchronization frequency changes. Call
// it outside Run, or from a global event.
func (se *ShardedEngine) SetWindowBatch(k int) {
	if se.inWindow {
		panic("sim: SetWindowBatch during a shard window")
	}
	if k < 1 {
		k = 1
	}
	se.drain() // outbox slot meaning changes with the stride
	se.windowBatch = k
	se.stride = k + 1
	for _, s := range se.shards {
		s.out = make([][]event, len(se.shards)*se.stride)
	}
}

// SetParallel selects between worker-goroutine window execution and inline
// sequential execution on the coordinator. The default is parallel exactly
// when GOMAXPROCS > 1; results are identical either way (the choice is pure
// scheduling). Call it outside Run.
func (se *ShardedEngine) SetParallel(on bool) {
	if se.inWindow {
		panic("sim: SetParallel during a shard window")
	}
	se.parallel = on
}

// Parallel reports whether windows execute on worker goroutines (true) or
// inline on the coordinator (false). Transports use it to decide whether
// per-shard state needs goroutine isolation: inline execution is a single
// goroutine, so sharing one domain is safe and cheaper.
func (se *ShardedEngine) Parallel() bool { return se.parallel }

// ShardOf returns the shard owning a node.
func (se *ShardedEngine) ShardOf(node int32) int { return int(se.part[node]) }

// SetTopology installs (or replaces) the node→shard map and the lookahead
// bound. part must assign every node a shard in [0, Shards()). It may be
// called before a run or from inside a global event (a barrier, with every
// shard parked); queued shard events are re-homed to their owners' new
// shards and creator counters move with their nodes, so a repartition never
// disturbs the deterministic event order.
//
//bneck:keyed re-homes already-keyed events; keys are preserved verbatim.
func (se *ShardedEngine) SetTopology(numNodes int, part []int32, lookahead Time) {
	if len(part) != numNodes {
		panic(fmt.Sprintf("sim: partition of %d nodes for %d-node topology", len(part), numNodes))
	}
	for n, p := range part {
		if int(p) < 0 || int(p) >= len(se.shards) {
			panic(fmt.Sprintf("sim: node %d assigned to shard %d of %d", n, p, len(se.shards)))
		}
	}
	if lookahead <= 0 {
		lookahead = infTime
	}
	old := se.part
	se.part = append([]int32(nil), part...)
	se.nNodes = numNodes
	se.lookahead = lookahead

	// Move creator counters: each node's live counter sits in its previous
	// owner's slice (or nowhere, for new nodes).
	ctrs := make([][]uint64, len(se.shards))
	for i, s := range se.shards {
		ctrs[i] = s.ctr
		s.ctr = make([]uint64, numNodes)
	}
	for n := 0; n < numNodes; n++ {
		var v uint64
		if old != nil && n < len(old) {
			prev := ctrs[old[n]]
			if n < len(prev) {
				v = prev[n]
			}
		}
		se.shards[part[n]].ctr[n] = v
	}

	// Re-home queued shard events by owner.
	var pending []event
	for _, s := range se.shards {
		pending = append(pending, s.q.ev...)
		s.q.ev = s.q.ev[:0]
		s.regular = 0
	}
	for _, ev := range pending {
		d := se.shards[se.part[ev.owner]]
		d.q.push(ev)
		d.regular++
	}
}

// Now returns the engine's global virtual time: the latest instant every
// shard has reached. Individual shards can be ahead mid-run; use NowAt for a
// node's local clock.
func (se *ShardedEngine) Now() Time { return se.now }

// NowAt returns the local clock of the shard owning a node. Valid from the
// node's own execution context, from a global event, or between runs.
func (se *ShardedEngine) NowAt(node int32) Time { return se.shards[se.part[node]].now }

// LastBusy returns the execution time of the most recent regular event —
// once Run returns, the quiescence instant.
func (se *ShardedEngine) LastBusy() Time { return se.lastBusyAll() }

// Events returns the total number of events executed.
func (se *ShardedEngine) Events() uint64 {
	n := se.nEvents
	for _, s := range se.shards {
		n += s.nEvents
	}
	return n
}

// Pending returns the number of regular events currently scheduled
// (excluding cross-shard messages still in flight during a window).
func (se *ShardedEngine) Pending() int { return se.regularTotal() }

// At schedules a global regular event: fn runs at virtual time t on the
// coordinating goroutine, with every shard quiescent up to t. Global events
// may touch any state and schedule anywhere; they cannot be scheduled from
// inside a shard's window.
func (se *ShardedEngine) At(t Time, fn func()) { se.scheduleGlobal(t, fn, false) }

// After schedules a global regular event d from now (d < 0 clamps to now).
func (se *ShardedEngine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	se.scheduleGlobal(se.now+d, fn, false)
}

// DaemonAt schedules a global daemon event: it runs like a global event but
// does not keep Run alive.
func (se *ShardedEngine) DaemonAt(t Time, fn func()) { se.scheduleGlobal(t, fn, true) }

// scheduleGlobal assigns the ExtCreator key to a global (barrier) event.
//
//bneck:keyed
func (se *ShardedEngine) scheduleGlobal(t Time, fn func(), daemon bool) {
	if se.inWindow {
		panic("sim: global scheduling during a shard window (schedule from setup or a global event)")
	}
	if t < se.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, se.now))
	}
	se.extSeq++
	se.global.push(event{at: t, src: ExtCreator, seq: se.extSeq, fn: fn, daemon: daemon})
	if !daemon {
		se.globalRegular++
	}
}

// SendAt schedules fn at absolute time t on the shard owning node `to`, with
// creator `from`: the node whose execution performs the scheduling. During a
// window, a cross-shard send must land at or beyond the window's end — the
// conservative guarantee the lookahead bound exists to provide. Within a
// window batch, cross-shard sends are binned by the window their arrival
// falls in; arrivals beyond the batch land in the tail slot, drained by the
// coordinator at the join.
//
//bneck:keyed assigns the (time, creator, creator-seq) key.
func (se *ShardedEngine) SendAt(from, to int32, t Time, fn func()) {
	sf := se.shards[se.part[from]]
	sf.ctr[from]++
	ev := event{at: t, src: from, owner: to, seq: sf.ctr[from], fn: fn}
	di := se.part[to]
	if se.inWindow && di != sf.id {
		if sf.specMode {
			// Speculative attempt: the send is withheld in the journal until
			// the commit point (specJoin) — nothing crosses shards mid-attempt.
			// The lookahead guarantee here is relative to the executing event:
			// every cut-link arrival lies at least L past the sender's clock.
			if t < sf.now+se.lookahead {
				panic(fmt.Sprintf("sim: cross-shard send at %v from clock %v (lookahead %v violated)", t, sf.now, se.lookahead))
			}
			sf.specOut = append(sf.specOut, ev)
			if t < sf.specJMin {
				sf.specJMin = t
			}
			return
		}
		if t < sf.windowEnd {
			panic(fmt.Sprintf("sim: cross-shard send at %v inside window ending %v (lookahead %v violated)", t, sf.windowEnd, se.lookahead))
		}
		if !se.inlineWindow {
			slot := se.windowBatch // tail
			if t < sf.batchEnd {
				// The lookahead guarantee puts t at least one full window past
				// the sending window, so the bin is always a later in-batch
				// window.
				if j := int((t - sf.batchW) / sf.batchL); j < sf.batchK {
					slot = j
				}
			}
			idx := int(di)*se.stride + slot
			if len(sf.out[idx]) == 0 {
				sf.dirty = append(sf.dirty, idx)
			}
			sf.out[idx] = append(sf.out[idx], ev)
			return
		}
		// Inline execution: no other goroutine touches the destination heap,
		// and t ≥ this window's end means the event cannot belong to any
		// window currently underway, so the direct push preserves the exact
		// execution order the outbox route would produce.
	}
	d := se.shards[di]
	if t < d.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, d.now))
	}
	d.q.push(ev)
	d.regular++
}

// LinkSched returns the wire scheduler for a directed link from→to: Now reads
// the sending shard's clock, At crosses into the receiving node's shard.
func (se *ShardedEngine) LinkSched(from, to int32) Sched { return linkSched{se, from, to} }

type linkSched struct {
	se       *ShardedEngine
	from, to int32
}

func (ls linkSched) Now() Time           { return ls.se.NowAt(ls.from) }
func (ls linkSched) At(t Time, f func()) { ls.se.SendAt(ls.from, ls.to, t, f) }

// Stop makes the innermost Run/RunUntil return at the next event boundary
// (shards finish their current window batch).
func (se *ShardedEngine) Stop() { se.stopped.Store(true) }

// Run executes events until no regular events remain anywhere — shard
// heaps, in-flight mailboxes, or the global queue. Global daemons due before
// the last regular event still run; later ones do not, exactly the serial
// engine's quiescence rule. It returns the quiescence time.
func (se *ShardedEngine) Run() Time {
	se.stopped.Store(false)
	defer se.stopWorkers()
	if len(se.shards) == 1 {
		se.runSingle(infTime, true)
		se.syncNow()
		return se.lastBusyAll()
	}
	for !se.stopped.Load() {
		se.drain()
		if se.regularTotal() == 0 {
			break
		}
		tG, tL := se.minGlobal(), se.minLocal()
		if tG <= tL {
			se.execGlobal()
			continue
		}
		if se.trySpeculate(tL, tG, infTime) {
			continue
		}
		se.runWindows(tL, tG, infTime)
	}
	se.syncNow()
	return se.lastBusyAll()
}

// runSingle is the single-shard fast path behind Run and RunUntil. With one
// shard nothing is ever cut: no cross-shard send can exist, the outboxes
// stay empty forever and the lookahead bound is unbounded, so the window
// machinery — outbox drain, busy scan, batch plan, phase barrier — is pure
// overhead. The engine degenerates to the serial two-queue loop: execute
// shard events up to the next global event, execute the global event at its
// barrier (trivially satisfied), repeat. Event keys are untouched, so the
// run is byte-identical to the general path — which in turn matches the
// classic serial engine. hard bounds execution for RunUntil (events at
// exactly hard still run); infTime means run to quiescence. needRegular
// applies Run's quiescence rule: stop when no regular events remain, leaving
// later daemons unexecuted.
func (se *ShardedEngine) runSingle(hard Time, needRegular bool) {
	s := se.shards[0]
	for !se.stopped.Load() {
		if needRegular && se.globalRegular+s.regular == 0 {
			return
		}
		tG := se.minGlobal()
		tL := infTime
		if s.q.len() > 0 {
			tL = s.q.minTime()
		}
		if tG <= tL {
			if tG > hard || tG == infTime {
				return
			}
			se.execGlobal()
			continue
		}
		if tL > hard {
			return
		}
		end := tG
		if hard != infTime && hard+1 < end {
			end = hard + 1 // exclusive bound: events at exactly hard run
		}
		// inWindow keeps the scheduling discipline identical to the general
		// path: a node event calling At/After must panic at every shard count.
		se.inWindow, se.inlineWindow = true, true
		s.run(se, end)
		se.inWindow, se.inlineWindow = false, false
	}
}

// RunUntil executes all events (regular and daemon) scheduled at or before
// t, then sets every clock to t.
func (se *ShardedEngine) RunUntil(t Time) {
	se.stopped.Store(false)
	defer se.stopWorkers()
	if len(se.shards) == 1 {
		se.runSingle(t, false)
		se.syncNow()
		if se.now < t {
			se.now = t
		}
		if s := se.shards[0]; s.now < t {
			s.now = t
		}
		return
	}
	for !se.stopped.Load() {
		se.drain()
		tG, tL := se.minGlobal(), se.minLocal()
		if tG <= tL {
			if tG > t {
				break
			}
			se.execGlobal()
			continue
		}
		if tL > t {
			break
		}
		hard := t
		if hard < infTime {
			hard++ // the window end is exclusive; events at exactly t must run
		}
		if se.trySpeculate(tL, tG, hard) {
			continue
		}
		se.runWindows(tL, tG, hard)
	}
	se.syncNow()
	if se.now < t {
		se.now = t
	}
	for _, s := range se.shards {
		if s.now < t {
			s.now = t
		}
	}
}

// drain moves outbox events into their destination shards' heaps — the
// coordinator-side ingest, covering tail bins (and, after a Stop aborted a
// batch, any bins its barriers never reached). Only the slots a shard
// actually wrote are visited (in-batch ingestion may have emptied some of
// them already — the length check skips those). Insertion order is
// irrelevant: keys are unique, and heaps pop the exact minimum.
//
//bneck:keyed moves already-keyed events between heaps.
func (se *ShardedEngine) drain() {
	for _, s := range se.shards {
		if len(s.dirty) == 0 {
			continue
		}
		for _, idx := range s.dirty {
			box := s.out[idx]
			if len(box) == 0 {
				continue
			}
			d := se.shards[idx/se.stride]
			for i := range box {
				d.q.push(box[i])
				d.regular++
				box[i] = event{} // release the closure reference
			}
			s.out[idx] = box[:0]
		}
		s.dirty = s.dirty[:0]
	}
}

func (se *ShardedEngine) regularTotal() int {
	n := se.globalRegular
	for _, s := range se.shards {
		n += s.regular
	}
	return n
}

func (se *ShardedEngine) minGlobal() Time {
	if se.global.len() == 0 {
		return infTime
	}
	return se.global.minTime()
}

func (se *ShardedEngine) minLocal() Time {
	t := infTime
	for _, s := range se.shards {
		if s.q.len() > 0 && s.q.minTime() < t {
			t = s.q.minTime()
		}
	}
	return t
}

// execGlobal pops and executes the earliest global event at a barrier: every
// shard has finished all events before its timestamp, and shard clocks
// advance to it so emissions from the event use a consistent now.
func (se *ShardedEngine) execGlobal() {
	ev := se.global.pop()
	se.now = ev.at
	for _, s := range se.shards {
		if s.now < ev.at {
			s.now = ev.at
		}
	}
	if !ev.daemon {
		se.globalRegular--
		se.lastBusy = ev.at
	}
	se.nEvents++
	ev.fn()
}

// runWindows executes one fork/join starting at W: up to windowBatch
// consecutive conservative windows, bounded by the first global event (tG)
// and the hard horizon. The batch size K is exactly the number of windows
// that fit — barrier events never fall inside a batch.
func (se *ShardedEngine) runWindows(W, tG, hard Time) {
	maxEnd := tG
	if hard < maxEnd {
		maxEnd = hard
	}
	L := se.lookahead
	end := W + L
	if end < W { // overflow: unbounded window
		end = infTime
	}
	K := 1
	if end >= maxEnd {
		end = maxEnd
	} else if se.windowBatch > 1 {
		K = se.windowBatch
		if maxEnd != infTime {
			// end < maxEnd implies L < maxEnd-W, so the ceiling division
			// cannot overflow for any timestamp a real event carries.
			if need := (maxEnd - W + L - 1) / L; Time(K) > need {
				K = int(need)
			}
		}
		last := W + Time(K)*L
		if last < W || last > maxEnd {
			last = maxEnd
		}
		end = last
	}

	if K > 1 {
		se.runBatch(seBatch{W: W, L: L, end: end, K: K})
		return
	}

	se.busy = se.busy[:0]
	for _, s := range se.shards {
		if s.q.len() > 0 && s.q.minTime() < end {
			se.busy = append(se.busy, s)
		}
	}
	if len(se.busy) == 0 {
		return
	}
	// inWindow is set even when a single shard runs inline on the
	// coordinator: the lookahead-violation and no-global-scheduling panics
	// must fire identically regardless of how many shards happen to be busy,
	// or a violation would corrupt determinism only at some shard counts.
	se.inWindow = true
	if len(se.busy) == 1 || !se.parallel {
		se.inlineWindow = true
		for _, s := range se.busy {
			s.runPlan(se, seBatch{W: W, L: L, end: end, K: 1})
		}
		se.inlineWindow = false
	} else {
		plan := seBatch{W: W, L: L, end: end, K: 1}
		se.ensureWorkers()
		for _, s := range se.busy {
			se.wake[s.id] <- plan
		}
		for range se.busy {
			<-se.done
		}
	}
	se.inWindow = false
}

// runBatch executes K consecutive windows in one fork/join. Every shard
// participates — an idle shard can become busy from a mid-batch bin — and
// shards synchronize on the engine barrier between windows, each ingesting
// its own next-window bin. Inline mode runs the same schedule sequentially
// on the coordinator, with the ingest between windows and no barriers.
func (se *ShardedEngine) runBatch(plan seBatch) {
	se.inWindow = true
	if !se.parallel {
		// Inline sequential batch: cross-shard sends push directly into
		// destination heaps (see SendAt), so there is nothing to ingest
		// between windows — the loop is just each shard's events per window.
		se.inlineWindow = true
		for i := 0; i < plan.K; i++ {
			endI := plan.end
			if i+1 < plan.K {
				endI = plan.W + Time(i+1)*plan.L
			}
			for _, s := range se.shards {
				s.begin(plan, endI)
				s.run(se, endI)
			}
		}
		se.inlineWindow = false
	} else {
		se.ensureWorkers()
		for _, s := range se.shards {
			se.wake[s.id] <- plan
		}
		for range se.shards {
			<-se.done
		}
	}
	se.inWindow = false
}

// runPlan executes one shard's side of a fork/join: K windows with a
// barrier and a bin ingest between consecutive ones.
func (s *seShard) runPlan(se *ShardedEngine, plan seBatch) {
	if plan.spec {
		s.begin(plan, plan.end)
		s.runSpec(se, plan.end)
		return
	}
	for i := 0; i < plan.K; i++ {
		endI := plan.end
		if i+1 < plan.K {
			endI = plan.W + Time(i+1)*plan.L
		}
		s.begin(plan, endI)
		s.run(se, endI)
		if i+1 < plan.K {
			// The barrier orders every bin write of window ≤ i before the
			// reads below; producers ahead in window i+1 only touch later
			// bins (the lookahead keeps arrivals a full window out).
			se.bar.await()
			s.ingest(se, i+1)
		}
	}
}

// begin installs the shard's current window bounds for SendAt's lookahead
// check and bin selection. It runs on the shard's executing goroutine, so
// SendAt (same goroutine) always sees fresh values.
func (s *seShard) begin(plan seBatch, endI Time) {
	s.windowEnd = endI
	s.batchW, s.batchL, s.batchEnd, s.batchK = plan.W, plan.L, plan.end, plan.K
}

// ingest moves every shard's bin for window j of the current batch into this
// shard's heap.
//
//bneck:keyed moves already-keyed events between heaps.
func (s *seShard) ingest(se *ShardedEngine, j int) {
	idx := int(s.id)*se.stride + j
	for _, src := range se.shards {
		box := src.out[idx]
		if len(box) == 0 {
			continue
		}
		for k := range box {
			s.q.push(box[k])
			s.regular++
			box[k] = event{}
		}
		src.out[idx] = box[:0]
	}
}

// run executes the shard's events strictly before end, in key order.
func (s *seShard) run(se *ShardedEngine, end Time) {
	for s.q.len() > 0 && s.q.minTime() < end {
		ev := s.q.pop()
		s.now = ev.at
		s.regular--
		s.lastBusy = ev.at
		s.nEvents++
		ev.fn()
		if se.stopped.Load() {
			return
		}
	}
}

// ensureWorkers lazily starts one goroutine per shard, parked on a wake
// channel; stopWorkers (deferred by Run/RunUntil) tears them down, so an
// idle engine holds no goroutines.
func (se *ShardedEngine) ensureWorkers() {
	if se.workers {
		return
	}
	se.workers = true
	se.wake = make([]chan seBatch, len(se.shards))
	se.done = make(chan struct{}, len(se.shards))
	for _, s := range se.shards {
		ch := make(chan seBatch)
		se.wake[s.id] = ch
		go func(s *seShard, ch chan seBatch) {
			for plan := range ch {
				s.runPlan(se, plan)
				se.done <- struct{}{}
			}
		}(s, ch)
	}
}

func (se *ShardedEngine) stopWorkers() {
	if !se.workers {
		return
	}
	for _, ch := range se.wake {
		close(ch)
	}
	se.workers = false
	se.wake = nil
	se.done = nil
}

// syncNow advances the coordinator clock to the latest shard clock.
func (se *ShardedEngine) syncNow() {
	for _, s := range se.shards {
		if s.now > se.now {
			se.now = s.now
		}
	}
}

func (se *ShardedEngine) lastBusyAll() Time {
	t := se.lastBusy
	for _, s := range se.shards {
		if s.lastBusy > t {
			t = s.lastBusy
		}
	}
	return t
}

// seBarrier is a reusable phase barrier for the in-batch window boundaries:
// await blocks until all n shard workers have arrived, then releases them
// together. One barrier crossing replaces a full coordinator fork/join.
type seBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	phase   uint64
}

func (b *seBarrier) await() {
	b.mu.Lock()
	if b.cond == nil {
		b.cond = sync.NewCond(&b.mu)
	}
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	phase := b.phase
	for b.phase == phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
