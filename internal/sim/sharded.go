package sim

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// infTime is the "no event" sentinel.
const infTime = Time(math.MaxInt64)

// ExtCreator is the creator ID of events scheduled from outside any node
// context: setup code, and global (barrier) events. It sorts before every
// node, so a global event at time t always precedes node events at t.
const ExtCreator int32 = -1

// ShardedEngine is a conservatively-synchronized parallel discrete event
// scheduler: nodes of a network are partitioned into shards, each shard owns
// a value-typed 4-ary heap and a local virtual clock, and shards execute
// windows of at most the lookahead bound in parallel. The lookahead is the
// minimum latency of any cross-shard edge, so an event executing inside a
// window can only schedule into another shard at or beyond the window's end;
// those messages travel through per-shard outboxes and are delivered at the
// next barrier.
//
// Determinism: every event is keyed by (time, creator, creator sequence),
// where the creator is the node whose execution scheduled it (ExtCreator for
// setup and global events) and the sequence counts that creator's
// schedulings. Because a node's execution order is independent of the
// partition (cross-shard influence always arrives strictly later than the
// lookahead bound), the keys — and therefore the complete run — are
// byte-identical for any shard count, including one.
//
// Events come in three flavors:
//   - shard events (SendAt): always regular, execute on the owning shard;
//   - global regular events (At/After): execute at a barrier, with every
//     shard quiescent up to their timestamp — the place for session churn,
//     topology dynamics, and anything that reads or writes cross-shard state;
//   - global daemon events (DaemonAt): like global regular events, but they
//     do not keep Run alive (measurement ticks).
type ShardedEngine struct {
	shards []*seShard
	part   []int32 // node -> shard
	nNodes int
	// lookahead is the conservative window bound: the minimum latency of any
	// event scheduled from one shard into another. infTime when nothing is
	// cut (single shard).
	lookahead Time

	global        eventQueue // global events, creator ExtCreator
	extSeq        uint64
	globalRegular int

	now      Time
	lastBusy Time
	nEvents  uint64

	stopped   atomic.Bool
	inWindow  bool
	windowEnd Time

	workers bool
	wake    []chan Time
	done    chan struct{}
}

// seShard is one shard: a heap of owned events, a local clock, and the
// per-creator-node scheduling counters of the nodes it owns.
type seShard struct {
	id       int32
	now      Time
	q        eventQueue
	regular  int
	nEvents  uint64
	lastBusy Time
	ctr      []uint64  // per-node creator counters (live entry at the owner)
	out      [][]event // outboxes, one per destination shard
}

// NewSharded returns an engine with the given number of shards (clamped to at
// least 1). Call SetTopology before scheduling node events.
func NewSharded(shards int) *ShardedEngine {
	if shards < 1 {
		shards = 1
	}
	se := &ShardedEngine{}
	for i := 0; i < shards; i++ {
		se.shards = append(se.shards, &seShard{
			id:  int32(i),
			out: make([][]event, shards),
		})
	}
	se.lookahead = infTime
	return se
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Lookahead returns the current conservative window bound, or 0 when
// windows are unbounded (a single shard: nothing is cut).
func (se *ShardedEngine) Lookahead() Time {
	if se.lookahead == infTime {
		return 0
	}
	return se.lookahead
}

// ShardOf returns the shard owning a node.
func (se *ShardedEngine) ShardOf(node int32) int { return int(se.part[node]) }

// SetTopology installs (or replaces) the node→shard map and the lookahead
// bound. part must assign every node a shard in [0, Shards()). It may be
// called before a run or from inside a global event (a barrier, with every
// shard parked); queued shard events are re-homed to their owners' new
// shards and creator counters move with their nodes, so a repartition never
// disturbs the deterministic event order.
func (se *ShardedEngine) SetTopology(numNodes int, part []int32, lookahead Time) {
	if len(part) != numNodes {
		panic(fmt.Sprintf("sim: partition of %d nodes for %d-node topology", len(part), numNodes))
	}
	for n, p := range part {
		if int(p) < 0 || int(p) >= len(se.shards) {
			panic(fmt.Sprintf("sim: node %d assigned to shard %d of %d", n, p, len(se.shards)))
		}
	}
	if lookahead <= 0 {
		lookahead = infTime
	}
	old := se.part
	se.part = append([]int32(nil), part...)
	se.nNodes = numNodes
	se.lookahead = lookahead

	// Move creator counters: each node's live counter sits in its previous
	// owner's slice (or nowhere, for new nodes).
	ctrs := make([][]uint64, len(se.shards))
	for i, s := range se.shards {
		ctrs[i] = s.ctr
		s.ctr = make([]uint64, numNodes)
	}
	for n := 0; n < numNodes; n++ {
		var v uint64
		if old != nil && n < len(old) {
			prev := ctrs[old[n]]
			if n < len(prev) {
				v = prev[n]
			}
		}
		se.shards[part[n]].ctr[n] = v
	}

	// Re-home queued shard events by owner.
	var pending []event
	for _, s := range se.shards {
		pending = append(pending, s.q.ev...)
		s.q.ev = s.q.ev[:0]
		s.regular = 0
	}
	for _, ev := range pending {
		d := se.shards[se.part[ev.owner]]
		d.q.push(ev)
		d.regular++
	}
}

// Now returns the engine's global virtual time: the latest instant every
// shard has reached. Individual shards can be ahead mid-run; use NowAt for a
// node's local clock.
func (se *ShardedEngine) Now() Time { return se.now }

// NowAt returns the local clock of the shard owning a node. Valid from the
// node's own execution context, from a global event, or between runs.
func (se *ShardedEngine) NowAt(node int32) Time { return se.shards[se.part[node]].now }

// LastBusy returns the execution time of the most recent regular event —
// once Run returns, the quiescence instant.
func (se *ShardedEngine) LastBusy() Time { return se.lastBusyAll() }

// Events returns the total number of events executed.
func (se *ShardedEngine) Events() uint64 {
	n := se.nEvents
	for _, s := range se.shards {
		n += s.nEvents
	}
	return n
}

// Pending returns the number of regular events currently scheduled
// (excluding cross-shard messages still in flight during a window).
func (se *ShardedEngine) Pending() int { return se.regularTotal() }

// At schedules a global regular event: fn runs at virtual time t on the
// coordinating goroutine, with every shard quiescent up to t. Global events
// may touch any state and schedule anywhere; they cannot be scheduled from
// inside a shard's window.
func (se *ShardedEngine) At(t Time, fn func()) { se.scheduleGlobal(t, fn, false) }

// After schedules a global regular event d from now (d < 0 clamps to now).
func (se *ShardedEngine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	se.scheduleGlobal(se.now+d, fn, false)
}

// DaemonAt schedules a global daemon event: it runs like a global event but
// does not keep Run alive.
func (se *ShardedEngine) DaemonAt(t Time, fn func()) { se.scheduleGlobal(t, fn, true) }

func (se *ShardedEngine) scheduleGlobal(t Time, fn func(), daemon bool) {
	if se.inWindow {
		panic("sim: global scheduling during a shard window (schedule from setup or a global event)")
	}
	if t < se.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, se.now))
	}
	se.extSeq++
	se.global.push(event{at: t, src: ExtCreator, seq: se.extSeq, fn: fn, daemon: daemon})
	if !daemon {
		se.globalRegular++
	}
}

// SendAt schedules fn at absolute time t on the shard owning node `to`, with
// creator `from`: the node whose execution performs the scheduling. During a
// window, a cross-shard send must land at or beyond the window's end — the
// conservative guarantee the lookahead bound exists to provide.
func (se *ShardedEngine) SendAt(from, to int32, t Time, fn func()) {
	sf := se.shards[se.part[from]]
	sf.ctr[from]++
	ev := event{at: t, src: from, owner: to, seq: sf.ctr[from], fn: fn}
	di := se.part[to]
	if se.inWindow && di != sf.id {
		if t < se.windowEnd {
			panic(fmt.Sprintf("sim: cross-shard send at %v inside window ending %v (lookahead %v violated)", t, se.windowEnd, se.lookahead))
		}
		sf.out[di] = append(sf.out[di], ev)
		return
	}
	d := se.shards[di]
	if t < d.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, d.now))
	}
	d.q.push(ev)
	d.regular++
}

// LinkSched returns the wire scheduler for a directed link from→to: Now reads
// the sending shard's clock, At crosses into the receiving node's shard.
func (se *ShardedEngine) LinkSched(from, to int32) Sched { return linkSched{se, from, to} }

type linkSched struct {
	se       *ShardedEngine
	from, to int32
}

func (ls linkSched) Now() Time           { return ls.se.NowAt(ls.from) }
func (ls linkSched) At(t Time, f func()) { ls.se.SendAt(ls.from, ls.to, t, f) }

// Stop makes the innermost Run/RunUntil return at the next event boundary
// (shards finish their current window).
func (se *ShardedEngine) Stop() { se.stopped.Store(true) }

// Run executes events until no regular events remain anywhere — shard
// heaps, in-flight mailboxes, or the global queue. Global daemons due before
// the last regular event still run; later ones do not, exactly the serial
// engine's quiescence rule. It returns the quiescence time.
func (se *ShardedEngine) Run() Time {
	se.stopped.Store(false)
	defer se.stopWorkers()
	for !se.stopped.Load() {
		se.drain()
		if se.regularTotal() == 0 {
			break
		}
		tG, tL := se.minGlobal(), se.minLocal()
		if tG <= tL {
			se.execGlobal()
			continue
		}
		se.runWindow(tL, tG, infTime)
	}
	se.syncNow()
	return se.lastBusyAll()
}

// RunUntil executes all events (regular and daemon) scheduled at or before
// t, then sets every clock to t.
func (se *ShardedEngine) RunUntil(t Time) {
	se.stopped.Store(false)
	defer se.stopWorkers()
	for !se.stopped.Load() {
		se.drain()
		tG, tL := se.minGlobal(), se.minLocal()
		if tG <= tL {
			if tG > t {
				break
			}
			se.execGlobal()
			continue
		}
		if tL > t {
			break
		}
		hard := t
		if hard < infTime {
			hard++ // the window end is exclusive; events at exactly t must run
		}
		se.runWindow(tL, tG, hard)
	}
	se.syncNow()
	if se.now < t {
		se.now = t
	}
	for _, s := range se.shards {
		if s.now < t {
			s.now = t
		}
	}
}

// drain moves outbox events into their destination shards' heaps. Insertion
// order is irrelevant: keys are unique, and heaps pop the exact minimum.
func (se *ShardedEngine) drain() {
	for _, s := range se.shards {
		for di, box := range s.out {
			if len(box) == 0 {
				continue
			}
			d := se.shards[di]
			for i := range box {
				d.q.push(box[i])
				d.regular++
				box[i] = event{} // release the closure reference
			}
			s.out[di] = box[:0]
		}
	}
}

func (se *ShardedEngine) regularTotal() int {
	n := se.globalRegular
	for _, s := range se.shards {
		n += s.regular
	}
	return n
}

func (se *ShardedEngine) minGlobal() Time {
	if se.global.len() == 0 {
		return infTime
	}
	return se.global.minTime()
}

func (se *ShardedEngine) minLocal() Time {
	t := infTime
	for _, s := range se.shards {
		if s.q.len() > 0 && s.q.minTime() < t {
			t = s.q.minTime()
		}
	}
	return t
}

// execGlobal pops and executes the earliest global event at a barrier: every
// shard has finished all events before its timestamp, and shard clocks
// advance to it so emissions from the event use a consistent now.
func (se *ShardedEngine) execGlobal() {
	ev := se.global.pop()
	se.now = ev.at
	for _, s := range se.shards {
		if s.now < ev.at {
			s.now = ev.at
		}
	}
	if !ev.daemon {
		se.globalRegular--
		se.lastBusy = ev.at
	}
	se.nEvents++
	ev.fn()
}

// runWindow executes one conservative window starting at W: every shard runs
// its local events in [W, end) in parallel, where end = min(W+lookahead,
// first global event, hard).
func (se *ShardedEngine) runWindow(W, tG, hard Time) {
	end := W + se.lookahead
	if end < W { // overflow
		end = infTime
	}
	if tG < end {
		end = tG
	}
	if hard < end {
		end = hard
	}
	se.windowEnd = end
	var busy []*seShard
	for _, s := range se.shards {
		if s.q.len() > 0 && s.q.minTime() < end {
			busy = append(busy, s)
		}
	}
	if len(busy) == 0 {
		return
	}
	// inWindow is set even when a single shard runs inline on the
	// coordinator: the lookahead-violation and no-global-scheduling panics
	// must fire identically regardless of how many shards happen to be busy,
	// or a violation would corrupt determinism only at some shard counts.
	se.inWindow = true
	if len(busy) == 1 {
		busy[0].run(se, end)
	} else {
		se.ensureWorkers()
		for _, s := range busy {
			se.wake[s.id] <- end
		}
		for range busy {
			<-se.done
		}
	}
	se.inWindow = false
}

// run executes the shard's events strictly before end, in key order.
func (s *seShard) run(se *ShardedEngine, end Time) {
	for s.q.len() > 0 && s.q.minTime() < end {
		ev := s.q.pop()
		s.now = ev.at
		s.regular--
		s.lastBusy = ev.at
		s.nEvents++
		ev.fn()
		if se.stopped.Load() {
			return
		}
	}
}

// ensureWorkers lazily starts one goroutine per shard, parked on a wake
// channel; stopWorkers (deferred by Run/RunUntil) tears them down, so an
// idle engine holds no goroutines.
func (se *ShardedEngine) ensureWorkers() {
	if se.workers {
		return
	}
	se.workers = true
	se.wake = make([]chan Time, len(se.shards))
	se.done = make(chan struct{}, len(se.shards))
	for _, s := range se.shards {
		ch := make(chan Time)
		se.wake[s.id] = ch
		go func(s *seShard, ch chan Time) {
			for end := range ch {
				s.run(se, end)
				se.done <- struct{}{}
			}
		}(s, ch)
	}
}

func (se *ShardedEngine) stopWorkers() {
	if !se.workers {
		return
	}
	for _, ch := range se.wake {
		close(ch)
	}
	se.workers = false
	se.wake = nil
	se.done = nil
}

// syncNow advances the coordinator clock to the latest shard clock.
func (se *ShardedEngine) syncNow() {
	for _, s := range se.shards {
		if s.now > se.now {
			se.now = s.now
		}
	}
}

func (se *ShardedEngine) lastBusyAll() Time {
	t := se.lastBusy
	for _, s := range se.shards {
		if s.lastBusy > t {
			t = s.lastBusy
		}
	}
	return t
}
