package sim

import (
	"fmt"
	"testing"
	"time"
)

// pickChooser picks a fixed candidate index at every consulted step.
type pickChooser struct {
	k     int
	calls int
}

func (p *pickChooser) Choose(now Time, cands []Choice) int {
	p.calls++
	return p.k
}

// scriptChooser replays a fixed pick sequence, 0 beyond the end.
type scriptChooser struct {
	picks []int
	pos   int
}

func (s *scriptChooser) Choose(now Time, cands []Choice) int {
	if s.pos >= len(s.picks) {
		return 0
	}
	k := s.picks[s.pos]
	s.pos++
	return k
}

// TestTieBreakSeqOrder pins the contract the Chooser hook must preserve:
// same-(time,creator) events run in scheduling (sequence) order on the
// classic engine, the sharded(1) engine, and the classic engine with a
// chooser installed — the chooser only ever permutes across creators.
func TestTieBreakSeqOrder(t *testing.T) {
	const at = 50 * time.Microsecond
	cases := []struct {
		name     string
		creators []int32 // scheduling order of (creator) at one instant
		want     []string
	}{
		{
			name:     "single creator preserves seq order",
			creators: []int32{2, 2, 2, 2},
			want:     []string{"2/0", "2/1", "2/2", "2/3"},
		},
		{
			name:     "creators sort before seq",
			creators: []int32{3, 1, 3, 1},
			want:     []string{"1/1", "1/3", "3/0", "3/2"},
		},
		{
			name:     "external events precede node creators",
			creators: []int32{2, ExtCreator, 0, ExtCreator},
			want:     []string{"-1/1", "-1/3", "0/2", "2/0"},
		},
		{
			name:     "interleaved creators",
			creators: []int32{1, 0, 2, 0, 1, 2},
			want:     []string{"0/1", "0/3", "1/0", "1/4", "2/2", "2/5"},
		},
	}

	type eng interface {
		At(Time, func())
		Run() Time
	}
	type sender interface {
		send(creator int32, t Time, fn func())
	}

	run := func(t *testing.T, schedule func(log *[]string) eng, want []string) {
		t.Helper()
		var log []string
		e := schedule(&log)
		e.Run()
		if len(log) != len(want) {
			t.Fatalf("executed %d events, want %d: %v", len(log), len(want), log)
		}
		for i := range want {
			if log[i] != want[i] {
				t.Fatalf("execution order %v, want %v", log, want)
			}
		}
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Run("classic", func(t *testing.T) {
				run(t, func(log *[]string) eng {
					e := New()
					for i, c := range tc.creators {
						i, c := i, c
						rec := func() { *log = append(*log, fmt.Sprintf("%d/%d", c, i)) }
						if c == ExtCreator {
							e.At(at, rec)
						} else {
							e.SendFrom(c, at, rec)
						}
					}
					return e
				}, tc.want)
			})
			t.Run("classic+chooser0", func(t *testing.T) {
				run(t, func(log *[]string) eng {
					e := New()
					e.SetChooser(&pickChooser{k: 0})
					for i, c := range tc.creators {
						i, c := i, c
						rec := func() { *log = append(*log, fmt.Sprintf("%d/%d", c, i)) }
						if c == ExtCreator {
							e.At(at, rec)
						} else {
							e.SendFrom(c, at, rec)
						}
					}
					return e
				}, tc.want)
			})
			t.Run("sharded1", func(t *testing.T) {
				run(t, func(log *[]string) eng {
					se := NewSharded(1)
					se.SetParallel(false)
					se.SetTopology(4, []int32{0, 0, 0, 0}, time.Microsecond)
					for i, c := range tc.creators {
						i, c := i, c
						rec := func() { *log = append(*log, fmt.Sprintf("%d/%d", c, i)) }
						if c == ExtCreator {
							se.At(at, rec)
						} else {
							se.SendAt(c, c, at, rec)
						}
					}
					return se
				}, tc.want)
			})
		})
	}
}

// TestChooserEnabledSet pins what the chooser is shown: one candidate per
// creator (the minimum-sequence one), sorted by creator, daemons included,
// and no consultation when only one event is enabled.
func TestChooserEnabledSet(t *testing.T) {
	e := New()
	var seen [][]Choice
	e.SetChooser(chooserFunc(func(now Time, cands []Choice) int {
		cp := make([]Choice, len(cands))
		copy(cp, cands)
		seen = append(seen, cp)
		return 0
	}))
	at := 10 * time.Microsecond
	e.SendFrom(2, at, func() {})
	e.SendFrom(0, at, func() {})
	e.SendFrom(2, at, func() {}) // same creator: shadowed by its seq-1 event
	e.At(at, func() {})
	e.SendFrom(1, 2*at, func() {}) // later time: not enabled at the frontier
	e.Run()

	if len(seen) == 0 {
		t.Fatal("chooser never consulted")
	}
	first := seen[0]
	wantSrc := []int32{ExtCreator, 0, 2}
	if len(first) != len(wantSrc) {
		t.Fatalf("first enabled set has %d candidates (%v), want %d", len(first), first, len(wantSrc))
	}
	for i, c := range first {
		if c.Src != wantSrc[i] {
			t.Fatalf("candidate %d has creator %d, want %d (set %v)", i, c.Src, wantSrc[i], c)
		}
		if c.At != at {
			t.Fatalf("candidate %d at %v, want %v", i, c.At, at)
		}
	}
	if first[2].Seq != 1 {
		t.Fatalf("creator 2 candidate has seq %d, want its first scheduling (1)", first[2].Seq)
	}
	for _, set := range seen {
		if len(set) < 2 {
			t.Fatalf("chooser consulted with singleton enabled set %v", set)
		}
	}
}

type chooserFunc func(Time, []Choice) int

func (f chooserFunc) Choose(now Time, cands []Choice) int { return f(now, cands) }

// TestChooserPermutesAcrossCreators drives the same workload with every
// constant pick and checks each run executes all events exactly once with
// per-creator order intact — the removeAt path must keep the heap sound
// whichever enabled event is extracted.
func TestChooserPermutesAcrossCreators(t *testing.T) {
	const creators = 4
	const perCreator = 3
	at := 5 * time.Microsecond
	for k := 0; k < creators; k++ {
		var log []string
		e := New()
		e.SetChooser(&pickChooser{k: k})
		for round := 0; round < perCreator; round++ {
			for c := int32(0); c < creators; c++ {
				c, round := c, round
				e.SendFrom(c, at, func() {
					log = append(log, fmt.Sprintf("%d/%d", c, round))
				})
			}
		}
		e.Run()
		if len(log) != creators*perCreator {
			t.Fatalf("pick %d: executed %d events, want %d", k, len(log), creators*perCreator)
		}
		next := map[int32]int{}
		for _, entry := range log {
			var c int32
			var round int
			fmt.Sscanf(entry, "%d/%d", &c, &round)
			if round != next[c] {
				t.Fatalf("pick %d: creator %d ran round %d before round %d (log %v)",
					k, c, round, next[c], log)
			}
			next[c]++
		}
	}
}

// TestChooserDefaultEquivalence runs a protocol-shaped workload (cascading
// cross-node sends with mixed delays) three ways — no chooser, always-pick-0
// chooser, and a chooser installed then removed — and requires byte-identical
// execution logs: the hook must be invisible unless a pick deviates.
func TestChooserDefaultEquivalence(t *testing.T) {
	workload := func(e *Engine, log *[]string) {
		var hop func(node int32, depth int)
		hop = func(node int32, depth int) {
			*log = append(*log, fmt.Sprintf("%d@%v", node, e.Now()))
			if depth == 0 {
				return
			}
			next := (node + 1) % 3
			e.SendFrom(node, e.Now()+time.Microsecond, func() { hop(next, depth-1) })
			if depth%2 == 0 {
				e.SendFrom(node, e.Now()+time.Microsecond, func() { hop((node+2)%3, depth-1) })
			}
		}
		for n := int32(0); n < 3; n++ {
			n := n
			e.At(0, func() { hop(n, 6) })
		}
	}

	runWith := func(mutate func(*Engine)) []string {
		var log []string
		e := New()
		if mutate != nil {
			mutate(e)
		}
		workload(e, &log)
		e.Run()
		return log
	}

	base := runWith(nil)
	zero := runWith(func(e *Engine) { e.SetChooser(&pickChooser{k: 0}) })
	removed := runWith(func(e *Engine) {
		e.SetChooser(&pickChooser{k: 1})
		e.SetChooser(nil)
	})
	if len(base) == 0 {
		t.Fatal("workload executed no events")
	}
	for i := range base {
		if base[i] != zero[i] {
			t.Fatalf("pick-0 chooser diverged at step %d: %q vs %q", i, zero[i], base[i])
		}
		if base[i] != removed[i] {
			t.Fatalf("removed chooser diverged at step %d: %q vs %q", i, removed[i], base[i])
		}
	}
}

// TestRemoveAtHeapIntegrity removes from every slot of a populated heap and
// checks the remaining events still pop in key order.
func TestRemoveAtHeapIntegrity(t *testing.T) {
	const n = 64
	for slot := 0; slot < n; slot++ {
		var q eventQueue
		for i := 0; i < n; i++ {
			// Scatter keys so heap shape is nontrivial.
			q.push(event{at: Time((i * 37) % n), src: int32(i % 5), seq: uint64(i)})
		}
		removed := q.removeAt(slot)
		var prev event
		for i := 0; q.len() > 0; i++ {
			ev := q.pop()
			if i > 0 && ev.before(prev) {
				t.Fatalf("slot %d: pop order violated after removeAt (removed %v)", slot, removed)
			}
			prev = ev
		}
	}
}
