package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(30*time.Microsecond, func() { got = append(got, 3) })
	e.At(10*time.Microsecond, func() { got = append(got, 1) })
	e.At(20*time.Microsecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 30*time.Microsecond {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of scheduling order at %d: %v", i, v)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var got []string
	e.At(time.Millisecond, func() {
		got = append(got, "a")
		e.After(time.Millisecond, func() { got = append(got, "c") })
		e.After(0, func() { got = append(got, "b") })
	})
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.At(time.Millisecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	e.At(time.Microsecond, func() {})
}

func TestDaemonDoesNotKeepRunAlive(t *testing.T) {
	e := New()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		e.DaemonAt(e.Now()+time.Millisecond, tick)
	}
	e.DaemonAt(time.Millisecond, tick)
	e.At(3500*time.Microsecond, func() {})
	q := e.Run()
	if q != 3500*time.Microsecond {
		t.Fatalf("quiescence = %v", q)
	}
	// Ticks at 1ms, 2ms, 3ms ran (due before the last regular event); the
	// 4ms tick and beyond never ran.
	if ticks != 3 {
		t.Fatalf("ticks = %d", ticks)
	}
}

func TestRunReturnsLastBusy(t *testing.T) {
	e := New()
	e.At(time.Millisecond, func() {})
	e.DaemonAt(5*time.Millisecond, func() {})
	if q := e.Run(); q != time.Millisecond {
		t.Fatalf("quiescence = %v", q)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []int
	e.At(1*time.Millisecond, func() { got = append(got, 1) })
	e.At(2*time.Millisecond, func() { got = append(got, 2) })
	e.At(3*time.Millisecond, func() { got = append(got, 3) })
	e.RunUntil(2 * time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if e.Now() != 2*time.Millisecond {
		t.Fatalf("Now = %v", e.Now())
	}
	e.Run()
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestStop(t *testing.T) {
	e := New()
	ran := 0
	for i := 1; i <= 10; i++ {
		e.At(time.Duration(i)*time.Millisecond, func() {
			ran++
			if ran == 5 {
				e.Stop()
			}
		})
	}
	e.Run()
	if ran != 5 {
		t.Fatalf("ran = %d", ran)
	}
	e.Run() // resumes
	if ran != 10 {
		t.Fatalf("ran = %d after resume", ran)
	}
}

func TestWireFIFOAndSerialization(t *testing.T) {
	e := New()
	w := NewWire(e, 10*time.Microsecond, 2*time.Microsecond)
	var arrivals []Time
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		at := w.Send(func() {
			arrivals = append(arrivals, e.Now())
			order = append(order, i)
		})
		_ = at
	}
	e.Run()
	// First packet: 2us tx + 10us prop = 12us; each next +2us.
	for i, a := range arrivals {
		want := time.Duration(2*(i+1)+10) * time.Microsecond
		if a != want {
			t.Fatalf("arrival %d = %v, want %v", i, a, want)
		}
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
	if w.Sent() != 5 {
		t.Fatalf("Sent = %d", w.Sent())
	}
}

func TestWireZeroTxStillFIFO(t *testing.T) {
	e := New()
	w := NewWire(e, time.Microsecond, 0)
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		w.Send(func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated with zero tx: %v", order)
		}
	}
}

func TestWireBacklog(t *testing.T) {
	e := New()
	w := NewWire(e, 0, 5*time.Microsecond)
	for i := 0; i < 4; i++ {
		w.Send(func() {})
	}
	if got := w.Backlog(); got != 20*time.Microsecond {
		t.Fatalf("Backlog = %v", got)
	}
	e.Run()
	if got := w.Backlog(); got != 0 {
		t.Fatalf("Backlog after drain = %v", got)
	}
}

// TestPropRandomEventOrder: events fired in nondecreasing time order no
// matter the insertion order.
func TestPropRandomEventOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		e := New()
		n := 200
		times := make([]time.Duration, n)
		for i := range times {
			times[i] = time.Duration(r.Intn(1000)) * time.Microsecond
		}
		var fired []Time
		for _, at := range times {
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			t.Fatalf("events fired out of order")
		}
		sorted := append([]time.Duration(nil), times...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range fired {
			if fired[i] != sorted[i] {
				t.Fatalf("fired times differ from scheduled")
			}
		}
	}
}
