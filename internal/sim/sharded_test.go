package sim

import (
	"fmt"
	"strconv"
	"testing"
	"time"
)

// ringTopology builds a partition of n nodes over k shards, round-robin, so
// neighboring nodes usually live on different shards — the worst case for
// the barrier protocol.
func ringTopology(se *ShardedEngine, n, k int, lookahead Time) {
	part := make([]int32, n)
	for i := range part {
		part[i] = int32(i % k)
	}
	se.SetTopology(n, part, lookahead)
}

// TestShardedBarrierStress ping-pongs messages around a cross-shard ring at
// exactly the lookahead bound: every window moves every chain by one hop, so
// the coordinator and the shard workers hammer the barrier protocol. Run
// with -race this doubles as the shard-barrier data-race test. Parallel
// execution is forced so the worker/barrier path is exercised even on a
// single-CPU machine, and the batch settings sweep the in-fork barrier.
func TestShardedBarrierStress(t *testing.T) {
	for _, batch := range []int{1, 4, 16} {
		t.Run("batch="+strconv.Itoa(batch), func(t *testing.T) {
			testShardedBarrierStress(t, batch)
		})
	}
}

func testShardedBarrierStress(t *testing.T, batch int) {
	const (
		nodes   = 32
		shards  = 8
		chains  = 64
		hops    = 400
		latency = time.Microsecond
	)
	se := NewSharded(shards)
	se.SetParallel(true)
	se.SetWindowBatch(batch)
	ringTopology(se, nodes, shards, latency)
	var delivered [chains]int
	var hop func(chain, node, remaining int)
	hop = func(chain, node, remaining int) {
		delivered[chain]++
		if remaining == 0 {
			return
		}
		next := (node + 1) % nodes
		se.SendAt(int32(node), int32(next), se.NowAt(int32(node))+latency, func() {
			hop(chain, next, remaining-1)
		})
	}
	for c := 0; c < chains; c++ {
		c := c
		start := c % nodes
		se.At(time.Duration(c)*10*time.Nanosecond, func() {
			hop(c, start, hops)
		})
	}
	q := se.Run()
	for c, got := range delivered {
		if got != hops+1 {
			t.Fatalf("chain %d delivered %d hops, want %d", c, got, hops+1)
		}
	}
	wantQ := time.Duration(chains-1)*10*time.Nanosecond + hops*latency
	if q != wantQ {
		t.Fatalf("quiescence %v, want %v", q, wantQ)
	}
	if se.Pending() != 0 {
		t.Fatalf("pending %d after Run", se.Pending())
	}
}

// TestShardedDaemonQuiescenceRule mirrors the serial engine's rule: global
// daemons due before the last regular event run, later ones do not.
func TestShardedDaemonQuiescenceRule(t *testing.T) {
	se := NewSharded(4)
	ringTopology(se, 8, 4, time.Microsecond)
	var ticks []Time
	for i := 1; i <= 10; i++ {
		at := time.Duration(i) * time.Millisecond
		se.DaemonAt(at, func() { ticks = append(ticks, at) })
	}
	// A regular chain that ends at 3.5ms.
	se.At(500*time.Microsecond, func() {
		se.SendAt(0, 1, se.NowAt(0)+time.Millisecond, func() {
			se.SendAt(1, 2, se.NowAt(1)+2*time.Millisecond, func() {})
		})
	})
	q := se.Run()
	if want := 3500 * time.Microsecond; q != want {
		t.Fatalf("quiescence %v, want %v", q, want)
	}
	if len(ticks) != 3 {
		t.Fatalf("daemons ran %d times (%v), want 3 (1ms, 2ms, 3ms)", len(ticks), ticks)
	}
	// RunUntil flushes the rest up to its horizon.
	se.RunUntil(7 * time.Millisecond)
	if len(ticks) != 7 {
		t.Fatalf("after RunUntil(7ms) daemons ran %d times, want 7", len(ticks))
	}
	if se.Now() != 7*time.Millisecond {
		t.Fatalf("Now() = %v, want 7ms", se.Now())
	}
}

// TestShardedRepartitionMidStream re-homes queued events to new owners and
// keeps the run's outcome unchanged.
func TestShardedRepartitionMidStream(t *testing.T) {
	run := func(repartition bool) []Time {
		se := NewSharded(4)
		ringTopology(se, 16, 4, time.Microsecond)
		var log []Time
		var hop func(node, remaining int)
		hop = func(node, remaining int) {
			log = append(log, se.NowAt(int32(node)))
			if remaining == 0 {
				return
			}
			next := (node + 5) % 16
			se.SendAt(int32(node), int32(next), se.NowAt(int32(node))+3*time.Microsecond, func() {
				hop(next, remaining-1)
			})
		}
		se.At(0, func() { hop(0, 100) })
		if repartition {
			se.At(50*time.Microsecond, func() {
				// Flip the partition: nodes move to the opposite shard.
				part := make([]int32, 16)
				for i := range part {
					part[i] = int32((i + 2) % 4)
				}
				se.SetTopology(16, part, time.Microsecond)
			})
		}
		se.Run()
		return log
	}
	plain, moved := run(false), run(true)
	if len(plain) != len(moved) {
		t.Fatalf("event counts differ: %d vs %d", len(plain), len(moved))
	}
	for i := range plain {
		if plain[i] != moved[i] {
			t.Fatalf("hop %d at %v with repartition, %v without", i, moved[i], plain[i])
		}
	}
}

// TestShardedStop stops mid-run and resumes.
func TestShardedStop(t *testing.T) {
	se := NewSharded(2)
	ringTopology(se, 4, 2, time.Microsecond)
	n := 0
	var hop func(node, remaining int)
	hop = func(node, remaining int) {
		n++
		if n == 10 {
			se.Stop()
		}
		if remaining == 0 {
			return
		}
		next := (node + 1) % 4
		se.SendAt(int32(node), int32(next), se.NowAt(int32(node))+time.Microsecond, func() { hop(next, remaining-1) })
	}
	se.At(0, func() { hop(0, 99) })
	se.Run()
	if n < 10 || n == 100 {
		t.Fatalf("stopped after %d events, want ≥ 10 and < 100", n)
	}
	se.Run() // resumes
	if n != 100 {
		t.Fatalf("resume executed %d events total, want 100", n)
	}
}

// TestSingleShardFastPath pins the shards==1 fast path (runSingle: no drain,
// no window plan, no barrier) against the classic serial engine across the
// full Run surface: regular chains, the daemon quiescence rule, RunUntil
// horizons and Stop/resume. Both engines must produce the identical event
// trace and the identical quiescence time.
func TestSingleShardFastPath(t *testing.T) {
	const nodes = 10
	type driver struct {
		now      func(int) Time
		send     func(from, to int, t Time, fn func())
		at       func(Time, func())
		daemonAt func(Time, func())
		run      func() Time
		runUntil func(Time)
		stop     func()
	}
	workload := func(d driver, log *[]string) {
		record := func(what string, tm Time) { *log = append(*log, fmt.Sprintf("%s@%v", what, tm)) }
		var hop func(node, remaining int)
		hop = func(node, remaining int) {
			record(strconv.Itoa(node), d.now(node))
			if remaining == 0 {
				return
			}
			to := (node + 1 + int(mix(node, remaining)%uint64(nodes-1))) % nodes
			d.send(node, to, d.now(node)+time.Duration(1+mix(remaining, node)%7)*time.Microsecond, func() {
				hop(to, remaining-1)
			})
		}
		for c := 0; c < 6; c++ {
			start := c % nodes
			d.at(time.Duration(c%2)*time.Microsecond, func() { hop(start, 50) })
		}
		for i := 1; i <= 40; i++ {
			tick := time.Duration(i) * 10 * time.Microsecond
			d.daemonAt(tick, func() { record("daemon", tick) })
		}
		// A mid-run Stop, a resume, a horizon past quiescence (flushing later
		// daemons), and a late chain after the horizon.
		d.at(42*time.Microsecond, func() { d.stop() })
		q1 := d.run() // stops at 42µs
		record("stopped", q1)
		q2 := d.run() // resumes to quiescence
		record("quiesced", q2)
		d.runUntil(q2 + 100*time.Microsecond)
		record("flushed", q2+100*time.Microsecond)
	}

	var classicLog []string
	eng := New()
	workload(driver{
		now:      func(int) Time { return eng.Now() },
		send:     func(from, to int, tm Time, fn func()) { eng.SendFrom(int32(from), tm, fn) },
		at:       eng.At,
		daemonAt: eng.DaemonAt,
		run:      eng.Run,
		runUntil: func(tm Time) { eng.RunUntil(tm) },
		stop:     eng.Stop,
	}, &classicLog)

	var fastLog []string
	se := NewSharded(1)
	ringTopology(se, nodes, 1, time.Microsecond)
	workload(driver{
		now:      func(n int) Time { return se.NowAt(int32(n)) },
		send:     func(from, to int, tm Time, fn func()) { se.SendAt(int32(from), int32(to), tm, fn) },
		at:       se.At,
		daemonAt: se.DaemonAt,
		run:      se.Run,
		runUntil: func(tm Time) { se.RunUntil(tm) },
		stop:     se.Stop,
	}, &fastLog)

	if len(fastLog) != len(classicLog) {
		t.Fatalf("fast path logged %d events, classic %d", len(fastLog), len(classicLog))
	}
	for i := range classicLog {
		if fastLog[i] != classicLog[i] {
			t.Fatalf("event %d: fast path %s, classic %s", i, fastLog[i], classicLog[i])
		}
	}
}

// mix is a stateless hash driving the randomized workloads below: every
// configuration derives the identical workload from (node, remaining), with
// no shared mutable RNG that concurrent shard goroutines would race on.
func mix(a, b int) uint64 {
	x := uint64(a)*0x9E3779B97F4A7C15 + uint64(b)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// TestShardedBatchDeterminism pins the batching invariant at the engine
// level: a randomized cross-shard workload leaves every node with exactly
// the same execution trace — its sequence of (virtual time) visits — for
// every combination of shard count, window batch and execution mode (inline
// sequential vs worker goroutines).
func TestShardedBatchDeterminism(t *testing.T) {
	const nodes = 24
	run := func(shards, batch int, parallel bool) [][]Time {
		se := NewSharded(shards)
		se.SetWindowBatch(batch)
		se.SetParallel(parallel)
		ringTopology(se, nodes, shards, time.Microsecond)
		// Per-node traces: a node's events always execute on its owning
		// shard, sequentially, so appends to a node's slice never race.
		logs := make([][]Time, nodes)
		var hop func(node, remaining int)
		hop = func(node, remaining int) {
			logs[node] = append(logs[node], se.NowAt(int32(node)))
			if remaining == 0 {
				return
			}
			to := (node + 1 + int(mix(node, remaining)%uint64(nodes-1))) % nodes
			d := time.Duration(1+mix(remaining, node)%9) * time.Microsecond
			se.SendAt(int32(node), int32(to), se.NowAt(int32(node))+d, func() {
				hop(to, remaining-1)
			})
		}
		for c := 0; c < 16; c++ {
			start := c % nodes
			se.At(time.Duration(c)*3*time.Microsecond, func() { hop(start, 60) })
		}
		// A couple of later global events interrupt batches mid-stream.
		se.At(100*time.Microsecond, func() {})
		se.At(333*time.Microsecond, func() {})
		se.Run()
		return logs
	}
	base := run(1, 1, false)
	for _, shards := range []int{1, 2, 4, 8} {
		for _, batch := range []int{1, 2, 16} {
			for _, parallel := range []bool{false, true} {
				got := run(shards, batch, parallel)
				for n := range base {
					if len(got[n]) != len(base[n]) {
						t.Fatalf("shards=%d batch=%d parallel=%v: node %d ran %d events, want %d",
							shards, batch, parallel, n, len(got[n]), len(base[n]))
					}
					for i := range base[n] {
						if got[n][i] != base[n][i] {
							t.Fatalf("shards=%d batch=%d parallel=%v: node %d event %d at %v, want %v",
								shards, batch, parallel, n, i, got[n][i], base[n][i])
						}
					}
				}
			}
		}
	}
}

// TestSerialMatchesShardedOrder: the serial Engine driving a creator-keyed
// workload (SendFrom) executes in exactly the sharded engine's global order.
// The sharded run uses inline sequential mode, whose single goroutine makes
// the global execution order observable.
func TestSerialMatchesShardedOrder(t *testing.T) {
	const nodes = 12
	workload := func(now func(int) Time, send func(from, to int, t Time, fn func()), at func(Time, func()), log *[]string) {
		record := func(node int, t Time) {
			*log = append(*log, fmt.Sprintf("%d@%v", node, t))
		}
		var hop func(node, remaining int)
		hop = func(node, remaining int) {
			record(node, now(node))
			if remaining == 0 {
				return
			}
			to := (node + 1 + int(mix(node, remaining)%uint64(nodes-1))) % nodes
			send(node, to, now(node)+time.Microsecond, func() { hop(to, remaining-1) })
		}
		for c := 0; c < 8; c++ {
			start := c % nodes
			// Same-instant starts force tie-breaks through the creator keys.
			at(time.Duration(c%3)*time.Microsecond, func() { hop(start, 40) })
		}
	}

	var serialLog []string
	eng := New()
	workload(func(int) Time { return eng.Now() },
		func(from, to int, tm Time, fn func()) { eng.SendFrom(int32(from), tm, fn) },
		eng.At, &serialLog)
	eng.Run()

	// One shard is the sharded-serial reference: its single heap executes in
	// global key order, which must be exactly the serial engine's order.
	// (Multi-shard runs preserve per-node traces, not the global interleaving
	// — see TestShardedBatchDeterminism.)
	var shardedLog []string
	se := NewSharded(1)
	se.SetParallel(false)
	ringTopology(se, nodes, 1, time.Microsecond)
	workload(func(n int) Time { return se.NowAt(int32(n)) },
		func(from, to int, tm Time, fn func()) { se.SendAt(int32(from), int32(to), tm, fn) },
		se.At, &shardedLog)
	se.Run()
	if len(shardedLog) != len(serialLog) {
		t.Fatalf("%d events, want %d", len(shardedLog), len(serialLog))
	}
	for i := range serialLog {
		if shardedLog[i] != serialLog[i] {
			t.Fatalf("event %d = %s, serial %s", i, shardedLog[i], serialLog[i])
		}
	}
}
