package sim

import (
	"testing"
	"time"
)

// ringTopology builds a partition of n nodes over k shards, round-robin, so
// neighboring nodes usually live on different shards — the worst case for
// the barrier protocol.
func ringTopology(se *ShardedEngine, n, k int, lookahead Time) {
	part := make([]int32, n)
	for i := range part {
		part[i] = int32(i % k)
	}
	se.SetTopology(n, part, lookahead)
}

// TestShardedBarrierStress ping-pongs messages around a cross-shard ring at
// exactly the lookahead bound: every window moves every chain by one hop, so
// the coordinator and the shard workers hammer the barrier protocol. Run
// with -race this doubles as the shard-barrier data-race test.
func TestShardedBarrierStress(t *testing.T) {
	const (
		nodes   = 32
		shards  = 8
		chains  = 64
		hops    = 400
		latency = time.Microsecond
	)
	se := NewSharded(shards)
	ringTopology(se, nodes, shards, latency)
	var delivered [chains]int
	var hop func(chain, node, remaining int)
	hop = func(chain, node, remaining int) {
		delivered[chain]++
		if remaining == 0 {
			return
		}
		next := (node + 1) % nodes
		se.SendAt(int32(node), int32(next), se.NowAt(int32(node))+latency, func() {
			hop(chain, next, remaining-1)
		})
	}
	for c := 0; c < chains; c++ {
		c := c
		start := c % nodes
		se.At(time.Duration(c)*10*time.Nanosecond, func() {
			hop(c, start, hops)
		})
	}
	q := se.Run()
	for c, got := range delivered {
		if got != hops+1 {
			t.Fatalf("chain %d delivered %d hops, want %d", c, got, hops+1)
		}
	}
	wantQ := time.Duration(chains-1)*10*time.Nanosecond + hops*latency
	if q != wantQ {
		t.Fatalf("quiescence %v, want %v", q, wantQ)
	}
	if se.Pending() != 0 {
		t.Fatalf("pending %d after Run", se.Pending())
	}
}

// TestShardedDaemonQuiescenceRule mirrors the serial engine's rule: global
// daemons due before the last regular event run, later ones do not.
func TestShardedDaemonQuiescenceRule(t *testing.T) {
	se := NewSharded(4)
	ringTopology(se, 8, 4, time.Microsecond)
	var ticks []Time
	for i := 1; i <= 10; i++ {
		at := time.Duration(i) * time.Millisecond
		se.DaemonAt(at, func() { ticks = append(ticks, at) })
	}
	// A regular chain that ends at 3.5ms.
	se.At(500*time.Microsecond, func() {
		se.SendAt(0, 1, se.NowAt(0)+time.Millisecond, func() {
			se.SendAt(1, 2, se.NowAt(1)+2*time.Millisecond, func() {})
		})
	})
	q := se.Run()
	if want := 3500 * time.Microsecond; q != want {
		t.Fatalf("quiescence %v, want %v", q, want)
	}
	if len(ticks) != 3 {
		t.Fatalf("daemons ran %d times (%v), want 3 (1ms, 2ms, 3ms)", len(ticks), ticks)
	}
	// RunUntil flushes the rest up to its horizon.
	se.RunUntil(7 * time.Millisecond)
	if len(ticks) != 7 {
		t.Fatalf("after RunUntil(7ms) daemons ran %d times, want 7", len(ticks))
	}
	if se.Now() != 7*time.Millisecond {
		t.Fatalf("Now() = %v, want 7ms", se.Now())
	}
}

// TestShardedRepartitionMidStream re-homes queued events to new owners and
// keeps the run's outcome unchanged.
func TestShardedRepartitionMidStream(t *testing.T) {
	run := func(repartition bool) []Time {
		se := NewSharded(4)
		ringTopology(se, 16, 4, time.Microsecond)
		var log []Time
		var hop func(node, remaining int)
		hop = func(node, remaining int) {
			log = append(log, se.NowAt(int32(node)))
			if remaining == 0 {
				return
			}
			next := (node + 5) % 16
			se.SendAt(int32(node), int32(next), se.NowAt(int32(node))+3*time.Microsecond, func() {
				hop(next, remaining-1)
			})
		}
		se.At(0, func() { hop(0, 100) })
		if repartition {
			se.At(50*time.Microsecond, func() {
				// Flip the partition: nodes move to the opposite shard.
				part := make([]int32, 16)
				for i := range part {
					part[i] = int32((i + 2) % 4)
				}
				se.SetTopology(16, part, time.Microsecond)
			})
		}
		se.Run()
		return log
	}
	plain, moved := run(false), run(true)
	if len(plain) != len(moved) {
		t.Fatalf("event counts differ: %d vs %d", len(plain), len(moved))
	}
	for i := range plain {
		if plain[i] != moved[i] {
			t.Fatalf("hop %d at %v with repartition, %v without", i, moved[i], plain[i])
		}
	}
}

// TestShardedStop stops mid-run and resumes.
func TestShardedStop(t *testing.T) {
	se := NewSharded(2)
	ringTopology(se, 4, 2, time.Microsecond)
	n := 0
	var hop func(node, remaining int)
	hop = func(node, remaining int) {
		n++
		if n == 10 {
			se.Stop()
		}
		if remaining == 0 {
			return
		}
		next := (node + 1) % 4
		se.SendAt(int32(node), int32(next), se.NowAt(int32(node))+time.Microsecond, func() { hop(next, remaining-1) })
	}
	se.At(0, func() { hop(0, 99) })
	se.Run()
	if n < 10 || n == 100 {
		t.Fatalf("stopped after %d events, want ≥ 10 and < 100", n)
	}
	se.Run() // resumes
	if n != 100 {
		t.Fatalf("resume executed %d events total, want 100", n)
	}
}
