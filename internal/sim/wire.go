package sim

import (
	"time"
)

// Wire models one directed physical link carrying control packets: a FIFO
// transmitter serialized at a fixed per-packet transmission time followed by
// a propagation delay. All control packets of all sessions crossing the same
// directed link share its wire, so hot links serialize control traffic —
// this queueing is what makes time-to-quiescence grow with session count in
// the paper's LAN scenarios.
//
// FIFO order is guaranteed: departures are serialized (monotone departure
// times) and the engine breaks equal-time ties in scheduling order.
type Wire struct {
	eng  Sched
	prop time.Duration
	tx   time.Duration // per-packet transmission (serialization) time
	free Time          // when the transmitter next becomes idle
	sent uint64
}

// Sched is the scheduling surface a wire needs: the clock of the sending
// side and absolute-time scheduling of the arrival. *Engine satisfies it
// directly; the sharded engine hands out per-link adapters whose Now is the
// sender shard's clock and whose At crosses into the receiver's shard.
type Sched interface {
	Now() Time
	At(t Time, fn func())
}

// NewWire returns a wire on the given scheduler with a propagation delay and
// a per-packet transmission time (0 for an ideal link).
func NewWire(eng Sched, propagation, txPerPacket time.Duration) *Wire {
	return &Wire{eng: eng, prop: propagation, tx: txPerPacket}
}

// Send schedules deliver to run after the packet is serialized onto the wire
// and propagates. It returns the arrival time.
func (w *Wire) Send(deliver func()) Time {
	start := w.free
	if now := w.eng.Now(); start < now {
		start = now
	}
	w.free = start + w.tx
	arrival := w.free + w.prop
	w.sent++
	w.eng.At(arrival, deliver)
	return arrival
}

// Sent returns the number of packets sent on this wire.
func (w *Wire) Sent() uint64 { return w.sent }

// SetTx changes the per-packet transmission time — a capacity
// reconfiguration of the underlying link. Packets already serialized keep
// their departure times (w.free is untouched); only future sends use the new
// rate.
func (w *Wire) SetTx(txPerPacket time.Duration) { w.tx = txPerPacket }

// Idle reports whether the transmitter is neither sending nor backlogged at
// its scheduler's current clock. The transport's speculation gate checks it
// on every cut-link wire at a barrier: a busy cut wire means cross-shard
// traffic is in flight and an optimistic window would almost surely park.
func (w *Wire) Idle() bool { return w.free <= w.eng.Now() }

// Backlog returns how long a packet enqueued now would wait before starting
// transmission (a congestion signal for tests and metrics).
func (w *Wire) Backlog() time.Duration {
	if b := w.free - w.eng.Now(); b > 0 {
		return b
	}
	return 0
}
