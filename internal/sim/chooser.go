package sim

import "sort"

// Choice describes one enabled event at the current frontier time: an event
// the engine could legally execute next without violating the per-creator
// FIFO contract. At any instant the enabled set contains, for each creator
// with pending events at that instant, that creator's lowest-sequence event —
// reordering two events of the same creator would reorder a single node's
// scheduling stream (and, through the wire model, packet order on a link),
// which no real execution of the protocol can produce. Cross-creator ties are
// the genuine nondeterminism the paper's theorems quantify over.
type Choice struct {
	At     Time
	Seq    uint64
	Src    int32 // creator key (ExtCreator for At/After/DaemonAt)
	Owner  int32 // executing node (ExtCreator for global events)
	Daemon bool
}

// Chooser resolves same-time tie-breaks during exploration. Choose receives
// the enabled set for the frontier time, sorted by creator so that index 0 is
// the event the engine would run by default, and returns the index to execute
// next. Out-of-range returns are clamped. Choose is only consulted when the
// enabled set has two or more members; a Chooser that always returns 0
// reproduces the default (time, creator, creator-seq) order exactly.
//
// The candidate slice is reused between steps: implementations must not
// retain it past the call.
type Chooser interface {
	Choose(now Time, cands []Choice) int
}

// SetChooser installs (or, with nil, removes) a schedule controller. The
// engine consults it on every Step whose frontier has more than one enabled
// event. With no chooser installed Step takes the historical heap-pop path
// and performs no extra work — the hook is a single nil-check.
//
// SetChooser is exploration machinery (internal/mc); production and
// benchmark paths never install one.
func (e *Engine) SetChooser(c Chooser) { e.chooser = c }

// SendFromTo schedules fn at absolute time t with an explicit creator and an
// explicit owner: the node whose execution performs the scheduling and the
// node the callback executes on. The event key — and therefore the default
// total order — depends only on (t, creator, creator-seq), exactly as
// SendFrom; the owner rides along for the schedule explorer's independence
// relation (events whose owners are disjoint commute) and for sharded
// re-homing. SendFrom is SendFromTo with owner == creator.
//
//bneck:keyed assigns the (time, creator, creator-seq) key.
func (e *Engine) SendFromTo(creator, owner int32, t Time, fn func()) {
	if t < e.now {
		panic("sim: scheduling into the past")
	}
	if n := int(creator) + 1; n > len(e.ctr) {
		e.ctr = append(e.ctr, make([]uint64, n-len(e.ctr))...)
	}
	e.ctr[creator]++
	e.events.push(event{at: t, src: creator, seq: e.ctr[creator], fn: fn, owner: owner})
	e.regular++
}

// popChosen is the chooser-path replacement for eventQueue.pop: it collects
// the enabled set at the frontier time, asks the chooser to pick, and removes
// the picked event from an arbitrary heap position. It allocates only to grow
// the engine's reusable candidate buffers.
func (e *Engine) popChosen() event {
	t := e.events.minTime()
	cands := e.candBuf[:0]
	idx := e.candIdx[:0]
	// Events at the frontier time form a root-containing subtree of the heap
	// (every ancestor of a frontier event is itself at the frontier), but the
	// chooser path is exploration-only and frontiers are small, so a plain
	// scan keeps this obviously correct. Keep the minimum-sequence event per
	// creator: later same-creator events are not enabled (FIFO).
	for i := range e.events.ev {
		ev := &e.events.ev[i]
		if ev.at != t {
			continue
		}
		found := false
		for j := range cands {
			if cands[j].Src == ev.src {
				found = true
				if ev.seq < cands[j].Seq {
					cands[j] = Choice{At: ev.at, Seq: ev.seq, Src: ev.src, Owner: ev.owner, Daemon: ev.daemon}
					idx[j] = i
				}
				break
			}
		}
		if !found {
			cands = append(cands, Choice{At: ev.at, Seq: ev.seq, Src: ev.src, Owner: ev.owner, Daemon: ev.daemon})
			idx = append(idx, i)
		}
	}
	e.candBuf, e.candIdx = cands, idx
	if len(cands) == 1 {
		return e.events.pop()
	}
	// Sort by creator so index 0 is the default heap order; a pick of 0 at
	// every step is byte-identical to running without a chooser.
	sort.Sort(&candSorter{cands, idx})
	k := e.chooser.Choose(t, cands)
	if k < 0 || k >= len(cands) {
		k = 0
	}
	return e.events.removeAt(idx[k])
}

// candSorter sorts the candidate slice and its parallel heap-index slice by
// creator. Keys at one instant are unique per creator, so creator order is a
// total order on the enabled set.
type candSorter struct {
	c []Choice
	i []int
}

func (s *candSorter) Len() int           { return len(s.c) }
func (s *candSorter) Less(a, b int) bool { return s.c[a].Src < s.c[b].Src }
func (s *candSorter) Swap(a, b int) {
	s.c[a], s.c[b] = s.c[b], s.c[a]
	s.i[a], s.i[b] = s.i[b], s.i[a]
}

// removeAt deletes and returns the event at heap slot i, restoring the heap
// by moving the tail element into the hole and sifting it in whichever
// direction it violates the ordering. Removing a non-minimum element is what
// lets the chooser run an enabled event that is not the global key minimum.
func (q *eventQueue) removeAt(i int) event {
	out := q.ev[i]
	n := len(q.ev) - 1
	last := q.ev[n]
	q.ev[n] = event{} // release the closure reference
	q.ev = q.ev[:n]
	if i == n {
		return out
	}
	// Sift down from i.
	j := i
	for {
		first := 4*j + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.ev[c].before(q.ev[min]) {
				min = c
			}
		}
		if !q.ev[min].before(last) {
			break
		}
		q.ev[j] = q.ev[min]
		j = min
	}
	if j == i {
		// Did not move down; sift up instead.
		for j > 0 {
			p := (j - 1) / 4
			if !last.before(q.ev[p]) {
				break
			}
			q.ev[j] = q.ev[p]
			j = p
		}
	}
	q.ev[j] = last
	return out
}
