package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refEvent / refHeap is the original container/heap-based event queue, kept
// here as the executable specification the inlined 4-ary heap must match:
// pop order is (time, sequence number) ascending, i.e. same-time events
// drain in push order.
type refEvent struct {
	at  Time
	seq uint64
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// TestPropHeapMatchesContainerHeap drives the value-typed 4-ary queue and
// the container/heap reference through identical random schedules —
// including heavy same-time ties and interleaved pushes and pops — and
// requires bit-identical drain order.
func TestPropHeapMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		var q eventQueue
		ref := &refHeap{}
		seq := uint64(0)
		// Few distinct timestamps => many FIFO ties.
		distinct := 1 + rng.Intn(20)
		steps := 1 + rng.Intn(500)
		pending := 0
		check := func(op string) {
			got := q.pop()
			want := heap.Pop(ref).(*refEvent)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("iter %d %s: popped (at=%v seq=%d), reference (at=%v seq=%d)",
					iter, op, got.at, got.seq, want.at, want.seq)
			}
		}
		for s := 0; s < steps; s++ {
			if pending > 0 && rng.Intn(3) == 0 {
				check("interleaved")
				pending--
				continue
			}
			at := time.Duration(rng.Intn(distinct)) * time.Microsecond
			seq++
			q.push(event{at: at, seq: seq})
			heap.Push(ref, &refEvent{at: at, seq: seq})
			pending++
		}
		for pending > 0 {
			check("drain")
			pending--
		}
		if q.len() != 0 || ref.Len() != 0 {
			t.Fatalf("iter %d: queues not empty (%d, %d)", iter, q.len(), ref.Len())
		}
	}
}

// TestHeapPopReleasesClosure guards against the value heap pinning executed
// closures: the vacated tail slot must be zeroed so the GC can reclaim the
// captured state.
func TestHeapPopReleasesClosure(t *testing.T) {
	var q eventQueue
	q.push(event{at: 1, seq: 1, fn: func() {}})
	q.pop()
	if q.ev[:1][0].fn != nil {
		t.Fatal("popped slot still references its closure")
	}
}

// TestStopThenRun is the regression test for Engine.Run's stopped flag: a
// Stop must halt only the current Run/RunUntil, and any later Run or
// RunUntil must clear it and resume from where the engine halted.
func TestStopThenRun(t *testing.T) {
	e := New()
	ran := 0
	for i := 1; i <= 6; i++ {
		i := i
		e.At(time.Duration(i)*time.Millisecond, func() {
			ran++
			if i == 2 || i == 4 {
				e.Stop()
			}
		})
	}
	if q := e.Run(); q != 2*time.Millisecond || ran != 2 {
		t.Fatalf("first Run: q=%v ran=%d", q, ran)
	}
	// Re-entering Run must clear the Stop and make progress again.
	if q := e.Run(); q != 4*time.Millisecond || ran != 4 {
		t.Fatalf("second Run: q=%v ran=%d", q, ran)
	}
	// RunUntil after a Stop must equally resume.
	e.RunUntil(10 * time.Millisecond)
	if ran != 6 {
		t.Fatalf("RunUntil after Stop: ran=%d", ran)
	}
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("Now = %v", e.Now())
	}
	// A stray Stop with nothing running must not wedge the next Run.
	e.Stop()
	fired := false
	e.At(11*time.Millisecond, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("Run after idle Stop did not execute events")
	}
}

func BenchmarkEventQueue(b *testing.B) {
	b.Run("PushPop/1024", func(b *testing.B) {
		var q eventQueue
		q.grow(1024)
		for i := 0; i < 1024; i++ {
			q.push(event{at: Time(i % 37), seq: uint64(i)})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev := q.pop()
			ev.seq = uint64(i + 1024)
			ev.at += 37
			q.push(ev)
		}
	})
}
