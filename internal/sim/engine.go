// Package sim is a deterministic discrete event simulator, the substitute
// for the modified Peersim substrate the paper evaluates on. It provides a
// virtual clock, an event queue with stable FIFO tie-breaking, and a FIFO
// link (wire) model with transmission serialization and propagation delay.
//
// The event queue is an inlined value-typed 4-ary min-heap ordered by
// (time, sequence number): events are stored as struct values in one
// contiguous slice, so scheduling performs no per-event heap allocation and
// no interface boxing (unlike container/heap). A 4-ary layout halves the
// tree depth of a binary heap, trading a few extra comparisons per level
// for better cache locality on the sift path; push and pop are O(log₄ n).
// Equal-time events fire in scheduling order, which makes runs
// deterministic.
package sim

import (
	"fmt"
	"time"
)

// Time is virtual simulation time measured from the start of the run.
type Time = time.Duration

// Engine is a single-threaded discrete event scheduler. Events scheduled for
// the same instant run in key order — (time, creator, creator sequence), the
// same total order the sharded engine uses — which makes runs deterministic
// and byte-identical to a 1-shard sharded run of the same workload. Events
// scheduled without a creator (At/After/DaemonAt) share the ExtCreator
// bucket and fire in scheduling order among themselves, the engine's
// historical contract.
//
// Events come in two flavors: regular events keep Run alive, daemon events
// (periodic measurement ticks and the like) do not — Run returns when only
// daemon events remain, which is exactly the paper's quiescence instant for
// a workload with finitely many session events.
type Engine struct {
	now      Time
	events   eventQueue
	seq      uint64
	ctr      []uint64 // per-creator sequence counters for SendFrom
	regular  int      // number of non-daemon events in the heap
	stopped  bool     // Stop was called; Run unwinds
	nEvents  uint64
	lastBusy Time // time of the most recently executed regular event

	// Schedule-exploration hook (internal/mc): nil in production, so the
	// Step hot path pays one predictable branch and nothing else.
	chooser Chooser
	candBuf []Choice
	candIdx []int
}

// New returns an engine with the clock at 0.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// LastBusy returns the execution time of the most recent regular
// (non-daemon) event — once Run returns, this is the quiescence instant.
func (e *Engine) LastBusy() Time { return e.lastBusy }

// Events returns the total number of events executed.
func (e *Engine) Events() uint64 { return e.nEvents }

// At schedules fn to run at the given absolute virtual time, which must not
// be in the past.
func (e *Engine) At(t Time, fn func()) {
	e.schedule(t, fn, false)
}

// After schedules fn to run d from now (d < 0 is clamped to now).
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, fn, false)
}

// DaemonAt schedules a daemon event: it runs like a regular event, but does
// not keep Run alive.
func (e *Engine) DaemonAt(t Time, fn func()) {
	e.schedule(t, fn, true)
}

// schedule assigns the ExtCreator key: external events order by a single
// engine-wide sequence, matching the sharded engine's global bucket.
//
//bneck:keyed
func (e *Engine) schedule(t Time, fn func(), daemon bool) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	e.seq++
	e.events.push(event{at: t, src: ExtCreator, seq: e.seq, fn: fn, owner: ExtCreator, daemon: daemon})
	if !daemon {
		e.regular++
	}
}

// SendFrom schedules fn at absolute time t with an explicit creator: the
// node whose execution performs the scheduling. Events share the exact
// (time, creator, creator sequence) key order of the sharded engine, so a
// workload scheduled through SendFrom (plus At for external events) executes
// in the same total order on this engine and on a sharded engine at any
// shard count — the bridge that makes classic runs byte-identical to
// sharded ones.
//
//bneck:keyed assigns the (time, creator, creator-seq) key.
func (e *Engine) SendFrom(creator int32, t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	if n := int(creator) + 1; n > len(e.ctr) {
		e.ctr = append(e.ctr, make([]uint64, n-len(e.ctr))...)
	}
	e.ctr[creator]++
	e.events.push(event{at: t, src: creator, seq: e.ctr[creator], fn: fn, owner: creator})
	e.regular++
}

// Step executes the next event. It returns false when no events remain.
// With a Chooser installed (SetChooser), the event is picked from the
// enabled set at the frontier time instead of popped in key order.
func (e *Engine) Step() bool {
	if e.events.len() == 0 {
		return false
	}
	var ev event
	if e.chooser == nil {
		ev = e.events.pop()
	} else {
		ev = e.popChosen()
	}
	e.now = ev.at
	if !ev.daemon {
		e.regular--
		e.lastBusy = ev.at
	}
	e.nEvents++
	ev.fn()
	return true
}

// Run executes events until no regular events remain (daemon events that are
// already due before the last regular event still run in order). It returns
// the quiescence time: the timestamp of the last regular event executed.
// A preceding Stop is cleared on entry, so Run can resume a stopped engine.
func (e *Engine) Run() Time {
	e.stopped = false
	for e.regular > 0 && !e.stopped {
		if !e.Step() {
			break
		}
	}
	return e.lastBusy
}

// RunUntil executes all events (regular and daemon) scheduled strictly
// before or at t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for e.events.len() > 0 && e.events.minTime() <= t && !e.stopped {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Stop makes the innermost Run/RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of regular (non-daemon) events in the heap.
func (e *Engine) Pending() int { return e.regular }

// event is one scheduled callback. Events are stored by value inside the
// queue's backing slice; nothing outside the queue holds a reference.
//
// Both engines key events by (time, creator, per-creator sequence): src is
// the node whose execution scheduled the event — ExtCreator for At/After/
// DaemonAt, which therefore sort before all node creators at the same
// instant and keep their historical scheduling order among themselves — and
// seq counts that creator's schedulings. The serial Engine stamps creators
// through SendFrom; the sharded engine through SendAt. The shared keying
// makes the total order independent of how nodes are partitioned into
// shards, and makes serial runs byte-identical to sharded ones. owner is
// the node the event executes on, so a repartition can re-home queued
// events and the schedule explorer can decide which events commute (the
// serial engine stamps it via SendFromTo, defaulting to the creator).
type event struct {
	at     Time
	seq    uint64
	fn     func()
	src    int32
	owner  int32
	daemon bool
}

// before is the queue ordering: earlier time first, then creator, then the
// creator's scheduling order. Keys are unique: a creator never reuses a
// sequence number.
func (ev event) before(other event) bool {
	if ev.at != other.at {
		return ev.at < other.at
	}
	if ev.src != other.src {
		return ev.src < other.src
	}
	return ev.seq < other.seq
}

// eventQueue is a 4-ary min-heap of event values: children of slot i live at
// 4i+1..4i+4, the parent of slot i at (i-1)/4. The minimum is at slot 0.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

// minTime returns the timestamp of the earliest event. The queue must be
// non-empty.
func (q *eventQueue) minTime() Time { return q.ev[0].at }

func (q *eventQueue) grow(n int) {
	if cap(q.ev) < n {
		next := make([]event, len(q.ev), n)
		copy(next, q.ev)
		q.ev = next
	}
}

func (q *eventQueue) push(ev event) {
	q.ev = append(q.ev, ev)
	// Sift up: move the hole from the tail toward the root until the parent
	// is no later than ev.
	i := len(q.ev) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !ev.before(q.ev[p]) {
			break
		}
		q.ev[i] = q.ev[p]
		i = p
	}
	q.ev[i] = ev
}

func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	last := q.ev[n]
	q.ev[n] = event{} // release the closure reference
	q.ev = q.ev[:n]
	if n == 0 {
		return top
	}
	// Sift down: move the hole from the root toward the leaves, pulling up
	// the smallest child, until `last` fits.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.ev[c].before(q.ev[min]) {
				min = c
			}
		}
		if !q.ev[min].before(last) {
			break
		}
		q.ev[i] = q.ev[min]
		i = min
	}
	q.ev[i] = last
	return top
}
