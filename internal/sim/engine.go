// Package sim is a deterministic discrete event simulator, the substitute
// for the modified Peersim substrate the paper evaluates on. It provides a
// virtual clock, an event heap with stable FIFO tie-breaking, and a FIFO
// link (wire) model with transmission serialization and propagation delay.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is virtual simulation time measured from the start of the run.
type Time = time.Duration

// Engine is a single-threaded discrete event scheduler. Events scheduled for
// the same instant run in scheduling order, which makes runs deterministic.
//
// Events come in two flavors: regular events keep Run alive, daemon events
// (periodic measurement ticks and the like) do not — Run returns when only
// daemon events remain, which is exactly the paper's quiescence instant for
// a workload with finitely many session events.
type Engine struct {
	now      Time
	events   eventHeap
	seq      uint64
	regular  int  // number of non-daemon events in the heap
	stopped  bool // Stop was called; Run unwinds
	nEvents  uint64
	lastBusy Time // time of the most recently executed regular event
}

// New returns an engine with the clock at 0.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// LastBusy returns the execution time of the most recent regular
// (non-daemon) event — once Run returns, this is the quiescence instant.
func (e *Engine) LastBusy() Time { return e.lastBusy }

// Events returns the total number of events executed.
func (e *Engine) Events() uint64 { return e.nEvents }

// At schedules fn to run at the given absolute virtual time, which must not
// be in the past.
func (e *Engine) At(t Time, fn func()) {
	e.schedule(t, fn, false)
}

// After schedules fn to run d from now (d < 0 is clamped to now).
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, fn, false)
}

// DaemonAt schedules a daemon event: it runs like a regular event, but does
// not keep Run alive.
func (e *Engine) DaemonAt(t Time, fn func()) {
	e.schedule(t, fn, true)
}

func (e *Engine) schedule(t Time, fn func(), daemon bool) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn, daemon: daemon})
	if !daemon {
		e.regular++
	}
}

// Step executes the next event. It returns false when no events remain.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	if !ev.daemon {
		e.regular--
		e.lastBusy = ev.at
	}
	e.nEvents++
	ev.fn()
	return true
}

// Run executes events until no regular events remain (daemon events that are
// already due before the last regular event still run in order). It returns
// the quiescence time: the timestamp of the last regular event executed.
func (e *Engine) Run() Time {
	e.stopped = false
	for e.regular > 0 && !e.stopped {
		if !e.Step() {
			break
		}
	}
	return e.lastBusy
}

// RunUntil executes all events (regular and daemon) scheduled strictly
// before or at t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for e.events.Len() > 0 && e.events[0].at <= t && !e.stopped {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Stop makes the innermost Run/RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of regular (non-daemon) events in the heap.
func (e *Engine) Pending() int { return e.regular }

type event struct {
	at     Time
	seq    uint64
	fn     func()
	daemon bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
