package baseline

import (
	"math"
	"sort"
	"time"

	"bneck/internal/core"
)

// BFYZ is the per-session-state, non-quiescent representative of
// Experiment 3: a consistent-marking explicit-rate protocol in the
// Charny/ATM-ABR family that BFYZ (Bartal, Farach-Colton, Yooseph, Zhang
// 2002) belongs to. Each link remembers every session's last granted rate
// and advertises
//
//	adv = (C − Σ_{marked} λ_s) / (#unmarked)
//
// where a session is "marked" (restricted elsewhere) when its recorded rate
// is below the advertised rate; the marking is computed as a consistent
// fixpoint. Sources re-probe forever, so the protocol keeps injecting
// control packets after convergence — the behavior Figure 8 contrasts with
// B-Neck's quiescence — and rate estimates converge from above (links with
// few recorded sessions advertise optimistically), giving the positive
// transient errors of Figure 7.
type BFYZ struct{}

// Name implements Protocol.
func (BFYZ) Name() string { return "BFYZ" }

// NewLink implements Protocol.
func (BFYZ) NewLink(capacity float64) LinkAlgo {
	return &bfyzLink{capacity: capacity, adv: capacity, rates: make(map[core.SessionID]float64)}
}

type bfyzLink struct {
	capacity float64
	rates    map[core.SessionID]float64
	dirty    bool
	adv      float64
}

var _ LinkAlgo = (*bfyzLink)(nil)

// Forward offers the advertised fair share. A session unseen so far is
// registered with rate 0 (unmarked until its response records a real rate).
func (l *bfyzLink) Forward(s core.SessionID, req float64) float64 {
	if _, ok := l.rates[s]; !ok {
		l.rates[s] = 0
		l.dirty = true
	}
	adv := l.advertised()
	if req < adv {
		return req
	}
	return adv
}

// Reverse records the granted end-to-end rate.
func (l *bfyzLink) Reverse(s core.SessionID, granted float64) {
	if old, ok := l.rates[s]; !ok || old != granted {
		l.rates[s] = granted
		l.dirty = true
	}
}

// Remove implements LinkAlgo.
func (l *bfyzLink) Remove(s core.SessionID) {
	if _, ok := l.rates[s]; ok {
		delete(l.rates, s)
		l.dirty = true
	}
}

// Tick implements LinkAlgo (BFYZ has no periodic control law).
func (l *bfyzLink) Tick(time.Duration) {}

// advertised computes the marking fair share: with recorded rates sorted
// ascending and S_k the sum of the k smallest, the advertised rate is
//
//	max over k in [0, n) of (C − S_k)/(n − k)
//
// i.e., the best share obtainable by treating the k slowest sessions as
// restricted elsewhere. Taking the maximum (rather than the literal marking
// fixpoint) avoids the pseudo-saturation lockup Tsai & Kim identified in
// Charny's algorithm: a lone session whose recorded rate is below C/n would
// otherwise be "marked" against itself and never offered more.
func (l *bfyzLink) advertised() float64 {
	if !l.dirty {
		return l.adv
	}
	l.dirty = false
	n := len(l.rates)
	if n == 0 {
		l.adv = l.capacity
		return l.adv
	}
	rates := make([]float64, 0, n)
	for _, r := range l.rates {
		rates = append(rates, r)
	}
	sort.Float64s(rates)
	best := l.capacity / float64(n) // k = 0
	sum := 0.0
	for k := 1; k < n; k++ {
		sum += rates[k-1]
		if cand := (l.capacity - sum) / float64(n-k); cand > best {
			best = cand
		}
	}
	l.adv = math.Max(best, 0)
	return l.adv
}
