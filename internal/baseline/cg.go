package baseline

import (
	"time"

	"bneck/internal/core"
)

// CG is the constant-router-state representative of Experiment 3
// (Cobb–Gouda family: "Stabilization of max-min fair networks without
// per-flow state"). A link keeps only three scalars — an advertised share,
// and the offered load and probe count measured over the current period —
// and adapts the share multiplicatively each tick:
//
//	share ← share · (1 + κ·(C − y)/C),  clamped to [C/10^6, C]
//
// where y is the aggregate rate observed from passing responses. With no
// per-session state the link cannot tell who is bottlenecked where, so
// convergence is slow and oscillatory; as in the paper, it fails to settle
// for large session counts in bounded time.
type CG struct {
	// Kappa is the adaptation gain (default 0.4).
	Kappa float64
}

// Name implements Protocol.
func (CG) Name() string { return "CG" }

// NewLink implements Protocol.
func (c CG) NewLink(capacity float64) LinkAlgo {
	k := c.Kappa
	if k == 0 {
		k = 0.4
	}
	return &cgLink{capacity: capacity, share: capacity, kappa: k}
}

type cgLink struct {
	capacity float64
	share    float64
	kappa    float64
	// Period measurements (constant state: two scalars).
	offered float64
	probes  int
}

var _ LinkAlgo = (*cgLink)(nil)

// Forward offers the current share estimate.
func (l *cgLink) Forward(s core.SessionID, req float64) float64 {
	l.probes++
	if req < l.share {
		return req
	}
	return l.share
}

// Reverse accumulates the offered load measurement.
func (l *cgLink) Reverse(s core.SessionID, granted float64) {
	l.offered += granted
}

// Remove implements LinkAlgo (no per-session state to clear).
func (l *cgLink) Remove(core.SessionID) {}

// Tick applies the control law over the period's measurements. The
// per-tick decrease is bounded (halving at most): with hundreds of sessions
// on a link the raw multiplicative term goes hugely negative on the first
// measurement and would slam the share to the floor, which no sane AIMD
// implementation does.
func (l *cgLink) Tick(time.Duration) {
	if l.probes == 0 {
		// No traffic: relax toward full capacity.
		l.share = l.capacity
		return
	}
	y := l.offered
	factor := 1 + l.kappa*(l.capacity-y)/l.capacity
	if factor < 0.5 {
		factor = 0.5
	}
	l.share *= factor
	if l.share > l.capacity {
		l.share = l.capacity
	}
	if min := l.capacity * 1e-6; l.share < min {
		l.share = min
	}
	l.offered = 0
	l.probes = 0
}
