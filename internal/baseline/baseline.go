// Package baseline implements the three non-quiescent comparison protocols
// of the paper's Experiment 3:
//
//   - BFYZ-style: per-session state at links, consistent-marking explicit
//     rates (the Charny/ATM-ABR family BFYZ belongs to)
//   - CG-style: constant per-link state, periodic share adaptation
//     (Cobb–Gouda family)
//   - RCP: processor-sharing congestion control with the published RCP
//     control law
//
// All three share the same execution shape, which is exactly what makes
// them non-quiescent: every source re-probes its path forever on a fixed
// period, so control traffic never stops (Figure 8), and transient rate
// estimates can exceed the fair rates (Figure 7). Rates here are float64:
// these protocols are approximate by design, none of their decisions
// depends on exact equality.
//
// The exact BFYZ and CG pseudocode is not reproduced in the B-Neck paper;
// DESIGN.md documents the substitution rationale.
package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"bneck/internal/core"
	"bneck/internal/graph"
	"bneck/internal/metrics"
	"bneck/internal/sim"
)

// LinkAlgo is the per-link behavior that distinguishes the protocols.
type LinkAlgo interface {
	// Forward processes a downstream probe: the session requests req (its
	// demand capped by upstream links); the link returns the rate it can
	// offer.
	Forward(s core.SessionID, req float64) float64
	// Reverse processes the upstream response carrying the end-to-end
	// granted rate.
	Reverse(s core.SessionID, granted float64)
	// Remove clears any per-session state on leave.
	Remove(s core.SessionID)
	// Tick runs the link's periodic control-law update (may be a no-op).
	Tick(period time.Duration)
}

// Protocol builds per-link algorithm instances.
type Protocol interface {
	Name() string
	NewLink(capacity float64) LinkAlgo
}

// Config tunes a baseline run.
type Config struct {
	// Period is the source re-probe interval and the link control-law tick.
	Period time.Duration
	// ControlPacketBits sizes per-packet transmission time, as in the
	// B-Neck network harness.
	ControlPacketBits int64
	// BinSize bins packet counts over time (Figure 8).
	BinSize time.Duration
	// Seed randomizes per-session probe phases.
	Seed int64
}

// DefaultConfig matches the B-Neck harness where applicable.
func DefaultConfig() Config {
	return Config{
		Period:            5 * time.Millisecond,
		ControlPacketBits: 512,
		BinSize:           3 * time.Millisecond,
		Seed:              1,
	}
}

// Session is one session run by a baseline protocol.
type Session struct {
	ID     core.SessionID
	Path   graph.Path
	Demand float64
	rate   float64
	active bool
}

// Rate returns the session's current rate estimate.
func (s *Session) Rate() float64 { return s.rate }

// Active reports whether the session is running.
func (s *Session) Active() bool { return s.active }

// Harness runs a baseline protocol over the simulator: per-session periodic
// probe cycles (down the path and back), per-link periodic ticks.
type Harness struct {
	cfg       Config
	g         *graph.Graph
	eng       *sim.Engine
	proto     Protocol
	links     map[graph.LinkID]LinkAlgo
	linkOrder []graph.LinkID
	wires     map[graph.LinkID]*sim.Wire
	sessions  map[core.SessionID]*Session
	order     []core.SessionID
	stats     *metrics.PacketStats
	rng       *rand.Rand
	nextID    core.SessionID
	stopAt    sim.Time // probes scheduled past this time are suppressed
}

// NewHarness returns a baseline runner over g driven by eng.
func NewHarness(g *graph.Graph, eng *sim.Engine, proto Protocol, cfg Config) *Harness {
	if cfg.Period <= 0 {
		cfg.Period = DefaultConfig().Period
	}
	return &Harness{
		cfg:      cfg,
		g:        g,
		eng:      eng,
		proto:    proto,
		links:    make(map[graph.LinkID]LinkAlgo),
		wires:    make(map[graph.LinkID]*sim.Wire),
		sessions: make(map[core.SessionID]*Session),
		stats:    metrics.NewPacketStats(cfg.BinSize),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		nextID:   1,
		stopAt:   math.MaxInt64,
	}
}

// Stats returns the packet statistics collector.
func (h *Harness) Stats() *metrics.PacketStats { return h.stats }

// Protocol returns the protocol under test.
func (h *Harness) Protocol() Protocol { return h.proto }

// Sessions returns all sessions in creation order.
func (h *Harness) Sessions() []*Session {
	out := make([]*Session, 0, len(h.order))
	for _, id := range h.order {
		out = append(out, h.sessions[id])
	}
	return out
}

// NewSession registers a session; schedule its join separately.
func (h *Harness) NewSession(path graph.Path, demand float64) (*Session, error) {
	if err := graph.ValidatePath(h.g, path); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	s := &Session{ID: h.nextID, Path: path, Demand: demand}
	h.nextID++
	h.sessions[s.ID] = s
	h.order = append(h.order, s.ID)
	return s, nil
}

// ScheduleJoin activates the session at time at; its first probe fires
// immediately, later ones every Period (with a random initial phase to
// desynchronize sources).
func (h *Harness) ScheduleJoin(s *Session, at sim.Time) {
	h.eng.At(at, func() {
		s.active = true
		h.probe(s)
	})
}

// ScheduleLeave deactivates the session and clears its path state.
func (h *Harness) ScheduleLeave(s *Session, at sim.Time) {
	h.eng.At(at, func() {
		s.active = false
		s.rate = 0
		for _, l := range s.Path {
			h.link(l).Remove(s.ID)
		}
	})
}

// StopProbing prevents scheduling probes past t, so RunUntil(t) terminates
// even though the protocols are non-quiescent.
func (h *Harness) StopProbing(t sim.Time) { h.stopAt = t }

// StartTicks begins the per-link periodic control-law updates. Call once,
// before Run.
func (h *Harness) StartTicks() {
	var tick func()
	tick = func() {
		for _, id := range h.linkOrder {
			h.links[id].Tick(h.cfg.Period)
		}
		next := h.eng.Now() + h.cfg.Period
		if next <= h.stopAt {
			h.eng.DaemonAt(next, tick)
		}
	}
	h.eng.DaemonAt(h.eng.Now()+h.cfg.Period, tick)
}

// probe runs one full probe cycle for s as a chain of wire deliveries, then
// schedules the next cycle.
func (h *Harness) probe(s *Session) {
	if !s.active || h.eng.Now() > h.stopAt {
		return
	}
	h.forward(s, 0, s.Demand)
}

// forward advances the downstream pass at path index i.
func (h *Harness) forward(s *Session, i int, req float64) {
	if !s.active {
		return
	}
	if i == len(s.Path) {
		// Destination reached: turn around.
		h.reverse(s, len(s.Path)-1, req)
		return
	}
	granted := h.link(s.Path[i]).Forward(s.ID, req)
	if granted > req {
		granted = req
	}
	h.stats.Record(core.PktProbe, h.eng.Now())
	h.wire(s.Path[i]).Send(func() { h.forward(s, i+1, granted) })
}

// reverse advances the upstream pass at path index i.
func (h *Harness) reverse(s *Session, i int, granted float64) {
	if !s.active {
		return
	}
	if i < 0 {
		// Back at the source: adopt the rate, schedule the next cycle.
		s.rate = granted
		next := h.eng.Now() + h.jittered()
		if next <= h.stopAt {
			h.eng.At(next, func() { h.probe(s) })
		}
		return
	}
	h.link(s.Path[i]).Reverse(s.ID, granted)
	h.stats.Record(core.PktResponse, h.eng.Now())
	rev := h.g.Link(s.Path[i]).Reverse
	h.wire(rev).Send(func() { h.reverse(s, i-1, granted) })
}

// jittered returns the probe period with ±10% jitter, preventing lockstep
// probe storms.
func (h *Harness) jittered() time.Duration {
	p := int64(h.cfg.Period)
	return time.Duration(p - p/10 + h.rng.Int63n(p/5+1))
}

func (h *Harness) link(id graph.LinkID) LinkAlgo {
	if a, ok := h.links[id]; ok {
		return a
	}
	a := h.proto.NewLink(h.g.Link(id).Capacity.Float64())
	h.links[id] = a
	h.linkOrder = append(h.linkOrder, id)
	return a
}

func (h *Harness) wire(id graph.LinkID) *sim.Wire {
	if w, ok := h.wires[id]; ok {
		return w
	}
	l := h.g.Link(id)
	var tx time.Duration
	if h.cfg.ControlPacketBits > 0 {
		bps := l.Capacity.Float64()
		if bps > 0 {
			tx = time.Duration(float64(h.cfg.ControlPacketBits) / bps * float64(time.Second))
		}
	}
	w := sim.NewWire(h.eng, l.Propagation, tx)
	h.wires[id] = w
	return w
}

// SnapshotRates returns the current rate estimate of every active session.
func (h *Harness) SnapshotRates() map[core.SessionID]float64 {
	out := make(map[core.SessionID]float64)
	for _, id := range h.order {
		s := h.sessions[id]
		if s.active {
			out[id] = s.rate
		}
	}
	return out
}
