package baseline

import (
	"math"
	"testing"
	"time"

	"bneck/internal/core"
	"bneck/internal/graph"
	"bneck/internal/rate"
	"bneck/internal/sim"
)

// buildShared returns a graph where nSess host pairs share one middle link
// of the given capacity, and the session paths.
func buildShared(t *testing.T, nSess int, mid rate.Rate) (*graph.Graph, []graph.Path) {
	t.Helper()
	g := graph.New()
	r1 := g.AddRouter("r1")
	r2 := g.AddRouter("r2")
	g.Connect(r1, r2, mid, time.Microsecond)
	res := graph.NewResolver(g, 16)
	paths := make([]graph.Path, nSess)
	for i := range paths {
		ha := g.AddHost("ha")
		hb := g.AddHost("hb")
		g.Connect(ha, r1, rate.Mbps(1000), time.Microsecond)
		g.Connect(hb, r2, rate.Mbps(1000), time.Microsecond)
		p, err := graph.NewResolver(g, 16).HostPath(ha, hb)
		if err != nil {
			t.Fatal(err)
		}
		paths[i] = p
	}
	_ = res
	return g, paths
}

func runProtocol(t *testing.T, proto Protocol, nSess int, horizon time.Duration) (*Harness, []*Session) {
	t.Helper()
	g, paths := buildShared(t, nSess, rate.Mbps(100))
	eng := sim.New()
	h := NewHarness(g, eng, proto, DefaultConfig())
	sessions := make([]*Session, nSess)
	for i, p := range paths {
		s, err := h.NewSession(p, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
		h.ScheduleJoin(s, time.Duration(i)*10*time.Microsecond)
	}
	h.StartTicks()
	h.StopProbing(horizon)
	eng.RunUntil(horizon)
	return h, sessions
}

func TestBFYZConvergesToFairShare(t *testing.T) {
	const n = 4
	_, sessions := runProtocol(t, BFYZ{}, n, 200*time.Millisecond)
	want := 100e6 / float64(n)
	for i, s := range sessions {
		if math.Abs(s.Rate()-want)/want > 0.01 {
			t.Fatalf("session %d rate %.0f, want ~%.0f", i, s.Rate(), want)
		}
	}
}

func TestBFYZOverestimatesTransiently(t *testing.T) {
	// The first session to probe alone sees the whole link: its estimate
	// starts above the final fair share — the Figure 7 overshoot.
	g, paths := buildShared(t, 2, rate.Mbps(100))
	eng := sim.New()
	h := NewHarness(g, eng, BFYZ{}, DefaultConfig())
	s1, _ := h.NewSession(paths[0], math.Inf(1))
	s2, _ := h.NewSession(paths[1], math.Inf(1))
	h.ScheduleJoin(s1, 0)
	h.ScheduleJoin(s2, 0)
	h.StartTicks()
	h.StopProbing(100 * time.Millisecond)
	overshoot := false
	for i := 1; i <= 100; i++ {
		eng.RunUntil(time.Duration(i) * time.Millisecond)
		if s1.Rate() > 51e6 || s2.Rate() > 51e6 {
			overshoot = true
		}
	}
	if !overshoot {
		t.Fatalf("BFYZ never overestimated (expected optimistic transients)")
	}
	if math.Abs(s1.Rate()-50e6) > 1e6 || math.Abs(s2.Rate()-50e6) > 1e6 {
		t.Fatalf("BFYZ did not settle at 50 Mbps: %.0f / %.0f", s1.Rate(), s2.Rate())
	}
}

func TestBFYZNeverQuiesces(t *testing.T) {
	h, _ := runProtocol(t, BFYZ{}, 3, 100*time.Millisecond)
	bins := h.Stats().Bins()
	if len(bins) < 10 {
		t.Fatalf("too few bins: %d", len(bins))
	}
	// Every window of 3 bins (9 ms ≥ the 5 ms probe period) after warm-up
	// must contain traffic: the protocol never quiesces.
	for i := 2; i+3 <= len(bins)-1; i++ {
		if bins[i].Total+bins[i+1].Total+bins[i+2].Total == 0 {
			t.Fatalf("BFYZ silent from %v — protocols here must not quiesce", bins[i].Start)
		}
	}
}

func TestBFYZLeaveFreesCapacity(t *testing.T) {
	g, paths := buildShared(t, 2, rate.Mbps(100))
	eng := sim.New()
	h := NewHarness(g, eng, BFYZ{}, DefaultConfig())
	s1, _ := h.NewSession(paths[0], math.Inf(1))
	s2, _ := h.NewSession(paths[1], math.Inf(1))
	h.ScheduleJoin(s1, 0)
	h.ScheduleJoin(s2, 0)
	h.StartTicks()
	h.StopProbing(300 * time.Millisecond)
	eng.RunUntil(100 * time.Millisecond)
	h.ScheduleLeave(s1, eng.Now())
	eng.RunUntil(300 * time.Millisecond)
	if math.Abs(s2.Rate()-100e6) > 2e6 {
		t.Fatalf("s2 rate after leave = %.0f, want ~100e6", s2.Rate())
	}
}

func TestBFYZRespectsDemand(t *testing.T) {
	g, paths := buildShared(t, 2, rate.Mbps(100))
	eng := sim.New()
	h := NewHarness(g, eng, BFYZ{}, DefaultConfig())
	s1, _ := h.NewSession(paths[0], 10e6)
	s2, _ := h.NewSession(paths[1], math.Inf(1))
	h.ScheduleJoin(s1, 0)
	h.ScheduleJoin(s2, 0)
	h.StartTicks()
	h.StopProbing(200 * time.Millisecond)
	eng.RunUntil(200 * time.Millisecond)
	if s1.Rate() > 10e6+1 {
		t.Fatalf("s1 exceeded demand: %.0f", s1.Rate())
	}
	if math.Abs(s2.Rate()-90e6)/90e6 > 0.02 {
		t.Fatalf("s2 rate = %.0f, want ~90e6", s2.Rate())
	}
}

func TestCGApproachesFairShare(t *testing.T) {
	const n = 4
	_, sessions := runProtocol(t, CG{}, n, 500*time.Millisecond)
	want := 100e6 / float64(n)
	for i, s := range sessions {
		if math.Abs(s.Rate()-want)/want > 0.25 {
			t.Fatalf("session %d rate %.0f, want within 25%% of %.0f (CG is approximate)",
				i, s.Rate(), want)
		}
	}
}

func TestRCPApproachesFairShare(t *testing.T) {
	const n = 4
	_, sessions := runProtocol(t, RCP{}, n, 500*time.Millisecond)
	want := 100e6 / float64(n)
	for i, s := range sessions {
		if math.Abs(s.Rate()-want)/want > 0.25 {
			t.Fatalf("session %d rate %.0f, want within 25%% of %.0f (RCP is approximate)",
				i, s.Rate(), want)
		}
	}
}

func TestBFYZMarkingFixpoint(t *testing.T) {
	l := BFYZ{}.NewLink(100).(*bfyzLink)
	// Three sessions: one pinned low elsewhere (rate 10), two unbounded.
	l.Reverse(core.SessionID(1), 10)
	l.Reverse(core.SessionID(2), 60)
	l.Reverse(core.SessionID(3), 60)
	// Consistent marking: session 1 marked (10 < adv), adv = (100-10)/2 = 45.
	if got := l.advertised(); math.Abs(got-45) > 1e-9 {
		t.Fatalf("advertised = %v, want 45", got)
	}
	// Both sessions slow: the best offer treats the other as restricted
	// elsewhere, adv = (100-5)/1 = 95.
	l2 := BFYZ{}.NewLink(100).(*bfyzLink)
	l2.Reverse(core.SessionID(1), 5)
	l2.Reverse(core.SessionID(2), 5)
	if got := l2.advertised(); math.Abs(got-95) > 1e-9 {
		t.Fatalf("advertised = %v, want 95", got)
	}
	// Empty link advertises full capacity.
	l3 := BFYZ{}.NewLink(100).(*bfyzLink)
	if got := l3.advertised(); got != 100 {
		t.Fatalf("empty advertised = %v", got)
	}
}

func TestHarnessDeterminism(t *testing.T) {
	run := func() (uint64, []float64) {
		g, paths := buildShared(t, 3, rate.Mbps(100))
		eng := sim.New()
		h := NewHarness(g, eng, BFYZ{}, DefaultConfig())
		var ss []*Session
		for _, p := range paths {
			s, _ := h.NewSession(p, math.Inf(1))
			ss = append(ss, s)
			h.ScheduleJoin(s, 0)
		}
		h.StartTicks()
		h.StopProbing(50 * time.Millisecond)
		eng.RunUntil(50 * time.Millisecond)
		var rates []float64
		for _, s := range ss {
			rates = append(rates, s.Rate())
		}
		return h.Stats().Total(), rates
	}
	p1, r1 := run()
	p2, r2 := run()
	if p1 != p2 {
		t.Fatalf("packet counts differ: %d vs %d", p1, p2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("rates differ at %d", i)
		}
	}
}
