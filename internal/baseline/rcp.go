package baseline

import (
	"time"

	"bneck/internal/core"
)

// RCP implements the Rate Control Protocol of Dukkipati et al. (IWQoS
// 2005), the paper's modern congestion-controller representative: a router
// keeps a single advertised rate R per link, updated periodically with the
// published control law
//
//	R ← R · (1 + (T/d)·(α·(C − y) − β·q/d)/C)
//
// with y the measured aggregate offered load over the period and q the
// queue. The control-plane simulator has no data queues, so q = 0 and the
// law reduces to its rate-matching term — the same steady state. Sessions
// pace to the minimum R along their path and re-probe every period, so the
// protocol is non-quiescent and, like the paper observes, does not reach
// the exact max-min rates for large session counts in bounded time.
type RCP struct {
	// Alpha is the rate-mismatch gain (default 0.5, a stable choice from
	// the RCP paper).
	Alpha float64
	// RTT is the d term of the control law (default 1 ms, the LAN-scenario
	// scale).
	RTT time.Duration
}

// Name implements Protocol.
func (RCP) Name() string { return "RCP" }

// NewLink implements Protocol.
func (r RCP) NewLink(capacity float64) LinkAlgo {
	alpha := r.Alpha
	if alpha == 0 {
		alpha = 0.5
	}
	rtt := r.RTT
	if rtt == 0 {
		rtt = time.Millisecond
	}
	return &rcpLink{capacity: capacity, rate: capacity, alpha: alpha, rtt: rtt}
}

type rcpLink struct {
	capacity float64
	rate     float64 // advertised rate R
	alpha    float64
	rtt      time.Duration
	offered  float64 // y measured this period
}

var _ LinkAlgo = (*rcpLink)(nil)

// Forward offers the advertised rate.
func (l *rcpLink) Forward(s core.SessionID, req float64) float64 {
	if req < l.rate {
		return req
	}
	return l.rate
}

// Reverse accumulates the offered-load measurement.
func (l *rcpLink) Reverse(s core.SessionID, granted float64) {
	l.offered += granted
}

// Remove implements LinkAlgo (RCP keeps no per-session state).
func (l *rcpLink) Remove(core.SessionID) {}

// Tick applies the RCP control law. The loop gain (T/d)·α is clamped to 0.5
// for stability: the published law assumes T ≪ d, and our control period can
// exceed the LAN RTT.
func (l *rcpLink) Tick(period time.Duration) {
	t := period.Seconds()
	d := l.rtt.Seconds()
	gain := (t / d) * l.alpha
	if gain > 0.5 {
		gain = 0.5
	}
	y := l.offered
	factor := 1 + gain*(l.capacity-y)/l.capacity
	if factor < 0.5 {
		// Bound the per-tick decrease: heavy overload (y ≫ C on a shared
		// link's first measurement) must not zero the rate in one step.
		factor = 0.5
	}
	l.rate *= factor
	if l.rate > l.capacity {
		l.rate = l.capacity
	}
	if min := l.capacity * 1e-6; l.rate < min {
		l.rate = min
	}
	l.offered = 0
}
