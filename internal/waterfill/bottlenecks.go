package waterfill

import "bneck/internal/rate"

// Bottlenecks returns, for each session, the links of its path that are its
// bottlenecks under the given max-min rates (Definition 1 of the paper:
// link e is a bottleneck of s iff Σ_{s'∈Se} λ_s' = C_e and λ_s = max over
// Se). Sessions restricted only by their demand get an empty list.
//
// This is the attribution question a network operator asks — "which link
// limits this session?" — and also what the paper's R*_e / F*_e partition
// formalizes.
func Bottlenecks(in Instance, rates []rate.Rate) [][]int {
	load := make([]rate.Rate, len(in.Capacity))
	maxAt := make([]rate.Rate, len(in.Capacity))
	for i, s := range in.Sessions {
		for _, e := range s.Path {
			load[e] = load[e].Add(rates[i])
			maxAt[e] = rate.Max(maxAt[e], rates[i])
		}
	}
	out := make([][]int, len(in.Sessions))
	for i, s := range in.Sessions {
		for _, e := range s.Path {
			if load[e].Equal(in.Capacity[e]) && rates[i].Equal(maxAt[e]) {
				out[i] = append(out[i], e)
			}
		}
	}
	return out
}

// SystemBottlenecks returns the links that are bottlenecks of the system:
// bottlenecks for every session crossing them (R*_e = S_e in the paper's
// terms), given max-min rates.
func SystemBottlenecks(in Instance, rates []rate.Rate) []int {
	perSession := Bottlenecks(in, rates)
	crossing := make([]int, len(in.Capacity))   // sessions crossing each link
	restricted := make([]int, len(in.Capacity)) // sessions restricted there
	for i, s := range in.Sessions {
		for _, e := range s.Path {
			crossing[e]++
		}
		for _, e := range perSession[i] {
			restricted[e]++
		}
	}
	var out []int
	for e := range in.Capacity {
		if crossing[e] > 0 && crossing[e] == restricted[e] {
			out = append(out, e)
		}
	}
	return out
}
