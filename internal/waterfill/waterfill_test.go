package waterfill

import (
	"math/rand"
	"testing"

	"bneck/internal/rate"
)

func mbps(v int64) rate.Rate { return rate.Mbps(v) }

func solveBoth(t *testing.T, in Instance) []rate.Rate {
	t.Helper()
	a, err := Solve(in)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	b, err := WaterFilling(in)
	if err != nil {
		t.Fatalf("WaterFilling: %v", err)
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("Solve and WaterFilling disagree on session %d: %v vs %v", i, a[i], b[i])
		}
	}
	if err := Verify(in, a); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return a
}

func TestSingleSession(t *testing.T) {
	in := Instance{
		Capacity: []rate.Rate{mbps(10)},
		Sessions: []Session{{Demand: rate.Inf, Path: []int{0}}},
	}
	got := solveBoth(t, in)
	if !got[0].Equal(mbps(10)) {
		t.Fatalf("rate = %v", got[0])
	}
}

func TestDemandRestricts(t *testing.T) {
	in := Instance{
		Capacity: []rate.Rate{mbps(10)},
		Sessions: []Session{{Demand: mbps(4), Path: []int{0}}},
	}
	got := solveBoth(t, in)
	if !got[0].Equal(mbps(4)) {
		t.Fatalf("rate = %v", got[0])
	}
}

func TestEqualShare(t *testing.T) {
	in := Instance{
		Capacity: []rate.Rate{mbps(10)},
		Sessions: []Session{
			{Demand: rate.Inf, Path: []int{0}},
			{Demand: rate.Inf, Path: []int{0}},
			{Demand: rate.Inf, Path: []int{0}},
		},
	}
	got := solveBoth(t, in)
	want := mbps(10).DivInt(3)
	for i, r := range got {
		if !r.Equal(want) {
			t.Fatalf("session %d rate = %v, want %v", i, r, want)
		}
	}
}

// TestClassicChain is the textbook example: s1 on link A (cap 10),
// s2 on links A,B, s3 on link B (cap 4). Max-min: s2=s3=2, s1=8.
func TestClassicChain(t *testing.T) {
	in := Instance{
		Capacity: []rate.Rate{mbps(10), mbps(4)},
		Sessions: []Session{
			{Demand: rate.Inf, Path: []int{0}},
			{Demand: rate.Inf, Path: []int{0, 1}},
			{Demand: rate.Inf, Path: []int{1}},
		},
	}
	got := solveBoth(t, in)
	want := []rate.Rate{mbps(8), mbps(2), mbps(2)}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("session %d rate = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestResidualRedistribution: a session limited by a small demand frees
// capacity for its peers.
func TestResidualRedistribution(t *testing.T) {
	in := Instance{
		Capacity: []rate.Rate{mbps(12)},
		Sessions: []Session{
			{Demand: mbps(2), Path: []int{0}},
			{Demand: rate.Inf, Path: []int{0}},
			{Demand: rate.Inf, Path: []int{0}},
		},
	}
	got := solveBoth(t, in)
	want := []rate.Rate{mbps(2), mbps(5), mbps(5)}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("session %d rate = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestBertsekasGallagerExample: the classic 5-session example from Data
// Networks §6.5.2 structure: a chain of 3 links with crossing sessions.
func TestChainNetwork(t *testing.T) {
	// Links: 0 (cap 10), 1 (cap 10), 2 (cap 10).
	// s0 crosses all three; s1 on link 0; s2 on link 1; s3 on link 1;
	// s4 on link 2.
	in := Instance{
		Capacity: []rate.Rate{mbps(10), mbps(10), mbps(10)},
		Sessions: []Session{
			{Demand: rate.Inf, Path: []int{0, 1, 2}},
			{Demand: rate.Inf, Path: []int{0}},
			{Demand: rate.Inf, Path: []int{1}},
			{Demand: rate.Inf, Path: []int{1}},
			{Demand: rate.Inf, Path: []int{2}},
		},
	}
	got := solveBoth(t, in)
	// Link 1 is the bottleneck for s0, s2, s3: 10/3 each. Then s1 gets
	// 10 - 10/3 = 20/3 on link 0, s4 the same on link 2.
	third := mbps(10).DivInt(3)
	twoThirds := mbps(20).DivInt(3)
	want := []rate.Rate{third, twoThirds, third, third, twoThirds}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("session %d rate = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCascadedBottlenecks(t *testing.T) {
	// Bottlenecks must be discovered in increasing rate order across
	// dependent links.
	in := Instance{
		Capacity: []rate.Rate{mbps(6), mbps(20)},
		Sessions: []Session{
			{Demand: rate.Inf, Path: []int{0, 1}},
			{Demand: rate.Inf, Path: []int{0, 1}},
			{Demand: rate.Inf, Path: []int{1}},
		},
	}
	got := solveBoth(t, in)
	// Link 0: 3 each for s0, s1. Link 1: s2 gets 20-6 = 14.
	want := []rate.Rate{mbps(3), mbps(3), mbps(14)}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("session %d rate = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := Solve(Instance{
		Capacity: []rate.Rate{mbps(1)},
		Sessions: []Session{{Demand: rate.Inf, Path: nil}},
	}); err == nil {
		t.Errorf("expected error for empty path")
	}
	if _, err := Solve(Instance{
		Capacity: []rate.Rate{mbps(1)},
		Sessions: []Session{{Demand: rate.Inf, Path: []int{3}}},
	}); err == nil {
		t.Errorf("expected error for unknown link")
	}
	if _, err := Solve(Instance{
		Capacity: []rate.Rate{mbps(1)},
		Sessions: []Session{{Demand: rate.Zero, Path: []int{0}}},
	}); err == nil {
		t.Errorf("expected error for zero demand")
	}
}

func TestVerifyCatchesWrongRates(t *testing.T) {
	in := Instance{
		Capacity: []rate.Rate{mbps(10)},
		Sessions: []Session{
			{Demand: rate.Inf, Path: []int{0}},
			{Demand: rate.Inf, Path: []int{0}},
		},
	}
	// Oversubscribed.
	if err := Verify(in, []rate.Rate{mbps(6), mbps(6)}); err == nil {
		t.Errorf("Verify accepted oversubscription")
	}
	// Feasible but not maximal.
	if err := Verify(in, []rate.Rate{mbps(4), mbps(4)}); err == nil {
		t.Errorf("Verify accepted non-maximal allocation")
	}
	// Unfair (no bottleneck for the small session).
	if err := Verify(in, []rate.Rate{mbps(3), mbps(7)}); err == nil {
		t.Errorf("Verify accepted unfair allocation")
	}
	// Correct.
	if err := Verify(in, []rate.Rate{mbps(5), mbps(5)}); err != nil {
		t.Errorf("Verify rejected correct allocation: %v", err)
	}
}

// randomInstance builds a random instance over a random set of links.
func randomInstance(r *rand.Rand) Instance {
	nLinks := 2 + r.Intn(10)
	nSessions := 1 + r.Intn(20)
	in := Instance{Capacity: make([]rate.Rate, nLinks)}
	for e := range in.Capacity {
		in.Capacity[e] = rate.FromInt64(int64(1+r.Intn(1000)) * 1000)
	}
	for s := 0; s < nSessions; s++ {
		pathLen := 1 + r.Intn(4)
		if pathLen > nLinks {
			pathLen = nLinks
		}
		perm := r.Perm(nLinks)
		path := perm[:pathLen]
		demand := rate.Inf
		if r.Intn(3) == 0 {
			demand = rate.FromInt64(int64(1+r.Intn(500)) * 1000)
		}
		in.Sessions = append(in.Sessions, Session{Demand: demand, Path: append([]int(nil), path...)})
	}
	return in
}

// TestPropRandomInstances: on random instances, Solve and WaterFilling agree
// and the result passes Verify (which encodes Definition 1).
func TestPropRandomInstances(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		in := randomInstance(r)
		a, err := Solve(in)
		if err != nil {
			t.Fatalf("iter %d: Solve: %v", i, err)
		}
		b, err := WaterFilling(in)
		if err != nil {
			t.Fatalf("iter %d: WaterFilling: %v", i, err)
		}
		for s := range a {
			if !a[s].Equal(b[s]) {
				t.Fatalf("iter %d: session %d: Solve %v != WaterFilling %v", i, s, a[s], b[s])
			}
		}
		if err := Verify(in, a); err != nil {
			t.Fatalf("iter %d: Verify: %v", i, err)
		}
	}
}

// TestPropMaxMinUniqueUnderPerturbation: lowering any session below its
// max-min rate and raising another must break Verify — i.e. Verify pins the
// exact allocation.
func TestPropVerifyRejectsPerturbations(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		in := randomInstance(r)
		rates, err := Solve(in)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if len(rates) < 2 {
			continue
		}
		j := r.Intn(len(rates))
		perturbed := append([]rate.Rate(nil), rates...)
		delta := rates[j].DivInt(10)
		if delta.IsZero() {
			continue
		}
		perturbed[j] = rates[j].Sub(delta)
		if err := Verify(in, perturbed); err == nil {
			t.Fatalf("iter %d: Verify accepted a lowered session %d", i, j)
		}
	}
}

// TestSolveDuplicateLinkPath pins the set semantics of link membership: a
// path crossing the same link twice counts once, exactly like the map-based
// R_e the Solver's flat lists replaced, and agrees with WaterFilling.
func TestSolveDuplicateLinkPath(t *testing.T) {
	in := Instance{
		Capacity: []rate.Rate{rate.Mbps(100), rate.Mbps(80)},
		Sessions: []Session{
			{Demand: rate.Inf, Path: []int{0, 1, 0}},
			{Demand: rate.Inf, Path: []int{1}},
		},
	}
	got, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := WaterFilling(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("session %d: Solve %v, WaterFilling %v", i, got[i], want[i])
		}
	}
	if !got[0].Equal(rate.Mbps(40)) || !got[1].Equal(rate.Mbps(40)) {
		t.Fatalf("rates %v, want both 40mbps (link 1 shared fairly)", got)
	}
}

// TestSolverReuseStable: a reused Solver returns identical results across
// calls with different instance shapes (scratch from a bigger instance must
// not leak into a smaller one).
func TestSolverReuseStable(t *testing.T) {
	var sv Solver
	big := Instance{
		Capacity: []rate.Rate{rate.Mbps(100), rate.Mbps(50), rate.Mbps(30)},
		Sessions: []Session{
			{Demand: rate.Inf, Path: []int{0, 1}},
			{Demand: rate.Mbps(5), Path: []int{1, 2}},
			{Demand: rate.Inf, Path: []int{2}},
			{Demand: rate.Inf, Path: []int{0}},
		},
	}
	small := Instance{
		Capacity: []rate.Rate{rate.Mbps(90)},
		Sessions: []Session{
			{Demand: rate.Inf, Path: []int{0}},
			{Demand: rate.Mbps(10), Path: []int{0}},
		},
	}
	for round := 0; round < 3; round++ {
		for _, in := range []Instance{big, small} {
			got, err := sv.Solve(in)
			if err != nil {
				t.Fatal(err)
			}
			want, err := WaterFilling(in)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("round %d session %d: Solve %v, WaterFilling %v", round, i, got[i], want[i])
				}
			}
		}
	}
}
