package waterfill

import (
	"math/rand"
	"testing"

	"bneck/internal/rate"
)

func TestBottlenecksClassicChain(t *testing.T) {
	in := Instance{
		Capacity: []rate.Rate{mbps(10), mbps(4)},
		Sessions: []Session{
			{Demand: rate.Inf, Path: []int{0}},
			{Demand: rate.Inf, Path: []int{0, 1}},
			{Demand: rate.Inf, Path: []int{1}},
		},
	}
	rates, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	bn := Bottlenecks(in, rates)
	// s0 (8 Mbps) is restricted at link 0; s1 and s2 (2 Mbps) at link 1.
	if len(bn[0]) != 1 || bn[0][0] != 0 {
		t.Fatalf("s0 bottlenecks = %v", bn[0])
	}
	if len(bn[1]) != 1 || bn[1][0] != 1 {
		t.Fatalf("s1 bottlenecks = %v", bn[1])
	}
	if len(bn[2]) != 1 || bn[2][0] != 1 {
		t.Fatalf("s2 bottlenecks = %v", bn[2])
	}
	sys := SystemBottlenecks(in, rates)
	// Link 0 restricts all its sessions (s0 at 8 = max, s1 at 2 < 8 — so s1
	// is NOT restricted at 0): link 0 is not a system bottleneck; link 1
	// restricts both of its sessions.
	if len(sys) != 1 || sys[0] != 1 {
		t.Fatalf("system bottlenecks = %v", sys)
	}
}

func TestBottlenecksDemandLimited(t *testing.T) {
	in := Instance{
		Capacity: []rate.Rate{mbps(10)},
		Sessions: []Session{{Demand: mbps(2), Path: []int{0}}},
	}
	rates, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	bn := Bottlenecks(in, rates)
	if len(bn[0]) != 0 {
		t.Fatalf("demand-limited session has link bottlenecks: %v", bn[0])
	}
}

// TestPropEverySessionRestricted: on random instances, every session is
// either demand-limited or has at least one bottleneck link — the max-min
// characterization the paper states after Definition 1.
func TestPropEverySessionRestricted(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for i := 0; i < 300; i++ {
		in := randomInstance(r)
		rates, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		bn := Bottlenecks(in, rates)
		for s := range in.Sessions {
			if rates[s].Equal(in.Sessions[s].Demand) {
				continue
			}
			if len(bn[s]) == 0 {
				t.Fatalf("iter %d: session %d (rate %v < demand %v) has no bottleneck",
					i, s, rates[s], in.Sessions[s].Demand)
			}
		}
	}
}
