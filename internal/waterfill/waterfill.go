// Package waterfill computes max-min fair rates centrally. It implements
// both Centralized B-Neck (Figure 1 of the paper) and the classic
// Water-Filling algorithm, which serve as each other's cross-check and as
// the correctness oracle for every distributed run (the paper validates its
// simulations the same way, Section IV).
package waterfill

import (
	"fmt"

	"bneck/internal/rate"
)

// Session is one session of a static max-min instance: a demand (possibly
// +∞) and a path given as indexes into the instance's link set.
type Session struct {
	Demand rate.Rate
	Path   []int
}

// Instance is a static max-min fairness problem.
type Instance struct {
	Capacity []rate.Rate // per-link capacity, indexed by link
	Sessions []Session
}

// Validate checks that paths reference existing links and demands are
// positive.
func (in Instance) Validate() error {
	for i, s := range in.Sessions {
		if len(s.Path) == 0 {
			return fmt.Errorf("session %d has an empty path", i)
		}
		for _, e := range s.Path {
			if e < 0 || e >= len(in.Capacity) {
				return fmt.Errorf("session %d references unknown link %d", i, e)
			}
		}
		if s.Demand.Sign() <= 0 && !s.Demand.IsInf() {
			return fmt.Errorf("session %d has non-positive demand %v", i, s.Demand)
		}
	}
	return nil
}

// demandLinks returns an expanded instance in which every finite-demand
// session crosses a private virtual link with capacity equal to its demand —
// the paper's D_s = min(C_e, r_s) trick, which reduces bounded demands to
// the unbounded problem.
func (in Instance) demandLinks() Instance {
	out := Instance{
		Capacity: append([]rate.Rate(nil), in.Capacity...),
		Sessions: make([]Session, len(in.Sessions)),
	}
	for i, s := range in.Sessions {
		path := append([]int(nil), s.Path...)
		if !s.Demand.IsInf() {
			out.Capacity = append(out.Capacity, s.Demand)
			path = append(path, len(out.Capacity)-1)
		}
		out.Sessions[i] = Session{Demand: rate.Inf, Path: path}
	}
	return out
}

// Solve runs Centralized B-Neck (Figure 1) and returns the max-min fair rate
// of every session.
func Solve(in Instance) ([]rate.Rate, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	ex := in.demandLinks()
	nL, nS := len(ex.Capacity), len(ex.Sessions)

	// Re / Fe as per-link session lists; sumFe incrementally.
	re := make([]map[int]struct{}, nL)
	sumFe := make([]rate.Rate, nL)
	for e := 0; e < nL; e++ {
		re[e] = make(map[int]struct{})
	}
	for i, s := range ex.Sessions {
		for _, e := range s.Path {
			re[e][i] = struct{}{}
		}
	}
	inL := make([]bool, nL)
	var live []int
	for e := 0; e < nL; e++ {
		if len(re[e]) > 0 {
			inL[e] = true
			live = append(live, e)
		}
	}

	lambda := make([]rate.Rate, nS)
	assigned := make([]bool, nS)

	for len(live) > 0 {
		// B ← min over live links of Be = (Ce − ΣFe)/|Re|.
		var b rate.Rate
		first := true
		for _, e := range live {
			be := ex.Capacity[e].Sub(sumFe[e]).DivInt(len(re[e]))
			if first || be.Less(b) {
				b = be
				first = false
			}
		}
		// L' = argmin links; X = sessions they restrict.
		x := make(map[int]struct{})
		var lPrime []int
		for _, e := range live {
			be := ex.Capacity[e].Sub(sumFe[e]).DivInt(len(re[e]))
			if be.Equal(b) {
				lPrime = append(lPrime, e)
				for s := range re[e] {
					x[s] = struct{}{}
				}
			}
		}
		for s := range x {
			lambda[s] = b
			assigned[s] = true
		}
		// Move X members from Re to Fe on surviving links; drop L' and
		// emptied links from L.
		isLPrime := make(map[int]bool, len(lPrime))
		for _, e := range lPrime {
			isLPrime[e] = true
			inL[e] = false
		}
		var nextLive []int
		for _, e := range live {
			if isLPrime[e] {
				continue
			}
			for s := range x {
				if _, ok := re[e][s]; ok {
					delete(re[e], s)
					sumFe[e] = sumFe[e].Add(b)
				}
			}
			if len(re[e]) > 0 {
				nextLive = append(nextLive, e)
			} else {
				inL[e] = false
			}
		}
		live = nextLive
	}

	for i := range ex.Sessions {
		if !assigned[i] {
			return nil, fmt.Errorf("waterfill: session %d left unassigned", i)
		}
	}
	return lambda, nil
}

// WaterFilling computes the same rates with the classic progressive-filling
// formulation: repeatedly saturate the single most constrained link and fix
// the sessions crossing it. It uses different tie-breaking from Solve, so
// agreement between the two is a meaningful cross-check (max-min rates are
// unique).
func WaterFilling(in Instance) ([]rate.Rate, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	ex := in.demandLinks()
	nL, nS := len(ex.Capacity), len(ex.Sessions)

	active := make([]map[int]struct{}, nL)
	used := make([]rate.Rate, nL)
	for e := 0; e < nL; e++ {
		active[e] = make(map[int]struct{})
	}
	for i, s := range ex.Sessions {
		for _, e := range s.Path {
			active[e][i] = struct{}{}
		}
	}
	lambda := make([]rate.Rate, nS)
	fixed := make([]bool, nS)
	remaining := nS

	for remaining > 0 {
		// Find the most constrained link among links with active sessions.
		bestLink := -1
		var bestShare rate.Rate
		for e := 0; e < nL; e++ {
			if len(active[e]) == 0 {
				continue
			}
			share := ex.Capacity[e].Sub(used[e]).DivInt(len(active[e]))
			if bestLink == -1 || share.Less(bestShare) {
				bestLink, bestShare = e, share
			}
		}
		if bestLink == -1 {
			return nil, fmt.Errorf("waterfill: %d sessions unconstrained by any link", remaining)
		}
		// Fix the sessions crossing it at the fair share.
		for s := range active[bestLink] {
			lambda[s] = bestShare
			fixed[s] = true
			remaining--
			for _, e := range ex.Sessions[s].Path {
				delete(active[e], s)
				if e != bestLink {
					used[e] = used[e].Add(bestShare)
				}
			}
		}
		active[bestLink] = make(map[int]struct{})
	}
	return lambda, nil
}

// Verify checks that rates is the max-min fair allocation for in:
// feasibility (no link oversubscribed, no demand exceeded) and maximality
// (every session is restricted at some bottleneck link, or by its demand).
// Restriction at a bottleneck per Definition 1 of the paper: link e with
// Σ_{s'∈Se} λ_s' = C_e and λ_s = max_{s'∈Se} λ_s'.
func Verify(in Instance, rates []rate.Rate) error {
	if len(rates) != len(in.Sessions) {
		return fmt.Errorf("waterfill: %d rates for %d sessions", len(rates), len(in.Sessions))
	}
	load := make([]rate.Rate, len(in.Capacity))
	maxAt := make([]rate.Rate, len(in.Capacity))
	for i, s := range in.Sessions {
		if rates[i].Sign() <= 0 {
			return fmt.Errorf("session %d has non-positive rate %v", i, rates[i])
		}
		if rates[i].Greater(s.Demand) {
			return fmt.Errorf("session %d rate %v exceeds demand %v", i, rates[i], s.Demand)
		}
		for _, e := range s.Path {
			load[e] = load[e].Add(rates[i])
			maxAt[e] = rate.Max(maxAt[e], rates[i])
		}
	}
	for e, c := range in.Capacity {
		if load[e].Greater(c) {
			return fmt.Errorf("link %d oversubscribed: %v > %v", e, load[e], c)
		}
	}
	for i, s := range in.Sessions {
		if rates[i].Equal(s.Demand) {
			continue // restricted by its own demand
		}
		restricted := false
		for _, e := range s.Path {
			if load[e].Equal(in.Capacity[e]) && rates[i].Equal(maxAt[e]) {
				restricted = true
				break
			}
		}
		if !restricted {
			return fmt.Errorf("session %d (rate %v) has no bottleneck and is below its demand %v",
				i, rates[i], s.Demand)
		}
	}
	return nil
}
