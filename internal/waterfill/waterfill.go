// Package waterfill computes max-min fair rates centrally. It implements
// both Centralized B-Neck (Figure 1 of the paper) and the classic
// Water-Filling algorithm, which serve as each other's cross-check and as
// the correctness oracle for every distributed run (the paper validates its
// simulations the same way, Section IV).
package waterfill

import (
	"fmt"
	"sort"

	"bneck/internal/rate"
)

// Session is one session of a static max-min instance: a demand (possibly
// +∞) and a path given as indexes into the instance's link set.
type Session struct {
	Demand rate.Rate
	Path   []int
}

// Instance is a static max-min fairness problem.
type Instance struct {
	Capacity []rate.Rate // per-link capacity, indexed by link
	Sessions []Session
}

// Validate checks that paths reference existing links and demands are
// positive.
func (in Instance) Validate() error {
	for i, s := range in.Sessions {
		if len(s.Path) == 0 {
			return fmt.Errorf("session %d has an empty path", i)
		}
		for _, e := range s.Path {
			if e < 0 || e >= len(in.Capacity) {
				return fmt.Errorf("session %d references unknown link %d", i, e)
			}
		}
		if s.Demand.Sign() <= 0 && !s.Demand.IsInf() {
			return fmt.Errorf("session %d has non-positive demand %v", i, s.Demand)
		}
	}
	return nil
}

// demandLinks returns an expanded instance in which every finite-demand
// session crosses a private virtual link with capacity equal to its demand —
// the paper's D_s = min(C_e, r_s) trick, which reduces bounded demands to
// the unbounded problem.
func (in Instance) demandLinks() Instance {
	out := Instance{
		Capacity: append([]rate.Rate(nil), in.Capacity...),
		Sessions: make([]Session, len(in.Sessions)),
	}
	for i, s := range in.Sessions {
		path := append([]int(nil), s.Path...)
		if !s.Demand.IsInf() {
			out.Capacity = append(out.Capacity, s.Demand)
			path = append(path, len(out.Capacity)-1)
		}
		out.Sessions[i] = Session{Demand: rate.Inf, Path: path}
	}
	return out
}

// Solve runs Centralized B-Neck (Figure 1) and returns the max-min fair rate
// of every session. It is shorthand for a one-shot Solver; callers solving
// many instances (the per-epoch oracle validation of the dynamic-topology
// experiments) should keep a Solver and reuse its scratch buffers.
func Solve(in Instance) ([]rate.Rate, error) {
	var sv Solver
	return sv.Solve(in)
}

// Solver computes max-min fair rates with reusable scratch buffers: all the
// per-link membership lists, counters and the virtual demand links live in
// flat arrays that survive between calls, so solving one instance per
// reconfiguration epoch allocates almost nothing after the first. The
// zero value is ready to use. A Solver is not safe for concurrent use.
type Solver struct {
	capacity []rate.Rate // real + virtual (demand) link capacities
	sumFe    []rate.Rate // per-link sum of fixed (assigned) rates
	deg      []int32     // scratch: per-link member count during build
	arena    []int32     // backing storage of all membership lists
	members  [][]int32   // per-link unassigned sessions, slices of arena
	live     []int32     // links still carrying unassigned sessions
	nextLive []int32
	assigned []bool
	be       []rate.Rate // scratch: per-live-link fair share this round
}

// Solve computes the max-min fair rate of every session. The returned slice
// is freshly allocated; everything else is drawn from the Solver's scratch.
func (sv *Solver) Solve(in Instance) ([]rate.Rate, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	nS := len(in.Sessions)
	lambda := make([]rate.Rate, nS)
	if nS == 0 {
		return lambda, nil
	}

	// Expand bounded demands into virtual private links (the paper's
	// D_s = min(C_e, r_s) trick) without materializing expanded sessions:
	// a virtual link's membership is exactly its one session.
	sv.capacity = append(sv.capacity[:0], in.Capacity...)
	total := 0
	for _, s := range in.Sessions {
		total += len(s.Path)
		if !s.Demand.IsInf() {
			sv.capacity = append(sv.capacity, s.Demand)
			total++
		}
	}
	nL := len(sv.capacity)

	sv.sumFe = grow(sv.sumFe, nL)
	sv.deg = grow(sv.deg, nL)
	sv.assigned = grow(sv.assigned, nS)
	sv.members = grow(sv.members, nL)
	if cap(sv.arena) < total {
		sv.arena = make([]int32, total)
	}
	arena := sv.arena[:total]

	// Two passes: count degrees, then carve the arena into per-link lists.
	for e := 0; e < nL; e++ {
		sv.deg[e] = 0
	}
	virtDeg := len(in.Capacity)
	for _, s := range in.Sessions {
		for _, e := range s.Path {
			sv.deg[e]++
		}
		if !s.Demand.IsInf() {
			sv.deg[virtDeg] = 1
			virtDeg++
		}
	}
	off := 0
	for e := 0; e < nL; e++ {
		sv.members[e] = arena[off : off : off+int(sv.deg[e])]
		off += int(sv.deg[e])
	}
	virt := len(in.Capacity)
	for i, s := range in.Sessions {
		for _, e := range s.Path {
			// Membership is a set, like the map-based R_e it replaces: a
			// path crossing the same link twice still counts once. Sessions
			// are added in index order, so a duplicate is always the list's
			// current last element.
			if n := len(sv.members[e]); n > 0 && sv.members[e][n-1] == int32(i) {
				continue
			}
			sv.members[e] = append(sv.members[e], int32(i))
		}
		if !s.Demand.IsInf() {
			sv.members[virt] = append(sv.members[virt], int32(i))
			virt++
		}
	}

	sv.live = sv.live[:0]
	for e := 0; e < nL; e++ {
		sv.sumFe[e] = rate.Zero
		if len(sv.members[e]) > 0 {
			sv.live = append(sv.live, int32(e))
		}
	}
	for i := range sv.assigned {
		sv.assigned[i] = false
	}

	live := sv.live
	for len(live) > 0 {
		// B ← min over live links of Be = (Ce − ΣFe)/|Re|. Each share is
		// kept for the argmin pass below — rational arithmetic dominates the
		// round, so computing every Be once instead of twice halves it.
		sv.be = grow(sv.be, len(live))
		var b rate.Rate
		for i, e := range live {
			be := sv.capacity[e].Sub(sv.sumFe[e]).DivInt(len(sv.members[e]))
			sv.be[i] = be
			if i == 0 || be.Less(b) {
				b = be
			}
		}
		// L' = argmin links; their members X are restricted at rate B.
		for i, e := range live {
			if sv.be[i].Equal(b) {
				for _, s := range sv.members[e] {
					if !sv.assigned[s] {
						lambda[s] = b
						sv.assigned[s] = true
					}
				}
				sv.members[e] = sv.members[e][:0] // drop L' from the live set
			}
		}
		// Surviving links move this round's X members from Re to Fe: compact
		// each list in place, crediting every removal at its (just assigned)
		// rate B. Links left without members leave the live set.
		sv.nextLive = sv.nextLive[:0]
		for _, e := range live {
			m := sv.members[e]
			if len(m) == 0 {
				continue
			}
			kept := m[:0]
			for _, s := range m {
				if sv.assigned[s] {
					sv.sumFe[e] = sv.sumFe[e].Add(b)
				} else {
					kept = append(kept, s)
				}
			}
			sv.members[e] = kept
			if len(kept) > 0 {
				sv.nextLive = append(sv.nextLive, e)
			}
		}
		live, sv.nextLive = sv.nextLive, live
	}
	// live and sv.nextLive hold the two distinct scratch arrays after the
	// final swap; re-home the one the loop variable ended up with.
	sv.live = live

	for i := 0; i < nS; i++ {
		if !sv.assigned[i] {
			return nil, fmt.Errorf("waterfill: session %d left unassigned", i)
		}
	}
	return lambda, nil
}

// grow returns s resized to n elements, reusing its backing array when big
// enough (contents are unspecified; callers overwrite).
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// WaterFilling computes the same rates with the classic progressive-filling
// formulation: repeatedly saturate the single most constrained link and fix
// the sessions crossing it. It uses different tie-breaking from Solve, so
// agreement between the two is a meaningful cross-check (max-min rates are
// unique).
func WaterFilling(in Instance) ([]rate.Rate, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	ex := in.demandLinks()
	nL, nS := len(ex.Capacity), len(ex.Sessions)

	active := make([]map[int]struct{}, nL)
	used := make([]rate.Rate, nL)
	for e := 0; e < nL; e++ {
		active[e] = make(map[int]struct{})
	}
	for i, s := range ex.Sessions {
		for _, e := range s.Path {
			active[e][i] = struct{}{}
		}
	}
	lambda := make([]rate.Rate, nS)
	fixed := make([]bool, nS)
	remaining := nS

	for remaining > 0 {
		// Find the most constrained link among links with active sessions.
		bestLink := -1
		var bestShare rate.Rate
		for e := 0; e < nL; e++ {
			if len(active[e]) == 0 {
				continue
			}
			share := ex.Capacity[e].Sub(used[e]).DivInt(len(active[e]))
			if bestLink == -1 || share.Less(bestShare) {
				bestLink, bestShare = e, share
			}
		}
		if bestLink == -1 {
			return nil, fmt.Errorf("waterfill: %d sessions unconstrained by any link", remaining)
		}
		// Fix the sessions crossing it at the fair share, in session order:
		// every crosser receives the same share, but iterating the map
		// directly would mutate it mid-range and make the update order
		// schedule-dependent.
		crossers := make([]int, 0, len(active[bestLink]))
		for s := range active[bestLink] {
			crossers = append(crossers, s)
		}
		sort.Ints(crossers)
		for _, s := range crossers {
			lambda[s] = bestShare
			fixed[s] = true
			remaining--
			for _, e := range ex.Sessions[s].Path {
				delete(active[e], s)
				if e != bestLink {
					used[e] = used[e].Add(bestShare)
				}
			}
		}
		active[bestLink] = make(map[int]struct{})
	}
	return lambda, nil
}

// Verify checks that rates is the max-min fair allocation for in:
// feasibility (no link oversubscribed, no demand exceeded) and maximality
// (every session is restricted at some bottleneck link, or by its demand).
// Restriction at a bottleneck per Definition 1 of the paper: link e with
// Σ_{s'∈Se} λ_s' = C_e and λ_s = max_{s'∈Se} λ_s'.
func Verify(in Instance, rates []rate.Rate) error {
	if len(rates) != len(in.Sessions) {
		return fmt.Errorf("waterfill: %d rates for %d sessions", len(rates), len(in.Sessions))
	}
	load := make([]rate.Rate, len(in.Capacity))
	maxAt := make([]rate.Rate, len(in.Capacity))
	for i, s := range in.Sessions {
		if rates[i].Sign() <= 0 {
			return fmt.Errorf("session %d has non-positive rate %v", i, rates[i])
		}
		if rates[i].Greater(s.Demand) {
			return fmt.Errorf("session %d rate %v exceeds demand %v", i, rates[i], s.Demand)
		}
		for _, e := range s.Path {
			load[e] = load[e].Add(rates[i])
			maxAt[e] = rate.Max(maxAt[e], rates[i])
		}
	}
	for e, c := range in.Capacity {
		if load[e].Greater(c) {
			return fmt.Errorf("link %d oversubscribed: %v > %v", e, load[e], c)
		}
	}
	for i, s := range in.Sessions {
		if rates[i].Equal(s.Demand) {
			continue // restricted by its own demand
		}
		restricted := false
		for _, e := range s.Path {
			if load[e].Equal(in.Capacity[e]) && rates[i].Equal(maxAt[e]) {
				restricted = true
				break
			}
		}
		if !restricted {
			return fmt.Errorf("session %d (rate %v) has no bottleneck and is below its demand %v",
				i, rates[i], s.Demand)
		}
	}
	return nil
}
