package waterfill_test

// Equivalence tests for the incremental solver: after every delta the
// committed rates must be byte-identical (rate.Key equality — rates are
// canonical rationals) to a fresh full Solve of the same live instance.
// The churn harness drives join/leave/fail/restore/setcap sequences over
// the generated internet topologies (Paper and Metro rungs), mirroring the
// contract the network layer honors: sessions crossing a failing link leave
// before the fail and rejoin on a fresh path after it.

import (
	"math/rand"
	"testing"

	"bneck/internal/graph"
	"bneck/internal/rate"
	"bneck/internal/topology"
	"bneck/internal/waterfill"
)

// harnessSession is one live session of the churn harness: its incremental
// handle plus everything needed to rebuild the shadow instance and to
// re-route after failures.
type harnessSession struct {
	h        int
	src, dst graph.NodeID
	demand   rate.Rate
	path     graph.Path
}

type churnHarness struct {
	t      testing.TB
	g      *graph.Graph
	res    *graph.Resolver
	inc    *waterfill.Incremental
	linkOf []int // graph LinkID -> incremental link handle
	live   []harnessSession
	rng    *rand.Rand
	hosts  []graph.NodeID
}

func newChurnHarness(t testing.TB, params topology.InternetParams, hosts int, seed int64) *churnHarness {
	net, err := topology.GenerateInternet(params, seed)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	h := &churnHarness{
		t:   t,
		g:   net.Graph,
		res: graph.NewResolver(net.Graph, 128),
		inc: waterfill.NewIncremental(),
		rng: rand.New(rand.NewSource(seed + 1)),
	}
	h.hosts = net.AddHosts(hosts)
	h.linkOf = make([]int, h.g.NumLinks())
	for l := 0; l < h.g.NumLinks(); l++ {
		h.linkOf[l] = h.inc.AddLink(h.g.Link(graph.LinkID(l)).Capacity)
	}
	return h
}

func (h *churnHarness) pathUp(p graph.Path) bool {
	for _, l := range p {
		if !h.g.LinkUp(l) {
			return false
		}
	}
	return true
}

func (h *churnHarness) incPath(p graph.Path) []int {
	out := make([]int, len(p))
	for i, l := range p {
		out[i] = h.linkOf[l]
	}
	return out
}

func (h *churnHarness) join(src, dst graph.NodeID, demand rate.Rate) bool {
	p, err := h.res.HostPath(src, dst)
	if err != nil || !h.pathUp(p) {
		return false
	}
	hd := h.inc.SessionJoin(demand, h.incPath(p))
	h.live = append(h.live, harnessSession{h: hd, src: src, dst: dst, demand: demand, path: p})
	return true
}

func (h *churnHarness) joinRandom() {
	i := h.rng.Intn(len(h.hosts))
	j := h.rng.Intn(len(h.hosts))
	if i == j {
		return
	}
	demand := rate.Inf
	if h.rng.Intn(2) == 0 {
		demand = rate.FromFrac(int64(1+h.rng.Intn(400)), int64(1+h.rng.Intn(5)))
	}
	h.join(h.hosts[i], h.hosts[j], demand)
}

func (h *churnHarness) leaveAt(i int) {
	h.inc.SessionLeave(h.live[i].h)
	h.live[i] = h.live[len(h.live)-1]
	h.live = h.live[:len(h.live)-1]
}

func (h *churnHarness) leaveRandom() {
	if len(h.live) == 0 {
		return
	}
	h.leaveAt(h.rng.Intn(len(h.live)))
}

func (h *churnHarness) setCapRandom() {
	l := graph.LinkID(h.rng.Intn(h.g.NumLinks()))
	c := rate.FromFrac(int64(1+h.rng.Intn(2000)), int64(1+h.rng.Intn(3)))
	h.g.SetCapacity(l, c)
	h.inc.SetCapacity(h.linkOf[l], c)
}

// failRandom fails one link the way the network layer does: crossing
// sessions depart first, then the link goes down, then each departed
// session rejoins on a fresh shortest path (or stays out if none exists).
func (h *churnHarness) failRandom() {
	l := graph.LinkID(h.rng.Intn(h.g.NumLinks()))
	if !h.g.LinkUp(l) {
		return
	}
	var crossing []harnessSession
	for i := len(h.live) - 1; i >= 0; i-- {
		for _, e := range h.live[i].path {
			if e == l {
				crossing = append(crossing, h.live[i])
				h.leaveAt(i)
				break
			}
		}
	}
	h.g.FailLink(l)
	h.inc.FailLink(h.linkOf[l])
	for _, s := range crossing {
		h.join(s.src, s.dst, s.demand)
	}
}

func (h *churnHarness) restoreRandom() {
	// Scan a few random links for a failed one; restores are rarer than
	// fails anyway.
	for try := 0; try < 8; try++ {
		l := graph.LinkID(h.rng.Intn(h.g.NumLinks()))
		if h.g.LinkUp(l) {
			continue
		}
		h.g.RestoreLink(l)
		h.inc.RestoreLink(h.linkOf[l])
		return
	}
}

func (h *churnHarness) step() {
	switch h.rng.Intn(10) {
	case 0, 1, 2:
		h.joinRandom()
	case 3, 4:
		h.leaveRandom()
	case 5, 6:
		h.setCapRandom()
	case 7, 8:
		h.failRandom()
	case 9:
		h.restoreRandom()
	}
}

// shadowSolve rebuilds the live instance from scratch and solves it with a
// fresh Solver.
func (h *churnHarness) shadowSolve() []rate.Rate {
	idx := make(map[graph.LinkID]int)
	var in waterfill.Instance
	for _, s := range h.live {
		path := make([]int, 0, len(s.path))
		for _, l := range s.path {
			i, ok := idx[l]
			if !ok {
				i = len(in.Capacity)
				idx[l] = i
				in.Capacity = append(in.Capacity, h.g.Link(l).Capacity)
			}
			path = append(path, i)
		}
		in.Sessions = append(in.Sessions, waterfill.Session{Demand: s.demand, Path: path})
	}
	rates, err := waterfill.Solve(in)
	if err != nil {
		h.t.Fatalf("shadow solve: %v", err)
	}
	return rates
}

// checkEquivalence asserts every live session's incremental rate is
// byte-identical to the shadow full solve.
func (h *churnHarness) checkEquivalence(step int) {
	if err := h.inc.Flush(); err != nil {
		h.t.Fatalf("step %d: flush: %v", step, err)
	}
	want := h.shadowSolve()
	for i, s := range h.live {
		got := h.inc.Rate(s.h)
		if got.Key() != want[i].Key() {
			h.t.Fatalf("step %d: session %d (%d->%d): incremental %s, full %s",
				step, s.h, s.src, s.dst, got.Key(), want[i].Key())
		}
	}
}

func runChurn(t testing.TB, params topology.InternetParams, hosts, warm, steps int, seed int64, tune func(*waterfill.Incremental)) waterfill.IncrementalStats {
	h := newChurnHarness(t, params, hosts, seed)
	if tune != nil {
		tune(h.inc)
	}
	for i := 0; i < warm; i++ {
		h.joinRandom()
	}
	h.checkEquivalence(-1)
	for i := 0; i < steps; i++ {
		h.step()
		// Occasionally batch a second delta into the same flush.
		if h.rng.Intn(4) == 0 {
			h.step()
		}
		h.checkEquivalence(i)
	}
	return h.inc.Stats()
}

func TestIncrementalChurnEquivalencePaper(t *testing.T) {
	stats := runChurn(t, topology.InternetPaper, 48, 40, 160, 1,
		func(inc *waterfill.Incremental) { inc.FallbackPercent = 1000 })
	if stats.DeltaSolves == 0 {
		t.Fatalf("no delta solves exercised: %+v", stats)
	}
}

// The default fall-back threshold and the cross-check knob get their own
// pass: small topologies cascade past 25%% of the links all the time, so
// this exercises the full-solve fall-back path, and CrossCheck exercises
// the internal comparison solver.
func TestIncrementalChurnFallbackAndCrossCheck(t *testing.T) {
	stats := runChurn(t, topology.InternetPaper, 32, 24, 80, 2,
		func(inc *waterfill.Incremental) { inc.CrossCheck = true })
	if stats.FullSolves == 0 {
		t.Fatalf("expected at least one full solve: %+v", stats)
	}
}

func TestIncrementalChurnEquivalenceMetro(t *testing.T) {
	if testing.Short() {
		t.Skip("metro-rung churn equivalence is minutes of full solves; run without -short")
	}
	stats := runChurn(t, topology.InternetMetro, 256, 200, 120, 3,
		func(inc *waterfill.Incremental) { inc.FallbackPercent = 200 })
	if stats.DeltaSolves == 0 {
		t.Fatalf("no delta solves exercised: %+v", stats)
	}
}

// FuzzIncrementalEquivalence drives the same churn harness from a fuzzed
// (seed, steps) pair on the Paper rung.
func FuzzIncrementalEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(50))
	f.Add(int64(7), uint8(3), uint8(90))
	f.Add(int64(42), uint8(80), uint8(20))
	f.Fuzz(func(t *testing.T, seed int64, warm, steps uint8) {
		runChurn(t, topology.InternetPaper, 32, int(warm)%64, int(steps)%64, seed,
			func(inc *waterfill.Incremental) { inc.FallbackPercent = 1000 })
	})
}

// TestIncrementalFrozenCascade pins the one case that escapes the closure:
// a leave frees capacity at e, its top group rises into a previously slack
// link f, f saturates below the rate of a frozen crosser of f, and true
// max-min pulls that crosser down — which in turn raises its neighbor at a
// third link h. The verify-and-grow fixpoint must find all of it.
func TestIncrementalFrozenCascade(t *testing.T) {
	inc := waterfill.NewIncremental()
	inc.FallbackPercent = 1000
	e := inc.AddLink(rate.FromInt64(2))
	f := inc.AddLink(rate.FromFrac(9, 2)) // 4.5
	h := inc.AddLink(rate.FromInt64(6))
	sA := inc.SessionJoin(rate.Inf, []int{e})    // leaves later
	sU := inc.SessionJoin(rate.Inf, []int{e, f}) // rises, then capped at f
	sX := inc.SessionJoin(rate.Inf, []int{e, f}) // rises with it
	sV := inc.SessionJoin(rate.Inf, []int{f, h}) // frozen crosser pulled down
	sW := inc.SessionJoin(rate.Inf, []int{h})    // rises when v drops
	if err := inc.Flush(); err != nil {
		t.Fatal(err)
	}
	// Initial: e shares 2 across {a,u,x} → 2/3 each; f: 3 + 4/3 < 4.5 slack;
	// h: v=w=3.
	for _, want := range []struct {
		h int
		r string
	}{{sA, "2/3"}, {sU, "2/3"}, {sX, "2/3"}, {sV, "3"}, {sW, "3"}} {
		if got := inc.Rate(want.h).Key(); got != want.r {
			t.Fatalf("initial rate of %d: got %s, want %s", want.h, got, want.r)
		}
	}
	inc.SessionLeave(sA)
	if err := inc.Flush(); err != nil {
		t.Fatal(err)
	}
	// After the leave: u,x = 1 (e tight), v = 2.5 (f tight), w = 3.5.
	for _, want := range []struct {
		h int
		r string
	}{{sU, "1"}, {sX, "1"}, {sV, "5/2"}, {sW, "7/2"}} {
		if got := inc.Rate(want.h).Key(); got != want.r {
			t.Fatalf("post-leave rate of %d: got %s, want %s", want.h, got, want.r)
		}
	}
	stats := inc.Stats()
	if stats.FullSolves != 1 || stats.DeltaSolves != 1 || stats.Fallbacks != 0 {
		t.Fatalf("expected one full (initial) and one delta solve, got %+v", stats)
	}
	if stats.GrowRounds == 0 {
		t.Fatalf("expected the verify-and-grow fixpoint to fire, got %+v", stats)
	}
}

// TestIncrementalFailRequiresDeparture pins the FailLink contract: flushing
// while a session still crosses a failed link reports an error.
func TestIncrementalFailRequiresDeparture(t *testing.T) {
	inc := waterfill.NewIncremental()
	l := inc.AddLink(rate.FromInt64(10))
	inc.SessionJoin(rate.Inf, []int{l})
	if err := inc.Flush(); err != nil {
		t.Fatal(err)
	}
	inc.FailLink(l)
	if err := inc.Flush(); err == nil {
		t.Fatal("flush with a crossed failed link should error")
	}
}
