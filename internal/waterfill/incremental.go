package waterfill

// Incremental max-min: the oracle-side analogue of the paper's observation
// that a membership change should not force a global recomputation. The
// solver keeps the solved state of a live instance — per-link residual
// capacity (capacity minus the exact load of current rates), per-session
// bottleneck level (the rate itself), and per-link membership — and, on a
// delta, re-levels only the affected bottleneck component instead of
// restarting the fill.
//
// The re-leveling rule. After a solve, every session s is restricted at some
// tight link e: Σ load(e) = C(e) and λ(s) = max over members of e (demand
// restriction is the same statement on the session's private virtual demand
// link, the D_s = min(C_e, r_s) trick). Call the members of e at that
// maximum e's *top group*. A delta seeds an affected set A:
//
//   - every link whose capacity, membership or load changed seeds its top
//     group (the sessions whose restriction evidence the delta disturbed);
//   - every session that joined since the last solve seeds itself.
//
// A is then closed: whenever a session enters A, every *tight* link it
// crosses contributes its top group too. Sessions below a tight link's
// level are restricted elsewhere and stay frozen — their own restriction
// link is either untouched (so their evidence stands) or dirty/crossed by
// A, in which case the closure has already pulled them in as that link's
// top group. The sub-instance over A's links, with each link's capacity
// reduced by the exact load of the frozen sessions crossing it, is then
// solved by the ordinary Solver.
//
// One case escapes the closure: a riser capped at a previously-slack link
// that saturates *below* the rate of a frozen crosser — max-min would pull
// that crosser down, so freezing it was wrong. The commit therefore
// verifies Definition 1 for every re-leveled session against the combined
// loads (frozen plus new); any session left without a bottleneck grows A
// by the larger frozen crossers of its tight links and re-levels. The
// fixpoint terminates because A only grows, and both a configurable
// fraction-of-links threshold and a round cap fall back to a full solve
// long before that.
//
// Determinism: the affected set, its closure and the sub-instance are built
// from slices in discovery order — no map iteration — and all arithmetic is
// exact rational (rate.Rate). Max-min rates are unique, and rate.Rate
// normalizes equal values to identical representations, so the rates a
// delta solve commits are byte-identical to a fresh full solve of the same
// instance; FuzzIncrementalEquivalence pins exactly that.

import (
	"errors"
	"fmt"

	"bneck/internal/rate"
)

// ErrCrossCheck marks an incremental-vs-full divergence detected by the
// CrossCheck path: the mirrored incremental solve committed a rate that a
// fresh full solve of the same instance contradicts. Callers that classify
// validation failures (the schedule explorer's oracle-exactness invariant)
// test for it with errors.Is.
var ErrCrossCheck = errors.New("waterfill: cross-check mismatch")

// DefaultFallbackPercent is the delta-cascade threshold: when the affected
// component spans more than this percentage of the member-carrying links,
// re-leveling stops paying for itself and the flush falls back to the full
// Solver. With lazy top-group growth the affected component of a churn
// batch on internet-scale topologies stays small (single-digit percent on
// the Metro/Internet rungs of BenchmarkOracleChurn), while on paper-sized
// topologies dense sharing makes the cascade engulf most of the network —
// and verify-and-grow then re-solves that near-full sub-instance several
// times, costing more than the one full solve it replaces. 25 separates
// the two regimes with a wide margin on both sides, and catches the dense
// case on the initial closure — before any sub-solve is paid for.
const DefaultFallbackPercent = 25

// defaultGrowRounds caps verify-and-grow iterations per flush; beyond it the
// flush falls back to a full solve.
const defaultGrowRounds = 16

// incMember is one entry of a link's membership list: a session handle and
// the generation it was issued under. Departed sessions leave stale entries
// behind; scans recognize them by generation and compact lazily.
type incMember struct {
	sess int32
	gen  uint32
}

type incSession struct {
	demand  rate.Rate
	lambda  rate.Rate
	path    []int32 // link handles, including the private demand link
	gen     uint32
	mark    uint32 // == Incremental.stamp when in the affected set
	alive   bool
	pending bool // joined since the last flush; lambda is meaningless
}

type incLink struct {
	cap      rate.Rate
	load     rate.Rate // exact sum of live non-pending member rates
	members  []incMember
	subStamp uint32 // == Incremental.stamp when in the sub-instance
	subPos   int32  // index into subLinks, valid when subStamp matches
	nLive    int32  // live member count (pending included)
	down     bool
	dirty    bool
	virtual  bool // private demand link owned by one session
	free     bool
}

// IncrementalStats counts how flushes were resolved.
type IncrementalStats struct {
	FullSolves   uint64 // full re-solves: first flush and fall-backs
	DeltaSolves  uint64 // flushes resolved by affected-component re-leveling
	NoopFlushes  uint64 // flushes with no pending deltas
	Fallbacks    uint64 // delta solves abandoned past the cascade threshold
	GrowRounds   uint64 // verify-and-grow iterations beyond the first
	Releveled    uint64 // sessions re-assigned by delta solves
	LinksVisited uint64 // sub-instance links scanned by delta solves
}

// Incremental maintains the max-min fair rates of a live instance under a
// stream of deltas. Deltas are cheap bookkeeping; the re-level runs lazily
// on the first Rate/Flush after a batch of deltas, so an epoch's worth of
// churn costs one affected-component solve. The zero value is not ready:
// use NewIncremental. Not safe for concurrent use.
type Incremental struct {
	// FallbackPercent is the cascade threshold in percent of member-carrying
	// links (DefaultFallbackPercent when NewIncremental built the solver).
	FallbackPercent int
	// CrossCheck re-solves the full instance after every flush and verifies
	// the committed rates are identical — the debug knob; it removes the
	// speedup but not the laziness.
	CrossCheck bool

	links     []incLink
	freeLinks []int32
	sessions  []incSession
	freeSess  []int32

	memberLinks int // links currently carrying at least one live member
	liveSess    int

	dirty   []int32 // links whose capacity/membership/load changed
	pending []int32 // sessions joined since the last flush
	solved  bool    // full state valid; false forces a full solve

	stamp    uint32
	subLinks []int32 // sub-instance links, discovery order
	subA     []int32 // affected sessions, discovery order
	queue    []int32 // closure worklist (prefix-scanned)

	frozenLoad []rate.Rate // per subLinks slot: load of frozen crossers
	frozenMax  []rate.Rate // per subLinks slot: max frozen crosser rate
	oldMax     []rate.Rate // per subLinks slot: max pre-solve member rate
	newLoad    []rate.Rate // per subLinks slot: combined post-solve load
	newMax     []rate.Rate // per subLinks slot: combined post-solve max
	inst       Instance
	pathArena  []int
	seenStamp  []uint32 // path dedup scratch, stamped by pathStamp
	pathStamp  uint32

	solver Solver
	check  Solver
	stats  IncrementalStats
}

// NewIncremental returns an empty live instance.
func NewIncremental() *Incremental {
	return &Incremental{FallbackPercent: DefaultFallbackPercent}
}

// Stats returns the flush counters.
func (inc *Incremental) Stats() IncrementalStats { return inc.stats }

// LiveSessions returns the number of joined, not-yet-departed sessions.
func (inc *Incremental) LiveSessions() int { return inc.liveSess }

// AddLink adds a link with the given capacity and returns its handle.
func (inc *Incremental) AddLink(c rate.Rate) int {
	return int(inc.allocLink(c, false))
}

func (inc *Incremental) allocLink(c rate.Rate, virtual bool) int32 {
	var l int32
	if n := len(inc.freeLinks); n > 0 {
		l = inc.freeLinks[n-1]
		inc.freeLinks = inc.freeLinks[:n-1]
	} else {
		inc.links = append(inc.links, incLink{})
		l = int32(len(inc.links) - 1)
	}
	lk := &inc.links[l]
	// A recycled handle may still sit on the dirty list; keep the flag so it
	// is not enqueued twice.
	lk.cap, lk.load, lk.virtual = c, rate.Zero, virtual
	lk.members, lk.nLive = lk.members[:0], 0
	lk.down, lk.free = false, false
	return l
}

// SetCapacity changes a link's capacity. The change takes effect at the
// next flush.
func (inc *Incremental) SetCapacity(link int, c rate.Rate) {
	lk := &inc.links[link]
	lk.cap = c
	inc.markDirty(int32(link))
}

// FailLink takes a link out of service. Sessions crossing it must leave
// (or rejoin on another path) before the next flush; Flush reports an error
// otherwise.
func (inc *Incremental) FailLink(link int) {
	inc.links[link].down = true
	inc.markDirty(int32(link))
}

// RestoreLink returns a failed link to service at its current capacity.
func (inc *Incremental) RestoreLink(link int) {
	inc.links[link].down = false
	inc.markDirty(int32(link))
}

func (inc *Incremental) markDirty(l int32) {
	lk := &inc.links[l]
	if !lk.dirty {
		lk.dirty = true
		inc.dirty = append(inc.dirty, l)
	}
}

// SessionJoin adds a session with the given demand (possibly rate.Inf) over
// the given links and returns its handle. The rate is assigned at the next
// flush.
func (inc *Incremental) SessionJoin(demand rate.Rate, path []int) int {
	if len(path) == 0 {
		panic("waterfill: session join with an empty path")
	}
	if demand.Sign() <= 0 && !demand.IsInf() {
		panic(fmt.Sprintf("waterfill: session join with non-positive demand %v", demand))
	}
	var h int32
	if n := len(inc.freeSess); n > 0 {
		h = inc.freeSess[n-1]
		inc.freeSess = inc.freeSess[:n-1]
	} else {
		inc.sessions = append(inc.sessions, incSession{})
		h = int32(len(inc.sessions) - 1)
	}
	s := &inc.sessions[h]
	s.demand, s.lambda = demand, rate.Zero
	s.alive, s.pending, s.mark = true, true, 0
	s.path = s.path[:0]
	// Paths are sets: a route crossing the same link twice counts once, the
	// same contract as Solver's membership lists.
	inc.pathStamp++
	if inc.pathStamp == 0 { // wrapped: stale stamps would alias
		for i := range inc.seenStamp {
			inc.seenStamp[i] = 0
		}
		inc.pathStamp = 1
	}
	inc.seenStamp = growClear(inc.seenStamp, len(inc.links))
	for _, e := range path {
		if inc.seenStamp[e] == inc.pathStamp {
			continue
		}
		inc.seenStamp[e] = inc.pathStamp
		if inc.links[e].down {
			panic(fmt.Sprintf("waterfill: session join crosses failed link %d", e))
		}
		s.path = append(s.path, int32(e))
	}
	if !demand.IsInf() {
		s.path = append(s.path, inc.allocLink(demand, true))
	}
	for _, l := range s.path {
		lk := &inc.links[l]
		lk.members = append(lk.members, incMember{sess: h, gen: s.gen})
		lk.nLive++
		if lk.nLive == 1 {
			inc.memberLinks++
		}
	}
	inc.pending = append(inc.pending, h)
	inc.liveSess++
	return int(h)
}

// SessionLeave removes a session. Frees its capacity at the next flush.
func (inc *Incremental) SessionLeave(h int) {
	s := &inc.sessions[h]
	if !s.alive {
		panic(fmt.Sprintf("waterfill: leave of dead session %d", h))
	}
	s.alive = false
	s.gen++ // membership entries referencing the old generation go stale
	for _, l := range s.path {
		lk := &inc.links[l]
		lk.nLive--
		if lk.nLive == 0 {
			inc.memberLinks--
		}
		// Only links that were tight need re-leveling: a slack link binds
		// nobody, and removing a member only raises its bottleneck estimate
		// further, so it cannot become the argmin of the new instance either.
		// Freed capacity on a tight link, by contrast, raises the water level
		// its top group sits at. A pending leaver (join and leave between
		// flushes) never contributed load, so it frees nothing anywhere.
		wasTight := !s.pending && lk.load.Equal(lk.cap)
		if !s.pending {
			lk.load = lk.load.Sub(s.lambda)
		}
		if lk.virtual {
			lk.free = true
			inc.freeLinks = append(inc.freeLinks, l)
		} else if wasTight {
			inc.markDirty(l)
		}
	}
	inc.freeSess = append(inc.freeSess, int32(h))
	inc.liveSess--
}

// Rate returns the current max-min fair rate of a live session, flushing
// pending deltas first. It panics if the flush fails (use Flush to observe
// the error).
func (inc *Incremental) Rate(h int) rate.Rate {
	if err := inc.Flush(); err != nil {
		panic(err)
	}
	s := &inc.sessions[h]
	if !s.alive || s.pending {
		panic(fmt.Sprintf("waterfill: rate of dead or unflushed session %d", h))
	}
	return s.lambda
}

// Flush applies all pending deltas, re-leveling the affected bottleneck
// component (or falling back to a full solve past the cascade threshold).
// It is idempotent between deltas.
func (inc *Incremental) Flush() error {
	if !inc.solved {
		return inc.fullSolve()
	}
	if len(inc.dirty) == 0 && len(inc.pending) == 0 {
		inc.stats.NoopFlushes++
		return nil
	}
	if err := inc.relevel(); err != nil {
		return err
	}
	if inc.CrossCheck {
		return inc.crossCheck()
	}
	return nil
}

// addA puts a session into the affected set (once) and on the closure
// worklist.
func (inc *Incremental) addA(h int32) {
	s := &inc.sessions[h]
	if s.mark == inc.stamp {
		return
	}
	s.mark = inc.stamp
	inc.subA = append(inc.subA, h)
	inc.queue = append(inc.queue, h)
}

// addSub puts a link into the sub-instance (once) and returns its slot.
func (inc *Incremental) addSub(l int32) int32 {
	lk := &inc.links[l]
	if lk.subStamp == inc.stamp {
		return lk.subPos
	}
	lk.subStamp = inc.stamp
	lk.subPos = int32(len(inc.subLinks))
	inc.subLinks = append(inc.subLinks, l)
	return lk.subPos
}

// seedTopGroup adds a link's top group — its live, already-rated members at
// the maximum member rate — to the affected set, compacting stale
// membership entries on the way.
func (inc *Incremental) seedTopGroup(l int32) {
	lk := &inc.links[l]
	kept := lk.members[:0]
	var mx rate.Rate
	has := false
	for _, m := range lk.members {
		s := &inc.sessions[m.sess]
		if !s.alive || s.gen != m.gen {
			continue
		}
		kept = append(kept, m)
		if s.pending {
			continue
		}
		if !has || s.lambda.Greater(mx) {
			mx, has = s.lambda, true
		}
	}
	lk.members = kept
	if !has {
		return
	}
	for _, m := range kept {
		s := &inc.sessions[m.sess]
		if !s.pending && s.lambda.Equal(mx) {
			inc.addA(m.sess)
		}
	}
}

// isTight reports whether a link's current load exactly meets its capacity.
func (inc *Incremental) isTight(l int32) bool {
	lk := &inc.links[l]
	return lk.load.Equal(lk.cap)
}

// closure drains the worklist: every link an affected session crosses joins
// the sub-instance. Top groups of tight links are NOT pulled in eagerly —
// re-leveling only touches a frozen session when its bottleneck actually
// moves, and subSolve's Definition-1 verify detects exactly that (a sub-link
// left slack, or a sub-session overtaking the frozen top at a tight link)
// and grows the affected set on demand. Eager seeding is sound but drags in
// entire equal-rate top groups transitively — on internet-scale fringes
// that engulfs half the sessions per flush for churn that ends up moving
// only a handful of levels.
func (inc *Incremental) closure() {
	for qi := 0; qi < len(inc.queue); qi++ {
		u := inc.queue[qi]
		for _, l := range inc.sessions[u].path {
			inc.addSub(l)
		}
	}
}

// bumpStamp advances the affected-set generation, resetting every stored
// mark when the counter wraps so stale stamps cannot alias the new one.
func (inc *Incremental) bumpStamp() {
	inc.stamp++
	if inc.stamp != 0 {
		return
	}
	for i := range inc.sessions {
		inc.sessions[i].mark = 0
	}
	for i := range inc.links {
		inc.links[i].subStamp = 0
	}
	inc.stamp = 1
}

// relevel is the delta path of Flush: seed, close, sub-solve, verify, grow.
func (inc *Incremental) relevel() error {
	inc.bumpStamp()
	inc.subLinks, inc.subA, inc.queue = inc.subLinks[:0], inc.subA[:0], inc.queue[:0]
	for _, l := range inc.dirty {
		lk := &inc.links[l]
		lk.dirty = false
		if lk.down && lk.nLive > 0 {
			return fmt.Errorf("waterfill: failed link %d still crossed by %d sessions at flush", l, lk.nLive)
		}
		if lk.down || lk.free || lk.nLive == 0 {
			continue
		}
		inc.seedTopGroup(l)
	}
	for _, h := range inc.pending {
		if inc.sessions[h].alive {
			inc.addA(h)
		}
	}
	inc.dirty, inc.pending = inc.dirty[:0], inc.pending[:0]
	inc.closure()

	for round := 0; ; round++ {
		if round >= defaultGrowRounds ||
			100*len(inc.subLinks) > inc.FallbackPercent*inc.memberLinks {
			inc.stats.Fallbacks++
			return inc.fullSolve()
		}
		if round > 0 {
			inc.stats.GrowRounds++
		}
		grew, err := inc.subSolve()
		if err != nil {
			// The sub-instance should always be solvable; be safe, not stuck.
			inc.stats.Fallbacks++
			return inc.fullSolve()
		}
		if !grew {
			break
		}
	}
	inc.stats.DeltaSolves++
	inc.stats.Releveled += uint64(len(inc.subA))
	inc.stats.LinksVisited += uint64(len(inc.subLinks))
	return nil
}

// subSolve builds the residual sub-instance over the current affected set,
// solves it, and either commits (false) or grows the set (true) when a
// re-leveled session is left without a Definition-1 bottleneck against the
// combined loads.
func (inc *Incremental) subSolve() (grew bool, err error) {
	nSub := len(inc.subLinks)
	inc.frozenLoad = grow(inc.frozenLoad, nSub)
	inc.frozenMax = grow(inc.frozenMax, nSub)
	inc.oldMax = grow(inc.oldMax, nSub)
	for i, l := range inc.subLinks {
		lk := &inc.links[l]
		fl, fm, om := rate.Zero, rate.Zero, rate.Zero
		kept := lk.members[:0]
		for _, m := range lk.members {
			s := &inc.sessions[m.sess]
			if !s.alive || s.gen != m.gen {
				continue
			}
			kept = append(kept, m)
			if s.pending {
				continue
			}
			om = rate.Max(om, s.lambda)
			if s.mark == inc.stamp {
				continue
			}
			fl = fl.Add(s.lambda)
			fm = rate.Max(fm, s.lambda)
		}
		lk.members = kept
		inc.frozenLoad[i], inc.frozenMax[i], inc.oldMax[i] = fl, fm, om
	}

	// Residual capacities and the affected sessions, paths remapped to
	// sub-instance slots. Demands are already materialized as private
	// virtual links in the session paths, so every sub-session is unbounded.
	inc.inst.Capacity = grow(inc.inst.Capacity, nSub)
	for i, l := range inc.subLinks {
		inc.inst.Capacity[i] = inc.links[l].cap.Sub(inc.frozenLoad[i])
	}
	inc.inst.Sessions = grow(inc.inst.Sessions, len(inc.subA))
	need := 0
	for _, u := range inc.subA {
		need += len(inc.sessions[u].path)
	}
	if cap(inc.pathArena) < need {
		inc.pathArena = make([]int, need)
	}
	arena := inc.pathArena[:0]
	for ui, u := range inc.subA {
		s := &inc.sessions[u]
		p := arena[len(arena) : len(arena) : len(arena)+len(s.path)]
		for _, l := range s.path {
			p = append(p, int(inc.links[l].subPos))
		}
		arena = arena[:len(arena)+len(p)]
		inc.inst.Sessions[ui] = Session{Demand: rate.Inf, Path: p}
	}
	rates, err := inc.solver.Solve(inc.inst)
	if err != nil {
		return false, err
	}

	// Combined loads: frozen crossers plus the fresh rates.
	inc.newLoad = grow(inc.newLoad, nSub)
	inc.newMax = grow(inc.newMax, nSub)
	copy(inc.newLoad, inc.frozenLoad[:nSub])
	copy(inc.newMax, inc.frozenMax[:nSub])
	for ui, u := range inc.subA {
		r := rates[ui]
		for _, l := range inc.sessions[u].path {
			i := inc.links[l].subPos
			inc.newLoad[i] = inc.newLoad[i].Add(r)
			inc.newMax[i] = rate.Max(inc.newMax[i], r)
		}
	}

	// Definition-1 verify against the combined instance. A session without a
	// bottleneck was capped below a frozen crosser at a link that saturated:
	// true max-min pulls that crosser down too, so it joins the affected set
	// and the component re-levels.
	unrestricted := false
	for ui, u := range inc.subA {
		r := rates[ui]
		restricted := false
		for _, l := range inc.sessions[u].path {
			lk := &inc.links[l]
			i := lk.subPos
			if inc.newLoad[i].Equal(lk.cap) && r.Equal(inc.newMax[i]) {
				restricted = true
				break
			}
		}
		if restricted {
			continue
		}
		unrestricted = true
		for _, l := range inc.sessions[u].path {
			lk := &inc.links[l]
			i := lk.subPos
			if !inc.newLoad[i].Equal(lk.cap) || !inc.frozenMax[i].Greater(r) {
				continue
			}
			for _, m := range lk.members {
				s := &inc.sessions[m.sess]
				if !s.alive || s.gen != m.gen || s.pending || s.mark == inc.stamp {
					continue
				}
				if s.lambda.Greater(r) {
					inc.addA(m.sess)
					grew = true
				}
			}
		}
	}
	// The lazy-closure grow direction: a frozen session bottlenecked at a
	// sub-link (the link was tight and the frozen members were its top
	// group) must stay at a valid bottleneck. If the re-level left that
	// link slack, or handed a sub-session more than the frozen top rate
	// while it stayed tight, the frozen top group's water level rises —
	// pull it into the affected set and re-level. Frozen members below the
	// old top are bottlenecked elsewhere and never need to move.
	for i, l := range inc.subLinks {
		lk := &inc.links[l]
		if !inc.isTight(l) { // pre-solve load: nobody frozen was bottlenecked at a slack link
			continue
		}
		fm := inc.frozenMax[i]
		if !fm.Equal(inc.oldMax[i]) { // the old top members are all affected: solver re-levels them itself
			continue
		}
		if inc.newLoad[i].Equal(lk.cap) && !inc.newMax[i].Greater(fm) {
			continue
		}
		for _, m := range lk.members {
			s := &inc.sessions[m.sess]
			if !s.alive || s.gen != m.gen || s.pending || s.mark == inc.stamp {
				continue
			}
			if s.lambda.Equal(fm) {
				inc.addA(m.sess)
				grew = true
			}
		}
	}
	if grew {
		inc.closure()
		return true, nil
	}
	if unrestricted {
		// Cannot happen for a consistent state (the solver's assigning link
		// is tight with a larger frozen crosser); route to the full solve
		// rather than commit a non-max-min allocation.
		return false, fmt.Errorf("waterfill: re-level left a session unrestricted with no frozen crosser to pull in")
	}

	// Commit: rates and exact per-link loads for the affected component.
	for i, l := range inc.subLinks {
		inc.links[l].load = inc.newLoad[i]
	}
	for ui, u := range inc.subA {
		s := &inc.sessions[u]
		s.lambda = rates[ui]
		s.pending = false
	}
	return false, nil
}

// fullSolve rebuilds the whole instance from the live sessions and solves it
// from scratch — the first flush, the cascade fall-back, and the safety net.
func (inc *Incremental) fullSolve() error {
	rates, order, err := inc.solveAll(&inc.solver)
	if err != nil {
		return err
	}
	for l := range inc.links {
		lk := &inc.links[l]
		lk.load = rate.Zero
		lk.dirty = false
	}
	for ui, u := range order {
		s := &inc.sessions[u]
		s.lambda = rates[ui]
		s.pending = false
		for _, l := range s.path {
			lk := &inc.links[l]
			lk.load = lk.load.Add(rates[ui])
		}
	}
	inc.dirty, inc.pending = inc.dirty[:0], inc.pending[:0]
	inc.solved = true
	inc.stats.FullSolves++
	return nil
}

// solveAll builds the full live instance (sessions in handle order, links in
// first-encounter order) and solves it with the given solver. It returns
// the rates and the session handles in instance order.
func (inc *Incremental) solveAll(sv *Solver) ([]rate.Rate, []int32, error) {
	inc.bumpStamp()
	inc.subLinks, inc.subA = inc.subLinks[:0], inc.subA[:0]
	need := 0
	for h := range inc.sessions {
		s := &inc.sessions[h]
		if !s.alive {
			continue
		}
		inc.subA = append(inc.subA, int32(h))
		need += len(s.path)
	}
	if cap(inc.pathArena) < need {
		inc.pathArena = make([]int, need)
	}
	arena := inc.pathArena[:0]
	inc.inst.Sessions = grow(inc.inst.Sessions, len(inc.subA))
	for ui, u := range inc.subA {
		s := &inc.sessions[u]
		p := arena[len(arena) : len(arena) : len(arena)+len(s.path)]
		for _, l := range s.path {
			p = append(p, int(inc.addSub(l)))
		}
		arena = arena[:len(arena)+len(p)]
		inc.inst.Sessions[ui] = Session{Demand: rate.Inf, Path: p}
	}
	inc.inst.Capacity = grow(inc.inst.Capacity, len(inc.subLinks))
	for i, l := range inc.subLinks {
		inc.inst.Capacity[i] = inc.links[l].cap
	}
	rates, err := sv.Solve(inc.inst)
	if err != nil {
		return nil, nil, err
	}
	return rates, inc.subA, nil
}

// crossCheck full-solves the live instance with a separate solver and
// verifies the committed rates match value for value.
func (inc *Incremental) crossCheck() error {
	rates, order, err := inc.solveAll(&inc.check)
	if err != nil {
		return fmt.Errorf("waterfill: cross-check solve failed: %w", err)
	}
	for ui, u := range order {
		s := &inc.sessions[u]
		if !s.lambda.Equal(rates[ui]) {
			return fmt.Errorf("%w for session %d: incremental %v, full %v",
				ErrCrossCheck, u, s.lambda, rates[ui])
		}
	}
	return nil
}

// growClear returns s resized to n with any newly exposed tail zeroed; the
// existing prefix is preserved (unlike grow, which leaves contents
// unspecified).
func growClear(s []uint32, n int) []uint32 {
	if cap(s) >= n {
		return s[:n]
	}
	next := make([]uint32, n)
	copy(next, s)
	return next
}
