package trace

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"bneck/internal/rate"
)

func TestJoinsSortedAndWindowed(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	start, window := 10*time.Millisecond, time.Millisecond
	evs := Joins(5, 100, start, window, Unbounded, r)
	if len(evs) != 100 {
		t.Fatalf("len = %d", len(evs))
	}
	seen := make(map[int]bool)
	for i, e := range evs {
		if e.Kind != Join {
			t.Fatalf("kind = %v", e.Kind)
		}
		if e.At < start || e.At >= start+window {
			t.Fatalf("event %d outside window: %v", i, e.At)
		}
		if i > 0 && evs[i-1].At > e.At {
			t.Fatalf("not sorted at %d", i)
		}
		if !e.Demand.IsInf() {
			t.Fatalf("unbounded demand expected")
		}
		seen[e.Session] = true
	}
	for s := 5; s < 105; s++ {
		if !seen[s] {
			t.Fatalf("session %d missing", s)
		}
	}
}

func TestMixedDemands(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	fn := MixedDemands(0.5, 10, 20)
	finite, inf := 0, 0
	for i := 0; i < 1000; i++ {
		d := fn(r)
		if d.IsInf() {
			inf++
			continue
		}
		finite++
		if d.Less(rate.Mbps(10)) || d.Greater(rate.Mbps(20)) {
			t.Fatalf("demand %v outside [10,20] Mbps", d)
		}
	}
	if finite < 400 || inf < 400 {
		t.Fatalf("suspicious split: %d finite, %d inf", finite, inf)
	}
}

func TestLeavesAndChanges(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ls := Leaves([]int{3, 1, 2}, 0, time.Millisecond, r)
	if len(ls) != 3 {
		t.Fatalf("leaves = %d", len(ls))
	}
	cs := Changes([]int{7, 8}, time.Millisecond, time.Millisecond, Unbounded, r)
	for _, e := range cs {
		if e.Kind != Change || !e.Demand.IsInf() {
			t.Fatalf("bad change event %+v", e)
		}
		if e.At < time.Millisecond || e.At >= 2*time.Millisecond {
			t.Fatalf("change outside window: %v", e.At)
		}
	}
}

func TestMergeSorts(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := Joins(0, 50, 0, time.Millisecond, Unbounded, r)
	b := Leaves([]int{0, 1, 2}, 500*time.Microsecond, time.Millisecond, r)
	m := Merge(a, b)
	if len(m) != 53 {
		t.Fatalf("merged = %d", len(m))
	}
	if !sort.SliceIsSorted(m, func(i, j int) bool { return m[i].At < m[j].At }) {
		t.Fatalf("merge not sorted")
	}
}

func TestSample(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pop := []int{10, 20, 30, 40, 50}
	s := Sample(pop, 3, r)
	if len(s) != 3 {
		t.Fatalf("sample = %v", s)
	}
	seen := make(map[int]bool)
	for _, v := range s {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
		found := false
		for _, p := range pop {
			if p == v {
				found = true
			}
		}
		if !found {
			t.Fatalf("%d not in population", v)
		}
	}
}

func TestSamplePanicsWhenTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Sample([]int{1}, 2, rand.New(rand.NewSource(1)))
}

func TestZeroWindow(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	evs := Joins(0, 5, time.Millisecond, 0, Unbounded, r)
	for _, e := range evs {
		if e.At != time.Millisecond {
			t.Fatalf("zero window event at %v", e.At)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Joins(0, 100, 0, time.Millisecond, MixedDemands(0.3, 1, 100), rand.New(rand.NewSource(9)))
	b := Joins(0, 100, 0, time.Millisecond, MixedDemands(0.3, 1, 100), rand.New(rand.NewSource(9)))
	for i := range a {
		if a[i].At != b[i].At || a[i].Session != b[i].Session || !a[i].Demand.Equal(b[i].Demand) {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}
