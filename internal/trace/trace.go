// Package trace generates the session-dynamics schedules of the paper's
// experiments: bursts of joins, leaves and demand changes placed uniformly
// at random inside a time window (Experiments 1–3 all use 1 ms or 5 ms
// windows). Schedules are deterministic given an RNG.
package trace

import (
	"math/rand"
	"sort"
	"time"

	"bneck/internal/rate"
)

// Kind is the type of a session event.
type Kind int

const (
	// Join brings a new session up with a demand.
	Join Kind = iota + 1
	// Leave removes an active session.
	Leave
	// Change alters an active session's demand.
	Change
)

func (k Kind) String() string {
	switch k {
	case Join:
		return "join"
	case Leave:
		return "leave"
	case Change:
		return "change"
	default:
		return "unknown"
	}
}

// Event is one scheduled session action. Session indexes are caller-defined
// handles (e.g., indexes into a slice of sessions).
type Event struct {
	At      time.Duration
	Kind    Kind
	Session int
	Demand  rate.Rate // for Join and Change
}

// DemandFn draws a session demand. See Unbounded and MixedDemands.
type DemandFn func(r *rand.Rand) rate.Rate

// Unbounded always returns +∞ — greedy sessions.
func Unbounded(*rand.Rand) rate.Rate { return rate.Inf }

// MixedDemands returns +∞ with probability 1-p and otherwise a finite demand
// drawn uniformly from [lo, hi] Mbps — the paper allows sessions to cap
// their requested rate.
func MixedDemands(p float64, lo, hi int64) DemandFn {
	return func(r *rand.Rand) rate.Rate {
		if r.Float64() >= p {
			return rate.Inf
		}
		return rate.Mbps(lo + r.Int63n(hi-lo+1))
	}
}

// Joins schedules n joins for sessions [firstIdx, firstIdx+n) at times drawn
// uniformly from [start, start+window), sorted by time.
func Joins(firstIdx, n int, start, window time.Duration, demand DemandFn, r *rand.Rand) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			At:      start + jitter(window, r),
			Kind:    Join,
			Session: firstIdx + i,
			Demand:  demand(r),
		}
	}
	sortEvents(evs)
	return evs
}

// Leaves schedules a leave for every listed session, uniformly inside the
// window.
func Leaves(sessions []int, start, window time.Duration, r *rand.Rand) []Event {
	evs := make([]Event, len(sessions))
	for i, s := range sessions {
		evs[i] = Event{At: start + jitter(window, r), Kind: Leave, Session: s}
	}
	sortEvents(evs)
	return evs
}

// Changes schedules a demand change for every listed session, uniformly
// inside the window.
func Changes(sessions []int, start, window time.Duration, demand DemandFn, r *rand.Rand) []Event {
	evs := make([]Event, len(sessions))
	for i, s := range sessions {
		evs[i] = Event{At: start + jitter(window, r), Kind: Change, Session: s, Demand: demand(r)}
	}
	sortEvents(evs)
	return evs
}

// Merge combines schedules into one, sorted by time (ties keep argument
// order).
func Merge(schedules ...[]Event) []Event {
	var out []Event
	for _, s := range schedules {
		out = append(out, s...)
	}
	sortEvents(out)
	return out
}

// Sample picks k distinct values from population (a permutation prefix),
// deterministically from r. It panics if k > len(population).
func Sample(population []int, k int, r *rand.Rand) []int {
	if k > len(population) {
		panic("trace: sample larger than population")
	}
	idx := r.Perm(len(population))[:k]
	out := make([]int, k)
	for i, j := range idx {
		out[i] = population[j]
	}
	sort.Ints(out)
	return out
}

func jitter(window time.Duration, r *rand.Rand) time.Duration {
	if window <= 0 {
		return 0
	}
	return time.Duration(r.Int63n(int64(window)))
}

func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
}
