// Package mc is the schedule-exploration harness: it model-checks the
// paper's quiescence theorem over event interleavings by driving the
// deterministic simulator under controlled nondeterminism.
//
// The determinism suites elsewhere in the repository pin exactly one
// (time, creator, creator-seq) total order per workload. The paper's claims
// — quiescence, max-min exactness, stale-message safety — are theorems over
// *all* schedules, and bugs like PR 4's stale rejoin hide precisely in the
// orders no fixed tie-break ever produces. This package installs a
// sim.Chooser on the classic engine and enumerates the cross-creator
// tie-breaks three ways:
//
//   - exhaustive DFS with depth/run bounds, for paper-sized topologies;
//   - the same DFS with sleep-set pruning over an independence relation
//     (events whose owning nodes are disjoint commute) and an optional
//     delay bound, for deeper timelines;
//   - seeded swarm randomization, optionally composed with a churn-timing
//     fuzzer that perturbs the scenario timeline, for larger rungs.
//
// Every explored run is checked against four invariants: quiescence within
// a structural bound (scenario.ErrQuiescenceOverrun), final rates byte-equal
// to the waterfill oracle with the incremental oracle's CrossCheck mirror
// (waterfill.ErrCrossCheck), no-stale-incarnation
// (network.ErrStaleIncarnation), and — on a sampled basis — the live
// runtime's Validate. A violating schedule serializes to a compact
// choice-trace file that cmd/mc replays deterministically and shrinks by
// delta-debugging.
package mc

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"bneck/internal/live"
	"bneck/internal/network"
	"bneck/internal/scenario"
	"bneck/internal/waterfill"
)

// InvariantKind classifies which invariant a schedule violated.
type InvariantKind int

const (
	// KindNone marks the zero Violation.
	KindNone InvariantKind = iota
	// KindQuiescence: an epoch was still busy past its structural bound.
	KindQuiescence
	// KindOracle: committed rates diverged from the waterfill oracle —
	// either a session/oracle mismatch or an incremental CrossCheck failure.
	KindOracle
	// KindStaleIncarnation: a departed session lifetime was observed active
	// (the PR 4 bug shape), on either transport.
	KindStaleIncarnation
	// KindExpectation: a scripted `expect` assertion failed after its epoch
	// quiesced (the PR 2 stranding edge surfaces here).
	KindExpectation
	// KindLive: the live runtime's Validate failed on a sampled live run.
	KindLive
	// KindPanic: the run panicked (protocol state corruption, e.g. a core
	// task hitting an impossible transition).
	KindPanic
)

func (k InvariantKind) String() string {
	switch k {
	case KindQuiescence:
		return "quiescence-bound"
	case KindOracle:
		return "oracle-exactness"
	case KindStaleIncarnation:
		return "stale-incarnation"
	case KindExpectation:
		return "expectation"
	case KindLive:
		return "live-validate"
	case KindPanic:
		return "panic"
	default:
		return "none"
	}
}

// Violation is one invariant failure together with the schedule that
// produced it.
type Violation struct {
	Kind InvariantKind
	// Err is the underlying failure (an *scenario.EpochError for simulator
	// runs; a reconstructed error for panics).
	Err error
	// Trace replays the violating schedule deterministically.
	Trace *Trace
}

func (v *Violation) Error() string {
	return fmt.Sprintf("mc: %s violation: %v", v.Kind, v.Err)
}

// Config tunes one exploration.
type Config struct {
	// Strategy is "dfs" or "swarm".
	Strategy string
	// MaxRuns bounds how many schedules the exploration executes (DFS may
	// exhaust the tree earlier). Zero means 1000.
	MaxRuns int
	// MaxDepth bounds choice points per run: beyond it the run continues in
	// default order without branching. Zero means unbounded.
	MaxDepth int
	// Prune enables sleep-set pruning (DFS only): schedules that differ only
	// by commuting independent events are explored once.
	Prune bool
	// DelayBound, when positive, bounds the total number of default-order
	// deferrals per run (DFS only): picking enabled candidate k costs k.
	DelayBound int
	// Seeds is the number of swarm seeds (swarm only). Zero means 100.
	Seeds int
	// Seed0 is the first swarm seed.
	Seed0 int64
	// Fuzz perturbs churn timings per swarm seed (swarm only): event
	// timestamps are redrawn on a coarse grid so fail/restore/join/leave
	// collide into racing epochs.
	Fuzz bool
	// LiveEvery runs the script on the live runtime every n-th explored
	// schedule (0 disables). The live transport has no virtual clock, so
	// these runs sample real concurrency rather than replaying the chosen
	// schedule.
	LiveEvery int
	// Stats receives progress output when non-nil.
	Log func(format string, args ...any)
}

// Result summarizes one exploration.
type Result struct {
	// Runs is the number of distinct schedules executed. Under DFS every
	// run's pick vector differs, so Runs counts distinct schedules.
	Runs int
	// ChoicePoints is the total number of consulted tie-breaks.
	ChoicePoints int
	// Pruned counts DFS siblings skipped by sleep sets or the delay bound.
	Pruned int
	// Exhausted reports that DFS ran out of unexplored schedules before
	// MaxRuns.
	Exhausted bool
	// LiveRuns is how many sampled live-transport runs executed.
	LiveRuns int
	// Violation is the first invariant failure, nil if none.
	Violation *Violation
}

// classify maps a run error to the invariant it violated. Sentinel matches
// come first; what remains is either a scripted assertion (`expect` in the
// message) or a network/link validation failure, which all trace back to the
// allocation not matching the oracle.
func classify(err error) InvariantKind {
	switch {
	case errors.Is(err, scenario.ErrQuiescenceOverrun):
		return KindQuiescence
	case errors.Is(err, network.ErrStaleIncarnation), errors.Is(err, live.ErrStaleIncarnation):
		return KindStaleIncarnation
	case errors.Is(err, waterfill.ErrCrossCheck):
		return KindOracle
	case strings.Contains(err.Error(), "expect"):
		return KindExpectation
	default:
		return KindOracle
	}
}

// Explore runs the configured strategy against the model and reports what it
// found. A nil Result.Violation means every explored schedule satisfied all
// invariants.
func Explore(m *Model, cfg Config) (*Result, error) {
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = 1000
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	switch cfg.Strategy {
	case "", "dfs", "delay":
		return exploreDFS(m, cfg)
	case "swarm":
		return exploreSwarm(m, cfg)
	default:
		return nil, fmt.Errorf("mc: unknown strategy %q (dfs, swarm)", cfg.Strategy)
	}
}

// timeBound is a helper for pretty-printing the model's deadline.
func timeBound(d time.Duration) string {
	if d <= 0 {
		return "disabled"
	}
	return d.String()
}
