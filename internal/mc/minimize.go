package mc

// Minimization is ddmin (Zeller's delta debugging) over the trace's
// deviations — the nonzero picks. A schedule is "the default order plus a
// set of deviations", so shrinking the deviation set while the violation
// still reproduces yields the smallest explanation of the failure: a trace
// a human can read as "these N tie-breaks, taken out of order, break the
// invariant". Reproduction means replaying the candidate trace yields a
// violation of the same kind; a different violation is a different bug and
// does not count.

// Minimize shrinks t against the model and returns the minimized trace and
// the number of replays spent. The input trace must reproduce a violation of
// kind `kind` (as Replay reports); if it does not, Minimize returns it
// unchanged.
func Minimize(m *Model, t *Trace, kind InvariantKind) (*Trace, int, error) {
	replays := 0
	reproduces := func(picks []int) (bool, error) {
		replays++
		v, err := Replay(m, &Trace{ScriptHash: t.ScriptHash, FuzzSeed: t.FuzzSeed, Picks: picks})
		if err != nil {
			return false, err
		}
		return v != nil && v.Kind == kind, nil
	}

	// Deviation positions in the pick vector.
	var devs []int
	for i, p := range t.Picks {
		if p != 0 {
			devs = append(devs, i)
		}
	}
	build := func(keep []int) []int {
		picks := make([]int, len(t.Picks))
		for _, i := range keep {
			picks[i] = t.Picks[i]
		}
		return picks
	}

	if ok, err := reproduces(build(devs)); err != nil {
		return nil, replays, err
	} else if !ok {
		return t, replays, nil
	}

	// Shortcut ddmin entirely when the default schedule already reproduces —
	// the deviations were never load-bearing.
	if ok, err := reproduces(build(nil)); err != nil {
		return nil, replays, err
	} else if ok {
		devs = nil
	}

	// ddmin proper: partition the deviations into n chunks and try dropping
	// one chunk at a time; on success restart with the smaller set.
	n := 2
	for len(devs) >= 2 && n <= len(devs) {
		shrunk := false
		chunk := (len(devs) + n - 1) / n
		for lo := 0; lo < len(devs); lo += chunk {
			hi := lo + chunk
			if hi > len(devs) {
				hi = len(devs)
			}
			complement := append(append([]int(nil), devs[:lo]...), devs[hi:]...)
			ok, err := reproduces(build(complement))
			if err != nil {
				return nil, replays, err
			}
			if ok {
				devs = complement
				n = max(n-1, 2)
				shrunk = true
				break
			}
		}
		if !shrunk {
			if n == len(devs) {
				break
			}
			n = min(2*n, len(devs))
		}
	}

	// ddmin's loop needs at least two deviations; finish 1-minimality by
	// testing the lone survivor directly.
	if len(devs) == 1 {
		ok, err := reproduces(build(nil))
		if err != nil {
			return nil, replays, err
		}
		if ok {
			devs = nil
		}
	}

	min := newTrace(m, build(devs))
	min.ScriptHash = t.ScriptHash
	min.FuzzSeed = t.FuzzSeed
	return min, replays, nil
}
