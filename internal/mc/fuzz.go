package mc

import (
	"fmt"
	"math/rand"
	"time"

	"bneck/internal/scenario"
)

// fuzzGrid is the timing grid the churn fuzzer snaps perturbed events to.
// A coarse grid makes timestamp collisions likely, which is the point:
// events that collide land in one epoch and their cascades race, and those
// racing epochs are where the quiescence and stale-incarnation invariants
// have historically broken.
const fuzzGrid = 5 * time.Millisecond

// fuzzAttempts bounds the redraw loop: a perturbation that reorders the
// timeline illegally (leave before join, double link failure) is discarded
// and redrawn, exactly like a rejected hand-written script.
const fuzzAttempts = 32

// Fuzz derives a model whose churn timings are perturbed deterministically
// from seed: every event after t=0 is jittered by up to two grid cells and
// snapped to the grid. The t=0 epoch is pinned so the workload's initial
// population is preserved. Scripted `expect` assertions are dropped — they
// are golden values for the original timeline, meaningless after
// perturbation — so fuzzed runs are judged purely by the schedule-independent
// invariants (quiescence bound, oracle exactness, stale incarnations,
// Validate).
func Fuzz(m *Model, seed int64) (*Model, error) {
	if seed == 0 {
		return nil, fmt.Errorf("mc: fuzz seed must be nonzero (zero marks an unfuzzed trace)")
	}
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; attempt < fuzzAttempts; attempt++ {
		// Re-parse for a deep copy: Script holds slices the runner must not
		// share between the base and perturbed timelines.
		sc, err := scenario.Parse(m.Source)
		if err != nil {
			return nil, err
		}
		events := sc.Events[:0]
		for _, ev := range sc.Events {
			switch ev.Op {
			case scenario.OpExpectRate, scenario.OpExpectMigrated,
				scenario.OpExpectStranded, scenario.OpExpectReoptimized:
				continue
			}
			if ev.At > 0 {
				jitter := time.Duration(rng.Intn(5)-2) * fuzzGrid
				at := ev.At + jitter
				at = (at / fuzzGrid) * fuzzGrid
				if at < fuzzGrid {
					at = fuzzGrid
				}
				ev.At = at
			}
			events = append(events, ev)
		}
		sc.Events = events
		if err := sc.Recheck(); err != nil {
			continue
		}
		return &Model{
			Script:   sc,
			Source:   m.Source,
			Hash:     m.Hash,
			Deadline: m.Deadline,
			FuzzSeed: seed,
		}, nil
	}
	return nil, fmt.Errorf("mc: fuzz seed %d: no valid perturbation in %d attempts", seed, fuzzAttempts)
}
