//go:build mc_stalebug

package mc

import (
	"testing"
)

// With the mc_stalebug test double compiled in (the PR 4 bug shape: rejoin
// reuses the departed incarnation), the committed trace must reproduce a
// stale-incarnation violation, and the explorer must find one unaided.
// CI runs this as `go test -tags mc_stalebug -run StaleBug ./internal/mc/`.
func TestStaleBugTraceReproduces(t *testing.T) {
	m, err := FromFile("testdata/stale_rejoin.bneck", 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTrace("testdata/stale_rejoin.trace")
	if err != nil {
		t.Fatal(err)
	}
	v, err := Replay(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("committed trace does not reproduce under the stale-rejoin double")
	}
	if v.Kind != KindStaleIncarnation {
		t.Fatalf("violation kind = %v, want %v (err: %v)", v.Kind, KindStaleIncarnation, v.Err)
	}
}

func TestStaleBugExplorerFindsIt(t *testing.T) {
	m, err := FromFile("testdata/stale_rejoin.bneck", 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(m, Config{Strategy: "dfs", MaxRuns: 500, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("explorer missed the stale rejoin in %d runs", res.Runs)
	}
	if res.Violation.Kind != KindStaleIncarnation {
		t.Fatalf("violation kind = %v, want %v (err: %v)",
			res.Violation.Kind, KindStaleIncarnation, res.Violation.Err)
	}
	min, _, err := Minimize(m, res.Violation.Trace, res.Violation.Kind)
	if err != nil {
		t.Fatal(err)
	}
	if min.Deviations() > res.Violation.Trace.Deviations() {
		t.Fatalf("minimization grew the trace: %d > %d deviations",
			min.Deviations(), res.Violation.Trace.Deviations())
	}
}
