package mc

import (
	"testing"
	"time"

	"bneck/internal/scenario"
)

const churnScript = `router r1
router r2
host h1 r1
host h2 r2
link r1 r2 100mbps 1ms
session s1 h1 h2
session s2 h1 h2
at 0ms join s1
at 0ms join s2 demand=30mbps
at 20ms fail r1 r2
at 40ms restore r1 r2
at 60ms leave s1
at 80ms join s1 demand=10mbps
at 100ms expect rate s1 10mbps
`

func TestFuzzDeterministicAndValid(t *testing.T) {
	m := mustModel(t, churnScript)
	a, err := Fuzz(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fuzz(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Script.Events) != len(b.Script.Events) {
		t.Fatal("fuzz is not deterministic in event count")
	}
	for i := range a.Script.Events {
		if a.Script.Events[i].At != b.Script.Events[i].At {
			t.Fatalf("fuzz is not deterministic: event %d at %v vs %v",
				i, a.Script.Events[i].At, b.Script.Events[i].At)
		}
	}
	if a.FuzzSeed != 3 || a.Hash != m.Hash {
		t.Fatalf("fuzzed model metadata wrong: seed=%d hash=%q", a.FuzzSeed, a.Hash)
	}
	// The perturbed timeline must still pass the static checks and run clean
	// in default order under the full invariant set.
	if err := a.Script.Recheck(); err != nil {
		t.Fatalf("fuzzed timeline fails recheck: %v", err)
	}
	if _, v := runOnce(a, &replayPicker{}); v != nil {
		t.Fatalf("fuzzed workload violated in default order: %v", v)
	}
}

func TestFuzzShape(t *testing.T) {
	m := mustModel(t, churnScript)
	f, err := Fuzz(m, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range f.Script.Events {
		switch ev.Op {
		case scenario.OpExpectRate, scenario.OpExpectMigrated,
			scenario.OpExpectStranded, scenario.OpExpectReoptimized:
			t.Fatalf("expect event survived fuzzing at %v", ev.At)
		}
		if ev.At == 0 {
			continue // the t=0 population epoch is pinned
		}
		if ev.At%fuzzGrid != 0 {
			t.Fatalf("event at %v not on the %v grid", ev.At, fuzzGrid)
		}
		if ev.At < fuzzGrid {
			t.Fatalf("perturbed event collapsed into the pinned epoch: %v", ev.At)
		}
	}
	// Some seed in a small range must actually move something — the fuzzer
	// would be useless if it always reproduced the base timeline. Compare
	// against the base script with expects dropped.
	var base []time.Duration
	for _, ev := range m.Script.Events {
		switch ev.Op {
		case scenario.OpExpectRate, scenario.OpExpectMigrated,
			scenario.OpExpectStranded, scenario.OpExpectReoptimized:
		default:
			base = append(base, ev.At)
		}
	}
	moved := false
	for seed := int64(1); seed <= 10 && !moved; seed++ {
		f, err := Fuzz(m, seed)
		if err != nil {
			t.Fatal(err)
		}
		for i, ev := range f.Script.Events {
			if ev.At != base[i] {
				moved = true
				break
			}
		}
	}
	if !moved {
		t.Fatal("no seed in 1..10 perturbed any timestamp")
	}
}

func TestFuzzRejectsZeroSeed(t *testing.T) {
	m := mustModel(t, churnScript)
	if _, err := Fuzz(m, 0); err == nil {
		t.Fatal("zero fuzz seed accepted")
	}
}

func TestFuzzKeepsDurationsSane(t *testing.T) {
	m := mustModel(t, churnScript)
	f, err := Fuzz(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	for _, ev := range f.Script.Events {
		if ev.At < last {
			t.Fatalf("timeline unsorted after fuzz: %v after %v", ev.At, last)
		}
		last = ev.At
	}
}
