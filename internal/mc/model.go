package mc

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"bneck/internal/scenario"
)

// DefaultBoundFactor is the slack multiplier on the structural quiescence
// bound. The paper bounds re-quiescence by O(sessions × hops) round-trips
// after the last scripted event; the factor absorbs transmission-time and
// queuing slack on top of pure propagation.
const DefaultBoundFactor = 8.0

// Model is a checkable workload: a parsed scenario plus the structural
// quiescence bound its epochs are held to.
type Model struct {
	Script *scenario.Script
	// Source is the script text; Hash identifies it in trace files.
	Source string
	Hash   string
	// Deadline is the per-epoch quiescence bound (0 disables the invariant).
	Deadline time.Duration
	// FuzzSeed, when nonzero, records that Script's timeline was perturbed
	// from the base script by the churn fuzzer with this seed — replay
	// re-derives the same perturbation.
	FuzzSeed int64
}

// FromScript parses src and derives the quiescence bound with the given
// slack factor (≤0 uses DefaultBoundFactor; NaN-free callers only).
func FromScript(src string, factor float64) (*Model, error) {
	sc, err := scenario.Parse(src)
	if err != nil {
		return nil, err
	}
	if factor <= 0 {
		factor = DefaultBoundFactor
	}
	m := &Model{
		Script:   sc,
		Source:   src,
		Hash:     hashSource(src),
		Deadline: quiescenceBound(sc, factor),
	}
	return m, nil
}

// FromFile is FromScript over a file.
func FromFile(path string, factor float64) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FromScript(string(data), factor)
}

func hashSource(src string) string {
	h := sha256.Sum256([]byte(src))
	return hex.EncodeToString(h[:8])
}

// quiescenceBound derives a per-epoch deadline from the script's structure:
// factor × sessions × hops × per-hop round-trip. Hand-built scripts measure
// their own declarations; generated topologies use the generator's hierarchy
// depth and per-tier delays. The bound is deliberately structural, not
// empirical: the invariant asserts the paper's O(sessions × hops) shape, and
// the factor only absorbs constant slack (transmission time, queueing).
func quiescenceBound(sc *scenario.Script, factor float64) time.Duration {
	sessions := len(sc.Sessions)
	if sessions == 0 {
		return 0
	}
	var hops int
	var maxDelay time.Duration
	switch sc.Topo.Kind {
	case scenario.TopoHand:
		// Worst path cannot exceed every router plus the two host links.
		hops = len(sc.Routers) + 2
		for _, l := range sc.Links {
			if l.Delay > maxDelay {
				maxDelay = l.Delay
			}
		}
		for _, h := range sc.Hosts {
			if h.Delay > maxDelay {
				maxDelay = h.Delay
			}
		}
	case scenario.TopoTransitStub:
		// Transit-stub paths: host, stub chain, transit chain, stub chain,
		// host — bounded by a dozen hops; WAN delays reach 10ms.
		hops = 12
		maxDelay = 10 * time.Millisecond
	case scenario.TopoInternet:
		// The internet ladder's hierarchy is edge→metro→core→metro→edge
		// plus host links; long-haul links are 10ms class.
		hops = 10
		maxDelay = 30 * time.Millisecond
	}
	if maxDelay <= 0 {
		maxDelay = time.Microsecond
	}
	perHop := 2 * maxDelay // request/response round trip per hop
	bound := time.Duration(factor * float64(sessions) * float64(hops) * float64(perHop))
	if floor := time.Millisecond; bound < floor {
		bound = floor
	}
	return bound
}

// Synthesize builds a session-churn workload over an internet-ladder rung:
// sessions between distinct generated hosts, all joining in a handful of
// colliding epochs, then `churn` rounds of same-epoch leave/rejoin/change
// races. The workload is emitted as scenario DSL text and parsed like any
// hand-written script, so traces, hashing and replay work identically.
// Deterministic in (rung, sessions, churn, seed).
func Synthesize(rung string, sessions, churn int, seed int64, factor float64) (*Model, error) {
	switch rung {
	case "paper", "metro", "global":
	default:
		return nil, fmt.Errorf("mc: unknown rung %q (paper, metro, global)", rung)
	}
	if sessions < 2 {
		sessions = 2
	}
	if churn < 0 {
		churn = 0
	}
	rng := rand.New(rand.NewSource(seed ^ 0x6d63))
	var b strings.Builder
	fmt.Fprintf(&b, "# synthesized by internal/mc: rung=%s sessions=%d churn=%d seed=%d\n", rung, sessions, churn, seed)
	fmt.Fprintf(&b, "topology internet %s seed=%d hosts=%d\n", rung, seed, 2*sessions)
	for i := 0; i < sessions; i++ {
		fmt.Fprintf(&b, "session s%d h%d h%d\n", i, 2*i, 2*i+1)
	}
	// All joins race in one epoch; demands are drawn so some sessions are
	// demand-limited and others fight for the shared tiers.
	for i := 0; i < sessions; i++ {
		fmt.Fprintf(&b, "at 0ms join s%d demand=%dmbps\n", i, 5+rng.Intn(120))
	}
	// Churn rounds: each round picks a few sessions and has them leave and
	// rejoin (or change demand) at the same timestamp, so the departures'
	// teardown cascades race the arrivals' probe cascades.
	joined := make([]bool, sessions)
	for i := range joined {
		joined[i] = true
	}
	at := 50 * time.Millisecond
	for r := 0; r < churn; r++ {
		k := 1 + rng.Intn(3)
		used := make(map[int]bool, k)
		for j := 0; j < k; j++ {
			i := rng.Intn(sessions)
			if used[i] {
				continue // one op per session per epoch keeps the timeline valid
			}
			used[i] = true
			ms := at.Milliseconds()
			switch {
			case joined[i] && rng.Intn(2) == 0:
				fmt.Fprintf(&b, "at %dms leave s%d\n", ms, i)
				joined[i] = false
			case joined[i]:
				fmt.Fprintf(&b, "at %dms change s%d demand=%dmbps\n", ms, i, 5+rng.Intn(120))
			default:
				fmt.Fprintf(&b, "at %dms join s%d demand=%dmbps\n", ms, i, 5+rng.Intn(120))
				joined[i] = true
			}
		}
		at += time.Duration(20+rng.Intn(40)) * time.Millisecond
	}
	return FromScript(b.String(), factor)
}
