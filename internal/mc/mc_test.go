package mc

import (
	"strings"
	"testing"
	"time"
)

// tinyScript is small enough for unpruned DFS to exhaust in well under a
// second: two sessions joining in one epoch over a shared bottleneck, then a
// racing change/leave epoch.
const tinyScript = `router r1
router r2
host h1 r1
host h2 r2
host h3 r1
link r1 r2 100mbps 1ms
session s1 h1 h2
session s2 h3 h2
at 0ms join s1
at 0ms join s2
at 10ms change s1 demand=10mbps
at 10ms leave s2
at 20ms expect rate s1 10mbps
`

// badExpectScript fails its expect assertion on every schedule.
const badExpectScript = `router r1
router r2
host h1 r1
host h2 r2
link r1 r2 100mbps 1ms
session s1 h1 h2
at 0ms join s1
at 10ms expect rate s1 1mbps
`

func mustModel(t *testing.T, src string) *Model {
	t.Helper()
	m, err := FromScript(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestQuiescenceBound(t *testing.T) {
	m := mustModel(t, tinyScript)
	if m.Deadline <= 0 {
		t.Fatalf("hand-built script derived no quiescence bound")
	}
	// The bound must scale with the session count: doubling sessions (same
	// topology) doubles the structural bound.
	doubled := tinyScript + "session s3 h1 h2\nsession s4 h3 h2\n"
	m2 := mustModel(t, doubled)
	if m2.Deadline != 2*m.Deadline {
		t.Fatalf("bound did not scale with sessions: %v vs %v", m.Deadline, m2.Deadline)
	}
	// Generated rungs use their tier delays, far above the hand script's.
	inet := mustModel(t, "topology internet paper seed=1 hosts=4\nsession s1 h0 h1\nat 0ms join s1\n")
	if inet.Deadline <= m.Deadline {
		t.Fatalf("internet bound %v not above hand-built %v", inet.Deadline, m.Deadline)
	}
}

func TestDFSExhaustsAndIsDeterministic(t *testing.T) {
	m := mustModel(t, tinyScript)
	run := func() *Result {
		res, err := Explore(m, Config{Strategy: "dfs", MaxRuns: 200000, MaxDepth: 6})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	if a.Violation != nil {
		t.Fatalf("unexpected violation: %v", a.Violation)
	}
	if !a.Exhausted {
		t.Fatalf("tiny tree not exhausted in %d runs", a.Runs)
	}
	if a.Runs < 2 {
		t.Fatalf("no branching explored: %d runs", a.Runs)
	}
	b := run()
	if *a != *b {
		t.Fatalf("exploration not deterministic: %+v vs %+v", a, b)
	}
}

func TestDFSPruningSound(t *testing.T) {
	m := mustModel(t, tinyScript)
	full, err := Explore(m, Config{Strategy: "dfs", MaxRuns: 200000, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Explore(m, Config{Strategy: "dfs", MaxRuns: 200000, MaxDepth: 6, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Violation != nil {
		t.Fatalf("pruned exploration violated: %v", pruned.Violation)
	}
	if !pruned.Exhausted {
		t.Fatal("pruned exploration did not exhaust")
	}
	if pruned.Runs > full.Runs {
		t.Fatalf("pruning added runs: %d > %d", pruned.Runs, full.Runs)
	}
	// The delay bound concentrates exploration near the default order.
	delayed, err := Explore(m, Config{Strategy: "delay", MaxRuns: 200000, MaxDepth: 6, DelayBound: 1})
	if err != nil {
		t.Fatal(err)
	}
	if delayed.Violation != nil {
		t.Fatalf("delay-bounded exploration violated: %v", delayed.Violation)
	}
	if delayed.Runs >= full.Runs {
		t.Fatalf("delay bound 1 did not shrink the tree: %d vs %d", delayed.Runs, full.Runs)
	}
}

func TestSwarm(t *testing.T) {
	m := mustModel(t, tinyScript)
	res, err := Explore(m, Config{Strategy: "swarm", Seeds: 25, Seed0: 1, MaxRuns: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("swarm violation: %v", res.Violation)
	}
	if res.Runs != 25 {
		t.Fatalf("swarm ran %d schedules, want 25", res.Runs)
	}
}

func TestViolationYieldsReplayableTrace(t *testing.T) {
	m := mustModel(t, badExpectScript)
	res, err := Explore(m, Config{Strategy: "dfs", MaxRuns: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("always-failing expectation not caught")
	}
	if res.Violation.Kind != KindExpectation {
		t.Fatalf("violation kind = %v, want %v", res.Violation.Kind, KindExpectation)
	}
	tr := res.Violation.Trace
	if tr == nil || tr.ScriptHash != m.Hash {
		t.Fatalf("violation trace missing or mishashed: %+v", tr)
	}
	v, err := Replay(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.Kind != KindExpectation {
		t.Fatalf("trace replay did not reproduce: %+v", v)
	}
}

func TestMinimize(t *testing.T) {
	m := mustModel(t, badExpectScript)
	// The expectation fails on every schedule, so every deviation in this
	// hand-inflated trace is noise ddmin must strip.
	fat := &Trace{ScriptHash: m.Hash, Picks: []int{1, 0, 1, 1, 0, 1}}
	min, replays, err := Minimize(m, fat, KindExpectation)
	if err != nil {
		t.Fatal(err)
	}
	if min.Deviations() != 0 {
		t.Fatalf("minimized trace keeps %d deviations: %v", min.Deviations(), min.Picks)
	}
	if replays == 0 {
		t.Fatal("minimization did not replay anything")
	}
	// A trace that does not reproduce the requested kind is returned as-is.
	same, _, err := Minimize(m, fat, KindQuiescence)
	if err != nil {
		t.Fatal(err)
	}
	if same != fat {
		t.Fatal("non-reproducing trace was not returned unchanged")
	}
}

func TestSynthesize(t *testing.T) {
	a, err := Synthesize("paper", 3, 4, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize("paper", 3, 4, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source != b.Source || a.Hash != b.Hash {
		t.Fatal("synthesis is not deterministic")
	}
	c, err := Synthesize("paper", 3, 4, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Source == a.Source {
		t.Fatal("different seeds produced identical workloads")
	}
	if !strings.Contains(a.Source, "topology internet paper") {
		t.Fatalf("synthesized source lacks topology line:\n%s", a.Source)
	}
	if _, err := Synthesize("warp", 3, 4, 7, 0); err == nil {
		t.Fatal("unknown rung accepted")
	}
	// The synthesized workload must actually run clean in default order.
	if picks, v := runOnce(a, &replayPicker{}); v != nil {
		t.Fatalf("synthesized workload violated in default order (%d picks): %v", len(picks), v)
	}
}

// TestPaperExhaustive is the ISSUE's headline acceptance check: bounded DFS
// on the paper-sized topology explores at least 10k distinct schedules with
// every invariant holding. ~seconds of runtime, so -short skips it; `make
// mc-smoke` and CI run it in full.
func TestPaperExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive paper exploration skipped in -short")
	}
	m, err := FromFile("testdata/paper.bneck", 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(m, Config{
		Strategy:  "dfs",
		MaxRuns:   15000,
		MaxDepth:  12,
		LiveEvery: 5000, // sample the live-runtime Validate invariant too
		Log:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("invariant violated on schedule %v: %v", res.Violation.Trace.Picks, res.Violation)
	}
	if res.Runs < 10000 {
		t.Fatalf("explored %d distinct schedules, want >= 10000 (exhausted=%v)", res.Runs, res.Exhausted)
	}
	if res.ChoicePoints <= res.Runs {
		t.Fatalf("suspiciously few choice points: %d over %d runs", res.ChoicePoints, res.Runs)
	}
	t.Logf("paper: %d runs, %d choice points, exhausted=%v, bound=%v",
		res.Runs, res.ChoicePoints, res.Exhausted, timeBound(m.Deadline))
}

// TestPaperQuiescenceBoundTrips pins that the quiescence invariant is armed:
// an absurdly tight bound must trip on the very first schedule.
func TestPaperQuiescenceBoundTrips(t *testing.T) {
	m, err := FromFile("testdata/paper.bneck", 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Deadline = time.Nanosecond
	res, err := Explore(m, Config{Strategy: "dfs", MaxRuns: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || res.Violation.Kind != KindQuiescence {
		t.Fatalf("nanosecond bound did not trip quiescence invariant: %+v", res.Violation)
	}
}
