package mc

import (
	"bneck/internal/sim"
)

// The DFS explorer is stateless model checking by re-execution: each run
// replays a prefix of picks recorded on the exploration stack, then extends
// with default picks, creating one stack frame per newly met tie-break.
// Between runs it backtracks to the deepest frame with an unexplored
// sibling. Because the engine is deterministic between choice points, the
// stack's pick vector uniquely identifies a schedule, so the number of
// completed runs equals the number of distinct schedules explored.
//
// Pruning is Godefroid-style sleep sets over an independence relation
// tailored to the engine's keying: two enabled events commute when their
// owning (executing) nodes are distinct — they touch disjoint task state,
// and per-creator FIFO already forbids reordering same-creator events, so
// the only schedules sleep sets discard are those provably equal to an
// explored one up to commuting adjacent steps. External events (owner
// ExtCreator: scripted churn, watchdogs) are dependent with everything —
// they mutate global network state.
//
// The optional delay bound (Emmi et al.'s delay-bounded scheduling) charges
// picking candidate k a cost of k — the number of default-order events
// deferred — and abandons branches whose cumulative cost exceeds the
// budget, concentrating exploration near the default schedule where a
// counterexample, if any, is shortest.

// dfsFrame is one tie-break on the exploration stack.
type dfsFrame struct {
	cands []sim.Choice // the enabled set, sorted by creator
	// inherited sleep set: events (from ancestor frames) whose exploration
	// already covers any schedule that runs them before this frame's pick.
	inherited []sim.Choice
	// done[i]: candidate i's subtree is fully explored at this frame.
	done []bool
	// cur is the candidate currently being explored.
	cur int
	// cost is the delay budget consumed by ancestors plus cur at this frame.
	cost int
}

// independent reports whether two same-time events commute: distinct owning
// nodes, neither external. Daemon events are engine machinery (watchdogs,
// measurement ticks) and stay dependent with everything.
func independent(a, b sim.Choice) bool {
	if a.Daemon || b.Daemon {
		return false
	}
	if a.Owner == sim.ExtCreator || b.Owner == sim.ExtCreator {
		return false
	}
	return a.Owner != b.Owner
}

// sameEvent matches an event across runs by its engine key. Keys are unique
// within a run and stable across runs sharing the pick prefix.
func sameEvent(a, b sim.Choice) bool {
	return a.At == b.At && a.Src == b.Src && a.Seq == b.Seq
}

// asleep reports whether candidate c is covered by the frame's sleep set.
func (f *dfsFrame) asleep(i int) bool {
	if f.done[i] {
		return true
	}
	for _, s := range f.inherited {
		if sameEvent(s, f.cands[i]) {
			return true
		}
	}
	return false
}

// dfsPicker drives one run: replay the stack prefix, then extend.
type dfsPicker struct {
	e       *dfsExplorer
	stack   []*dfsFrame
	replay  int // frames to replay from the previous stack
	pruned  int
	maxed   bool // hit MaxDepth this run
	choices int
}

func (p *dfsPicker) pick(depth int, cands []sim.Choice) int {
	p.choices++
	if depth < p.replay {
		return p.stack[depth].cur
	}
	if p.e.cfg.MaxDepth > 0 && depth >= p.e.cfg.MaxDepth {
		p.maxed = true
		return 0
	}
	// New frame: inherit the sleep set from the frame above (filtered by its
	// chosen event), pick the first non-slept candidate within budget.
	f := &dfsFrame{
		cands: append([]sim.Choice(nil), cands...),
		done:  make([]bool, len(cands)),
	}
	if depth > 0 {
		parent := p.stack[depth-1]
		chosen := parent.cands[parent.cur]
		if p.e.cfg.Prune {
			for _, s := range parent.sleepSet() {
				if independent(s, chosen) {
					f.inherited = append(f.inherited, s)
				}
			}
		}
		f.cost = parent.cost
	}
	f.cur = p.firstChoice(f)
	p.stack = append(p.stack, f)
	return f.cur
}

// sleepSet materializes the frame's effective sleep set: inherited entries
// plus every fully explored candidate.
func (f *dfsFrame) sleepSet() []sim.Choice {
	out := append([]sim.Choice(nil), f.inherited...)
	for i, d := range f.done {
		if d {
			out = append(out, f.cands[i])
		}
	}
	return out
}

// firstChoice picks the frame's first candidate: the lowest index not
// covered by the inherited sleep set and within the delay budget. If every
// candidate is slept (possible — sleep sets may cover the whole enabled
// set), index 0 is taken without counting it as new coverage; the schedule
// below is a re-exploration but soundness is preserved.
func (p *dfsPicker) firstChoice(f *dfsFrame) int {
	for i := range f.cands {
		if f.asleep(i) {
			continue
		}
		if !p.withinBudget(f, i) {
			continue
		}
		return i
	}
	return 0
}

// withinBudget checks the delay bound for picking candidate i at frame f.
func (p *dfsPicker) withinBudget(f *dfsFrame, i int) bool {
	if p.e.cfg.DelayBound <= 0 {
		return true
	}
	base := f.cost - f.cur // ancestors' cost (cost includes cur's own index)
	return base+i <= p.e.cfg.DelayBound
}

type dfsExplorer struct {
	m   *Model
	cfg Config
}

// exploreDFS enumerates schedules depth-first until a violation, MaxRuns, or
// exhaustion.
func exploreDFS(m *Model, cfg Config) (*Result, error) {
	e := &dfsExplorer{m: m, cfg: cfg}
	res := &Result{}
	var stack []*dfsFrame
	anyMaxed := false
	for res.Runs < cfg.MaxRuns {
		p := &dfsPicker{e: e, stack: stack, replay: len(stack)}
		picks, v := runOnce(m, p)
		res.Runs++
		res.ChoicePoints += p.choices
		res.Pruned += p.pruned
		anyMaxed = anyMaxed || p.maxed
		stack = p.stack
		if v != nil {
			res.Violation = v
			return res, nil
		}
		_ = picks
		if cfg.LiveEvery > 0 && res.Runs%cfg.LiveEvery == 0 {
			res.LiveRuns++
			if lv := runLive(m, picks); lv != nil {
				res.Violation = lv
				return res, nil
			}
		}
		// Backtrack: finish cur at the deepest frame, advance to its next
		// explorable sibling, popping exhausted frames.
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			top.done[top.cur] = true
			if nxt := e.nextSibling(top, &res.Pruned); nxt >= 0 {
				top.cost += nxt - top.cur
				top.cur = nxt
				break
			}
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			// Tree exhausted. If MaxDepth truncated any run, deeper
			// schedules exist that we did not visit.
			res.Exhausted = !anyMaxed
			break
		}
		if res.Runs%1000 == 0 {
			cfg.Log("mc: dfs %d runs, depth %d, %d choice points, %d pruned",
				res.Runs, len(stack), res.ChoicePoints, res.Pruned)
		}
	}
	return res, nil
}

// nextSibling finds the next unexplored candidate index after f.cur, honoring
// the sleep set and delay budget, counting skips as pruned.
func (e *dfsExplorer) nextSibling(f *dfsFrame, pruned *int) int {
	base := f.cost - f.cur
	for i := f.cur + 1; i < len(f.cands); i++ {
		if f.asleep(i) {
			*pruned++
			continue
		}
		if e.cfg.DelayBound > 0 && base+i > e.cfg.DelayBound {
			*pruned++
			continue
		}
		return i
	}
	return -1
}
