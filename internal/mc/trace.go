package mc

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bneck/internal/sim"
)

// Trace is a serialized schedule: the pick made at every consulted
// tie-break, plus enough metadata to rebuild the exact workload. Replaying
// the picks on the same script reproduces the schedule byte for byte — the
// engine is deterministic between choice points, and a pick of 0 (or a pick
// past the end of the vector) is the engine's default order.
type Trace struct {
	// ScriptHash identifies the script the picks apply to (sha256 prefix of
	// the source text).
	ScriptHash string
	// FuzzSeed, when nonzero, says the script's timeline must first be
	// perturbed by the churn fuzzer with this seed.
	FuzzSeed int64
	// Picks is the choice vector; entry i is the candidate index taken at
	// the i-th consulted tie-break.
	Picks []int
}

func newTrace(m *Model, picks []int) *Trace {
	t := &Trace{ScriptHash: m.Hash, FuzzSeed: m.FuzzSeed, Picks: append([]int(nil), picks...)}
	// Trailing zeros are the default order; dropping them keeps committed
	// traces minimal without changing the replayed schedule.
	for len(t.Picks) > 0 && t.Picks[len(t.Picks)-1] == 0 {
		t.Picks = t.Picks[:len(t.Picks)-1]
	}
	return t
}

// Deviations counts nonzero picks — the schedule's distance from the
// default order, and the quantity minimization shrinks.
func (t *Trace) Deviations() int {
	n := 0
	for _, p := range t.Picks {
		if p != 0 {
			n++
		}
	}
	return n
}

// Format renders the trace file:
//
//	bneck-mc trace v1
//	script <hash>
//	fuzz <seed>        # only for fuzzed timelines
//	picks 0 0 2 1 3
func (t *Trace) Format() string {
	var b strings.Builder
	b.WriteString("bneck-mc trace v1\n")
	fmt.Fprintf(&b, "script %s\n", t.ScriptHash)
	if t.FuzzSeed != 0 {
		fmt.Fprintf(&b, "fuzz %d\n", t.FuzzSeed)
	}
	b.WriteString("picks")
	for _, p := range t.Picks {
		fmt.Fprintf(&b, " %d", p)
	}
	b.WriteString("\n")
	return b.String()
}

// WriteFile writes the trace to path.
func (t *Trace) WriteFile(path string) error {
	return os.WriteFile(path, []byte(t.Format()), 0o644)
}

// ParseTrace reads the trace format produced by Format.
func ParseTrace(src string) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch {
		case lineNo == 1:
			if line != "bneck-mc trace v1" {
				return nil, fmt.Errorf("mc: not a trace file (bad header %q)", line)
			}
		case f[0] == "script" && len(f) == 2:
			t.ScriptHash = f[1]
		case f[0] == "fuzz" && len(f) == 2:
			seed, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("mc: trace line %d: bad fuzz seed %q", lineNo, f[1])
			}
			t.FuzzSeed = seed
		case f[0] == "picks":
			for _, s := range f[1:] {
				p, err := strconv.Atoi(s)
				if err != nil || p < 0 {
					return nil, fmt.Errorf("mc: trace line %d: bad pick %q", lineNo, s)
				}
				t.Picks = append(t.Picks, p)
			}
		default:
			return nil, fmt.Errorf("mc: trace line %d: unknown directive %q", lineNo, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.ScriptHash == "" {
		return nil, fmt.Errorf("mc: trace missing script hash")
	}
	return t, nil
}

// LoadTrace reads a trace file from disk.
func LoadTrace(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseTrace(string(data))
}

// replayPicker replays a pick vector, default order beyond its end.
type replayPicker struct{ picks []int }

func (r *replayPicker) pick(depth int, cands []sim.Choice) int {
	if depth < len(r.picks) {
		return r.picks[depth]
	}
	return 0
}

// Replay executes the trace's schedule against the model and returns the
// violation it reproduces (nil if the schedule satisfies every invariant —
// e.g. the bug the trace documents has been fixed). The model must match
// the trace: hash mismatches are an error, because the picks would select
// among different events.
func Replay(m *Model, t *Trace) (*Violation, error) {
	if m.Hash != t.ScriptHash {
		return nil, fmt.Errorf("mc: trace was recorded against script %s, model is %s", t.ScriptHash, m.Hash)
	}
	if t.FuzzSeed != 0 && m.FuzzSeed != t.FuzzSeed {
		return nil, fmt.Errorf("mc: trace needs fuzz seed %d applied to the model (have %d)", t.FuzzSeed, m.FuzzSeed)
	}
	_, v := runOnce(m, &replayPicker{picks: t.Picks})
	return v, nil
}
