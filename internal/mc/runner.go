package mc

import (
	"fmt"

	"bneck/internal/scenario"
	"bneck/internal/sim"
)

// picker is the strategy side of a run: it sees each consulted tie-break and
// returns the candidate index to execute.
type picker interface {
	pick(depth int, cands []sim.Choice) int
}

// recorder adapts a picker to sim.Chooser, recording the pick vector so a
// violating run can be serialized as a trace.
type recorder struct {
	p     picker
	picks []int
	depth int
}

func (r *recorder) Choose(now sim.Time, cands []sim.Choice) int {
	k := r.p.pick(r.depth, cands)
	if k < 0 || k >= len(cands) {
		k = 0
	}
	r.depth++
	r.picks = append(r.picks, k)
	return k
}

// runOnce executes one schedule of the model under the picker and checks the
// simulator-side invariants. It returns the recorded pick vector and, when
// an invariant failed, the classified violation (with its trace attached).
// Panics inside the run — protocol state corruption — are converted to
// KindPanic violations rather than unwinding the exploration.
func runOnce(m *Model, p picker) (picks []int, v *Violation) {
	rec := &recorder{p: p}
	defer func() {
		picks = rec.picks
		if e := recover(); e != nil {
			v = &Violation{
				Kind:  KindPanic,
				Err:   fmt.Errorf("run panicked: %v", e),
				Trace: newTrace(m, rec.picks),
			}
		}
	}()
	_, err := scenario.RunSimOpts(m.Script, scenario.SimOptions{
		Chooser:          rec,
		OracleCrossCheck: true,
		EpochDeadline:    m.Deadline,
	})
	if err != nil {
		return rec.picks, &Violation{Kind: classify(err), Err: err, Trace: newTrace(m, rec.picks)}
	}
	return rec.picks, nil
}

// runLive executes the model once on the live actor runtime (no chooser —
// the live transport's nondeterminism is real goroutine scheduling) and
// classifies any failure. The trace cannot replay a live schedule; it
// carries the pick vector of the simulator run that sampled it, purely as
// provenance.
func runLive(m *Model, simPicks []int) *Violation {
	if _, err := scenario.RunLive(m.Script); err != nil {
		return &Violation{Kind: liveKind(err), Err: err, Trace: newTrace(m, simPicks)}
	}
	return nil
}

func liveKind(err error) InvariantKind {
	if k := classify(err); k == KindStaleIncarnation || k == KindExpectation {
		return k
	}
	return KindLive
}
