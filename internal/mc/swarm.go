package mc

import (
	"math/rand"

	"bneck/internal/sim"
)

// randomPicker draws every tie-break uniformly from the enabled set. Each
// swarm seed owns one rng, so a run is reproducible from (script, fuzz seed,
// swarm seed) alone — though violating runs are still serialized as explicit
// pick vectors, which survive engine changes better than rng state.
type randomPicker struct{ rng *rand.Rand }

func (r *randomPicker) pick(depth int, cands []sim.Choice) int {
	return r.rng.Intn(len(cands))
}

// exploreSwarm runs one randomized schedule per seed. With cfg.Fuzz set, each
// seed also perturbs the script's churn timeline before running, so the swarm
// searches the product of (event orderings × churn timings).
func exploreSwarm(m *Model, cfg Config) (*Result, error) {
	seeds := cfg.Seeds
	if seeds <= 0 {
		seeds = 100
	}
	if seeds > cfg.MaxRuns {
		seeds = cfg.MaxRuns
	}
	res := &Result{}
	for i := 0; i < seeds; i++ {
		seed := cfg.Seed0 + int64(i)
		run := m
		if cfg.Fuzz {
			fm, err := Fuzz(m, seed)
			if err != nil {
				return nil, err
			}
			run = fm
		}
		p := &randomPicker{rng: rand.New(rand.NewSource(seed))}
		picks, v := runOnce(run, p)
		res.Runs++
		res.ChoicePoints += len(picks)
		if v != nil {
			res.Violation = v
			return res, nil
		}
		if cfg.LiveEvery > 0 && res.Runs%cfg.LiveEvery == 0 {
			res.LiveRuns++
			if lv := runLive(run, picks); lv != nil {
				res.Violation = lv
				return res, nil
			}
		}
		if res.Runs%50 == 0 {
			cfg.Log("mc: swarm %d/%d seeds, %d choice points", res.Runs, seeds, res.ChoicePoints)
		}
	}
	return res, nil
}
