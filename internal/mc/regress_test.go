package mc

import (
	"testing"
)

// The committed traces reproduce historical bugs only when the corresponding
// build-tag test double re-opens the hole (see internal/network/bugdouble_*).
// On the fixed code they must replay clean — these are the regression corpus
// entries the ISSUE calls for, run on every `go test`.
func TestRegressionCorpusReplaysClean(t *testing.T) {
	for _, tc := range []struct{ script, trace string }{
		{"testdata/stale_rejoin.bneck", "testdata/stale_rejoin.trace"},
		{"testdata/pr2_stranding.bneck", "testdata/pr2_stranding.trace"},
	} {
		m, err := FromFile(tc.script, 0)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := LoadTrace(tc.trace)
		if err != nil {
			t.Fatal(err)
		}
		v, err := Replay(m, tr)
		if err != nil {
			t.Fatal(err)
		}
		if v != nil {
			t.Errorf("%s: fixed code still violates: %v", tc.trace, v)
		}
	}
}
