//go:build mc_strandbug

package mc

import (
	"testing"
)

// With the mc_strandbug test double compiled in (the PR 2 edge: leaving a
// stranded session skips the unpark, so a later restore resurrects it), the
// committed trace must reproduce an expectation violation — the script's
// expects assert the departed session stays gone.
// CI runs this as `go test -tags mc_strandbug -run StrandBug ./internal/mc/`.
func TestStrandBugTraceReproduces(t *testing.T) {
	m, err := FromFile("testdata/pr2_stranding.bneck", 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTrace("testdata/pr2_stranding.trace")
	if err != nil {
		t.Fatal(err)
	}
	v, err := Replay(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("committed trace does not reproduce under the stranding double")
	}
	if v.Kind != KindExpectation {
		t.Fatalf("violation kind = %v, want %v (err: %v)", v.Kind, KindExpectation, v.Err)
	}
}

func TestStrandBugExplorerFindsIt(t *testing.T) {
	m, err := FromFile("testdata/pr2_stranding.bneck", 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(m, Config{Strategy: "dfs", MaxRuns: 500, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("explorer missed the stranding edge in %d runs", res.Runs)
	}
	if res.Violation.Kind != KindExpectation {
		t.Fatalf("violation kind = %v, want %v (err: %v)",
			res.Violation.Kind, KindExpectation, res.Violation.Err)
	}
}
