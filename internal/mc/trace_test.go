package mc

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	in := &Trace{ScriptHash: "00112233aabbccdd", FuzzSeed: 42, Picks: []int{0, 2, 0, 1}}
	out, err := ParseTrace(in.Format())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the trace:\n in %+v\nout %+v", in, out)
	}
	// Comments and blank lines are tolerated.
	commented := "bneck-mc trace v1\n# produced by a test\n\nscript feed\npicks 3\n"
	out, err = ParseTrace(commented)
	if err != nil {
		t.Fatal(err)
	}
	if out.ScriptHash != "feed" || len(out.Picks) != 1 || out.Picks[0] != 3 {
		t.Fatalf("commented trace misparsed: %+v", out)
	}
}

func TestTraceParseErrors(t *testing.T) {
	for _, src := range []string{
		"not a trace\n",
		"bneck-mc trace v1\npicks 1 2\n",            // missing script hash
		"bneck-mc trace v1\nscript ab\npicks -1\n",  // negative pick
		"bneck-mc trace v1\nscript ab\npicks one\n", // non-numeric pick
		"bneck-mc trace v1\nscript ab\nwarp 9\n",    // unknown directive
		"bneck-mc trace v1\nscript ab\nfuzz x\n",    // bad fuzz seed
	} {
		if _, err := ParseTrace(src); err == nil {
			t.Errorf("ParseTrace accepted %q", src)
		}
	}
}

func TestNewTraceStripsTrailingDefaults(t *testing.T) {
	m := mustModel(t, tinyScript)
	tr := newTrace(m, []int{0, 1, 0, 0, 0})
	if !reflect.DeepEqual(tr.Picks, []int{0, 1}) {
		t.Fatalf("trailing defaults kept: %v", tr.Picks)
	}
	if tr.Deviations() != 1 {
		t.Fatalf("Deviations = %d, want 1", tr.Deviations())
	}
	if tr.ScriptHash != m.Hash {
		t.Fatalf("trace hash %q, model hash %q", tr.ScriptHash, m.Hash)
	}
}

func TestReplayRejectsMismatches(t *testing.T) {
	m := mustModel(t, tinyScript)
	if _, err := Replay(m, &Trace{ScriptHash: "deadbeef"}); err == nil {
		t.Fatal("hash mismatch accepted")
	}
	if _, err := Replay(m, &Trace{ScriptHash: m.Hash, FuzzSeed: 9}); err == nil {
		t.Fatal("fuzz-seed mismatch accepted")
	}
}

func TestTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	in := &Trace{ScriptHash: "aa", Picks: []int{1, 2}}
	if err := in.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	out, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("file round trip changed the trace: %+v vs %+v", in, out)
	}
	if !strings.HasPrefix(in.Format(), "bneck-mc trace v1\n") {
		t.Fatalf("format lacks header: %q", in.Format())
	}
}
