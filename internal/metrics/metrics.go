// Package metrics collects the measurements the paper's evaluation reports:
// packet counts by type over time bins (Figure 6, Figure 8), and percentile
// summaries of relative rate errors (Figure 7).
package metrics

import (
	"sort"
	"time"

	"bneck/internal/core"
	"bneck/internal/graph"
)

// PacketStats counts protocol packets, total, by type, and by time bin.
type PacketStats struct {
	binSize time.Duration
	total   uint64
	byType  [core.NumPacketTypes]uint64
	bins    []Bin
}

// Bin is one time interval's packet counts.
type Bin struct {
	Start  time.Duration
	Total  uint64
	ByType [core.NumPacketTypes]uint64
}

// NewPacketStats returns a collector binning by binSize (≤ 0 disables
// binning).
func NewPacketStats(binSize time.Duration) *PacketStats {
	return &PacketStats{binSize: binSize}
}

// Record accounts one packet of type t crossing a link at virtual time at.
func (ps *PacketStats) Record(t core.PacketType, at time.Duration) {
	ps.total++
	ps.byType[t-1]++
	if ps.binSize <= 0 {
		return
	}
	idx := int(at / ps.binSize)
	for len(ps.bins) <= idx {
		ps.bins = append(ps.bins, Bin{Start: time.Duration(len(ps.bins)) * ps.binSize})
	}
	ps.bins[idx].Total++
	ps.bins[idx].ByType[t-1]++
}

// Merge folds another collector into ps: totals, per-type counts and
// aligned bins are summed. The sharded simulator keeps one collector per
// shard and merges them on demand; sums commute, so the merged view is
// independent of the shard count.
func (ps *PacketStats) Merge(other *PacketStats) {
	ps.total += other.total
	for i := range ps.byType {
		ps.byType[i] += other.byType[i]
	}
	for len(ps.bins) < len(other.bins) {
		ps.bins = append(ps.bins, Bin{Start: time.Duration(len(ps.bins)) * ps.binSize})
	}
	for i := range other.bins {
		ps.bins[i].Total += other.bins[i].Total
		for t := range ps.bins[i].ByType {
			ps.bins[i].ByType[t] += other.bins[i].ByType[t]
		}
	}
}

// LinkCount is one directed link's packet total. Both transports — the
// simulator and the live actor runtime — report per-link counters with
// these field names, so reports can be compared side by side.
type LinkCount struct {
	Link    graph.LinkID
	Packets uint64
}

// SessionCount is one session incarnation's packet total (packets sent
// across physical links on its behalf). Both transports report per-session
// counters with these field names; the counters are kept per shard (or per
// actor stripe) and merged on demand, like the link counters. They are the
// raw material for profiling migration cost: a reconfiguration's price is
// the Leave-cascade packets of the retired incarnation plus the Join-cascade
// packets of its successor.
type SessionCount struct {
	Session core.SessionID
	Packets uint64
}

// Total returns the number of packets recorded.
func (ps *PacketStats) Total() uint64 { return ps.total }

// ByType returns the count for one packet type.
func (ps *PacketStats) ByType(t core.PacketType) uint64 { return ps.byType[t-1] }

// Bins returns a copy of the per-interval counts.
func (ps *PacketStats) Bins() []Bin {
	return append([]Bin(nil), ps.bins...)
}

// Summary describes a sample distribution the way Figure 7 reports it:
// average, median, and the 10th/90th percentiles.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	P10    float64
	P90    float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of vals. It returns a zero Summary for an
// empty sample. vals is not modified.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		N:      len(sorted),
		Mean:   sum / float64(len(sorted)),
		Median: percentile(sorted, 0.50),
		P10:    percentile(sorted, 0.10),
		P90:    percentile(sorted, 0.90),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
	}
}

// percentile interpolates linearly between closest ranks; sorted must be
// ascending and non-empty.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Series accumulates (time, Summary) points, one per sample instant —
// Figure 7's x axis.
type Series struct {
	Points []SeriesPoint
}

// SeriesPoint is one sampled distribution.
type SeriesPoint struct {
	At      time.Duration
	Summary Summary
}

// Add appends a sample point.
func (s *Series) Add(at time.Duration, vals []float64) {
	s.Points = append(s.Points, SeriesPoint{At: at, Summary: Summarize(vals)})
}

// RelativeErrorPct is Figure 7's error measure: 100·(assigned−fair)/fair.
func RelativeErrorPct(assigned, fair float64) float64 {
	if fair == 0 {
		return 0
	}
	return 100 * (assigned - fair) / fair
}
