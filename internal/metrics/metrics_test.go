package metrics

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"bneck/internal/core"
)

func TestPacketStatsCounts(t *testing.T) {
	ps := NewPacketStats(5 * time.Millisecond)
	ps.Record(core.PktJoin, 1*time.Millisecond)
	ps.Record(core.PktJoin, 2*time.Millisecond)
	ps.Record(core.PktResponse, 6*time.Millisecond)
	ps.Record(core.PktLeave, 12*time.Millisecond)
	if ps.Total() != 4 {
		t.Fatalf("Total = %d", ps.Total())
	}
	if ps.ByType(core.PktJoin) != 2 {
		t.Fatalf("Join count = %d", ps.ByType(core.PktJoin))
	}
	bins := ps.Bins()
	if len(bins) != 3 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0].Total != 2 || bins[1].Total != 1 || bins[2].Total != 1 {
		t.Fatalf("bin totals = %d %d %d", bins[0].Total, bins[1].Total, bins[2].Total)
	}
	if bins[2].ByType[core.PktLeave-1] != 1 {
		t.Fatalf("leave not in third bin")
	}
	if bins[1].Start != 5*time.Millisecond {
		t.Fatalf("bin start = %v", bins[1].Start)
	}
}

func TestPacketStatsNoBinning(t *testing.T) {
	ps := NewPacketStats(0)
	ps.Record(core.PktProbe, time.Second)
	if ps.Total() != 1 || len(ps.Bins()) != 0 {
		t.Fatalf("unexpected binning")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.P10 != 7 || s.P90 != 7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	// 0..100: median 50, p10 10, p90 90.
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := Summarize(vals)
	if s.Median != 50 || s.P10 != 10 || s.P90 != 90 || s.Mean != 50 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Min != 0 || s.Max != 100 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Summarize(vals)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("input mutated: %v", vals)
	}
}

func TestPercentileMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 100; iter++ {
		n := 1 + r.Intn(50)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64() * 100
		}
		s := Summarize(vals)
		if !(s.P10 <= s.Median && s.Median <= s.P90) {
			t.Fatalf("percentiles not monotone: %+v", s)
		}
		if s.Min > s.P10 || s.Max < s.P90 {
			t.Fatalf("percentiles outside range: %+v", s)
		}
		if s.Mean < s.Min || s.Mean > s.Max {
			t.Fatalf("mean outside range: %+v", s)
		}
	}
}

func TestRelativeErrorPct(t *testing.T) {
	if got := RelativeErrorPct(110, 100); math.Abs(got-10) > 1e-12 {
		t.Fatalf("overshoot error = %v", got)
	}
	if got := RelativeErrorPct(90, 100); math.Abs(got+10) > 1e-12 {
		t.Fatalf("undershoot error = %v", got)
	}
	if got := RelativeErrorPct(5, 0); got != 0 {
		t.Fatalf("zero-fair error = %v", got)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(time.Millisecond, []float64{1, 2, 3})
	s.Add(2*time.Millisecond, []float64{4})
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[0].Summary.Median != 2 || s.Points[1].Summary.Mean != 4 {
		t.Fatalf("series summaries wrong: %+v", s.Points)
	}
}
