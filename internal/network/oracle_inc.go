// The incremental validation oracle: a waterfill.Incremental mirror of the
// active session population. Every churn and topology funnel — join, leave,
// demand change, capacity change, link fail/restore — feeds the mirror a
// delta as it executes (always in serial/barrier context, so the delta
// stream is deterministic at every shard count), and Oracle re-levels only
// the affected bottleneck component instead of re-solving the whole
// instance per validation epoch. Rates are byte-identical to the full
// solver's — max-min rates are unique and rate.Rate is canonical — so
// enabling the mirror changes validation cost, never validation outcome.

package network

import (
	"bneck/internal/core"
	"bneck/internal/graph"
	"bneck/internal/rate"
	"bneck/internal/waterfill"
)

// incOracle pairs the incremental solver with the translation tables from
// network identifiers to solver handles.
type incOracle struct {
	inc *waterfill.Incremental
	// linkOf maps LinkID → solver link handle, grown on demand; -1 until a
	// session's path (or a capacity/failure event on a known link) first
	// touches the link, so unused links of an internet-scale graph never
	// materialize in the solver.
	linkOf []int32
	// sessOf maps session ID → solver session handle while active; -1
	// otherwise. Dense like sessByID: Oracle walks it once per epoch.
	sessOf  []int32
	pathBuf []int
}

func newIncOracle(cfg Config) *incOracle {
	if !cfg.IncrementalOracle && !cfg.OracleCrossCheck {
		return nil
	}
	o := &incOracle{inc: waterfill.NewIncremental()}
	o.inc.CrossCheck = cfg.OracleCrossCheck
	if cfg.OracleFallbackPercent > 0 {
		o.inc.FallbackPercent = cfg.OracleFallbackPercent
	}
	return o
}

// handleFor returns the solver handle of a link, creating it at the link's
// current capacity on first use.
func (o *incOracle) handleFor(n *Network, l graph.LinkID) int {
	for len(o.linkOf) < n.g.NumLinks() {
		o.linkOf = append(o.linkOf, -1)
	}
	if o.linkOf[l] < 0 {
		o.linkOf[l] = int32(o.inc.AddLink(n.g.Link(l).Capacity))
	}
	return int(o.linkOf[l])
}

// known returns the solver handle of a link if it has one; links no session
// ever crossed have no solver state, and events on them need no delta.
func (o *incOracle) known(l graph.LinkID) (int, bool) {
	if int(l) >= len(o.linkOf) || o.linkOf[l] < 0 {
		return 0, false
	}
	return int(o.linkOf[l]), true
}

// oracleJoin mirrors a session activation. Runs in serial context (join is
// a global/barrier event), like every other delta hook.
func (n *Network) oracleJoin(s *Session, demand rate.Rate) {
	o := n.incOracle
	if o == nil {
		return
	}
	o.pathBuf = o.pathBuf[:0]
	for _, l := range s.Path {
		o.pathBuf = append(o.pathBuf, o.handleFor(n, l))
	}
	h := o.inc.SessionJoin(demand, o.pathBuf)
	for len(o.sessOf) <= int(s.ID) {
		o.sessOf = append(o.sessOf, -1)
	}
	o.sessOf[s.ID] = int32(h)
}

// oracleLeave mirrors a session departure (voluntary or topology-forced).
func (n *Network) oracleLeave(s *Session) {
	o := n.incOracle
	if o == nil {
		return
	}
	if int(s.ID) < len(o.sessOf) && o.sessOf[s.ID] >= 0 {
		o.inc.SessionLeave(int(o.sessOf[s.ID]))
		o.sessOf[s.ID] = -1
	}
}

// oracleChange mirrors a demand change: the same path rejoins under the new
// demand (a demand is a private virtual link in the solver, so a change is
// a leave/join pair on the solver side).
func (n *Network) oracleChange(s *Session, demand rate.Rate) {
	o := n.incOracle
	if o == nil {
		return
	}
	n.oracleLeave(s)
	n.oracleJoin(s, demand)
}

func (n *Network) oracleSetCapacity(l graph.LinkID, c rate.Rate) {
	o := n.incOracle
	if o == nil {
		return
	}
	if h, ok := o.known(l); ok {
		o.inc.SetCapacity(h, c)
	}
}

func (n *Network) oracleFail(l graph.LinkID) {
	o := n.incOracle
	if o == nil {
		return
	}
	if h, ok := o.known(l); ok {
		o.inc.FailLink(h)
	}
}

func (n *Network) oracleRestore(l graph.LinkID) {
	o := n.incOracle
	if o == nil {
		return
	}
	if h, ok := o.known(l); ok {
		o.inc.RestoreLink(h)
	}
}

// incrementalOracle is the delta-driven body of Oracle: flush the pending
// deltas (re-leveling the affected component) and read the rates off the
// solver state.
func (n *Network) incrementalOracle() (map[core.SessionID]rate.Rate, error) {
	o := n.incOracle
	if err := o.inc.Flush(); err != nil {
		return nil, err
	}
	out := make(map[core.SessionID]rate.Rate, o.inc.LiveSessions())
	for _, id := range n.order {
		s := n.sessByID[id]
		if !s.active {
			continue
		}
		out[id] = o.inc.Rate(int(o.sessOf[id]))
	}
	return out, nil
}

// OracleStats reports how the incremental oracle resolved its flushes; ok is
// false when the incremental oracle is disabled.
func (n *Network) OracleStats() (stats waterfill.IncrementalStats, ok bool) {
	if n.incOracle == nil {
		return waterfill.IncrementalStats{}, false
	}
	return n.incOracle.inc.Stats(), true
}
