package network

import (
	"math/rand"
	"testing"
	"time"

	"bneck/internal/graph"
	"bneck/internal/rate"
	"bneck/internal/sim"
	"bneck/internal/topology"
	"bneck/internal/trace"
)

// TestSoakMediumLAN runs a paper-like load (thousands of sessions with mixed
// demands and mid-run churn on the Medium topology) and validates the exact
// rates. Skipped with -short.
func TestSoakMediumLAN(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	const sessions = 4000
	topo, err := topology.Generate(topology.Medium, topology.LAN, 99)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	net := New(topo.Graph, eng, DefaultConfig())
	hosts := topo.AddHosts(2 * sessions)
	res := graph.NewResolver(topo.Graph, 512)
	rng := rand.New(rand.NewSource(5))
	demand := trace.MixedDemands(0.3, 1, 100)

	all := make([]*Session, sessions)
	for i := 0; i < sessions; i++ {
		src := hosts[i]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		p, err := res.HostPath(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		s, err := net.NewSession(src, dst, p)
		if err != nil {
			t.Fatal(err)
		}
		all[i] = s
		net.ScheduleJoin(s, time.Duration(rng.Int63n(int64(time.Millisecond))), demand(rng))
	}
	q1 := net.Run()
	if err := net.Validate(); err != nil {
		t.Fatalf("after joins: %v", err)
	}

	// Churn: 10% leave, 10% change, 5% fresh joins — all within 1 ms.
	start := eng.Now() + time.Millisecond
	for i := 0; i < sessions/10; i++ {
		net.ScheduleLeave(all[i], start+time.Duration(rng.Int63n(int64(time.Millisecond))))
	}
	for i := sessions / 10; i < sessions/5; i++ {
		net.ScheduleChange(all[i], start+time.Duration(rng.Int63n(int64(time.Millisecond))), demand(rng))
	}
	extra := topo.AddHosts(sessions / 5)
	for i := 0; i < sessions/20; i++ {
		src := extra[i]
		dst := hosts[rng.Intn(len(hosts))]
		p, err := res.HostPath(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		s, err := net.NewSession(src, dst, p)
		if err != nil {
			t.Fatal(err)
		}
		net.ScheduleJoin(s, start+time.Duration(rng.Int63n(int64(time.Millisecond))), rate.Inf)
	}
	q2 := net.Run()
	if err := net.Validate(); err != nil {
		t.Fatalf("after churn: %v", err)
	}
	t.Logf("soak: %d sessions, join quiescence %v, churn quiescence %v, %d packets",
		sessions, q1, q2-start, net.Stats().Total())

	// And the network stays completely silent afterwards.
	total := net.Stats().Total()
	eng.RunUntil(eng.Now() + time.Second)
	if net.Stats().Total() != total {
		t.Fatalf("traffic after quiescence")
	}
}
