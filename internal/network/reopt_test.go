package network

import (
	"testing"
	"time"

	"bneck/internal/graph"
	"bneck/internal/policy"
	"bneck/internal/rate"
	"bneck/internal/sim"
)

// diamond builds the canonical re-optimization topology: a direct r1–r2
// link (the shortest path) and an r1–r3–r2 detour, with one session
// ha → hb whose 3-link best path crosses the direct link.
//
//	ha — r1 ——————— r2 — hb
//	       \       /
//	        r3 ———
func diamond(direct, detour rate.Rate) (*graph.Graph, graph.LinkID, graph.NodeID, graph.NodeID) {
	g := graph.New()
	r1, r2, r3 := g.AddRouter("r1"), g.AddRouter("r2"), g.AddRouter("r3")
	ab, _ := g.Connect(r1, r2, direct, time.Microsecond)
	g.Connect(r1, r3, detour, time.Microsecond)
	g.Connect(r3, r2, detour, time.Microsecond)
	ha, hb := g.AddHost("ha"), g.AddHost("hb")
	g.Connect(ha, r1, rate.Mbps(100), time.Microsecond)
	g.Connect(hb, r2, rate.Mbps(100), time.Microsecond)
	return g, ab, ha, hb
}

func diamondNet(t *testing.T, cfg Config, shards int) (*Network, *Session, graph.LinkID) {
	t.Helper()
	g, ab, ha, hb := diamond(rate.Mbps(80), rate.Mbps(40))
	var net *Network
	if shards >= 1 {
		net = NewSharded(g, sim.NewSharded(shards), cfg)
	} else {
		net = New(g, sim.New(), cfg)
	}
	path, err := graph.NewResolver(g, 16).HostPath(ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	s, err := net.NewSession(ha, hb, path)
	if err != nil {
		t.Fatal(err)
	}
	return net, s, ab
}

// failRestoreCycle joins the session, fails and restores the direct link
// with quiescent epochs in between, and returns the session's final hop
// count.
func failRestoreCycle(t *testing.T, net *Network, s *Session, ab graph.LinkID) int {
	t.Helper()
	rev := net.g.Link(ab).Reverse
	net.ScheduleJoin(s, 0, rate.Inf)
	net.Run()
	if err := net.Validate(); err != nil {
		t.Fatalf("after join: %v", err)
	}
	if got := len(s.Current().Path); got != 3 {
		t.Fatalf("joined on %d hops, want 3", got)
	}
	net.ScheduleLinkFail(net.globalNow()+time.Millisecond, ab, rev)
	net.Run()
	if err := net.Validate(); err != nil {
		t.Fatalf("after fail: %v", err)
	}
	if got := len(s.Current().Path); got != 4 {
		t.Fatalf("migrated onto %d hops, want the 4-hop detour", got)
	}
	if net.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1", net.Migrations())
	}
	net.ScheduleLinkRestore(net.globalNow()+time.Millisecond, ab, rev)
	net.Run()
	if err := net.Validate(); err != nil {
		t.Fatalf("after restore: %v", err)
	}
	return len(s.Current().Path)
}

func TestPinnedKeepsDetourAfterRestore(t *testing.T) {
	net, s, ab := diamondNet(t, DefaultConfig(), 0)
	if got := failRestoreCycle(t, net, s, ab); got != 4 {
		t.Fatalf("pinned session moved to %d hops; must stay on the detour", got)
	}
	if net.Reoptimizations() != 0 {
		t.Fatalf("reoptimizations = %d under Pinned", net.Reoptimizations())
	}
	if r, _ := s.Rate(); !r.Equal(rate.Mbps(40)) {
		t.Fatalf("pinned rate = %v, want the 40 Mbps detour bottleneck", r)
	}
}

func TestReoptimizeOnRestoreReturnsToShortestPath(t *testing.T) {
	for _, shards := range []int{0, 1, 2} {
		cfg := DefaultConfig()
		cfg.PathPolicy = policy.Config{Kind: policy.ReoptimizeOnRestore}
		net, s, ab := diamondNet(t, cfg, shards)
		if got := failRestoreCycle(t, net, s, ab); got != 3 {
			t.Fatalf("shards=%d: session on %d hops after restore, want 3", shards, got)
		}
		if net.Reoptimizations() != 1 {
			t.Fatalf("shards=%d: reoptimizations = %d, want 1", shards, net.Reoptimizations())
		}
		if net.Migrations() != 1 {
			t.Fatalf("shards=%d: migrations = %d, want 1 (reoptimizations are separate)", shards, net.Migrations())
		}
		if r, _ := s.Rate(); !r.Equal(rate.Mbps(80)) {
			t.Fatalf("shards=%d: rate = %v, want the 80 Mbps direct bottleneck", shards, r)
		}
		if net.ReconfigPackets() == 0 {
			t.Fatalf("shards=%d: reconfiguration cost no packets", shards)
		}
	}
}

func TestStretchHysteresisKeepsShortDetour(t *testing.T) {
	// The detour is 4 hops vs a 3-hop best path: within a 1.5× stretch, so
	// the policy must leave it alone.
	cfg := DefaultConfig()
	cfg.PathPolicy = policy.Config{Kind: policy.ReoptimizeOnRestore, Stretch: 1.5}
	net, s, ab := diamondNet(t, cfg, 0)
	if got := failRestoreCycle(t, net, s, ab); got != 4 {
		t.Fatalf("session on %d hops; 4/3 is within stretch 1.5, must stay", got)
	}
	if net.Reoptimizations() != 0 {
		t.Fatalf("reoptimizations = %d, want 0 under hysteresis", net.Reoptimizations())
	}
}

func TestCapacityUpgradeBypassesHysteresis(t *testing.T) {
	// Same hysteresis as above, but after the restore the direct link's
	// capacity doubles: the upgrade signal waives the stretch and the
	// session migrates back.
	cfg := DefaultConfig()
	cfg.PathPolicy = policy.Config{Kind: policy.ReoptimizeOnRestore, Stretch: 1.5}
	net, s, ab := diamondNet(t, cfg, 0)
	if got := failRestoreCycle(t, net, s, ab); got != 4 {
		t.Fatalf("pre-upgrade: session on %d hops, want the kept detour", got)
	}
	rev := net.g.Link(ab).Reverse
	net.ScheduleSetCapacity(net.globalNow()+time.Millisecond, rate.Mbps(160), ab, rev)
	net.Run()
	if err := net.Validate(); err != nil {
		t.Fatalf("after upgrade: %v", err)
	}
	if got := len(s.Current().Path); got != 3 {
		t.Fatalf("post-upgrade: session on %d hops, want 3", got)
	}
	if net.Reoptimizations() != 1 {
		t.Fatalf("reoptimizations = %d, want 1", net.Reoptimizations())
	}
	// 100 Mbps host access is now the bottleneck on the upgraded path.
	if r, _ := s.Rate(); !r.Equal(rate.Mbps(100)) {
		t.Fatalf("rate = %v, want 100 Mbps", r)
	}
}

func TestCapacityIncreaseBelowThresholdDoesNotSweep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PathPolicy = policy.Config{Kind: policy.ReoptimizeOnRestore, Stretch: 1.5}
	net, s, ab := diamondNet(t, cfg, 0)
	failRestoreCycle(t, net, s, ab)
	rev := net.g.Link(ab).Reverse
	// +25% is below the default 2× threshold: no sweep, the detour stays.
	net.ScheduleSetCapacity(net.globalNow()+time.Millisecond, rate.Mbps(100), ab, rev)
	net.Run()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Current().Path); got != 4 {
		t.Fatalf("session on %d hops; sub-threshold upgrade must not migrate", got)
	}
	if net.Reoptimizations() != 0 {
		t.Fatalf("reoptimizations = %d, want 0", net.Reoptimizations())
	}
}

// TestReconfigPacketAccounting pins the migration-cost metric: the
// fail+restore cycle's reconfiguration packets are bounded by the total, the
// per-session counters merge across domains consistently, and a pure
// user-churn run costs zero reconfiguration packets.
func TestReconfigPacketAccounting(t *testing.T) {
	for _, shards := range []int{0, 2} {
		cfg := DefaultConfig()
		cfg.PathPolicy = policy.Config{Kind: policy.ReoptimizeOnRestore}
		net, s, ab := diamondNet(t, cfg, shards)
		failRestoreCycle(t, net, s, ab)
		total := net.Stats().Total()
		reconf := net.ReconfigPackets()
		if reconf == 0 || reconf >= total {
			t.Fatalf("shards=%d: reconfig packets %d out of bounds (total %d)", shards, reconf, total)
		}
		var perSession uint64
		for _, sc := range net.SessionPackets() {
			perSession += sc.Packets
		}
		if perSession != total {
			t.Fatalf("shards=%d: per-session packets sum to %d, stats total %d", shards, perSession, total)
		}
	}

	// User churn alone must not register as reconfiguration cost.
	net, s, _ := diamondNet(t, DefaultConfig(), 0)
	net.ScheduleJoin(s, 0, rate.Inf)
	net.ScheduleChange(s, 2*time.Millisecond, rate.Mbps(10))
	net.ScheduleLeave(s, 4*time.Millisecond)
	net.Run()
	if net.ReconfigPackets() != 0 {
		t.Fatalf("user churn counted %d reconfiguration packets", net.ReconfigPackets())
	}
}

// TestReconfigPacketsDeterministicAcrossEngines: the accounting itself is a
// determinism surface — classic and sharded runs must agree on the exact
// reconfiguration cost.
func TestReconfigPacketsDeterministicAcrossEngines(t *testing.T) {
	counts := make(map[int]uint64)
	for _, shards := range []int{0, 1, 2, 4} {
		cfg := DefaultConfig()
		cfg.PathPolicy = policy.Config{Kind: policy.ReoptimizeOnRestore}
		net, s, ab := diamondNet(t, cfg, shards)
		failRestoreCycle(t, net, s, ab)
		counts[shards] = net.ReconfigPackets()
	}
	for shards, got := range counts {
		if got != counts[0] {
			t.Fatalf("reconfig packets differ: classic %d, %d shards %d", counts[0], shards, got)
		}
	}
}
