package network

import (
	"testing"
	"time"

	"bneck/internal/core"
	"bneck/internal/graph"
	"bneck/internal/rate"
	"bneck/internal/sim"
)

func TestOnPacketTracer(t *testing.T) {
	g, ha, hb := buildLine(rate.Mbps(40))
	eng := sim.New()
	cfg := DefaultConfig()
	type traced struct {
		link graph.LinkID
		typ  core.PacketType
	}
	var events []traced
	cfg.OnPacket = func(link graph.LinkID, pkt core.Packet, at sim.Time) {
		events = append(events, traced{link, pkt.Type})
	}
	n := New(g, eng, cfg)
	res := graph.NewResolver(g, 8)
	path, _ := res.HostPath(ha, hb)
	s, _ := n.NewSession(ha, hb, path)
	n.ScheduleJoin(s, 0, rate.Mbps(10))
	n.Run()

	if uint64(len(events)) != n.Stats().Total() {
		t.Fatalf("tracer saw %d packets, stats counted %d", len(events), n.Stats().Total())
	}
	// A self-limited single session: Join downstream (3 links), Response
	// upstream (3), SetBottleneck downstream (3).
	wantTypes := map[core.PacketType]int{
		core.PktJoin: 3, core.PktResponse: 3, core.PktSetBottleneck: 3,
	}
	got := map[core.PacketType]int{}
	for _, e := range events {
		got[e.typ]++
	}
	for typ, want := range wantTypes {
		if got[typ] != want {
			t.Fatalf("tracer %v count = %d, want %d (all: %v)", typ, got[typ], want, got)
		}
	}
	// Join must cross the three forward links in order.
	var joinLinks []graph.LinkID
	for _, e := range events {
		if e.typ == core.PktJoin {
			joinLinks = append(joinLinks, e.link)
		}
	}
	for i, l := range path {
		if joinLinks[i] != l {
			t.Fatalf("join crossed %v, want path %v", joinLinks, path)
		}
	}
}

func TestSettlingTime(t *testing.T) {
	g, ha, hb := buildLine(rate.Mbps(40))
	eng := sim.New()
	n := New(g, eng, DefaultConfig())
	res := graph.NewResolver(g, 8)
	path, _ := res.HostPath(ha, hb)
	s, _ := n.NewSession(ha, hb, path)
	joinAt := 2 * time.Millisecond
	n.ScheduleJoin(s, joinAt, rate.Mbps(10))
	n.Run()
	if s.JoinedAt() != joinAt {
		t.Fatalf("JoinedAt = %v", s.JoinedAt())
	}
	st := s.SettlingTime()
	if st <= 0 || st > time.Millisecond {
		t.Fatalf("SettlingTime = %v (want one probe RTT on a 3-link LAN path)", st)
	}
}
