package network

import (
	"math/rand"
	"testing"
	"time"

	"bneck/internal/core"
	"bneck/internal/graph"
	"bneck/internal/rate"
	"bneck/internal/sim"
	"bneck/internal/topology"
)

// buildLine returns a host–r1–r2–host graph with the middle link capacity c.
func buildLine(c rate.Rate) (*graph.Graph, graph.NodeID, graph.NodeID) {
	g := graph.New()
	r1 := g.AddRouter("r1")
	r2 := g.AddRouter("r2")
	ha := g.AddHost("ha")
	hb := g.AddHost("hb")
	g.Connect(ha, r1, rate.Mbps(100), time.Microsecond)
	g.Connect(r1, r2, c, time.Microsecond)
	g.Connect(r2, hb, rate.Mbps(100), time.Microsecond)
	return g, ha, hb
}

func TestSingleSessionEndToEnd(t *testing.T) {
	g, ha, hb := buildLine(rate.Mbps(40))
	eng := sim.New()
	n := New(g, eng, DefaultConfig())
	res := graph.NewResolver(g, 8)
	path, err := res.HostPath(ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	s, err := n.NewSession(ha, hb, path)
	if err != nil {
		t.Fatal(err)
	}
	n.ScheduleJoin(s, 0, rate.Inf)
	q := n.Run()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Rate(); !got.Equal(rate.Mbps(40)) {
		t.Fatalf("rate = %v", got)
	}
	if q <= 0 {
		t.Fatalf("quiescence time = %v", q)
	}
	if n.Stats().Total() == 0 {
		t.Fatalf("no packets counted")
	}
}

func TestSessionsOnSharedAccessLink(t *testing.T) {
	// Two sessions from the same source host: the generalized access-link
	// handling (RouterLink on the host→router link) must split its 100 Mbps.
	g := graph.New()
	r1 := g.AddRouter("r1")
	r2 := g.AddRouter("r2")
	ha := g.AddHost("ha")
	hb := g.AddHost("hb")
	hc := g.AddHost("hc")
	g.Connect(ha, r1, rate.Mbps(100), time.Microsecond)
	g.Connect(r1, r2, rate.Mbps(500), time.Microsecond)
	g.Connect(r2, hb, rate.Mbps(100), time.Microsecond)
	g.Connect(r2, hc, rate.Mbps(100), time.Microsecond)
	eng := sim.New()
	n := New(g, eng, DefaultConfig())
	res := graph.NewResolver(g, 8)
	p1, _ := res.HostPath(ha, hb)
	p2, _ := res.HostPath(ha, hc)
	s1, _ := n.NewSession(ha, hb, p1)
	s2, _ := n.NewSession(ha, hc, p2)
	n.ScheduleJoin(s1, 0, rate.Inf)
	n.ScheduleJoin(s2, 0, rate.Inf)
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	want := rate.Mbps(50)
	if got, _ := s1.Rate(); !got.Equal(want) {
		t.Fatalf("s1 rate = %v, want %v", got, want)
	}
	if got, _ := s2.Rate(); !got.Equal(want) {
		t.Fatalf("s2 rate = %v, want %v", got, want)
	}
}

func TestDynamicsJoinLeaveChange(t *testing.T) {
	g, ha, hb := buildLine(rate.Mbps(60))
	// A second pair of hosts sharing the middle link.
	r1 := graph.NodeID(0)
	r2 := graph.NodeID(1)
	hc := g.AddHost("hc")
	hd := g.AddHost("hd")
	g.Connect(hc, r1, rate.Mbps(100), time.Microsecond)
	g.Connect(hd, r2, rate.Mbps(100), time.Microsecond)

	eng := sim.New()
	n := New(g, eng, DefaultConfig())
	res := graph.NewResolver(g, 8)
	p1, _ := res.HostPath(ha, hb)
	p2, _ := res.HostPath(hc, hd)
	s1, _ := n.NewSession(ha, hb, p1)
	s2, _ := n.NewSession(hc, hd, p2)

	n.ScheduleJoin(s1, 0, rate.Inf)
	n.ScheduleJoin(s2, 100*time.Microsecond, rate.Inf)
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatalf("after joins: %v", err)
	}
	if got, _ := s1.Rate(); !got.Equal(rate.Mbps(30)) {
		t.Fatalf("s1 rate = %v", got)
	}

	// s2 shrinks its demand; s1 should grow.
	n.ScheduleChange(s2, eng.Now()+time.Millisecond, rate.Mbps(10))
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatalf("after change: %v", err)
	}
	if got, _ := s1.Rate(); !got.Equal(rate.Mbps(50)) {
		t.Fatalf("s1 rate after change = %v", got)
	}

	// s2 leaves; s1 takes the whole middle link.
	n.ScheduleLeave(s2, eng.Now()+time.Millisecond)
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatalf("after leave: %v", err)
	}
	if got, _ := s1.Rate(); !got.Equal(rate.Mbps(60)) {
		t.Fatalf("s1 rate after leave = %v", got)
	}
}

func TestQuiescenceNoFurtherTraffic(t *testing.T) {
	g, ha, hb := buildLine(rate.Mbps(40))
	eng := sim.New()
	n := New(g, eng, DefaultConfig())
	res := graph.NewResolver(g, 8)
	path, _ := res.HostPath(ha, hb)
	s, _ := n.NewSession(ha, hb, path)
	n.ScheduleJoin(s, 0, rate.Inf)
	n.Run()
	count := n.Stats().Total()
	// Advance virtual time far beyond quiescence: not a single extra
	// protocol packet may appear.
	eng.RunUntil(eng.Now() + time.Second)
	if got := n.Stats().Total(); got != count {
		t.Fatalf("B-Neck generated %d packets after quiescence", got-count)
	}
}

func TestSmallTopologyManySessionsLAN(t *testing.T) {
	testTopologyConvergence(t, topology.LAN, 120, 40)
}

func TestSmallTopologyManySessionsWAN(t *testing.T) {
	testTopologyConvergence(t, topology.WAN, 120, 40)
}

func testTopologyConvergence(t *testing.T, scen topology.Scenario, hosts, sessions int) {
	t.Helper()
	topo, err := topology.Generate(topology.Small, scen, 42)
	if err != nil {
		t.Fatal(err)
	}
	topo.AddHosts(hosts)
	eng := sim.New()
	n := New(topo.Graph, eng, DefaultConfig())
	res := graph.NewResolver(topo.Graph, 128)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < sessions; i++ {
		src, dst := topo.RandomHostPair()
		path, err := res.HostPath(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		s, err := n.NewSession(src, dst, path)
		if err != nil {
			t.Fatal(err)
		}
		// Join within the first millisecond, as in Experiment 1.
		at := time.Duration(rng.Int63n(int64(time.Millisecond)))
		demand := rate.Inf
		if rng.Intn(4) == 0 {
			demand = rate.Mbps(int64(1 + rng.Intn(50)))
		}
		n.ScheduleJoin(s, at, demand)
	}
	q := n.Run()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	t.Logf("%v: %d sessions quiescent at %v after %d packets", scen, sessions, q, n.Stats().Total())
}

func TestValidateDetectsMissingRate(t *testing.T) {
	g, ha, hb := buildLine(rate.Mbps(40))
	eng := sim.New()
	n := New(g, eng, DefaultConfig())
	res := graph.NewResolver(g, 8)
	path, _ := res.HostPath(ha, hb)
	s, _ := n.NewSession(ha, hb, path)
	n.ScheduleJoin(s, 0, rate.Inf)
	// Do not run: validation must fail.
	eng.RunUntil(0)
	if err := n.Validate(); err == nil {
		t.Fatalf("Validate passed before convergence")
	}
}

func TestSnapshotAndLinkLoad(t *testing.T) {
	g, ha, hb := buildLine(rate.Mbps(40))
	eng := sim.New()
	n := New(g, eng, DefaultConfig())
	res := graph.NewResolver(g, 8)
	path, _ := res.HostPath(ha, hb)
	s, _ := n.NewSession(ha, hb, path)
	n.ScheduleJoin(s, 0, rate.Inf)
	n.Run()
	snap := n.SnapshotRates()
	if len(snap) != 1 || !snap[s.ID].Equal(rate.Mbps(40)) {
		t.Fatalf("snapshot = %v", snap)
	}
	load := n.LinkLoad()
	mid := path[1]
	if !load[mid].Equal(rate.Mbps(40)) {
		t.Fatalf("link load = %v", load[mid])
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (sim.Time, uint64, map[core.SessionID]rate.Rate) {
		topo, err := topology.Generate(topology.Small, topology.LAN, 5)
		if err != nil {
			t.Fatal(err)
		}
		topo.AddHosts(40)
		eng := sim.New()
		n := New(topo.Graph, eng, DefaultConfig())
		res := graph.NewResolver(topo.Graph, 64)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 30; i++ {
			src, dst := topo.RandomHostPair()
			path, err := res.HostPath(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			s, _ := n.NewSession(src, dst, path)
			n.ScheduleJoin(s, time.Duration(rng.Int63n(int64(time.Millisecond))), rate.Inf)
		}
		q := n.Run()
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
		rates := make(map[core.SessionID]rate.Rate)
		for _, s := range n.Sessions() {
			r, _ := s.Rate()
			rates[s.ID] = r
		}
		return q, n.Stats().Total(), rates
	}
	q1, p1, r1 := run()
	q2, p2, r2 := run()
	if q1 != q2 || p1 != p2 {
		t.Fatalf("nondeterministic run: (%v,%d) vs (%v,%d)", q1, p1, q2, p2)
	}
	for id, r := range r1 {
		if !r.Equal(r2[id]) {
			t.Fatalf("nondeterministic rate for session %d", id)
		}
	}
}
