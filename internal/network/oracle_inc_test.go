package network

import (
	"math/rand"
	"testing"
	"time"

	"bneck/internal/graph"
	"bneck/internal/rate"
	"bneck/internal/sim"
	"bneck/internal/topology"
	"bneck/internal/trace"
)

// incCfg returns a config with the incremental oracle on and, when check is
// set, the per-flush full-solve cross-check (the strongest equivalence
// assertion: any divergence from the full solver fails the flush).
func incCfg(check bool) Config {
	cfg := DefaultConfig()
	cfg.IncrementalOracle = true
	cfg.OracleCrossCheck = check
	// Small test topologies cascade past the default threshold trivially;
	// raise it so the tests exercise the delta path, not just the fall-back.
	cfg.OracleFallbackPercent = 400
	return cfg
}

// TestIncrementalOracleTopologyEvents drives every delta class — join,
// leave, capacity change, fail (with forced migration), restore — through
// the mirror on the diamond, cross-checking each flush against a full
// solve.
func TestIncrementalOracleTopologyEvents(t *testing.T) {
	g, ha, hb, top, _ := buildDiamond()
	eng := sim.New()
	n := New(g, eng, incCfg(true))
	path, err := n.resolver.HostPath(ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := n.NewSession(ha, hb, path)
	n.ScheduleJoin(s, 0, rate.Inf)
	s2, _ := n.NewSession(ha, hb, path)
	n.ScheduleJoin(s2, 0, rate.Mbps(5))
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatalf("after joins: %v", err)
	}

	n.ScheduleSetCapacity(eng.Now()+time.Millisecond, rate.Mbps(20), top[0][0], top[0][1])
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatalf("after capacity change: %v", err)
	}

	n.ScheduleLinkFail(eng.Now()+time.Millisecond, top[0][0], top[0][1])
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatalf("after failure: %v", err)
	}

	n.ScheduleChange(s2, eng.Now()+time.Millisecond, rate.Mbps(9))
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatalf("after demand change: %v", err)
	}

	n.ScheduleLinkRestore(eng.Now()+time.Millisecond, top[0][0], top[0][1])
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatalf("after restore: %v", err)
	}

	n.ScheduleLeave(s, eng.Now()+time.Millisecond)
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatalf("after leave: %v", err)
	}

	stats, ok := n.OracleStats()
	if !ok {
		t.Fatal("OracleStats reported the incremental oracle disabled")
	}
	if stats.FullSolves+stats.DeltaSolves == 0 {
		t.Fatal("oracle never solved anything")
	}
	t.Logf("oracle stats: %+v", stats)
}

// TestIncrementalOracleMatchesFull runs the same churning population on two
// networks — full-solve oracle and incremental mirror — and compares the
// oracle maps entry by entry after every quiescence.
func TestIncrementalOracleMatchesFull(t *testing.T) {
	build := func(cfg Config) (*Network, *sim.Engine, []*Session) {
		topo, err := topology.Generate(topology.Small, topology.LAN, 7)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.New()
		n := New(topo.Graph, eng, cfg)
		hosts := topo.AddHosts(120)
		res := graph.NewResolver(topo.Graph, 256)
		rng := rand.New(rand.NewSource(11))
		demand := trace.MixedDemands(0.3, 1, 100)
		sess := make([]*Session, 60)
		for i := range sess {
			src := hosts[i]
			dst := hosts[60+rng.Intn(60)]
			p, err := res.HostPath(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			s, err := n.NewSession(src, dst, p)
			if err != nil {
				t.Fatal(err)
			}
			sess[i] = s
			n.ScheduleJoin(s, time.Duration(rng.Int63n(int64(time.Millisecond))), demand(rng))
		}
		return n, eng, sess
	}

	nFull, engFull, sessFull := build(DefaultConfig())
	nInc, engInc, sessInc := build(incCfg(false))

	compare := func(stage string) {
		t.Helper()
		want, err := nFull.Oracle()
		if err != nil {
			t.Fatalf("%s: full oracle: %v", stage, err)
		}
		got, err := nInc.Oracle()
		if err != nil {
			t.Fatalf("%s: incremental oracle: %v", stage, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: oracle sizes differ: %d vs %d", stage, len(got), len(want))
		}
		for id, w := range want {
			if !got[id].Equal(w) {
				t.Fatalf("%s: session %d: incremental %v, full %v", stage, id, got[id], w)
			}
		}
		if err := nInc.Validate(); err != nil {
			t.Fatalf("%s: incremental validate: %v", stage, err)
		}
	}

	nFull.Run()
	nInc.Run()
	compare("after joins")

	churn := func(n *Network, eng *sim.Engine, sess []*Session) {
		rng := rand.New(rand.NewSource(23))
		demand := trace.MixedDemands(0.3, 1, 100)
		start := eng.Now() + time.Millisecond
		for i := 0; i < 15; i++ {
			n.ScheduleLeave(sess[i], start+time.Duration(rng.Int63n(int64(time.Millisecond))))
		}
		for i := 15; i < 30; i++ {
			n.ScheduleChange(sess[i], start+time.Duration(rng.Int63n(int64(time.Millisecond))), demand(rng))
		}
	}
	churn(nFull, engFull, sessFull)
	churn(nInc, engInc, sessInc)
	nFull.Run()
	nInc.Run()
	compare("after churn")

	stats, ok := nInc.OracleStats()
	if !ok || stats.DeltaSolves == 0 {
		t.Fatalf("incremental oracle did no delta solves: %+v (ok=%v)", stats, ok)
	}
}
