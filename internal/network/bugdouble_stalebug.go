//go:build mc_stalebug && !mc_strandbug

package network

// Test double: resurrect the PR 4 stale-rejoin bug (see bugdouble_off.go).
const (
	buggyRejoinReuse        = true
	buggyLeaveSkipsUnstrand = false
)
