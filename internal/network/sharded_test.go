package network_test

import (
	"math/rand"
	"testing"
	"time"

	"bneck/internal/core"
	"bneck/internal/graph"
	"bneck/internal/network"
	"bneck/internal/rate"
	"bneck/internal/sim"
	"bneck/internal/topology"
	"bneck/internal/trace"
)

// shardedRun captures everything observable about one run.
type shardedRun struct {
	quiescence time.Duration
	packets    uint64
	byType     []uint64
	rates      []string
	rateAts    []time.Duration
	migrated   uint64
	stranded   int
	links      int
}

// driveSharded places count sessions on a generated topology, mixes in some
// churn and (optionally) topology events, runs to quiescence on a sharded
// engine and returns the observable outcome.
func driveSharded(t *testing.T, shards int, size topology.Params, scen topology.Scenario, count int, dynamics bool) shardedRun {
	t.Helper()
	topo, err := topology.Generate(size, scen, 7)
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Graph
	she := sim.NewSharded(shards)
	net := network.NewSharded(g, she, network.DefaultConfig())

	hosts := topo.AddHosts(2 * count)
	res := graph.NewResolver(g, 64)
	rng := rand.New(rand.NewSource(11))
	sessions := make([]*network.Session, count)
	for i := range sessions {
		src := hosts[i]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		path, err := res.HostPath(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		s, err := net.NewSession(src, dst, path)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	demands := trace.MixedDemands(0.4, 1, 100)
	for _, ev := range trace.Joins(0, count, 0, time.Millisecond, demands, rng) {
		net.ScheduleJoin(sessions[ev.Session], ev.At, ev.Demand)
	}
	// A little churn on top.
	for i := 0; i < count/4; i++ {
		net.ScheduleLeave(sessions[i], 2*time.Millisecond+time.Duration(i)*37*time.Microsecond)
	}
	for i := count / 4; i < count/2; i++ {
		net.ScheduleChange(sessions[i], 3*time.Millisecond+time.Duration(i)*53*time.Microsecond, rate.Mbps(int64(1+i%40)))
	}
	if dynamics {
		// Fail a router link in use, then restore it; reconfigure another.
		var target graph.LinkID = graph.NoLink
		for _, s := range sessions {
			p := s.Path
			if len(p) >= 3 {
				target = p[1]
				break
			}
		}
		if target != graph.NoLink {
			rev := g.Link(target).Reverse
			net.ScheduleLinkFail(4*time.Millisecond, target, rev)
			net.ScheduleLinkRestore(30*time.Millisecond, target, rev)
		}
	}

	q := net.Run()
	if err := net.Validate(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	out := shardedRun{
		quiescence: q,
		packets:    net.Stats().Total(),
		migrated:   net.Migrations(),
		stranded:   net.StrandedSessions(),
		links:      len(net.LinkPackets()),
	}
	for pt := 1; pt <= core.NumPacketTypes; pt++ {
		out.byType = append(out.byType, net.Stats().ByType(core.PacketType(pt)))
	}
	for _, s := range sessions {
		if r, ok := s.Rate(); ok && s.Active() {
			out.rates = append(out.rates, r.String())
		} else {
			out.rates = append(out.rates, "-")
		}
		out.rateAts = append(out.rateAts, s.RateTime())
	}
	return out
}

// TestShardedDeterministicAcrossShardCounts is the network-level core of the
// tentpole guarantee: the complete observable outcome — quiescence instant,
// per-type packet counts, every session's rate and its rate-notification
// time — is identical for 1, 2, 4 and 8 shards, with churn and topology
// events in the mix.
func TestShardedDeterministicAcrossShardCounts(t *testing.T) {
	for _, scen := range []topology.Scenario{topology.WAN, topology.LAN} {
		base := driveSharded(t, 1, topology.Small, scen, 48, true)
		for _, shards := range []int{2, 4, 8} {
			got := driveSharded(t, shards, topology.Small, scen, 48, true)
			if got.quiescence != base.quiescence {
				t.Errorf("%v shards=%d: quiescence %v, want %v", scen, shards, got.quiescence, base.quiescence)
			}
			if got.packets != base.packets {
				t.Errorf("%v shards=%d: packets %d, want %d", scen, shards, got.packets, base.packets)
			}
			for i := range base.byType {
				if got.byType[i] != base.byType[i] {
					t.Errorf("%v shards=%d: type %d count %d, want %d", scen, shards, i+1, got.byType[i], base.byType[i])
				}
			}
			for i := range base.rates {
				if got.rates[i] != base.rates[i] || got.rateAts[i] != base.rateAts[i] {
					t.Errorf("%v shards=%d: session %d rate %s@%v, want %s@%v",
						scen, shards, i, got.rates[i], got.rateAts[i], base.rates[i], base.rateAts[i])
				}
			}
			if got.migrated != base.migrated || got.stranded != base.stranded || got.links != base.links {
				t.Errorf("%v shards=%d: migrated/stranded/links %d/%d/%d, want %d/%d/%d",
					scen, shards, got.migrated, got.stranded, got.links, base.migrated, base.stranded, base.links)
			}
		}
	}
}

// TestShardedOracleAgreement: the sharded run converges to the same rates as
// a classic serial-engine run of the same workload (both oracle-validated,
// so transitively equal; this asserts it directly as well).
func TestShardedOracleAgreement(t *testing.T) {
	topo, err := topology.Generate(topology.Small, topology.WAN, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Graph
	she := sim.NewSharded(4)
	net := network.NewSharded(g, she, network.DefaultConfig())
	hosts := topo.AddHosts(12)
	res := graph.NewResolver(g, 64)
	var sessions []*network.Session
	for i := 0; i < 6; i++ {
		path, err := res.HostPath(hosts[i], hosts[6+i])
		if err != nil {
			t.Fatal(err)
		}
		s, err := net.NewSession(hosts[i], hosts[6+i], path)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
		net.ScheduleJoin(s, time.Duration(i)*100*time.Microsecond, rate.Inf)
	}
	net.Run()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	oracle, err := net.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sessions {
		r, ok := s.Rate()
		if !ok {
			t.Fatalf("session %d has no rate", s.ID)
		}
		if !r.Equal(oracle[s.Current().ID]) {
			t.Fatalf("session %d rate %v, oracle %v", s.ID, r, oracle[s.Current().ID])
		}
	}
}

// TestShardedLookaheadIncludesTransmissionFloor: on a LAN topology (uniform
// 1 µs propagation) the conservative window must be wider than raw
// propagation by the cut links' serialization floor (512-bit control
// packets over the link capacity) — the lever that makes LAN sharding
// profitable. With serialization disabled, the window falls back to raw
// propagation.
func TestShardedLookaheadIncludesTransmissionFloor(t *testing.T) {
	run := func(cfg network.Config) time.Duration {
		topo, err := topology.Generate(topology.Small, topology.LAN, 5)
		if err != nil {
			t.Fatal(err)
		}
		she := sim.NewSharded(4)
		net := network.NewSharded(topo.Graph, she, cfg)
		hosts := topo.AddHosts(16)
		res := graph.NewResolver(topo.Graph, 64)
		for i := 0; i < 8; i++ {
			path, err := res.HostPath(hosts[i], hosts[8+i])
			if err != nil {
				t.Fatal(err)
			}
			s, err := net.NewSession(hosts[i], hosts[8+i], path)
			if err != nil {
				t.Fatal(err)
			}
			net.ScheduleJoin(s, 0, rate.Inf)
		}
		net.Run()
		if err := net.Validate(); err != nil {
			t.Fatal(err)
		}
		return she.Lookahead()
	}
	withTx := run(network.DefaultConfig())
	cfg := network.DefaultConfig()
	cfg.ControlPacketBits = 0
	withoutTx := run(cfg)
	if withoutTx <= 0 || withTx <= 0 {
		t.Fatalf("lookahead not installed: with=%v without=%v", withTx, withoutTx)
	}
	if withTx <= withoutTx {
		t.Fatalf("transmission floor did not widen the window: with=%v without=%v", withTx, withoutTx)
	}
	if withoutTx != time.Microsecond {
		t.Fatalf("raw-propagation lookahead %v, want 1µs on LAN", withoutTx)
	}
}
