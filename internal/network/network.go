// Package network wires everything together for simulation runs: it places
// the B-Neck tasks (source, destination, one RouterLink per directed link in
// use) over a topology graph, transports their packets across the discrete
// event simulator's FIFO wires, schedules session dynamics, detects
// quiescence, and validates converged rates against the centralized oracle —
// exactly the methodology of the paper's Section IV.
package network

import (
	"fmt"
	"time"

	"bneck/internal/core"
	"bneck/internal/graph"
	"bneck/internal/metrics"
	"bneck/internal/rate"
	"bneck/internal/sim"
	"bneck/internal/waterfill"
)

// Config tunes a simulation run.
type Config struct {
	// ControlPacketBits is the size used to compute per-packet transmission
	// (serialization) time on each link: tx = bits / capacity. The paper
	// models transmission times of control packets without consuming data
	// bandwidth; 512 bits approximates its small RM-style control packets.
	// Zero disables serialization delay.
	ControlPacketBits int64
	// BinSize is the packet-count binning interval (Figure 6 uses 5 ms).
	// Zero disables binning.
	BinSize time.Duration
	// OnRate, if set, observes every API.Rate upcall with its virtual time.
	OnRate func(s core.SessionID, lambda rate.Rate, at sim.Time)
	// OnPacket, if set, observes every packet as it is sent across a
	// physical link (intra-host hand-offs are not reported). Useful for
	// protocol tracing and debugging.
	OnPacket func(link graph.LinkID, pkt core.Packet, at sim.Time)
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{ControlPacketBits: 512, BinSize: 5 * time.Millisecond}
}

// Session is one session living in a simulated network. A topology event can
// migrate a session onto a new path: the old incarnation departs through the
// protocol's own Leave and a successor (fresh ID, new path) joins in its
// place, so in-flight packets of the two incarnations can never interfere.
// Current follows the successor chain; the read accessors do so implicitly.
type Session struct {
	ID       core.SessionID
	SrcHost  graph.NodeID
	DstHost  graph.NodeID
	Path     graph.Path
	src      *core.SourceNode
	dst      *core.DestinationNode
	joinedAt sim.Time
	rateAt   sim.Time
	active   bool
	departed bool

	everJoined bool
	// succ is the migrated continuation of this session, if any.
	succ *Session
	// stranded marks a session parked because no path exists between its
	// hosts; it rejoins with strandedDemand when a restore reconnects them.
	stranded       bool
	strandedDemand rate.Rate
}

// Current returns the live incarnation of the session: itself, or the last
// successor created by topology-event migration.
func (s *Session) Current() *Session {
	for s.succ != nil {
		s = s.succ
	}
	return s
}

// Stranded reports whether the session is parked without a path after a link
// failure (it rejoins automatically on restore).
func (s *Session) Stranded() bool { return s.Current().stranded }

// JoinedAt returns the virtual time of the session's (last) join, following
// topology-event migrations.
func (s *Session) JoinedAt() sim.Time { return s.Current().joinedAt }

// SettlingTime returns how long after joining the session received its last
// rate notification — its individual convergence latency. After a migration
// it measures the successor's join-to-rate latency.
func (s *Session) SettlingTime() sim.Time {
	cur := s.Current()
	return cur.rateAt - cur.joinedAt
}

// Rate returns the session's last granted rate (valid once ok).
func (s *Session) Rate() (rate.Rate, bool) { return s.Current().src.Rate() }

// RateTime returns the virtual time of the last API.Rate upcall.
func (s *Session) RateTime() sim.Time { return s.Current().rateAt }

// Active reports whether the session has joined and not left.
func (s *Session) Active() bool { return s.Current().active }

// Demand returns the session's current requested maximum rate.
func (s *Session) Demand() rate.Rate { return s.Current().src.Demand() }

// Converged reports whether the session holds a confirmed max-min rate.
func (s *Session) Converged() bool { return s.Current().src.Converged() }

// Network is a simulated B-Neck deployment.
type Network struct {
	cfg      Config
	g        *graph.Graph
	eng      *sim.Engine
	resolver *graph.Resolver
	links    map[graph.LinkID]*core.RouterLink
	wires    map[graph.LinkID]*sim.Wire
	sessions map[core.SessionID]*Session
	order    []core.SessionID // insertion order, for deterministic iteration
	stranded []*Session       // parked without a path, in strand order
	stats    *metrics.PacketStats
	nextID   core.SessionID
	migrated uint64          // sessions rerouted by topology events
	free     []*deliverEvent // recycled packet deliveries (see Emit)
}

// deliverEvent carries one in-flight packet delivery. Emit runs once per
// packet per hop — the hottest call site in the whole simulator — and a
// naive closure there costs two heap allocations per packet (the closure and
// its captured variables). Instead each Network keeps a free list of
// deliverEvents, each with a closure built exactly once over the event
// itself; Emit pops one, fills in the pending delivery, and the closure
// recycles its event before delivering, so steady-state packet traffic
// allocates nothing.
type deliverEvent struct {
	sess *Session
	hop  int
	pkt  core.Packet
	fn   func()
}

// takeDeliver returns a ready-to-schedule callback delivering pkt to hop on
// sess, drawing from the free list when possible.
func (n *Network) takeDeliver(sess *Session, hop int, pkt core.Packet) func() {
	var d *deliverEvent
	if k := len(n.free); k > 0 {
		d = n.free[k-1]
		n.free = n.free[:k-1]
	} else {
		d = &deliverEvent{}
		d.fn = func() {
			sess, hop, pkt := d.sess, d.hop, d.pkt
			d.sess = nil
			n.free = append(n.free, d)
			n.deliver(sess, hop, pkt)
		}
	}
	d.sess, d.hop, d.pkt = sess, hop, pkt
	return d.fn
}

// New returns a network over g driven by eng.
func New(g *graph.Graph, eng *sim.Engine, cfg Config) *Network {
	return &Network{
		cfg:      cfg,
		g:        g,
		eng:      eng,
		resolver: graph.NewResolver(g, 256),
		links:    make(map[graph.LinkID]*core.RouterLink),
		wires:    make(map[graph.LinkID]*sim.Wire),
		sessions: make(map[core.SessionID]*Session),
		stats:    metrics.NewPacketStats(cfg.BinSize),
		nextID:   1,
	}
}

// Engine returns the driving simulator.
func (n *Network) Engine() *sim.Engine { return n.eng }

// Stats returns the packet statistics collector.
func (n *Network) Stats() *metrics.PacketStats { return n.stats }

// Sessions returns all sessions ever created, in creation order.
func (n *Network) Sessions() []*Session {
	out := make([]*Session, 0, len(n.order))
	for _, id := range n.order {
		out = append(out, n.sessions[id])
	}
	return out
}

// NewSession creates a session between two hosts along path, without joining
// it (schedule the join separately). The path must come from the graph
// (e.g., graph.Resolver.HostPath).
func (n *Network) NewSession(srcHost, dstHost graph.NodeID, path graph.Path) (*Session, error) {
	if err := graph.ValidatePath(n.g, path); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	id := n.nextID
	n.nextID++
	s := &Session{ID: id, SrcHost: srcHost, DstHost: dstHost, Path: path}
	s.src = core.NewSourceNode(id, n, func(sid core.SessionID, lambda rate.Rate) {
		s.rateAt = n.eng.Now()
		if n.cfg.OnRate != nil {
			n.cfg.OnRate(sid, lambda, n.eng.Now())
		}
	})
	s.dst = core.NewDestinationNode(id, n)
	n.sessions[id] = s
	n.order = append(n.order, id)
	return s, nil
}

// ScheduleJoin joins the session at virtual time at with the given demand.
// If a topology event broke the session's path before the join fires, the
// join reroutes (or strands the session until a restore reconnects it).
func (n *Network) ScheduleJoin(s *Session, at sim.Time, demand rate.Rate) {
	n.eng.At(at, func() { n.joinOrStrand(s.Current(), demand) })
}

// ScheduleLeave departs the session at virtual time at. Leaves for sessions
// that a topology event already stranded or departed dissolve silently, so
// churn schedules compose with failure schedules.
func (n *Network) ScheduleLeave(s *Session, at sim.Time) {
	n.eng.At(at, func() {
		cur := s.Current()
		if cur.stranded {
			n.unstrand(cur)
			return
		}
		if !cur.active {
			return
		}
		cur.active = false
		cur.departed = true
		cur.src.Leave()
	})
}

// ScheduleChange changes the session's demand at virtual time at. Changes
// for stranded sessions update the demand they will rejoin with; changes for
// departed sessions dissolve.
func (n *Network) ScheduleChange(s *Session, at sim.Time, demand rate.Rate) {
	n.eng.At(at, func() {
		cur := s.Current()
		if cur.stranded {
			cur.strandedDemand = demand
			return
		}
		if !cur.active {
			return
		}
		cur.src.Change(demand)
	})
}

// Run drives the simulation to quiescence and returns the quiescence time
// (the timestamp of the last protocol event).
func (n *Network) Run() sim.Time { return n.eng.Run() }

// Emit implements core.Emitter: it moves a packet one hop along (or against)
// the session's path, crossing the corresponding physical wire.
func (n *Network) Emit(s core.SessionID, from int, dir core.Direction, pkt core.Packet) {
	sess := n.sessions[s]
	if sess == nil {
		panic(fmt.Sprintf("network: emit for unknown session %d", s))
	}
	var to int
	wireLink := graph.NoLink
	if dir == core.Down {
		to = from + 1
		if from >= 1 {
			wireLink = sess.Path[from-1]
		}
	} else {
		to = from - 1
		if from >= 2 {
			wireLink = n.g.Link(sess.Path[from-2]).Reverse
		}
	}
	deliver := n.takeDeliver(sess, to, pkt)
	if wireLink == graph.NoLink {
		// Intra-host hand-off (source ↔ its access-link task): no wire.
		n.eng.After(0, deliver)
		return
	}
	// The packet crosses a physical link: account it (the paper counts
	// every packet sent across a link) and serialize it on the wire.
	n.stats.Record(pkt.Type, n.eng.Now())
	if n.cfg.OnPacket != nil {
		n.cfg.OnPacket(wireLink, pkt, n.eng.Now())
	}
	n.wire(wireLink).Send(deliver)
}

func (n *Network) deliver(sess *Session, hop int, pkt core.Packet) {
	switch {
	case hop == 0:
		sess.src.Receive(pkt)
	case hop == len(sess.Path)+1:
		sess.dst.Receive(pkt, hop)
	default:
		n.routerLink(sess.Path[hop-1]).Receive(pkt, hop)
	}
}

// routerLink lazily creates the RouterLink task for a directed link.
func (n *Network) routerLink(id graph.LinkID) *core.RouterLink {
	if rl, ok := n.links[id]; ok {
		return rl
	}
	l := n.g.Link(id)
	rl := core.NewRouterLink(core.LinkRef(id), l.Capacity, n)
	n.links[id] = rl
	return rl
}

// wire lazily creates the simulator wire for a directed link.
func (n *Network) wire(id graph.LinkID) *sim.Wire {
	if w, ok := n.wires[id]; ok {
		return w
	}
	l := n.g.Link(id)
	w := sim.NewWire(n.eng, l.Propagation, n.txFor(l.Capacity))
	n.wires[id] = w
	return w
}

// txFor returns the per-packet transmission time on a link of the given
// capacity: tx = bits / capacity, in seconds.
func (n *Network) txFor(capacity rate.Rate) time.Duration {
	if n.cfg.ControlPacketBits <= 0 {
		return 0
	}
	bps := capacity.Float64()
	if bps <= 0 {
		return 0
	}
	return time.Duration(float64(n.cfg.ControlPacketBits) / bps * float64(time.Second))
}

// Oracle computes the max-min fair rates of the currently active sessions
// with Centralized B-Neck. The result maps session IDs to rates.
func (n *Network) Oracle() (map[core.SessionID]rate.Rate, error) {
	linkIdx := make(map[graph.LinkID]int)
	var in waterfill.Instance
	var ids []core.SessionID
	for _, id := range n.order {
		s := n.sessions[id]
		if !s.active {
			continue
		}
		ws := waterfill.Session{Demand: s.src.Demand()}
		for _, l := range s.Path {
			i, ok := linkIdx[l]
			if !ok {
				i = len(in.Capacity)
				linkIdx[l] = i
				in.Capacity = append(in.Capacity, n.g.Link(l).Capacity)
			}
			ws.Path = append(ws.Path, i)
		}
		in.Sessions = append(in.Sessions, ws)
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return map[core.SessionID]rate.Rate{}, nil
	}
	rates, err := waterfill.Solve(in)
	if err != nil {
		return nil, err
	}
	out := make(map[core.SessionID]rate.Rate, len(ids))
	for i, id := range ids {
		out[id] = rates[i]
	}
	return out, nil
}

// Validate checks, after quiescence, that every active session holds exactly
// its max-min fair rate (the paper validates every run this way), and that
// every link task is stable per Definition 2 with consistent internal state.
func (n *Network) Validate() error {
	oracle, err := n.Oracle()
	if err != nil {
		return fmt.Errorf("network: oracle failed: %w", err)
	}
	for _, id := range n.order {
		s := n.sessions[id]
		if !s.active {
			continue
		}
		got, ok := s.src.Rate()
		if !ok {
			return fmt.Errorf("network: session %d has no rate after quiescence", id)
		}
		want := oracle[id]
		if !got.Equal(want) {
			return fmt.Errorf("network: session %d rate %v, oracle %v", id, got, want)
		}
		if !s.src.Converged() {
			return fmt.Errorf("network: session %d rate not confirmed (no bottleneck received)", id)
		}
	}
	for lid, rl := range n.links {
		if err := rl.CheckInvariants(); err != nil {
			return fmt.Errorf("network: link %d: %w", lid, err)
		}
		if !rl.Stable() {
			return fmt.Errorf("network: link %d unstable after quiescence", lid)
		}
	}
	return nil
}

// SnapshotRates returns every active session's current granted rate (zero
// if none yet), for transient measurements (Figure 7).
func (n *Network) SnapshotRates() map[core.SessionID]rate.Rate {
	out := make(map[core.SessionID]rate.Rate)
	for _, id := range n.order {
		s := n.sessions[id]
		if !s.active {
			continue
		}
		if r, ok := s.src.Rate(); ok {
			out[id] = r
		} else {
			out[id] = rate.Zero
		}
	}
	return out
}

// LinkLoad sums the granted rates of active sessions over every link in
// use; keys are directed link IDs (Figure 7 right's link-level view).
func (n *Network) LinkLoad() map[graph.LinkID]rate.Rate {
	out := make(map[graph.LinkID]rate.Rate)
	for _, id := range n.order {
		s := n.sessions[id]
		if !s.active {
			continue
		}
		r, ok := s.src.Rate()
		if !ok {
			continue
		}
		for _, l := range s.Path {
			out[l] = out[l].Add(r)
		}
	}
	return out
}
