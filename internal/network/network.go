// Package network wires everything together for simulation runs: it places
// the B-Neck tasks (source, destination, one RouterLink per directed link in
// use) over a topology graph, transports their packets across the discrete
// event simulator's FIFO wires, schedules session dynamics, detects
// quiescence, and validates converged rates against the centralized oracle —
// exactly the methodology of the paper's Section IV.
//
// A Network runs on one of two engines. The classic serial engine
// (network.New) executes every event on one goroutine in (time, scheduling
// order). The sharded engine (network.NewSharded) partitions the topology's
// nodes into shards (graph.PartitionNodes), gives every protocol task an
// execution home — a RouterLink lives on the From side of its link, session
// endpoints on their hosts — and runs shards in parallel under the engine's
// conservative lookahead windows. Session churn and topology dynamics
// execute as global barrier events, so they can touch cross-shard state
// (session maps, the graph, the resolver) without locks. Packet statistics
// and delivery pools are per shard and merge on demand. The sharded event
// order is keyed by (time, creator node, creator sequence), which is
// independent of the partition: runs are byte-identical for every shard
// count, including one.
package network

import (
	"errors"
	"fmt"
	"time"

	"bneck/internal/core"
	"bneck/internal/graph"
	"bneck/internal/metrics"
	"bneck/internal/policy"
	"bneck/internal/rate"
	"bneck/internal/sim"
	"bneck/internal/waterfill"
)

// ErrStaleIncarnation reports a departed session lifetime observed active
// again — the fresh-ID rule was violated and stale in-flight responses of
// the departed lifetime could be delivered to the new one (the PR 4 bug
// shape). Validate returns it wrapped; classify with errors.Is.
var ErrStaleIncarnation = errors.New("network: departed-but-active incarnation (stale rejoin)")

// Config tunes a simulation run.
type Config struct {
	// ControlPacketBits is the size used to compute per-packet transmission
	// (serialization) time on each link: tx = bits / capacity. The paper
	// models transmission times of control packets without consuming data
	// bandwidth; 512 bits approximates its small RM-style control packets.
	// Zero disables serialization delay.
	ControlPacketBits int64
	// BinSize is the packet-count binning interval (Figure 6 uses 5 ms).
	// Zero disables binning.
	BinSize time.Duration
	// OnRate, if set, observes every API.Rate upcall with its virtual time.
	// On a sharded network it is called from shard goroutines: callbacks for
	// different sessions may run concurrently (per-session slots are safe).
	OnRate func(s core.SessionID, lambda rate.Rate, at sim.Time)
	// OnPacket, if set, observes every packet as it is sent across a
	// physical link (intra-host hand-offs are not reported). Useful for
	// protocol tracing and debugging. Sharded runs call it concurrently.
	OnPacket func(link graph.LinkID, pkt core.Packet, at sim.Time)
	// Speculate enables optimistic window execution on a sharded engine
	// (ignored in classic mode): at barriers where every cut-link wire is
	// idle, shards speculatively run windows several lookaheads long,
	// withholding cross-shard sends in journals that are externalized only
	// at commit. Results are byte-identical with the flag on or off at every
	// shard count; only wall-clock changes (see DESIGN.md §13).
	Speculate bool
	// Hierarchy, if set, supplies per-node hierarchy labels (coarse to fine,
	// densely indexed by NodeID — see graph.PartitionHierarchy) and switches
	// sharded repartitioning from the flat latency sweep to the hierarchical
	// cut. Called at every repartition, so topologies that grow (AddHosts)
	// return fresh label slices covering the new nodes. Generated internet
	// topologies (topology.Internet) provide it; nil keeps PartitionNodes.
	Hierarchy func() [][]int32
	// PathPolicy selects the path re-optimization policy. The zero value is
	// policy.Pinned — paths never move unless a failure forces them to —
	// which reproduces the historical behavior exactly. With
	// policy.ReoptimizeOnRestore, link restores (and capacity increases past
	// the policy's threshold) sweep the active sessions and migrate any
	// session whose path exceeds the policy's stretch/hysteresis margin,
	// through the same Leave → reroute → Join machinery failures use.
	PathPolicy policy.Config
	// IncrementalOracle makes Oracle/Validate consume churn and topology
	// events as deltas into a waterfill.Incremental mirror, re-leveling only
	// the affected bottleneck component per validation epoch instead of
	// re-solving the whole instance. Rates are byte-identical either way
	// (max-min rates are unique); only validation cost changes.
	IncrementalOracle bool
	// OracleCrossCheck (debug) runs a full solve alongside every incremental
	// flush and errors on any divergence. Implies IncrementalOracle.
	OracleCrossCheck bool
	// OracleFallbackPercent overrides the incremental oracle's cascade
	// threshold: when a flush's sub-instance exceeds this percentage of the
	// solver's member links, it falls back to a full solve. Zero keeps
	// waterfill.DefaultFallbackPercent.
	OracleFallbackPercent int
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{ControlPacketBits: 512, BinSize: 5 * time.Millisecond}
}

// Session is one session living in a simulated network. A topology event can
// migrate a session onto a new path: the old incarnation departs through the
// protocol's own Leave and a successor (fresh ID, new path) joins in its
// place, so in-flight packets of the two incarnations can never interfere.
// Current follows the successor chain; the read accessors do so implicitly.
type Session struct {
	ID       core.SessionID
	SrcHost  graph.NodeID
	DstHost  graph.NodeID
	Path     graph.Path
	src      *core.SourceNode
	dst      *core.DestinationNode
	joinedAt sim.Time
	rateAt   sim.Time
	active   bool
	departed bool

	everJoined bool
	// succ is the migrated continuation of this session, if any.
	succ *Session
	// reconfAccounted marks a session whose packets-until-next-quiescence
	// are already attributed to reconfiguration traffic (as a forced-Leave
	// teardown or a topology-driven rejoin), so overlapping reconfiguration
	// events never double-count it.
	reconfAccounted bool
	// stranded marks a session parked because no path exists between its
	// hosts; it rejoins with strandedDemand when a restore reconnects them.
	stranded       bool
	strandedDemand rate.Rate
}

// Current returns the live incarnation of the session: itself, or the last
// successor created by topology-event migration.
func (s *Session) Current() *Session {
	for s.succ != nil {
		s = s.succ
	}
	return s
}

// Stranded reports whether the session is parked without a path after a link
// failure (it rejoins automatically on restore).
func (s *Session) Stranded() bool { return s.Current().stranded }

// JoinedAt returns the virtual time of the session's (last) join, following
// topology-event migrations.
func (s *Session) JoinedAt() sim.Time { return s.Current().joinedAt }

// SettlingTime returns how long after joining the session received its last
// rate notification — its individual convergence latency. After a migration
// it measures the successor's join-to-rate latency.
func (s *Session) SettlingTime() sim.Time {
	cur := s.Current()
	return cur.rateAt - cur.joinedAt
}

// Rate returns the session's last granted rate (valid once ok).
func (s *Session) Rate() (rate.Rate, bool) { return s.Current().src.Rate() }

// RateTime returns the virtual time of the last API.Rate upcall.
func (s *Session) RateTime() sim.Time { return s.Current().rateAt }

// Active reports whether the session has joined and not left.
func (s *Session) Active() bool { return s.Current().active }

// Demand returns the session's current requested maximum rate.
func (s *Session) Demand() rate.Rate { return s.Current().src.Demand() }

// Converged reports whether the session holds a confirmed max-min rate.
func (s *Session) Converged() bool { return s.Current().src.Converged() }

// Network is a simulated B-Neck deployment.
type Network struct {
	cfg      Config
	g        *graph.Graph
	eng      *sim.Engine        // classic serial engine; nil in sharded mode
	she      *sim.ShardedEngine // sharded engine; nil in classic mode
	resolver *graph.Resolver
	links    []*core.RouterLink // dense by LinkID; nil until a path uses it
	wires    []*sim.Wire        // dense by LinkID; nil until a path uses it
	// sessByID is the session table, densely indexed by ID (IDs are assigned
	// 1, 2, …): Emit resolves its session once per packet per hop, and at
	// internet scale (~10⁵ sessions) a map here would cost a hash plus a
	// cache miss per lookup on every path, so the slice is the only table.
	sessByID []*Session
	order    []core.SessionID // insertion order, for deterministic iteration
	stranded []*Session       // parked without a path, in strand order
	domains  []*domain        // one per shard (one total in classic mode)
	nextID   core.SessionID
	migrated uint64 // sessions link failures force-rerouted onto new paths

	// reoptimized counts sessions the path policy migrated back onto
	// shorter paths (disjoint from migrated: forced reroutes and policy
	// reroutes are separate metrics).
	reoptimized uint64
	// Reconfiguration-packet accounting: spans opened by topology-driven
	// Leaves (teardowns) and joins accumulate into reconfigPkts when Run
	// reaches quiescence — see finalizeReconfig.
	reconfTear   []reconfSpan
	reconfJoin   []*Session
	reconfigPkts uint64

	// partGen/partNodes stamp the partition installed on the sharded engine;
	// topology churn or host additions make it stale and trigger a
	// generation-aware repartition at the next barrier.
	partGen   uint64
	partNodes int
	// cutLinks lists the links the current partition cuts — the only
	// conduits of cross-shard influence. The speculation gate probes their
	// wires' idleness at a barrier before admitting an optimistic window;
	// repartition rebuilds the list whenever the partition moves.
	cutLinks []graph.LinkID

	// oracle holds the reusable scratch of Oracle/Validate: the waterfill
	// instance, its link index and the flattened path arena survive between
	// calls, so per-epoch validation of a churning run stops reallocating.
	oracle oracleScratch
	// incOracle is the delta-driven validation mirror (nil unless
	// Config.IncrementalOracle / OracleCrossCheck is set).
	incOracle *incOracle
}

type oracleScratch struct {
	solver waterfill.Solver
	// linkIdx maps LinkID → instance link index as a generation-stamped
	// dense table (the PR 4 delivery-table pattern): an entry is valid only
	// when linkStamp matches the current call's stamp, so resetting between
	// calls is one counter increment instead of clearing a map of every
	// link the previous epoch used.
	linkIdx   []int32
	linkStamp []uint32
	stamp     uint32
	inst      waterfill.Instance
	pathBuf   []int
	ids       []core.SessionID
}

// domain is the per-shard execution state: the shard's packet statistics,
// its per-session packet counters, and its free list of recycled packet
// deliveries. Each domain is touched only by its shard's goroutine (or by
// the coordinator at a barrier), so the hot path stays lock-free. The
// shardowner analyzer enforces that ownership: fields may only be reached
// through a //bneck:owner accessor or inside a //bneck:merge function.
//
//bneck:sharded
type domain struct {
	stats *metrics.PacketStats
	free  []*deliverEvent
	// sessPkts counts, densely by session ID, the packets this domain's
	// tasks sent across physical links on each session's behalf. Grown in
	// serial context by NewSession; summed across domains on demand
	// (SessionPackets, the reconfiguration-cost accounting).
	sessPkts []uint64
}

// reconfSpan is one pending teardown debit: the packets a force-departed
// incarnation sends from its Leave (base) until the next quiescence are
// reconfiguration traffic.
type reconfSpan struct {
	s    *Session
	base uint64
}

// maxFreeDeliver caps a domain's free list: cross-shard deliveries recycle
// into the receiving shard's pool, so sustained one-directional traffic
// could otherwise grow a pool without bound.
const maxFreeDeliver = 1 << 15

// deliverEvent carries one in-flight packet delivery. Emit runs once per
// packet per hop — the hottest call site in the whole simulator — and a
// naive closure there costs two heap allocations per packet (the closure and
// its captured variables). Instead each domain keeps a free list of
// deliverEvents, each with a closure built exactly once over the event
// itself; Emit pops one from the executing shard's pool, fills in the
// pending delivery, and the closure recycles its event into the pool of the
// shard executing the delivery, so steady-state packet traffic allocates
// nothing.
type deliverEvent struct {
	sess   *Session
	hop    int
	pkt    core.Packet
	target graph.NodeID
	fn     func()
}

// takeDeliver returns a ready-to-schedule callback delivering pkt to hop on
// sess, drawing from the executing domain's free list when possible. target
// is the node the delivery executes on, which decides the recycling pool.
func (n *Network) takeDeliver(dom *domain, sess *Session, hop int, pkt core.Packet, target graph.NodeID) func() {
	var d *deliverEvent
	if k := len(dom.free); k > 0 {
		d = dom.free[k-1]
		dom.free = dom.free[:k-1]
	} else {
		d = &deliverEvent{}
		d.fn = func() {
			sess, hop, pkt := d.sess, d.hop, d.pkt
			d.sess = nil
			home := n.domainFor(d.target)
			if len(home.free) < maxFreeDeliver {
				home.free = append(home.free, d)
			}
			n.deliver(sess, hop, pkt)
		}
	}
	d.sess, d.hop, d.pkt, d.target = sess, hop, pkt, target
	return d.fn
}

// New returns a network over g driven by the classic serial engine.
func New(g *graph.Graph, eng *sim.Engine, cfg Config) *Network {
	n := newNetwork(g, cfg)
	n.eng = eng
	n.domains = []*domain{{stats: metrics.NewPacketStats(cfg.BinSize)}}
	return n
}

// NewSharded returns a network over g driven by a sharded engine. The
// partition is computed (and, after topology churn, recomputed) from the
// graph and the registered sessions' paths at every Run.
func NewSharded(g *graph.Graph, she *sim.ShardedEngine, cfg Config) *Network {
	n := newNetwork(g, cfg)
	n.she = she
	for i := 0; i < she.Shards(); i++ {
		n.domains = append(n.domains, &domain{stats: metrics.NewPacketStats(cfg.BinSize)})
	}
	if cfg.Speculate {
		she.SetSpeculation(true)
		she.SetSpecGate(n.specGate)
	}
	return n
}

// specGate is the transport's admission check for optimistic windows,
// called by the engine at a barrier immediately before a speculative fork:
// admit only when every cut-link wire is idle — a busy cut transmitter
// means cross-shard traffic is in flight, and the withheld delivery would
// park the attempt almost immediately. Wires are created lazily; a link no
// path has used yet has no wire and is trivially idle.
func (n *Network) specGate() bool {
	for _, id := range n.cutLinks {
		if int(id) < len(n.wires) {
			if w := n.wires[id]; w != nil && !w.Idle() {
				return false
			}
		}
	}
	return true
}

// SpeculationStats returns the sharded engine's optimistic-execution
// counters — zero in classic mode or with speculation off. Outcome counts
// are timing-dependent in parallel mode (results never are).
func (n *Network) SpeculationStats() sim.SpeculationStats {
	if n.she == nil {
		return sim.SpeculationStats{}
	}
	return n.she.SpecStats()
}

func newNetwork(g *graph.Graph, cfg Config) *Network {
	return &Network{
		cfg:       cfg,
		g:         g,
		resolver:  graph.NewResolver(g, 256),
		sessByID:  make([]*Session, 1), // IDs start at 1; slot 0 stays nil
		nextID:    1,
		incOracle: newIncOracle(cfg),
	}
}

// Engine returns the driving serial simulator (nil when the network runs on
// a sharded engine).
func (n *Network) Engine() *sim.Engine { return n.eng }

// Sharded returns the driving sharded engine (nil in classic mode).
func (n *Network) Sharded() *sim.ShardedEngine { return n.she }

// domainFor returns the execution domain of a node: the single classic
// domain, or the node's shard. A sharded engine in inline mode executes
// everything on the coordinating goroutine, so one shared domain is safe —
// and keeps the delivery free list at the classic engine's hit rate instead
// of leaking events across cut-traffic pools (stats merge by summation, so
// the collapse is invisible in results).
//
//bneck:owner returns the executing shard's own domain (ShardOf of the executing node).
func (n *Network) domainFor(node graph.NodeID) *domain {
	if n.she == nil || !n.she.Parallel() {
		return n.domains[0]
	}
	return n.domains[n.she.ShardOf(int32(node))]
}

// nowFor returns the local clock of a node's execution context.
func (n *Network) nowFor(node graph.NodeID) sim.Time {
	if n.she == nil {
		return n.eng.Now()
	}
	return n.she.NowAt(int32(node))
}

// globalNow returns the engine-wide clock (the barrier clock when sharded).
func (n *Network) globalNow() sim.Time {
	if n.she == nil {
		return n.eng.Now()
	}
	return n.she.Now()
}

// globalAt schedules fn as a serial event: a plain event on the classic
// engine, a barrier (global) event on the sharded one. All session churn and
// topology dynamics go through here, because they touch cross-shard state —
// it is the transport's single sanctioned funnel for un-keyed (ExtCreator)
// scheduling, so churn, dynamics and sampling share one partition-independent
// order (the eventkey analyzer flags any other At/After/DaemonAt call).
//
//bneck:global the one blessed ExtCreator funnel; everything serial flows through here.
func (n *Network) globalAt(at sim.Time, fn func()) {
	if n.she == nil {
		n.eng.At(at, fn) //bneck:global see funnel comment above.
		return
	}
	n.she.At(at, fn) //bneck:global see funnel comment above.
}

// Stats returns the packet statistics. In sharded mode the per-shard
// collectors are merged into a fresh snapshot; totals and bins are sums, so
// the result is identical for every shard count.
//
//bneck:merge called between runs or at a barrier; sweeps all domains by design.
func (n *Network) Stats() *metrics.PacketStats {
	if len(n.domains) == 1 {
		return n.domains[0].stats
	}
	merged := metrics.NewPacketStats(n.cfg.BinSize)
	for _, d := range n.domains {
		merged.Merge(d.stats)
	}
	return merged
}

// LinkPackets returns per-directed-link packet totals for every link that
// carried traffic, ordered by link ID — the simulator-side counterpart of
// the live runtime's report (same field names).
func (n *Network) LinkPackets() []metrics.LinkCount {
	var out []metrics.LinkCount
	for id, w := range n.wires {
		if w != nil && w.Sent() > 0 {
			out = append(out, metrics.LinkCount{Link: graph.LinkID(id), Packets: w.Sent()})
		}
	}
	return out
}

// SessionPackets returns per-session packet totals (packets sent across
// physical links on the session's behalf) for every session incarnation
// that carried traffic, in creation order. The per-domain counters are
// merged on demand, like Stats — the live runtime reports the same shape.
func (n *Network) SessionPackets() []metrics.SessionCount {
	var out []metrics.SessionCount
	for _, id := range n.order {
		if pk := n.sessionPacketCount(id); pk > 0 {
			out = append(out, metrics.SessionCount{Session: id, Packets: pk})
		}
	}
	return out
}

// sessionPacketCount sums one session's packet counters across domains.
// Call from serial context (setup, a barrier event, or between runs).
//
//bneck:merge serial-context sweep; see the call contract above.
func (n *Network) sessionPacketCount(id core.SessionID) uint64 {
	var pk uint64
	for _, d := range n.domains {
		if int(id) < len(d.sessPkts) {
			pk += d.sessPkts[id]
		}
	}
	return pk
}

// ReconfigPackets returns the cumulative control-packet cost of topology
// reconfigurations: the Leave-cascade packets of every force-departed
// incarnation plus the Join-cascade packets of every topology-driven
// (re)join — migrations, policy re-optimizations and strand rejoins — each
// measured until the quiescence that follows it. The counter is updated
// when Run reaches quiescence; user churn (scheduled joins, leaves,
// demand changes) is never counted.
func (n *Network) ReconfigPackets() uint64 { return n.reconfigPkts }

// Reoptimizations returns how many sessions the path policy migrated back
// onto shorter paths (zero under policy.Pinned). Disjoint from Migrations,
// which counts only failure-forced reroutes.
func (n *Network) Reoptimizations() uint64 { return n.reoptimized }

// beginTeardown opens a reconfiguration teardown span for a session being
// force-departed: everything it sends from here to the next quiescence is
// its Leave cascade.
func (n *Network) beginTeardown(s *Session) {
	if s.reconfAccounted {
		return // its remaining packets are already attributed
	}
	s.reconfAccounted = true
	n.reconfTear = append(n.reconfTear, reconfSpan{s: s, base: n.sessionPacketCount(s.ID)})
}

// markReconfigJoin attributes a freshly (re)joined session's packets —
// from birth to the next quiescence — to reconfiguration traffic.
func (n *Network) markReconfigJoin(s *Session) {
	if s.reconfAccounted {
		return
	}
	s.reconfAccounted = true
	n.reconfJoin = append(n.reconfJoin, s)
}

// finalizeReconfig closes the pending reconfiguration spans at quiescence.
func (n *Network) finalizeReconfig() {
	for _, t := range n.reconfTear {
		n.reconfigPkts += n.sessionPacketCount(t.s.ID) - t.base
		t.s.reconfAccounted = false
	}
	n.reconfTear = n.reconfTear[:0]
	for _, s := range n.reconfJoin {
		n.reconfigPkts += n.sessionPacketCount(s.ID)
		s.reconfAccounted = false
	}
	n.reconfJoin = n.reconfJoin[:0]
}

// Sessions returns all sessions ever created, in creation order.
func (n *Network) Sessions() []*Session {
	out := make([]*Session, 0, len(n.order))
	for _, id := range n.order {
		out = append(out, n.sessByID[id])
	}
	return out
}

// NewSession creates a session between two hosts along path, without joining
// it (schedule the join separately). The path must come from the graph
// (e.g., graph.Resolver.HostPath).
//
//bneck:merge sessions are created at setup or inside barrier events; sizing every domain's counter table here is the serial-context contract.
func (n *Network) NewSession(srcHost, dstHost graph.NodeID, path graph.Path) (*Session, error) {
	if err := graph.ValidatePath(n.g, path); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	id := n.nextID
	n.nextID++
	s := &Session{ID: id, SrcHost: srcHost, DstHost: dstHost, Path: path}
	s.src = core.NewSourceNode(id, taskEmitter{n, srcHost}, func(sid core.SessionID, lambda rate.Rate) {
		at := n.nowFor(srcHost)
		s.rateAt = at
		if n.cfg.OnRate != nil {
			n.cfg.OnRate(sid, lambda, at)
		}
	})
	s.dst = core.NewDestinationNode(id, taskEmitter{n, dstHost})
	for int(id) >= len(n.sessByID) {
		n.sessByID = append(n.sessByID, nil)
	}
	n.sessByID[id] = s
	// Size every domain's per-session counter table now, in serial context
	// (sessions are created at setup or inside barrier events), so Emit can
	// index it without bounds games.
	for _, d := range n.domains {
		for int(id) >= len(d.sessPkts) {
			d.sessPkts = append(d.sessPkts, 0)
		}
	}
	n.order = append(n.order, id)
	return s, nil
}

// ScheduleJoin joins the session at virtual time at with the given demand.
// If a topology event broke the session's path before the join fires, the
// join reroutes (or strands the session until a restore reconnects it).
func (n *Network) ScheduleJoin(s *Session, at sim.Time, demand rate.Rate) {
	n.globalAt(at, func() { n.joinOrStrand(s.Current(), demand) })
}

// ScheduleLeave departs the session at virtual time at. Leaves for sessions
// that a topology event already stranded or departed dissolve silently, so
// churn schedules compose with failure schedules.
func (n *Network) ScheduleLeave(s *Session, at sim.Time) {
	n.globalAt(at, func() {
		cur := s.Current()
		if cur.stranded && !buggyLeaveSkipsUnstrand {
			n.unstrand(cur)
			return
		}
		if !cur.active {
			return
		}
		cur.active = false
		cur.departed = true
		cur.src.Leave()
		n.oracleLeave(cur)
	})
}

// ScheduleChange changes the session's demand at virtual time at. Changes
// for stranded sessions update the demand they will rejoin with; changes for
// departed sessions dissolve.
func (n *Network) ScheduleChange(s *Session, at sim.Time, demand rate.Rate) {
	n.globalAt(at, func() {
		cur := s.Current()
		if cur.stranded {
			cur.strandedDemand = demand
			return
		}
		if !cur.active {
			return
		}
		cur.src.Change(demand)
		n.oracleChange(cur, demand)
	})
}

// Run drives the simulation to quiescence and returns the quiescence time
// (the timestamp of the last protocol event). On a sharded network it first
// (re)computes the partition if the topology changed since the last run.
// Quiescence is also where pending reconfiguration-packet spans close (see
// ReconfigPackets).
func (n *Network) Run() sim.Time {
	var q sim.Time
	if n.she != nil {
		n.ensurePartition()
		q = n.she.Run()
	} else {
		q = n.eng.Run()
	}
	n.finalizeReconfig()
	return q
}

// RunUntil executes all events scheduled at or before t, then sets the
// clock to t — for observing transients. Like Run, it installs a fresh
// partition first when the network is sharded, so it is safe as the very
// first advance after setup or AddHosts.
func (n *Network) RunUntil(t sim.Time) {
	if n.she != nil {
		n.ensurePartition()
		n.she.RunUntil(t)
		return
	}
	n.eng.RunUntil(t)
}

// ensurePartition installs a fresh node partition on the sharded engine when
// none exists yet or the graph changed (hosts added between runs). Called
// from the coordinator, outside any window.
func (n *Network) ensurePartition() {
	if n.partNodes == n.g.NumNodes() && n.partGen == n.g.Generation() && n.partNodes > 0 {
		return
	}
	n.repartition()
}

// maybeRepartition re-balances the shards after topology churn: dynamics
// events bump the graph generation, and the session population they migrate
// shifts the load. Runs inside a global (barrier) event, where re-homing
// queued events is safe.
func (n *Network) maybeRepartition() {
	if n.she == nil || n.she.Shards() <= 1 {
		return
	}
	if n.partGen == n.g.Generation() && n.partNodes == n.g.NumNodes() {
		return
	}
	n.repartition()
}

func (n *Network) repartition() {
	paths := make([]graph.Path, 0, len(n.order))
	for _, id := range n.order {
		s := n.sessByID[id]
		if s.departed && s.succ != nil {
			continue // the successor carries the live path
		}
		paths = append(paths, s.Path)
	}
	weights := graph.SessionWeights(n.g, paths)
	floors := n.linkFloors()
	var p graph.Partition
	if n.cfg.Hierarchy != nil {
		p = graph.PartitionHierarchy(n.g, n.she.Shards(), weights, floors, n.cfg.Hierarchy())
	} else {
		p = graph.PartitionNodes(n.g, n.she.Shards(), weights, floors)
	}
	look := sim.Time(p.Lookahead)
	if p.K <= 1 {
		look = 0 // single shard: the engine treats 0 as unbounded windows
	}
	n.she.SetTopology(n.g.NumNodes(), p.Parts, look)
	n.partGen = n.g.Generation()
	n.partNodes = n.g.NumNodes()
	if n.cfg.Speculate {
		n.cutLinks = graph.CutLinks(n.g, p.Parts)
	}
}

// linkFloors returns each link's per-packet transmission floor — the
// earliest a packet emitted now can arrive is now + tx + propagation, so the
// floor widens the conservative lookahead beyond raw propagation. On LAN
// topologies (uniform 1 µs propagation) serialization dominates, and the
// wider window is what makes sharding profitable there. Floors move with
// capacity, so ScheduleSetCapacity-driven repartitions (the partition is
// generation-stamped) keep the bound sound: a capacity change only takes
// effect at a barrier, and the fresh partition's lookahead reflects it
// before the next window forms.
func (n *Network) linkFloors() []time.Duration {
	if n.cfg.ControlPacketBits <= 0 {
		return nil
	}
	floors := make([]time.Duration, n.g.NumLinks())
	for i := range floors {
		floors[i] = n.txFor(n.g.Link(graph.LinkID(i)).Capacity)
	}
	return floors
}

// taskEmitter implements core.Emitter for one protocol task, bound to the
// node the task executes on: session endpoints live on their hosts, a
// RouterLink on the From side of its directed link. The node decides the
// shard whose clock, statistics and delivery pool an emission uses.
type taskEmitter struct {
	n    *Network
	node graph.NodeID
}

// Emit moves a packet one hop along (or against) the session's path,
// crossing the corresponding physical wire.
func (em taskEmitter) Emit(s core.SessionID, from int, dir core.Direction, pkt core.Packet) {
	n := em.n
	var sess *Session
	if int(s) < len(n.sessByID) {
		sess = n.sessByID[s]
	}
	if sess == nil {
		panic(fmt.Sprintf("network: emit for unknown session %d", s))
	}
	var to int
	wireLink := graph.NoLink
	if dir == core.Down {
		to = from + 1
		if from >= 1 {
			wireLink = sess.Path[from-1]
		}
	} else {
		to = from - 1
		if from >= 2 {
			wireLink = n.g.LinkReverse(sess.Path[from-2])
		}
	}
	dom := n.domainFor(em.node)
	if wireLink == graph.NoLink {
		// Intra-host hand-off (source ↔ its access-link task): no wire. Both
		// endpoints live on the source host, so the delivery stays local.
		// Both engines key the event by the emitting node, so the classic
		// order matches the sharded one.
		deliver := n.takeDeliver(dom, sess, to, pkt, em.node)
		nd := int32(em.node)
		if n.she == nil {
			n.eng.SendFrom(nd, n.eng.Now(), deliver)
		} else {
			n.she.SendAt(nd, nd, n.she.NowAt(nd), deliver)
		}
		return
	}
	// The packet crosses a physical link: account it (the paper counts
	// every packet sent across a link) and serialize it on the wire.
	target := n.g.LinkTo(wireLink)
	deliver := n.takeDeliver(dom, sess, to, pkt, target)
	dom.stats.Record(pkt.Type, n.nowFor(em.node))
	dom.sessPkts[sess.ID]++
	if n.cfg.OnPacket != nil {
		n.cfg.OnPacket(wireLink, pkt, n.nowFor(em.node))
	}
	n.wire(wireLink).Send(deliver)
}

func (n *Network) deliver(sess *Session, hop int, pkt core.Packet) {
	switch {
	case hop == 0:
		sess.src.Receive(pkt)
	case hop == len(sess.Path)+1:
		sess.dst.Receive(pkt, hop)
	default:
		n.routerLink(sess.Path[hop-1]).Receive(pkt, hop)
	}
}

// growLinkSlices sizes the dense per-link task/wire tables to the graph
// (hosts and their access links can be added between runs).
func (n *Network) growLinkSlices() {
	if want := n.g.NumLinks(); len(n.links) < want {
		n.links = append(n.links, make([]*core.RouterLink, want-len(n.links))...)
		n.wires = append(n.wires, make([]*sim.Wire, want-len(n.wires))...)
	}
}

// ensurePathTasks materializes the RouterLink tasks and wires a path uses.
// Joins, migrations and rejoins call it from serial context (a barrier event
// when sharded), so window execution never mutates the tables.
func (n *Network) ensurePathTasks(path graph.Path) {
	n.growLinkSlices()
	for _, l := range path {
		n.routerLink(l)
		n.wire(l)
		if rev := n.g.Link(l).Reverse; rev != graph.NoLink {
			n.wire(rev)
		}
	}
}

// routerLink lazily creates the RouterLink task for a directed link. The
// task executes on the link's From node.
func (n *Network) routerLink(id graph.LinkID) *core.RouterLink {
	n.growLinkSlices()
	if rl := n.links[id]; rl != nil {
		return rl
	}
	l := n.g.Link(id)
	rl := core.NewRouterLink(core.LinkRef(id), l.Capacity, taskEmitter{n, l.From})
	n.links[id] = rl
	return rl
}

// wire lazily creates the simulator wire for a directed link. Both engines
// key a wire's deliveries by the link's From node — the creator whose
// execution sends the packet — which is what makes classic and sharded runs
// byte-identical.
func (n *Network) wire(id graph.LinkID) *sim.Wire {
	n.growLinkSlices()
	if w := n.wires[id]; w != nil {
		return w
	}
	l := n.g.Link(id)
	var sched sim.Sched
	if n.she == nil {
		sched = serialLinkSched{n.eng, int32(l.From), int32(l.To)}
	} else {
		sched = n.she.LinkSched(int32(l.From), int32(l.To))
	}
	w := sim.NewWire(sched, l.Propagation, n.txFor(l.Capacity))
	n.wires[id] = w
	return w
}

// serialLinkSched is the classic engine's counterpart of the sharded
// engine's per-link scheduler: deliveries carry the sending node as their
// creator, so the serial event order equals the sharded (time, creator,
// creator sequence) order.
type serialLinkSched struct {
	eng  *sim.Engine
	from int32
	to   int32
}

func (ls serialLinkSched) Now() sim.Time { return ls.eng.Now() }

// At keys the delivery by the sending node and stamps the receiving node as
// the event's owner — the key (and so the default order) is unchanged; the
// owner feeds the schedule explorer's independence relation.
func (ls serialLinkSched) At(t sim.Time, f func()) { ls.eng.SendFromTo(ls.from, ls.to, t, f) }

// txFor returns the per-packet transmission time on a link of the given
// capacity: tx = bits / capacity, in seconds.
func (n *Network) txFor(capacity rate.Rate) time.Duration {
	if n.cfg.ControlPacketBits <= 0 {
		return 0
	}
	bps := capacity.Float64()
	if bps <= 0 {
		return 0
	}
	return time.Duration(float64(n.cfg.ControlPacketBits) / bps * float64(time.Second))
}

// Oracle computes the max-min fair rates of the currently active sessions
// with Centralized B-Neck. The result maps session IDs to rates. With
// Config.IncrementalOracle the rates come from the delta-driven mirror
// (byte-identical, re-leveling only what churn touched since the last
// epoch); otherwise the instance is assembled in (and solved with) reusable
// scratch buffers, so per-epoch oracle validation of a long churning run
// allocates only its result map.
func (n *Network) Oracle() (map[core.SessionID]rate.Rate, error) {
	if n.incOracle != nil {
		return n.incrementalOracle()
	}
	sc := &n.oracle
	// Grow the stamped link table to the graph (topology growth adds links),
	// then open a fresh epoch: stamp mismatch invalidates every old entry.
	for len(sc.linkIdx) < n.g.NumLinks() {
		sc.linkIdx = append(sc.linkIdx, 0)
		sc.linkStamp = append(sc.linkStamp, 0)
	}
	sc.stamp++
	if sc.stamp == 0 { // wraparound: stale stamps could collide; clear once
		for i := range sc.linkStamp {
			sc.linkStamp[i] = 0
		}
		sc.stamp = 1
	}
	sc.inst.Capacity = sc.inst.Capacity[:0]
	sc.inst.Sessions = sc.inst.Sessions[:0]
	sc.ids = sc.ids[:0]
	// Presize the path arena: sessions keep aliased subslices of it, so it
	// must not reallocate while the instance is being assembled.
	totalPath := 0
	for _, id := range n.order {
		if s := n.sessByID[id]; s.active {
			totalPath += len(s.Path)
		}
	}
	if cap(sc.pathBuf) < totalPath {
		sc.pathBuf = make([]int, 0, totalPath)
	}
	buf := sc.pathBuf[:0]
	for _, id := range n.order {
		s := n.sessByID[id]
		if !s.active {
			continue
		}
		start := len(buf)
		for _, l := range s.Path {
			i := int(sc.linkIdx[l])
			if sc.linkStamp[l] != sc.stamp {
				i = len(sc.inst.Capacity)
				sc.linkIdx[l] = int32(i)
				sc.linkStamp[l] = sc.stamp
				sc.inst.Capacity = append(sc.inst.Capacity, n.g.Link(l).Capacity)
			}
			buf = append(buf, i)
		}
		sc.inst.Sessions = append(sc.inst.Sessions, waterfill.Session{
			Demand: s.src.Demand(),
			Path:   buf[start:len(buf):len(buf)],
		})
		sc.ids = append(sc.ids, id)
	}
	sc.pathBuf = buf
	if len(sc.ids) == 0 {
		return map[core.SessionID]rate.Rate{}, nil
	}
	rates, err := sc.solver.Solve(sc.inst)
	if err != nil {
		return nil, err
	}
	out := make(map[core.SessionID]rate.Rate, len(sc.ids))
	for i, id := range sc.ids {
		out[id] = rates[i]
	}
	return out, nil
}

// Validate checks, after quiescence, that every active session holds exactly
// its max-min fair rate (the paper validates every run this way), and that
// every link task is stable per Definition 2 with consistent internal state.
func (n *Network) Validate() error {
	oracle, err := n.Oracle()
	if err != nil {
		return fmt.Errorf("network: oracle failed: %w", err)
	}
	for _, id := range n.order {
		s := n.sessByID[id]
		// No-stale-incarnation: once a lifetime departs it must never come
		// back as active — a rejoin mints a successor incarnation instead
		// (PR 4's stale-rejoin bug is exactly this state). Walk the whole
		// incarnation chain, not just the current one.
		for inc := s; inc != nil; inc = inc.succ {
			if inc.departed && inc.active {
				return fmt.Errorf("network: session %d: %w", id, ErrStaleIncarnation)
			}
		}
		if !s.active {
			continue
		}
		got, ok := s.src.Rate()
		if !ok {
			return fmt.Errorf("network: session %d has no rate after quiescence", id)
		}
		want := oracle[id]
		if !got.Equal(want) {
			return fmt.Errorf("network: session %d rate %v, oracle %v", id, got, want)
		}
		if !s.src.Converged() {
			return fmt.Errorf("network: session %d rate not confirmed (no bottleneck received)", id)
		}
	}
	for lid, rl := range n.links {
		if rl == nil {
			continue
		}
		if err := rl.CheckInvariants(); err != nil {
			return fmt.Errorf("network: link %d: %w", lid, err)
		}
		if !rl.Stable() {
			return fmt.Errorf("network: link %d unstable after quiescence", lid)
		}
	}
	return nil
}

// EachActiveRate calls fn once per active session, in creation order, with
// the session's current granted rate (zero if none yet). It is the
// allocation-free transient-sampling primitive: SnapshotRates materializes
// its result through it, and samplers at internet scale (10⁵ sessions per
// tick) iterate directly instead of building a map per sample. On a sharded
// network call it only from a global (barrier) event or between runs.
func (n *Network) EachActiveRate(fn func(id core.SessionID, r rate.Rate)) {
	for _, id := range n.order {
		s := n.sessByID[id]
		if !s.active {
			continue
		}
		r, ok := s.src.Rate()
		if !ok {
			r = rate.Zero
		}
		fn(id, r)
	}
}

// SnapshotRates returns every active session's current granted rate (zero
// if none yet), for transient measurements (Figure 7). On a sharded network
// call it only from a global (barrier) event or between runs. Hot samplers
// should prefer EachActiveRate, which allocates nothing.
func (n *Network) SnapshotRates() map[core.SessionID]rate.Rate {
	out := make(map[core.SessionID]rate.Rate)
	n.EachActiveRate(func(id core.SessionID, r rate.Rate) { out[id] = r })
	return out
}

// AppendLinkLoad sums the granted rates of active sessions over every link,
// densely indexed by LinkID, into dst (grown as needed, entries reset) and
// returns it — the allocation-free form of LinkLoad: callers reuse one
// slice across samples instead of materializing a map per tick.
func (n *Network) AppendLinkLoad(dst []rate.Rate) []rate.Rate {
	for len(dst) < n.g.NumLinks() {
		dst = append(dst, rate.Rate{})
	}
	dst = dst[:n.g.NumLinks()]
	for i := range dst {
		dst[i] = rate.Rate{}
	}
	for _, id := range n.order {
		s := n.sessByID[id]
		if !s.active {
			continue
		}
		r, ok := s.src.Rate()
		if !ok {
			continue
		}
		for _, l := range s.Path {
			dst[l] = dst[l].Add(r)
		}
	}
	return dst
}

// LinkLoad sums the granted rates of active sessions over every link in
// use; keys are directed link IDs (Figure 7 right's link-level view).
func (n *Network) LinkLoad() map[graph.LinkID]rate.Rate {
	dense := n.AppendLinkLoad(nil)
	out := make(map[graph.LinkID]rate.Rate)
	for l, r := range dense {
		if !r.IsZero() {
			out[graph.LinkID(l)] = r
		}
	}
	return out
}
