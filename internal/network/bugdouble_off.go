//go:build !mc_stalebug && !mc_strandbug

package network

// Bug-double switches for the schedule-exploration regression corpus
// (internal/mc/testdata). Production builds compile both to false, so the
// guarded branches fold away. The doubles resurrect two historical bugs
// without reverting their fixes:
//
//   - mc_stalebug: joinOnPath adopts the departed incarnation instead of
//     minting a fresh-ID successor — the PR 4 stale-rejoin bug, which let
//     in-flight responses of the departed lifetime corrupt the new one.
//   - mc_strandbug: ScheduleLeave skips the stranded fast path — the PR 2
//     stranding edge, which left a user-departed session parked so a later
//     restore rejoined it as if the Leave never happened.
//
// Each tag breaks the determinism/dynamics suites by design; CI only runs
// the targeted replay tests under these tags (see `make mc-smoke`).
const (
	buggyRejoinReuse        = false
	buggyLeaveSkipsUnstrand = false
)
