//go:build mc_strandbug && !mc_stalebug

package network

// Test double: resurrect the PR 2 stranding edge (see bugdouble_off.go).
const (
	buggyRejoinReuse        = false
	buggyLeaveSkipsUnstrand = true
)
