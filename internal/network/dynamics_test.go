package network

import (
	"math/rand"
	"testing"
	"time"

	"bneck/internal/graph"
	"bneck/internal/rate"
	"bneck/internal/sim"
	"bneck/internal/topology"
)

// buildDiamond returns ha–r1–{r2|r3}–r4–hb with the two duplex router routes
// exposed as (forward, reverse) pairs.
func buildDiamond() (g *graph.Graph, ha, hb graph.NodeID, top, bot [2][2]graph.LinkID) {
	g = graph.New()
	r1 := g.AddRouter("r1")
	r2 := g.AddRouter("r2")
	r3 := g.AddRouter("r3")
	r4 := g.AddRouter("r4")
	ha = g.AddHost("ha")
	hb = g.AddHost("hb")
	g.Connect(ha, r1, rate.Mbps(100), time.Microsecond)
	top[0][0], top[0][1] = g.Connect(r1, r2, rate.Mbps(40), time.Microsecond)
	top[1][0], top[1][1] = g.Connect(r2, r4, rate.Mbps(40), time.Microsecond)
	bot[0][0], bot[0][1] = g.Connect(r1, r3, rate.Mbps(25), time.Microsecond)
	bot[1][0], bot[1][1] = g.Connect(r3, r4, rate.Mbps(25), time.Microsecond)
	g.Connect(r4, hb, rate.Mbps(100), time.Microsecond)
	return
}

func TestScheduledCapacityChange(t *testing.T) {
	g, ha, hb := buildLine(rate.Mbps(40))
	eng := sim.New()
	n := New(g, eng, DefaultConfig())
	path, err := n.resolver.HostPath(ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := n.NewSession(ha, hb, path)
	n.ScheduleJoin(s, 0, rate.Inf)
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Rate(); !got.Equal(rate.Mbps(40)) {
		t.Fatalf("pre-change rate = %v", got)
	}

	mid := path[1] // r1→r2
	n.ScheduleSetCapacity(eng.Now()+time.Millisecond, rate.Mbps(10), mid, g.Link(mid).Reverse)
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Rate(); !got.Equal(rate.Mbps(10)) {
		t.Fatalf("post-shrink rate = %v, want 10 Mbps", got)
	}

	n.ScheduleSetCapacity(eng.Now()+time.Millisecond, rate.Mbps(60), mid, g.Link(mid).Reverse)
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Rate(); !got.Equal(rate.Mbps(60)) {
		t.Fatalf("post-grow rate = %v, want 60 Mbps", got)
	}
}

func TestLinkFailMigratesSession(t *testing.T) {
	g, ha, hb, top, _ := buildDiamond()
	eng := sim.New()
	n := New(g, eng, DefaultConfig())
	path, err := n.resolver.HostPath(ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := n.NewSession(ha, hb, path)
	n.ScheduleJoin(s, 0, rate.Inf)
	n.Run()
	if got, _ := s.Rate(); !got.Equal(rate.Mbps(40)) {
		t.Fatalf("pre-failure rate = %v (expected top route)", got)
	}

	// Fail the top route's first hop (duplex): the session must migrate to
	// the 25 Mbps bottom route through its own Leave → reroute → Join.
	n.ScheduleLinkFail(eng.Now()+time.Millisecond, top[0][0], top[0][1])
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Rate(); !got.Equal(rate.Mbps(25)) {
		t.Fatalf("post-failure rate = %v, want 25 Mbps via bottom route", got)
	}
	if n.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1", n.Migrations())
	}
	if !s.Active() {
		t.Fatal("migrated session not active")
	}
	cur := s.Current()
	if cur == s || cur.ID == s.ID {
		t.Fatal("migration did not mint a successor with a fresh ID")
	}

	// Restore: existing sessions keep their (pinned) path; the network stays
	// valid and silent.
	n.ScheduleLinkRestore(eng.Now()+time.Millisecond, top[0][0], top[0][1])
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Rate(); !got.Equal(rate.Mbps(25)) {
		t.Fatalf("post-restore rate = %v (paths are pinned)", got)
	}
}

func TestLinkFailStrandsAndRestoreReadmits(t *testing.T) {
	g, ha, hb := buildLine(rate.Mbps(40))
	eng := sim.New()
	n := New(g, eng, DefaultConfig())
	path, err := n.resolver.HostPath(ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := n.NewSession(ha, hb, path)
	n.ScheduleJoin(s, 0, rate.Mbps(15))
	n.Run()

	mid := path[1]
	n.ScheduleLinkFail(eng.Now()+time.Millisecond, mid, g.Link(mid).Reverse)
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.Stranded() {
		t.Fatal("session not stranded after losing its only route")
	}
	if s.Active() {
		t.Fatal("stranded session still active")
	}
	if n.StrandedSessions() != 1 {
		t.Fatalf("stranded count = %d", n.StrandedSessions())
	}
	if _, ok := s.Rate(); ok {
		t.Fatal("stranded session still reports a rate")
	}

	n.ScheduleLinkRestore(eng.Now()+time.Millisecond, mid, g.Link(mid).Reverse)
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Stranded() || !s.Active() {
		t.Fatal("session did not rejoin on restore")
	}
	if got, _ := s.Rate(); !got.Equal(rate.Mbps(15)) {
		t.Fatalf("rejoined rate = %v, want the original 15 Mbps demand", got)
	}
	if n.StrandedSessions() != 0 {
		t.Fatalf("stranded count after restore = %d", n.StrandedSessions())
	}
}

func TestJoinAfterFailReroutes(t *testing.T) {
	// The join fires after its resolved path broke: it must reroute at join
	// time rather than join across a failed link.
	g, ha, hb, top, _ := buildDiamond()
	eng := sim.New()
	n := New(g, eng, DefaultConfig())
	path, err := n.resolver.HostPath(ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := n.NewSession(ha, hb, path)
	n.ScheduleLinkFail(time.Millisecond, top[0][0], top[0][1])
	n.ScheduleJoin(s, 2*time.Millisecond, rate.Inf)
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Rate(); !got.Equal(rate.Mbps(25)) {
		t.Fatalf("rate = %v, want 25 Mbps via surviving route", got)
	}
}

func TestLeaveOfStrandedSessionDissolves(t *testing.T) {
	g, ha, hb := buildLine(rate.Mbps(40))
	eng := sim.New()
	n := New(g, eng, DefaultConfig())
	path, _ := n.resolver.HostPath(ha, hb)
	s, _ := n.NewSession(ha, hb, path)
	n.ScheduleJoin(s, 0, rate.Inf)
	mid := path[1]
	n.ScheduleLinkFail(time.Millisecond, mid, g.Link(mid).Reverse)
	n.ScheduleLeave(s, 2*time.Millisecond)
	n.ScheduleLinkRestore(3*time.Millisecond, mid, g.Link(mid).Reverse)
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Active() || s.Stranded() {
		t.Fatal("left session resurrected by restore")
	}
	if n.StrandedSessions() != 0 {
		t.Fatalf("stranded count = %d", n.StrandedSessions())
	}
}

// TestTransitStubReconfigurationEpochs is the acceptance scenario on the sim
// transport: a seeded TransitStub workload survives ≥3 link failures/restores
// and ≥2 capacity changes, re-converging to the exact water-filling rates
// (Validate) after every reconfiguration epoch.
func TestTransitStubReconfigurationEpochs(t *testing.T) {
	topo, err := topology.Generate(topology.Small, topology.LAN, 42)
	if err != nil {
		t.Fatal(err)
	}
	g := topo.Graph
	eng := sim.New()
	n := New(g, eng, DefaultConfig())

	hosts := topo.AddHosts(60)
	rng := rand.New(rand.NewSource(99))
	var sessions []*Session
	for i := 0; i < 30; i++ {
		src := hosts[i]
		dst := hosts[30+rng.Intn(30)]
		path, err := n.resolver.HostPath(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		s, err := n.NewSession(src, dst, path)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
		n.ScheduleJoin(s, time.Duration(rng.Int63n(int64(time.Millisecond))), rate.Inf)
	}
	epoch := func(name string, schedule func(at sim.Time)) {
		t.Helper()
		at := eng.Now() + time.Millisecond
		schedule(at)
		n.Run()
		if err := n.Validate(); err != nil {
			t.Fatalf("epoch %q: %v", name, err)
		}
		// Quiescence check: a virtual second with zero packets.
		before := n.Stats().Total()
		eng.RunUntil(eng.Now() + time.Second)
		if n.Stats().Total() != before {
			t.Fatalf("epoch %q: traffic after quiescence", name)
		}
	}
	epoch("initial join burst", func(sim.Time) {})

	// Pick router–router links actually in use by active sessions, so every
	// event disturbs real traffic.
	routerLinkInUse := func() graph.LinkID {
		for _, s := range sessions {
			cur := s.Current()
			if !cur.active {
				continue
			}
			for _, l := range cur.Path[1 : len(cur.Path)-1] {
				if g.LinkUp(l) {
					return l
				}
			}
		}
		t.Fatal("no in-use router link found")
		return graph.NoLink
	}

	var failedLinks []graph.LinkID
	for i := 0; i < 3; i++ {
		l := routerLinkInUse()
		failedLinks = append(failedLinks, l)
		epoch("fail", func(at sim.Time) { n.ScheduleLinkFail(at, l, g.Link(l).Reverse) })
		if i == 0 {
			epoch("shrink capacity", func(at sim.Time) {
				c := routerLinkInUse()
				n.ScheduleSetCapacity(at, rate.Mbps(37), c, g.Link(c).Reverse)
			})
		}
	}
	epoch("grow capacity", func(at sim.Time) {
		c := routerLinkInUse()
		n.ScheduleSetCapacity(at, rate.Mbps(444), c, g.Link(c).Reverse)
	})
	for _, l := range failedLinks {
		epoch("restore", func(at sim.Time) { n.ScheduleLinkRestore(at, l, g.Link(l).Reverse) })
	}

	active := 0
	for _, s := range sessions {
		if s.Active() {
			active++
		}
	}
	if active == 0 {
		t.Fatal("no sessions survived the scenario")
	}
}

// TestDynamicsDeterministic locks in that a topology-churn run is a pure
// function of its seed.
func TestDynamicsDeterministic(t *testing.T) {
	run := func() (uint64, map[int64]string) {
		topo, err := topology.Generate(topology.Small, topology.LAN, 7)
		if err != nil {
			t.Fatal(err)
		}
		g := topo.Graph
		eng := sim.New()
		n := New(g, eng, DefaultConfig())
		hosts := topo.AddHosts(40)
		rng := rand.New(rand.NewSource(11))
		var sessions []*Session
		for i := 0; i < 20; i++ {
			src, dst := hosts[i], hosts[20+rng.Intn(20)]
			path, err := n.resolver.HostPath(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			s, _ := n.NewSession(src, dst, path)
			sessions = append(sessions, s)
			n.ScheduleJoin(s, time.Duration(rng.Int63n(int64(time.Millisecond))), rate.Inf)
		}
		n.Run()
		for i := 0; i < 4; i++ {
			var l graph.LinkID
			for _, s := range sessions {
				cur := s.Current()
				if cur.active && len(cur.Path) > 2 {
					l = cur.Path[1]
					break
				}
			}
			at := eng.Now() + time.Millisecond
			switch i % 2 {
			case 0:
				n.ScheduleLinkFail(at, l, g.Link(l).Reverse)
			case 1:
				n.ScheduleSetCapacity(at, rate.Mbps(int64(50+i)), l, g.Link(l).Reverse)
			}
			n.Run()
			if err := n.Validate(); err != nil {
				t.Fatal(err)
			}
		}
		rates := make(map[int64]string)
		for i, s := range sessions {
			if r, ok := s.Rate(); ok {
				rates[int64(i)] = r.String()
			}
		}
		return n.Stats().Total(), rates
	}
	p1, r1 := run()
	p2, r2 := run()
	if p1 != p2 {
		t.Fatalf("packet totals differ: %d vs %d", p1, p2)
	}
	for k, v := range r1 {
		if r2[k] != v {
			t.Fatalf("session %d rate differs: %s vs %s", k, v, r2[k])
		}
	}
}

// TestRejoinMintsFreshIncarnation pins the fresh-ID rule for plain user
// rejoins: a session that leaves and joins again must continue as a
// successor incarnation (new protocol ID), never re-use the departed one —
// stale responses of the departed lifetime still in flight would otherwise
// be mistaken for the new lifetime's and corrupt link state machines.
func TestRejoinMintsFreshIncarnation(t *testing.T) {
	g, ha, hb := buildLine(rate.Mbps(40))
	eng := sim.New()
	n := New(g, eng, DefaultConfig())
	res := graph.NewResolver(g, 8)
	path, err := res.HostPath(ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	s, err := n.NewSession(ha, hb, path)
	if err != nil {
		t.Fatal(err)
	}
	orig := s.ID
	n.ScheduleJoin(s, 0, rate.Inf)
	// The leave lands mid-convergence and the rejoin chases it closely, the
	// exact shape that used to resurrect the departed ID.
	n.ScheduleLeave(s, 40*time.Microsecond)
	n.ScheduleJoin(s, 45*time.Microsecond, rate.Mbps(10))
	n.Run()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	cur := s.Current()
	if cur.ID == orig {
		t.Fatalf("rejoin re-used session ID %d; want a successor incarnation", orig)
	}
	if !cur.Active() {
		t.Fatal("rejoined session not active")
	}
	r, ok := cur.Rate()
	if !ok || !r.Equal(rate.Mbps(10)) {
		t.Fatalf("rejoined rate = %v (ok=%v), want 10mbps", r, ok)
	}
}
