// Topology dynamics for the simulated network: scheduled link capacity
// changes, failures and restorations, with session migration driven by the
// protocol's own primitives.
//
// The model is administrative reconfiguration ("fail by drain"): when a link
// goes down, every session crossing it departs through a normal Leave — whose
// control packets are allowed to traverse the failing link one last time to
// tear down table state — and a successor session (fresh ID) joins along a
// path that avoids the failed link. B-Neck's ordinary Join/Leave dynamics
// then re-establish max-min fairness and quiescence; there is no global
// reset. Sessions whose hosts become disconnected are parked ("stranded") and
// rejoin automatically, with their last demand, when a restore reconnects
// them. Capacity changes keep paths intact and instead reconfigure the
// RouterLink task in place (core.RouterLink.SetCapacity), which re-probes the
// crossing sessions.
//
// Routed sessions keep their pinned paths across restores by default. An
// optional path re-optimization policy (Config.PathPolicy, see
// internal/policy) sweeps the active population when a restore — or a
// capacity increase past the policy's threshold — signals that shorter
// paths may exist, and migrates sessions back through the same
// Leave → reroute → Join machinery.
package network

import (
	"bneck/internal/core"
	"bneck/internal/graph"
	"bneck/internal/rate"
	"bneck/internal/sim"
)

// ScheduleSetCapacity changes the capacity of the given directed links to c
// at virtual time at. Pass a link and its reverse to reconfigure a duplex
// pair, matching the paper's symmetric link model. Topology events are
// serial events: on a sharded engine they execute at a barrier, where
// mutating the graph and rerouting sessions across shards is safe.
func (n *Network) ScheduleSetCapacity(at sim.Time, c rate.Rate, links ...graph.LinkID) {
	ls := append([]graph.LinkID(nil), links...)
	n.globalAt(at, func() { n.applySetCapacity(c, ls) })
}

// ScheduleLinkFail takes the given directed links down at virtual time at and
// migrates the sessions crossing them. All listed links fail atomically
// before any session reroutes, so a duplex pair cannot leak a reroute onto
// its own reverse direction.
func (n *Network) ScheduleLinkFail(at sim.Time, links ...graph.LinkID) {
	ls := append([]graph.LinkID(nil), links...)
	n.globalAt(at, func() { n.applyFail(ls) })
}

// ScheduleLinkRestore brings the given directed links back up at virtual time
// at and readmits any stranded sessions whose hosts are reconnected.
func (n *Network) ScheduleLinkRestore(at sim.Time, links ...graph.LinkID) {
	ls := append([]graph.LinkID(nil), links...)
	n.globalAt(at, func() { n.applyRestore(ls) })
}

// StrandedSessions returns how many sessions are currently parked without a
// path.
func (n *Network) StrandedSessions() int { return len(n.stranded) }

// Migrations returns how many session reroutes link failures have forced.
// Policy-driven reroutes are counted separately by Reoptimizations.
func (n *Network) Migrations() uint64 { return n.migrated }

func (n *Network) applySetCapacity(c rate.Rate, links []graph.LinkID) {
	// Capacity increases past the policy's threshold fire a re-optimization
	// sweep: the upgrade is an operator signal that traffic belongs back on
	// the link (min-hop best paths themselves never depend on capacity), so
	// sessions whose best path crosses an upgraded link migrate on any
	// strict improvement, hysteresis bypassed.
	var upgraded map[graph.LinkID]bool
	for _, l := range links {
		old := n.g.Link(l).Capacity
		n.g.SetCapacity(l, c)
		n.oracleSetCapacity(l, c)
		if int(l) < len(n.links) && n.links[l] != nil {
			n.links[l].SetCapacity(c)
		}
		if int(l) < len(n.wires) && n.wires[l] != nil {
			n.wires[l].SetTx(n.txFor(c))
		}
		if n.cfg.PathPolicy.CapacityTriggers(old, c) {
			if upgraded == nil {
				upgraded = make(map[graph.LinkID]bool, len(links))
			}
			upgraded[l] = true
		}
	}
	if upgraded != nil {
		n.reoptimizeSessions(upgraded)
	}
	n.maybeRepartition()
}

func (n *Network) applyFail(links []graph.LinkID) {
	failed := make(map[graph.LinkID]bool, len(links))
	for _, l := range links {
		if n.g.LinkUp(l) {
			n.g.FailLink(l)
			// The mirror's fail contract — no live session may still cross the
			// link at the next flush — holds because the crossing sessions
			// migrate (oracleLeave + fresh-path oracleJoin) below, within this
			// same event.
			n.oracleFail(l)
			failed[l] = true
		}
	}
	if len(failed) == 0 {
		return
	}
	// Migrate affected sessions in creation order (determinism). Snapshot the
	// order first: migration appends successor sessions, whose fresh paths
	// need no second look.
	ids := append([]core.SessionID(nil), n.order...)
	for _, id := range ids {
		s := n.sessByID[id]
		if !s.active || !pathCrossesAny(s.Path, failed) {
			continue
		}
		n.migrate(s)
	}
	n.maybeRepartition()
}

func (n *Network) applyRestore(links []graph.LinkID) {
	restored := false
	for _, l := range links {
		if !n.g.LinkUp(l) {
			n.g.RestoreLink(l)
			n.oracleRestore(l)
			restored = true
		}
	}
	if !restored {
		return
	}
	// Readmit stranded sessions in strand order; those still unroutable stay
	// parked for the next restore.
	hadStranded := len(n.stranded) > 0
	if hadStranded {
		waiting := n.stranded
		n.stranded = nil
		for _, s := range waiting {
			path, err := n.resolver.HostPath(s.SrcHost, s.DstHost)
			if err != nil {
				n.stranded = append(n.stranded, s)
				continue
			}
			s.stranded = false
			n.markReconfigJoin(n.joinOnPath(s, path, s.strandedDemand))
		}
	}
	// Restore-triggered re-optimization: the restored link may have
	// re-enabled shorter paths, so the policy sweeps the active population
	// (a no-op under policy.Pinned). Readmitted sessions just resolved a
	// fresh shortest path and pass the sweep untouched.
	reopt := n.reoptimizeSessions(nil)
	if !hadStranded && reopt == 0 {
		return
	}
	n.maybeRepartition()
}

// reoptimizeSessions re-runs shortest-path over the active sessions in
// creation order and migrates — Leave, successor Join, fresh incarnation,
// the exact machinery failures use — every session the policy says is too
// far off its best path. upgraded, when non-nil, marks the capacity-trigger
// sweep: sessions whose best path crosses an upgraded link bypass the
// hysteresis. Runs in serial context (a barrier event when sharded), so the
// sweep is deterministic at every shard count. Returns how many sessions
// moved.
func (n *Network) reoptimizeSessions(upgraded map[graph.LinkID]bool) int {
	if !n.cfg.PathPolicy.Enabled() {
		return 0
	}
	moved := 0
	// Snapshot the order: migration appends successor sessions, whose fresh
	// shortest paths need no second look.
	ids := append([]core.SessionID(nil), n.order...)
	for _, id := range ids {
		s := n.sessByID[id]
		if !s.active {
			continue
		}
		best, err := n.resolver.HostPath(s.SrcHost, s.DstHost)
		if err != nil {
			continue // active sessions always have a path; belt and braces
		}
		bypass := upgraded != nil && pathCrossesAny(best, upgraded)
		if !n.cfg.PathPolicy.ShouldMigrate(len(s.Path), len(best), bypass) {
			continue
		}
		n.reroute(s, best)
		moved++
	}
	return moved
}

// reroute retires an active session through Leave and joins a successor on
// path — the migrate machinery, driven by the path policy instead of a
// failure.
func (n *Network) reroute(s *Session, path graph.Path) {
	demand := n.forceDepart(s)
	n.reoptimized++
	n.rejoinSuccessor(s, path, demand, "re-optimization")
}

// forceDepart retires an active session through Leave — the shared first
// half of every topology-driven reroute (failure migration and policy
// re-optimization) — and returns the demand its successor rejoins with.
func (n *Network) forceDepart(s *Session) rate.Rate {
	demand := s.src.Demand()
	n.beginTeardown(s)
	s.active = false
	s.departed = true
	s.src.Leave()
	n.oracleLeave(s)
	return demand
}

// rejoinSuccessor joins a fresh-ID successor of s on path — the shared
// second half of every topology-driven reroute. what names the caller in
// the impossible-path panic.
func (n *Network) rejoinSuccessor(s *Session, path graph.Path, demand rate.Rate, what string) {
	succ, err := n.NewSession(s.SrcHost, s.DstHost, path)
	if err != nil {
		// The resolver only returns valid up paths.
		panic("network: " + what + " produced invalid path: " + err.Error())
	}
	s.succ = succ
	n.markReconfigJoin(succ)
	n.join(succ, demand)
}

// migrate departs an active session through Leave and rejoins a successor on
// a surviving path, or strands the session if none exists.
func (n *Network) migrate(s *Session) {
	demand := n.forceDepart(s)
	path, err := n.resolver.HostPath(s.SrcHost, s.DstHost)
	if err != nil {
		s.stranded = true
		s.strandedDemand = demand
		n.stranded = append(n.stranded, s)
		return
	}
	n.migrated++
	n.rejoinSuccessor(s, path, demand, "migration")
}

// joinOrStrand runs a scheduled join, rerouting around links that failed
// since the session's path was resolved.
func (n *Network) joinOrStrand(s *Session, demand rate.Rate) {
	if s.stranded {
		// Already parked by a failure; the join's demand wins.
		s.strandedDemand = demand
		return
	}
	if n.pathUp(s.Path) {
		// joinOnPath applies the fresh-ID rule: a session rejoining after a
		// Leave gets a successor incarnation, so stale responses of the
		// departed lifetime can never be mistaken for the new one's.
		n.joinOnPath(s, s.Path, demand)
		return
	}
	path, err := n.resolver.HostPath(s.SrcHost, s.DstHost)
	if err != nil {
		s.stranded = true
		s.strandedDemand = demand
		n.stranded = append(n.stranded, s)
		return
	}
	n.joinOnPath(s, path, demand)
}

// joinOnPath (re)admits s along path and returns the session that actually
// joined. A session whose ID never carried traffic can simply adopt the
// path; otherwise a successor with a fresh ID joins, so straggler packets of
// the old incarnation cannot corrupt state on shared links.
func (n *Network) joinOnPath(s *Session, path graph.Path, demand rate.Rate) *Session {
	if !s.everJoined || buggyRejoinReuse {
		s.Path = path
		n.join(s, demand)
		return s
	}
	succ, err := n.NewSession(s.SrcHost, s.DstHost, path)
	if err != nil {
		panic("network: rejoin produced invalid path: " + err.Error())
	}
	s.succ = succ
	n.join(succ, demand)
	return succ
}

func (n *Network) join(s *Session, demand rate.Rate) {
	s.active = true
	s.everJoined = true
	s.joinedAt = n.globalNow()
	// Materialize the path's tasks and wires now, in serial context: window
	// execution on the sharded engine must never mutate the link tables.
	n.ensurePathTasks(s.Path)
	s.src.Join(demand)
	n.oracleJoin(s, demand)
}

// unstrand removes a parked session (a Leave arrived before any restore).
func (n *Network) unstrand(s *Session) {
	s.stranded = false
	s.departed = true
	for i, p := range n.stranded {
		if p == s {
			n.stranded = append(n.stranded[:i], n.stranded[i+1:]...)
			return
		}
	}
}

func pathCrossesAny(p graph.Path, links map[graph.LinkID]bool) bool {
	for _, l := range p {
		if links[l] {
			return true
		}
	}
	return false
}

func (n *Network) pathUp(p graph.Path) bool {
	for _, l := range p {
		if !n.g.LinkUp(l) {
			return false
		}
	}
	return true
}
