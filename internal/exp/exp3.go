package exp

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"bneck/internal/baseline"
	"bneck/internal/graph"
	"bneck/internal/metrics"
	"bneck/internal/network"
	"bneck/internal/rate"
	"bneck/internal/sim"
	"bneck/internal/topology"
	"bneck/internal/trace"
	"bneck/internal/waterfill"
)

// Exp3Config parameterizes Experiment 3 (Figures 7 and 8): B-Neck against
// non-quiescent protocols on a Medium/LAN network where Sessions join and
// Leavers leave during the first 5 ms. Paper scale: 100,000 joins, 10,000
// leaves.
type Exp3Config struct {
	Topology topology.Params
	Scenario topology.Scenario
	Sessions int
	Leavers  int
	// Window is the burst width (paper: 5 ms).
	Window time.Duration
	// SampleEvery is the error-sampling interval (paper: 3 ms).
	SampleEvery time.Duration
	// Horizon is how long each protocol runs (paper figures: 120 ms).
	Horizon time.Duration
	// Protocols to run: "bneck", "bfyz", "cg", "rcp".
	Protocols []string
	// ProbePeriod is the baselines' source re-probe interval.
	ProbePeriod time.Duration
	Seed        int64
	Progress    io.Writer
	// Workers bounds how many protocols run concurrently. Every protocol
	// gets its own engine over the shared (read-only) workload, so results
	// are byte-identical to a serial run. 0 or 1 runs serially; negative
	// selects GOMAXPROCS.
	Workers int
	// Shards selects the engine for the B-Neck run: ≤ 0 the classic serial
	// engine, ≥ 1 the sharded engine with that many shards (byte-identical
	// at every count). Baseline protocols always run serially.
	Shards int
	// WindowBatch tunes how many conservative windows the sharded engine
	// runs per coordinator fork/join (0 = engine default, 1 = no batching).
	// Purely a performance knob: results are identical at every setting.
	WindowBatch int
	// Speculate enables optimistic window execution on the sharded engine
	// (no effect with Shards <= 0): idle-cut barriers fork speculative
	// windows several lookaheads long, journaled and committed rollback-free.
	// Results are byte-identical with it on or off; only wall-clock changes.
	Speculate bool
}

// DefaultExp3 is the laptop-scale default (paper: 100,000/10,000).
func DefaultExp3() Exp3Config {
	return Exp3Config{
		Topology:    topology.Medium,
		Scenario:    topology.LAN,
		Sessions:    10_000,
		Leavers:     1_000,
		Window:      5 * time.Millisecond,
		SampleEvery: 3 * time.Millisecond,
		Horizon:     120 * time.Millisecond,
		Protocols:   []string{"bneck", "bfyz"},
		ProbePeriod: 5 * time.Millisecond,
		Seed:        1,
	}
}

// Exp3Series is one protocol's measurements.
type Exp3Series struct {
	Protocol string
	// SourceErr is Figure 7 left: the distribution over sessions of
	// 100·(assigned−fair)/fair, sampled over time.
	SourceErr metrics.Series
	// LinkErr is Figure 7 right: the distribution over bottleneck links of
	// the relative error of the summed session rates they carry.
	LinkErr metrics.Series
	// Bins is Figure 8: packets per sampling interval.
	Bins []metrics.Bin
	// Packets is the total control traffic over the horizon.
	Packets uint64
	// ConvergedAt is the first sample time after which the mean absolute
	// source error stays below 0.5% (0 if never).
	ConvergedAt time.Duration
	// Quiescent says whether the protocol stopped injecting traffic
	// (B-Neck only).
	Quiescent    bool
	QuiescenceAt time.Duration
}

// Exp3Result is the data behind Figures 7 and 8.
type Exp3Result struct {
	Series []Exp3Series
}

// exp3Workload is the shared instance: one topology and one session
// placement used identically by every protocol.
type exp3Workload struct {
	topo    *topology.Network
	paths   []graph.Path
	joins   []trace.Event
	leaves  []trace.Event
	joinAt  []time.Duration // per session
	leaveAt []time.Duration // per session; 0 = never leaves
	window  time.Duration
	stays   []int // session indexes active at the end

	mu      sync.Mutex                    // guards oracles (shared across protocol runs)
	oracles map[time.Duration]*exp3Oracle // per sample instant (burst phase)
	final   *exp3Oracle
}

// exp3Oracle is the max-min ground truth for one set of active sessions:
// the paper's error reference is the fair rates of the sessions present at
// the sampling instant.
type exp3Oracle struct {
	fair     map[int]float64
	bnLinks  []graph.LinkID // bottleneck links (directed)
	fairLoad map[graph.LinkID]float64
	crossers map[graph.LinkID][]int
}

// RunExperiment3 runs every requested protocol on the shared workload.
// Protocols run across cfg.Workers goroutines; the series order and content
// are identical to a serial run.
func RunExperiment3(cfg Exp3Config) (*Exp3Result, error) {
	// Reject typos before simulating anything: at paper scale a single
	// protocol run costs minutes, and RunParallel runs every job to
	// completion regardless of other jobs' failures.
	for _, p := range cfg.Protocols {
		switch p {
		case "bneck", "bfyz", "cg", "rcp":
		default:
			return nil, fmt.Errorf("exp3: unknown protocol %q", p)
		}
	}
	w, err := buildExp3Workload(cfg)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = 1
	}
	if workers != 1 {
		// Warm the burst-phase oracle cache up front so concurrent protocol
		// runs only read the workload (the mutex in oracleAt is a backstop).
		for t := cfg.SampleEvery; t <= cfg.Horizon && t < w.window; t += cfg.SampleEvery {
			if _, err := w.oracleAt(t); err != nil {
				return nil, err
			}
		}
	}
	series := make([]*Exp3Series, len(cfg.Protocols))
	errs := make([]error, len(cfg.Protocols))
	var progress *progressTracker
	if cfg.Progress != nil {
		progress = newProgressTracker(len(cfg.Protocols), func(line string) {
			fmt.Fprint(cfg.Progress, line)
		})
	}
	_ = RunParallel(len(cfg.Protocols), workers, func(i int) error {
		p := cfg.Protocols[i]
		var s *Exp3Series
		var err error
		switch p {
		case "bneck":
			s, err = runExp3BNeck(cfg, w)
		case "bfyz":
			s, err = runExp3Baseline(cfg, w, baseline.BFYZ{})
		case "cg":
			s, err = runExp3Baseline(cfg, w, baseline.CG{})
		case "rcp":
			s, err = runExp3Baseline(cfg, w, baseline.RCP{})
		default:
			errs[i] = fmt.Errorf("exp3: unknown protocol %q", p)
			if progress != nil {
				progress.report(i, "")
			}
			return errs[i]
		}
		if err != nil {
			errs[i] = fmt.Errorf("exp3 %s: %w", p, err)
			if progress != nil {
				progress.report(i, "")
			}
			return errs[i]
		}
		series[i] = s
		if progress != nil {
			progress.report(i, fmt.Sprintf(
				"exp3 %-6s packets=%-10d converged=%-10v quiescent=%t\n",
				s.Protocol, s.Packets, s.ConvergedAt, s.Quiescent))
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := &Exp3Result{}
	for _, s := range series {
		res.Series = append(res.Series, *s)
	}
	return res, nil
}

// buildExp3Workload creates the topology, sessions and schedules, and
// computes the final-configuration oracle: the fair rates of the sessions
// that remain, the bottleneck links, and their fair loads.
func buildExp3Workload(cfg Exp3Config) (*exp3Workload, error) {
	topo, err := topology.Generate(cfg.Topology, cfg.Scenario, cfg.Seed)
	if err != nil {
		return nil, err
	}
	w := &exp3Workload{topo: topo}

	// Place sessions directly (not via PlaceSessions: we need raw paths to
	// reuse across protocols).
	hosts := topo.AddHosts(2 * cfg.Sessions)
	rng := topo.Rand()
	g := topo.Graph
	res := graph.NewResolver(g, 256)
	type pair struct{ src, dst graph.NodeID }
	pairs := make([]pair, cfg.Sessions)
	for i := range pairs {
		src := hosts[i]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		pairs[i] = pair{src, dst}
	}
	// Resolve grouped by source router for cache locality, preserving index.
	order := make([]int, cfg.Sessions)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.HostRouter(pairs[order[a]].src) < g.HostRouter(pairs[order[b]].src)
	})
	w.paths = make([]graph.Path, cfg.Sessions)
	for _, i := range order {
		p, err := res.HostPath(pairs[i].src, pairs[i].dst)
		if err != nil {
			return nil, err
		}
		w.paths[i] = p
	}

	schedRng := rand.New(rand.NewSource(cfg.Seed + 17))
	w.joins = trace.Joins(0, cfg.Sessions, 0, cfg.Window, trace.Unbounded, schedRng)
	joinAt := make(map[int]time.Duration, cfg.Sessions)
	for _, ev := range w.joins {
		joinAt[ev.Session] = ev.At
	}
	all := make([]int, cfg.Sessions)
	for i := range all {
		all[i] = i
	}
	leavers := trace.Sample(all, cfg.Leavers, schedRng)
	// A leaver departs inside the window but strictly after its own join
	// (the paper's sessions leave during the same first 5 ms they joined in).
	w.leaves = make([]trace.Event, 0, len(leavers))
	for _, l := range leavers {
		after := joinAt[l] + time.Microsecond
		span := cfg.Window - after
		at := after
		if span > 0 {
			at += time.Duration(schedRng.Int63n(int64(span)))
		}
		w.leaves = append(w.leaves, trace.Event{At: at, Kind: trace.Leave, Session: l})
	}
	isLeaver := make(map[int]bool, len(leavers))
	for _, l := range leavers {
		isLeaver[l] = true
	}
	for i := 0; i < cfg.Sessions; i++ {
		if !isLeaver[i] {
			w.stays = append(w.stays, i)
		}
	}
	w.window = cfg.Window
	w.joinAt = make([]time.Duration, cfg.Sessions)
	w.leaveAt = make([]time.Duration, cfg.Sessions)
	for _, ev := range w.joins {
		w.joinAt[ev.Session] = ev.At
	}
	for _, ev := range w.leaves {
		w.leaveAt[ev.Session] = ev.At
	}

	w.oracles = make(map[time.Duration]*exp3Oracle)
	final, err := w.solveOracle(w.stays)
	if err != nil {
		return nil, err
	}
	w.final = final
	return w, nil
}

// solveOracle computes the max-min ground truth for a set of active session
// indexes.
func (w *exp3Workload) solveOracle(active []int) (*exp3Oracle, error) {
	g := w.topo.Graph
	linkIdx := make(map[graph.LinkID]int)
	var inst waterfill.Instance
	for _, i := range active {
		ws := waterfill.Session{Demand: rate.Inf}
		for _, l := range w.paths[i] {
			li, ok := linkIdx[l]
			if !ok {
				li = len(inst.Capacity)
				linkIdx[l] = li
				inst.Capacity = append(inst.Capacity, g.Link(l).Capacity)
			}
			ws.Path = append(ws.Path, li)
		}
		inst.Sessions = append(inst.Sessions, ws)
	}
	o := &exp3Oracle{
		fair:     make(map[int]float64, len(active)),
		fairLoad: make(map[graph.LinkID]float64),
		crossers: make(map[graph.LinkID][]int),
	}
	if len(active) == 0 {
		return o, nil
	}
	rates, err := waterfill.Solve(inst)
	if err != nil {
		return nil, err
	}
	load := make(map[graph.LinkID]rate.Rate)
	for k, i := range active {
		o.fair[i] = rates[k].Float64()
		for _, l := range w.paths[i] {
			load[l] = load[l].Add(rates[k])
			o.crossers[l] = append(o.crossers[l], i)
		}
	}
	// bnLinks orders linkErrs in sampleErrors, so iterate in sorted link
	// order rather than map order.
	links := make([]graph.LinkID, 0, len(load))
	for l := range load {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for _, l := range links {
		if load[l].Equal(g.Link(l).Capacity) {
			o.bnLinks = append(o.bnLinks, l)
			o.fairLoad[l] = load[l].Float64()
		}
	}
	return o, nil
}

// oracleAt returns the ground truth for the sessions active at time t.
// After the dynamics window closes the final oracle applies; during the
// burst, per-instant oracles are computed once and cached (they are shared
// by all protocols).
func (w *exp3Workload) oracleAt(t time.Duration) (*exp3Oracle, error) {
	if t >= w.window {
		return w.final, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if o, ok := w.oracles[t]; ok {
		return o, nil
	}
	var active []int
	for i := range w.paths {
		joined := w.joinAt[i] <= t
		left := w.leaveAt[i] > 0 && w.leaveAt[i] <= t
		if joined && !left {
			active = append(active, i)
		}
	}
	o, err := w.solveOracle(active)
	if err != nil {
		return nil, err
	}
	w.oracles[t] = o
	return o, nil
}

// sampleErrors computes the Figure 7 error distributions at instant t:
// sessions are measured against the max-min rates of the session set active
// at t, and only sessions holding an assigned rate contribute (a session the
// protocol has not yet answered has no "assigned rate" to be wrong about).
func (w *exp3Workload) sampleErrors(t time.Duration, assigned func(idx int) (float64, bool)) (srcErrs, linkErrs []float64, err error) {
	o, err := w.oracleAt(t)
	if err != nil {
		return nil, nil, err
	}
	// Iterate sessions in index order: srcErrs carries the append order into
	// the per-source error distribution.
	idxs := make([]int, 0, len(o.fair))
	for i := range o.fair {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	cur := make(map[int]float64, len(o.fair))
	for _, i := range idxs {
		a, ok := assigned(i)
		if !ok {
			continue
		}
		cur[i] = a
		srcErrs = append(srcErrs, metrics.RelativeErrorPct(a, o.fair[i]))
	}
	linkErrs = make([]float64, 0, len(o.bnLinks))
	for _, l := range o.bnLinks {
		var sum float64
		for _, i := range o.crossers[l] {
			sum += cur[i] // unassigned sessions contribute 0 offered load
		}
		linkErrs = append(linkErrs, metrics.RelativeErrorPct(sum, o.fairLoad[l]))
	}
	return srcErrs, linkErrs, nil
}

func runExp3BNeck(cfg Exp3Config, w *exp3Workload) (*Exp3Series, error) {
	netCfg := network.DefaultConfig()
	netCfg.BinSize = cfg.SampleEvery
	netCfg.Speculate = cfg.Speculate
	eng, net := newNet(w.topo.Graph, netCfg, cfg.Shards, cfg.WindowBatch)
	sessions := make([]*network.Session, len(w.paths))
	for i, p := range w.paths {
		s, err := net.NewSession(w.topo.Graph.Link(p[0]).From, w.topo.Graph.Link(p[len(p)-1]).To, p)
		if err != nil {
			return nil, err
		}
		sessions[i] = s
	}
	for _, ev := range w.joins {
		net.ScheduleJoin(sessions[ev.Session], ev.At, ev.Demand)
	}
	for _, ev := range w.leaves {
		net.ScheduleLeave(sessions[ev.Session], ev.At)
	}

	series := &Exp3Series{Protocol: "B-Neck"}
	var sampleErr error
	scheduleSampling(eng, cfg, func(at sim.Time) {
		src, link, err := w.sampleErrors(at, func(idx int) (float64, bool) {
			if r, ok := sessions[idx].Rate(); ok && sessions[idx].Active() {
				return r.Float64(), true
			}
			return 0, false
		})
		if err != nil {
			sampleErr = err
			return
		}
		series.SourceErr.Add(at, src)
		series.LinkErr.Add(at, link)
	})

	q := net.Run()
	if sampleErr != nil {
		return nil, sampleErr
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	eng.RunUntil(cfg.Horizon) // flush remaining samples; must stay silent
	series.Bins = net.Stats().Bins()
	series.Packets = net.Stats().Total()
	series.Quiescent = true
	series.QuiescenceAt = q
	series.ConvergedAt = convergedAt(series.SourceErr)
	return series, nil
}

func runExp3Baseline(cfg Exp3Config, w *exp3Workload, proto baseline.Protocol) (*Exp3Series, error) {
	eng := sim.New()
	bCfg := baseline.DefaultConfig()
	bCfg.Period = cfg.ProbePeriod
	bCfg.BinSize = cfg.SampleEvery
	bCfg.Seed = cfg.Seed + 23
	h := baseline.NewHarness(w.topo.Graph, eng, proto, bCfg)
	sessions := make([]*baseline.Session, len(w.paths))
	for i, p := range w.paths {
		s, err := h.NewSession(p, math.Inf(1))
		if err != nil {
			return nil, err
		}
		sessions[i] = s
	}
	for _, ev := range w.joins {
		h.ScheduleJoin(sessions[ev.Session], ev.At)
	}
	for _, ev := range w.leaves {
		h.ScheduleLeave(sessions[ev.Session], ev.At)
	}
	h.StartTicks()
	h.StopProbing(cfg.Horizon)

	series := &Exp3Series{Protocol: proto.Name()}
	var sampleErr error
	scheduleSampling(eng, cfg, func(at sim.Time) {
		src, link, err := w.sampleErrors(at, func(idx int) (float64, bool) {
			if sessions[idx].Active() && sessions[idx].Rate() > 0 {
				return sessions[idx].Rate(), true
			}
			return 0, false
		})
		if err != nil {
			sampleErr = err
			return
		}
		series.SourceErr.Add(at, src)
		series.LinkErr.Add(at, link)
	})

	eng.RunUntil(cfg.Horizon)
	if sampleErr != nil {
		return nil, sampleErr
	}
	series.Bins = h.Stats().Bins()
	series.Packets = h.Stats().Total()
	series.ConvergedAt = convergedAt(series.SourceErr)
	return series, nil
}

// scheduleSampling installs daemon sampling events every SampleEvery up to
// the horizon. On the sharded engine daemons are global (barrier) events, so
// the sample callback may read any session's state.
func scheduleSampling(eng engine, cfg Exp3Config, sample func(at sim.Time)) {
	for t := cfg.SampleEvery; t <= cfg.Horizon; t += cfg.SampleEvery {
		at := t
		eng.DaemonAt(at, func() { sample(at) })
	}
}

// convergedAt finds the first sample after which the mean absolute source
// error stays below 0.5%.
func convergedAt(s metrics.Series) time.Duration {
	const tol = 0.5
	conv := time.Duration(0)
	found := false
	for _, p := range s.Points {
		bad := math.Abs(p.Summary.Mean) > tol || math.Abs(p.Summary.Median) > tol
		if bad {
			found = false
			continue
		}
		if !found {
			conv = p.At
			found = true
		}
	}
	if !found {
		return 0
	}
	return conv
}
