package exp

import (
	"bneck/internal/graph"
	"bneck/internal/network"
	"bneck/internal/sim"
)

// engine is the driver surface the experiments need, satisfied by both the
// classic serial engine and the sharded engine.
type engine interface {
	Now() sim.Time
	DaemonAt(t sim.Time, fn func())
	Run() sim.Time
	RunUntil(t sim.Time)
	Events() uint64
}

// newNet builds a network on the engine the Shards knob selects: ≤ 0 runs on
// the classic serial engine, ≥ 1 runs on the sharded engine with that many
// shards. All runs are byte-identical for every knob setting — the classic
// engine and the 1-shard sharded engine execute the same creator-keyed
// order — and shard counts above one execute a single run across that many
// cores. windowBatch tunes how many conservative windows the sharded engine
// runs per fork/join (0 keeps the engine default, 1 disables batching);
// results never depend on it.
func newNet(g *graph.Graph, cfg network.Config, shards, windowBatch int) (engine, *network.Network) {
	if shards >= 1 {
		she := sim.NewSharded(shards)
		if windowBatch > 0 {
			she.SetWindowBatch(windowBatch)
		}
		return she, network.NewSharded(g, she, cfg)
	}
	eng := sim.New()
	return eng, network.New(g, eng, cfg)
}
