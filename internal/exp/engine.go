package exp

import (
	"bneck/internal/graph"
	"bneck/internal/network"
	"bneck/internal/sim"
)

// engine is the driver surface the experiments need, satisfied by both the
// classic serial engine and the sharded engine.
type engine interface {
	Now() sim.Time
	DaemonAt(t sim.Time, fn func())
	Run() sim.Time
	RunUntil(t sim.Time)
	Events() uint64
}

// newNet builds a network on the engine the Shards knob selects: ≤ 0 runs on
// the classic serial engine (the historical event order), ≥ 1 runs on the
// sharded engine with that many shards. Sharded runs are byte-identical for
// every shard count — one shard is the serial reference — and shard counts
// above one execute a single run across that many cores.
func newNet(g *graph.Graph, cfg network.Config, shards int) (engine, *network.Network) {
	if shards >= 1 {
		she := sim.NewSharded(shards)
		return she, network.NewSharded(g, she, cfg)
	}
	eng := sim.New()
	return eng, network.New(g, eng, cfg)
}
