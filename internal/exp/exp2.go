package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"bneck/internal/metrics"
	"bneck/internal/network"
	"bneck/internal/topology"
	"bneck/internal/trace"
)

// Exp2Config parameterizes Experiment 2 (Figure 6): five phases of session
// dynamics on a Medium/LAN network, with per-packet-type traffic binned over
// time. Paper scale: Base=100,000, Dyn=20,000.
type Exp2Config struct {
	Topology topology.Params
	Scenario topology.Scenario
	// Base sessions join in phase 1.
	Base int
	// Dyn sessions leave (phase 2), change rates (phase 3), join (phase 4),
	// and do all three at once (phase 5).
	Dyn int
	// Window is the burst width of each phase's dynamics (paper: 1 ms).
	Window time.Duration
	// Gap separates a phase's quiescence from the next phase's burst.
	Gap time.Duration
	// BinSize is the traffic aggregation interval (paper: 5 ms).
	BinSize  time.Duration
	Seed     int64
	Validate bool
	Progress io.Writer
	// Shards selects the engine: ≤ 0 the classic serial engine, ≥ 1 the
	// sharded engine with that many shards (byte-identical at every count).
	Shards int
	// WindowBatch tunes how many conservative windows the sharded engine
	// runs per coordinator fork/join (0 = engine default, 1 = no batching).
	// Purely a performance knob: results are identical at every setting.
	WindowBatch int
	// Speculate enables optimistic window execution on the sharded engine
	// (no effect with Shards <= 0): idle-cut barriers fork speculative
	// windows several lookaheads long, journaled and committed rollback-free.
	// Results are byte-identical with it on or off; only wall-clock changes.
	Speculate bool
}

// DefaultExp2 is the laptop-scale default (paper: 100,000/20,000).
func DefaultExp2() Exp2Config {
	return Exp2Config{
		Topology: topology.Medium,
		Scenario: topology.LAN,
		Base:     10_000,
		Dyn:      2_000,
		Window:   time.Millisecond,
		Gap:      10 * time.Millisecond,
		BinSize:  5 * time.Millisecond,
		Seed:     1,
		Validate: true,
	}
}

// Exp2Phase describes one phase of Figure 6.
type Exp2Phase struct {
	Name string
	// Start is when the phase's dynamics burst begins.
	Start time.Duration
	// Quiescence is when the network went quiescent again.
	Quiescence time.Duration
	// Took = Quiescence - Start, the number the paper quotes per phase.
	Took time.Duration
	// Packets sent during the phase.
	Packets uint64
}

// Exp2Result is the data behind Figure 6.
type Exp2Result struct {
	Phases []Exp2Phase
	// Bins are per-interval packet counts by type over the whole run.
	Bins    []metrics.Bin
	Packets uint64
}

// RunExperiment2 executes the five phases.
func RunExperiment2(cfg Exp2Config) (*Exp2Result, error) {
	if cfg.Window <= 0 {
		cfg.Window = time.Millisecond
	}
	if cfg.Gap <= 0 {
		cfg.Gap = 10 * time.Millisecond
	}
	if cfg.Base < cfg.Dyn {
		return nil, fmt.Errorf("exp2: base %d < dyn %d", cfg.Base, cfg.Dyn)
	}
	topo, err := topology.Generate(cfg.Topology, cfg.Scenario, cfg.Seed)
	if err != nil {
		return nil, err
	}
	netCfg := network.DefaultConfig()
	netCfg.BinSize = cfg.BinSize
	netCfg.Speculate = cfg.Speculate
	eng, net := newNet(topo.Graph, netCfg, cfg.Shards, cfg.WindowBatch)

	// Sessions: base (phase 1) + dyn (phase 4) + dyn (phase 5) joiners.
	total := cfg.Base + 2*cfg.Dyn
	sessions, err := PlaceSessions(topo, net, total)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	demands := trace.MixedDemands(0.5, 1, 100)

	res := &Exp2Result{}
	active := make([]int, 0, total) // indexes of currently active sessions
	lastPackets := uint64(0)

	runPhase := func(name string, start time.Duration, events []trace.Event) error {
		for _, ev := range events {
			s := sessions[ev.Session]
			switch ev.Kind {
			case trace.Join:
				net.ScheduleJoin(s, ev.At, ev.Demand)
			case trace.Leave:
				net.ScheduleLeave(s, ev.At)
			case trace.Change:
				net.ScheduleChange(s, ev.At, ev.Demand)
			}
		}
		q := net.Run()
		if cfg.Validate {
			if err := net.Validate(); err != nil {
				return fmt.Errorf("phase %q: %w", name, err)
			}
		}
		pk := net.Stats().Total()
		res.Phases = append(res.Phases, Exp2Phase{
			Name:       name,
			Start:      start,
			Quiescence: q,
			Took:       q - start,
			Packets:    pk - lastPackets,
		})
		lastPackets = pk
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "exp2 phase %-22s start=%-10v quiescent=%-10v took=%v\n",
				name, start, q, q-start)
		}
		return nil
	}

	// Phase 1: Base sessions join.
	joins := trace.Joins(0, cfg.Base, 0, cfg.Window, trace.Unbounded, rng)
	for i := 0; i < cfg.Base; i++ {
		active = append(active, i)
	}
	if err := runPhase(fmt.Sprintf("join %d", cfg.Base), 0, joins); err != nil {
		return nil, err
	}

	// Phase 2: Dyn sessions leave.
	start := eng.Now() + cfg.Gap
	leavers := trace.Sample(active, cfg.Dyn, rng)
	active = removeAll(active, leavers)
	if err := runPhase(fmt.Sprintf("leave %d", cfg.Dyn), start,
		trace.Leaves(leavers, start, cfg.Window, rng)); err != nil {
		return nil, err
	}

	// Phase 3: Dyn sessions change their maximum rate.
	start = eng.Now() + cfg.Gap
	changers := trace.Sample(active, cfg.Dyn, rng)
	if err := runPhase(fmt.Sprintf("change %d", cfg.Dyn), start,
		trace.Changes(changers, start, cfg.Window, demands, rng)); err != nil {
		return nil, err
	}

	// Phase 4: Dyn new sessions join.
	start = eng.Now() + cfg.Gap
	joins = trace.Joins(cfg.Base, cfg.Dyn, start, cfg.Window, trace.Unbounded, rng)
	for i := cfg.Base; i < cfg.Base+cfg.Dyn; i++ {
		active = append(active, i)
	}
	if err := runPhase(fmt.Sprintf("join %d", cfg.Dyn), start, joins); err != nil {
		return nil, err
	}

	// Phase 5: Dyn join + Dyn leave + Dyn change, all at once.
	start = eng.Now() + cfg.Gap
	joins = trace.Joins(cfg.Base+cfg.Dyn, cfg.Dyn, start, cfg.Window, trace.Unbounded, rng)
	leavers = trace.Sample(active, cfg.Dyn, rng)
	active = removeAll(active, leavers)
	changers = trace.Sample(active, cfg.Dyn, rng)
	mixed := trace.Merge(
		joins,
		trace.Leaves(leavers, start, cfg.Window, rng),
		trace.Changes(changers, start, cfg.Window, demands, rng),
	)
	if err := runPhase(fmt.Sprintf("mixed 3x%d", cfg.Dyn), start, mixed); err != nil {
		return nil, err
	}

	res.Bins = net.Stats().Bins()
	res.Packets = net.Stats().Total()
	return res, nil
}
