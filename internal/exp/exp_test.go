package exp

import (
	"strings"
	"testing"
	"time"

	"bneck/internal/topology"
)

func smallExp1() Exp1Config {
	cfg := DefaultExp1()
	cfg.Sizes = []topology.Params{topology.Small}
	cfg.Scenarios = []topology.Scenario{topology.LAN, topology.WAN}
	cfg.SessionCounts = []int{10, 100}
	return cfg
}

func TestExperiment1SmallScale(t *testing.T) {
	rows, err := RunExperiment1(smallExp1())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Quiescence <= 0 {
			t.Fatalf("%+v: no quiescence time", r)
		}
		if r.Packets == 0 {
			t.Fatalf("%+v: no packets", r)
		}
		// The paper's probe-cycle accounting: at least 2·pathlen packets per
		// session (join + response), so ≥ 4 per session on any topology.
		if r.PacketsPerSession < 4 {
			t.Fatalf("%+v: implausibly few packets per session", r)
		}
	}
	// Figure 5 shape: more sessions → more packets; WAN quiescence slower
	// than LAN at equal load (propagation dominates).
	byKey := map[string]Exp1Row{}
	for _, r := range rows {
		byKey[r.Scenario+string(rune(r.Sessions))] = r
	}
	for _, scen := range []string{"LAN", "WAN"} {
		if byKey[scen+string(rune(10))].Packets >= byKey[scen+string(rune(100))].Packets {
			t.Fatalf("packets did not grow with sessions in %s", scen)
		}
	}
	if byKey["WAN"+string(rune(100))].Quiescence <= byKey["LAN"+string(rune(100))].Quiescence {
		t.Fatalf("WAN quiescence not slower than LAN")
	}
	out := FormatExp1(rows)
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "Small") {
		t.Fatalf("FormatExp1 output malformed:\n%s", out)
	}
}

func TestExperiment2SmallScale(t *testing.T) {
	cfg := DefaultExp2()
	cfg.Topology = topology.Small
	cfg.Base = 400
	cfg.Dyn = 80
	res, err := RunExperiment2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 5 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	for i, p := range res.Phases {
		if p.Took <= 0 {
			t.Fatalf("phase %d (%s) took %v", i, p.Name, p.Took)
		}
		if p.Packets == 0 {
			t.Fatalf("phase %d (%s) sent no packets", i, p.Name)
		}
	}
	// Quiescence between phases: there must exist empty bins between phase
	// bursts (B-Neck stops talking).
	sawEmpty := false
	for _, b := range res.Bins {
		if b.Total == 0 {
			sawEmpty = true
		}
	}
	if !sawEmpty && len(res.Bins) > 3 {
		t.Fatalf("no quiet interval found across %d bins", len(res.Bins))
	}
	out := FormatExp2(res)
	if !strings.Contains(out, "Figure 6") {
		t.Fatalf("FormatExp2 output malformed")
	}
}

func TestExperiment3SmallScale(t *testing.T) {
	cfg := DefaultExp3()
	cfg.Topology = topology.Small
	cfg.Sessions = 300
	cfg.Leavers = 30
	cfg.Horizon = 100 * time.Millisecond
	res, err := RunExperiment3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	bn, bf := res.Series[0], res.Series[1]
	if bn.Protocol != "B-Neck" || bf.Protocol != "BFYZ" {
		t.Fatalf("protocols = %s, %s", bn.Protocol, bf.Protocol)
	}
	if !bn.Quiescent {
		t.Fatalf("B-Neck not quiescent")
	}
	if bn.ConvergedAt == 0 {
		t.Fatalf("B-Neck never converged: %+v", bn.SourceErr.Points[len(bn.SourceErr.Points)-1])
	}
	// Figure 8 shape: B-Neck's traffic dies at quiescence (its bins stop
	// growing there); BFYZ keeps sending until the horizon.
	lastBn := bn.Bins[len(bn.Bins)-1]
	if lastBn.Start > bn.QuiescenceAt {
		t.Fatalf("B-Neck sent packets at %v, after quiescence %v", lastBn.Start, bn.QuiescenceAt)
	}
	if bn.QuiescenceAt >= cfg.Horizon/2 {
		t.Fatalf("B-Neck quiescence suspiciously late: %v", bn.QuiescenceAt)
	}
	lastBf := bf.Bins[len(bf.Bins)-1]
	if lastBf.Start < cfg.Horizon-2*cfg.SampleEvery {
		t.Fatalf("BFYZ went quiet at %v (must keep probing to %v)", lastBf.Start, cfg.Horizon)
	}
	bfTail := uint64(0)
	for _, b := range bf.Bins[len(bf.Bins)*3/4:] {
		bfTail += b.Total
	}
	if bfTail == 0 {
		t.Fatalf("BFYZ went quiet (must keep probing)")
	}
	// Figure 7 shape: B-Neck's transient errors are conservative (median
	// never positive), BFYZ overshoots at some point.
	for _, p := range bn.SourceErr.Points {
		if p.Summary.Median > 0.01 {
			t.Fatalf("B-Neck median error positive at %v: %+v", p.At, p.Summary)
		}
	}
	sawOver := false
	for _, p := range bf.SourceErr.Points {
		if p.Summary.P90 > 0.5 {
			sawOver = true
		}
	}
	if !sawOver {
		t.Fatalf("BFYZ never overestimated")
	}
	out := FormatExp3(res)
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "Figure 8") {
		t.Fatalf("FormatExp3 output malformed")
	}
}

func TestExperiment3BaselinesCGRCP(t *testing.T) {
	cfg := DefaultExp3()
	cfg.Topology = topology.Small
	cfg.Sessions = 100
	cfg.Leavers = 0
	cfg.Horizon = 60 * time.Millisecond
	cfg.Protocols = []string{"cg", "rcp"}
	res, err := RunExperiment3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if s.Quiescent {
			t.Fatalf("%s claims quiescence", s.Protocol)
		}
		if s.Packets == 0 {
			t.Fatalf("%s sent nothing", s.Protocol)
		}
		if len(s.SourceErr.Points) == 0 {
			t.Fatalf("%s has no samples", s.Protocol)
		}
	}
}

func TestExperiment3UnknownProtocol(t *testing.T) {
	cfg := DefaultExp3()
	cfg.Topology = topology.Small
	cfg.Sessions = 10
	cfg.Leavers = 0
	cfg.Protocols = []string{"nope"}
	if _, err := RunExperiment3(cfg); err == nil {
		t.Fatalf("expected error")
	}
}

func TestExp2RejectsBadConfig(t *testing.T) {
	cfg := DefaultExp2()
	cfg.Base = 10
	cfg.Dyn = 20
	if _, err := RunExperiment2(cfg); err == nil {
		t.Fatalf("expected error for dyn > base")
	}
}
