package exp

import (
	"runtime"
	"sync"
)

// RunParallel invokes job(0), …, job(n-1) on up to `workers` goroutines and
// returns the error of the lowest-index failing job, if any. Every job runs
// exactly once regardless of other jobs' failures, so results indexed by job
// number are complete and identical to a serial sweep — parallelism must
// never change experiment output, only wall time.
//
// workers <= 0 selects GOMAXPROCS; workers == 1 runs the jobs inline in
// index order with no goroutines at all.
func RunParallel(n, workers int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := job(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// progressTracker serializes per-job progress reporting for a parallel
// sweep so lines appear in job-index order (exactly the serial output):
// each completed job hands in its line, and the tracker flushes the
// contiguous prefix of completed jobs.
type progressTracker struct {
	mu      sync.Mutex
	lines   []string
	done    []bool
	next    int
	emit    func(string)
	enabled bool
}

func newProgressTracker(n int, emit func(string)) *progressTracker {
	return &progressTracker{
		lines:   make([]string, n),
		done:    make([]bool, n),
		emit:    emit,
		enabled: emit != nil,
	}
}

// report records job i's progress line and flushes every line whose
// predecessors have all reported.
func (p *progressTracker) report(i int, line string) {
	if !p.enabled {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lines[i] = line
	p.done[i] = true
	for p.next < len(p.done) && p.done[p.next] {
		p.emit(p.lines[p.next])
		p.lines[p.next] = ""
		p.next++
	}
}
