package exp

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"bneck/internal/graph"
	"bneck/internal/topology"
)

func hashTopology(n *topology.Internet) uint64 {
	h := fnv.New64a()
	g := n.Graph
	levels := n.Hierarchy()
	for i := 0; i < g.NumNodes(); i++ {
		nd := g.Node(graph.NodeID(i))
		fmt.Fprintf(h, "n%d|%d|%s|%d|%d\n", nd.ID, nd.Kind, nd.Name, levels[0][i], levels[1][i])
	}
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(graph.LinkID(i))
		fmt.Fprintf(h, "l%d|%d>%d|%v|%v\n", l.ID, l.From, l.To, l.Capacity, l.Propagation)
	}
	return h.Sum64()
}

// TestInternetPaperValidated pins the smallest rung end to end: generated
// topology, hierarchical partition, join burst, oracle validation.
func TestInternetPaperValidated(t *testing.T) {
	res, err := RunInternet(InternetConfig{
		Params:   topology.InternetPaper,
		Sessions: 80,
		Seed:     1,
		Shards:   2,
		Validate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards < 2 {
		t.Fatalf("hierarchical partition used %d shards, want 2", res.Shards)
	}
	if res.Lookahead <= 0 {
		t.Fatalf("lookahead = %v, want > 0", res.Lookahead)
	}
	t.Logf("paper rung: %d routers, %d sessions, q=%v, %d packets, lookahead %v",
		res.Routers, res.Sessions, res.Quiescence, res.Packets, res.Lookahead)
}

// TestInternetDeterministicAcrossEngineKnobs is the PR 8 determinism
// satellite: topology generation must be byte-identical for a fixed seed no
// matter which shards/batch/speculate setting the surrounding run uses, and
// the runs themselves must produce identical results at every setting.
func TestInternetDeterministicAcrossEngineKnobs(t *testing.T) {
	base, err := topology.GenerateInternet(topology.InternetPaper, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := hashTopology(base)
	type knob struct {
		shards, batch int
		spec          bool
	}
	knobs := []knob{
		{0, 0, false}, // classic serial engine
		{1, 0, false},
		{2, 1, false},
		{2, 4, false},
		{2, 0, true},
		{4, 0, false},
		{4, 8, true},
	}
	var refQ time.Duration
	var refPkts uint64
	for i, k := range knobs {
		res, err := RunInternet(InternetConfig{
			Params:      topology.InternetPaper,
			Sessions:    60,
			Seed:        9,
			Shards:      k.shards,
			WindowBatch: k.batch,
			Speculate:   k.spec,
			Validate:    true,
		})
		if err != nil {
			t.Fatalf("knobs %+v: %v", k, err)
		}
		if i == 0 {
			refQ, refPkts = time.Duration(res.Quiescence), res.Packets
		} else if time.Duration(res.Quiescence) != refQ || res.Packets != refPkts {
			t.Fatalf("knobs %+v diverged: q=%v pkts=%d, want q=%v pkts=%d",
				k, time.Duration(res.Quiescence), res.Packets, refQ, refPkts)
		}
		// Regenerate with the same seed after the run: engine knobs must not
		// perturb the generator's seed-funneled RNG stream.
		again, err := topology.GenerateInternet(topology.InternetPaper, 9)
		if err != nil {
			t.Fatal(err)
		}
		if got := hashTopology(again); got != want {
			t.Fatalf("knobs %+v: topology hash %x, want %x", k, got, want)
		}
	}
}

// TestInternetGlobalSmoke is the CI -short internet smoke: the full
// 10k-router global topology with a scaled-down session count, 4 shards,
// speculation on. It runs in short mode by design — the point is that the
// internet rung stays exercised in every CI matrix cell.
func TestInternetGlobalSmoke(t *testing.T) {
	res, err := RunInternet(InternetConfig{
		Params:    topology.InternetGlobal,
		Sessions:  200,
		Seed:      2,
		Shards:    4,
		Speculate: true,
		Validate:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Routers < 10000 {
		t.Fatalf("global rung has %d routers, want ≥ 10000", res.Routers)
	}
	if res.Shards != 4 {
		t.Fatalf("partition used %d shards, want 4", res.Shards)
	}
	t.Logf("global rung: %d routers, %d links, q=%v, %d packets, %d events, lookahead %v, spec %+v",
		res.Routers, res.Links, res.Quiescence, res.Packets, res.Events, res.Lookahead, res.Spec)
}

// TestInternetHierarchicalVsFlat pins the partitioner ablation: the
// label-driven cut must hold at least the shard count the flat
// contract-and-grow sweep finds on the metro rung, keep a positive
// lookahead, and — partitioning being pure scheduling — produce exactly
// the same results.
func TestInternetHierarchicalVsFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("metro-rung comparison is not part of the short smoke")
	}
	run := func(flat bool) InternetResult {
		res, err := RunInternet(InternetConfig{
			Params:   topology.InternetMetro,
			Sessions: 300,
			Seed:     4,
			Shards:   8,
			Flat:     flat,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hier, flat := run(false), run(true)
	if hier.Quiescence != flat.Quiescence || hier.Packets != flat.Packets {
		t.Fatalf("partitioner changed results: hier q=%v/%d, flat q=%v/%d",
			hier.Quiescence, hier.Packets, flat.Quiescence, flat.Packets)
	}
	if hier.Shards < flat.Shards {
		t.Fatalf("hierarchical cut uses %d shards, flat %d", hier.Shards, flat.Shards)
	}
	if hier.Lookahead <= 0 {
		t.Fatalf("hierarchical lookahead %v", hier.Lookahead)
	}
	t.Logf("8-way metro rung: hierarchical %d shards lookahead %v; flat %d shards lookahead %v",
		hier.Shards, hier.Lookahead, flat.Shards, flat.Lookahead)
}
