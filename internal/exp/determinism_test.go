package exp

import (
	"bytes"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"bneck/internal/topology"
)

// The experiments must be bit-for-bit reproducible from their seeds — the
// property that lets EXPERIMENTS.md quote exact numbers.

func TestExp1Deterministic(t *testing.T) {
	cfg := DefaultExp1()
	cfg.Sizes = []topology.Params{topology.Small}
	cfg.Scenarios = []topology.Scenario{topology.LAN}
	cfg.SessionCounts = []int{200}
	run := func() []Exp1Row {
		rows, err := RunExperiment1(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			rows[i].Wall = 0 // wall time legitimately differs
		}
		return rows
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("experiment 1 not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestExp1ParallelMatchesSerial locks in RunParallel's contract: a parallel
// sweep must produce the same rows, the same CSV bytes, and the same
// progress lines as a serial one.
func TestExp1ParallelMatchesSerial(t *testing.T) {
	base := DefaultExp1()
	base.Sizes = []topology.Params{topology.Small}
	base.Scenarios = []topology.Scenario{topology.LAN, topology.WAN}
	base.SessionCounts = []int{50, 150, 400}
	run := func(workers int) ([]Exp1Row, []byte, []byte) {
		cfg := base
		cfg.Workers = workers
		var progress bytes.Buffer
		cfg.Progress = &progress
		rows, err := RunExperiment1(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			rows[i].Wall = 0
		}
		var csv bytes.Buffer
		if err := WriteExp1CSV(&csv, rows); err != nil {
			t.Fatal(err)
		}
		return rows, csv.Bytes(), progress.Bytes()
	}
	serialRows, serialCSV, serialProgress := run(1)
	parallelRows, parallelCSV, parallelProgress := run(4)
	if !reflect.DeepEqual(serialRows, parallelRows) {
		t.Fatalf("parallel rows differ from serial:\n%+v\n%+v", serialRows, parallelRows)
	}
	if !bytes.Equal(serialCSV, parallelCSV) {
		t.Fatalf("parallel CSV differs from serial:\n%s\n%s", serialCSV, parallelCSV)
	}
	if !bytes.Equal(serialProgress, parallelProgress) {
		t.Fatalf("parallel progress differs from serial:\n%s\n%s", serialProgress, parallelProgress)
	}
}

func TestExp3ParallelMatchesSerial(t *testing.T) {
	base := DefaultExp3()
	base.Topology = topology.Small
	base.Sessions = 150
	base.Leavers = 15
	base.Horizon = 40 * time.Millisecond
	base.Protocols = []string{"bneck", "bfyz", "cg", "rcp"}
	run := func(workers int) *Exp3Result {
		cfg := base
		cfg.Workers = workers
		res, err := RunExperiment3(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(1), run(4); !reflect.DeepEqual(a, b) {
		t.Fatal("experiment 3 parallel result differs from serial")
	}
}

func TestRunParallel(t *testing.T) {
	for _, workers := range []int{-1, 1, 3, 16} {
		var calls atomic.Int64
		out := make([]int, 100)
		if err := RunParallel(len(out), workers, func(i int) error {
			calls.Add(1)
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls.Load() != 100 {
			t.Fatalf("workers=%d: %d calls", workers, calls.Load())
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: job %d not run (got %d)", workers, i, v)
			}
		}
	}
	// The reported error is the lowest-index failure, and later jobs still
	// run (results must not depend on scheduling).
	errA, errB := errors.New("a"), errors.New("b")
	var ran atomic.Int64
	err := RunParallel(10, 4, func(i int) error {
		ran.Add(1)
		switch i {
		case 7:
			return errB
		case 3:
			return errA
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want lowest-index error", err)
	}
	if ran.Load() != 10 {
		t.Fatalf("ran = %d, want all jobs despite failures", ran.Load())
	}
	if err := RunParallel(0, 4, func(int) error { return errA }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}

func TestExp2Deterministic(t *testing.T) {
	cfg := DefaultExp2()
	cfg.Topology = topology.Small
	cfg.Base = 200
	cfg.Dyn = 40
	run := func() *Exp2Result {
		res, err := RunExperiment2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Phases, b.Phases) {
		t.Fatalf("experiment 2 phases differ:\n%+v\n%+v", a.Phases, b.Phases)
	}
	if !reflect.DeepEqual(a.Bins, b.Bins) {
		t.Fatalf("experiment 2 bins differ")
	}
}

func TestExp3Deterministic(t *testing.T) {
	cfg := DefaultExp3()
	cfg.Topology = topology.Small
	cfg.Sessions = 150
	cfg.Leavers = 15
	cfg.Horizon = 40 * time.Millisecond
	run := func() *Exp3Result {
		res, err := RunExperiment3(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("experiment 3 not deterministic")
	}
}
