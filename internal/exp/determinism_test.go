package exp

import (
	"reflect"
	"testing"
	"time"

	"bneck/internal/topology"
)

// The experiments must be bit-for-bit reproducible from their seeds — the
// property that lets EXPERIMENTS.md quote exact numbers.

func TestExp1Deterministic(t *testing.T) {
	cfg := DefaultExp1()
	cfg.Sizes = []topology.Params{topology.Small}
	cfg.Scenarios = []topology.Scenario{topology.LAN}
	cfg.SessionCounts = []int{200}
	run := func() []Exp1Row {
		rows, err := RunExperiment1(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			rows[i].Wall = 0 // wall time legitimately differs
		}
		return rows
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("experiment 1 not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestExp2Deterministic(t *testing.T) {
	cfg := DefaultExp2()
	cfg.Topology = topology.Small
	cfg.Base = 200
	cfg.Dyn = 40
	run := func() *Exp2Result {
		res, err := RunExperiment2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Phases, b.Phases) {
		t.Fatalf("experiment 2 phases differ:\n%+v\n%+v", a.Phases, b.Phases)
	}
	if !reflect.DeepEqual(a.Bins, b.Bins) {
		t.Fatalf("experiment 2 bins differ")
	}
}

func TestExp3Deterministic(t *testing.T) {
	cfg := DefaultExp3()
	cfg.Topology = topology.Small
	cfg.Sessions = 150
	cfg.Leavers = 15
	cfg.Horizon = 40 * time.Millisecond
	run := func() *Exp3Result {
		res, err := RunExperiment3(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("experiment 3 not deterministic")
	}
}
