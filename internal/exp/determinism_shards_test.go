package exp

import (
	"bytes"
	"testing"
	"time"

	"bneck/internal/topology"
)

// The tentpole acceptance criteria: a run emits byte-identical experiment
// CSVs on the classic serial engine and on the sharded engine at every shard
// count and window-batch setting. One shard is the sharded-serial reference
// — a single goroutine popping one heap — and the classic engine executes
// the same creator-keyed order, so all three layers of knobs (engine,
// shards, batching) are pure performance levers. The suites pin
// serial-vs-sharded equality for Experiment 1 (static join burst) and
// Experiment 4 (topology churn), on both propagation models — the LAN cells
// exercise the batched short-window path, the WAN cells the wide windows.

// exp1ShardCSV runs exp1 with shards = -1 meaning the classic serial engine.
func exp1ShardCSV(t *testing.T, shards, windowBatch int, speculate bool) []byte {
	t.Helper()
	cfg := DefaultExp1()
	cfg.Sizes = []topology.Params{topology.Small}
	cfg.Scenarios = []topology.Scenario{topology.LAN, topology.WAN}
	cfg.SessionCounts = []int{60}
	if shards >= 1 {
		cfg.Shards = shards
	}
	cfg.WindowBatch = windowBatch
	cfg.Speculate = speculate
	rows, err := RunExperiment1(cfg)
	if err != nil {
		t.Fatalf("shards=%d batch=%d: %v", shards, windowBatch, err)
	}
	var buf bytes.Buffer
	if err := WriteExp1CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestExp1ShardedCSVByteIdentical(t *testing.T) {
	classic := exp1ShardCSV(t, -1, 0, false)
	for _, batch := range []int{1, 8} {
		for _, shards := range []int{1, 2, 4, 8} {
			got := exp1ShardCSV(t, shards, batch, false)
			if !bytes.Equal(classic, got) {
				t.Errorf("exp1 CSV differs from classic at %d shards, batch %d:\nclassic:\n%s\nsharded:\n%s",
					shards, batch, classic, got)
			}
		}
	}
}

func exp4ShardCSV(t *testing.T, shards, windowBatch int, speculate bool) []byte {
	t.Helper()
	cfg := DefaultExp4()
	cfg.Sizes = []topology.Params{topology.Small}
	cfg.Scenarios = []topology.Scenario{topology.LAN, topology.WAN}
	cfg.Seeds = []int64{1, 2}
	cfg.Sessions = 60
	cfg.Epochs = 3
	cfg.Churn = 8
	cfg.Window = time.Millisecond
	if shards >= 1 {
		cfg.Shards = shards
	}
	cfg.WindowBatch = windowBatch
	cfg.Speculate = speculate
	rows, err := RunExperiment4(cfg)
	if err != nil {
		t.Fatalf("shards=%d batch=%d: %v", shards, windowBatch, err)
	}
	var buf bytes.Buffer
	if err := WriteExp4CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestExp4ShardedCSVByteIdentical(t *testing.T) {
	classic := exp4ShardCSV(t, -1, 0, false)
	for _, batch := range []int{1, 8} {
		for _, shards := range []int{1, 2, 4, 8} {
			got := exp4ShardCSV(t, shards, batch, false)
			if !bytes.Equal(classic, got) {
				t.Errorf("exp4 CSV differs from classic at %d shards, batch %d:\nclassic:\n%s\nsharded:\n%s",
					shards, batch, classic, got)
			}
		}
	}
}

// TestExp3ShardedDeterministic: the Figure 7/8 series — sampled by global
// daemon events at barriers — match between the classic engine, the
// sharded-serial reference and a 4-shard run.
func TestExp3ShardedDeterministic(t *testing.T) {
	run := func(shards int) []byte {
		cfg := DefaultExp3()
		cfg.Topology = topology.Small
		cfg.Sessions = 80
		cfg.Leavers = 10
		cfg.Horizon = 40 * time.Millisecond
		cfg.Protocols = []string{"bneck"}
		if shards >= 1 {
			cfg.Shards = shards
		}
		res, err := RunExperiment3(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var buf bytes.Buffer
		for _, s := range res.Series {
			if err := WriteExp3ErrorCSV(&buf, s.SourceErr, s.Protocol); err != nil {
				t.Fatal(err)
			}
			if err := WriteExp3PacketsCSV(&buf, res); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	classic := run(-1)
	for _, shards := range []int{1, 2, 4} {
		if got := run(shards); !bytes.Equal(classic, got) {
			t.Errorf("exp3 series differ from classic at %d shards", shards)
		}
	}
}

// Speculation is a pure scheduling lever like shards and batching: an
// optimistic window withholds cross-shard sends in journals and parks
// before any unsafe event executes, so the CSVs stay byte-identical with
// speculation on at every shard count and window-batch setting — on the
// static join burst (exp1, idle-cut tails everywhere) and under topology
// churn (exp4, where global events bound every attempt).
func TestExp1SpeculationCSVByteIdentical(t *testing.T) {
	base := exp1ShardCSV(t, -1, 0, false)
	for _, batch := range []int{1, 8} {
		for _, shards := range []int{1, 2, 4, 8} {
			got := exp1ShardCSV(t, shards, batch, true)
			if !bytes.Equal(base, got) {
				t.Errorf("exp1 CSV differs with speculation at %d shards, batch %d:\nbase:\n%s\nspeculative:\n%s",
					shards, batch, base, got)
			}
		}
	}
}

func TestExp4SpeculationCSVByteIdentical(t *testing.T) {
	base := exp4ShardCSV(t, -1, 0, false)
	for _, batch := range []int{1, 8} {
		for _, shards := range []int{1, 2, 4, 8} {
			got := exp4ShardCSV(t, shards, batch, true)
			if !bytes.Equal(base, got) {
				t.Errorf("exp4 CSV differs with speculation at %d shards, batch %d:\nbase:\n%s\nspeculative:\n%s",
					shards, batch, base, got)
			}
		}
	}
}
