package exp

import (
	"bytes"
	"testing"
	"time"

	"bneck/internal/topology"
)

// The tentpole acceptance criterion: a sharded run emits byte-identical
// experiment CSVs at every shard count. One shard is the serial reference —
// a single goroutine popping one heap — so these tests pin serial-vs-sharded
// equality for Experiment 1 (static join burst) and Experiment 4 (topology
// churn), on both propagation models.

func exp1ShardCSV(t *testing.T, shards int) []byte {
	t.Helper()
	cfg := DefaultExp1()
	cfg.Sizes = []topology.Params{topology.Small}
	cfg.Scenarios = []topology.Scenario{topology.LAN, topology.WAN}
	cfg.SessionCounts = []int{60}
	cfg.Shards = shards
	rows, err := RunExperiment1(cfg)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	var buf bytes.Buffer
	if err := WriteExp1CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestExp1ShardedCSVByteIdentical(t *testing.T) {
	serial := exp1ShardCSV(t, 1)
	for _, shards := range []int{2, 4, 8} {
		got := exp1ShardCSV(t, shards)
		if !bytes.Equal(serial, got) {
			t.Errorf("exp1 CSV differs at %d shards:\nserial:\n%s\nsharded:\n%s", shards, serial, got)
		}
	}
}

func exp4ShardCSV(t *testing.T, shards int) []byte {
	t.Helper()
	cfg := DefaultExp4()
	cfg.Sizes = []topology.Params{topology.Small}
	cfg.Scenarios = []topology.Scenario{topology.LAN, topology.WAN}
	cfg.Seeds = []int64{1, 2}
	cfg.Sessions = 60
	cfg.Epochs = 3
	cfg.Churn = 8
	cfg.Window = time.Millisecond
	cfg.Shards = shards
	rows, err := RunExperiment4(cfg)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	var buf bytes.Buffer
	if err := WriteExp4CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestExp4ShardedCSVByteIdentical(t *testing.T) {
	serial := exp4ShardCSV(t, 1)
	for _, shards := range []int{2, 4, 8} {
		got := exp4ShardCSV(t, shards)
		if !bytes.Equal(serial, got) {
			t.Errorf("exp4 CSV differs at %d shards:\nserial:\n%s\nsharded:\n%s", shards, serial, got)
		}
	}
}

// TestExp3ShardedDeterministic: the Figure 7/8 series — sampled by global
// daemon events at barriers — match between the sharded-serial reference and
// a 4-shard run.
func TestExp3ShardedDeterministic(t *testing.T) {
	run := func(shards int) []byte {
		cfg := DefaultExp3()
		cfg.Topology = topology.Small
		cfg.Sessions = 80
		cfg.Leavers = 10
		cfg.Horizon = 40 * time.Millisecond
		cfg.Protocols = []string{"bneck"}
		cfg.Shards = shards
		res, err := RunExperiment3(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var buf bytes.Buffer
		for _, s := range res.Series {
			if err := WriteExp3ErrorCSV(&buf, s.SourceErr, s.Protocol); err != nil {
				t.Fatal(err)
			}
			if err := WriteExp3PacketsCSV(&buf, res); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	serial := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); !bytes.Equal(serial, got) {
			t.Errorf("exp3 series differ at %d shards", shards)
		}
	}
}
