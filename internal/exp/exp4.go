package exp

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"bneck/internal/graph"
	"bneck/internal/network"
	"bneck/internal/policy"
	"bneck/internal/rate"
	"bneck/internal/topology"
	"bneck/internal/trace"
)

// Exp4Config parameterizes Experiment 4, the dynamic-topology experiment the
// paper could not run: a base population joins a transit-stub network, then
// every reconfiguration epoch mixes session churn with topology events —
// link failures, restorations and capacity changes on links actually
// carrying traffic — and measures how much control traffic and virtual time
// B-Neck needs to re-reach quiescence. Every epoch is validated against the
// water-filling oracle. One sweep cell per (topology, scenario, seed).
type Exp4Config struct {
	Sizes     []topology.Params
	Scenarios []topology.Scenario
	Seeds     []int64
	// Sessions is the base population joining in epoch 0.
	Sessions int
	// Epochs is the number of reconfiguration epochs after the base join.
	Epochs int
	// Churn sessions join, Churn leave and Churn change their demand in every
	// epoch, alongside the topology events.
	Churn int
	// Window is the burst width of each epoch's events.
	Window time.Duration
	// Gap separates an epoch's quiescence from the next epoch's burst.
	Gap time.Duration
	// Validate cross-checks every epoch against the centralized oracle.
	Validate bool
	Progress io.Writer
	// Workers bounds how many sweep cells run concurrently. Every cell has
	// its own engine, topology and seeded RNG, so results (and CSV output)
	// are byte-identical to a serial run. 0 or 1 runs serially; negative
	// selects GOMAXPROCS.
	Workers int
	// Shards selects the engine for each cell: ≤ 0 the classic serial
	// engine, ≥ 1 the sharded engine with that many shards. Sharded results
	// are byte-identical at every shard count; counts above one spread a
	// single run — the lever that makes the paper-sized Medium/Big
	// topologies affordable.
	Shards int
	// WindowBatch tunes how many conservative windows the sharded engine
	// runs per coordinator fork/join (0 = engine default, 1 = no batching).
	// Purely a performance knob: results are identical at every setting.
	WindowBatch int
	// Speculate enables optimistic window execution on the sharded engine
	// (no effect with Shards <= 0): idle-cut barriers fork speculative
	// windows several lookaheads long, journaled and committed rollback-free.
	// Results are byte-identical with it on or off; only wall-clock changes.
	Speculate bool
	// Policy is the path re-optimization policy for the churn sweep (zero
	// value: pinned, the historical behavior). With ReoptimizeOnRestore the
	// restore epochs also migrate sessions back onto shorter paths.
	Policy policy.Config
	// IncrementalOracle validates epochs with the delta-driven oracle
	// (network.Config.IncrementalOracle): epoch churn feeds the mirror as
	// deltas and each validation re-levels only what changed, instead of a
	// full O(sessions × links × rounds) re-solve per epoch.
	IncrementalOracle bool
}

// DefaultExp4 is a laptop-scale default. It sweeps both propagation models:
// the WAN cells are the paper-style wide-area failure sweep, and their
// millisecond-scale link delays give the sharded engine its largest
// conservative windows.
func DefaultExp4() Exp4Config {
	return Exp4Config{
		Sizes:     []topology.Params{topology.Small},
		Scenarios: []topology.Scenario{topology.LAN, topology.WAN},
		Seeds:     []int64{1, 2},
		Sessions:  500,
		Epochs:    8,
		Churn:     25,
		Window:    time.Millisecond,
		Gap:       5 * time.Millisecond,
		Validate:  true,
	}
}

// PaperExp4 is the paper-sized configuration: the Medium and Big
// transit-stub topologies under the WAN failure sweep. Affordable wall-clock
// time needs Shards (single-run parallelism) and Workers (across cells).
func PaperExp4() Exp4Config {
	cfg := DefaultExp4()
	cfg.Sizes = []topology.Params{topology.Medium, topology.Big}
	cfg.Scenarios = []topology.Scenario{topology.WAN}
	cfg.Sessions = 2000
	cfg.Churn = 100
	return cfg
}

// Exp4Row is one reconfiguration epoch of one sweep cell. Epoch 0 is the
// base join burst; later epochs carry the topology events.
type Exp4Row struct {
	Network  string
	Scenario string
	Seed     int64
	Epoch    int
	// Events summarizes the epoch's topology events ("fail s2.0-s2.1" etc.).
	Events string
	// Joins/Leaves/Changes are the epoch's session churn counts.
	Joins, Leaves, Changes int
	// Active and Stranded count sessions after the epoch re-quiesced.
	Active   int
	Stranded int
	// Migrated counts sessions the epoch's failures rerouted.
	Migrated uint64
	// Requiescence is the virtual time from the epoch's burst start to
	// renewed quiescence — the paper's packets-to-silence latency dimension.
	Requiescence time.Duration
	// Packets is the control traffic the epoch cost.
	Packets uint64
}

// RunExperiment4 executes the sweep and returns one row per (cell, epoch).
// Cells run across cfg.Workers goroutines; rows and progress lines are
// byte-identical to a serial run.
func RunExperiment4(cfg Exp4Config) ([]Exp4Row, error) {
	if cfg.Window <= 0 {
		cfg.Window = time.Millisecond
	}
	if cfg.Gap <= 0 {
		cfg.Gap = 5 * time.Millisecond
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("exp4: need at least one epoch")
	}
	// Each epoch samples Churn leavers and then Churn changers from the
	// already-shrunk active set, so the base population must cover both.
	if cfg.Sessions < 2*cfg.Churn {
		return nil, fmt.Errorf("exp4: base sessions %d < 2×churn %d", cfg.Sessions, cfg.Churn)
	}
	type cell struct {
		size topology.Params
		scen topology.Scenario
		seed int64
	}
	var cells []cell
	for _, size := range cfg.Sizes {
		for _, scen := range cfg.Scenarios {
			for _, seed := range cfg.Seeds {
				cells = append(cells, cell{size, scen, seed})
			}
		}
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = 1
	}
	perCell := make([][]Exp4Row, len(cells))
	errs := make([]error, len(cells))
	var progress *progressTracker
	if cfg.Progress != nil {
		progress = newProgressTracker(len(cells), func(line string) {
			fmt.Fprint(cfg.Progress, line)
		})
	}
	_ = RunParallel(len(cells), workers, func(i int) error {
		c := cells[i]
		rows, err := runExp4Cell(cfg, c.size, c.scen, c.seed)
		if err != nil {
			errs[i] = fmt.Errorf("exp4 %s/%s/seed%d: %w", c.size.Name, c.scen, c.seed, err)
			if progress != nil {
				progress.report(i, "")
			}
			return errs[i]
		}
		perCell[i] = rows
		if progress != nil {
			var pk uint64
			for _, r := range rows {
				pk += r.Packets
			}
			progress.report(i, fmt.Sprintf(
				"exp4 %-6s %-3s seed=%-3d epochs=%-3d packets=%d\n",
				c.size.Name, c.scen, c.seed, len(rows)-1, pk))
		}
		return nil
	})
	var rows []Exp4Row
	for i, err := range errs {
		if err != nil {
			for _, rs := range perCell[:i] {
				rows = append(rows, rs...)
			}
			return rows, err
		}
	}
	for _, rs := range perCell {
		rows = append(rows, rs...)
	}
	return rows, nil
}

func runExp4Cell(cfg Exp4Config, size topology.Params, scen topology.Scenario, seed int64) ([]Exp4Row, error) {
	topo, err := topology.Generate(size, scen, seed)
	if err != nil {
		return nil, err
	}
	g := topo.Graph
	netCfg := network.DefaultConfig()
	netCfg.PathPolicy = cfg.Policy
	netCfg.Speculate = cfg.Speculate
	netCfg.IncrementalOracle = cfg.IncrementalOracle
	eng, net := newNet(g, netCfg, cfg.Shards, cfg.WindowBatch)

	// All sessions — the base population and every epoch's joiners — are
	// placed up front (the exp2 pattern). Joiners whose resolved path breaks
	// before their join fires reroute at join time.
	total := cfg.Sessions + cfg.Epochs*cfg.Churn
	sessions, err := PlaceSessions(topo, net, total)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 31))
	demands := trace.MixedDemands(0.3, 1, 100)

	var rows []Exp4Row
	var lastPackets, lastMigrated uint64
	runEpoch := func(epoch int, start time.Duration, events string, joins, leaves, changes int) error {
		q := net.Run()
		// Oracle-validate only epochs that could have moved the allocation:
		// ones whose churn or topology events touched the session set or a
		// capacity. An idle epoch (possible when Churn is 0 and no in-use
		// link was found) re-quiesces instantly with the allocation the
		// previous epoch already validated — on Big cells the skipped
		// water-filling run is a real saving.
		changed := epoch == 0 || joins+leaves+changes > 0 || events != ""
		if cfg.Validate && changed {
			if err := net.Validate(); err != nil {
				return fmt.Errorf("epoch %d: %w", epoch, err)
			}
		}
		active, stranded := 0, 0
		for _, s := range sessions {
			switch {
			case s.Stranded():
				stranded++
			case s.Active():
				active++
			}
		}
		pk, mg := net.Stats().Total(), net.Migrations()
		req := time.Duration(0)
		if q > start {
			req = q - start
		}
		rows = append(rows, Exp4Row{
			Network: size.Name, Scenario: scen.String(), Seed: seed, Epoch: epoch,
			Events: events, Joins: joins, Leaves: leaves, Changes: changes,
			Active: active, Stranded: stranded, Migrated: mg - lastMigrated,
			Requiescence: req, Packets: pk - lastPackets,
		})
		lastPackets, lastMigrated = pk, mg
		return nil
	}

	// Epoch 0: base join burst.
	for _, ev := range trace.Joins(0, cfg.Sessions, 0, cfg.Window, trace.Unbounded, rng) {
		net.ScheduleJoin(sessions[ev.Session], ev.At, ev.Demand)
	}
	active := make([]int, 0, total)
	for i := 0; i < cfg.Sessions; i++ {
		active = append(active, i)
	}
	if err := runEpoch(0, 0, "join burst", cfg.Sessions, 0, 0); err != nil {
		return nil, err
	}

	// linkInUse returns an up link on an active session's router segment,
	// scanning sessions round-robin from a rotating offset so successive
	// epochs disturb different parts of the network.
	linkInUse := func(offset int, exclude map[graph.LinkID]bool) (graph.LinkID, bool) {
		for k := 0; k < len(active); k++ {
			s := sessions[active[(offset+k)%len(active)]]
			if !s.Active() {
				continue
			}
			cur := s.Current()
			p := cur.Path
			for _, l := range p[1 : len(p)-1] {
				if g.LinkUp(l) && !exclude[l] && !exclude[g.Link(l).Reverse] {
					return l, true
				}
			}
		}
		return graph.NoLink, false
	}
	linkName := func(l graph.LinkID) string {
		gl := g.Link(l)
		return g.Node(gl.From).Name + "-" + g.Node(gl.To).Name
	}

	var down []graph.LinkID
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		start := eng.Now() + cfg.Gap
		var events []string
		taken := make(map[graph.LinkID]bool)

		// Fail one in-use router link (duplex).
		if l, ok := linkInUse(epoch*7, taken); ok {
			taken[l] = true
			down = append(down, l)
			net.ScheduleLinkFail(start, l, g.Link(l).Reverse)
			events = append(events, "fail "+linkName(l))
		}
		// Every other epoch, restore the oldest failed link.
		if epoch%2 == 0 && len(down) > 0 {
			l := down[0]
			down = down[1:]
			net.ScheduleLinkRestore(start, l, g.Link(l).Reverse)
			events = append(events, "restore "+linkName(l))
		}
		// Every third epoch, reconfigure the capacity of another in-use link.
		if epoch%3 == 0 {
			if l, ok := linkInUse(epoch*13, taken); ok {
				taken[l] = true
				factor := 2
				if rng.Intn(2) == 0 {
					factor = 3
				}
				c := g.Link(l).Capacity.DivInt(factor)
				if c.Sign() <= 0 {
					c = rate.Mbps(10)
				}
				net.ScheduleSetCapacity(start, c, l, g.Link(l).Reverse)
				events = append(events, "cap/"+fmt.Sprint(factor)+" "+linkName(l))
			}
		}

		// Session churn: joiners from the pre-placed pool, leavers and
		// changers sampled from the active set.
		firstJoin := cfg.Sessions + (epoch-1)*cfg.Churn
		for _, ev := range trace.Joins(firstJoin, cfg.Churn, start, cfg.Window, demands, rng) {
			net.ScheduleJoin(sessions[ev.Session], ev.At, ev.Demand)
		}
		leavers := trace.Sample(active, cfg.Churn, rng)
		active = removeAll(active, leavers)
		for _, ev := range trace.Leaves(leavers, start, cfg.Window, rng) {
			net.ScheduleLeave(sessions[ev.Session], ev.At)
		}
		changers := trace.Sample(active, cfg.Churn, rng)
		for _, ev := range trace.Changes(changers, start, cfg.Window, demands, rng) {
			net.ScheduleChange(sessions[ev.Session], ev.At, ev.Demand)
		}
		for i := firstJoin; i < firstJoin+cfg.Churn; i++ {
			active = append(active, i)
		}

		if err := runEpoch(epoch, start, strings.Join(events, "+"), cfg.Churn, cfg.Churn, cfg.Churn); err != nil {
			return nil, err
		}
	}
	return rows, nil
}
