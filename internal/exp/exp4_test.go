package exp

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"bneck/internal/topology"
)

func smallExp4() Exp4Config {
	cfg := DefaultExp4()
	cfg.Sizes = []topology.Params{topology.Small}
	cfg.Scenarios = []topology.Scenario{topology.LAN}
	cfg.Seeds = []int64{1, 2}
	cfg.Sessions = 120
	cfg.Epochs = 5
	cfg.Churn = 10
	return cfg
}

func TestExp4RunsAndValidates(t *testing.T) {
	cfg := smallExp4()
	rows, err := RunExperiment4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(cfg.Seeds) * (cfg.Epochs + 1)
	if len(rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(rows), wantRows)
	}
	// Every cell must actually have disturbed the topology.
	migrated := uint64(0)
	fails := 0
	for _, r := range rows {
		migrated += r.Migrated
		if r.Epoch > 0 && r.Events == "" {
			t.Fatalf("epoch %d of seed %d has no events", r.Epoch, r.Seed)
		}
		if r.Epoch > 0 && r.Packets == 0 {
			t.Fatalf("epoch %d of seed %d cost no packets", r.Epoch, r.Seed)
		}
		if r.Epoch > 0 {
			fails++
		}
	}
	if migrated == 0 {
		t.Fatal("no session was ever migrated by a failure")
	}
	if fails == 0 {
		t.Fatal("no reconfiguration epochs ran")
	}
}

// TestExp4ParallelMatchesSerial locks in the acceptance criterion: Experiment
// 4 CSVs are byte-identical between serial and -workers N runs.
func TestExp4ParallelMatchesSerial(t *testing.T) {
	base := smallExp4()
	base.Seeds = []int64{1, 2, 3, 4}
	run := func(workers int) ([]Exp4Row, []byte, []byte) {
		cfg := base
		cfg.Workers = workers
		var progress bytes.Buffer
		cfg.Progress = &progress
		rows, err := RunExperiment4(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var csv bytes.Buffer
		if err := WriteExp4CSV(&csv, rows); err != nil {
			t.Fatal(err)
		}
		return rows, csv.Bytes(), progress.Bytes()
	}
	serialRows, serialCSV, serialProgress := run(1)
	parallelRows, parallelCSV, parallelProgress := run(4)
	if !reflect.DeepEqual(serialRows, parallelRows) {
		t.Fatalf("parallel rows differ from serial:\n%+v\n%+v", serialRows, parallelRows)
	}
	if !bytes.Equal(serialCSV, parallelCSV) {
		t.Fatalf("parallel CSV differs from serial:\n%s\n%s", serialCSV, parallelCSV)
	}
	if !bytes.Equal(serialProgress, parallelProgress) {
		t.Fatalf("parallel progress differs from serial:\n%s\n%s", serialProgress, parallelProgress)
	}
}

func TestExp4Deterministic(t *testing.T) {
	cfg := smallExp4()
	cfg.Seeds = []int64{7}
	a, err := RunExperiment4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExperiment4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("experiment 4 not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestExp4RejectsBadConfig(t *testing.T) {
	cfg := smallExp4()
	cfg.Epochs = 0
	if _, err := RunExperiment4(cfg); err == nil {
		t.Fatal("accepted zero epochs")
	}
	cfg = smallExp4()
	cfg.Sessions = 5
	cfg.Churn = 10
	if _, err := RunExperiment4(cfg); err == nil {
		t.Fatal("accepted churn larger than base population")
	}
	_ = time.Second
}
