package exp

import (
	"fmt"
	"strings"
	"time"

	"bneck/internal/core"
	"bneck/internal/metrics"
)

// FormatExp1 renders Experiment 1 rows as the two Figure 5 tables: time to
// quiescence and packets, one row per (network, scenario, sessions).
func FormatExp1(rows []Exp1Row) string {
	var b strings.Builder
	b.WriteString("Figure 5 — Experiment 1: simultaneous session arrivals\n")
	b.WriteString(fmt.Sprintf("%-8s %-5s %10s %16s %14s %12s %14s %14s\n",
		"network", "scen", "sessions", "quiescence", "packets", "pkts/sess",
		"settle p50", "settle p90"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-8s %-5s %10d %16v %14d %12.1f %14v %14v\n",
			r.Network, r.Scenario, r.Sessions, r.Quiescence, r.Packets, r.PacketsPerSession,
			r.SettleP50.Round(time.Microsecond), r.SettleP90.Round(time.Microsecond)))
	}
	return b.String()
}

// FormatExp2 renders Experiment 2 as the Figure 6 phase table plus the
// per-bin packet-type breakdown.
func FormatExp2(res *Exp2Result) string {
	var b strings.Builder
	b.WriteString("Figure 6 — Experiment 2: dynamics on Medium/LAN\n")
	b.WriteString(fmt.Sprintf("%-22s %12s %14s %12s %14s\n",
		"phase", "start", "quiescent at", "took", "packets"))
	for _, p := range res.Phases {
		b.WriteString(fmt.Sprintf("%-22s %12v %14v %12v %14d\n",
			p.Name, p.Start.Round(time.Microsecond), p.Quiescence.Round(time.Microsecond),
			p.Took.Round(time.Microsecond), p.Packets))
	}
	b.WriteString("\nPackets per interval by type:\n")
	b.WriteString(fmt.Sprintf("%-10s %9s", "t", "total"))
	for t := core.PktJoin; t <= core.PktLeave; t++ {
		b.WriteString(fmt.Sprintf(" %13s", t.String()))
	}
	b.WriteString("\n")
	for _, bin := range res.Bins {
		if bin.Total == 0 {
			continue
		}
		b.WriteString(fmt.Sprintf("%-10v %9d", bin.Start, bin.Total))
		for t := core.PktJoin; t <= core.PktLeave; t++ {
			b.WriteString(fmt.Sprintf(" %13d", bin.ByType[t-1]))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatExp4 renders Experiment 4 as a per-epoch reconfiguration table.
func FormatExp4(rows []Exp4Row) string {
	var b strings.Builder
	b.WriteString("Experiment 4: quiescence under topology churn (failures, restores, capacity changes)\n")
	b.WriteString(fmt.Sprintf("%-8s %-5s %5s %6s %9s %9s %9s %14s %10s  %s\n",
		"network", "scen", "seed", "epoch", "active", "strand", "migrated", "requiescence", "packets", "events"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-8s %-5s %5d %6d %9d %9d %9d %14v %10d  %s\n",
			r.Network, r.Scenario, r.Seed, r.Epoch, r.Active, r.Stranded, r.Migrated,
			r.Requiescence.Round(time.Microsecond), r.Packets, r.Events))
	}
	return b.String()
}

// FormatExp5 renders Experiment 5 as a per-phase policy comparison table.
func FormatExp5(rows []Exp5Row) string {
	var b strings.Builder
	b.WriteString("Experiment 5: path re-optimization after restores (pinned vs reoptimize)\n")
	b.WriteString(fmt.Sprintf("%-8s %-5s %5s %-11s %-8s %7s %6s %9s %7s %7s %7s %12s %14s %10s %13s\n",
		"network", "scen", "seed", "policy", "phase", "active", "strand", "migr/reopt",
		"hops", "best", "excess", "rate(Mbps)", "requiescence", "packets", "reconfig_pkts"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-8s %-5s %5d %-11s %-8s %7d %6d %5d/%-3d %7d %7d %7d %12.1f %14v %10d %13d\n",
			r.Network, r.Scenario, r.Seed, r.Policy, r.Phase, r.Active, r.Stranded,
			r.Migrated, r.Reoptimized, r.HopsActive, r.HopsBest, r.HopsActive-r.HopsBest,
			r.SumRateMbps, r.Requiescence.Round(time.Microsecond), r.Packets, r.ReconfigPackets))
	}
	return b.String()
}

// FormatExp3 renders Experiment 3 as the Figure 7 error tables and the
// Figure 8 packets-per-interval series.
func FormatExp3(res *Exp3Result) string {
	var b strings.Builder
	for _, s := range res.Series {
		b.WriteString(fmt.Sprintf("Figure 7 — Experiment 3, %s: rate error at sources (%%)\n", s.Protocol))
		writeSeries(&b, s.SourceErr)
		b.WriteString(fmt.Sprintf("\nFigure 7 — Experiment 3, %s: error on bottleneck links (%%)\n", s.Protocol))
		writeSeries(&b, s.LinkErr)
		b.WriteString("\n")
	}
	b.WriteString("Figure 8 — Experiment 3: packets per interval\n")
	b.WriteString(fmt.Sprintf("%-10s", "t"))
	for _, s := range res.Series {
		b.WriteString(fmt.Sprintf(" %12s", s.Protocol))
	}
	b.WriteString("\n")
	maxBins := 0
	for _, s := range res.Series {
		if len(s.Bins) > maxBins {
			maxBins = len(s.Bins)
		}
	}
	for i := 0; i < maxBins; i++ {
		var start time.Duration
		counts := make([]uint64, len(res.Series))
		for j, s := range res.Series {
			if i < len(s.Bins) {
				start = s.Bins[i].Start
				counts[j] = s.Bins[i].Total
			}
		}
		b.WriteString(fmt.Sprintf("%-10v", start))
		for _, c := range counts {
			b.WriteString(fmt.Sprintf(" %12d", c))
		}
		b.WriteString("\n")
	}
	b.WriteString("\nSummary:\n")
	for _, s := range res.Series {
		b.WriteString(fmt.Sprintf("  %-6s packets=%-10d converged=%-12v quiescent=%t",
			s.Protocol, s.Packets, s.ConvergedAt, s.Quiescent))
		if s.Quiescent {
			b.WriteString(fmt.Sprintf(" (at %v)", s.QuiescenceAt))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func writeSeries(b *strings.Builder, s metrics.Series) {
	b.WriteString(fmt.Sprintf("%-10s %10s %10s %10s %10s\n", "t", "mean", "median", "p10", "p90"))
	for _, p := range s.Points {
		b.WriteString(fmt.Sprintf("%-10v %10.2f %10.2f %10.2f %10.2f\n",
			p.At, p.Summary.Mean, p.Summary.Median, p.Summary.P10, p.Summary.P90))
	}
}
