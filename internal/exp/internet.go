package exp

import (
	"fmt"
	"math/rand"
	"time"

	"bneck/internal/network"
	"bneck/internal/sim"
	"bneck/internal/topology"
	"bneck/internal/trace"
)

// Internet-scale runs: the benchmark ladder's rungs and the CI smoke both
// drive a join burst on a generated internet topology (core/metro/edge
// tiers, power-law fringe — topology.GenerateInternet) through this one
// config, so the measured path and the smoke-tested path are identical.

// InternetConfig parameterizes one internet-scale join-burst run.
type InternetConfig struct {
	// Params sizes the topology (topology.InternetPaper/Metro/Global).
	Params topology.InternetParams
	// Sessions is the number of sessions joining in the burst.
	Sessions int
	// JoinWindow spreads the joins uniformly over [0, JoinWindow); zero
	// defaults to 1 ms, the paper's burst width.
	JoinWindow time.Duration
	// DemandCap is the fraction of sessions with a finite demand (0.25 when
	// zero, matching the paper's mixed-demand experiments).
	DemandCap float64
	// Seed makes generation, placement and demands deterministic.
	Seed int64
	// Shards ≤ 0 runs the classic serial engine; ≥ 1 the sharded engine.
	Shards int
	// WindowBatch tunes conservative windows per fork/join (0 = default).
	WindowBatch int
	// Speculate enables optimistic window execution (sharded only).
	Speculate bool
	// Flat forces the flat contract-and-grow partitioner instead of the
	// hierarchical cut the generator's labels enable — the ablation knob.
	Flat bool
	// Validate cross-checks the final rates against the oracle.
	Validate bool
	// IncrementalOracle feeds churn to the delta-driven validation oracle
	// (network.Config.IncrementalOracle) instead of full-solving per epoch.
	IncrementalOracle bool
	// OracleCrossCheck additionally full-solves on every oracle flush and
	// errors on divergence (debug; implies IncrementalOracle).
	OracleCrossCheck bool
}

// InternetResult summarizes one internet-scale run.
type InternetResult struct {
	Routers    int
	Links      int
	Sessions   int
	Shards     int           // shards actually used (0 = classic engine)
	Lookahead  time.Duration // conservative window bound (0 = unbounded)
	Quiescence sim.Time
	Packets    uint64
	Events     uint64
	Spec       sim.SpeculationStats
}

// RunInternet generates the topology, places the sessions, fires the join
// burst and runs to quiescence.
func RunInternet(cfg InternetConfig) (InternetResult, error) {
	if cfg.Sessions < 1 {
		return InternetResult{}, fmt.Errorf("exp: internet run needs at least one session")
	}
	if cfg.JoinWindow <= 0 {
		cfg.JoinWindow = time.Millisecond
	}
	if cfg.DemandCap == 0 {
		cfg.DemandCap = 0.25
	}
	topo, err := topology.GenerateInternet(cfg.Params, cfg.Seed)
	if err != nil {
		return InternetResult{}, err
	}
	netCfg := network.DefaultConfig()
	netCfg.Speculate = cfg.Speculate
	netCfg.IncrementalOracle = cfg.IncrementalOracle
	netCfg.OracleCrossCheck = cfg.OracleCrossCheck
	if !cfg.Flat {
		netCfg.Hierarchy = topo.Hierarchy
	}
	eng, net := newNet(topo.Graph, netCfg, cfg.Shards, cfg.WindowBatch)
	ss, err := PlaceSessions(topo, net, cfg.Sessions)
	if err != nil {
		return InternetResult{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	demand := trace.MixedDemands(cfg.DemandCap, 1, 100)
	for _, ev := range trace.Joins(0, cfg.Sessions, 0, cfg.JoinWindow, demand, rng) {
		net.ScheduleJoin(ss[ev.Session], ev.At, ev.Demand)
	}
	res := InternetResult{
		Routers:  cfg.Params.Routers(),
		Sessions: cfg.Sessions,
	}
	res.Quiescence = net.Run()
	res.Links = topo.Graph.NumLinks()
	res.Packets = net.Stats().Total()
	res.Events = eng.Events()
	if she := net.Sharded(); she != nil {
		res.Shards = she.Shards()
		res.Lookahead = time.Duration(she.Lookahead())
		res.Spec = she.SpecStats()
	}
	if cfg.Validate {
		if err := net.Validate(); err != nil {
			return res, fmt.Errorf("exp: internet validation failed: %w", err)
		}
	}
	return res, nil
}
