package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"bneck/internal/core"
	"bneck/internal/metrics"
)

// WriteExp1CSV emits Experiment 1 rows as CSV (one row per Figure 5 point).
func WriteExp1CSV(w io.Writer, rows []Exp1Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"network", "scenario", "sessions", "quiescence_us", "packets", "packets_per_session",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Network, r.Scenario,
			strconv.Itoa(r.Sessions),
			strconv.FormatInt(r.Quiescence.Microseconds(), 10),
			strconv.FormatUint(r.Packets, 10),
			strconv.FormatFloat(r.PacketsPerSession, 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteExp2CSV emits Experiment 2's per-bin packet-type counts (Figure 6).
func WriteExp2CSV(w io.Writer, res *Exp2Result) error {
	cw := csv.NewWriter(w)
	header := []string{"t_us", "total"}
	for t := core.PktJoin; t <= core.PktLeave; t++ {
		header = append(header, t.String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, bin := range res.Bins {
		rec := []string{
			strconv.FormatInt(bin.Start.Microseconds(), 10),
			strconv.FormatUint(bin.Total, 10),
		}
		for t := core.PktJoin; t <= core.PktLeave; t++ {
			rec = append(rec, strconv.FormatUint(bin.ByType[t-1], 10))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteExp4CSV emits Experiment 4 rows: one line per reconfiguration epoch
// per sweep cell.
func WriteExp4CSV(w io.Writer, rows []Exp4Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"network", "scenario", "seed", "epoch", "events", "joins", "leaves", "changes",
		"active", "stranded", "migrated", "requiescence_us", "packets",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Network, r.Scenario,
			strconv.FormatInt(r.Seed, 10),
			strconv.Itoa(r.Epoch),
			r.Events,
			strconv.Itoa(r.Joins),
			strconv.Itoa(r.Leaves),
			strconv.Itoa(r.Changes),
			strconv.Itoa(r.Active),
			strconv.Itoa(r.Stranded),
			strconv.FormatUint(r.Migrated, 10),
			strconv.FormatInt(r.Requiescence.Microseconds(), 10),
			strconv.FormatUint(r.Packets, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteExp5CSV emits Experiment 5 rows: one line per phase per policy per
// sweep cell — the regained-hops/regained-rate vs reconfiguration-packet
// trade of the path re-optimization policy.
func WriteExp5CSV(w io.Writer, rows []Exp5Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"network", "scenario", "seed", "policy", "phase", "active", "stranded",
		"migrated", "reoptimized", "hops_active", "hops_best", "excess_hops",
		"sum_rate_mbps", "requiescence_us", "packets", "reconfig_packets",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Network, r.Scenario,
			strconv.FormatInt(r.Seed, 10),
			r.Policy, r.Phase,
			strconv.Itoa(r.Active),
			strconv.Itoa(r.Stranded),
			strconv.FormatUint(r.Migrated, 10),
			strconv.FormatUint(r.Reoptimized, 10),
			strconv.Itoa(r.HopsActive),
			strconv.Itoa(r.HopsBest),
			strconv.Itoa(r.HopsActive - r.HopsBest),
			strconv.FormatFloat(r.SumRateMbps, 'f', 2, 64),
			strconv.FormatInt(r.Requiescence.Microseconds(), 10),
			strconv.FormatUint(r.Packets, 10),
			strconv.FormatUint(r.ReconfigPackets, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteExp3ErrorCSV emits one protocol's Figure 7 error series (sources or
// links).
func WriteExp3ErrorCSV(w io.Writer, s metrics.Series, protocol string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"protocol", "t_us", "n", "mean_pct", "median_pct", "p10_pct", "p90_pct",
	}); err != nil {
		return err
	}
	for _, p := range s.Points {
		rec := []string{
			protocol,
			strconv.FormatInt(p.At.Microseconds(), 10),
			strconv.Itoa(p.Summary.N),
			strconv.FormatFloat(p.Summary.Mean, 'f', 4, 64),
			strconv.FormatFloat(p.Summary.Median, 'f', 4, 64),
			strconv.FormatFloat(p.Summary.P10, 'f', 4, 64),
			strconv.FormatFloat(p.Summary.P90, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteExp3PacketsCSV emits the Figure 8 packets-per-interval series for all
// protocols in res, aligned on bin start times.
func WriteExp3PacketsCSV(w io.Writer, res *Exp3Result) error {
	cw := csv.NewWriter(w)
	header := []string{"t_us"}
	maxBins := 0
	for _, s := range res.Series {
		header = append(header, s.Protocol)
		if len(s.Bins) > maxBins {
			maxBins = len(s.Bins)
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < maxBins; i++ {
		var start time.Duration
		rec := make([]string, 0, len(res.Series)+1)
		counts := make([]uint64, len(res.Series))
		for j, s := range res.Series {
			if i < len(s.Bins) {
				start = s.Bins[i].Start
				counts[j] = s.Bins[i].Total
			}
		}
		rec = append(rec, strconv.FormatInt(start.Microseconds(), 10))
		for _, c := range counts {
			rec = append(rec, strconv.FormatUint(c, 10))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAllCSV writes every series of an experiment 3 result into per-figure
// files under open, a callback creating a writer per name (typically a file
// in an output directory).
func WriteAllCSV(res *Exp3Result, open func(name string) (io.WriteCloser, error)) error {
	for _, s := range res.Series {
		src, err := open(fmt.Sprintf("fig7_sources_%s.csv", s.Protocol))
		if err != nil {
			return err
		}
		if err := WriteExp3ErrorCSV(src, s.SourceErr, s.Protocol); err != nil {
			src.Close()
			return err
		}
		if err := src.Close(); err != nil {
			return err
		}
		lnk, err := open(fmt.Sprintf("fig7_links_%s.csv", s.Protocol))
		if err != nil {
			return err
		}
		if err := WriteExp3ErrorCSV(lnk, s.LinkErr, s.Protocol); err != nil {
			lnk.Close()
			return err
		}
		if err := lnk.Close(); err != nil {
			return err
		}
	}
	pk, err := open("fig8_packets.csv")
	if err != nil {
		return err
	}
	if err := WriteExp3PacketsCSV(pk, res); err != nil {
		pk.Close()
		return err
	}
	return pk.Close()
}
