package exp

// removeAll returns from without any element of remove, preserving order and
// reusing from's backing array. It builds a set over remove first, so the
// pass is O(len(from) + len(remove)) rather than the quadratic scan a naive
// nested loop would cost; Experiment 2's phase bookkeeping and Experiment 4's
// per-epoch churn both lean on it with thousands of sessions.
func removeAll(from []int, remove []int) []int {
	rm := make(map[int]bool, len(remove))
	for _, v := range remove {
		rm[v] = true
	}
	out := from[:0]
	for _, v := range from {
		if !rm[v] {
			out = append(out, v)
		}
	}
	return out
}
