package exp

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"bneck/internal/metrics"
	"bneck/internal/topology"
)

func TestWriteExp1CSV(t *testing.T) {
	rows := []Exp1Row{{
		Network: "Small", Scenario: "LAN", Sessions: 100,
		Quiescence: 1500 * time.Microsecond, Packets: 420, PacketsPerSession: 4.2,
	}}
	var buf bytes.Buffer
	if err := WriteExp1CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "network,scenario,sessions") {
		t.Fatalf("missing header: %q", got)
	}
	if !strings.Contains(got, "Small,LAN,100,1500,420,4.20") {
		t.Fatalf("missing row: %q", got)
	}
}

func TestWriteExp2CSV(t *testing.T) {
	cfg := DefaultExp2()
	cfg.Topology = topology.Small
	cfg.Base = 100
	cfg.Dyn = 20
	res, err := RunExperiment2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteExp2CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("too few lines: %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_us,total,Join,") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestWriteExp3CSVs(t *testing.T) {
	var series metrics.Series
	series.Add(3*time.Millisecond, []float64{-10, -5, 0})
	var buf bytes.Buffer
	if err := WriteExp3ErrorCSV(&buf, series, "B-Neck"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "B-Neck,3000,3,-5.0000,-5.0000") {
		t.Fatalf("bad error csv: %q", buf.String())
	}

	cfg := DefaultExp3()
	cfg.Topology = topology.Small
	cfg.Sessions = 50
	cfg.Leavers = 5
	cfg.Horizon = 30 * time.Millisecond
	res, err := RunExperiment3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pk bytes.Buffer
	if err := WriteExp3PacketsCSV(&pk, res); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(pk.String(), "t_us,B-Neck,BFYZ") {
		t.Fatalf("bad packets csv header: %q", pk.String()[:40])
	}

	files := map[string]*bytes.Buffer{}
	err = WriteAllCSV(res, func(name string) (io.WriteCloser, error) {
		b := &bytes.Buffer{}
		files[name] = b
		return nopCloser{b}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"fig7_sources_B-Neck.csv", "fig7_links_B-Neck.csv",
		"fig7_sources_BFYZ.csv", "fig7_links_BFYZ.csv", "fig8_packets.csv",
	} {
		if files[want] == nil || files[want].Len() == 0 {
			t.Fatalf("file %s missing or empty", want)
		}
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }
