// Package exp drives the paper's three experiments (Section IV) and
// regenerates every evaluation figure: Figure 5 (Experiment 1), Figure 6
// (Experiment 2), Figures 7 and 8 (Experiment 3). Each experiment is
// parameterized so the full paper scale (hundreds of thousands of sessions)
// and a laptop scale (the defaults) run the same code.
package exp

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"bneck/internal/graph"
	"bneck/internal/metrics"
	"bneck/internal/network"
	"bneck/internal/topology"
	"bneck/internal/trace"
)

// Exp1Config parameterizes Experiment 1: many sessions join a quiet network
// within one millisecond; measure time to quiescence and packets sent.
type Exp1Config struct {
	Sizes         []topology.Params
	Scenarios     []topology.Scenario
	SessionCounts []int
	// JoinWindow is the interval the joins land in (paper: 1 ms).
	JoinWindow time.Duration
	Seed       int64
	// Validate cross-checks every run against the centralized oracle
	// (the paper does; costs extra wall time).
	Validate bool
	// Progress, if non-nil, receives one line per completed run.
	Progress io.Writer
	// Workers bounds how many sweep cells run concurrently. Every cell has
	// its own engine, topology and seeded RNG, so results (and CSV output)
	// are byte-identical to a serial run. 0 or 1 runs serially; negative
	// selects GOMAXPROCS.
	Workers int
	// Shards selects the engine for each run: ≤ 0 the classic serial engine,
	// ≥ 1 the sharded engine with that many shards (1 = sharded-serial
	// reference). Sharded results are byte-identical at every shard count;
	// shard counts above one parallelize a single run across cores,
	// composing with Workers' across-run parallelism.
	Shards int
	// WindowBatch tunes how many conservative windows the sharded engine
	// runs per coordinator fork/join (0 = engine default, 1 = no batching).
	// Purely a performance knob: results are identical at every setting.
	WindowBatch int
	// Speculate enables optimistic window execution on the sharded engine
	// (no effect with Shards <= 0): idle-cut barriers fork speculative
	// windows several lookaheads long, journaled and committed rollback-free.
	// Results are byte-identical with it on or off; only wall-clock changes.
	Speculate bool
}

// DefaultExp1 is a laptop-scale default: the paper sweeps 10…300,000
// sessions on Small/Medium/Big; here Small+Medium up to 5,000 (pass bigger
// counts and topology.Big explicitly for paper scale).
func DefaultExp1() Exp1Config {
	return Exp1Config{
		Sizes:         []topology.Params{topology.Small, topology.Medium},
		Scenarios:     []topology.Scenario{topology.LAN, topology.WAN},
		SessionCounts: []int{10, 100, 1000, 5000},
		JoinWindow:    time.Millisecond,
		Seed:          1,
		Validate:      true,
	}
}

// Exp1Row is one point of Figure 5: a (topology, scenario, session count)
// cell with its time to quiescence (left plot) and packet total (right
// plot).
type Exp1Row struct {
	Network           string
	Scenario          string
	Sessions          int
	Quiescence        time.Duration
	Packets           uint64
	PacketsPerSession float64
	Events            uint64
	Wall              time.Duration
	// Settle* are percentiles of the per-session settling time: from a
	// session's join to its final rate notification. The network-wide
	// quiescence time is driven by the slowest dependency chain; these show
	// how the rest of the population fares.
	SettleP50 time.Duration
	SettleP90 time.Duration
	SettleMax time.Duration
}

// RunExperiment1 executes the sweep and returns one row per cell. Cells run
// across cfg.Workers goroutines; the row order, the rows themselves and the
// progress lines are identical to a serial run.
func RunExperiment1(cfg Exp1Config) ([]Exp1Row, error) {
	if cfg.JoinWindow <= 0 {
		cfg.JoinWindow = time.Millisecond
	}
	type cell struct {
		size  topology.Params
		scen  topology.Scenario
		count int
	}
	var cells []cell
	for _, size := range cfg.Sizes {
		for _, scen := range cfg.Scenarios {
			for _, count := range cfg.SessionCounts {
				cells = append(cells, cell{size, scen, count})
			}
		}
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = 1
	}
	rows := make([]Exp1Row, len(cells))
	errs := make([]error, len(cells))
	var progress *progressTracker
	if cfg.Progress != nil {
		progress = newProgressTracker(len(cells), func(line string) {
			fmt.Fprint(cfg.Progress, line)
		})
	}
	_ = RunParallel(len(cells), workers, func(i int) error {
		c := cells[i]
		row, err := runExp1Cell(cfg, c.size, c.scen, c.count)
		if err != nil {
			errs[i] = fmt.Errorf("exp1 %s/%s/%d: %w", c.size.Name, c.scen, c.count, err)
			if progress != nil {
				progress.report(i, "")
			}
			return errs[i]
		}
		rows[i] = row
		if progress != nil {
			progress.report(i, fmt.Sprintf(
				"exp1 %-6s %-3s sessions=%-7d quiescence=%-12v packets=%d\n",
				row.Network, row.Scenario, row.Sessions, row.Quiescence, row.Packets))
		}
		return nil
	})
	// Match the serial contract: on failure return the rows of the cells
	// before the first failing one, plus that cell's error.
	for i, err := range errs {
		if err != nil {
			return rows[:i], err
		}
	}
	return rows, nil
}

func runExp1Cell(cfg Exp1Config, size topology.Params, scen topology.Scenario, count int) (Exp1Row, error) {
	start := time.Now() //bneck:wallclock Wall is operator-facing throughput info; never written to CSVs, zeroed by the determinism test.
	topo, err := topology.Generate(size, scen, cfg.Seed)
	if err != nil {
		return Exp1Row{}, err
	}
	netCfg := network.DefaultConfig()
	netCfg.Speculate = cfg.Speculate
	eng, net := newNet(topo.Graph, netCfg, cfg.Shards, cfg.WindowBatch)

	sessions, err := PlaceSessions(topo, net, count)
	if err != nil {
		return Exp1Row{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	for i, ev := range trace.Joins(0, count, 0, cfg.JoinWindow, trace.Unbounded, rng) {
		_ = i
		net.ScheduleJoin(sessions[ev.Session], ev.At, ev.Demand)
	}
	q := net.Run()
	if cfg.Validate {
		if err := net.Validate(); err != nil {
			return Exp1Row{}, err
		}
	}
	settle := make([]float64, 0, len(sessions))
	for _, s := range sessions {
		settle = append(settle, float64(s.SettlingTime()))
	}
	sum := metrics.Summarize(settle)
	return Exp1Row{
		Network:           size.Name,
		Scenario:          scen.String(),
		Sessions:          count,
		Quiescence:        q,
		Packets:           net.Stats().Total(),
		PacketsPerSession: float64(net.Stats().Total()) / float64(count),
		Events:            eng.Events(),
		Wall:              time.Since(start), //bneck:wallclock see start above: reporting only, excluded from deterministic outputs.
		SettleP50:         time.Duration(sum.Median),
		SettleP90:         time.Duration(sum.P90),
		SettleMax:         time.Duration(sum.Max),
	}, nil
}

// PlaceSessions attaches 2·count hosts to the topology, dedicates one source
// host per session (the paper's one-session-per-source-host rule), draws
// destinations uniformly at random, and registers the sessions with the
// network. Path resolution groups sessions by source router so the BFS
// cache is effective. Any generated topology works: transit-stub and
// internet-scale topologies both satisfy topology.Hosted.
func PlaceSessions(topo topology.Hosted, net *network.Network, count int) ([]*network.Session, error) {
	hosts := topo.AddHosts(2 * count)
	rng := topo.Rand()
	type pair struct {
		idx      int
		src, dst graph.NodeID
	}
	pairs := make([]pair, count)
	for i := 0; i < count; i++ {
		src := hosts[i]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		pairs[i] = pair{idx: i, src: src, dst: dst}
	}
	// Group by source router for BFS-cache locality.
	g := topo.Topology()
	sorted := append([]pair(nil), pairs...)
	sort.SliceStable(sorted, func(a, b int) bool {
		return g.HostRouter(sorted[a].src) < g.HostRouter(sorted[b].src)
	})
	res := graph.NewResolver(g, 256)
	sessions := make([]*network.Session, count)
	for _, p := range sorted {
		path, err := res.HostPath(p.src, p.dst)
		if err != nil {
			return nil, err
		}
		s, err := net.NewSession(p.src, p.dst, path)
		if err != nil {
			return nil, err
		}
		sessions[p.idx] = s
	}
	return sessions, nil
}
