package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"bneck/internal/graph"
	"bneck/internal/network"
	"bneck/internal/policy"
	"bneck/internal/rate"
	"bneck/internal/topology"
	"bneck/internal/trace"
)

// Exp5Config parameterizes Experiment 5, the path re-optimization study: a
// base population joins a transit-stub network, a batch of in-use router
// links fails (forcing detour migrations), and the links are then restored.
// Each sweep cell runs the identical workload twice — once under the Pinned
// policy (sessions stay on their detours forever, the paper's behavior) and
// once under ReoptimizeOnRestore — and measures what re-optimization buys
// (path hops regained, rate regained) against what it costs (extra
// reconfiguration packets). Every phase is validated against the
// water-filling oracle.
type Exp5Config struct {
	Sizes     []topology.Params
	Scenarios []topology.Scenario
	Seeds     []int64
	// Sessions is the base population joining in the base phase.
	Sessions int
	// Fails is how many distinct in-use duplex router links fail in the
	// failure phase (all restored together in the restore phase).
	Fails int
	// Stretch and MinGain are the re-optimization hysteresis knobs (see
	// internal/policy); zero keeps the defaults (any strict improvement).
	Stretch float64
	MinGain int
	// Window is the burst width of the base join phase.
	Window time.Duration
	// Gap separates a phase's quiescence from the next phase's events.
	Gap time.Duration
	// Validate cross-checks every phase against the centralized oracle.
	Validate bool
	Progress io.Writer
	// Workers bounds how many sweep cells run concurrently; results are
	// byte-identical to a serial run (each cell owns its engines and RNGs).
	Workers int
	// Shards selects the engine per run: ≤ 0 the classic serial engine, ≥ 1
	// the sharded engine with that many shards. Results are byte-identical
	// at every setting — the policy sweep executes at barriers.
	Shards int
	// WindowBatch tunes the sharded engine's windows per fork/join (0 =
	// engine default). Purely a performance knob.
	WindowBatch int
	// Speculate enables optimistic window execution on the sharded engine
	// (no effect with Shards <= 0): idle-cut barriers fork speculative
	// windows several lookaheads long, journaled and committed rollback-free.
	// Results are byte-identical with it on or off; only wall-clock changes.
	Speculate bool
	// IncrementalOracle validates phases with the delta-driven oracle
	// (network.Config.IncrementalOracle) instead of a full re-solve each.
	IncrementalOracle bool
}

// DefaultExp5 is a laptop-scale default covering both propagation models.
func DefaultExp5() Exp5Config {
	return Exp5Config{
		Sizes:     []topology.Params{topology.Small},
		Scenarios: []topology.Scenario{topology.LAN, topology.WAN},
		Seeds:     []int64{1, 2},
		Sessions:  300,
		Fails:     4,
		Window:    time.Millisecond,
		Gap:       5 * time.Millisecond,
		Validate:  true,
	}
}

// Exp5Row is one phase of one (cell, policy) run. Phases are "base" (the
// join burst), "fail" (the failure batch) and "restore" (links back up —
// where the two policies diverge).
type Exp5Row struct {
	Network  string
	Scenario string
	Seed     int64
	// Policy is "pinned" or "reoptimize".
	Policy string
	Phase  string
	// Active and Stranded count sessions after the phase re-quiesced;
	// Migrated and Reoptimized are the cumulative reroute counters.
	Active      int
	Stranded    int
	Migrated    uint64
	Reoptimized uint64
	// HopsActive sums the active sessions' current path lengths; HopsBest
	// sums their shortest-path lengths on the current graph. The gap is the
	// detour debt the pinned policy carries after the restore.
	HopsActive int
	HopsBest   int
	// SumRateMbps is the total allocated rate over active sessions — the
	// rate the population regains when detours fold back onto direct paths.
	SumRateMbps float64
	// Requiescence is the virtual time from the phase's burst to renewed
	// quiescence.
	Requiescence time.Duration
	// Packets is the phase's control traffic; ReconfigPackets its share
	// attributable to reconfiguration (Leave cascades + topology-driven
	// rejoin cascades) — re-optimization's price.
	Packets         uint64
	ReconfigPackets uint64
}

// RunExperiment5 executes the sweep and returns rows grouped per cell:
// pinned phases first, then the reoptimize phases. Cells run across
// cfg.Workers goroutines; rows and progress lines are byte-identical to a
// serial run.
func RunExperiment5(cfg Exp5Config) ([]Exp5Row, error) {
	if cfg.Window <= 0 {
		cfg.Window = time.Millisecond
	}
	if cfg.Gap <= 0 {
		cfg.Gap = 5 * time.Millisecond
	}
	if cfg.Sessions < 1 {
		return nil, fmt.Errorf("exp5: need at least one session")
	}
	if cfg.Fails < 1 {
		return nil, fmt.Errorf("exp5: need at least one failure")
	}
	type cell struct {
		size topology.Params
		scen topology.Scenario
		seed int64
	}
	var cells []cell
	for _, size := range cfg.Sizes {
		for _, scen := range cfg.Scenarios {
			for _, seed := range cfg.Seeds {
				cells = append(cells, cell{size, scen, seed})
			}
		}
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = 1
	}
	perCell := make([][]Exp5Row, len(cells))
	errs := make([]error, len(cells))
	var progress *progressTracker
	if cfg.Progress != nil {
		progress = newProgressTracker(len(cells), func(line string) {
			fmt.Fprint(cfg.Progress, line)
		})
	}
	_ = RunParallel(len(cells), workers, func(i int) error {
		c := cells[i]
		var rows []Exp5Row
		for _, kind := range []policy.Kind{policy.Pinned, policy.ReoptimizeOnRestore} {
			rs, err := runExp5Cell(cfg, c.size, c.scen, c.seed, kind)
			if err != nil {
				errs[i] = fmt.Errorf("exp5 %s/%s/seed%d/%s: %w", c.size.Name, c.scen, c.seed, kind, err)
				if progress != nil {
					progress.report(i, "")
				}
				return errs[i]
			}
			rows = append(rows, rs...)
		}
		perCell[i] = rows
		if progress != nil {
			last := rows[len(rows)-1]
			progress.report(i, fmt.Sprintf(
				"exp5 %-6s %-3s seed=%-3d reoptimized=%-3d reconfig_pkts=%d\n",
				c.size.Name, c.scen, c.seed, last.Reoptimized, last.ReconfigPackets))
		}
		return nil
	})
	var rows []Exp5Row
	for i, err := range errs {
		if err != nil {
			for _, rs := range perCell[:i] {
				rows = append(rows, rs...)
			}
			return rows, err
		}
	}
	for _, rs := range perCell {
		rows = append(rows, rs...)
	}
	return rows, nil
}

func runExp5Cell(cfg Exp5Config, size topology.Params, scen topology.Scenario, seed int64, kind policy.Kind) ([]Exp5Row, error) {
	topo, err := topology.Generate(size, scen, seed)
	if err != nil {
		return nil, err
	}
	g := topo.Graph
	netCfg := network.DefaultConfig()
	netCfg.PathPolicy = policy.Config{Kind: kind, Stretch: cfg.Stretch, MinGain: cfg.MinGain}
	netCfg.Speculate = cfg.Speculate
	netCfg.IncrementalOracle = cfg.IncrementalOracle
	eng, net := newNet(g, netCfg, cfg.Shards, cfg.WindowBatch)

	sessions, err := PlaceSessions(topo, net, cfg.Sessions)
	if err != nil {
		return nil, err
	}
	resolver := graph.NewResolver(g, 256)

	var rows []Exp5Row
	var lastPackets, lastReconfig uint64
	runPhase := func(phase string, start time.Duration) error {
		q := net.Run()
		if cfg.Validate {
			if err := net.Validate(); err != nil {
				return fmt.Errorf("phase %s: %w", phase, err)
			}
		}
		row := Exp5Row{
			Network: size.Name, Scenario: scen.String(), Seed: seed,
			Policy: kind.String(), Phase: phase,
			Migrated: net.Migrations(), Reoptimized: net.Reoptimizations(),
		}
		sumRate := rate.Zero
		for _, s := range sessions {
			switch {
			case s.Stranded():
				row.Stranded++
				continue
			case !s.Active():
				continue
			}
			row.Active++
			cur := s.Current()
			row.HopsActive += len(cur.Path)
			if best, err := resolver.HostPath(cur.SrcHost, cur.DstHost); err == nil {
				row.HopsBest += len(best)
			}
			if r, ok := s.Rate(); ok {
				sumRate = sumRate.Add(r)
			}
		}
		row.SumRateMbps = sumRate.Float64() / 1e6
		pk, rp := net.Stats().Total(), net.ReconfigPackets()
		row.Packets = pk - lastPackets
		row.ReconfigPackets = rp - lastReconfig
		lastPackets, lastReconfig = pk, rp
		if q > start {
			row.Requiescence = q - start
		}
		rows = append(rows, row)
		return nil
	}

	// Base phase: the join burst.
	rng := rand.New(rand.NewSource(seed + 41))
	for _, ev := range trace.Joins(0, cfg.Sessions, 0, cfg.Window, trace.Unbounded, rng) {
		net.ScheduleJoin(sessions[ev.Session], ev.At, ev.Demand)
	}
	if err := runPhase("base", 0); err != nil {
		return nil, err
	}

	// Failure phase: fail a batch of distinct in-use duplex router links,
	// spread across different sessions' paths so the detours multiply.
	fails := pickFailLinks(g, sessions, cfg.Fails)
	if len(fails) == 0 {
		return nil, fmt.Errorf("no in-use router link to fail")
	}
	start := eng.Now() + cfg.Gap
	for _, l := range fails {
		net.ScheduleLinkFail(start, l, g.Link(l).Reverse)
	}
	if err := runPhase("fail", start); err != nil {
		return nil, err
	}

	// Restore phase: everything comes back — where the policies diverge.
	start = eng.Now() + cfg.Gap
	for _, l := range fails {
		net.ScheduleLinkRestore(start, l, g.Link(l).Reverse)
	}
	if err := runPhase("restore", start); err != nil {
		return nil, err
	}
	return rows, nil
}

// pickFailLinks selects up to n distinct in-use duplex router links,
// scanning the sessions' router segments in creation order and taking at
// most one new link per session per pass, so the failures spread across the
// population instead of gutting one path. Deterministic: same state, same
// picks.
func pickFailLinks(g *graph.Graph, sessions []*network.Session, n int) []graph.LinkID {
	taken := make(map[graph.LinkID]bool)
	var out []graph.LinkID
	for len(out) < n {
		before := len(out)
		for _, s := range sessions {
			if len(out) >= n {
				break
			}
			if !s.Active() {
				continue
			}
			p := s.Current().Path
			for _, l := range p[1 : len(p)-1] {
				if !g.LinkUp(l) || taken[l] {
					continue
				}
				taken[l] = true
				taken[g.Link(l).Reverse] = true
				out = append(out, l)
				break // one link per session per pass
			}
		}
		if len(out) == before {
			break // no eligible links left
		}
	}
	return out
}
