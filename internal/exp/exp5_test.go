package exp

import (
	"bytes"
	"reflect"
	"testing"

	"bneck/internal/topology"
)

func smallExp5() Exp5Config {
	cfg := DefaultExp5()
	cfg.Sizes = []topology.Params{topology.Small}
	cfg.Scenarios = []topology.Scenario{topology.LAN}
	cfg.Seeds = []int64{1}
	cfg.Sessions = 60
	cfg.Fails = 3
	return cfg
}

// TestExp5MeasuresTheTrade pins the experiment's point: after the restore,
// the reoptimize run carries no excess hops and at least the pinned run's
// rate, and pays for it with reconfiguration packets the pinned run never
// sends.
func TestExp5MeasuresTheTrade(t *testing.T) {
	rows, err := RunExperiment5(smallExp5())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 2 policies × 3 phases", len(rows))
	}
	byKey := make(map[string]Exp5Row)
	for _, r := range rows {
		byKey[r.Policy+"/"+r.Phase] = r
	}
	pinned, reopt := byKey["pinned/restore"], byKey["reoptimize/restore"]
	pinnedFail := byKey["pinned/fail"]
	if pinnedFail.Migrated == 0 {
		t.Fatal("failure phase migrated nobody — the workload is inert")
	}
	if pinned.Reoptimized != 0 {
		t.Fatalf("pinned run reoptimized %d sessions", pinned.Reoptimized)
	}
	if pinned.HopsActive <= pinned.HopsBest {
		t.Fatalf("pinned restore carries no detour debt (hops %d, best %d) — the experiment shows nothing",
			pinned.HopsActive, pinned.HopsBest)
	}
	if reopt.Reoptimized == 0 {
		t.Fatal("reoptimize run moved nobody back")
	}
	if reopt.HopsActive != reopt.HopsBest {
		t.Fatalf("reoptimize restore left excess hops: %d vs best %d", reopt.HopsActive, reopt.HopsBest)
	}
	if reopt.SumRateMbps < pinned.SumRateMbps {
		t.Fatalf("reoptimize rate %.1f below pinned %.1f", reopt.SumRateMbps, pinned.SumRateMbps)
	}
	if reopt.ReconfigPackets <= pinned.ReconfigPackets {
		t.Fatalf("reoptimize reconfig packets %d not above pinned %d — the cost side is missing",
			reopt.ReconfigPackets, pinned.ReconfigPackets)
	}
	// Both fail phases are identical workloads: the policies must not
	// diverge before the restore.
	reoptFail := byKey["reoptimize/fail"]
	pinnedFail.Policy, reoptFail.Policy = "", ""
	if !reflect.DeepEqual(pinnedFail, reoptFail) {
		t.Fatalf("fail phases diverged before the restore:\n%+v\n%+v", pinnedFail, reoptFail)
	}
}

func exp5ShardCSV(t *testing.T, shards, windowBatch int, speculate bool) []byte {
	t.Helper()
	cfg := smallExp5()
	cfg.Scenarios = []topology.Scenario{topology.LAN, topology.WAN}
	if shards >= 1 {
		cfg.Shards = shards
	}
	cfg.WindowBatch = windowBatch
	cfg.Speculate = speculate
	rows, err := RunExperiment5(cfg)
	if err != nil {
		t.Fatalf("shards=%d batch=%d: %v", shards, windowBatch, err)
	}
	var buf bytes.Buffer
	if err := WriteExp5CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestExp5ShardedCSVByteIdentical is the policy-on determinism acceptance
// criterion: the re-optimization sweep runs at barriers in creation order,
// so exp5 CSVs — policy on — are byte-identical on the classic engine and
// on the sharded engine at every shard count and window-batch setting.
func TestExp5ShardedCSVByteIdentical(t *testing.T) {
	classic := exp5ShardCSV(t, -1, 0, false)
	for _, batch := range []int{1, 8} {
		for _, shards := range []int{1, 2, 4} {
			got := exp5ShardCSV(t, shards, batch, false)
			if !bytes.Equal(classic, got) {
				t.Errorf("exp5 CSV differs from classic at %d shards, batch %d:\nclassic:\n%s\nsharded:\n%s",
					shards, batch, classic, got)
			}
		}
	}
}

// TestExp5SpeculationCSVByteIdentical: the fail -> restore sweep is the
// quiescence-heavy workload speculation targets; with the policy sweep at
// barriers bounding every attempt, CSVs stay byte-identical with
// speculation on at every shard count and batch setting.
func TestExp5SpeculationCSVByteIdentical(t *testing.T) {
	base := exp5ShardCSV(t, -1, 0, false)
	for _, batch := range []int{1, 8} {
		for _, shards := range []int{1, 2, 4, 8} {
			got := exp5ShardCSV(t, shards, batch, true)
			if !bytes.Equal(base, got) {
				t.Errorf("exp5 CSV differs with speculation at %d shards, batch %d:\nbase:\n%s\nspeculative:\n%s",
					shards, batch, base, got)
			}
		}
	}
}

// TestExp5ParallelMatchesSerial: worker fan-out never changes rows,
// CSV bytes, or progress lines.
func TestExp5ParallelMatchesSerial(t *testing.T) {
	base := smallExp5()
	base.Seeds = []int64{1, 2, 3}
	run := func(workers int) ([]Exp5Row, []byte, []byte) {
		cfg := base
		cfg.Workers = workers
		var progress bytes.Buffer
		cfg.Progress = &progress
		rows, err := RunExperiment5(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var csv bytes.Buffer
		if err := WriteExp5CSV(&csv, rows); err != nil {
			t.Fatal(err)
		}
		return rows, csv.Bytes(), progress.Bytes()
	}
	serialRows, serialCSV, serialProgress := run(1)
	parallelRows, parallelCSV, parallelProgress := run(4)
	if !reflect.DeepEqual(serialRows, parallelRows) {
		t.Fatalf("parallel rows differ from serial")
	}
	if !bytes.Equal(serialCSV, parallelCSV) {
		t.Fatalf("parallel CSV differs from serial:\n%s\n%s", serialCSV, parallelCSV)
	}
	if !bytes.Equal(serialProgress, parallelProgress) {
		t.Fatalf("parallel progress differs from serial:\n%s\n%s", serialProgress, parallelProgress)
	}
}

func TestExp5RejectsBadConfig(t *testing.T) {
	cfg := smallExp5()
	cfg.Sessions = 0
	if _, err := RunExperiment5(cfg); err == nil {
		t.Fatal("accepted zero sessions")
	}
	cfg = smallExp5()
	cfg.Fails = 0
	if _, err := RunExperiment5(cfg); err == nil {
		t.Fatal("accepted zero failures")
	}
}
