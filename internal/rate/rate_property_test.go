package rate

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// arb builds an arbitrary finite Rate from random components, biased toward
// small denominators (like real bottleneck rates) but occasionally huge, to
// exercise the big.Rat promotion path.
func arb(r *rand.Rand) Rate {
	den := int64(1 + r.Intn(12))
	num := r.Int63n(1_000_000) - 500_000
	if r.Intn(8) == 0 { // huge values to force overflow handling
		num = r.Int63() - (1 << 62)
		den = 1 + r.Int63n(1<<31)
	}
	return FromFrac(num, den)
}

func ref(r Rate) *big.Rat {
	if r.IsInf() {
		panic("ref on inf")
	}
	return new(big.Rat).SetFrac(
		new(big.Int).Set(r.toBig().Num()),
		new(big.Int).Set(r.toBig().Denom()),
	)
}

func TestPropAddMatchesBigRat(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a, b := arb(r), arb(r)
		got := a.Add(b)
		want := new(big.Rat).Add(ref(a), ref(b))
		if got.Key() != want.RatString() {
			t.Fatalf("iter %d: %v + %v = %v, want %v", i, a, b, got, want.RatString())
		}
	}
}

func TestPropSubMatchesBigRat(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		a, b := arb(r), arb(r)
		got := a.Sub(b)
		want := new(big.Rat).Sub(ref(a), ref(b))
		if got.Key() != want.RatString() {
			t.Fatalf("iter %d: %v - %v = %v, want %v", i, a, b, got, want.RatString())
		}
	}
}

func TestPropDivIntMatchesBigRat(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		a := arb(r)
		n := 1 + r.Intn(1000)
		got := a.DivInt(n)
		want := new(big.Rat).Quo(ref(a), big.NewRat(int64(n), 1))
		if got.Key() != want.RatString() {
			t.Fatalf("iter %d: %v / %d = %v, want %v", i, a, n, got, want.RatString())
		}
	}
}

func TestPropCmpMatchesBigRat(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		a, b := arb(r), arb(r)
		if got, want := a.Cmp(b), ref(a).Cmp(ref(b)); got != want {
			t.Fatalf("iter %d: Cmp(%v,%v) = %d, want %d", i, a, b, got, want)
		}
	}
}

// TestPropSumInvertible is the property the protocol relies on: maintaining a
// running sum by adding and later subtracting the same values returns exactly
// to the starting point, regardless of interleaving.
func TestPropSumInvertible(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		n := 1 + r.Intn(50)
		vals := make([]Rate, n)
		sum := Zero
		for i := range vals {
			vals[i] = arb(r)
			sum = sum.Add(vals[i])
		}
		// Remove in a random order.
		r.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		for _, v := range vals {
			sum = sum.Sub(v)
		}
		if !sum.IsZero() {
			t.Fatalf("iter %d: sum did not return to zero: %v", iter, sum)
		}
	}
}

// TestPropAddCommutesAssociates uses testing/quick's checker via a function
// over int64 fraction parts.
func TestPropAddCommutesAssociates(t *testing.T) {
	f := func(an, bn, cn int64, adRaw, bdRaw, cdRaw uint32) bool {
		ad := int64(adRaw%1000) + 1
		bd := int64(bdRaw%1000) + 1
		cd := int64(cdRaw%1000) + 1
		a, b, c := FromFrac(an%100000, ad), FromFrac(bn%100000, bd), FromFrac(cn%100000, cd)
		if !a.Add(b).Equal(b.Add(a)) {
			return false
		}
		return a.Add(b).Add(c).Equal(a.Add(b.Add(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropKeyInjective: equal values have equal keys and unequal values have
// unequal keys.
func TestPropKeyInjective(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 5000; i++ {
		a, b := arb(r), arb(r)
		if a.Equal(b) != (a.Key() == b.Key()) {
			t.Fatalf("Key injectivity broken for %v and %v", a, b)
		}
	}
}

func TestPropMinMaxLattice(t *testing.T) {
	f := func(an, bn int64, adRaw, bdRaw uint32) bool {
		a := FromFrac(an%1_000_000, int64(adRaw%100)+1)
		b := FromFrac(bn%1_000_000, int64(bdRaw%100)+1)
		lo, hi := Min(a, b), Max(a, b)
		return lo.LessEq(a) && lo.LessEq(b) && hi.GreaterEq(a) && hi.GreaterEq(b) &&
			(lo.Equal(a) || lo.Equal(b)) && (hi.Equal(a) || hi.Equal(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
