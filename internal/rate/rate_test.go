package rate

import (
	"math"
	"math/big"
	"testing"
)

func TestZeroValue(t *testing.T) {
	var r Rate
	if !r.IsZero() {
		t.Fatalf("zero value is not zero: %v", r)
	}
	if !r.Equal(Zero) {
		t.Fatalf("zero value != Zero")
	}
	if got := r.Add(FromInt64(5)); !got.Equal(FromInt64(5)) {
		t.Fatalf("0+5 = %v", got)
	}
	if r.Key() != "0" {
		t.Fatalf("zero Key = %q", r.Key())
	}
}

func TestFromFrac(t *testing.T) {
	cases := []struct {
		num, den int64
		want     string
	}{
		{1, 2, "1/2"},
		{2, 4, "1/2"},
		{-2, 4, "-1/2"},
		{2, -4, "-1/2"},
		{-2, -4, "1/2"},
		{0, 7, "0"},
		{6, 3, "2"},
		{7, 1, "7"},
	}
	for _, c := range cases {
		got := FromFrac(c.num, c.den)
		if got.Key() != c.want {
			t.Errorf("FromFrac(%d,%d).Key() = %q, want %q", c.num, c.den, got.Key(), c.want)
		}
	}
}

func TestFromFracPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	FromFrac(1, 0)
}

func TestArithmeticBasics(t *testing.T) {
	half := FromFrac(1, 2)
	third := FromFrac(1, 3)
	if got := half.Add(third); got.Key() != "5/6" {
		t.Errorf("1/2+1/3 = %v", got)
	}
	if got := half.Sub(third); got.Key() != "1/6" {
		t.Errorf("1/2-1/3 = %v", got)
	}
	if got := third.Sub(half); got.Key() != "-1/6" {
		t.Errorf("1/3-1/2 = %v", got)
	}
	if got := FromInt64(10).DivInt(4); got.Key() != "5/2" {
		t.Errorf("10/4 = %v", got)
	}
	if got := FromFrac(5, 2).MulInt(4); got.Key() != "10" {
		t.Errorf("5/2*4 = %v", got)
	}
}

func TestInfSemantics(t *testing.T) {
	if !Inf.IsInf() {
		t.Fatalf("Inf.IsInf() = false")
	}
	if got := Inf.Add(FromInt64(3)); !got.IsInf() {
		t.Errorf("inf+3 = %v", got)
	}
	if got := FromInt64(3).Add(Inf); !got.IsInf() {
		t.Errorf("3+inf = %v", got)
	}
	if got := Inf.Sub(FromInt64(3)); !got.IsInf() {
		t.Errorf("inf-3 = %v", got)
	}
	if got := Inf.DivInt(7); !got.IsInf() {
		t.Errorf("inf/7 = %v", got)
	}
	if Inf.Cmp(FromInt64(1<<62)) != 1 {
		t.Errorf("inf not greater than huge finite")
	}
	if Inf.Cmp(Inf) != 0 {
		t.Errorf("inf != inf")
	}
	if !math.IsInf(Inf.Float64(), 1) {
		t.Errorf("Inf.Float64() = %v", Inf.Float64())
	}
	if Min(Inf, FromInt64(4)).Key() != "4" {
		t.Errorf("Min(inf,4) wrong")
	}
	if Max(Inf, FromInt64(4)) != Inf {
		t.Errorf("Max(inf,4) wrong")
	}
}

func TestSubPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"finite-inf": func() { FromInt64(1).Sub(Inf) },
		"inf-inf":    func() { Inf.Sub(Inf) },
		"neg-inf":    func() { Inf.Neg() },
		"div-zero":   func() { FromInt64(1).DivInt(0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestCmpOrdering(t *testing.T) {
	vals := []Rate{
		FromFrac(-3, 2), Zero, FromFrac(1, 3), FromFrac(1, 2),
		FromInt64(1), FromInt64(100), Inf,
	}
	for i := range vals {
		for j := range vals {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := vals[i].Cmp(vals[j]); got != want {
				t.Errorf("Cmp(%v,%v) = %d, want %d", vals[i], vals[j], got, want)
			}
		}
	}
}

func TestOverflowPromotion(t *testing.T) {
	// 2^62/3 + 2^62/5: the cross multiplication overflows int64 so the big
	// path must take over, and the result must still be exact.
	big1 := FromFrac(1<<62, 3)
	big2 := FromFrac(1<<62, 5)
	got := big1.Add(big2)
	want := new(big.Rat).Add(big.NewRat(1<<62, 3), big.NewRat(1<<62, 5))
	if got.Key() != want.RatString() {
		t.Fatalf("overflowed add = %v, want %v", got.Key(), want.RatString())
	}
	// And back: subtracting one operand must return exactly the other and
	// demote to the fast path.
	back := got.Sub(big2)
	if !back.Equal(big1) {
		t.Fatalf("sub did not invert add: %v", back)
	}
	if back.br != nil {
		t.Fatalf("result was not demoted to the int64 fast path")
	}
}

func TestDemotionCanonical(t *testing.T) {
	// A value computed via the big path must have the same Key as the same
	// value built on the fast path.
	a := FromBigRat(big.NewRat(7, 3))
	b := FromFrac(7, 3)
	if a.Key() != b.Key() || !a.Equal(b) {
		t.Fatalf("big/int paths disagree: %v vs %v", a, b)
	}
	if a.br != nil {
		t.Fatalf("FromBigRat did not demote small value")
	}
}

func TestMbps(t *testing.T) {
	if got := Mbps(100); got.Key() != "100000000" {
		t.Fatalf("Mbps(100) = %v", got)
	}
}

func TestFloat64(t *testing.T) {
	if got := FromFrac(1, 2).Float64(); got != 0.5 {
		t.Fatalf("1/2 as float = %v", got)
	}
	if got := Zero.Float64(); got != 0 {
		t.Fatalf("0 as float = %v", got)
	}
}

func TestSignAndIsZero(t *testing.T) {
	if FromFrac(-1, 2).Sign() != -1 || FromInt64(3).Sign() != 1 || Zero.Sign() != 0 || Inf.Sign() != 1 {
		t.Fatalf("Sign wrong")
	}
	if FromInt64(1).IsZero() || !FromInt64(0).IsZero() {
		t.Fatalf("IsZero wrong")
	}
}

func TestMinMax(t *testing.T) {
	a, b := FromFrac(1, 3), FromFrac(1, 2)
	if Min(a, b) != a || Min(b, a) != a {
		t.Fatalf("Min wrong")
	}
	if Max(a, b) != b || Max(b, a) != b {
		t.Fatalf("Max wrong")
	}
}

func TestStringRendering(t *testing.T) {
	if Inf.String() != "inf" {
		t.Fatalf("inf renders %q", Inf.String())
	}
	if FromFrac(3, 4).String() != "3/4" {
		t.Fatalf("3/4 renders %q", FromFrac(3, 4).String())
	}
}
