// Package rate implements exact rational arithmetic for link and session
// rates.
//
// B-Neck's stability and quiescence conditions (Definition 2 of the paper)
// are exact equality tests between stored session rates and freshly computed
// bottleneck rates B_e = (C_e - Σ λ_s)/|R_e|. Floating point drift in the
// incrementally maintained sums would make those tests fail spuriously and
// the protocol would either livelock (endless Update cycles) or mis-declare
// bottlenecks. Rates are therefore exact rationals.
//
// A Rate is immutable. The implementation keeps an int64 numerator and
// denominator fast path and transparently promotes to math/big.Rat when an
// operation would overflow. Values are always normalized (reduced fraction,
// positive denominator, demoted to the int64 path whenever they fit), so two
// equal rates always have identical representations and Key strings.
//
// The zero value of Rate is the rate 0.
package rate

import (
	"fmt"
	"math"
	"math/big"
	"math/bits"
)

// Rate is an exact rational number of bits per second (or any other unit the
// caller chooses), with a distinguished +∞ used for unbounded session
// demands. Rate values are immutable; all methods return new values.
type Rate struct {
	// Exactly one interpretation applies, checked in this order:
	//   inf       => +∞
	//   br != nil => value is *br (normalized, does not fit int64 fast path)
	//   den != 0  => value is num/den (reduced, den > 0)
	//   otherwise => value is 0 (the useful zero value)
	num int64
	den int64
	br  *big.Rat
	inf bool
}

// Zero is the rate 0.
var Zero = Rate{num: 0, den: 1}

// Inf is the unbounded rate +∞, used for sessions with no maximum demand.
var Inf = Rate{inf: true}

// FromInt64 returns the rate v/1.
func FromInt64(v int64) Rate { return Rate{num: v, den: 1} }

// FromFrac returns the rate num/den. It panics if den == 0.
func FromFrac(num, den int64) Rate {
	if den == 0 {
		panic("rate: zero denominator")
	}
	return normalizeInt(num, den)
}

// FromBigRat returns the rate equal to r. The argument is copied.
func FromBigRat(r *big.Rat) Rate { return normalizeBig(new(big.Rat).Set(r)) }

// Mbps returns the rate v megabits per second expressed in bits per second.
// It is a convenience for building topologies with the paper's capacities.
func Mbps(v int64) Rate { return FromInt64(v * 1_000_000) }

// normalizeInt reduces num/den and returns the canonical Rate.
func normalizeInt(num, den int64) Rate {
	if den < 0 {
		num, den = -num, -den
	}
	if num == 0 {
		return Zero
	}
	g := gcd64(abs64(num), den)
	return Rate{num: num / g, den: den / g}
}

// normalizeBig demotes r to the int64 fast path when possible. It takes
// ownership of r.
func normalizeBig(r *big.Rat) Rate {
	if r.Num().IsInt64() && r.Denom().IsInt64() {
		// big.Rat is always normalized with positive denominator.
		return Rate{num: r.Num().Int64(), den: r.Denom().Int64()}
	}
	return Rate{br: r}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// IsInf reports whether r is +∞.
func (r Rate) IsInf() bool { return r.inf }

// IsZero reports whether r is 0.
func (r Rate) IsZero() bool {
	return !r.inf && r.br == nil && (r.den == 0 || r.num == 0)
}

// Sign returns -1, 0 or +1 according to the sign of r. +∞ has sign +1.
func (r Rate) Sign() int {
	switch {
	case r.inf:
		return 1
	case r.br != nil:
		return r.br.Sign()
	case r.den == 0 || r.num == 0:
		return 0
	case r.num < 0:
		return -1
	default:
		return 1
	}
}

// toBig returns the value as a big.Rat. It panics on +∞. The result must not
// be mutated when it aliases r.br; callers that mutate must copy.
func (r Rate) toBig() *big.Rat {
	if r.inf {
		panic("rate: toBig on +Inf")
	}
	if r.br != nil {
		return r.br
	}
	if r.den == 0 {
		return new(big.Rat)
	}
	return big.NewRat(r.num, r.den)
}

// parts returns the int64 numerator and denominator, normalizing the zero
// value, and whether the fast path applies.
func (r Rate) parts() (num, den int64, ok bool) {
	if r.inf || r.br != nil {
		return 0, 0, false
	}
	if r.den == 0 {
		return 0, 1, true
	}
	return r.num, r.den, true
}

// mul64 multiplies two int64s, reporting whether the result fits in an int64.
func mul64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

func add64(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// Add returns r + o. Adding anything to +∞ yields +∞.
func (r Rate) Add(o Rate) Rate {
	if r.inf || o.inf {
		return Inf
	}
	rn, rd, rok := r.parts()
	on, od, ook := o.parts()
	if rok && ook {
		// Knuth's reduced rational addition: with g = gcd(rd, od),
		// r + o = (rn*(od/g) + on*(rd/g)) / (rd*(od/g)), which keeps the
		// intermediates as small as possible and so stays on the int64 fast
		// path far longer than the textbook cross-multiplication.
		g := gcd64(rd, od)
		odg, rdg := od/g, rd/g
		a, ok1 := mul64(rn, odg)
		b, ok2 := mul64(on, rdg)
		d, ok3 := mul64(rd, odg)
		if ok1 && ok2 && ok3 {
			if n, ok := add64(a, b); ok {
				return normalizeInt(n, d)
			}
		}
	}
	return normalizeBig(new(big.Rat).Add(r.toBig(), o.toBig()))
}

// Sub returns r - o. It panics if o is +∞ and r is finite; ∞ - x = ∞ for
// finite x.
func (r Rate) Sub(o Rate) Rate {
	if r.inf {
		if o.inf {
			panic("rate: Inf - Inf")
		}
		return Inf
	}
	if o.inf {
		panic("rate: finite - Inf")
	}
	return r.Add(o.Neg())
}

// Neg returns -r. It panics on +∞.
func (r Rate) Neg() Rate {
	if r.inf {
		panic("rate: Neg on +Inf")
	}
	if r.br != nil {
		return normalizeBig(new(big.Rat).Neg(r.br))
	}
	n, d, _ := r.parts()
	return Rate{num: -n, den: d}
}

// DivInt returns r / n for n > 0. ∞ / n = ∞. It panics if n <= 0.
func (r Rate) DivInt(n int) Rate {
	if n <= 0 {
		panic("rate: DivInt by non-positive")
	}
	if r.inf {
		return Inf
	}
	rn, rd, ok := r.parts()
	if ok {
		// Divide the gcd out of the numerator first so the new denominator
		// grows as little as possible.
		g := gcd64(abs64(rn), int64(n))
		if d, ok := mul64(rd, int64(n)/g); ok {
			return normalizeInt(rn/g, d)
		}
	}
	q := new(big.Rat).SetFrac(big.NewInt(1), big.NewInt(int64(n)))
	return normalizeBig(q.Mul(q, r.toBig()))
}

// MulInt returns r * n for n >= 0. ∞ * n = ∞ (also for n == 0, which callers
// must avoid if they need measure-theoretic conventions).
func (r Rate) MulInt(n int) Rate {
	if n < 0 {
		panic("rate: MulInt by negative")
	}
	if r.inf {
		return Inf
	}
	rn, rd, ok := r.parts()
	if ok {
		g := gcd64(rd, int64(n))
		if p, ok := mul64(rn, int64(n)/g); ok {
			return normalizeInt(p, rd/g)
		}
	}
	q := new(big.Rat).SetInt64(int64(n))
	return normalizeBig(q.Mul(q, r.toBig()))
}

// Cmp compares r and o, returning -1, 0 or +1. +∞ compares greater than every
// finite rate and equal to itself.
func (r Rate) Cmp(o Rate) int {
	switch {
	case r.inf && o.inf:
		return 0
	case r.inf:
		return 1
	case o.inf:
		return -1
	}
	rn, rd, rok := r.parts()
	on, od, ook := o.parts()
	if rok && ook {
		// Compare rn/rd vs on/od as exact 128-bit cross products: never
		// overflows and never allocates (denominators are positive, so the
		// comparison direction is preserved).
		return cmp128(rn, od, on, rd)
	}
	return r.toBig().Cmp(o.toBig())
}

// cmp128 compares the exact products a·b and c·d using 128-bit arithmetic.
func cmp128(a, b, c, d int64) int {
	negAB := (a < 0) != (b < 0)
	negCD := (c < 0) != (d < 0)
	// uint64(abs64(x)) is the true |x| for every int64 including MinInt64
	// (two's complement wraparound lands on 2^63).
	hiAB, loAB := bits.Mul64(uint64(abs64(a)), uint64(abs64(b)))
	hiCD, loCD := bits.Mul64(uint64(abs64(c)), uint64(abs64(d)))
	if hiAB == 0 && loAB == 0 {
		negAB = false
	}
	if hiCD == 0 && loCD == 0 {
		negCD = false
	}
	if negAB != negCD {
		if negAB {
			return -1
		}
		return 1
	}
	cmp := 0
	switch {
	case hiAB != hiCD:
		if hiAB < hiCD {
			cmp = -1
		} else {
			cmp = 1
		}
	case loAB != loCD:
		if loAB < loCD {
			cmp = -1
		} else {
			cmp = 1
		}
	}
	if negAB {
		return -cmp
	}
	return cmp
}

// Equal reports whether r == o exactly.
func (r Rate) Equal(o Rate) bool { return r.Cmp(o) == 0 }

// Less reports whether r < o.
func (r Rate) Less(o Rate) bool { return r.Cmp(o) < 0 }

// LessEq reports whether r <= o.
func (r Rate) LessEq(o Rate) bool { return r.Cmp(o) <= 0 }

// Greater reports whether r > o.
func (r Rate) Greater(o Rate) bool { return r.Cmp(o) > 0 }

// GreaterEq reports whether r >= o.
func (r Rate) GreaterEq(o Rate) bool { return r.Cmp(o) >= 0 }

// Min returns the smaller of r and o.
func Min(r, o Rate) Rate {
	if r.Cmp(o) <= 0 {
		return r
	}
	return o
}

// Max returns the larger of r and o.
func Max(r, o Rate) Rate {
	if r.Cmp(o) >= 0 {
		return r
	}
	return o
}

// Float64 returns the value as a float64 (for metrics and reporting only;
// never used in protocol decisions). +∞ maps to math.Inf(1).
//
//bneck:float the one sanctioned exit from exact arithmetic: a display conversion whose result never feeds back into rates.
func (r Rate) Float64() float64 {
	if r.inf {
		return math.Inf(1)
	}
	if r.br != nil {
		f, _ := r.br.Float64()
		return f
	}
	n, d, _ := r.parts()
	return float64(n) / float64(d)
}

// Key returns a canonical string representation usable as a map key. Equal
// rates always produce equal keys.
func (r Rate) Key() string {
	if r.inf {
		return "inf"
	}
	if r.br != nil {
		return r.br.RatString()
	}
	n, d, _ := r.parts()
	if d == 1 {
		return fmt.Sprintf("%d", n)
	}
	return fmt.Sprintf("%d/%d", n, d)
}

// String renders the rate for humans: integers render bare, other rationals
// as num/den, +∞ as "inf".
func (r Rate) String() string { return r.Key() }
