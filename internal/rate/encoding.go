package rate

import (
	"fmt"
	"math/big"
	"strings"
)

// Parse converts a string produced by String/Key back into a Rate. Accepted
// forms: "inf", an integer ("100000000"), or a fraction ("5/3"). Arbitrary
// precision is supported via math/big.
func Parse(s string) (Rate, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "":
		return Rate{}, fmt.Errorf("rate: empty string")
	case "inf", "Inf", "+inf", "+Inf", "∞":
		return Inf, nil
	}
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return Rate{}, fmt.Errorf("rate: cannot parse %q", s)
	}
	return normalizeBig(r), nil
}

// MarshalText implements encoding.TextMarshaler.
func (r Rate) MarshalText() ([]byte, error) {
	return []byte(r.Key()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (r *Rate) UnmarshalText(text []byte) error {
	parsed, err := Parse(string(text))
	if err != nil {
		return err
	}
	*r = parsed
	return nil
}
