package rate

import (
	"encoding"
	"encoding/json"
	"math/rand"
	"testing"
)

var (
	_ encoding.TextMarshaler   = Rate{}
	_ encoding.TextUnmarshaler = (*Rate)(nil)
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Rate
	}{
		{"inf", Inf},
		{"∞", Inf},
		{"0", Zero},
		{"100000000", Mbps(100)},
		{"5/3", FromFrac(5, 3)},
		{"-7/2", FromFrac(-7, 2)},
		{" 42 ", FromInt64(42)},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "1/2/3", "1//2"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestPropRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		v := arb(r)
		got, err := Parse(v.Key())
		if err != nil {
			t.Fatalf("round trip of %v: %v", v, err)
		}
		if !got.Equal(v) {
			t.Fatalf("round trip of %v gave %v", v, got)
		}
	}
	if got, err := Parse(Inf.Key()); err != nil || !got.IsInf() {
		t.Fatalf("inf round trip: %v %v", got, err)
	}
}

func TestJSONIntegration(t *testing.T) {
	type payload struct {
		Demand Rate `json:"demand"`
		Cap    Rate `json:"cap"`
	}
	in := payload{Demand: Inf, Cap: FromFrac(200_000_000, 3)}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Demand.IsInf() || !out.Cap.Equal(in.Cap) {
		t.Fatalf("json round trip: %+v", out)
	}
}
