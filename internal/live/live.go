// Package live runs the B-Neck protocol as a genuinely concurrent system:
// every protocol task (each session's source and destination, and each
// directed link's router task) is an actor goroutine with an unbounded FIFO
// mailbox. This is the deployment shape the paper describes — asynchronous
// tasks that execute their when-blocks atomically and exchange packets over
// FIFO links — realized with goroutines instead of a simulator.
//
// Quiescence, the paper's headline property, becomes observable termination:
// a global activity counter tracks enqueued-but-unprocessed messages
// (a counter-based variant of Dijkstra–Scholten termination detection,
// possible here because all sends happen inside message handlers), and
// WaitQuiescent blocks until the network goes silent.
//
// The runtime supports dynamic topologies: SetLinkCapacity reconfigures a
// link's router task in place (the crossing sessions re-probe), and
// FailLinks/RestoreLinks migrate affected sessions through the protocol's own
// Leave → reroute → Join, a fresh incarnation (new session ID, new path) per
// reroute so the two incarnations' in-flight packets can never interfere.
// Sessions with no surviving path are stranded and rejoin on restore. An
// optional path re-optimization policy (SetPathPolicy, see internal/policy)
// migrates sessions back onto shorter paths when restores re-enable them.
// See DESIGN.md §6 and §11.
//
// Mailboxes are unbounded by design: B-Neck generates bounded traffic per
// reconfiguration, and bounded mailboxes could deadlock the bidirectional
// packet flow (links send both up- and downstream).
//
// The runtime's locking is two-tier: topology mutation and session
// lifecycle serialize on one mutex, while the packet hot path (Emit) runs
// over independently-locked stripes of the incarnation and link tables —
// see Runtime.
package live

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bneck/internal/core"
	"bneck/internal/graph"
	"bneck/internal/metrics"
	"bneck/internal/policy"
	"bneck/internal/rate"
	"bneck/internal/waterfill"
)

// Runtime hosts a concurrent B-Neck deployment over a mutable graph.
//
// Locking is two-tier, mirroring the simulator transport's per-shard
// stats/delivery domains. The cold path — session lifecycle, topology
// mutation, migration, validation — serializes on mu, so concurrent
// reconfigurations never interleave half-applied. The hot path — Emit, one
// call per packet per hop across every actor, and the rate upcall every
// source task fires per λ-change — touches only small sharded domains: the
// incarnation lookup, the granted-rate table and the per-link
// actor/packet-counter tables are each split across emitDomains
// independently-locked stripes, so actors emitting on different sessions
// and links (and sources granting rates) proceed without contending on a
// global lock. Merge-on-demand readers (LinkPackets, Rates, Validate)
// gather the stripes.
//
// Lock order: mu → domain stripe → actor mailbox. Emit never holds two
// locks at once, and nothing acquires mu while holding a stripe. The order
// is machine-checked by bnecklint's lockorder analyzer through the
// //bneck:lock tier annotations below (DESIGN.md §12, "Machine-enforced
// invariants").
type Runtime struct {
	g *graph.Graph

	mu       sync.Mutex //bneck:lock mu
	resolver *graph.Resolver
	order    []*Session // logical sessions, in creation order
	nextID   core.SessionID
	closed   bool
	migrated uint64

	// policy is the path re-optimization policy (Pinned by default);
	// reoptimized counts the sessions it moved back onto shorter paths.
	// Guarded by mu, like the rest of the lifecycle state.
	policy      policy.Config
	reoptimized uint64
	// Reconfiguration-packet accounting, the live twin of the simulator
	// transport's: spans opened by topology-driven Leaves and joins close at
	// the next WaitQuiescent. Guarded by mu; the per-incarnation counters
	// they read are atomics bumped by Emit.
	reconfTear   []reconfIncSpan
	reconfJoin   []*incarnation
	reconfigPkts uint64

	activity *activityCounter

	// incs shards the incarnation table and the granted-rate table by
	// session ID; lnks shards the link-actor table and the per-link packet
	// counters (the live twin of the simulator's per-wire counters) by link
	// ID.
	incs [emitDomains]incDomain
	lnks [emitDomains]linkDomain
}

// emitDomains is the stripe count of the Emit-path tables. A power of two
// so the stripe pick is a mask; 32 stripes keep the collision probability
// low at actor counts well past the paper's topologies.
const emitDomains = 32

type incDomain struct {
	mu sync.Mutex //bneck:lock stripe
	m  map[core.SessionID]*incarnation
	// rates holds the granted rates of this stripe's sessions. Rate upcalls
	// arrive from every source actor concurrently (one per λ-change per
	// session), so a single global rates mutex was the one remaining
	// hot-path funnel; striping it here puts the write under the same lock
	// Emit's incarnation lookup already takes, with the same collision odds.
	rates map[core.SessionID]rate.Rate
}

type linkDomain struct {
	mu     sync.Mutex //bneck:lock stripe
	actors map[graph.LinkID]*linkActor
	pkts   map[graph.LinkID]uint64
}

type linkActor struct {
	a    *actor
	task *core.RouterLink
}

func incStripe(id core.SessionID) int { return int(uint64(id) & (emitDomains - 1)) }
func linkStripe(id graph.LinkID) int  { return int(uint32(id) & (emitDomains - 1)) }

// reconfIncSpan is one pending teardown debit: the packets a force-departed
// incarnation sends from its Leave (base) until the next quiescence are its
// Leave cascade — reconfiguration traffic.
type reconfIncSpan struct {
	inc  *incarnation
	base uint64
}

// incarnation is one protocol-level lifetime of a logical session: a session
// ID, a path, and the actors hosting its source and destination tasks. A
// topology-event reroute retires the old incarnation (through Leave) and
// creates a new one.
type incarnation struct {
	id    core.SessionID
	path  graph.Path
	src   *actor
	dst   *actor
	srcT  *core.SourceNode
	owner *Session
	// pkts counts the packets sent across physical links on this
	// incarnation's behalf. Bumped by Emit from any actor goroutine, hence
	// atomic; everything else reads it under mu.
	pkts atomic.Uint64
	// reconfAccounted marks an incarnation whose packets-until-quiescence
	// are already attributed to reconfiguration traffic (guarded by mu).
	reconfAccounted bool
	// reclaimed marks an incarnation whose actors were stopped after its
	// Leave cascade drained; a later Join mints a fresh incarnation.
	reclaimed bool
	// departed marks an incarnation a Leave was issued to. A later Join
	// mints a fresh incarnation instead of rejoining this ID: responses of
	// the departed lifetime can still be in flight, and a link receiving
	// one for a re-created entry would corrupt its state machine (the
	// fresh-ID rule migrations and restores already follow).
	departed bool
}

// New returns a runtime over g. The runtime owns g's mutable state: apply
// topology changes only through SetLinkCapacity/FailLinks/RestoreLinks (the
// node/link structure itself must be complete before traffic flows).
func New(g *graph.Graph) *Runtime {
	rt := &Runtime{
		g:        g,
		resolver: graph.NewResolver(g, 256),
		nextID:   1,
		activity: newActivityCounter(),
	}
	for i := range rt.incs {
		rt.incs[i].m = make(map[core.SessionID]*incarnation)
		rt.incs[i].rates = make(map[core.SessionID]rate.Rate)
	}
	for i := range rt.lnks {
		rt.lnks[i].actors = make(map[graph.LinkID]*linkActor)
		rt.lnks[i].pkts = make(map[graph.LinkID]uint64)
	}
	return rt
}

// SetPathPolicy installs the path re-optimization policy (see
// internal/policy). The default is Pinned. Install it before topology
// events fire; the policy itself is applied under the runtime mutex, so the
// call is safe at any time.
func (rt *Runtime) SetPathPolicy(cfg policy.Config) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.policy = cfg
}

// incarnationFor returns the live incarnation registered under a session ID
// (nil when retired and reclaimed). Hot path: one stripe lock.
func (rt *Runtime) incarnationFor(id core.SessionID) *incarnation {
	d := &rt.incs[incStripe(id)]
	d.mu.Lock()
	inc := d.m[id]
	d.mu.Unlock()
	return inc
}

// setRate records a granted rate from a source task's rate upcall. Hot
// path: upcalls arrive concurrently from every source actor goroutine; one
// stripe lock each.
func (rt *Runtime) setRate(id core.SessionID, lambda rate.Rate) {
	d := &rt.incs[incStripe(id)]
	d.mu.Lock()
	d.rates[id] = lambda
	d.mu.Unlock()
}

// dropRate forgets a departed incarnation's granted rate. Callers may hold
// rt.mu: mu → stripe is the established order.
func (rt *Runtime) dropRate(id core.SessionID) {
	d := &rt.incs[incStripe(id)]
	d.mu.Lock()
	delete(d.rates, id)
	d.mu.Unlock()
}

// rateFor reads one session's granted rate. One stripe lock.
func (rt *Runtime) rateFor(id core.SessionID) (rate.Rate, bool) {
	d := &rt.incs[incStripe(id)]
	d.mu.Lock()
	r, ok := d.rates[id]
	d.mu.Unlock()
	return r, ok
}

// countPacket bumps a directed link's packet counter. Hot path: one stripe
// lock.
func (rt *Runtime) countPacket(l graph.LinkID) {
	d := &rt.lnks[linkStripe(l)]
	d.mu.Lock()
	d.pkts[l]++
	d.mu.Unlock()
}

// Session is a logical session between two hosts. Reroutes change its
// incarnation (ID and path) but not its identity.
type Session struct {
	rt               *Runtime
	srcHost, dstHost graph.NodeID

	// Guarded by rt.mu.
	cur      *incarnation
	demand   rate.Rate
	active   bool // user intent: joined and not left
	stranded bool // no path between the hosts right now
}

// NewSession creates a session along path (see graph.Resolver.HostPath).
func (rt *Runtime) NewSession(path graph.Path) (*Session, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil, fmt.Errorf("live: runtime closed")
	}
	if err := graph.ValidatePath(rt.g, path); err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	s := &Session{
		rt:      rt,
		srcHost: rt.g.Link(path[0]).From,
		dstHost: rt.g.Link(path[len(path)-1]).To,
	}
	rt.newIncarnationLocked(s, append(graph.Path(nil), path...))
	rt.order = append(rt.order, s)
	return s, nil
}

// newIncarnationLocked mints a fresh protocol identity for s on path and
// starts its actors. Callers hold rt.mu.
func (rt *Runtime) newIncarnationLocked(s *Session, path graph.Path) {
	id := rt.nextID
	rt.nextID++
	inc := &incarnation{id: id, path: path, owner: s}
	inc.srcT = core.NewSourceNode(id, (*emitter)(rt), rt.setRate)
	dstT := core.NewDestinationNode(id, (*emitter)(rt))
	inc.src = newActor(rt.activity)
	inc.dst = newActor(rt.activity)
	srcT := inc.srcT
	inc.src.start(func(m message) {
		// Guards make session events idempotent: a user Leave racing a
		// migration Leave (or a scripted double event) dissolves instead of
		// tripping the task's state machine.
		switch m.kind {
		case msgPacket:
			srcT.Receive(m.pkt)
		case msgJoin:
			if !srcT.Active() {
				srcT.Join(m.demand)
			}
		case msgLeave:
			if srcT.Active() {
				srcT.Leave()
			}
		case msgChange:
			if srcT.Active() {
				srcT.Change(m.demand)
			}
		}
	})
	hop := len(path) + 1
	inc.dst.start(func(m message) { dstT.Receive(m.pkt, hop) })
	d := &rt.incs[incStripe(id)]
	d.mu.Lock()
	d.m[id] = inc
	d.mu.Unlock()
	s.cur = inc
}

// ID returns the session's current protocol identifier (reroutes change it).
func (s *Session) ID() core.SessionID {
	s.rt.mu.Lock()
	defer s.rt.mu.Unlock()
	return s.cur.id
}

// Path returns the session's current path. The caller must not modify it.
func (s *Session) Path() graph.Path {
	s.rt.mu.Lock()
	defer s.rt.mu.Unlock()
	return s.cur.path
}

// Stranded reports whether the session is parked without a path after a link
// failure.
func (s *Session) Stranded() bool {
	s.rt.mu.Lock()
	defer s.rt.mu.Unlock()
	return s.stranded
}

// Join asynchronously invokes API.Join(s, demand).
//
// Join, Leave and Change enqueue while holding rt.mu so a concurrent
// topology event (FailLinks, which also holds rt.mu while it migrates)
// cannot slip between reading the current incarnation and the enqueue —
// otherwise a Join could land in a retired incarnation's mailbox after its
// migration Leave and resurrect it on a failed path. The established lock
// order rt.mu → actor.mu makes the nested enqueue safe.
func (s *Session) Join(demand rate.Rate) {
	s.rt.mu.Lock()
	defer s.rt.mu.Unlock()
	s.demand = demand
	s.active = true
	if s.stranded {
		return // joins when a restore reconnects the hosts
	}
	if s.cur.reclaimed || s.cur.departed {
		// The previous incarnation left (its actors may or may not have
		// been reclaimed yet); rejoin as a fresh incarnation on the same
		// path so its in-flight teardown traffic cannot touch the new
		// lifetime's state.
		s.rt.newIncarnationLocked(s, s.cur.path)
	}
	s.cur.src.enqueue(message{kind: msgJoin, demand: demand})
}

// Leave asynchronously invokes API.Leave(s). See Join for the locking
// discipline.
func (s *Session) Leave() {
	s.rt.mu.Lock()
	defer s.rt.mu.Unlock()
	s.active = false
	stranded := s.stranded
	s.stranded = false
	s.rt.dropRate(s.cur.id)
	if stranded {
		return
	}
	s.cur.departed = true
	s.cur.src.enqueue(message{kind: msgLeave})
}

// Active reports whether the session has joined, not left, and is not
// stranded by a link failure.
func (s *Session) Active() bool {
	s.rt.mu.Lock()
	defer s.rt.mu.Unlock()
	return s.active && !s.stranded
}

// Change asynchronously invokes API.Change(s, demand). See Join for the
// locking discipline.
func (s *Session) Change(demand rate.Rate) {
	s.rt.mu.Lock()
	defer s.rt.mu.Unlock()
	s.demand = demand
	if s.stranded {
		return // the recorded demand applies on rejoin
	}
	s.cur.src.enqueue(message{kind: msgChange, demand: demand})
}

// Rate returns the session's last granted rate. Safe to call from any
// goroutine; stable once WaitQuiescent has returned.
func (s *Session) Rate() (rate.Rate, bool) {
	s.rt.mu.Lock()
	id, gone := s.cur.id, s.stranded || !s.active
	s.rt.mu.Unlock()
	if gone {
		return rate.Zero, false
	}
	return s.rt.rateFor(id)
}

// SetLinkCapacity changes the capacity of the given directed links. Pass a
// link and its reverse for a duplex reconfiguration. Crossing sessions
// re-probe and the network re-quiesces by itself. Reconfigure only links
// that are up: on a failed link the re-probe races the migration teardown
// of its departing sessions (the scenario checker rejects such scripts
// statically, and the simulator transport assumes the same contract).
func (rt *Runtime) SetLinkCapacity(c rate.Rate, links ...graph.LinkID) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return
	}
	var upgraded map[graph.LinkID]bool
	for _, l := range links {
		old := rt.g.Link(l).Capacity
		rt.g.SetCapacity(l, c)
		d := &rt.lnks[linkStripe(l)]
		d.mu.Lock()
		la, ok := d.actors[l]
		d.mu.Unlock()
		if ok {
			la.a.enqueue(message{kind: msgSetCapacity, demand: c})
		}
		if rt.policy.CapacityTriggers(old, c) {
			if upgraded == nil {
				upgraded = make(map[graph.LinkID]bool, len(links))
			}
			upgraded[l] = true
		}
	}
	if upgraded != nil {
		rt.reoptimizeLocked(upgraded)
	}
}

// FailLinks takes the given directed links down and migrates crossing
// sessions onto surviving paths (or strands them). All listed links fail
// before any session reroutes.
func (rt *Runtime) FailLinks(links ...graph.LinkID) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return
	}
	failed := make(map[graph.LinkID]bool, len(links))
	for _, l := range links {
		if rt.g.LinkUp(l) {
			rt.g.FailLink(l)
			failed[l] = true
		}
	}
	if len(failed) == 0 {
		return
	}
	for _, s := range rt.order {
		if s.stranded || !crossesAny(s.cur.path, failed) {
			continue
		}
		rt.migrateLocked(s)
	}
}

// RestoreLinks brings the given directed links back up and readmits stranded
// sessions whose hosts are reconnected. Routed sessions keep their pinned
// paths under the default Pinned policy; under ReoptimizeOnRestore
// (SetPathPolicy) the restore also sweeps the active population and
// migrates sessions back onto shorter paths.
func (rt *Runtime) RestoreLinks(links ...graph.LinkID) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return
	}
	restored := false
	for _, l := range links {
		if !rt.g.LinkUp(l) {
			rt.g.RestoreLink(l)
			restored = true
		}
	}
	if !restored {
		return
	}
	for _, s := range rt.order {
		if !s.stranded {
			continue
		}
		path, err := rt.resolver.HostPath(s.srcHost, s.dstHost)
		if err != nil {
			continue
		}
		s.stranded = false
		rt.rejoinLocked(s, path)
	}
	rt.reoptimizeLocked(nil)
}

// Migrations returns how many session reroutes link failures have forced.
// Policy-driven reroutes are counted separately by Reoptimizations.
func (rt *Runtime) Migrations() uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.migrated
}

// Reoptimizations returns how many sessions the path policy migrated back
// onto shorter paths (zero under the default Pinned policy).
func (rt *Runtime) Reoptimizations() uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.reoptimized
}

// retireLocked force-departs s's current incarnation — Leave, granted-rate
// cleanup, teardown accounting — the shared first half of every
// topology-driven reroute. Only meaningful for active sessions. Callers
// hold rt.mu.
func (rt *Runtime) retireLocked(s *Session) {
	rt.beginTeardownLocked(s.cur)
	s.cur.departed = true
	s.cur.src.enqueue(message{kind: msgLeave})
	rt.dropRate(s.cur.id)
}

// rejoinLocked mints a fresh incarnation for s on path and, when the user
// intent is joined, enqueues its Join with reconfiguration accounting —
// the shared second half of every topology-driven reroute. Callers hold
// rt.mu.
func (rt *Runtime) rejoinLocked(s *Session, path graph.Path) {
	rt.newIncarnationLocked(s, path)
	if !s.active {
		return
	}
	rt.markReconfigJoinLocked(s.cur)
	s.cur.src.enqueue(message{kind: msgJoin, demand: s.demand})
}

// migrateLocked retires s's current incarnation through Leave and rejoins a
// fresh one on a surviving path, or strands the session.
func (rt *Runtime) migrateLocked(s *Session) {
	if s.active {
		rt.retireLocked(s)
	}
	path, err := rt.resolver.HostPath(s.srcHost, s.dstHost)
	if err != nil {
		s.stranded = true
		return
	}
	if s.active {
		rt.migrated++
	}
	rt.rejoinLocked(s, path)
}

// reoptimizeLocked re-runs shortest-path over the routed active sessions in
// creation order and migrates — Leave, fresh incarnation, Join, exactly the
// failure machinery — every session the policy says is too far off its best
// path. upgraded, when non-nil, marks the capacity-trigger sweep: sessions
// whose best path crosses an upgraded link bypass the hysteresis. Callers
// hold rt.mu.
func (rt *Runtime) reoptimizeLocked(upgraded map[graph.LinkID]bool) {
	if !rt.policy.Enabled() {
		return
	}
	for _, s := range rt.order {
		if !s.active || s.stranded {
			continue
		}
		best, err := rt.resolver.HostPath(s.srcHost, s.dstHost)
		if err != nil {
			continue // routed active sessions always have a path
		}
		bypass := upgraded != nil && crossesAny(best, upgraded)
		if !rt.policy.ShouldMigrate(len(s.cur.path), len(best), bypass) {
			continue
		}
		rt.retireLocked(s)
		rt.reoptimized++
		rt.rejoinLocked(s, best)
	}
}

// beginTeardownLocked opens a reconfiguration teardown span: everything the
// force-departed incarnation sends from here to the next quiescence is its
// Leave cascade. Callers hold rt.mu.
func (rt *Runtime) beginTeardownLocked(inc *incarnation) {
	if inc.reconfAccounted {
		return
	}
	inc.reconfAccounted = true
	rt.reconfTear = append(rt.reconfTear, reconfIncSpan{inc: inc, base: inc.pkts.Load()})
}

// markReconfigJoinLocked attributes a freshly (re)joined incarnation's
// packets — from birth to the next quiescence — to reconfiguration traffic.
// Callers hold rt.mu.
func (rt *Runtime) markReconfigJoinLocked(inc *incarnation) {
	if inc.reconfAccounted {
		return
	}
	inc.reconfAccounted = true
	rt.reconfJoin = append(rt.reconfJoin, inc)
}

// finalizeReconfig closes the pending reconfiguration spans. Call only when
// the network is quiescent (WaitQuiescent does).
func (rt *Runtime) finalizeReconfig() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, t := range rt.reconfTear {
		rt.reconfigPkts += t.inc.pkts.Load() - t.base
		t.inc.reconfAccounted = false
	}
	rt.reconfTear = rt.reconfTear[:0]
	for _, inc := range rt.reconfJoin {
		rt.reconfigPkts += inc.pkts.Load()
		inc.reconfAccounted = false
	}
	rt.reconfJoin = rt.reconfJoin[:0]
}

// ReconfigPackets returns the cumulative control-packet cost of topology
// reconfigurations — the Leave-cascade packets of force-departed
// incarnations plus the Join-cascade packets of topology-driven (re)joins,
// each measured until the quiescence that follows — the same report as the
// simulator transport's Network.ReconfigPackets. Updated by WaitQuiescent;
// user churn is never counted.
func (rt *Runtime) ReconfigPackets() uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.reconfigPkts
}

func crossesAny(p graph.Path, links map[graph.LinkID]bool) bool {
	for _, l := range p {
		if links[l] {
			return true
		}
	}
	return false
}

// WaitQuiescent blocks until no message is queued or being processed
// anywhere — the paper's quiescence. It returns immediately if the network
// is already silent.
//
// Quiescence is also the reclamation point: an incarnation retired by a
// migration Leave, a departure or a stranding has, by definition, drained
// its Leave cascade once the network is silent, so its two actor goroutines
// are stopped and the incarnation is dropped. Actor counts therefore return
// to baseline after churn instead of accumulating until Close.
//
// Callers racing WaitQuiescent against concurrent Join/Leave/Change calls
// from other goroutines can observe a transiently idle network; make sure
// all API calls have returned (they enqueue synchronously) before waiting.
func (rt *Runtime) WaitQuiescent() {
	rt.activity.wait()
	rt.finalizeReconfig()
	rt.reclaimRetired()
}

// reclaimRetired stops and drops the actors of every incarnation that can
// never process protocol traffic again: superseded by a migration, departed
// through Leave, or stranded by a failure. Call only when the network is
// quiescent (no message in flight can target a retired incarnation). The
// retirement decision reads session state under mu; the stripe locks only
// order the deletes against concurrent Emit lookups.
func (rt *Runtime) reclaimRetired() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return
	}
	for i := range rt.incs {
		d := &rt.incs[i]
		d.mu.Lock()
		for id, inc := range d.m {
			s := inc.owner
			retired := s.cur != inc || !s.active || s.stranded
			if !retired {
				continue
			}
			inc.reclaimed = true
			inc.src.stop()
			inc.dst.stop()
			delete(d.m, id)
		}
		d.mu.Unlock()
	}
}

// Incarnations returns how many session incarnations currently hold live
// actors (reclaimed ones are gone; see WaitQuiescent).
func (rt *Runtime) Incarnations() int {
	n := 0
	for i := range rt.incs {
		d := &rt.incs[i]
		d.mu.Lock()
		n += len(d.m)
		d.mu.Unlock()
	}
	return n
}

// LinkPackets returns per-directed-link packet totals for every link that
// carried traffic, ordered by link ID — the same report, with the same
// field names, as the simulator transport's Network.LinkPackets. The
// per-stripe counters merge on demand, the same shape as the sharded
// simulator's stats domains.
func (rt *Runtime) LinkPackets() []metrics.LinkCount {
	var out []metrics.LinkCount
	for i := range rt.lnks {
		d := &rt.lnks[i]
		d.mu.Lock()
		for id, n := range d.pkts {
			if n > 0 {
				out = append(out, metrics.LinkCount{Link: id, Packets: n})
			}
		}
		d.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Link < out[b].Link })
	return out
}

// SessionPackets returns per-incarnation packet totals for every
// incarnation that currently holds live actors and carried traffic, ordered
// by incarnation ID — the live counterpart of the simulator transport's
// Network.SessionPackets (same field names). Incarnations reclaimed at a
// past quiescence are gone; their reconfiguration cost is preserved in
// ReconfigPackets.
func (rt *Runtime) SessionPackets() []metrics.SessionCount {
	var out []metrics.SessionCount
	for i := range rt.incs {
		d := &rt.incs[i]
		d.mu.Lock()
		for id, inc := range d.m {
			if pk := inc.pkts.Load(); pk > 0 {
				out = append(out, metrics.SessionCount{Session: id, Packets: pk})
			}
		}
		d.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Session < out[b].Session })
	return out
}

// Rates returns a snapshot of all granted rates, keyed by current
// incarnation IDs. The per-stripe tables merge on demand, like LinkPackets.
func (rt *Runtime) Rates() map[core.SessionID]rate.Rate {
	n := 0
	for i := range rt.incs {
		d := &rt.incs[i]
		d.mu.Lock()
		n += len(d.rates)
		d.mu.Unlock()
	}
	out := make(map[core.SessionID]rate.Rate, n)
	for i := range rt.incs {
		d := &rt.incs[i]
		d.mu.Lock()
		for k, v := range d.rates {
			out[k] = v
		}
		d.mu.Unlock()
	}
	return out
}

// ErrStaleIncarnation reports an active session living on a departed
// incarnation — the live transport's counterpart of
// network.ErrStaleIncarnation. Classify with errors.Is.
var ErrStaleIncarnation = errors.New("live: departed-but-active incarnation (stale rejoin)")

// Validate cross-checks, after WaitQuiescent, every routed active session's
// granted rate against the centralized water-filling oracle and every link
// task's stability — the same validation the simulator applies, over the
// live deployment. The activity counter's mutex orders the last handler
// before this read, so the task state is safely visible.
func (rt *Runtime) Validate() error {
	rt.mu.Lock()
	type entry struct {
		s  *Session
		id core.SessionID
	}
	var active []entry
	linkIdx := make(map[graph.LinkID]int)
	var inst waterfill.Instance
	for _, s := range rt.order {
		if !s.active || s.stranded {
			continue
		}
		// No-stale-incarnation: an active session must be living on a fresh
		// incarnation — Join/rejoin mint a new one whenever the current has
		// departed, so observing departed here means a stale rejoin.
		if s.cur.departed {
			id := s.cur.id
			rt.mu.Unlock()
			return fmt.Errorf("live: session %d: %w", id, ErrStaleIncarnation)
		}
		ws := waterfill.Session{Demand: s.demand}
		for _, l := range s.cur.path {
			li, ok := linkIdx[l]
			if !ok {
				li = len(inst.Capacity)
				linkIdx[l] = li
				inst.Capacity = append(inst.Capacity, rt.g.Link(l).Capacity)
			}
			ws.Path = append(ws.Path, li)
		}
		inst.Sessions = append(inst.Sessions, ws)
		active = append(active, entry{s, s.cur.id})
	}
	tasks := make(map[graph.LinkID]*core.RouterLink)
	for i := range rt.lnks {
		d := &rt.lnks[i]
		d.mu.Lock()
		for l, la := range d.actors {
			tasks[l] = la.task
		}
		d.mu.Unlock()
	}
	rt.mu.Unlock()

	if len(active) > 0 {
		want, err := waterfill.Solve(inst)
		if err != nil {
			return fmt.Errorf("live: oracle failed: %w", err)
		}
		rates := rt.Rates()
		for i, e := range active {
			got, ok := rates[e.id]
			if !ok {
				return fmt.Errorf("live: session %d has no rate after quiescence", e.id)
			}
			if !got.Equal(want[i]) {
				return fmt.Errorf("live: session %d rate %v, oracle %v", e.id, got, want[i])
			}
		}
	}
	for l, task := range tasks {
		if err := task.CheckInvariants(); err != nil {
			return fmt.Errorf("live: link %d: %w", l, err)
		}
		if !task.Stable() {
			return fmt.Errorf("live: link %d unstable after quiescence", l)
		}
	}
	return nil
}

// Close stops all actors. The runtime must be quiescent (WaitQuiescent).
func (rt *Runtime) Close() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return
	}
	rt.closed = true
	for i := range rt.lnks {
		d := &rt.lnks[i]
		d.mu.Lock()
		for _, la := range d.actors {
			la.a.stop()
		}
		d.mu.Unlock()
	}
	for i := range rt.incs {
		d := &rt.incs[i]
		d.mu.Lock()
		for _, inc := range d.m {
			inc.src.stop()
			inc.dst.stop()
		}
		d.mu.Unlock()
	}
}

// linkActorFor returns (creating if needed) the actor hosting the RouterLink
// task of a directed link. The fast path takes only the link's stripe; a
// miss creates the actor under mu (respecting the mu → stripe order), which
// excludes SetLinkCapacity for the whole read-capacity-and-install sequence
// — a reconfiguration therefore either lands in the capacity the new task
// is built with, or finds the installed actor and enqueues its re-probe.
func (rt *Runtime) linkActorFor(id graph.LinkID) *actor {
	d := &rt.lnks[linkStripe(id)]
	d.mu.Lock()
	la, ok := d.actors[id]
	d.mu.Unlock()
	if ok {
		return la.a
	}

	rt.mu.Lock()
	defer rt.mu.Unlock()
	d.mu.Lock()
	la, ok = d.actors[id]
	d.mu.Unlock()
	if ok {
		return la.a // lost the creation race
	}
	task := core.NewRouterLink(core.LinkRef(id), rt.g.Link(id).Capacity, (*emitter)(rt))
	a := newActor(rt.activity)
	a.start(func(m message) {
		switch m.kind {
		case msgPacket:
			task.Receive(m.pkt, m.hop)
		case msgSetCapacity:
			task.SetCapacity(m.demand)
		}
	})
	d.mu.Lock()
	d.actors[id] = &linkActor{a: a, task: task}
	d.mu.Unlock()
	return a
}

// emitter adapts the Runtime to core.Emitter. Emissions always happen inside
// an actor's handler, so the activity counter can never reach zero while a
// cascade is in flight.
type emitter Runtime

// Emit implements core.Emitter. This is the hottest call site of the whole
// runtime — every packet of every hop of every session goes through it, from
// every actor goroutine concurrently — so it takes no global lock: the
// incarnation lookup and the packet counter each touch one stripe, the path
// and the endpoint actors are immutable once the incarnation is published,
// and graph.LinkReverse reads only immutable link structure.
func (e *emitter) Emit(s core.SessionID, from int, dir core.Direction, pkt core.Packet) {
	rt := (*Runtime)(e)
	inc := rt.incarnationFor(s)
	if inc == nil {
		return // retired and reclaimed; stragglers dissolve
	}
	// Account the physical link the packet crosses (intra-host hand-offs
	// have no wire), exactly the simulator's per-link counting rule.
	wire := graph.NoLink
	if dir == core.Down {
		if from >= 1 {
			wire = inc.path[from-1]
		}
	} else if from >= 2 {
		wire = rt.g.LinkReverse(inc.path[from-2])
	}
	if wire != graph.NoLink {
		rt.countPacket(wire)
		inc.pkts.Add(1)
	}
	to := from + 1
	if dir == core.Up {
		to = from - 1
	}
	var target *actor
	var hop int
	switch {
	case to <= 0:
		target, hop = inc.src, 0
	case to >= len(inc.path)+1:
		target, hop = inc.dst, len(inc.path)+1
	default:
		target, hop = rt.linkActorFor(inc.path[to-1]), to
	}
	target.enqueue(message{kind: msgPacket, pkt: pkt, hop: hop})
}

type msgKind int

const (
	msgPacket msgKind = iota + 1
	msgJoin
	msgLeave
	msgChange
	msgSetCapacity
)

type message struct {
	kind msgKind
	pkt  core.Packet
	hop  int
	// demand carries the Join/Change demand, or the new capacity for
	// msgSetCapacity.
	demand rate.Rate
}
