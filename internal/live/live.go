// Package live runs the B-Neck protocol as a genuinely concurrent system:
// every protocol task (each session's source and destination, and each
// directed link's router task) is an actor goroutine with an unbounded FIFO
// mailbox. This is the deployment shape the paper describes — asynchronous
// tasks that execute their when-blocks atomically and exchange packets over
// FIFO links — realized with goroutines instead of a simulator.
//
// Quiescence, the paper's headline property, becomes observable termination:
// a global activity counter tracks enqueued-but-unprocessed messages
// (a counter-based variant of Dijkstra–Scholten termination detection,
// possible here because all sends happen inside message handlers), and
// WaitQuiescent blocks until the network goes silent.
//
// Mailboxes are unbounded by design: B-Neck generates bounded traffic per
// reconfiguration, and bounded mailboxes could deadlock the bidirectional
// packet flow (links send both up- and downstream).
package live

import (
	"fmt"
	"sync"

	"bneck/internal/core"
	"bneck/internal/graph"
	"bneck/internal/rate"
)

// Runtime hosts a concurrent B-Neck deployment over a static graph.
type Runtime struct {
	g *graph.Graph

	mu       sync.Mutex
	links    map[graph.LinkID]*actor
	sessions map[core.SessionID]*Session
	nextID   core.SessionID
	closed   bool

	activity *activityCounter

	ratesMu sync.Mutex
	rates   map[core.SessionID]rate.Rate
}

// New returns a runtime over g.
func New(g *graph.Graph) *Runtime {
	return &Runtime{
		g:        g,
		links:    make(map[graph.LinkID]*actor),
		sessions: make(map[core.SessionID]*Session),
		nextID:   1,
		activity: newActivityCounter(),
		rates:    make(map[core.SessionID]rate.Rate),
	}
}

// Session is a live protocol session. Its source and destination tasks run
// on their own actors.
type Session struct {
	ID   core.SessionID
	Path graph.Path
	rt   *Runtime
	src  *actor
	dst  *actor
	srcT *core.SourceNode
}

// NewSession creates a session along path (see graph.Resolver.HostPath).
func (rt *Runtime) NewSession(path graph.Path) (*Session, error) {
	if err := graph.ValidatePath(rt.g, path); err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil, fmt.Errorf("live: runtime closed")
	}
	id := rt.nextID
	rt.nextID++
	s := &Session{ID: id, Path: append(graph.Path(nil), path...), rt: rt}
	s.srcT = core.NewSourceNode(id, (*emitter)(rt), func(sid core.SessionID, lambda rate.Rate) {
		rt.ratesMu.Lock()
		rt.rates[sid] = lambda
		rt.ratesMu.Unlock()
	})
	dstT := core.NewDestinationNode(id, (*emitter)(rt))
	s.src = newActor(rt.activity)
	s.dst = newActor(rt.activity)
	srcT, dst := s.srcT, dstT
	s.src.start(func(m message) {
		switch m.kind {
		case msgPacket:
			srcT.Receive(m.pkt)
		case msgJoin:
			srcT.Join(m.demand)
		case msgLeave:
			srcT.Leave()
		case msgChange:
			srcT.Change(m.demand)
		}
	})
	hop := len(path) + 1
	s.dst.start(func(m message) { dst.Receive(m.pkt, hop) })
	rt.sessions[id] = s
	return s, nil
}

// Join asynchronously invokes API.Join(s, demand).
func (s *Session) Join(demand rate.Rate) { s.src.enqueue(message{kind: msgJoin, demand: demand}) }

// Leave asynchronously invokes API.Leave(s).
func (s *Session) Leave() { s.src.enqueue(message{kind: msgLeave}) }

// Change asynchronously invokes API.Change(s, demand).
func (s *Session) Change(demand rate.Rate) { s.src.enqueue(message{kind: msgChange, demand: demand}) }

// Rate returns the session's last granted rate. Safe to call from any
// goroutine; stable once WaitQuiescent has returned.
func (s *Session) Rate() (rate.Rate, bool) {
	s.rt.ratesMu.Lock()
	defer s.rt.ratesMu.Unlock()
	r, ok := s.rt.rates[s.ID]
	return r, ok
}

// WaitQuiescent blocks until no message is queued or being processed
// anywhere — the paper's quiescence. It returns immediately if the network
// is already silent.
//
// Callers racing WaitQuiescent against concurrent Join/Leave/Change calls
// from other goroutines can observe a transiently idle network; make sure
// all API calls have returned (they enqueue synchronously) before waiting.
func (rt *Runtime) WaitQuiescent() { rt.activity.wait() }

// Rates returns a snapshot of all granted rates.
func (rt *Runtime) Rates() map[core.SessionID]rate.Rate {
	rt.ratesMu.Lock()
	defer rt.ratesMu.Unlock()
	out := make(map[core.SessionID]rate.Rate, len(rt.rates))
	for k, v := range rt.rates {
		out[k] = v
	}
	return out
}

// Close stops all actors. The runtime must be quiescent (WaitQuiescent).
func (rt *Runtime) Close() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return
	}
	rt.closed = true
	for _, a := range rt.links {
		a.stop()
	}
	for _, s := range rt.sessions {
		s.src.stop()
		s.dst.stop()
	}
}

// linkActor returns (creating if needed) the actor hosting the RouterLink
// task of a directed link.
func (rt *Runtime) linkActor(id graph.LinkID) *actor {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if a, ok := rt.links[id]; ok {
		return a
	}
	l := rt.g.Link(id)
	task := core.NewRouterLink(core.LinkRef(id), l.Capacity, (*emitter)(rt))
	a := newActor(rt.activity)
	a.start(func(m message) { task.Receive(m.pkt, m.hop) })
	rt.links[id] = a
	return a
}

// emitter adapts the Runtime to core.Emitter. Emissions always happen inside
// an actor's handler, so the activity counter can never reach zero while a
// cascade is in flight.
type emitter Runtime

// Emit implements core.Emitter.
func (e *emitter) Emit(s core.SessionID, from int, dir core.Direction, pkt core.Packet) {
	rt := (*Runtime)(e)
	rt.mu.Lock()
	sess := rt.sessions[s]
	rt.mu.Unlock()
	if sess == nil {
		return
	}
	to := from + 1
	if dir == core.Up {
		to = from - 1
	}
	var target *actor
	var hop int
	switch {
	case to <= 0:
		target, hop = sess.src, 0
	case to >= len(sess.Path)+1:
		target, hop = sess.dst, len(sess.Path)+1
	default:
		target, hop = rt.linkActor(sess.Path[to-1]), to
	}
	target.enqueue(message{kind: msgPacket, pkt: pkt, hop: hop})
}

type msgKind int

const (
	msgPacket msgKind = iota + 1
	msgJoin
	msgLeave
	msgChange
)

type message struct {
	kind   msgKind
	pkt    core.Packet
	hop    int
	demand rate.Rate
}
