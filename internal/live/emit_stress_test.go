package live

import (
	"math/rand"
	"sync"
	"testing"

	"bneck/internal/core"
	"bneck/internal/graph"
	"bneck/internal/rate"
	"bneck/internal/topology"
)

// TestLiveChurnEmitStress hammers the lock-sharded Emit path: many sessions
// join, change and leave from concurrent goroutines while topology events
// fail, reconfigure and restore in-use links, so packet emissions race with
// incarnation creation/retirement and link-actor creation across every
// stripe. Run with -race (CI does) this is the data-race test of the
// striped incarnation/link domains; the final validation and the packet
// parity check make sure merge-on-demand readers see every stripe.
func TestLiveChurnEmitStress(t *testing.T) {
	topo, err := topology.Generate(topology.Small, topology.LAN, 23)
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 64
	hosts := topo.AddHosts(2 * sessions)
	g := topo.Graph
	res := graph.NewResolver(g, 128)
	rt := New(g)
	defer rt.Close()

	rng := rand.New(rand.NewSource(99))
	all := make([]*Session, sessions)
	for i := range all {
		src := hosts[i]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		p, err := res.HostPath(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		s, err := rt.NewSession(p)
		if err != nil {
			t.Fatal(err)
		}
		all[i] = s
	}

	// Phase 1: concurrent joins — the base Emit storm.
	var wg sync.WaitGroup
	for i, s := range all {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			if i%3 == 0 {
				s.Join(rate.Mbps(int64(1 + i%40)))
			} else {
				s.Join(rate.Inf)
			}
		}(i, s)
	}
	wg.Wait()
	rt.WaitQuiescent()
	if err := rt.Validate(); err != nil {
		t.Fatalf("after join storm: %v", err)
	}

	// Phase 2: churn and topology events race the protocol cascades. Each
	// goroutine drives a disjoint session slice; one more flips a set of
	// in-use router links (failures migrate crossing sessions mid-cascade).
	var targets []graph.LinkID
	for _, s := range all {
		p := s.Path()
		if len(p) >= 3 {
			targets = append(targets, p[1])
		}
		if len(targets) == 4 {
			break
		}
	}
	const rounds = 8
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := g; i < sessions; i += 4 {
					s := all[i]
					switch (i + r) % 3 {
					case 0:
						s.Change(rate.Mbps(int64(1 + (i*r)%60)))
					case 1:
						s.Leave()
					default:
						s.Join(rate.Inf)
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			for _, l := range targets {
				rev := rt.g.LinkReverse(l)
				rt.FailLinks(l, rev)
				rt.RestoreLinks(l, rev)
				// Reconfigure only while the link is up: capacity changes on
				// failed links are outside the supported envelope (the
				// scenario checker rejects them statically) because the
				// re-probe would race the migration teardown.
				rt.SetLinkCapacity(rate.Mbps(int64(50+r)), l, rev)
			}
		}
	}()
	// Rate readers race the rate upcalls: every Change above lands a setRate
	// on a stripe while these goroutines read the same table through both the
	// per-session and the merge-all paths.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i := g; i < sessions; i += 2 {
					if lambda, ok := all[i].Rate(); ok && lambda.Sign() < 0 {
						t.Errorf("negative granted rate for session %d", i)
					}
				}
				for id, lambda := range rt.Rates() {
					if lambda.Sign() < 0 {
						t.Errorf("negative granted rate in Rates() for %v", id)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	rt.WaitQuiescent()
	if err := rt.Validate(); err != nil {
		t.Fatalf("after churn storm: %v", err)
	}

	// Merge-on-demand sanity: the striped per-link counters must agree on
	// ordering and cover every link that carried traffic.
	counts := rt.LinkPackets()
	if len(counts) == 0 {
		t.Fatal("no link packets recorded")
	}
	var total uint64
	for i, lc := range counts {
		if i > 0 && counts[i-1].Link >= lc.Link {
			t.Fatalf("LinkPackets not sorted: %v before %v", counts[i-1].Link, lc.Link)
		}
		total += lc.Packets
	}
	if total == 0 {
		t.Fatal("zero total packets after a churn storm")
	}
}

// TestLiveEmitStripesDistribute sanity-checks the stripe functions: dense
// session and link IDs spread across all domains instead of piling onto one.
func TestLiveEmitStripesDistribute(t *testing.T) {
	var incSeen, linkSeen [emitDomains]bool
	for i := 0; i < emitDomains*4; i++ {
		incSeen[incStripe(core.SessionID(i))] = true
		linkSeen[linkStripe(graph.LinkID(i))] = true
	}
	for d := 0; d < emitDomains; d++ {
		if !incSeen[d] || !linkSeen[d] {
			t.Fatalf("stripe %d never hit by dense IDs", d)
		}
	}
}
