package live

import (
	"testing"
	"time"

	"bneck/internal/graph"
	"bneck/internal/policy"
	"bneck/internal/rate"
)

// buildDiamond is the live twin of the simulator transport's re-optimization
// fixture: a direct r1–r2 link and an r1–r3–r2 detour, one session ha → hb.
func buildDiamond(t *testing.T) (*graph.Graph, graph.LinkID, graph.Path) {
	t.Helper()
	g := graph.New()
	r1, r2, r3 := g.AddRouter("r1"), g.AddRouter("r2"), g.AddRouter("r3")
	ab, _ := g.Connect(r1, r2, rate.Mbps(80), time.Microsecond)
	g.Connect(r1, r3, rate.Mbps(40), time.Microsecond)
	g.Connect(r3, r2, rate.Mbps(40), time.Microsecond)
	ha, hb := g.AddHost("ha"), g.AddHost("hb")
	g.Connect(ha, r1, rate.Mbps(100), time.Microsecond)
	g.Connect(hb, r2, rate.Mbps(100), time.Microsecond)
	p, err := graph.NewResolver(g, 16).HostPath(ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	return g, ab, p
}

func liveFailRestore(t *testing.T, rt *Runtime, s *Session, g *graph.Graph, ab graph.LinkID) {
	t.Helper()
	rev := g.Link(ab).Reverse
	s.Join(rate.Inf)
	rt.WaitQuiescent()
	if err := rt.Validate(); err != nil {
		t.Fatalf("after join: %v", err)
	}
	if got := len(s.Path()); got != 3 {
		t.Fatalf("joined on %d hops, want 3", got)
	}
	rt.FailLinks(ab, rev)
	rt.WaitQuiescent()
	if err := rt.Validate(); err != nil {
		t.Fatalf("after fail: %v", err)
	}
	if got := len(s.Path()); got != 4 {
		t.Fatalf("migrated onto %d hops, want the 4-hop detour", got)
	}
	rt.RestoreLinks(ab, rev)
	rt.WaitQuiescent()
	if err := rt.Validate(); err != nil {
		t.Fatalf("after restore: %v", err)
	}
}

func TestLivePinnedKeepsDetourAfterRestore(t *testing.T) {
	g, ab, p := buildDiamond(t)
	rt := New(g)
	defer rt.Close()
	s, err := rt.NewSession(p)
	if err != nil {
		t.Fatal(err)
	}
	liveFailRestore(t, rt, s, g, ab)
	if got := len(s.Path()); got != 4 {
		t.Fatalf("pinned session on %d hops; must stay on the detour", got)
	}
	if rt.Reoptimizations() != 0 {
		t.Fatalf("reoptimizations = %d under Pinned", rt.Reoptimizations())
	}
	if r, _ := s.Rate(); !r.Equal(rate.Mbps(40)) {
		t.Fatalf("pinned rate = %v, want the 40 Mbps detour bottleneck", r)
	}
}

func TestLiveReoptimizeOnRestore(t *testing.T) {
	g, ab, p := buildDiamond(t)
	rt := New(g)
	defer rt.Close()
	rt.SetPathPolicy(policy.Config{Kind: policy.ReoptimizeOnRestore})
	s, err := rt.NewSession(p)
	if err != nil {
		t.Fatal(err)
	}
	liveFailRestore(t, rt, s, g, ab)
	if got := len(s.Path()); got != 3 {
		t.Fatalf("session on %d hops after restore, want 3", got)
	}
	if rt.Reoptimizations() != 1 {
		t.Fatalf("reoptimizations = %d, want 1", rt.Reoptimizations())
	}
	if rt.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1 (reoptimizations are separate)", rt.Migrations())
	}
	if r, _ := s.Rate(); !r.Equal(rate.Mbps(80)) {
		t.Fatalf("rate = %v, want the 80 Mbps direct bottleneck", r)
	}
	if rt.ReconfigPackets() == 0 {
		t.Fatal("reconfiguration cost no packets")
	}
}

func TestLiveStretchHysteresisAndCapacityBypass(t *testing.T) {
	g, ab, p := buildDiamond(t)
	rt := New(g)
	defer rt.Close()
	rt.SetPathPolicy(policy.Config{Kind: policy.ReoptimizeOnRestore, Stretch: 1.5})
	s, err := rt.NewSession(p)
	if err != nil {
		t.Fatal(err)
	}
	liveFailRestore(t, rt, s, g, ab)
	if got := len(s.Path()); got != 4 {
		t.Fatalf("session on %d hops; 4/3 is within stretch 1.5, must stay", got)
	}
	// Doubling the direct link's capacity waives the hysteresis.
	rev := g.Link(ab).Reverse
	rt.SetLinkCapacity(rate.Mbps(160), ab, rev)
	rt.WaitQuiescent()
	if err := rt.Validate(); err != nil {
		t.Fatalf("after upgrade: %v", err)
	}
	if got := len(s.Path()); got != 3 {
		t.Fatalf("post-upgrade: session on %d hops, want 3", got)
	}
	if rt.Reoptimizations() != 1 {
		t.Fatalf("reoptimizations = %d, want 1", rt.Reoptimizations())
	}
	if r, _ := s.Rate(); !r.Equal(rate.Mbps(100)) {
		t.Fatalf("rate = %v, want the 100 Mbps access bottleneck", r)
	}
}

// TestLiveReconfigPacketsUserChurnFree: plain joins/leaves never count as
// reconfiguration traffic, and per-incarnation counters stay consistent.
func TestLiveReconfigPacketsUserChurnFree(t *testing.T) {
	g, _, p := buildDiamond(t)
	rt := New(g)
	defer rt.Close()
	s, err := rt.NewSession(p)
	if err != nil {
		t.Fatal(err)
	}
	s.Join(rate.Inf)
	rt.WaitQuiescent()
	if len(rt.SessionPackets()) == 0 {
		t.Fatal("join cascade left no per-session packet counts")
	}
	s.Leave()
	rt.WaitQuiescent()
	if rt.ReconfigPackets() != 0 {
		t.Fatalf("user churn counted %d reconfiguration packets", rt.ReconfigPackets())
	}
}
