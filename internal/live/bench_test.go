package live

import (
	"testing"
	"time"

	"bneck/internal/graph"
	"bneck/internal/rate"
	"bneck/internal/topology"
)

// BenchmarkLiveConvergence measures wall-clock time for a full
// join-to-quiescence cycle on the concurrent actor runtime (no simulator):
// the protocol's real message-passing cost on this machine.
func BenchmarkLiveConvergence(b *testing.B) {
	for _, n := range []int{8, 64, 256} {
		b.Run("sessions="+itoaLive(n), func(b *testing.B) {
			topo, err := topology.Generate(topology.Small, topology.LAN, 17)
			if err != nil {
				b.Fatal(err)
			}
			topo.AddHosts(2 * n)
			res := graph.NewResolver(topo.Graph, 128)
			paths := make([]graph.Path, n)
			for i := range paths {
				src, dst := topo.RandomHostPair()
				p, err := res.HostPath(src, dst)
				if err != nil {
					b.Fatal(err)
				}
				paths[i] = p
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt := New(topo.Graph)
				sessions := make([]*Session, n)
				for j, p := range paths {
					s, err := rt.NewSession(p)
					if err != nil {
						b.Fatal(err)
					}
					sessions[j] = s
				}
				start := time.Now()
				for _, s := range sessions {
					s.Join(rate.Inf)
				}
				rt.WaitQuiescent()
				b.ReportMetric(float64(time.Since(start).Microseconds()), "us_to_quiescence")
				rt.Close()
			}
		})
	}
}

func itoaLive(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
