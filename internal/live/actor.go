package live

import "sync"

// actor is a goroutine with an unbounded FIFO mailbox. Handlers run
// sequentially, giving the per-task atomicity the protocol's when-blocks
// require.
type actor struct {
	mu      sync.Mutex //bneck:lock mailbox
	cond    *sync.Cond
	queue   []message
	stopped bool
	acts    *activityCounter
}

func newActor(acts *activityCounter) *actor {
	a := &actor{acts: acts}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// start launches the actor loop. handle is invoked once per message, in
// FIFO order, never concurrently.
func (a *actor) start(handle func(message)) {
	go func() {
		for {
			a.mu.Lock()
			for len(a.queue) == 0 && !a.stopped {
				a.cond.Wait()
			}
			if a.stopped {
				a.mu.Unlock()
				return
			}
			m := a.queue[0]
			a.queue = a.queue[1:]
			a.mu.Unlock()

			handle(m)
			// The decrement happens after the handler: any messages the
			// handler emitted have already incremented the counter, so it
			// cannot reach zero mid-cascade.
			a.acts.dec()
		}
	}()
}

// enqueue appends a message (counts as activity until processed). It never
// blocks — the queue is unbounded — which is why enqueueing under rt.mu or a
// stripe is legal (lock order mu → stripe → mailbox).
//
//bneck:locks mailbox
func (a *actor) enqueue(m message) {
	a.acts.inc()
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		a.acts.dec()
		return
	}
	a.queue = append(a.queue, m)
	a.mu.Unlock()
	a.cond.Signal()
}

// stop terminates the actor loop; queued messages are dropped (and
// un-counted) so Close never hangs the activity counter.
//
//bneck:locks mailbox
func (a *actor) stop() {
	a.mu.Lock()
	dropped := len(a.queue)
	a.queue = nil
	a.stopped = true
	a.mu.Unlock()
	a.cond.Broadcast()
	for i := 0; i < dropped; i++ {
		a.acts.dec()
	}
}

// activityCounter is a reusable quiescence detector: inc when a message is
// enqueued, dec when fully processed; wait blocks while the count is
// non-zero.
type activityCounter struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count int64
}

func newActivityCounter() *activityCounter {
	c := &activityCounter{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *activityCounter) inc() {
	c.mu.Lock()
	c.count++
	c.mu.Unlock()
}

func (c *activityCounter) dec() {
	c.mu.Lock()
	c.count--
	if c.count < 0 {
		c.mu.Unlock()
		panic("live: activity counter underflow")
	}
	if c.count == 0 {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

func (c *activityCounter) wait() {
	c.mu.Lock()
	for c.count != 0 {
		c.cond.Wait()
	}
	c.mu.Unlock()
}
