package live

import (
	"runtime"
	"testing"
	"time"

	"bneck/internal/graph"
	"bneck/internal/rate"
)

// churnGrid builds a 2x2 router grid with redundant paths, so failing a link
// always leaves a reroute.
func churnGrid(t *testing.T) (*graph.Graph, []graph.Path, [4]graph.LinkID) {
	t.Helper()
	g := graph.New()
	a := g.AddRouter("a")
	b := g.AddRouter("b")
	c := g.AddRouter("c")
	d := g.AddRouter("d")
	ab, ba := g.Connect(a, b, rate.Mbps(100), time.Microsecond)
	g.Connect(b, d, rate.Mbps(100), time.Microsecond)
	g.Connect(a, c, rate.Mbps(100), time.Microsecond)
	cd, dc := g.Connect(c, d, rate.Mbps(100), time.Microsecond)
	res := graph.NewResolver(g, 16)
	var paths []graph.Path
	for i := 0; i < 6; i++ {
		hs := g.AddHost("hs")
		hd := g.AddHost("hd")
		g.Connect(hs, a, rate.Mbps(100), time.Microsecond)
		g.Connect(hd, d, rate.Mbps(100), time.Microsecond)
		p, err := graph.NewResolver(g, 16).HostPath(hs, hd)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	_ = res
	return g, paths, [4]graph.LinkID{ab, ba, cd, dc}
}

// TestReclaimRetiredIncarnations is the reclamation satellite's contract:
// repeated churn — migrations, leaves, rejoins — must not accumulate actor
// goroutines; after every quiescence the incarnation count equals the live
// session count and goroutines return to baseline.
func TestReclaimRetiredIncarnations(t *testing.T) {
	g, paths, links := churnGrid(t)
	rt := New(g)
	defer rt.Close()
	var sessions []*Session
	for _, p := range paths {
		s, err := rt.NewSession(p)
		if err != nil {
			t.Fatal(err)
		}
		s.Join(rate.Mbps(40))
		sessions = append(sessions, s)
	}
	rt.WaitQuiescent()
	if err := rt.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Incarnations(); got != len(sessions) {
		t.Fatalf("incarnations = %d, want %d", got, len(sessions))
	}
	baseline := runtime.NumGoroutine()

	migratedBefore := rt.Migrations()
	const rounds = 8
	for i := 0; i < rounds; i++ {
		// Fail one duplex pair (crossing sessions migrate), bounce a session
		// through leave+rejoin, then restore.
		rt.FailLinks(links[0], links[1])
		sessions[i%len(sessions)].Leave()
		rt.WaitQuiescent()
		rt.RestoreLinks(links[0], links[1])
		sessions[i%len(sessions)].Join(rate.Mbps(25))
		rt.WaitQuiescent()
		if err := rt.Validate(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if rt.Migrations() == migratedBefore {
		t.Fatal("churn caused no migrations; the test exercises nothing")
	}
	if got := rt.Incarnations(); got != len(sessions) {
		t.Fatalf("incarnations after churn = %d, want %d (retired ones reclaimed)", got, len(sessions))
	}
	// Goroutines: every round retires ≥ 1 incarnation (2 goroutines each);
	// without reclamation the count would grow by ≥ 2·rounds. Allow slack
	// for new link actors (reroutes touch the c–d detour) and runtime noise.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d after churn, baseline %d: retired actors not reclaimed",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Rates still correct for the rejoined population.
	for i, s := range sessions {
		if r, ok := s.Rate(); !ok || r.Sign() <= 0 {
			t.Fatalf("session %d rate %v (%t) after churn", i, r, ok)
		}
	}
}

// TestLinkPacketCountersParity: the live runtime reports per-link packet
// counters in the same shape as the simulator transport (metrics.LinkCount,
// same field names), counting the same crossing rule — every packet sent
// across a directed link, intra-host hand-offs excluded.
func TestLinkPacketCountersParity(t *testing.T) {
	g, paths, _ := churnGrid(t)
	rt := New(g)
	defer rt.Close()
	var total uint64
	s, err := rt.NewSession(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	s.Join(rate.Inf)
	rt.WaitQuiescent()
	counts := rt.LinkPackets()
	if len(counts) == 0 {
		t.Fatal("no per-link counters after a join cascade")
	}
	seen := make(map[graph.LinkID]bool)
	for _, lc := range counts {
		if lc.Packets == 0 {
			t.Fatalf("link %d reported with zero packets", lc.Link)
		}
		if seen[lc.Link] {
			t.Fatalf("link %d reported twice", lc.Link)
		}
		seen[lc.Link] = true
		total += lc.Packets
	}
	// The join cascade crosses every on-path link in both directions.
	for _, l := range paths[0] {
		if !seen[l] {
			t.Fatalf("on-path link %d missing from the report", l)
		}
		if rev := g.Link(l).Reverse; rev != graph.NoLink && !seen[rev] {
			t.Fatalf("reverse link %d missing from the report", rev)
		}
	}
	if total == 0 {
		t.Fatal("zero packets counted")
	}
}
