package live

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"bneck/internal/core"
	"bneck/internal/graph"
	"bneck/internal/rate"
	"bneck/internal/topology"
	"bneck/internal/waterfill"
)

func buildDumbbell(t *testing.T) (*graph.Graph, []graph.Path) {
	t.Helper()
	g := graph.New()
	r1 := g.AddRouter("r1")
	r2 := g.AddRouter("r2")
	g.Connect(r1, r2, rate.Mbps(60), time.Microsecond)
	res := graph.NewResolver(g, 16)
	var paths []graph.Path
	for i := 0; i < 2; i++ {
		ha := g.AddHost("ha")
		hb := g.AddHost("hb")
		g.Connect(ha, r1, rate.Mbps(100), time.Microsecond)
		g.Connect(hb, r2, rate.Mbps(100), time.Microsecond)
		p, err := graph.NewResolver(g, 16).HostPath(ha, hb)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	_ = res
	return g, paths
}

func TestLiveConvergesAndQuiesces(t *testing.T) {
	g, paths := buildDumbbell(t)
	rt := New(g)
	defer rt.Close()
	s1, err := rt.NewSession(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	s2, err := rt.NewSession(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	s1.Join(rate.Inf)
	s2.Join(rate.Inf)
	rt.WaitQuiescent()
	want := rate.Mbps(30)
	if r, ok := s1.Rate(); !ok || !r.Equal(want) {
		t.Fatalf("s1 rate = %v (%t)", r, ok)
	}
	if r, ok := s2.Rate(); !ok || !r.Equal(want) {
		t.Fatalf("s2 rate = %v (%t)", r, ok)
	}
}

func TestLiveDynamics(t *testing.T) {
	g, paths := buildDumbbell(t)
	rt := New(g)
	defer rt.Close()
	s1, _ := rt.NewSession(paths[0])
	s2, _ := rt.NewSession(paths[1])
	s1.Join(rate.Inf)
	rt.WaitQuiescent()
	if r, _ := s1.Rate(); !r.Equal(rate.Mbps(60)) {
		t.Fatalf("solo rate = %v", r)
	}
	s2.Join(rate.Inf)
	rt.WaitQuiescent()
	if r, _ := s2.Rate(); !r.Equal(rate.Mbps(30)) {
		t.Fatalf("shared rate = %v", r)
	}
	s1.Leave()
	rt.WaitQuiescent()
	if r, _ := s2.Rate(); !r.Equal(rate.Mbps(60)) {
		t.Fatalf("post-leave rate = %v", r)
	}
	s2.Change(rate.Mbps(10))
	rt.WaitQuiescent()
	if r, _ := s2.Rate(); !r.Equal(rate.Mbps(10)) {
		t.Fatalf("post-change rate = %v", r)
	}
}

// TestLiveMatchesOracleOnTopology runs a real concurrent deployment over a
// generated topology and validates against the centralized oracle — the
// paper's validation, but with true parallelism instead of a simulator.
func TestLiveMatchesOracleOnTopology(t *testing.T) {
	topo, err := topology.Generate(topology.Small, topology.LAN, 11)
	if err != nil {
		t.Fatal(err)
	}
	topo.AddHosts(80)
	g := topo.Graph
	res := graph.NewResolver(g, 64)
	rt := New(g)
	defer rt.Close()

	const n = 40
	sessions := make([]*Session, 0, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		src, dst := topo.RandomHostPair()
		p, err := res.HostPath(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		s, err := rt.NewSession(p)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	// Join concurrently from many goroutines.
	for _, s := range sessions {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			s.Join(rate.Inf)
		}(s)
	}
	wg.Wait()
	rt.WaitQuiescent()

	// Oracle comparison.
	linkIdx := make(map[graph.LinkID]int)
	var inst waterfill.Instance
	for _, s := range sessions {
		ws := waterfill.Session{Demand: rate.Inf}
		for _, l := range s.Path() {
			li, ok := linkIdx[l]
			if !ok {
				li = len(inst.Capacity)
				linkIdx[l] = li
				inst.Capacity = append(inst.Capacity, g.Link(l).Capacity)
			}
			ws.Path = append(ws.Path, li)
		}
		inst.Sessions = append(inst.Sessions, ws)
	}
	want, err := waterfill.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sessions {
		got, ok := s.Rate()
		if !ok {
			t.Fatalf("session %d has no rate", i)
		}
		if !got.Equal(want[i]) {
			t.Fatalf("session %d rate = %v, oracle %v", i, got, want[i])
		}
	}
}

func TestLiveChurnStress(t *testing.T) {
	topo, err := topology.Generate(topology.Small, topology.LAN, 13)
	if err != nil {
		t.Fatal(err)
	}
	topo.AddHosts(60)
	g := topo.Graph
	res := graph.NewResolver(g, 64)
	rt := New(g)
	defer rt.Close()
	rng := rand.New(rand.NewSource(3))

	var sessions []*Session
	for round := 0; round < 5; round++ {
		// Join a batch.
		for i := 0; i < 10; i++ {
			src, dst := topo.RandomHostPair()
			p, err := res.HostPath(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			s, err := rt.NewSession(p)
			if err != nil {
				t.Fatal(err)
			}
			s.Join(rate.Inf)
			sessions = append(sessions, s)
		}
		// Leave/change a few concurrently with the joins settling.
		if len(sessions) > 5 {
			sessions[rng.Intn(len(sessions))].Change(rate.Mbps(int64(1 + rng.Intn(40))))
		}
		rt.WaitQuiescent()
	}
	// All sessions must hold some confirmed rate.
	for i, s := range sessions {
		if _, ok := s.Rate(); !ok {
			t.Fatalf("session %d has no rate after churn", i)
		}
	}
}

func TestWaitQuiescentIdempotent(t *testing.T) {
	g, paths := buildDumbbell(t)
	rt := New(g)
	defer rt.Close()
	rt.WaitQuiescent() // empty network is quiescent
	s, _ := rt.NewSession(paths[0])
	s.Join(rate.Mbps(5))
	rt.WaitQuiescent()
	rt.WaitQuiescent()
	if r, _ := s.Rate(); !r.Equal(rate.Mbps(5)) {
		t.Fatalf("rate = %v", r)
	}
}

func TestCloseDropsQueuedWork(t *testing.T) {
	g, paths := buildDumbbell(t)
	rt := New(g)
	s, _ := rt.NewSession(paths[0])
	s.Join(rate.Inf)
	rt.Close()
	// Enqueue after close must be a no-op rather than a hang or panic.
	s.Leave()
	_ = s
}

func TestActorFIFO(t *testing.T) {
	acts := newActivityCounter()
	a := newActor(acts)
	var mu sync.Mutex
	var got []int
	a.start(func(m message) {
		mu.Lock()
		got = append(got, m.hop)
		mu.Unlock()
	})
	for i := 0; i < 1000; i++ {
		a.enqueue(message{kind: msgPacket, hop: i})
	}
	acts.wait()
	a.stop()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1000 {
		t.Fatalf("processed %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at %d: %d", i, v)
		}
	}
}

func TestSessionUnknownDrops(t *testing.T) {
	g, paths := buildDumbbell(t)
	rt := New(g)
	defer rt.Close()
	// Emitting for an unknown session must not panic or hang.
	(*emitter)(rt).Emit(core.SessionID(999), 0, core.Down, core.Packet{Type: core.PktJoin})
	rt.WaitQuiescent()
	_ = paths
}
