package live

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"bneck/internal/graph"
	"bneck/internal/rate"
	"bneck/internal/topology"
)

// buildDiamondLive returns ha–r1–{r2|r3}–r4–hb with the duplex top and
// bottom router routes.
func buildDiamondLive(t *testing.T) (g *graph.Graph, ha, hb graph.NodeID, top, bot [2][2]graph.LinkID) {
	t.Helper()
	g = graph.New()
	r1 := g.AddRouter("r1")
	r2 := g.AddRouter("r2")
	r3 := g.AddRouter("r3")
	r4 := g.AddRouter("r4")
	ha = g.AddHost("ha")
	hb = g.AddHost("hb")
	g.Connect(ha, r1, rate.Mbps(100), time.Microsecond)
	top[0][0], top[0][1] = g.Connect(r1, r2, rate.Mbps(40), time.Microsecond)
	top[1][0], top[1][1] = g.Connect(r2, r4, rate.Mbps(40), time.Microsecond)
	bot[0][0], bot[0][1] = g.Connect(r1, r3, rate.Mbps(25), time.Microsecond)
	bot[1][0], bot[1][1] = g.Connect(r3, r4, rate.Mbps(25), time.Microsecond)
	g.Connect(r4, hb, rate.Mbps(100), time.Microsecond)
	return
}

func TestLiveSetLinkCapacity(t *testing.T) {
	g, ha, hb, _, _ := buildDiamondLive(t)
	rt := New(g)
	defer rt.Close()
	p, err := graph.NewResolver(g, 8).HostPath(ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rt.NewSession(p)
	if err != nil {
		t.Fatal(err)
	}
	s.Join(rate.Inf)
	rt.WaitQuiescent()
	if r, _ := s.Rate(); !r.Equal(rate.Mbps(40)) {
		t.Fatalf("pre-change rate = %v", r)
	}
	mid := s.Path()[1]
	rt.SetLinkCapacity(rate.Mbps(9), mid, g.Link(mid).Reverse)
	rt.WaitQuiescent()
	if err := rt.Validate(); err != nil {
		t.Fatal(err)
	}
	if r, _ := s.Rate(); !r.Equal(rate.Mbps(9)) {
		t.Fatalf("post-change rate = %v, want 9 Mbps", r)
	}
}

func TestLiveFailMigratesAndRestoreReadmits(t *testing.T) {
	g, ha, hb, top, _ := buildDiamondLive(t)
	rt := New(g)
	defer rt.Close()
	p, err := graph.NewResolver(g, 8).HostPath(ha, hb)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rt.NewSession(p)
	if err != nil {
		t.Fatal(err)
	}
	s.Join(rate.Inf)
	rt.WaitQuiescent()
	oldID := s.ID()

	// Fail the top route: migrate to the 25 Mbps bottom route.
	rt.FailLinks(top[0][0], top[0][1])
	rt.WaitQuiescent()
	if err := rt.Validate(); err != nil {
		t.Fatal(err)
	}
	if r, _ := s.Rate(); !r.Equal(rate.Mbps(25)) {
		t.Fatalf("post-failure rate = %v, want 25 Mbps", r)
	}
	if s.ID() == oldID {
		t.Fatal("migration did not mint a fresh incarnation")
	}
	if rt.Migrations() != 1 {
		t.Fatalf("migrations = %d", rt.Migrations())
	}

	// Fail the bottom route too: stranded.
	bottom := s.Path()[1]
	rt.FailLinks(bottom, g.Link(bottom).Reverse)
	rt.WaitQuiescent()
	if err := rt.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.Stranded() {
		t.Fatal("session not stranded with no route left")
	}
	if _, ok := s.Rate(); ok {
		t.Fatal("stranded session reports a rate")
	}

	// Restore the top route: the stranded session rejoins there.
	rt.RestoreLinks(top[0][0], top[0][1])
	rt.WaitQuiescent()
	if err := rt.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Stranded() {
		t.Fatal("session still stranded after restore")
	}
	if r, _ := s.Rate(); !r.Equal(rate.Mbps(40)) {
		t.Fatalf("post-restore rate = %v, want 40 Mbps", r)
	}
}

// TestLiveTopologyChurn drives session churn from concurrent goroutines
// while the main goroutine applies link failures, restores and capacity
// changes — the race-detector target for the runtime's dynamic-topology
// locking. After every reconfiguration round the network must re-quiesce and
// match the oracle exactly.
func TestLiveTopologyChurn(t *testing.T) {
	topo, err := topology.Generate(topology.Small, topology.LAN, 21)
	if err != nil {
		t.Fatal(err)
	}
	topo.AddHosts(60)
	g := topo.Graph
	res := graph.NewResolver(g, 64)
	rt := New(g)
	defer rt.Close()
	rng := rand.New(rand.NewSource(5))

	var sessions []*Session
	// startBatch launches the joins on goroutines and returns without
	// waiting, so callers can race them against topology events.
	startBatch := func(n int, wg *sync.WaitGroup) {
		for i := 0; i < n; i++ {
			src, dst := topo.RandomHostPair()
			p, err := res.HostPath(src, dst)
			if err != nil {
				continue // hosts transiently disconnected by churn
			}
			s, err := rt.NewSession(p)
			if err != nil {
				continue
			}
			sessions = append(sessions, s)
			wg.Add(1)
			go func(s *Session) {
				defer wg.Done()
				s.Join(rate.Inf)
			}(s)
		}
	}

	var wg0 sync.WaitGroup
	startBatch(15, &wg0)
	wg0.Wait()
	rt.WaitQuiescent()
	if err := rt.Validate(); err != nil {
		t.Fatal(err)
	}

	var downLinks []graph.LinkID
	routerLinkInUse := func() (graph.LinkID, bool) {
		for _, s := range sessions {
			if s.Stranded() {
				continue
			}
			p := s.Path()
			for _, l := range p[1 : len(p)-1] {
				if g.LinkUp(l) {
					return l, true
				}
			}
		}
		return graph.NoLink, false
	}

	for round := 0; round < 6; round++ {
		// Concurrent session churn — joins AND changes — racing the
		// reconfiguration below (Join snapshots its incarnation under the
		// same lock FailLinks migrates under; this is the race that matters).
		var wg sync.WaitGroup
		startBatch(4, &wg)
		for i := 0; i < 3 && len(sessions) > 0; i++ {
			s := sessions[rng.Intn(len(sessions))]
			wg.Add(1)
			go func(s *Session, d rate.Rate) {
				defer wg.Done()
				s.Change(d)
			}(s, rate.Mbps(int64(1+rng.Intn(80))))
		}
		switch round % 3 {
		case 0:
			if l, ok := routerLinkInUse(); ok {
				downLinks = append(downLinks, l)
				rt.FailLinks(l, g.Link(l).Reverse)
			}
		case 1:
			if l, ok := routerLinkInUse(); ok {
				rt.SetLinkCapacity(rate.Mbps(int64(30+10*round)), l, g.Link(l).Reverse)
			}
		case 2:
			for _, l := range downLinks {
				rt.RestoreLinks(l, g.Link(l).Reverse)
			}
			downLinks = nil
		}
		wg.Wait()
		rt.WaitQuiescent()
		if err := rt.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}

	routed := 0
	for _, s := range sessions {
		if !s.Stranded() {
			if _, ok := s.Rate(); ok {
				routed++
			}
		}
	}
	if routed == 0 {
		t.Fatal("no routed sessions survived the churn")
	}
}
