package scenario

import (
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"bneck/internal/rate"
)

const handScript = `
# two disjoint router routes between the hosts
router r1
router r2
router r3
router r4
link r1 r2 40mbps 1us
link r2 r4 40mbps 1us
link r1 r3 25mbps 1us
link r3 r4 25mbps 1us
host ha r1
host hb r4

session s1 ha hb
session s2 ha hb

at 0ms  join s1
at 0ms  join s2 demand=8mbps
at 2ms  set-capacity r1 r2 30mbps
at 4ms  fail r1 r2
at 6ms  change s2 demand=unlimited
at 8ms  restore r1 r2
at 10ms leave s2
`

func TestParseHandScript(t *testing.T) {
	sc, err := Parse(handScript)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Topo.Kind != TopoHand {
		t.Fatalf("kind = %v", sc.Topo.Kind)
	}
	if len(sc.Routers) != 4 || len(sc.Hosts) != 2 || len(sc.Links) != 4 || len(sc.Sessions) != 2 {
		t.Fatalf("decls = %d routers, %d hosts, %d links, %d sessions",
			len(sc.Routers), len(sc.Hosts), len(sc.Links), len(sc.Sessions))
	}
	if len(sc.Events) != 7 {
		t.Fatalf("events = %d", len(sc.Events))
	}
	if sc.Events[0].At != 0 || sc.Events[0].Op != OpJoin || sc.Events[0].Session != "s1" {
		t.Fatalf("first event = %+v", sc.Events[0])
	}
	if !sc.Events[1].Demand.Equal(rate.Mbps(8)) {
		t.Fatalf("join demand = %v", sc.Events[1].Demand)
	}
	if sc.Events[2].Op != OpSetCapacity || !sc.Events[2].Capacity.Equal(rate.Mbps(30)) {
		t.Fatalf("set-capacity event = %+v", sc.Events[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"malformed timestamp", "router r1\nat zzz fail r1 r1", "malformed duration"},
		{"negative duration", "router r1\nrouter r2\nat -3ms fail r1 r2", "negative duration"},
		{"unknown directive", "frobnicate", "unknown directive"},
		{"unknown node in link", "router r1\nlink r1 r9 10mbps 1us", `unknown router "r9"`},
		{"unknown host in session", "router r1\nhost h1 r1\nsession s h1 h9", `unknown host "h9"`},
		{"unknown session in event", "at 0ms join nosuch", `unknown session "nosuch"`},
		{"unknown node in fail", "router r1\nhost h1 r1\nat 0s fail r1 r9", `unknown node "r9"`},
		{"double fail", "router r1\nrouter r2\nlink r1 r2 10mbps 1us\nat 0s fail r1 r2\nat 1s fail r2 r1", "already failed"},
		{"restore of up link", "router r1\nrouter r2\nlink r1 r2 10mbps 1us\nat 0s restore r1 r2", "that is up"},
		{"set-capacity on failed link", "router r1\nrouter r2\nlink r1 r2 10mbps 1us\nat 0s fail r1 r2\nat 1s set-capacity r1 r2 5mbps", "on failed link"},
		{"double join", "router r1\nhost h1 r1\nhost h2 r1\nsession s h1 h2\nat 0s join s\nat 1s join s", "already-joined"},
		{"leave before join", "router r1\nhost h1 r1\nhost h2 r1\nsession s h1 h2\nat 0s leave s", "not joined"},
		{"bad rate", "router r1\nhost h1 r1 10zbps", "malformed rate"},
		{"zero rate", "router r1\nrouter r2\nlink r1 r2 0mbps 1us", "non-positive rate"},
		{"self loop", "router r1\nlink r1 r1 10mbps 1us", "self loop"},
		{"duplicate node", "router r1\nrouter r1", "duplicate node"},
		{"mixed topology", "topology transit-stub small lan\nrouter r1", "cannot mix"},
		{"huge hosts", "topology transit-stub small lan hosts=99999999", "out of range"},
		{"infinite capacity", "router r1\nrouter r2\nlink r1 r2 10mbps 1us\nat 0s set-capacity r1 r2 unlimited", "finite rate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestRunSimHandScript(t *testing.T) {
	sc, err := Parse(handScript)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 6 {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	if res.Migrations == 0 {
		t.Fatal("the r1-r2 failure should have migrated sessions")
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.Active != 1 || last.Stranded != 0 {
		t.Fatalf("final state: active %d stranded %d", last.Active, last.Stranded)
	}
	if res.TotalPackets == 0 {
		t.Fatal("no packets counted")
	}
}

func TestRunLiveHandScript(t *testing.T) {
	sc, err := Parse(handScript)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLive(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 6 {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.Active != 1 || last.Stranded != 0 {
		t.Fatalf("final state: active %d stranded %d", last.Active, last.Stranded)
	}
}

func TestRunSimDeterministic(t *testing.T) {
	sc, err := Parse(handScript)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scenario runs differ:\n%+v\n%+v", a, b)
	}
}

// TestFailoverScenarioBothTransports is the acceptance scenario: the checked
// in failover script (TransitStub topology, 3 link failures + 3 restores +
// 2 capacity changes + churn) must validate against the water-filling oracle
// at every quiescent epoch on both transports.
func TestFailoverScenarioBothTransports(t *testing.T) {
	src, err := os.ReadFile("../../examples/scenarios/failover.bneck")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	fails, restores, capChanges := 0, 0, 0
	for _, ev := range sc.Events {
		switch ev.Op {
		case OpFail:
			fails++
		case OpRestore:
			restores++
		case OpSetCapacity:
			capChanges++
		}
	}
	if fails < 3 || restores < 3 || capChanges < 2 {
		t.Fatalf("scenario too tame: %d fails, %d restores, %d capacity changes", fails, restores, capChanges)
	}

	simRes, err := RunSim(sc)
	if err != nil {
		t.Fatalf("sim transport: %v", err)
	}
	if len(simRes.Epochs) == 0 || simRes.TotalPackets == 0 {
		t.Fatal("sim run produced nothing")
	}
	final := simRes.Epochs[len(simRes.Epochs)-1]
	if final.Active == 0 {
		t.Fatal("no active sessions at the end")
	}

	liveRes, err := RunLive(sc)
	if err != nil {
		t.Fatalf("live transport: %v", err)
	}
	liveFinal := liveRes.Epochs[len(liveRes.Epochs)-1]
	if liveFinal.Active != final.Active {
		t.Fatalf("transports disagree on surviving sessions: sim %d, live %d", final.Active, liveFinal.Active)
	}
}

func TestEpochOverrunAppliesImmediately(t *testing.T) {
	// Two epochs 1ns apart: convergence of the first overruns the second's
	// timestamp; the runner must apply it at the later time instead of
	// scheduling into the past.
	src := `
router r1
host h1 r1
host h2 r1
session s1 h1 h2
session s2 h1 h2
at 0s   join s1
at 1ns  join s2
`
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSim(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("epochs = %d", len(res.Epochs))
	}
	if res.Epochs[1].Applied < res.Epochs[0].Quiescence {
		t.Fatalf("second epoch applied at %v, before first quiescence %v",
			res.Epochs[1].Applied, res.Epochs[0].Quiescence)
	}
	if res.Epochs[1].Active != 2 {
		t.Fatalf("active = %d", res.Epochs[1].Active)
	}
}

func TestParseDurationsAndRates(t *testing.T) {
	if d, err := parseDuration("1500us"); err != nil || d != 1500*time.Microsecond {
		t.Fatalf("parseDuration = %v, %v", d, err)
	}
	if r, err := parseRate("2gbps"); err != nil || !r.Equal(rate.FromInt64(2_000_000_000)) {
		t.Fatalf("parseRate gbps = %v, %v", r, err)
	}
	if r, err := parseRate("512"); err != nil || !r.Equal(rate.FromInt64(512)) {
		t.Fatalf("parseRate bare = %v, %v", r, err)
	}
	if r, err := parseRate("UNLIMITED"); err != nil || !r.IsInf() {
		t.Fatalf("parseRate unlimited = %v, %v", r, err)
	}
}

// --- expect rate ---------------------------------------------------------

const expectScript = `
router r1
router r2
link r1 r2 60mbps 1us
host h1 r1
host h2 r2
host h3 r1
host h4 r2
session s1 h1 h2
session s2 h3 h4
at 0ms join s1
at 0ms join s2
at 1ms expect rate s1 30mbps
at 1ms expect rate h3 30mbps
at 2ms leave s2
at 3ms expect rate s1 60mbps
at 3ms expect rate h3 0bps
`

func TestExpectRateParses(t *testing.T) {
	sc, err := Parse(expectScript)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ev := range sc.Events {
		if ev.Op == OpExpectRate {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("parsed %d expect events, want 4", n)
	}
}

func TestExpectRateParseErrors(t *testing.T) {
	for _, bad := range []string{
		"at 1ms expect rate",
		"at 1ms expect rate s1",
		"at 1ms expect weight s1 3mbps",
		"at 1ms expect rate s1 unlimited",
	} {
		src := "router r1\nrouter r2\nlink r1 r2 10mbps 1us\nhost h1 r1\nhost h2 r2\nsession s1 h1 h2\nat 0ms join s1\n" + bad + "\n"
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", bad)
		}
	}
	// Unknown name on a hand-built topology fails at parse time.
	src := "router r1\nrouter r2\nlink r1 r2 10mbps 1us\nhost h1 r1\nhost h2 r2\nsession s1 h1 h2\nat 0ms join s1\nat 1ms expect rate nosuch 10mbps\n"
	if _, err := Parse(src); err == nil {
		t.Error("Parse accepted an expect for an unknown name")
	}
}

func TestExpectRateSimPassAndFail(t *testing.T) {
	sc, err := Parse(expectScript)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSim(sc); err != nil {
		t.Fatalf("correct expectations failed: %v", err)
	}
	wrong := strings.Replace(expectScript, "expect rate s1 30mbps", "expect rate s1 31mbps", 1)
	sc, err = Parse(wrong)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunSim(sc)
	if err == nil || !strings.Contains(err.Error(), "expect rate") {
		t.Fatalf("wrong expectation did not fail usefully: %v", err)
	}
}

func TestExpectRateLive(t *testing.T) {
	sc, err := Parse(expectScript)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLive(sc); err != nil {
		t.Fatalf("live expectations failed: %v", err)
	}
}

// repeatScript flips a session between the two arms of a diamond three
// times; each iteration migrates it twice (the joined path's arm fails,
// then the other).
const repeatScript = `
router r1
router r2
router r3
router r4
link r1 r2 40mbps 1us
link r2 r4 40mbps 1us
link r1 r3 40mbps 1us
link r3 r4 40mbps 1us
host ha r1
host hb r4

session s1 ha hb

at 0ms  join s1

repeat 3 {
  at 1ms  fail r1 r2
  at 2ms  restore r1 r2
  at 3ms  fail r1 r3
  at 4ms  restore r1 r3
}

at 13ms expect migrated 6
at 13ms expect stranded 0
at 13ms expect rate s1 40mbps
`

func TestRepeatExpansion(t *testing.T) {
	sc, err := Parse(repeatScript)
	if err != nil {
		t.Fatal(err)
	}
	// 1 join + 3×4 topology events + 3 expects.
	if len(sc.Events) != 1+12+3 {
		t.Fatalf("events = %d, want 16", len(sc.Events))
	}
	// Iteration i shifts the block by i×span (span = 4ms): the fails of the
	// first arm land at 1, 5, 9 ms.
	var fails []time.Duration
	for _, ev := range sc.Events {
		if ev.Op == OpFail && ev.A == "r1" && ev.B == "r2" {
			fails = append(fails, ev.At)
		}
	}
	want := []time.Duration{1 * time.Millisecond, 5 * time.Millisecond, 9 * time.Millisecond}
	if !reflect.DeepEqual(fails, want) {
		t.Fatalf("r1-r2 fails at %v, want %v", fails, want)
	}
}

func TestRepeatRunBothTransports(t *testing.T) {
	sc, err := Parse(repeatScript)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSim(sc); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if _, err := RunLive(sc); err != nil {
		t.Fatalf("live: %v", err)
	}
	// A wrong migration expectation must fail usefully.
	wrong := strings.Replace(repeatScript, "expect migrated 6", "expect migrated 7", 1)
	sc, err = Parse(wrong)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSim(sc); err == nil || !strings.Contains(err.Error(), "expect migrated") {
		t.Fatalf("wrong migrated expectation did not fail usefully: %v", err)
	}
	wrong = strings.Replace(repeatScript, "expect stranded 0", "expect stranded 2", 1)
	sc, err = Parse(wrong)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSim(sc); err == nil || !strings.Contains(err.Error(), "expect stranded") {
		t.Fatalf("wrong stranded expectation did not fail usefully: %v", err)
	}
}

func TestRepeatParseErrors(t *testing.T) {
	base := "router r1\nrouter r2\nlink r1 r2 10mbps 1us\nhost ha r1\nhost hb r2\nsession s1 ha hb\n"
	cases := []struct {
		name, src, want string
	}{
		{"unclosed", base + "repeat 2 {\nat 1ms join s1\n", "never closed"},
		{"nested", base + "repeat 2 {\nrepeat 2 {\n}\n}\n", "only `at` events"},
		{"badCount", base + "repeat zero {\nat 1ms join s1\n}\n", "positive integer"},
		{"noBrace", base + "repeat 2\nat 1ms join s1\n", "usage: repeat"},
		{"empty", base + "repeat 2 {\n}\n", "empty"},
		{"zeroSpan", base + "repeat 2 {\nat 0ms fail r1 r2\n}\n", "positive time span"},
		{"strayClose", base + "}\n", "without an open repeat"},
		{"declInside", base + "repeat 2 {\nrouter r9\n}\n", "only `at` events"},
		{"badExpect", base + "at 1ms expect migrated -1\n", "non-negative"},
		{"expectUsage", base + "at 1ms expect migrated\n", "usage"},
		// The static checker sees the expanded timeline: a block that fails
		// without restoring double-fails on its second iteration.
		{"doubleFail", base + "repeat 2 {\nat 1ms fail r1 r2\n}\n", "already failed"},
		// The count guard must not overflow on absurd counts (untrusted input).
		{"hugeCount", base + "repeat 9223372036854775807 {\nat 1ns fail r1 r2\nat 2ns restore r1 r2\n}\n", "expands past"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

// TestSoakScenarioBothTransports runs the checked-in soak script — the
// repeat-block churn loop plus the strand/restore tail — on both transports.
func TestSoakScenarioBothTransports(t *testing.T) {
	src, err := os.ReadFile("../../examples/scenarios/soak.bneck")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	migrExpects, strandExpects := 0, 0
	for _, ev := range sc.Events {
		switch ev.Op {
		case OpExpectMigrated:
			migrExpects++
		case OpExpectStranded:
			strandExpects++
		}
	}
	if migrExpects < 2 || strandExpects < 3 {
		t.Fatalf("soak too tame: %d migrated + %d stranded expects", migrExpects, strandExpects)
	}
	if _, err := RunSim(sc); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if _, err := RunLive(sc); err != nil {
		t.Fatalf("live: %v", err)
	}
}
